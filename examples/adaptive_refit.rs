//! Adaptive re-optimization on a deliberately mis-profiled workload.
//!
//! Two featurized branches are gathered into one pipeline, and both
//! solvers lie to the optimizer about their pass counts:
//!
//! * `EagerSolver` declares 6 passes (`weight() == 6`) but converges after
//!   one — the greedy materializer dutifully pins its featurized input
//!   (`WideLift`), spending the whole cache budget on a pick that is never
//!   reused.
//! * `StubbornSolver` declares a single pass but actually iterates 8
//!   times — its featurized input (`SkewLift`, fed skewed fat-row
//!   partitions) is recomputed on every pass because the optimizer saw no
//!   reuse to cache.
//!
//! With adaptation on, the executor notices `SkewLift`'s demand exceeding
//! the plan's prediction at the second request, recalibrates the
//! materialization problem from observed traces, evicts the unpaid
//! `WideLift` pick, and promotes `SkewLift` into the freed budget — all
//! charged to the simulated clock at the (tiny) decision cost. The run
//! asserts a >= 20% simulated-cost reduction and writes the adaptive
//! run's deterministic artifact to `target/adaptive_refit.json`; running
//! the example twice must produce byte-identical files (CI does exactly
//! that with `cmp`).
//!
//! ```sh
//! cargo run --release --example adaptive_refit
//! ```

use keystoneml::core::operator::Estimator;
use keystoneml::core::pipeline::gather;
use keystoneml::prelude::*;

/// Actual pass count of the under-declared solver.
const ACTUAL_PASSES: usize = 8;
/// Declared pass count of the over-declared solver.
const DECLARED_PASSES: u32 = 6;
/// Output dimensionality of both featurizers.
const OUT_DIM: usize = 32;

/// Featurizer on the over-declared branch.
struct WideLift;
impl Transformer<Vec<f64>, Vec<f64>> for WideLift {
    fn apply(&self, x: &Vec<f64>) -> Vec<f64> {
        (0..OUT_DIM)
            .map(|j| {
                x.iter()
                    .enumerate()
                    .map(|(i, v)| v * (i + j + 1) as f64)
                    .sum()
            })
            .collect()
    }
}

/// Featurizer on the under-declared branch.
struct SkewLift;
impl Transformer<Vec<f64>, Vec<f64>> for SkewLift {
    fn apply(&self, x: &Vec<f64>) -> Vec<f64> {
        (0..OUT_DIM)
            .map(|j| x.iter().map(|v| (v + j as f64).sqrt().abs()).sum())
            .collect()
    }
}

/// Subtracts the fitted per-column mean.
struct MeanSub(Vec<f64>);
impl Transformer<Vec<f64>, Vec<f64>> for MeanSub {
    fn apply(&self, x: &Vec<f64>) -> Vec<f64> {
        x.iter().zip(&self.0).map(|(v, m)| v - m).collect()
    }
}

fn column_means(data: &DistCollection<Vec<f64>>) -> Vec<f64> {
    let rows = data.collect();
    let n = rows.len().max(1) as f64;
    let dim = rows.first().map(|r| r.len()).unwrap_or(0);
    let mut mu = vec![0.0; dim];
    for r in &rows {
        for (m, v) in mu.iter_mut().zip(r) {
            *m += v / n;
        }
    }
    mu
}

/// Declares [`DECLARED_PASSES`] passes, converges after one.
struct EagerSolver;
impl Estimator<Vec<f64>, Vec<f64>> for EagerSolver {
    fn fit(
        &self,
        data: &DistCollection<Vec<f64>>,
        _ctx: &ExecContext,
    ) -> Box<dyn Transformer<Vec<f64>, Vec<f64>>> {
        Box::new(MeanSub(column_means(data)))
    }

    fn weight(&self) -> u32 {
        DECLARED_PASSES
    }
}

/// Declares one pass, actually iterates [`ACTUAL_PASSES`] times.
struct StubbornSolver;
impl Estimator<Vec<f64>, Vec<f64>> for StubbornSolver {
    fn fit(
        &self,
        data: &DistCollection<Vec<f64>>,
        _ctx: &ExecContext,
    ) -> Box<dyn Transformer<Vec<f64>, Vec<f64>>> {
        Box::new(MeanSub(column_means(data)))
    }

    fn fit_lazy(
        &self,
        data: &dyn Fn() -> DistCollection<Vec<f64>>,
        _ctx: &ExecContext,
    ) -> Box<dyn Transformer<Vec<f64>, Vec<f64>>> {
        let mut mu = Vec::new();
        for _ in 0..ACTUAL_PASSES {
            // Each pass re-requests the featurized input, exactly like an
            // iterative solver that was declared single-pass.
            mu = column_means(&data());
        }
        Box::new(MeanSub(mu))
    }
}

/// Skewed training set: partition 0 carries rows 4x wider than the rest.
fn train_data() -> DistCollection<Vec<f64>> {
    let rows: Vec<Vec<f64>> = (0..64)
        .map(|r| {
            let dim = if r < 16 { 48 } else { 12 };
            (0..dim)
                .map(|c| ((r * 31 + c * 7) % 17) as f64 * 0.25)
                .collect()
        })
        .collect();
    DistCollection::from_vec(rows, 4)
}

fn pipeline() -> Pipeline<Vec<f64>, Vec<f64>> {
    let train = train_data();
    let input = Pipeline::<Vec<f64>, Vec<f64>>::input();
    let stale = input.and_then(WideLift).and_then_est(EagerSolver, &train);
    let hot = input
        .and_then(SkewLift)
        .and_then_est(StubbornSolver, &train);
    gather(&[stale, hot])
}

fn opts() -> PipelineOptions {
    PipelineOptions {
        profile: ProfileOptions {
            sizes: vec![8, 16],
            seed: 7,
            select_operators: false,
            deterministic_timing: true,
        },
        ..PipelineOptions::full()
    }
    // Room for exactly one featurized output: the plan's (wrong) pick and
    // the adaptive promotion have to fight over the same budget.
    .with_budget(40_000)
}

fn main() {
    // Run 1: the mis-profiled plan as the optimizer believes it.
    let off_ctx = ExecContext::default_cluster();
    let (_off_fitted, off_report) = pipeline().fit(&off_ctx, &opts().with_adaptive(false));
    let sim_off = off_ctx.sim.total_seconds();
    println!("static plan:   {sim_off:.6} simulated seconds");
    println!("  cache picks: {:?}", off_report.cache_set_labels);

    // Diagnose the static run; the unpaid pick becomes a re-planner hint.
    let off_artifact = RunArtifact::capture_fit(
        &off_report,
        &_off_fitted.plan(),
        &off_ctx,
        &CaptureOptions {
            deterministic: true,
            label: "adaptive-refit-static".to_string(),
        },
    );
    let diagnosis = diagnose(&off_artifact);
    let hints = replanner_hints(&diagnosis);
    println!(
        "  diagnosis:   {} findings, hints: {} cost overrides, {} unpaid picks",
        diagnosis.findings.len(),
        hints.cost_overrides.len(),
        hints.unpaid_picks.len()
    );

    // Run 2: same workload with mid-fit adaptation enabled.
    let on_ctx = ExecContext::default_cluster();
    let (on_fitted, on_report) = pipeline().fit(
        &on_ctx,
        &opts().with_adaptive(true).with_adaptive_hints(hints),
    );
    let sim_on = on_ctx.sim.total_seconds();
    let adaptation = &on_report.adaptation;
    println!("adaptive plan: {sim_on:.6} simulated seconds");
    println!(
        "  {} recalibration(s), {} revision(s): promoted {:?}, evicted {:?}",
        adaptation.recalibrations,
        adaptation.revisions.len(),
        adaptation.promoted(),
        adaptation.evicted()
    );

    // The revision must have fired and swapped the picks.
    assert!(
        !adaptation.revisions.is_empty(),
        "expected at least one mid-fit plan revision"
    );
    assert!(
        !adaptation.promoted().is_empty() && !adaptation.evicted().is_empty(),
        "expected the revision to both promote and evict"
    );
    let rows = &on_report.observability;
    let hot_row = rows.node("SkewLift").expect("SkewLift row");
    assert!(
        hot_row.adapt.as_deref().unwrap_or("").contains("promoted"),
        "SkewLift should be promoted, got {:?}",
        hot_row.adapt
    );
    let stale_row = rows.node("WideLift").expect("WideLift row");
    assert!(
        stale_row.adapt.as_deref().unwrap_or("").contains("evicted"),
        "WideLift pick should be evicted, got {:?}",
        stale_row.adapt
    );

    // Cost-only guarantee: adaptation never makes the simulated run more
    // expensive, and on this workload it must save at least 20%.
    assert!(
        sim_on <= sim_off + 1e-9,
        "adaptive run costs more: {sim_on} > {sim_off}"
    );
    let reduction = 1.0 - sim_on / sim_off;
    println!("reduction:     {:.1}%", reduction * 100.0);
    assert!(
        reduction >= 0.20,
        "expected >= 20% simulated-cost reduction, got {:.1}%",
        reduction * 100.0
    );

    // Persist the adaptive run's deterministic artifact; two invocations
    // of this example must write byte-identical files.
    let artifact = RunArtifact::capture_fit(
        &on_report,
        &on_fitted.plan(),
        &on_ctx,
        &CaptureOptions {
            deterministic: true,
            label: "adaptive-refit".to_string(),
        },
    );
    std::fs::create_dir_all("target").expect("create target/");
    std::fs::write("target/adaptive_refit.json", artifact.to_json()).expect("write artifact");
    println!("artifact:      target/adaptive_refit.json");
}
