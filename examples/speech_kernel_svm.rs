//! TIMIT-style kernel SVM via random Fourier features (§5.1): several
//! RandomFeatures blocks merged with `Pipeline.gather`, then the optimizable
//! linear solver. Demonstrates branching pipelines and that more random
//! features monotonically improve accuracy (the kernel approximation
//! sharpens).
//!
//! ```sh
//! cargo run --release --example speech_kernel_svm
//! ```

use keystoneml::prelude::*;
use keystoneml::solvers::logistic::one_hot;
use keystoneml::workloads::pipelines::{predictions, speech_pipeline, SpeechPipelineConfig};
use keystoneml::workloads::TimitLike;

fn main() {
    let classes = 12;
    let gen = TimitLike {
        separation: 4.0,
        ..TimitLike::new(1_500, 40, classes)
    };
    let (train, test) = gen.generate_split(0.2);
    let train_labels = one_hot(&train.labels, classes);

    println!("{:>8} {:>10} {:>10}", "blocks", "features", "accuracy");
    for blocks in [1usize, 2, 4, 8] {
        let cfg = SpeechPipelineConfig {
            blocks,
            block_dim: 64,
            gamma: 0.07,
            ..Default::default()
        };
        let pipe = speech_pipeline(&cfg, &train.data, &train_labels);
        let ctx = ExecContext::calibrated(8);
        let (fitted, report) = pipe.fit(&ctx, &demo_opts());
        let scores = fitted.apply(&test.data, &ctx);
        let preds = predictions(&scores);
        let acc = accuracy(&preds, &test.labels.collect());
        println!("{:>8} {:>10} {:>10.3}", blocks, blocks * 64, acc);
        if blocks == 8 {
            for (node, choice) in &report.choices {
                println!("solver selection: {} -> {}", node, choice);
            }
        }
    }
}

/// Pipeline options with profiling samples scaled to this demo's small
/// synthetic dataset (the paper's 512/1024 samples assume millions of
/// records; here they would be the whole dataset).
fn demo_opts() -> PipelineOptions {
    PipelineOptions {
        profile: ProfileOptions {
            sizes: vec![96, 192],
            ..Default::default()
        },
        ..Default::default()
    }
}
