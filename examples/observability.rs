//! Observability: fit the text-classification pipeline and print the
//! per-node predicted-vs-actual report — profiled runtime estimates (§4.1)
//! joined against what the executor really measured, plus cache hit/miss
//! counters and every optimizer decision the tracer captured.
//!
//! ```sh
//! cargo run --release --example observability
//! ```

use keystoneml::core::trace::TraceEvent;
use keystoneml::prelude::*;
use keystoneml::solvers::logistic::one_hot;
use keystoneml::workloads::pipelines::{text_classification_pipeline, TextPipelineConfig};
use keystoneml::workloads::AmazonLike;

fn main() {
    let (train, _test) = AmazonLike::with_docs(800).generate_split(0.2);
    let train_labels = one_hot(&train.labels, 2);
    let cfg = TextPipelineConfig {
        max_features: 1_000,
        ..Default::default()
    };
    let pipe = text_classification_pipeline(&cfg, &train.docs, &train_labels);

    let ctx = ExecContext::calibrated(8);
    let (_fitted, report) = pipe.fit(&ctx, &demo_opts());

    // The predicted-vs-actual join, as a terminal table.
    println!("== predicted vs actual ==");
    print!("{}", report.observability.render_table());
    if let Some(err) = report.observability.max_time_rel_error() {
        println!(
            "worst per-node runtime prediction error: {:.0}%",
            err * 100.0
        );
    }
    if let Some(err) = report.observability.max_bytes_rel_error() {
        println!(
            "worst per-node memory prediction error:  {:.1}%",
            err * 100.0
        );
    }

    // Every decision the optimizer made, from the trace stream.
    println!("\n== optimizer decisions ==");
    for e in ctx.tracer.events() {
        match &e.event {
            TraceEvent::CseMerge {
                label, duplicates, ..
            } => println!("cse:    merged {} duplicate(s) of {}", duplicates, label),
            TraceEvent::OperatorChoice {
                label,
                chosen,
                candidates,
                ..
            } => {
                println!("select: {} -> {}", label, chosen);
                for c in candidates {
                    println!("          candidate {:<10} est {:.3}s", c.name, c.est_secs);
                }
            }
            TraceEvent::MaterializePick {
                label,
                est_saving_secs,
                size_bytes,
                ..
            } => println!(
                "cache:  {} (saves ~{:.3}s for {} bytes)",
                label, est_saving_secs, size_bytes
            ),
            _ => {}
        }
    }

    // Machine-readable form of the same report.
    println!("\n== JSON ==");
    println!("{}", report.observability.to_json());

    // Partition-level task spans, exported as a Chrome trace: load
    // target/trace.json in chrome://tracing or https://ui.perfetto.dev to
    // see per-worker lanes next to the simulated-cluster stage timeline.
    let trace = chrome_trace_json(&ctx.metrics, &ctx.sim);
    std::fs::create_dir_all("target").expect("create target/");
    std::fs::write("target/trace.json", &trace).expect("write trace");
    println!(
        "\nwrote target/trace.json ({} task spans from {} stages)",
        ctx.metrics.span_count(),
        ctx.metrics.stage_skew().len()
    );
}

/// Pipeline options with profiling samples scaled to this demo's small
/// synthetic dataset (the paper's 512/1024 samples assume millions of
/// records; here they would be the whole dataset).
fn demo_opts() -> PipelineOptions {
    PipelineOptions {
        profile: ProfileOptions {
            sizes: vec![96, 192],
            ..Default::default()
        },
        ..Default::default()
    }
}
