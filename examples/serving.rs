//! Serving smoke test + latency report.
//!
//! Fits a depth-16 per-record chain (fusion off and on), then drives the
//! `keystone-serve` front-end with a seeded load generator across a
//! batch-size × linger sweep. Writes `target/serving_report.json` with the
//! *virtual* quantities only — per-config p50/p99 latency, wave counts,
//! makespan, admission counters, and the latency histogram — so two runs of
//! this example are byte-identical (CI compares them with `cmp`). Measured
//! wall QPS goes to stdout only.
//!
//! Asserts, as the CI smoke floor:
//! * zero dropped responses in every configuration,
//! * sustained QPS above a modest floor on the fused chain,
//! * micro-batching (batch >= 8) beats batch=1 QPS on the fused chain —
//!   per-wave dispatch overhead amortizes across the batch.

use std::fmt::Write as _;

use keystoneml::core::context::ExecContext;
use keystoneml::core::operator::Transformer;
use keystoneml::core::optimizer::PipelineOptions;
use keystoneml::core::pipeline::Pipeline;
use keystoneml::core::profiler::ProfileOptions;
use keystoneml::serve::{BatchPolicy, LoadGen, Server};

const DEPTH: usize = 16;
const DIM: usize = 16;
const REQUESTS: usize = 2_000;
const MEAN_GAP_SECS: f64 = 1e-5;
const QPS_FLOOR: f64 = 50.0;

struct AxPlusB {
    a: f64,
    b: f64,
}

impl Transformer<Vec<f64>, Vec<f64>> for AxPlusB {
    fn apply(&self, x: &Vec<f64>) -> Vec<f64> {
        x.iter().map(|v| self.a * v + self.b).collect()
    }
}

fn chain() -> Pipeline<Vec<f64>, Vec<f64>> {
    let mut pipe = Pipeline::<Vec<f64>, Vec<f64>>::input();
    for i in 0..DEPTH {
        pipe = pipe.and_then(AxPlusB {
            a: 1.0 + i as f64 * 1e-3,
            b: 0.5,
        });
    }
    pipe
}

fn opts(fusion: bool) -> PipelineOptions {
    PipelineOptions {
        profile: ProfileOptions {
            sizes: vec![8, 16],
            seed: 17,
            select_operators: true,
            deterministic_timing: true,
        },
        ..PipelineOptions::full()
    }
    .with_fusion(fusion)
}

fn main() {
    let pool: Vec<Vec<f64>> = (0..64)
        .map(|r| (0..DIM).map(|c| (r * DIM + c) as f64 * 1e-4).collect())
        .collect();

    let mut rows = String::new();
    let mut fused_qps_batch1 = 0.0f64;
    let mut fused_qps_batch8 = 0.0f64;
    println!(
        "serving: depth-{DEPTH} chain, {REQUESTS} requests, mean gap {MEAN_GAP_SECS}s\n\
         {:<8} {:>6} {:>9} {:>13} {:>13} {:>9} {:>7}",
        "fusion", "batch", "linger", "p50-secs", "p99-secs", "qps", "waves"
    );
    for fusion in [false, true] {
        let fit_ctx = ExecContext::default_cluster();
        let (fitted, _) = chain().fit(&fit_ctx, &opts(fusion));
        for (max_batch, linger) in [(1usize, 0.0f64), (8, 1e-4), (32, 1e-3)] {
            let server = Server::new(
                &fitted,
                BatchPolicy::new(max_batch, linger).with_queue_capacity(REQUESTS),
            );
            let serve_ctx = ExecContext::default_cluster();
            // Warm-up wave (cache population, allocator), then measured run.
            let _ = server.run(
                LoadGen::new(7).requests_from_pool(64, MEAN_GAP_SECS, &pool),
                &serve_ctx,
            );
            let serve_ctx = ExecContext::default_cluster();
            let requests = LoadGen::new(42).requests_from_pool(REQUESTS, MEAN_GAP_SECS, &pool);
            let outcome = server.run(requests, &serve_ctx);

            assert!(
                outcome.rejects.is_empty() && outcome.responses.len() == REQUESTS,
                "dropped responses: {} served, {} rejected (fusion={fusion}, batch={max_batch})",
                outcome.responses.len(),
                outcome.rejects.len()
            );
            let qps = outcome.qps();
            if fusion && max_batch == 1 {
                fused_qps_batch1 = qps;
            }
            if fusion && max_batch == 8 {
                fused_qps_batch8 = qps;
            }
            println!(
                "{:<8} {:>6} {:>9.0e} {:>13.6} {:>13.6} {:>9.0} {:>7}",
                fusion,
                max_batch,
                linger,
                outcome.latency_percentile(50.0),
                outcome.latency_percentile(99.0),
                qps,
                outcome.batches.len()
            );

            let hist = serve_ctx
                .metrics
                .histogram("serve.latency_secs")
                .expect("serve records its latency histogram");
            let buckets: Vec<String> = hist.bucket_counts().iter().map(|c| c.to_string()).collect();
            // Virtual quantities only: wall QPS would differ between runs.
            let _ = write!(
                rows,
                "{}    {{\"fusion\": {fusion}, \"batch\": {max_batch}, \"linger_secs\": {linger:e}, \
                 \"p50_secs\": {:.17e}, \"p99_secs\": {:.17e}, \"waves\": {}, \
                 \"makespan_secs\": {:.17e}, \"admitted\": {}, \"rejected\": 0, \
                 \"latency_buckets\": [{}]}}",
                if rows.is_empty() { "" } else { ",\n" },
                outcome.latency_percentile(50.0),
                outcome.latency_percentile(99.0),
                outcome.batches.len(),
                outcome.makespan_secs,
                outcome.responses.len(),
                buckets.join(", ")
            );
        }
    }

    assert!(
        fused_qps_batch1 >= QPS_FLOOR && fused_qps_batch8 >= QPS_FLOOR,
        "sustained QPS below floor: batch1={fused_qps_batch1:.0}, batch8={fused_qps_batch8:.0}"
    );
    assert!(
        fused_qps_batch8 > fused_qps_batch1,
        "micro-batching must beat batch=1 on the fused chain: \
         batch8={fused_qps_batch8:.0} qps vs batch1={fused_qps_batch1:.0} qps"
    );

    let report = format!(
        "{{\n  \"depth\": {DEPTH},\n  \"requests\": {REQUESTS},\n  \"configs\": [\n{rows}\n  ]\n}}\n"
    );
    std::fs::create_dir_all("target").expect("create target/");
    std::fs::write("target/serving_report.json", &report).expect("write serving report");
    println!("report: target/serving_report.json");
}
