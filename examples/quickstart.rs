//! Quickstart: a complete (tiny) text-classification pipeline, built from
//! the Fig. 2 operators, fit with the full optimizer, and evaluated.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use keystoneml::prelude::*;
use keystoneml::solvers::logistic::one_hot;
use keystoneml::workloads::pipelines::{
    predictions, text_classification_pipeline, TextPipelineConfig,
};
use keystoneml::workloads::AmazonLike;

fn main() {
    // 1. Synthetic "Amazon reviews": binary sentiment with planted signal.
    let (train, test) = AmazonLike::with_docs(1_000).generate_split(0.2);
    let train_labels = one_hot(&train.labels, 2);

    // 2. Build the Fig. 2 pipeline. Training data is bound into the DAG;
    //    nothing executes yet (lazy optimization, §2.3).
    let cfg = TextPipelineConfig {
        max_features: 2_000,
        ..Default::default()
    };
    let pipe = text_classification_pipeline(&cfg, &train.docs, &train_labels);
    println!("pipeline DAG has {} nodes", pipe.graph_len());

    // 3. Fit with the full optimizer: CSE, subsampling profiler, cost-based
    //    solver selection, and greedy materialization.
    let ctx = ExecContext::calibrated(8);
    let (fitted, report) = pipe.fit(&ctx, &demo_opts());
    println!(
        "optimizer spent {:.2}s profiling + planning",
        report.optimize_secs
    );
    println!("CSE eliminated {} duplicate nodes", report.eliminated_nodes);
    for (node, choice) in &report.choices {
        println!("operator selection: {} -> {}", node, choice);
    }
    println!("materialized: {:?}", report.cache_set_labels);

    // 4. Evaluate on held-out reviews.
    let scores = fitted.apply(&test.docs, &ctx);
    let preds = predictions(&scores);
    let truth = test.labels.collect();
    println!("test accuracy: {:.3}", accuracy(&preds, &truth));
}

/// Pipeline options with profiling samples scaled to this demo's small
/// synthetic dataset (the paper's 512/1024 samples assume millions of
/// records; here they would be the whole dataset).
fn demo_opts() -> PipelineOptions {
    PipelineOptions {
        profile: ProfileOptions {
            sizes: vec![96, 192],
            ..Default::default()
        },
        ..Default::default()
    }
}
