//! Multi-tenant forest optimization on a hyperparameter sweep.
//!
//! A ridge-parameter sweep trains several variants of the TIMIT-style
//! random-feature pipeline. The variants differ only in the solver's
//! `lambda` — the expensive random-feature trunk is byte-for-byte the same
//! plan region in every one. Fitted independently, every variant
//! recomputes the trunk; fitted as a forest (`fit_forest`), cross-pipeline
//! CSE merges the trunks, one global budget materializes the shared
//! featurized output, and a fair wave scheduler interleaves the per-tenant
//! solver waves under `tenant{i}` SimClock lanes.
//!
//! The run asserts the two halves of the forest contract:
//!
//! * every tenant's held-out predictions are **bit-identical** to the
//!   pipeline fit alone, and
//! * the forest's simulated cost is at least **2x** cheaper than the sum
//!   of the independent fits.
//!
//! It writes the forest fit's deterministic artifact to
//! `target/multi_tenant.json`; running the example twice must produce
//! byte-identical files (CI does exactly that with `cmp`).
//!
//! ```sh
//! cargo run --release --example multi_tenant
//! ```

use keystoneml::prelude::*;
use keystoneml::solvers::logistic::one_hot;
use keystoneml::workloads::dense_gen::TimitLike;
use keystoneml::workloads::sweep::{sweep_pipelines, SweepConfig};

const CLASSES: usize = 4;

fn dataset(stream: u64) -> keystoneml::workloads::dense_gen::DenseDataset {
    TimitLike {
        n: 96,
        dim: 8,
        classes: CLASSES,
        separation: 2.0,
        seed: 2611,
        stream,
        partitions: 4,
        quantize: Some(64),
    }
    .generate()
}

fn opts() -> PipelineOptions {
    PipelineOptions {
        profile: ProfileOptions {
            sizes: vec![8, 16],
            seed: 7,
            select_operators: false,
            deterministic_timing: true,
        },
        ..PipelineOptions::pipe_only()
    }
    .with_budget(1 << 30)
}

fn prediction_bits(
    fitted: &FittedPipeline<Vec<f64>, Vec<f64>>,
    test: &DistCollection<Vec<f64>>,
    ctx: &ExecContext,
) -> Vec<Vec<u64>> {
    fitted
        .apply(test, ctx)
        .collect()
        .into_iter()
        .map(|row| row.into_iter().map(f64::to_bits).collect())
        .collect()
}

fn main() {
    let train = dataset(0);
    let test = dataset(1);
    let labels = one_hot(&train.labels, CLASSES);
    let cfg = SweepConfig::default();
    let opts = opts();

    // The sweep: one shared random-feature trunk, one variant per lambda.
    let tenants = sweep_pipelines(&cfg, &train.data, &labels);
    println!(
        "sweep: {} variants over a {}-block random-feature trunk",
        tenants.len(),
        cfg.blocks
    );

    // N independent fits: every variant pays for the trunk itself.
    let mut solo_total = 0.0;
    let mut solo_bits = Vec::new();
    for (i, tenant) in tenants.iter().enumerate() {
        let ctx = ExecContext::default_cluster();
        let (fitted, _) = tenant.fit(&ctx, &opts);
        let secs = ctx.sim.total_seconds();
        solo_total += secs;
        solo_bits.push(prediction_bits(&fitted, &test.data, &ctx));
        println!("  solo fit {i}: {secs:.6} simulated seconds");
    }

    // One forest fit: merged trunk, global budget, fair wave scheduling.
    let ctx = ExecContext::default_cluster();
    let (fitted, report) = fit_forest(&tenants, &ctx, &opts);
    let forest_total = ctx.sim.total_seconds();
    println!(
        "forest fit:  {forest_total:.6} simulated seconds (shared plan: {})",
        report.shared
    );
    println!(
        "  {} cross-pipeline merges, e.g. {:?}",
        report.cross_merges.len(),
        report
            .cross_merges
            .first()
            .map(|m| m.label.as_str())
            .unwrap_or("-")
    );
    for row in &report.tenants {
        println!(
            "  tenant {}: {:.6}s in-forest vs {:.6}s solo",
            row.tenant, row.sim_secs, row.solo_secs
        );
    }

    // Contract half 1: bit-identical predictions per tenant.
    for (i, f) in fitted.iter().enumerate() {
        assert_eq!(
            prediction_bits(f, &test.data, &ctx),
            solo_bits[i],
            "tenant {i} predictions diverged between forest and solo fit"
        );
    }
    println!("per-tenant predictions: bit-identical to solo fits");

    // Contract half 2: the forest plan must be >= 2x cheaper than N fits.
    assert!(report.shared, "expected the shared merged plan to win");
    assert!(
        !report.cross_merges.is_empty(),
        "expected cross-pipeline CSE to merge the trunk"
    );
    let speedup = solo_total / forest_total;
    println!(
        "speedup: {speedup:.2}x over {} independent fits",
        tenants.len()
    );
    assert!(
        speedup >= 2.0,
        "expected >= 2x simulated-cost reduction, got {speedup:.2}x"
    );

    // Persist the deterministic forest artifact (obs schema v3 carries the
    // per-tenant rows); two invocations must write byte-identical files.
    let fit_report = report.fit.as_ref().expect("shared path fit report");
    let artifact = RunArtifact::capture_fit(
        fit_report,
        &fitted[0].plan(),
        &ctx,
        &CaptureOptions {
            deterministic: true,
            label: "multi-tenant-sweep".to_string(),
        },
    );
    std::fs::create_dir_all("target").expect("create target/");
    std::fs::write("target/multi_tenant.json", artifact.to_json()).expect("write artifact");
    println!("artifact: target/multi_tenant.json");
}
