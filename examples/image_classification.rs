//! VOC-style image classification (§5.1, Fig. 5/11): GrayScale → SIFT →
//! PCA → GMM/Fisher vectors → Normalize → LinearSolver, on synthetic
//! texture-class images. Prints the optimizer's materialization choices —
//! the Fig. 11 experiment — at two memory budgets.
//!
//! ```sh
//! cargo run --release --example image_classification
//! ```

use keystoneml::prelude::*;
use keystoneml::solvers::logistic::one_hot;
use keystoneml::workloads::image_gen::ImageDatasetSpec;
use keystoneml::workloads::pipelines::{
    image_classification_pipeline, predictions, ImagePipelineConfig,
};

fn main() {
    let classes = 5;
    let spec = ImageDatasetSpec {
        classes,
        ..ImageDatasetSpec::voc_like(200, 32)
    };
    let (train, test) = spec.generate_split(0.25);
    let train_labels = one_hot(&train.labels, classes);

    let cfg = ImagePipelineConfig {
        pca_dims: 12,
        gmm_k: 4,
        ..Default::default()
    };

    // Fig. 11: the cache set the greedy materialization strategy picks
    // depends on the memory budget.
    for (label, budget) in [("80 GB/node", 80u64 << 30), ("5 MB total", 5 << 20)] {
        let pipe = image_classification_pipeline(&cfg, &train.images, &train_labels);
        let ctx = ExecContext::calibrated(8);
        let opts = demo_opts().with_budget(budget);
        let (fitted, report) = pipe.fit(&ctx, &opts);
        println!(
            "budget {label}: cached nodes = {:?}",
            report.cache_set_labels
        );

        let scores = fitted.apply(&test.images, &ctx);
        let preds = predictions(&scores);
        let acc = accuracy(&preds, &test.labels.collect());
        println!(
            "budget {label}: test accuracy = {acc:.3} (chance = {:.3})\n",
            1.0 / classes as f64
        );
    }

    // Dump the optimized DAG with the cache set highlighted (Graphviz).
    let pipe = image_classification_pipeline(&cfg, &train.images, &train_labels);
    let ctx = ExecContext::calibrated(8);
    let (_, report) = pipe.fit(&ctx, &demo_opts());
    println!("--- pipeline DAG (dot) ---\n{}", report.dot);
}

/// Pipeline options with profiling samples scaled to this demo's small
/// synthetic dataset (the paper's 512/1024 samples assume millions of
/// records; here they would be the whole dataset).
fn demo_opts() -> PipelineOptions {
    PipelineOptions {
        profile: ProfileOptions {
            sizes: vec![96, 192],
            ..Default::default()
        },
        ..Default::default()
    }
}
