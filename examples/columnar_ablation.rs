//! Columnar ablation: a depth-16 per-record transformer chain applied three
//! ways — unfused, fused over boxed records, and fused with the chain
//! lowered onto [`ColumnarBatch`] slices.
//!
//! Unfused, every stage is its own executor node and every record crosses
//! 16 node boundaries. Fused over records, the chain is one `FusedMap` but
//! each stage still allocates one `Vec<f64>` per record. Columnar, the
//! fused driver packs each partition into two ping-pong `ColumnarBatch`es
//! and every stage is a tight loop over contiguous `f64` slices with no
//! per-record allocation. This example times all three, checks the outputs
//! are bit-identical, writes the table to `target/columnar_ablation.txt`,
//! and asserts the columnar path is at least 2x faster than the unfused
//! chain and no slower than the fused record path — CI runs it as the
//! columnar smoke job.
//!
//! ```sh
//! cargo run --release --example columnar_ablation
//! ```

use std::sync::Arc;
use std::time::Instant;

use keystoneml::prelude::*;

const DEPTH: usize = 16;
const RECORDS: usize = 60_000;
const DIM: usize = 16;
const PARTITIONS: usize = 8;
const TRIALS: usize = 5;

/// One per-record stage: `y[i] = a * x[i] + b`, with a columnar kernel that
/// computes exactly the same expression over a batch slice.
struct AxPlusB {
    a: f64,
    b: f64,
}

impl Transformer<Vec<f64>, Vec<f64>> for AxPlusB {
    fn apply(&self, x: &Vec<f64>) -> Vec<f64> {
        x.iter().map(|v| self.a * v + self.b).collect()
    }

    fn columnar_kernel(&self) -> Option<ColumnarFn> {
        let (a, b) = (self.a, self.b);
        Some(Arc::new(move |x, out| {
            out.extend(x.iter().map(|v| a * v + b))
        }))
    }
}

fn chain() -> Pipeline<Vec<f64>, Vec<f64>> {
    let mut pipe = Pipeline::<Vec<f64>, Vec<f64>>::input();
    for i in 0..DEPTH {
        pipe = pipe.and_then(AxPlusB {
            a: 1.0 + i as f64 * 1e-3,
            b: 0.5,
        });
    }
    pipe
}

fn data() -> DistCollection<Vec<f64>> {
    let records: Vec<Vec<f64>> = (0..RECORDS)
        .map(|r| (0..DIM).map(|c| (r * DIM + c) as f64 * 1e-6).collect())
        .collect();
    DistCollection::from_vec(records, PARTITIONS)
}

/// Fits the chain under `opts` and returns (best apply seconds, columnar
/// chains in the plan, first-pass output for bitwise comparison).
fn run(opts: &PipelineOptions) -> (f64, usize, Vec<Vec<u64>>) {
    let ctx = ExecContext::default_cluster();
    let (fitted, report) = chain().fit(&ctx, opts);
    let input = data();
    let warm: Vec<Vec<u64>> = fitted
        .apply(&input, &ctx)
        .collect()
        .into_iter()
        .map(|row| row.into_iter().map(f64::to_bits).collect())
        .collect();
    assert_eq!(warm.len(), RECORDS);
    let mut best = f64::INFINITY;
    for _ in 0..TRIALS {
        let start = Instant::now();
        let out = fitted.apply(&input, &ctx);
        std::hint::black_box(out.collect());
        best = best.min(start.elapsed().as_secs_f64());
    }
    (best, report.columnar_chains, warm)
}

fn main() {
    let (unfused_secs, unfused_cols, unfused_bits) =
        run(&PipelineOptions::full().with_fusion(false));
    let (record_secs, record_cols, record_bits) =
        run(&PipelineOptions::full().with_columnar(false));
    // Columnar lowering is the Full-level default; spell it out anyway.
    let (col_secs, col_cols, col_bits) = run(&PipelineOptions::full().with_columnar(true));

    assert_eq!(unfused_cols, 0, "unfused plan cannot lower a chain");
    assert_eq!(record_cols, 0, "with_columnar(false) must stay on records");
    assert_eq!(col_cols, 1, "the depth-{DEPTH} chain should lower columnar");
    assert_eq!(unfused_bits, record_bits, "fused record path drifted");
    assert_eq!(unfused_bits, col_bits, "columnar path drifted");

    let table = format!(
        "columnar ablation: depth-{DEPTH} per-record chain, {RECORDS} records x dim {DIM}, \
         {PARTITIONS} partitions, best of {TRIALS}\n\
         {:<14} {:>12} plan\n\
         {:<14} {:>12.6} {DEPTH} per-record stages\n\
         {:<14} {:>12.6} 1 FusedMap over boxed records\n\
         {:<14} {:>12.6} 1 FusedMap lowered onto ColumnarBatch\n\
         columnar vs unfused: {:.2}x   columnar vs fused-record: {:.2}x\n",
        "variant",
        "apply-secs",
        "unfused",
        unfused_secs,
        "fused-record",
        record_secs,
        "fused-columnar",
        col_secs,
        unfused_secs / col_secs,
        record_secs / col_secs,
    );
    print!("{table}");

    std::fs::create_dir_all("target").expect("create target dir");
    std::fs::write("target/columnar_ablation.txt", &table).expect("write ablation table");

    assert!(
        col_secs * 2.0 <= unfused_secs,
        "columnar path should beat the unfused chain by at least 2x: \
         {col_secs:.6}s vs {unfused_secs:.6}s"
    );
    assert!(
        col_secs <= record_secs,
        "columnar apply slower than the fused record path: \
         {col_secs:.6}s > {record_secs:.6}s"
    );
}
