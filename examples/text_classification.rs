//! Amazon-style text classification (§5.1) with the three optimization
//! levels of Fig. 9: None, Pipe-Only, and full KeystoneML. Prints the
//! fit-time breakdown so the effect of whole-pipeline optimization (the 7×
//! the paper reports came from caching features ahead of the iterative
//! solver) is visible.
//!
//! ```sh
//! cargo run --release --example text_classification
//! ```

use std::time::Instant;

use keystoneml::prelude::*;
use keystoneml::solvers::logistic::one_hot;
use keystoneml::workloads::pipelines::{
    predictions, text_classification_pipeline, TextPipelineConfig,
};
use keystoneml::workloads::AmazonLike;

fn main() {
    let (train, test) = AmazonLike::with_docs(2_000).generate_split(0.2);
    let train_labels = one_hot(&train.labels, 2);
    let cfg = TextPipelineConfig {
        max_features: 5_000,
        ..Default::default()
    };

    println!(
        "{:<12} {:>10} {:>10} {:>10}",
        "level", "fit (s)", "eval (s)", "accuracy"
    );
    for (name, opts) in [
        (
            "None",
            PipelineOptions {
                level: OptLevel::None,
                ..demo_opts()
            },
        ),
        (
            "PipeOnly",
            PipelineOptions {
                level: OptLevel::PipeOnly,
                ..demo_opts()
            },
        ),
        ("KeystoneML", demo_opts()),
    ] {
        let pipe = text_classification_pipeline(&cfg, &train.docs, &train_labels);
        let ctx = ExecContext::calibrated(8);

        let t0 = Instant::now();
        let (fitted, report) = pipe.fit(&ctx, &opts);
        let fit_secs = t0.elapsed().as_secs_f64();

        let t1 = Instant::now();
        let scores = fitted.apply(&test.docs, &ctx);
        let eval_secs = t1.elapsed().as_secs_f64();

        let preds = predictions(&scores);
        let acc = accuracy(&preds, &test.labels.collect());
        println!(
            "{:<12} {:>10.2} {:>10.2} {:>10.3}",
            name, fit_secs, eval_secs, acc
        );
        if name == "KeystoneML" {
            println!("\nKeystoneML decisions:");
            println!("  optimize overhead: {:.2}s", report.optimize_secs);
            for (node, choice) in &report.choices {
                println!("  {} -> {}", node, choice);
            }
            println!("  cached: {:?}", report.cache_set_labels);
        }
    }
}

/// Pipeline options with profiling samples scaled to this demo's small
/// synthetic dataset (the paper's 512/1024 samples assume millions of
/// records; here they would be the whole dataset).
fn demo_opts() -> PipelineOptions {
    PipelineOptions {
        profile: ProfileOptions {
            sizes: vec![96, 192],
            ..Default::default()
        },
        ..Default::default()
    }
}
