//! Flight-recorder + diagnosis walkthrough: fit a deliberately unhealthy
//! pipeline — skewed partitions, a cache budget below the working set,
//! seeded cache-entry loss — capture the run as a versioned
//! [`RunArtifact`], and let the diagnosis engine name what went wrong,
//! with evidence.
//!
//! ```sh
//! cargo run --release --example diagnose
//! # target/run_artifact.json   — the full flight-recorder bundle
//! # target/diagnosis.json      — structured findings
//! # re-running produces byte-identical files (CI compares with `cmp`)
//! ```
//!
//! The capture is deterministic: wall-clock fields are nulled, spans are
//! sorted by identity, skew is measured in *records* (seed-pure), and the
//! fault plan injects cache loss but **no stragglers or speculation** (a
//! speculative win is priced at the measured wave median, which would leak
//! wall time into the artifact).
//!
//! Exit status: nonzero when any finding reaches the threshold in
//! `KEYSTONE_DIAGNOSE_FAIL_ON` (`info`|`warning`|`critical`; default
//! `critical`) — which is how CI uses this example as a health gate.

use keystone_obs::{diagnose, CaptureOptions, RunArtifact, Severity};
use keystoneml::prelude::*;

/// Busy-waits per record so partition runtime tracks partition size.
struct BusyWork(u64);
impl Transformer<Vec<f64>, Vec<f64>> for BusyWork {
    fn apply(&self, x: &Vec<f64>) -> Vec<f64> {
        let mut acc = 0.0f64;
        for i in 0..self.0 * 50 {
            acc += (i as f64).sqrt();
        }
        std::hint::black_box(acc);
        x.clone()
    }
}

/// An iterative estimator that re-reads its input once per pass, so the
/// cache sees repeated lookups — and, with a starved budget, thrashes.
struct MultiPassMean {
    passes: u32,
}
impl Estimator<Vec<f64>, Vec<f64>> for MultiPassMean {
    fn fit(
        &self,
        _data: &DistCollection<Vec<f64>>,
        _ctx: &ExecContext,
    ) -> Box<dyn Transformer<Vec<f64>, Vec<f64>>> {
        unreachable!("fit_lazy overridden")
    }
    fn fit_lazy(
        &self,
        data: &dyn Fn() -> DistCollection<Vec<f64>>,
        _ctx: &ExecContext,
    ) -> Box<dyn Transformer<Vec<f64>, Vec<f64>>> {
        let mut mu = 0.0;
        for _ in 0..self.passes {
            let d = data();
            let n = d.count().max(1) as f64;
            mu = d.aggregate(0.0, |a, x| a + x[0], |a, b| a + b) / n;
        }
        struct Shift(f64);
        impl Transformer<Vec<f64>, Vec<f64>> for Shift {
            fn apply(&self, x: &Vec<f64>) -> Vec<f64> {
                x.iter().map(|v| v - self.0).collect()
            }
        }
        Box::new(Shift(mu))
    }
    fn weight(&self) -> u32 {
        self.passes
    }
}

fn main() {
    // Four partitions, one carrying 8x the records: the straggler detector
    // must attribute the skew to the fat partition from record counts alone.
    let skewed: Vec<Vec<Vec<f64>>> = vec![
        (0..100).map(|i| vec![i as f64, 1.0]).collect(),
        (0..100).map(|i| vec![i as f64, 1.0]).collect(),
        (0..100).map(|i| vec![i as f64, 1.0]).collect(),
        (0..800).map(|i| vec![i as f64, 1.0]).collect(),
    ];
    let train = DistCollection::from_partitions(skewed);

    let pipe = Pipeline::<Vec<f64>, Vec<f64>>::input()
        .and_then(BusyWork(10))
        .and_then(BusyWork(12))
        .and_then_est(MultiPassMean { passes: 6 }, &train);

    // Faults: seeded cache-entry loss only. No stragglers, and the
    // speculation threshold is pushed out of reach: a speculative win is
    // priced at the measured wave median, which would leak wall time into
    // the artifact and break byte-identical reruns (see module docs).
    let faults = FaultSpec::new(0xD1A6)
        .with_cache_loss(0.35)
        .with_straggler_min_delay_us(1 << 40)
        .into_plan();
    let ctx = ExecContext::default_cluster().with_faults(faults);
    // Fusion off keeps the two BusyWork stages separate cache entries; the
    // LRU budget fits one of them but not both, so admitting the second
    // evicts the first — and every lost downstream entry forces a
    // recompute that misses the evicted upstream again (cache thrash).
    let opts = PipelineOptions {
        caching: CachingStrategy::Lru {
            admission_fraction: 1.0,
        },
        mem_budget: Some(64 * 1024),
        profile: ProfileOptions {
            sizes: vec![64, 128],
            seed: 11,
            select_operators: false,
            deterministic_timing: true,
        },
        ..Default::default()
    }
    .with_fusion(false);
    let (fitted, report) = pipe.fit(&ctx, &opts);

    // Flight-record the run and diagnose it.
    let capture = CaptureOptions {
        deterministic: true,
        label: "diagnose-example".to_string(),
    };
    let artifact = RunArtifact::capture_fit(&report, &fitted.plan(), &ctx, &capture);
    let diagnosis = diagnose(&artifact);

    println!("== predicted vs actual (faulted, skewed fit) ==");
    print!("{}", report.observability.render_table());
    println!();
    print!("{}", diagnosis.render_text());

    std::fs::create_dir_all("target").expect("create target/");
    std::fs::write("target/run_artifact.json", artifact.to_json()).expect("write artifact");
    std::fs::write("target/diagnosis.json", diagnosis.to_json()).expect("write diagnosis");
    println!("\nwrote target/run_artifact.json and target/diagnosis.json");

    // The run is engineered to be unhealthy: the gate below only means
    // anything if the detectors actually fired.
    assert!(
        !diagnosis.rule("straggler").is_empty(),
        "expected a straggler finding on the 8x-skewed stage:\n{}",
        diagnosis.render_text()
    );
    assert!(
        !diagnosis.rule("cache-thrash").is_empty(),
        "expected cache thrash under a starved budget:\n{}",
        diagnosis.render_text()
    );

    // CI health gate: fail when any finding reaches the threshold.
    let threshold = match std::env::var("KEYSTONE_DIAGNOSE_FAIL_ON").as_deref() {
        Ok("info") => Severity::Info,
        Ok("warning") => Severity::Warning,
        Ok(other) if !other.is_empty() && other != "critical" => {
            eprintln!("unknown KEYSTONE_DIAGNOSE_FAIL_ON={other:?}; using critical");
            Severity::Critical
        }
        _ => Severity::Critical,
    };
    if diagnosis.findings.iter().any(|f| f.severity >= threshold) {
        eprintln!(
            "diagnosis gate: findings at or above {} — failing",
            threshold.as_str()
        );
        std::process::exit(2);
    }
    println!(
        "diagnosis gate: no findings at or above {}",
        threshold.as_str()
    );
}
