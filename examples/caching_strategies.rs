//! The automatic-materialization optimizer in action (§4.3, Fig. 10):
//! compares the greedy KeystoneML strategy against LRU and the rule-based
//! "cache estimator results only" baseline across memory budgets, on a
//! pipeline with an expensive featurizer feeding an iterative solver.
//!
//! ```sh
//! cargo run --release --example caching_strategies
//! ```

use std::time::Instant;

use keystoneml::prelude::*;
use keystoneml::solvers::logistic::one_hot;
use keystoneml::solvers::solver_op::LinearSolverOp;
use keystoneml::workloads::pipelines::{speech_pipeline, SpeechPipelineConfig};
use keystoneml::workloads::TimitLike;

fn main() {
    let classes = 8;
    let gen = TimitLike {
        separation: 4.0,
        ..TimitLike::new(1_200, 32, classes)
    };
    let ds = gen.generate();
    let labels = one_hot(&ds.labels, classes);
    // Iterative L-BFGS (weight > 1) makes the featurized data worth caching.
    let cfg = SpeechPipelineConfig {
        blocks: 2,
        block_dim: 96,
        solver: LinearSolverOp {
            lbfgs_iters: 15,
            ..Default::default()
        },
        ..Default::default()
    };

    println!(
        "{:>14} {:>12} {:>10}  cached nodes",
        "budget", "strategy", "fit (s)"
    );
    for budget in [1u64 << 14, 1 << 22, 1 << 30] {
        for (name, caching) in [
            ("greedy", CachingStrategy::Greedy),
            (
                "lru",
                CachingStrategy::Lru {
                    admission_fraction: 0.3,
                },
            ),
            ("rule-based", CachingStrategy::RuleBased),
        ] {
            let pipe = speech_pipeline(&cfg, &ds.data, &labels);
            let ctx = ExecContext::calibrated(8);
            let opts = demo_opts().with_budget(budget).with_caching(caching);
            let t0 = Instant::now();
            let (_fitted, report) = pipe.fit(&ctx, &opts);
            println!(
                "{:>14} {:>12} {:>10.2}  {:?}",
                budget,
                name,
                t0.elapsed().as_secs_f64(),
                report.cache_set_labels
            );
        }
    }
}

/// Pipeline options with profiling samples scaled to this demo's small
/// synthetic dataset (the paper's 512/1024 samples assume millions of
/// records; here they would be the whole dataset).
fn demo_opts() -> PipelineOptions {
    // PipeOnly keeps the configured iterative solver: this walkthrough is
    // about the materialization strategies, not operator selection (which
    // would rightly pick a one-shot exact solver at this toy scale).
    PipelineOptions {
        level: OptLevel::PipeOnly,
        profile: ProfileOptions {
            sizes: vec![96, 192],
            ..Default::default()
        },
        ..Default::default()
    }
}
