//! Worker timelines under partition skew: run a pipeline over deliberately
//! unbalanced partitions, print the per-stage skew/utilization analysis the
//! metrics registry computes, and export a Chrome trace of the worker lanes.
//!
//! ```sh
//! cargo run --release --example trace_export
//! # then load target/trace_skew.json in chrome://tracing or Perfetto
//! ```
//!
//! The cost model (§4.1) prices a node as "slowest worker + coordination",
//! which assumes partitions are uniform. This example breaks that
//! assumption on purpose — one partition holds most of the data — so the
//! report's `skew` column flags the straggler and `miss_diagnosis`
//! attributes the runtime prediction miss to skew rather than a uniform
//! mis-estimate.

use keystoneml::prelude::*;

/// Busy-waits per record: partition runtime tracks partition size.
struct BusyWork(u64);
impl Transformer<f64, f64> for BusyWork {
    fn apply(&self, x: &f64) -> f64 {
        let mut acc = 0.0f64;
        for i in 0..self.0 * 100 {
            acc += (i as f64).sqrt();
        }
        std::hint::black_box(acc);
        *x
    }
}

/// Subtracts the training mean — an estimator, so `fit` really executes
/// the (skewed) training data through the pipeline.
struct MeanShift;
impl Estimator<f64, f64> for MeanShift {
    fn fit(
        &self,
        data: &DistCollection<f64>,
        _ctx: &ExecContext,
    ) -> Box<dyn Transformer<f64, f64>> {
        let n = data.count().max(1) as f64;
        let mu = data.aggregate(0.0, |a, x| a + x, |a, b| a + b) / n;
        struct Shift(f64);
        impl Transformer<f64, f64> for Shift {
            fn apply(&self, x: &f64) -> f64 {
                x - self.0
            }
        }
        Box::new(Shift(mu))
    }
}

fn main() {
    // Four partitions, one of them 8× the others: lane 3 straggles.
    let skewed: Vec<Vec<f64>> = vec![
        (0..100).map(|i| i as f64).collect(),
        (0..100).map(|i| i as f64).collect(),
        (0..100).map(|i| i as f64).collect(),
        (0..800).map(|i| i as f64).collect(),
    ];
    let train = DistCollection::from_partitions(skewed);

    let pipe = Pipeline::<f64, f64>::input()
        .and_then(BusyWork(40))
        .and_then_est(MeanShift, &train);
    let ctx = ExecContext::calibrated(4);
    let opts = PipelineOptions {
        profile: ProfileOptions {
            sizes: vec![64, 128],
            ..Default::default()
        },
        ..Default::default()
    };
    let (fitted, report) = pipe.fit(&ctx, &opts);
    let _ = fitted.apply(&train, &ctx);

    // Per-stage skew analysis straight from the registry.
    println!("== per-stage partition skew ==");
    for sk in ctx.metrics.stage_skew() {
        println!(
            "{:<28} tasks {:>3}  max {:>8.5}s  median {:>8.5}s  skew {:>5.2}{}  util {:>3.0}%",
            sk.stage,
            sk.tasks,
            sk.max_secs,
            sk.median_secs,
            sk.skew_ratio,
            if sk.straggler { "  STRAGGLER" } else { "" },
            sk.utilization * 100.0
        );
    }

    // The same analysis joined onto the predicted-vs-actual report, plus
    // the diagnosis of *why* predictions missed.
    println!("\n== report with skew/utilization columns ==");
    print!("{}", report.observability.render_table());
    for n in &report.observability.nodes {
        if let Some(cause) = n.miss_diagnosis(0.15) {
            println!(
                "prediction miss on {}: {:.0}% off, attributed to {cause}",
                n.label,
                n.time_rel_error.unwrap_or(0.0) * 100.0
            );
        }
    }

    // Chrome trace: worker lanes (pid 1) next to the simulated-cluster
    // stage timeline (pid 2). The context-level exporter also lowers any
    // serve:*/recovery:*/speculative:* stages and ServeBatch/ServeReject
    // events onto their own lanes — absent here, but the same call works
    // on a serving or faulted context unchanged.
    let trace = keystoneml::core::export::chrome_trace_json(&ctx);
    std::fs::create_dir_all("target").expect("create target/");
    std::fs::write("target/trace_skew.json", &trace).expect("write trace");
    println!(
        "\nwrote target/trace_skew.json ({} spans) — load it in chrome://tracing",
        ctx.metrics.span_count()
    );
}
