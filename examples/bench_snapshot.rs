//! CI perf-regression gate: re-run the canonical fit and serve workloads,
//! snapshot their **virtual** metrics (simulated seconds per stage, span
//! counts, cache hit ratio, virtual latency percentiles) into
//! `target/BENCH_*.json`, and compare against the committed baselines in
//! `benchmarks/`.
//!
//! ```sh
//! cargo run --release --example bench_snapshot
//! # exit 0: within tolerance of benchmarks/BENCH_{fusion,serve,columnar,adaptive,multitenant}.json
//! # exit 3: regression beyond tolerance — CI uploads target/BENCH_*.json
//! KEYSTONE_BENCH_INJECT_SLOWDOWN=1 cargo run --release --example bench_snapshot
//! # negative test: inflates the fresh sim costs 1.5x; the gate MUST fail
//! ```
//!
//! Only virtual quantities enter a snapshot — they are byte-identical
//! across machines, which is what makes a committed baseline meaningful
//! anywhere. To refresh baselines after an intentional cost-model change:
//! `cp target/BENCH_*.json benchmarks/`.

use std::sync::Arc;

use keystone_obs::{BenchSnapshot, CaptureOptions, RegressionGate, RunArtifact, ServeSection};
use keystoneml::core::context::ExecContext;
use keystoneml::core::operator::{ColumnarFn, Estimator, Transformer};
use keystoneml::core::optimizer::PipelineOptions;
use keystoneml::core::pipeline::{gather, Pipeline};
use keystoneml::core::profiler::ProfileOptions;
use keystoneml::dataflow::collection::DistCollection;
use keystoneml::serve::{BatchPolicy, LoadGen, Server};

const DEPTH: usize = 12;
const DIM: usize = 8;
const REQUESTS: usize = 500;

struct AxPlusB {
    a: f64,
    b: f64,
}

impl Transformer<Vec<f64>, Vec<f64>> for AxPlusB {
    fn apply(&self, x: &Vec<f64>) -> Vec<f64> {
        x.iter().map(|v| self.a * v + self.b).collect()
    }

    fn columnar_kernel(&self) -> Option<ColumnarFn> {
        let (a, b) = (self.a, self.b);
        Some(Arc::new(move |x, out| {
            out.extend(x.iter().map(|v| a * v + b))
        }))
    }
}

fn deep_chain() -> Pipeline<Vec<f64>, Vec<f64>> {
    let mut pipe = Pipeline::<Vec<f64>, Vec<f64>>::input();
    for i in 0..DEPTH {
        pipe = pipe.and_then(AxPlusB {
            a: 1.0 + i as f64 * 1e-3,
            b: 0.5,
        });
    }
    pipe
}

/// Featurizer on the over-declared branch of the adaptive workload.
struct WideLift;
impl Transformer<Vec<f64>, Vec<f64>> for WideLift {
    fn apply(&self, x: &Vec<f64>) -> Vec<f64> {
        (0..32)
            .map(|j| {
                x.iter()
                    .enumerate()
                    .map(|(i, v)| v * (i + j + 1) as f64)
                    .sum()
            })
            .collect()
    }
}

/// Featurizer on the under-declared branch of the adaptive workload.
struct SkewLift;
impl Transformer<Vec<f64>, Vec<f64>> for SkewLift {
    fn apply(&self, x: &Vec<f64>) -> Vec<f64> {
        (0..32)
            .map(|j| x.iter().map(|v| (v + j as f64).sqrt().abs()).sum())
            .collect()
    }
}

struct MeanSub(Vec<f64>);
impl Transformer<Vec<f64>, Vec<f64>> for MeanSub {
    fn apply(&self, x: &Vec<f64>) -> Vec<f64> {
        x.iter().zip(&self.0).map(|(v, m)| v - m).collect()
    }
}

fn column_means(data: &DistCollection<Vec<f64>>) -> Vec<f64> {
    let rows = data.collect();
    let n = rows.len().max(1) as f64;
    let dim = rows.first().map(|r| r.len()).unwrap_or(0);
    let mut mu = vec![0.0; dim];
    for r in &rows {
        for (m, v) in mu.iter_mut().zip(r) {
            *m += v / n;
        }
    }
    mu
}

/// Declares 6 passes, converges after one.
struct EagerSolver;
impl Estimator<Vec<f64>, Vec<f64>> for EagerSolver {
    fn fit(
        &self,
        data: &DistCollection<Vec<f64>>,
        _ctx: &ExecContext,
    ) -> Box<dyn Transformer<Vec<f64>, Vec<f64>>> {
        Box::new(MeanSub(column_means(data)))
    }

    fn weight(&self) -> u32 {
        6
    }
}

/// Declares one pass, actually iterates 8 times.
struct StubbornSolver;
impl Estimator<Vec<f64>, Vec<f64>> for StubbornSolver {
    fn fit(
        &self,
        data: &DistCollection<Vec<f64>>,
        _ctx: &ExecContext,
    ) -> Box<dyn Transformer<Vec<f64>, Vec<f64>>> {
        Box::new(MeanSub(column_means(data)))
    }

    fn fit_lazy(
        &self,
        data: &dyn Fn() -> DistCollection<Vec<f64>>,
        _ctx: &ExecContext,
    ) -> Box<dyn Transformer<Vec<f64>, Vec<f64>>> {
        let mut mu = Vec::new();
        for _ in 0..8 {
            mu = column_means(&data());
        }
        Box::new(MeanSub(mu))
    }
}

/// The mis-profiled two-branch gather of `examples/adaptive_refit.rs`, with
/// a skewed fat partition 0.
fn misprofiled_pipeline() -> Pipeline<Vec<f64>, Vec<f64>> {
    let rows: Vec<Vec<f64>> = (0..64)
        .map(|r| {
            let dim = if r < 16 { 48 } else { 12 };
            (0..dim)
                .map(|c| ((r * 31 + c * 7) % 17) as f64 * 0.25)
                .collect()
        })
        .collect();
    let train = DistCollection::from_vec(rows, 4);
    let input = Pipeline::<Vec<f64>, Vec<f64>>::input();
    let stale = input.and_then(WideLift).and_then_est(EagerSolver, &train);
    let hot = input
        .and_then(SkewLift)
        .and_then_est(StubbornSolver, &train);
    gather(&[stale, hot])
}

fn adaptive_opts() -> PipelineOptions {
    PipelineOptions {
        profile: ProfileOptions {
            sizes: vec![8, 16],
            seed: 7,
            select_operators: false,
            deterministic_timing: true,
        },
        ..PipelineOptions::full()
    }
    .with_budget(40_000)
}

fn opts() -> PipelineOptions {
    PipelineOptions {
        profile: ProfileOptions {
            sizes: vec![8, 16],
            seed: 17,
            select_operators: true,
            deterministic_timing: true,
        },
        ..PipelineOptions::full()
    }
}

fn main() {
    let capture = CaptureOptions {
        deterministic: true,
        label: "bench-snapshot".to_string(),
    };

    // Workload 1: the fused deep chain (the fusion pass's flagship case).
    // Columnar lowering is pinned off so this snapshot prices the record
    // path; workload 3 prices the same chain lowered columnar.
    let fit_ctx = ExecContext::default_cluster();
    let (fitted, report) = deep_chain().fit(&fit_ctx, &opts().with_columnar(false));
    let data: Vec<Vec<f64>> = (0..256)
        .map(|r| (0..DIM).map(|c| (r * DIM + c) as f64 * 1e-4).collect())
        .collect();
    let _ = fitted.apply(&DistCollection::from_vec(data.clone(), 4), &fit_ctx);
    let fusion_artifact = RunArtifact::capture_fit(&report, &fitted.plan(), &fit_ctx, &capture);
    let mut fusion = BenchSnapshot::from_artifact("fusion", &fusion_artifact);

    // Workload 2: micro-batched serving over the same plan.
    let server = Server::new(
        &fitted,
        BatchPolicy::new(8, 1e-4).with_queue_capacity(REQUESTS),
    );
    let serve_ctx = ExecContext::default_cluster();
    let outcome = server.run(
        LoadGen::new(42).requests_from_pool(REQUESTS, 1e-5, &data),
        &serve_ctx,
    );
    let serve_artifact = RunArtifact::capture_serve(
        &fitted.plan(),
        ServeSection::from_outcome(&outcome),
        &serve_ctx,
        &capture,
    );
    let mut serve = BenchSnapshot::from_artifact("serve", &serve_artifact);

    // Workload 3: the same deep chain with the fused chain lowered onto
    // `ColumnarBatch` slices. The chain carries no estimators, so the sim
    // prices the fused node synthetically and the columnar discount is
    // visible in the snapshot.
    let col_ctx = ExecContext::default_cluster();
    let (col_fitted, col_report) = deep_chain().fit(&col_ctx, &opts().with_columnar(true));
    assert_eq!(
        col_report.columnar_chains, 1,
        "bench chain should lower columnar"
    );
    let col_data: Vec<Vec<f64>> = (0..256)
        .map(|r| (0..DIM).map(|c| (r * DIM + c) as f64 * 1e-4).collect())
        .collect();
    let _ = col_fitted.apply(&DistCollection::from_vec(col_data, 4), &col_ctx);
    let columnar_artifact =
        RunArtifact::capture_fit(&col_report, &col_fitted.plan(), &col_ctx, &capture);
    let mut columnar = BenchSnapshot::from_artifact("columnar", &columnar_artifact);

    // Workload 4: adaptive re-optimization of the mis-profiled gather. The
    // static fit prices the optimizer's (wrong) beliefs; the adaptive fit
    // must claw back at least 20% of the simulated cost by evicting the
    // unpaid pick and promoting the hot one mid-fit.
    let static_ctx = ExecContext::default_cluster();
    let (_static_fitted, _static_report) =
        misprofiled_pipeline().fit(&static_ctx, &adaptive_opts().with_adaptive(false));
    let sim_static = static_ctx.sim.total_seconds();
    let adapt_ctx = ExecContext::default_cluster();
    let (adapt_fitted, adapt_report) =
        misprofiled_pipeline().fit(&adapt_ctx, &adaptive_opts().with_adaptive(true));
    let sim_adaptive = adapt_ctx.sim.total_seconds();
    assert!(
        !adapt_report.adaptation.revisions.is_empty(),
        "adaptive bench workload failed to trigger a revision"
    );
    let reduction = 1.0 - sim_adaptive / sim_static;
    assert!(
        reduction >= 0.20,
        "adaptive bench workload reduced sim cost only {:.1}%",
        reduction * 100.0
    );
    let adaptive_artifact =
        RunArtifact::capture_fit(&adapt_report, &adapt_fitted.plan(), &adapt_ctx, &capture);
    let mut adaptive = BenchSnapshot::from_artifact("adaptive", &adaptive_artifact);
    adaptive.set("adaptive.static_sim_secs", sim_static);
    adaptive.set("adaptive.reduction_ratio", reduction);
    adaptive.set(
        "adaptive.revisions",
        adapt_report.adaptation.revisions.len() as f64,
    );
    adaptive.set(
        "adaptive.recalibrations",
        adapt_report.adaptation.recalibrations as f64,
    );

    // Workload 5: the multi-tenant hyperparameter sweep fitted as a forest.
    // N independent fits price the unshared baseline; the forest fit must
    // merge the shared trunk and come in at least 2x cheaper.
    let train = keystoneml::workloads::dense_gen::TimitLike {
        n: 96,
        dim: 8,
        classes: 4,
        separation: 2.0,
        seed: 2611,
        stream: 0,
        partitions: 4,
        quantize: Some(64),
    }
    .generate();
    let labels = keystoneml::solvers::logistic::one_hot(&train.labels, 4);
    let sweep_cfg = keystoneml::workloads::sweep::SweepConfig::default();
    let tenants = keystoneml::workloads::sweep::sweep_pipelines(&sweep_cfg, &train.data, &labels);
    let forest_opts = PipelineOptions {
        profile: ProfileOptions {
            sizes: vec![8, 16],
            seed: 7,
            select_operators: false,
            deterministic_timing: true,
        },
        ..PipelineOptions::pipe_only()
    }
    .with_budget(1 << 30);
    let solo_total: f64 = tenants
        .iter()
        .map(|t| {
            let ctx = ExecContext::default_cluster();
            let _ = t.fit(&ctx, &forest_opts);
            ctx.sim.total_seconds()
        })
        .sum();
    let forest_ctx = ExecContext::default_cluster();
    let (forest_fitted, forest_report) =
        keystoneml::core::optimizer::fit_forest(&tenants, &forest_ctx, &forest_opts);
    let forest_secs = forest_ctx.sim.total_seconds();
    assert!(
        forest_report.shared,
        "multitenant bench workload fell back to sequential fits"
    );
    let speedup = solo_total / forest_secs;
    assert!(
        speedup >= 2.0,
        "multitenant bench workload sped up only {speedup:.2}x"
    );
    let forest_fit_report = forest_report.fit.as_ref().expect("shared fit report");
    let multitenant_artifact = RunArtifact::capture_fit(
        forest_fit_report,
        &forest_fitted[0].plan(),
        &forest_ctx,
        &capture,
    );
    let mut multitenant = BenchSnapshot::from_artifact("multitenant", &multitenant_artifact);
    multitenant.set("multitenant.tenants", tenants.len() as f64);
    multitenant.set("multitenant.solo_total_sim_secs", solo_total);
    multitenant.set("multitenant.forest_sim_secs", forest_secs);
    multitenant.set("multitenant.speedup_ratio", speedup);
    multitenant.set(
        "multitenant.cross_merges",
        forest_report.cross_merges.len() as f64,
    );

    // Negative-test hook: inflate every simulated cost so the gate trips.
    if std::env::var("KEYSTONE_BENCH_INJECT_SLOWDOWN").is_ok() {
        println!("injecting 1.5x virtual slowdown (negative test)");
        for snap in [
            &mut fusion,
            &mut serve,
            &mut columnar,
            &mut adaptive,
            &mut multitenant,
        ] {
            for (metric, value) in snap.metrics.iter_mut() {
                if metric.ends_with("_secs") {
                    *value *= 1.5;
                }
            }
        }
    }

    std::fs::create_dir_all("target").expect("create target/");
    let mut failed = false;
    for snap in [&fusion, &serve, &columnar, &adaptive, &multitenant] {
        let fresh_path = format!("target/BENCH_{}.json", snap.name);
        std::fs::write(&fresh_path, snap.to_json()).expect("write snapshot");
        let base_path = format!("benchmarks/BENCH_{}.json", snap.name);
        let Ok(base_json) = std::fs::read_to_string(&base_path) else {
            println!("{fresh_path}: no committed baseline at {base_path} (bootstrap run)");
            continue;
        };
        let base = BenchSnapshot::from_json(&base_json)
            .unwrap_or_else(|e| panic!("unreadable baseline {base_path}: {e}"));
        let gate = RegressionGate::default();
        let verdict = gate.check(&base, snap);
        println!(
            "== {} vs {base_path} (tolerance {:.0}%) ==",
            snap.name,
            gate.tolerance * 100.0
        );
        print!("{}", verdict.render_text());
        failed |= !verdict.passed();
    }
    if failed {
        eprintln!("regression gate failed; fresh snapshots are in target/BENCH_*.json");
        std::process::exit(3);
    }
}
