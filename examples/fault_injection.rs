//! Fault injection and lineage-based recovery: fit the same pipeline twice —
//! once clean, once under a seeded [`FaultPlan`] that injects task failures,
//! straggler delays, and cache-entry loss — and show that the results are
//! identical while the report accounts for every retry, speculative win, and
//! lineage recompute.
//!
//! ```sh
//! cargo run --release --example fault_injection
//! # target/fault_report.json holds the seeded-deterministic summary;
//! # running the example twice produces byte-identical files.
//! ```
//!
//! KeystoneML (§3) assumes a fault-tolerant dataflow substrate: lineage
//! makes lost state recomputable, so failures cost time but never
//! correctness. This example exercises that contract end to end — the
//! faulted fit takes recovery charges on the simulated clock, yet its
//! output checksum matches the clean run bit for bit.

use keystoneml::prelude::*;

/// Busy-waits per record so every partition does measurable work (the
/// speculation detector compares real per-partition busy times).
struct BusyWork(u64);
impl Transformer<Vec<f64>, Vec<f64>> for BusyWork {
    fn apply(&self, x: &Vec<f64>) -> Vec<f64> {
        let mut acc = 0.0f64;
        for i in 0..self.0 * 100 {
            acc += (i as f64).sqrt();
        }
        std::hint::black_box(acc);
        x.clone()
    }
}

/// An iterative estimator that re-reads its input once per pass through the
/// lazy handle, so fit-time cache hits (and injected cache losses) happen.
struct MultiPassMean {
    passes: u32,
}
impl Estimator<Vec<f64>, Vec<f64>> for MultiPassMean {
    fn fit(
        &self,
        _data: &DistCollection<Vec<f64>>,
        _ctx: &ExecContext,
    ) -> Box<dyn Transformer<Vec<f64>, Vec<f64>>> {
        unreachable!("fit_lazy overridden")
    }
    fn fit_lazy(
        &self,
        data: &dyn Fn() -> DistCollection<Vec<f64>>,
        _ctx: &ExecContext,
    ) -> Box<dyn Transformer<Vec<f64>, Vec<f64>>> {
        let mut mu = 0.0;
        for _ in 0..self.passes {
            let d = data();
            let n = d.count().max(1) as f64;
            mu = d.aggregate(0.0, |a, x| a + x[0], |a, b| a + b) / n;
        }
        struct Shift(f64);
        impl Transformer<Vec<f64>, Vec<f64>> for Shift {
            fn apply(&self, x: &Vec<f64>) -> Vec<f64> {
                x.iter().map(|v| v - self.0).collect()
            }
        }
        Box::new(Shift(mu))
    }
    fn weight(&self) -> u32 {
        self.passes
    }
}

/// Splitmix64-style fold over the output values: a stable checksum that two
/// runs (clean vs. faulted, or run vs. re-run) must agree on exactly.
fn checksum(rows: &[Vec<f64>]) -> u64 {
    let mut h = 0x517C_C1B7_2722_0A95_u64;
    for row in rows {
        for v in row {
            let mut z = h
                .wrapping_add(v.to_bits().wrapping_mul(0x9E3779B97F4A7C15))
                .wrapping_add(0x9E3779B97F4A7C15);
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            h = z ^ (z >> 31);
        }
    }
    h
}

fn fit_and_apply(ctx: &ExecContext) -> (Vec<Vec<f64>>, FitReport) {
    let train = DistCollection::from_vec((0..768).map(|i| vec![i as f64, 1.0]).collect(), 4);
    let pipe = Pipeline::<Vec<f64>, Vec<f64>>::input()
        .and_then(BusyWork(20))
        .and_then_est(MultiPassMean { passes: 6 }, &train);
    // LRU caching with a fixed budget keeps cache traffic (and therefore the
    // deterministic cache-loss probe sequence) independent of measured wall
    // times; operator selection is off for the same reason.
    let opts = PipelineOptions {
        caching: CachingStrategy::Lru {
            admission_fraction: 1.0,
        },
        mem_budget: Some(1 << 30),
        profile: ProfileOptions {
            sizes: vec![64, 128],
            seed: 7,
            select_operators: false,
            ..Default::default()
        },
        ..Default::default()
    };
    let (fitted, report) = pipe.fit(ctx, &opts);
    let test = DistCollection::from_vec((0..32).map(|i| vec![i as f64, 2.0]).collect(), 4);
    (fitted.apply(&test, ctx).collect(), report)
}

fn main() {
    const SEED: u64 = 0xDECAF;

    // Fault-free baseline.
    let clean_ctx = ExecContext::default_cluster();
    let (clean_out, _) = fit_and_apply(&clean_ctx);

    // Same pipeline under an aggressive seeded fault plan.
    let plan = FaultSpec::new(SEED)
        .with_task_failures(0.5)
        .with_stragglers(0.5)
        .with_cache_loss(0.6)
        .with_straggler_min_delay_us(20_000)
        .into_plan();
    let ctx = ExecContext::default_cluster().with_faults(plan);
    let (faulted_out, report) = fit_and_apply(&ctx);

    assert_eq!(clean_out, faulted_out, "faults must never change results");

    let obs = &report.observability;
    println!("== faulted fit: predicted vs actual, with recovery columns ==");
    print!("{}", obs.render_table());

    // Backoff time is derived purely from the seeded retry schedule, unlike
    // the speculative-copy charge (which prices copies at the measured wave
    // median), so it is the recovery figure two runs agree on exactly.
    let mut backoff_secs = 0.0;
    for e in ctx.tracer.events() {
        if let TraceEvent::TaskRetry {
            backoff_secs: b, ..
        } = e.event
        {
            backoff_secs += b;
        }
    }

    println!("\n== recovery summary (seed {SEED:#x}) ==");
    println!("retries:          {}", obs.retries);
    println!("speculative wins: {}", obs.speculative_wins);
    println!("cache losses:     {}", obs.cache_losses);
    println!("backoff charged:  {backoff_secs:.3}s (simulated)");
    println!(
        "output checksum:  {:#018x} (clean run: {:#018x})",
        checksum(&faulted_out),
        checksum(&clean_out)
    );

    // Persist only seeded-deterministic fields: re-running the example must
    // reproduce this file byte for byte (the CI determinism job checks).
    let json = format!(
        "{{\n  \"seed\": {SEED},\n  \"retries\": {},\n  \"speculative_wins\": {},\n  \
         \"cache_losses\": {},\n  \"backoff_secs\": {:.6},\n  \"output_checksum\": \"{:#018x}\"\n}}\n",
        obs.retries,
        obs.speculative_wins,
        obs.cache_losses,
        backoff_secs,
        checksum(&faulted_out)
    );
    std::fs::create_dir_all("target").expect("create target/");
    std::fs::write("target/fault_report.json", &json).expect("write fault report");
    println!("\nwrote target/fault_report.json");
}
