//! Fusion ablation: a depth-16 per-record transformer chain applied with
//! whole-stage fusion off vs on.
//!
//! Unfused, every stage is its own executor node: 16 task-span waves and 15
//! intermediate `DistCollection` allocations per apply. Fused, the optimizer
//! collapses the chain into one `FusedMap` that makes a single pass over
//! each partition. This example times both, prints the comparison, writes it
//! to `target/fusion_ablation.txt`, and asserts the fused plan is no slower
//! — CI runs it as the fusion-ablation smoke job.
//!
//! ```sh
//! cargo run --release --example fusion_ablation
//! ```

use std::time::Instant;

use keystoneml::prelude::*;

const DEPTH: usize = 16;
const RECORDS: usize = 60_000;
const DIM: usize = 16;
const PARTITIONS: usize = 8;
const TRIALS: usize = 5;

/// One per-record stage: `y[i] = a * x[i] + b`.
struct AxPlusB {
    a: f64,
    b: f64,
}

impl Transformer<Vec<f64>, Vec<f64>> for AxPlusB {
    fn apply(&self, x: &Vec<f64>) -> Vec<f64> {
        x.iter().map(|v| self.a * v + self.b).collect()
    }
}

fn chain() -> Pipeline<Vec<f64>, Vec<f64>> {
    let mut pipe = Pipeline::<Vec<f64>, Vec<f64>>::input();
    for i in 0..DEPTH {
        pipe = pipe.and_then(AxPlusB {
            a: 1.0 + i as f64 * 1e-3,
            b: 0.5,
        });
    }
    pipe
}

fn data() -> DistCollection<Vec<f64>> {
    let records: Vec<Vec<f64>> = (0..RECORDS)
        .map(|r| (0..DIM).map(|c| (r * DIM + c) as f64 * 1e-6).collect())
        .collect();
    DistCollection::from_vec(records, PARTITIONS)
}

/// Fits the chain under `opts` and returns (best apply seconds, spans per
/// apply, fused chain summary).
fn run(opts: &PipelineOptions) -> (f64, usize, String) {
    let ctx = ExecContext::default_cluster();
    let (fitted, report) = chain().fit(&ctx, opts);
    let input = data();
    // Warm-up pass, then best-of-N timed passes.
    let warm = fitted.apply(&input, &ctx).collect();
    assert_eq!(warm.len(), RECORDS);
    let mut best = f64::INFINITY;
    let mut spans = 0usize;
    for _ in 0..TRIALS {
        let mark = ctx.metrics.span_count();
        let start = Instant::now();
        let out = fitted.apply(&input, &ctx);
        std::hint::black_box(out.collect());
        best = best.min(start.elapsed().as_secs_f64());
        spans = ctx.metrics.span_count() - mark;
    }
    let summary = report
        .fused
        .iter()
        .map(|(_, members)| format!("{} members", members.len()))
        .collect::<Vec<_>>()
        .join(", ");
    (
        best,
        spans,
        if summary.is_empty() {
            format!("no fusion ({} stages)", DEPTH)
        } else {
            summary
        },
    )
}

fn main() {
    let (unfused_secs, unfused_spans, unfused_desc) =
        run(&PipelineOptions::full().with_fusion(false));
    let (fused_secs, fused_spans, fused_desc) = run(&PipelineOptions::full());

    let table = format!(
        "fusion ablation: depth-{DEPTH} per-record chain, {RECORDS} records x dim {DIM}, \
         {PARTITIONS} partitions, best of {TRIALS}\n\
         {:<10} {:>12} {:>14} plan\n\
         {:<10} {:>12.6} {:>14} {}\n\
         {:<10} {:>12.6} {:>14} {}\n\
         speedup: {:.2}x\n",
        "variant",
        "apply-secs",
        "spans/apply",
        "unfused",
        unfused_secs,
        unfused_spans,
        unfused_desc,
        "fused",
        fused_secs,
        fused_spans,
        fused_desc,
        unfused_secs / fused_secs,
    );
    print!("{table}");

    std::fs::create_dir_all("target").expect("create target dir");
    std::fs::write("target/fusion_ablation.txt", &table).expect("write ablation table");

    assert!(
        fused_desc.contains("members"),
        "full optimization did not fuse the chain"
    );
    assert!(
        fused_spans < unfused_spans,
        "fused plan should run fewer task spans ({fused_spans} vs {unfused_spans})"
    );
    assert!(
        fused_secs <= unfused_secs,
        "fused apply slower than unfused: {fused_secs:.6}s > {unfused_secs:.6}s"
    );
}
