//! # keystone-serve
//!
//! A micro-batched serving front-end for fitted KeystoneML pipelines — the
//! "millions of users" path: the training-time optimizations (whole-stage
//! fusion, materialization, operator selection) are amortized per *request*
//! by grouping single-record `apply()` calls into per-partition waves.
//!
//! The layer is built from three pieces:
//!
//! * [`policy::BatchPolicy`] — the batching knobs: maximum batch size,
//!   maximum linger (how long an open batch waits for more arrivals), and
//!   the bounded admission queue.
//! * [`batcher::MicroBatcher`] — a deterministic discrete-event loop over
//!   *virtual* time: requests arrive at stamped instants, admission control
//!   rejects when the queue is full, and each dispatched batch charges the
//!   executor for its (simulated) execution seconds. Per-request latency is
//!   decomposed exactly into queue + batch + execute components.
//! * [`server::Server`] — binds the batcher to a fitted pipeline's
//!   [`ExecutablePlan`](keystone_core::pipeline::ExecutablePlan): one batch
//!   = one `execute` wave through the very code path
//!   `FittedPipeline::apply` uses, with a cross-request
//!   [`CacheManager`](keystone_dataflow::cache::CacheManager) serving
//!   request-independent intermediates to later waves.
//!
//! Everything the layer *accounts* — linger, queue wait, execution cost —
//! lives on the simulated clock (`SimClock`) and is a pure function of the
//! plan, the policy, and the arrival schedule, so two runs with the same
//! seed produce bit-identical per-request breakdowns. Wall-clock time is
//! measured only to report sustained QPS.
//!
//! The differential testkit holds this path to the batch one: feeding
//! held-out records one at a time through a [`server::Server`] must be
//! bit-identical to a single `FittedPipeline::apply`, across batch-size and
//! linger settings, with and without injected faults.

pub mod batcher;
pub mod loadgen;
pub mod policy;
pub mod server;

pub use batcher::{
    Arrival, BatchSchedule, DispatchedBatch, MicroBatcher, Rejection, RequestTiming,
};
pub use loadgen::{percentile, LoadGen};
pub use policy::{BatchPolicy, RejectReason};
pub use server::{Request, Response, ServeOutcome, Server};
