//! The deterministic discrete-event micro-batcher.
//!
//! The batcher runs over *virtual* time: every request carries an arrival
//! instant, a single logical executor is busy until `free_at`, and the
//! dispatch rule below decides when the open batch ships. No wall clocks,
//! no threads — the schedule (and every per-request latency split derived
//! from it) is a pure function of the arrival stamps, the policy, and the
//! per-batch execution cost, which is what lets two load-generator runs
//! compare bit-identically.
//!
//! ## Dispatch rule
//!
//! With `open` = the oldest waiting request's arrival and `free_at` = when
//! the executor frees up, the next batch dispatches at
//!
//! * `max(free_at, arrival of the max_batch-th member)` once the queue
//!   holds a full batch,
//! * `max(free_at, open + max_linger)` while it doesn't and more arrivals
//!   may still join,
//! * `max(free_at, newest waiting arrival)` when the arrival stream is
//!   exhausted (no point lingering for requests that cannot come, but a
//!   batch can never ship before its youngest member has arrived).
//!
//! Arrivals strictly before the dispatch instant are admitted (or rejected
//! by the bounded queue) first; an arrival at exactly the dispatch instant
//! misses the wave. Backlogged requests left over from an oversized queue
//! carry their original arrival as `open`, so their linger window is
//! already spent and they ship as soon as the executor frees.
//!
//! ## Latency decomposition
//!
//! For a request arriving at `a`, dispatched at `D` in a wave that
//! executes for `E` seconds, with `ready = max(a, free_at_before)`:
//!
//! * `queue_secs = ready - a` — time blocked behind the busy executor,
//! * `batch_secs = D - ready` — time waiting for the batch to fill/linger,
//! * `execute_secs = E` — the wave itself,
//!
//! and `queue + batch + execute` is *exactly* the request's total virtual
//! latency `D + E - a`.

use std::collections::VecDeque;

use crate::policy::{BatchPolicy, RejectReason};

/// One request entering the batcher: an id, an arrival stamp, a payload.
#[derive(Debug, Clone)]
pub struct Arrival<T> {
    /// Caller-assigned id (unique per run).
    pub id: u64,
    /// Virtual arrival instant, seconds.
    pub at_secs: f64,
    /// The request payload (the record to score).
    pub payload: T,
}

/// A dispatched batch: members in FIFO order plus its schedule entry.
#[derive(Debug, Clone)]
pub struct DispatchedBatch<T> {
    /// Zero-based dispatch sequence number.
    pub index: u64,
    /// Members in admission (FIFO) order.
    pub members: Vec<Arrival<T>>,
    /// When the batch opened (oldest member's arrival), virtual seconds.
    pub open_secs: f64,
    /// When it dispatched, virtual seconds.
    pub dispatch_secs: f64,
    /// `dispatch - open`: how long the batch formation window stayed open.
    pub linger_secs: f64,
    /// The wave's charged execution seconds.
    pub execute_secs: f64,
}

/// A rejected request (bounded queue full at arrival).
#[derive(Debug, Clone)]
pub struct Rejection {
    /// The rejected request's id.
    pub id: u64,
    /// Its arrival instant.
    pub at_secs: f64,
    /// Queue depth observed at arrival.
    pub queue_depth: usize,
    /// Why it was refused.
    pub reason: RejectReason,
}

/// Per-request virtual-latency breakdown (see module docs).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RequestTiming {
    /// The request id.
    pub id: u64,
    /// Arrival instant, virtual seconds.
    pub arrival_secs: f64,
    /// Seconds blocked behind the busy executor.
    pub queue_secs: f64,
    /// Seconds waiting for the batch to fill or linger out.
    pub batch_secs: f64,
    /// The wave's execution seconds.
    pub execute_secs: f64,
    /// Which batch served the request.
    pub batch_index: u64,
}

impl RequestTiming {
    /// Total virtual latency: queue + batch + execute.
    pub fn total_secs(&self) -> f64 {
        self.queue_secs + self.batch_secs + self.execute_secs
    }
}

/// The batcher's complete, deterministic output.
#[derive(Debug, Clone)]
pub struct BatchSchedule<T> {
    /// Dispatched batches in dispatch order.
    pub batches: Vec<DispatchedBatch<T>>,
    /// Rejected requests in arrival order.
    pub rejects: Vec<Rejection>,
    /// Per-admitted-request latency splits, in admission order.
    pub timings: Vec<RequestTiming>,
    /// Largest queue depth observed (never exceeds the policy bound).
    pub max_queue_depth: usize,
    /// When the last wave finished, virtual seconds.
    pub makespan_secs: f64,
}

/// Discrete-event micro-batcher over one policy.
pub struct MicroBatcher {
    policy: BatchPolicy,
}

impl MicroBatcher {
    /// Creates a batcher with the given policy.
    pub fn new(policy: BatchPolicy) -> Self {
        MicroBatcher { policy }
    }

    /// The policy in effect.
    pub fn policy(&self) -> &BatchPolicy {
        &self.policy
    }

    /// Runs the event loop over `arrivals`, calling `execute` once per
    /// dispatched batch. `execute` receives the members (FIFO order) and
    /// returns the wave's virtual execution seconds; it is where the
    /// server actually scores the records.
    ///
    /// Arrivals are sorted by `(at_secs, id)` first, so callers may pass
    /// them in any order; ids must be unique.
    pub fn run<T>(
        &self,
        mut arrivals: Vec<Arrival<T>>,
        mut execute: impl FnMut(&DispatchedBatch<T>) -> f64,
    ) -> BatchSchedule<T> {
        arrivals.sort_by(|a, b| {
            a.at_secs
                .partial_cmp(&b.at_secs)
                .expect("arrival stamps are finite")
                .then(a.id.cmp(&b.id))
        });
        debug_assert!(
            {
                let mut ids: Vec<u64> = arrivals.iter().map(|a| a.id).collect();
                ids.sort_unstable();
                ids.windows(2).all(|w| w[0] != w[1])
            },
            "request ids must be unique"
        );

        let mut schedule = BatchSchedule {
            batches: Vec::new(),
            rejects: Vec::new(),
            timings: Vec::new(),
            max_queue_depth: 0,
            makespan_secs: 0.0,
        };
        let mut pending: VecDeque<Arrival<T>> = VecDeque::new();
        let mut iter = arrivals.into_iter().peekable();
        let mut free_at = 0.0f64;
        let mut batch_index = 0u64;

        loop {
            if pending.is_empty() {
                match iter.next() {
                    // Empty queue always admits.
                    Some(a) => {
                        pending.push_back(a);
                        schedule.max_queue_depth = schedule.max_queue_depth.max(pending.len());
                        continue;
                    }
                    None => break,
                }
            }

            let open = pending[0].at_secs;
            let cand = if pending.len() >= self.policy.max_batch {
                free_at.max(pending[self.policy.max_batch - 1].at_secs)
            } else if iter.peek().is_none() {
                // No more arrivals can come: ship as soon as the executor is
                // free and the youngest queued request has arrived. Waiting
                // out the linger would be pure added latency; dispatching at
                // `open` could ship a batch before its newest member exists.
                free_at.max(pending[pending.len() - 1].at_secs)
            } else {
                free_at.max(open + self.policy.max_linger_secs)
            };

            if let Some(next) = iter.peek() {
                if next.at_secs < cand {
                    let a = iter.next().expect("peeked");
                    if pending.len() >= self.policy.queue_capacity {
                        schedule.rejects.push(Rejection {
                            id: a.id,
                            at_secs: a.at_secs,
                            queue_depth: pending.len(),
                            reason: RejectReason::QueueFull {
                                capacity: self.policy.queue_capacity,
                            },
                        });
                    } else {
                        pending.push_back(a);
                        schedule.max_queue_depth = schedule.max_queue_depth.max(pending.len());
                    }
                    continue;
                }
            }

            // Dispatch at `cand`: take the first max_batch waiting requests.
            let take = pending.len().min(self.policy.max_batch);
            let members: Vec<Arrival<T>> = pending.drain(..take).collect();
            let mut batch = DispatchedBatch {
                index: batch_index,
                open_secs: open,
                dispatch_secs: cand,
                linger_secs: cand - open,
                execute_secs: 0.0,
                members,
            };
            let execute_secs = execute(&batch);
            debug_assert!(
                execute_secs.is_finite() && execute_secs >= 0.0,
                "execute cost must be a finite non-negative duration"
            );
            batch.execute_secs = execute_secs;
            for m in &batch.members {
                let ready = m.at_secs.max(free_at);
                schedule.timings.push(RequestTiming {
                    id: m.id,
                    arrival_secs: m.at_secs,
                    queue_secs: ready - m.at_secs,
                    batch_secs: cand - ready,
                    execute_secs,
                    batch_index,
                });
            }
            free_at = cand + execute_secs;
            schedule.makespan_secs = free_at;
            schedule.batches.push(batch);
            batch_index += 1;
        }
        schedule
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn arr(id: u64, at: f64) -> Arrival<u64> {
        Arrival {
            id,
            at_secs: at,
            payload: id,
        }
    }

    fn ids<T>(b: &DispatchedBatch<T>) -> Vec<u64> {
        b.members.iter().map(|m| m.id).collect()
    }

    #[test]
    fn full_batch_dispatches_without_waiting_out_the_linger() {
        let b = MicroBatcher::new(BatchPolicy::new(2, 10.0));
        let s = b.run(vec![arr(0, 0.0), arr(1, 0.5), arr(2, 9.0)], |_| 0.0);
        assert_eq!(s.batches.len(), 2);
        // Batch 0 fills at t=0.5, well before the linger bound.
        assert_eq!(ids(&s.batches[0]), vec![0, 1]);
        assert!((s.batches[0].dispatch_secs - 0.5).abs() < 1e-12);
        // The straggler ships alone once the stream ends (no tail linger).
        assert_eq!(ids(&s.batches[1]), vec![2]);
        assert!((s.batches[1].dispatch_secs - 9.0).abs() < 1e-12);
    }

    #[test]
    fn linger_bounds_the_wait_for_a_partial_batch() {
        let b = MicroBatcher::new(BatchPolicy::new(8, 1.0));
        // Request 1 arrives within the window, request 2 after it closes.
        let s = b.run(vec![arr(0, 0.0), arr(1, 0.4), arr(2, 1.7)], |_| 0.0);
        assert_eq!(s.batches.len(), 2);
        assert_eq!(ids(&s.batches[0]), vec![0, 1]);
        assert!((s.batches[0].dispatch_secs - 1.0).abs() < 1e-12);
        assert!((s.batches[0].linger_secs - 1.0).abs() < 1e-12);
        assert_eq!(ids(&s.batches[1]), vec![2]);
    }

    #[test]
    fn busy_executor_defers_dispatch_and_charges_queue_time() {
        // Batch 0 executes for 5s; request 1 arrives during that window and
        // must wait for the executor, all of it accounted as queue time.
        let b = MicroBatcher::new(BatchPolicy::new(1, 0.0));
        let s = b.run(vec![arr(0, 0.0), arr(1, 2.0)], |_| 5.0);
        assert_eq!(s.batches.len(), 2);
        assert!((s.batches[1].dispatch_secs - 5.0).abs() < 1e-12);
        let t1 = s.timings[1];
        assert!((t1.queue_secs - 3.0).abs() < 1e-12, "{t1:?}");
        assert!((t1.batch_secs - 0.0).abs() < 1e-12);
        assert!((t1.execute_secs - 5.0).abs() < 1e-12);
        assert!((t1.total_secs() - 8.0).abs() < 1e-12);
        assert!((s.makespan_secs - 10.0).abs() < 1e-12);
    }

    #[test]
    fn bounded_queue_rejects_with_observable_reason() {
        // Capacity 1, executor busy forever-ish: the second concurrent
        // arrival is rejected, the first waits.
        let b = MicroBatcher::new(BatchPolicy::new(1, 0.0).with_queue_capacity(1));
        let s = b.run(vec![arr(0, 0.0), arr(1, 1.0), arr(2, 1.5)], |_| 10.0);
        assert_eq!(s.rejects.len(), 1);
        let r = &s.rejects[0];
        assert_eq!(r.id, 2);
        assert_eq!(r.queue_depth, 1);
        assert_eq!(r.reason, RejectReason::QueueFull { capacity: 1 });
        assert_eq!(s.max_queue_depth, 1);
        // Every admitted request still got served.
        assert_eq!(s.timings.len(), 2);
    }

    #[test]
    fn latency_split_sums_exactly() {
        let b = MicroBatcher::new(BatchPolicy::new(4, 0.25));
        let arrivals: Vec<_> = (0..16).map(|i| arr(i, 0.1 * i as f64)).collect();
        let s = b.run(arrivals, |batch| 0.05 * batch.members.len() as f64);
        for t in &s.timings {
            let batch = &s.batches[t.batch_index as usize];
            let direct = batch.dispatch_secs + batch.execute_secs - t.arrival_secs;
            assert!(
                (t.total_secs() - direct).abs() < 1e-12,
                "decomposition does not sum: {t:?} vs direct {direct}"
            );
            assert!(t.queue_secs >= 0.0 && t.batch_secs >= 0.0);
        }
    }

    #[test]
    fn unsorted_arrivals_are_normalized() {
        let b = MicroBatcher::new(BatchPolicy::new(2, 0.0));
        let s = b.run(vec![arr(1, 5.0), arr(0, 1.0)], |_| 0.0);
        let all: Vec<u64> = s.batches.iter().flat_map(ids).collect();
        assert_eq!(all, vec![0, 1]);
    }
}
