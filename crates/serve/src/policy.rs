//! Batching-policy knobs and admission-control outcomes.

/// Why admission control refused a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectReason {
    /// The bounded queue already held `capacity` waiting requests.
    QueueFull {
        /// The configured queue capacity (= depth observed at arrival).
        capacity: usize,
    },
}

impl std::fmt::Display for RejectReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RejectReason::QueueFull { capacity } => {
                write!(f, "queue full (capacity {capacity})")
            }
        }
    }
}

/// The micro-batching policy: when an open batch stops waiting and ships.
///
/// A batch dispatches at the earliest instant at which (a) the logical
/// executor is free and (b) either the batch holds `max_batch` requests or
/// the oldest member has lingered `max_linger_secs`. Requests arriving
/// while the queue already holds `queue_capacity` waiting requests are
/// rejected with [`RejectReason::QueueFull`].
#[derive(Debug, Clone)]
pub struct BatchPolicy {
    /// Maximum requests per dispatched batch (≥ 1).
    pub max_batch: usize,
    /// Maximum virtual seconds an open batch waits for more arrivals once
    /// its first member is ready. Zero means dispatch immediately.
    pub max_linger_secs: f64,
    /// Bound on requests waiting for dispatch (≥ 1). Arrivals beyond it
    /// are rejected, never silently dropped.
    pub queue_capacity: usize,
    /// Partition count for the wave's `DistCollection` (default 1: a
    /// micro-batch is one task). Raising it lets huge batches fan out.
    pub batch_partitions: usize,
}

impl BatchPolicy {
    /// A policy with the given batch size and linger, default queue bound.
    pub fn new(max_batch: usize, max_linger_secs: f64) -> Self {
        BatchPolicy {
            max_batch: max_batch.max(1),
            max_linger_secs: max_linger_secs.max(0.0),
            queue_capacity: 64,
            batch_partitions: 1,
        }
    }

    /// Sets the bounded-queue capacity.
    pub fn with_queue_capacity(mut self, capacity: usize) -> Self {
        self.queue_capacity = capacity.max(1);
        self
    }

    /// Sets the per-wave partition count.
    pub fn with_batch_partitions(mut self, partitions: usize) -> Self {
        self.batch_partitions = partitions.max(1);
        self
    }
}

impl Default for BatchPolicy {
    fn default() -> Self {
        BatchPolicy::new(8, 1e-3)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructor_clamps_degenerate_knobs() {
        let p = BatchPolicy::new(0, -1.0)
            .with_queue_capacity(0)
            .with_batch_partitions(0);
        assert_eq!(p.max_batch, 1);
        assert_eq!(p.max_linger_secs, 0.0);
        assert_eq!(p.queue_capacity, 1);
        assert_eq!(p.batch_partitions, 1);
    }

    #[test]
    fn reject_reason_displays_capacity() {
        let r = RejectReason::QueueFull { capacity: 4 };
        assert_eq!(r.to_string(), "queue full (capacity 4)");
    }
}
