//! Seeded load generation and latency-summary helpers.
//!
//! The generator is a tiny splitmix64 stream (the same primitive the
//! testkit uses, duplicated here because `keystone-testkit` depends on
//! this crate): a seed fully determines every arrival stamp, so a load
//! profile regenerates bit-identically across runs and processes.

use crate::server::Request;

/// Seeded arrival-schedule generator.
#[derive(Debug, Clone)]
pub struct LoadGen {
    state: u64,
}

impl LoadGen {
    /// A generator seeded with `seed`.
    pub fn new(seed: u64) -> Self {
        LoadGen {
            state: seed ^ 0x6A09_E667_F3BC_C908,
        }
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, 1)` with 53 random bits.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// `n` arrival stamps with inter-arrival gaps uniform in
    /// `[0.5, 1.5) × mean_gap_secs`, starting at zero.
    pub fn arrival_stamps(&mut self, n: usize, mean_gap_secs: f64) -> Vec<f64> {
        let mut at = 0.0;
        (0..n)
            .map(|_| {
                let stamp = at;
                at += mean_gap_secs * (0.5 + self.next_f64());
                stamp
            })
            .collect()
    }

    /// `n` requests drawing records round-robin from `pool`, ids `0..n`,
    /// with [`LoadGen::arrival_stamps`] spacing.
    pub fn requests_from_pool<A: Clone>(
        &mut self,
        n: usize,
        mean_gap_secs: f64,
        pool: &[A],
    ) -> Vec<Request<A>> {
        assert!(!pool.is_empty(), "record pool is empty");
        self.arrival_stamps(n, mean_gap_secs)
            .into_iter()
            .enumerate()
            .map(|(i, at_secs)| Request {
                id: i as u64,
                arrival_secs: at_secs,
                record: pool[i % pool.len()].clone(),
            })
            .collect()
    }
}

/// Nearest-rank percentile of an unsorted sample (`p` in `[0, 100]`).
/// Returns 0.0 on an empty sample.
pub fn percentile(samples: &[f64], p: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_reproduces_the_schedule() {
        let a = LoadGen::new(7).arrival_stamps(32, 0.01);
        let b = LoadGen::new(7).arrival_stamps(32, 0.01);
        assert_eq!(a, b);
        assert!(a.windows(2).all(|w| w[1] > w[0]), "stamps not increasing");
        assert_eq!(a[0], 0.0);
    }

    #[test]
    fn different_seeds_differ() {
        assert_ne!(
            LoadGen::new(1).arrival_stamps(8, 1.0),
            LoadGen::new(2).arrival_stamps(8, 1.0)
        );
    }

    #[test]
    fn pool_requests_cycle_records() {
        let reqs = LoadGen::new(3).requests_from_pool(5, 1.0, &[10i64, 20]);
        assert_eq!(reqs.len(), 5);
        let records: Vec<i64> = reqs.iter().map(|r| r.record).collect();
        assert_eq!(records, vec![10, 20, 10, 20, 10]);
        let ids: Vec<u64> = reqs.iter().map(|r| r.id).collect();
        assert_eq!(ids, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn percentile_is_nearest_rank() {
        let xs = vec![4.0, 1.0, 3.0, 2.0];
        assert_eq!(percentile(&xs, 50.0), 2.0);
        assert_eq!(percentile(&xs, 99.0), 4.0);
        assert_eq!(percentile(&xs, 0.0), 1.0);
        assert_eq!(percentile(&[], 50.0), 0.0);
    }
}
