//! The serving front-end: micro-batcher × executable plan.
//!
//! A [`Server`] owns a fitted pipeline's
//! [`ExecutablePlan`](keystone_core::pipeline::ExecutablePlan), a
//! [`BatchPolicy`], and one long-lived
//! [`CacheManager`](keystone_dataflow::cache::CacheManager) pinned to the
//! plan's request-independent nodes. Each dispatched batch runs as a single
//! apply wave through `ExecutablePlan::execute_erased_with_cache` — the
//! same code path `FittedPipeline::apply` uses — so a request's score
//! cannot depend on how it was batched.
//!
//! Accounting is split between the two clocks: the *simulated* clock takes
//! the deterministic quantities (per-wave execution cost from
//! `ExecutablePlan::est_apply_secs` under `serve:execute`, batch linger
//! under `serve:linger`), while wall time is measured only for the
//! sustained-QPS figure. Per-request latency splits, counters
//! (`serve.admitted`, `serve.rejected`, `serve.batches`,
//! `serve.responses`), the `serve.latency_secs` histogram, and
//! `ServeBatch`/`ServeReject` trace events surface through the context's
//! `MetricsRegistry` and `Tracer`.

use std::marker::PhantomData;
use std::sync::Arc;
use std::time::Instant;

use keystone_core::context::ExecContext;
use keystone_core::operator::AnyData;
use keystone_core::pipeline::{ExecutablePlan, FittedPipeline};
use keystone_core::record::Record;
use keystone_core::trace::TraceEvent;
use keystone_dataflow::cache::{CacheManager, CachePolicy};
use keystone_dataflow::collection::DistCollection;

use crate::batcher::{Arrival, MicroBatcher, Rejection, RequestTiming};
use crate::loadgen::percentile;
use crate::policy::BatchPolicy;

/// Latency-histogram bucket bounds (virtual seconds).
const LATENCY_BOUNDS: [f64; 8] = [1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0];

/// One single-record apply call entering the front-end.
#[derive(Debug, Clone)]
pub struct Request<A> {
    /// Caller-assigned id, unique per run.
    pub id: u64,
    /// Virtual arrival instant, seconds.
    pub arrival_secs: f64,
    /// The record to score.
    pub record: A,
}

/// A served request: its output plus the latency split.
#[derive(Debug, Clone)]
pub struct Response<B> {
    /// The request id.
    pub id: u64,
    /// The pipeline's output for the request's record.
    pub output: B,
    /// Queue/batch/execute breakdown on the virtual clock.
    pub timing: RequestTiming,
}

/// Payload-free record of one dispatched wave.
#[derive(Debug, Clone, Copy)]
pub struct BatchRecord {
    /// Dispatch sequence number.
    pub index: u64,
    /// Requests in the wave.
    pub size: usize,
    /// When the batch opened, virtual seconds.
    pub open_secs: f64,
    /// When it dispatched, virtual seconds.
    pub dispatch_secs: f64,
    /// Formation-window length (`dispatch - open`).
    pub linger_secs: f64,
    /// Charged execution seconds.
    pub execute_secs: f64,
}

/// The complete result of one serving run.
#[derive(Debug, Clone)]
pub struct ServeOutcome<B> {
    /// Served requests, sorted by id.
    pub responses: Vec<Response<B>>,
    /// Rejected requests, sorted by id.
    pub rejects: Vec<Rejection>,
    /// Dispatched waves in dispatch order.
    pub batches: Vec<BatchRecord>,
    /// Largest queue depth observed.
    pub max_queue_depth: usize,
    /// When the last wave finished, virtual seconds.
    pub makespan_secs: f64,
    /// Measured wall seconds for the whole run (QPS only — every other
    /// number in this struct is virtual and deterministic).
    pub wall_secs: f64,
}

impl<B> ServeOutcome<B> {
    /// Sustained wall-clock throughput: responses per measured second.
    pub fn qps(&self) -> f64 {
        if self.wall_secs <= 0.0 {
            return 0.0;
        }
        self.responses.len() as f64 / self.wall_secs
    }

    /// Nearest-rank percentile of total virtual latency (`p` in 0..=100).
    pub fn latency_percentile(&self, p: f64) -> f64 {
        let totals: Vec<f64> = self
            .responses
            .iter()
            .map(|r| r.timing.total_secs())
            .collect();
        percentile(&totals, p)
    }

    /// The outputs in id order.
    pub fn outputs(&self) -> Vec<&B> {
        self.responses.iter().map(|r| &r.output).collect()
    }
}

/// Micro-batched request front-end over one fitted pipeline.
pub struct Server<A: Record, B: Record> {
    plan: Arc<ExecutablePlan>,
    policy: BatchPolicy,
    cache: Arc<CacheManager>,
    _ph: PhantomData<fn(&A) -> B>,
}

impl<A: Record, B: Record> Server<A, B> {
    /// A server over a fitted pipeline.
    pub fn new(fitted: &FittedPipeline<A, B>, policy: BatchPolicy) -> Self {
        Self::from_plan(fitted.plan(), policy)
    }

    /// A server over a raw plan (serving/test harnesses that assemble the
    /// optimized graph directly). The cross-request cache is pinned to the
    /// plan's request-independent nodes, so nothing an input influences can
    /// ever leak from one wave into another.
    pub fn from_plan(plan: Arc<ExecutablePlan>, policy: BatchPolicy) -> Self {
        let keys = plan
            .reusable_nodes()
            .into_iter()
            .map(|n| n as u64)
            .collect();
        let cache = Arc::new(CacheManager::new(u64::MAX, CachePolicy::Pinned(keys)));
        Server {
            plan,
            policy,
            cache,
            _ph: PhantomData,
        }
    }

    /// The policy in effect.
    pub fn policy(&self) -> &BatchPolicy {
        &self.policy
    }

    /// The executable plan waves run through (artifact capture joins
    /// serve telemetry back to this plan's node ids).
    pub fn plan(&self) -> &Arc<ExecutablePlan> {
        &self.plan
    }

    /// The shared cross-request cache (its hit counters are the evidence
    /// that request-independent work amortizes across waves).
    pub fn cache(&self) -> &CacheManager {
        &self.cache
    }

    /// Runs the batcher over `requests`, scoring each dispatched wave as
    /// one plan execution. The cache persists across calls, so a warm
    /// server keeps its materialized intermediates.
    ///
    /// # Panics
    /// Panics if a wave's output count differs from its input count — the
    /// serving layer requires a record-wise pipeline (every apply produces
    /// exactly one output per input record).
    pub fn run(&self, requests: Vec<Request<A>>, ctx: &ExecContext) -> ServeOutcome<B> {
        let start = Instant::now();
        let workers = ctx.resources.workers;
        let arrivals: Vec<Arrival<A>> = requests
            .into_iter()
            .map(|r| Arrival {
                id: r.id,
                at_secs: r.arrival_secs,
                payload: r.record,
            })
            .collect();

        let mut scored: Vec<(u64, B)> = Vec::new();
        let batcher = MicroBatcher::new(self.policy.clone());
        let schedule = batcher.run(arrivals, |batch| {
            let records: Vec<A> = batch.members.iter().map(|m| m.payload.clone()).collect();
            let n = records.len();
            let partitions = self.policy.batch_partitions.min(n).max(1);
            let wave = DistCollection::from_vec(records, partitions);
            let out: DistCollection<B> = self
                .plan
                .execute_erased_with_cache(AnyData::wrap(wave), ctx, self.cache.clone())
                .downcast();
            let outputs = out.collect();
            assert_eq!(
                outputs.len(),
                n,
                "serving requires a record-wise pipeline ({n} records in, {} out)",
                outputs.len()
            );
            for (m, o) in batch.members.iter().zip(outputs) {
                scored.push((m.id, o));
            }
            // The wave's deterministic virtual cost; wall time stays out of
            // the accounting so two same-seed runs split bit-identically.
            let execute_secs = self.plan.est_apply_secs(n, workers);
            ctx.sim.charge_seconds("serve:execute", execute_secs, 0.0);
            ctx.sim
                .charge_seconds("serve:linger", batch.linger_secs, 0.0);
            ctx.metrics.inc_counter("serve.batches", 1);
            ctx.metrics.inc_counter("serve.responses", n as u64);
            ctx.tracer.record(TraceEvent::ServeBatch {
                batch: batch.index,
                size: n,
                dispatch_secs: batch.dispatch_secs,
                linger_secs: batch.linger_secs,
                execute_secs,
            });
            execute_secs
        });

        ctx.metrics
            .inc_counter("serve.admitted", schedule.timings.len() as u64);
        ctx.metrics
            .inc_counter("serve.rejected", schedule.rejects.len() as u64);
        ctx.metrics
            .set_gauge("serve.max_queue_depth", schedule.max_queue_depth as f64);
        for t in &schedule.timings {
            ctx.metrics
                .observe("serve.latency_secs", &LATENCY_BOUNDS, t.total_secs());
        }
        for r in &schedule.rejects {
            ctx.tracer.record(TraceEvent::ServeReject {
                request: r.id,
                at_secs: r.at_secs,
                queue_depth: r.queue_depth,
            });
        }

        let mut timings: Vec<RequestTiming> = schedule.timings;
        timings.sort_by_key(|t| t.id);
        scored.sort_by_key(|(id, _)| *id);
        debug_assert_eq!(scored.len(), timings.len());
        let responses: Vec<Response<B>> = scored
            .into_iter()
            .zip(timings)
            .map(|((id, output), timing)| {
                debug_assert_eq!(id, timing.id);
                Response { id, output, timing }
            })
            .collect();
        let mut rejects = schedule.rejects;
        rejects.sort_by_key(|r| r.id);
        let batches: Vec<BatchRecord> = schedule
            .batches
            .iter()
            .map(|b| BatchRecord {
                index: b.index,
                size: b.members.len(),
                open_secs: b.open_secs,
                dispatch_secs: b.dispatch_secs,
                linger_secs: b.linger_secs,
                execute_secs: b.execute_secs,
            })
            .collect();

        ServeOutcome {
            responses,
            rejects,
            batches,
            max_queue_depth: schedule.max_queue_depth,
            makespan_secs: schedule.makespan_secs,
            wall_secs: start.elapsed().as_secs_f64(),
        }
    }
}
