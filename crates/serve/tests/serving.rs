//! End-to-end serving tests: equivalence with batch apply, behavior under
//! injected faults, bit-identical latency accounting across runs, and
//! cross-request cache reuse.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use keystone_core::context::ExecContext;
use keystone_core::graph::{Graph, NodeKind};
use keystone_core::operator::{AnyData, Estimator, Transformer, TypedEstimator, TypedTransformer};
use keystone_core::optimizer::PipelineOptions;
use keystone_core::pipeline::{ExecutablePlan, FittedPipeline, Pipeline};
use keystone_core::profiler::ProfileOptions;
use keystone_core::trace::TraceEvent;
use keystone_dataflow::cluster::ClusterProfile;
use keystone_dataflow::collection::DistCollection;
use keystone_dataflow::faults::FaultSpec;
use keystone_serve::{BatchPolicy, LoadGen, Request, Server};

struct Inc;
impl Transformer<f64, f64> for Inc {
    fn apply(&self, x: &f64) -> f64 {
        x + 1.0
    }
}

struct Scale;
impl Transformer<f64, f64> for Scale {
    fn apply(&self, x: &f64) -> f64 {
        x * 3.0
    }
}

/// Subtracts the training mean (fit on the train branch, applied per
/// record — the canonical record-wise estimator).
struct MeanCenter;
impl Estimator<f64, f64> for MeanCenter {
    fn fit(
        &self,
        data: &DistCollection<f64>,
        _ctx: &ExecContext,
    ) -> Box<dyn Transformer<f64, f64>> {
        let n = data.count().max(1) as f64;
        let mu = data.aggregate(0.0, |a, x| a + x, |a, b| a + b) / n;
        struct Shift(f64);
        impl Transformer<f64, f64> for Shift {
            fn apply(&self, x: &f64) -> f64 {
                x - self.0
            }
        }
        Box::new(Shift(mu))
    }
}

fn ctx() -> ExecContext {
    ExecContext::new(ClusterProfile::R3_4xlarge.descriptor(4))
}

fn profile_opts() -> ProfileOptions {
    ProfileOptions {
        sizes: vec![4, 8],
        seed: 1,
        select_operators: true,
        deterministic_timing: true,
    }
}

fn fitted_pipeline(ctx: &ExecContext) -> FittedPipeline<f64, f64> {
    let train = DistCollection::from_vec((0..32).map(|i| i as f64).collect::<Vec<_>>(), 4);
    let pipe = Pipeline::<f64, f64>::input()
        .and_then(Inc)
        .and_then(Scale)
        .and_then_est(MeanCenter, &train);
    let (fitted, _) = pipe.fit(
        ctx,
        &PipelineOptions {
            profile: profile_opts(),
            ..Default::default()
        },
    );
    fitted
}

fn one_at_a_time(records: &[f64]) -> Vec<Request<f64>> {
    records
        .iter()
        .enumerate()
        .map(|(i, &record)| Request {
            id: i as u64,
            arrival_secs: i as f64 * 1e-4,
            record,
        })
        .collect()
}

#[test]
fn serving_matches_batch_apply_bitwise() {
    let fit_ctx = ctx();
    let fitted = fitted_pipeline(&fit_ctx);
    let held_out: Vec<f64> = (0..17).map(|i| 0.25 * i as f64 - 2.0).collect();
    let batch_ctx = ctx();
    let baseline: Vec<u64> = fitted
        .apply(&DistCollection::from_vec(held_out.clone(), 2), &batch_ctx)
        .collect()
        .into_iter()
        .map(f64::to_bits)
        .collect();

    for (max_batch, linger) in [(1usize, 0.0), (4, 2e-4), (8, 1e-3)] {
        let serve_ctx = ctx();
        let server = Server::new(&fitted, BatchPolicy::new(max_batch, linger));
        let outcome = server.run(one_at_a_time(&held_out), &serve_ctx);
        assert!(outcome.rejects.is_empty());
        let served: Vec<u64> = outcome
            .responses
            .iter()
            .map(|r| r.output.to_bits())
            .collect();
        assert_eq!(
            served, baseline,
            "serve (batch={max_batch}, linger={linger}) diverged from batch apply"
        );
    }
}

#[test]
fn serving_under_injected_faults_answers_every_request_identically() {
    let fit_ctx = ctx();
    let fitted = fitted_pipeline(&fit_ctx);
    let held_out: Vec<f64> = (0..13).map(|i| 0.5 * i as f64).collect();

    let calm_ctx = ctx();
    let calm =
        Server::new(&fitted, BatchPolicy::new(4, 1e-4)).run(one_at_a_time(&held_out), &calm_ctx);

    // The same serving schedule with an aggressive fault plan active: the
    // apply path runs memoized (fault-free by design), so every request is
    // answered, bit-identically, with zero recovery events.
    let faulty_ctx = ctx().with_faults(
        FaultSpec::new(0xFA17)
            .with_task_failures(0.25)
            .with_stragglers(0.2)
            .with_cache_loss(0.3)
            .with_straggler_min_delay_us(200)
            .into_plan(),
    );
    let faulty =
        Server::new(&fitted, BatchPolicy::new(4, 1e-4)).run(one_at_a_time(&held_out), &faulty_ctx);

    assert_eq!(faulty.responses.len(), held_out.len());
    assert!(faulty.rejects.is_empty());
    let a: Vec<u64> = calm.responses.iter().map(|r| r.output.to_bits()).collect();
    let b: Vec<u64> = faulty
        .responses
        .iter()
        .map(|r| r.output.to_bits())
        .collect();
    assert_eq!(a, b, "fault plan changed served predictions");
    assert_eq!(
        faulty_ctx.tracer.recovery_stats(),
        Default::default(),
        "serving waves must be fault-free"
    );
}

#[test]
fn latency_accounting_is_bit_identical_across_runs() {
    let run = || {
        let fit_ctx = ctx();
        let fitted = fitted_pipeline(&fit_ctx);
        let serve_ctx = ctx().with_faults(FaultSpec::new(9).with_task_failures(0.5).into_plan());
        let pool: Vec<f64> = (0..8).map(|i| i as f64 * 0.125).collect();
        let requests = LoadGen::new(21).requests_from_pool(96, 5e-4, &pool);
        let server = Server::new(&fitted, BatchPolicy::new(8, 1e-3).with_queue_capacity(16));
        let outcome = server.run(requests, &serve_ctx);
        let timings: Vec<(u64, u64, u64, u64, u64)> = outcome
            .responses
            .iter()
            .map(|r| {
                (
                    r.timing.id,
                    r.timing.queue_secs.to_bits(),
                    r.timing.batch_secs.to_bits(),
                    r.timing.execute_secs.to_bits(),
                    r.timing.arrival_secs.to_bits(),
                )
            })
            .collect();
        // Only the serve-charged stages are asserted bit-identical: the
        // executor's own per-node charges fall back to wall time for
        // unprofiled apply-path nodes (profiling skips dependents of the
        // runtime input), which is measured, not simulated.
        let sim: Vec<(String, u64)> = serve_ctx
            .sim
            .by_stage()
            .into_iter()
            .filter(|(stage, _)| stage == "serve")
            .map(|(stage, secs)| (stage, secs.to_bits()))
            .collect();
        assert!(!sim.is_empty());
        (
            timings,
            serve_ctx.tracer.recovery_stats(),
            sim,
            outcome.makespan_secs.to_bits(),
            outcome.rejects.len(),
        )
    };
    let first = run();
    let second = run();
    assert_eq!(
        first, second,
        "two identical load-generator runs must produce identical accounting"
    );
}

#[test]
fn serve_metrics_and_trace_events_surface() {
    let fit_ctx = ctx();
    let fitted = fitted_pipeline(&fit_ctx);
    let held_out: Vec<f64> = (0..12).map(|i| i as f64).collect();
    let serve_ctx = ctx();
    let server = Server::new(&fitted, BatchPolicy::new(4, 1e-4));
    let outcome = server.run(one_at_a_time(&held_out), &serve_ctx);

    assert_eq!(serve_ctx.metrics.counter("serve.admitted"), 12);
    assert_eq!(serve_ctx.metrics.counter("serve.rejected"), 0);
    assert_eq!(serve_ctx.metrics.counter("serve.responses"), 12);
    assert_eq!(
        serve_ctx.metrics.counter("serve.batches"),
        outcome.batches.len() as u64
    );
    let hist = serve_ctx
        .metrics
        .histogram("serve.latency_secs")
        .expect("latency histogram recorded");
    assert_eq!(hist.count(), 12);

    let batch_events: Vec<(u64, usize)> = serve_ctx
        .tracer
        .events()
        .into_iter()
        .filter_map(|e| match e.event {
            TraceEvent::ServeBatch { batch, size, .. } => Some((batch, size)),
            _ => None,
        })
        .collect();
    assert_eq!(batch_events.len(), outcome.batches.len());
    assert_eq!(batch_events.iter().map(|&(_, s)| s).sum::<usize>(), 12);
    assert!(batch_events.windows(2).all(|w| w[0].0 < w[1].0));

    // Virtual accounting landed on the simulated clock under serve stages.
    let stages = serve_ctx.sim.by_stage();
    assert!(stages.iter().any(|(s, _)| s == "serve"));
}

#[test]
fn bounded_queue_rejections_are_traced() {
    let fit_ctx = ctx();
    let fitted = fitted_pipeline(&fit_ctx);
    // Batch 1, capacity 1, all requests arriving while the executor grinds:
    // most requests must be rejected, observably.
    let records: Vec<f64> = (0..10).map(|i| i as f64).collect();
    let requests: Vec<Request<f64>> = records
        .iter()
        .enumerate()
        .map(|(i, &record)| Request {
            id: i as u64,
            arrival_secs: 1e-9 * i as f64,
            record,
        })
        .collect();
    let serve_ctx = ctx();
    let server = Server::new(&fitted, BatchPolicy::new(1, 0.0).with_queue_capacity(1));
    let outcome = server.run(requests, &serve_ctx);
    assert!(
        !outcome.rejects.is_empty(),
        "expected queue-full rejections"
    );
    assert_eq!(outcome.responses.len() + outcome.rejects.len(), 10);
    assert_eq!(
        serve_ctx.metrics.counter("serve.rejected"),
        outcome.rejects.len() as u64
    );
    let reject_events = serve_ctx
        .tracer
        .events()
        .into_iter()
        .filter(|e| matches!(e.event, TraceEvent::ServeReject { .. }))
        .count();
    assert_eq!(reject_events, outcome.rejects.len());
    assert!(outcome.max_queue_depth <= 1);
}

/// Counts collection-level passes, like the executor tests' idiom.
struct CountingDouble(Arc<AtomicU64>);
impl Transformer<f64, f64> for CountingDouble {
    fn apply(&self, x: &f64) -> f64 {
        x * 2.0
    }
    fn apply_collection(
        &self,
        input: &DistCollection<f64>,
        _ctx: &ExecContext,
    ) -> DistCollection<f64> {
        self.0.fetch_add(1, Ordering::SeqCst);
        input.map(|x| x * 2.0)
    }
}

#[test]
fn request_independent_work_is_computed_once_across_waves() {
    // Hand-built plan: a train-side branch (source → counted transform →
    // estimator) feeding a ModelApply over the runtime input. With no
    // preloaded models, every wave refits the estimator — but the counted
    // transform is request-independent, so the server's cross-request
    // cache must serve it to waves 2..n.
    let calls = Arc::new(AtomicU64::new(0));
    let mut g = Graph::new();
    let input = g.add(NodeKind::RuntimeInput, vec![], "input");
    let train = DistCollection::from_vec(vec![1.0, 2.0, 3.0], 2);
    let src = g.add(
        NodeKind::DataSource(AnyData::wrap(train)),
        vec![],
        "train-data",
    );
    let counted = g.add(
        NodeKind::Transform(Arc::new(TypedTransformer::new(CountingDouble(
            calls.clone(),
        )))),
        vec![src],
        "double",
    );
    let est = g.add(
        NodeKind::Estimate(Arc::new(TypedEstimator::new(MeanCenter))),
        vec![counted],
        "mean",
    );
    let apply = g.add(NodeKind::ModelApply, vec![est, input], "meanModel");
    let plan = Arc::new(ExecutablePlan::new(
        Arc::new(g),
        apply,
        HashMap::new(),
        Arc::new(HashMap::new()),
    ));
    assert_eq!(
        plan.reusable_nodes().into_iter().collect::<Vec<_>>(),
        vec![counted],
        "only the request-independent transform is reusable"
    );

    let serve_ctx = ctx();
    let server = Server::<f64, f64>::from_plan(plan, BatchPolicy::new(1, 0.0));
    let records = [10.0f64, 20.0, 30.0];
    let outcome = server.run(one_at_a_time(&records), &serve_ctx);

    // mean(double([1,2,3])) = 4: every record is shifted by -4.
    let outputs: Vec<f64> = outcome.responses.iter().map(|r| r.output).collect();
    assert_eq!(outputs, vec![6.0, 16.0, 26.0]);
    assert_eq!(
        calls.load(Ordering::SeqCst),
        1,
        "request-independent transform recomputed across waves"
    );
    let stats = server.cache().stats();
    assert_eq!(stats.hits, 2, "waves 2 and 3 must hit the shared cache");
}
