//! Micro-batcher invariants under arbitrary arrival schedules and
//! policies:
//!
//! * no admitted request is lost or duplicated — every id lands in exactly
//!   one of {some batch's members, the reject list},
//! * FIFO order holds within each batch *and* across batches (dispatch
//!   drains the queue front),
//! * every admitted request gets exactly one timing whose queue/batch/
//!   execute split is non-negative and sums exactly to dispatch + execute
//!   − arrival,
//! * rejects are observable with the queue depth that caused them,
//! * the queue depth never exceeds the configured bound.

use keystone_serve::{Arrival, BatchPolicy, MicroBatcher, RejectReason};
use proptest::prelude::*;

/// Builds arrivals with ids `0..gaps.len()` and the given inter-arrival
/// gaps (ids are assigned in time order, so FIFO assertions reduce to
/// sortedness).
fn arrivals_from_gaps(gaps: &[u32]) -> Vec<Arrival<u64>> {
    let mut at = 0.0f64;
    gaps.iter()
        .enumerate()
        .map(|(i, &g)| {
            at += g as f64 * 1e-4;
            Arrival {
                id: i as u64,
                at_secs: at,
                payload: i as u64,
            }
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn prop_no_request_lost_or_duplicated(
        gaps in proptest::collection::vec(0u32..50, 1..120),
        max_batch in 1usize..16,
        linger_ticks in 0u32..40,
        capacity in 1usize..32,
        exec_ticks in 0u32..30,
    ) {
        let n = gaps.len();
        let policy = BatchPolicy::new(max_batch, linger_ticks as f64 * 1e-4)
            .with_queue_capacity(capacity);
        let schedule = MicroBatcher::new(policy).run(
            arrivals_from_gaps(&gaps),
            |_| exec_ticks as f64 * 1e-4,
        );

        // Partition: every id appears exactly once across batches + rejects.
        let mut served: Vec<u64> = schedule
            .batches
            .iter()
            .flat_map(|b| b.members.iter().map(|m| m.id))
            .collect();
        let mut all: Vec<u64> = served.clone();
        all.extend(schedule.rejects.iter().map(|r| r.id));
        all.sort_unstable();
        prop_assert_eq!(all, (0..n as u64).collect::<Vec<_>>());

        // FIFO within and across batches: ids were assigned in arrival
        // order and the queue drains from the front, so the served stream
        // must be strictly increasing.
        prop_assert!(
            served.windows(2).all(|w| w[0] < w[1]),
            "served order not FIFO: {served:?}"
        );
        served.sort_unstable();

        // Exactly one timing per served request, none for rejects.
        let mut timed: Vec<u64> = schedule.timings.iter().map(|t| t.id).collect();
        timed.sort_unstable();
        prop_assert_eq!(timed, served);

        // Queue bound respected; every reject observed the full queue.
        prop_assert!(schedule.max_queue_depth <= capacity);
        for r in &schedule.rejects {
            prop_assert_eq!(r.queue_depth, capacity);
            prop_assert_eq!(r.reason, RejectReason::QueueFull { capacity });
        }
    }

    #[test]
    fn prop_latency_split_is_exact_and_nonnegative(
        gaps in proptest::collection::vec(0u32..50, 1..100),
        max_batch in 1usize..12,
        linger_ticks in 0u32..40,
        exec_ticks in 0u32..30,
    ) {
        let policy = BatchPolicy::new(max_batch, linger_ticks as f64 * 1e-4)
            .with_queue_capacity(usize::MAX >> 1);
        let schedule = MicroBatcher::new(policy).run(
            arrivals_from_gaps(&gaps),
            |b| exec_ticks as f64 * 1e-4 * b.members.len() as f64,
        );
        for t in &schedule.timings {
            prop_assert!(t.queue_secs >= 0.0);
            prop_assert!(t.batch_secs >= 0.0);
            prop_assert!(t.execute_secs >= 0.0);
            let b = &schedule.batches[t.batch_index as usize];
            let direct = b.dispatch_secs + b.execute_secs - t.arrival_secs;
            prop_assert!(
                (t.total_secs() - direct).abs() < 1e-9,
                "split {:?} does not sum to {direct}",
                t
            );
            // No batch outlives its members' membership: the request really
            // is in the batch its timing points at.
            prop_assert!(b.members.iter().any(|m| m.id == t.id));
        }
        // Batch sizes respect the policy; dispatch times are monotone.
        for w in schedule.batches.windows(2) {
            prop_assert!(w[0].dispatch_secs <= w[1].dispatch_secs);
        }
        for b in &schedule.batches {
            prop_assert!(!b.members.is_empty());
            prop_assert!(b.members.len() <= max_batch);
            prop_assert!(b.linger_secs >= 0.0);
        }
    }

    #[test]
    fn prop_schedule_is_deterministic(
        gaps in proptest::collection::vec(0u32..50, 1..80),
        max_batch in 1usize..12,
        capacity in 1usize..24,
    ) {
        let run = || {
            let policy = BatchPolicy::new(max_batch, 2e-4).with_queue_capacity(capacity);
            MicroBatcher::new(policy).run(arrivals_from_gaps(&gaps), |b| {
                1e-4 * b.members.len() as f64
            })
        };
        let a = run();
        let b = run();
        prop_assert_eq!(a.timings, b.timings);
        prop_assert_eq!(a.makespan_secs.to_bits(), b.makespan_secs.to_bits());
        prop_assert_eq!(a.batches.len(), b.batches.len());
    }
}
