//! Serving load bench: p50/p99 latency and sustained QPS across
//! batch-size × linger × fusion on/off on a depth-16 per-record chain.
//!
//! Plain-`main` harness (criterion is unavailable offline); CI compiles it
//! with `cargo bench -p keystone-serve --no-run`. Run manually:
//!
//! ```sh
//! cargo bench -p keystone-serve
//! ```
//!
//! Latency percentiles are virtual (deterministic, from the micro-batcher's
//! discrete-event clock); QPS is measured wall throughput. The headline
//! comparison: micro-batching (batch ≥ 8) vs batch=1 on the fused chain —
//! per-wave dispatch overhead (executor construction, graph walk, per-node
//! tracing) amortizes over the batch, so larger batches sustain more QPS.

use keystone_core::context::ExecContext;
use keystone_core::operator::Transformer;
use keystone_core::optimizer::PipelineOptions;
use keystone_core::pipeline::Pipeline;
use keystone_core::profiler::ProfileOptions;
use keystone_serve::{BatchPolicy, LoadGen, Server};

const DEPTH: usize = 16;
const DIM: usize = 16;
const REQUESTS: usize = 2_000;
const MEAN_GAP_SECS: f64 = 1e-5;

struct AxPlusB {
    a: f64,
    b: f64,
}

impl Transformer<Vec<f64>, Vec<f64>> for AxPlusB {
    fn apply(&self, x: &Vec<f64>) -> Vec<f64> {
        x.iter().map(|v| self.a * v + self.b).collect()
    }
}

fn chain() -> Pipeline<Vec<f64>, Vec<f64>> {
    let mut pipe = Pipeline::<Vec<f64>, Vec<f64>>::input();
    for i in 0..DEPTH {
        pipe = pipe.and_then(AxPlusB {
            a: 1.0 + i as f64 * 1e-3,
            b: 0.5,
        });
    }
    pipe
}

fn opts(fusion: bool) -> PipelineOptions {
    PipelineOptions {
        profile: ProfileOptions {
            sizes: vec![8, 16],
            seed: 17,
            select_operators: true,
            deterministic_timing: true,
        },
        ..PipelineOptions::full()
    }
    .with_fusion(fusion)
}

fn main() {
    let pool: Vec<Vec<f64>> = (0..64)
        .map(|r| (0..DIM).map(|c| (r * DIM + c) as f64 * 1e-4).collect())
        .collect();

    println!(
        "serve load: depth-{DEPTH} chain, {REQUESTS} requests, mean gap {MEAN_GAP_SECS}s\n\
         {:<8} {:>8} {:>10} {:>12} {:>12} {:>10} {:>8}",
        "fusion", "batch", "linger", "p50-secs", "p99-secs", "qps", "waves"
    );
    for fusion in [false, true] {
        let ctx = ExecContext::default_cluster();
        let (fitted, _) = chain().fit(&ctx, &opts(fusion));
        for max_batch in [1usize, 8, 32] {
            for linger in [0.0, 1e-4, 1e-3] {
                let server = Server::new(
                    &fitted,
                    BatchPolicy::new(max_batch, linger).with_queue_capacity(REQUESTS),
                );
                let requests = LoadGen::new(42).requests_from_pool(REQUESTS, MEAN_GAP_SECS, &pool);
                // One warm-up wave, then the measured run.
                let _ = server.run(
                    LoadGen::new(7).requests_from_pool(64, MEAN_GAP_SECS, &pool),
                    &ctx,
                );
                let outcome = server.run(requests, &ctx);
                assert_eq!(outcome.responses.len(), REQUESTS, "dropped responses");
                println!(
                    "{:<8} {:>8} {:>10.0e} {:>12.6} {:>12.6} {:>10.0} {:>8}",
                    fusion,
                    max_batch,
                    linger,
                    outcome.latency_percentile(50.0),
                    outcome.latency_percentile(99.0),
                    outcome.qps(),
                    outcome.batches.len()
                );
            }
        }
    }
}
