//! Metamorphic oracles over *generated* pipelines: laws the optimizer must
//! satisfy on every DAG the fuzzer can produce, checked against the real
//! `fit` machinery rather than hand-built synthetic instances.

use std::collections::BTreeSet;

use keystone_core::optimizer::{eliminate_common_subexpressions, fit_roots};
use keystone_testkit::oracle::{BUDGET_TIGHT, BUDGET_UNBOUNDED, BUDGET_ZERO};
use keystone_testkit::{check_cache_plan, check_seed, generate, DataSpec};

/// Caching can only help: `est_runtime` is monotone non-increasing as the
/// cache set grows, the plan `fit` chooses never exceeds its budget, and a
/// fresh greedy solve of the rebuilt problem reproduces the plan exactly.
#[test]
fn cache_plans_are_feasible_and_never_hurt() {
    let mut exact_instances = 0;
    for seed in 0..12u64 {
        for budget in [BUDGET_ZERO, BUDGET_TIGHT, BUDGET_UNBOUNDED] {
            let c = check_cache_plan(seed, budget);
            assert!(
                c.planned_runtime <= c.empty_runtime + 1e-9,
                "seed {seed} budget {budget}: plan slower than no caching \
                 ({} > {})",
                c.planned_runtime,
                c.empty_runtime
            );
            assert!(
                c.planned_bytes <= c.budget,
                "seed {seed}: plan uses {} bytes over budget {}",
                c.planned_bytes,
                c.budget
            );
            assert!(
                (c.planned_runtime - c.greedy_runtime).abs() <= 1e-9,
                "seed {seed} budget {budget}: re-solving greedy diverged from \
                 the plan fit chose"
            );
            // On instances small enough to enumerate, greedy must be within
            // a constant factor of the exact optimum (and never beat it).
            if let Some(opt) = c.optimal_runtime {
                exact_instances += 1;
                assert!(
                    opt <= c.greedy_runtime + 1e-9,
                    "seed {seed} budget {budget}: 'optimal' {opt} worse than \
                     greedy {}",
                    c.greedy_runtime
                );
                assert!(
                    c.greedy_runtime <= 2.0 * opt + 1e-9,
                    "seed {seed} budget {budget}: greedy {} more than 2x \
                     optimal {opt}",
                    c.greedy_runtime
                );
            }
        }
    }
    assert!(
        exact_instances > 0,
        "no generated instance was small enough for the exact solver — \
         the greedy-vs-optimal oracle never ran"
    );
}

/// The paper's motivation for materialization (§4.3): on reuse-heavy DAGs
/// (multi-pass estimators over shared prefixes), the optimized configuration
/// strictly beats no caching in estimated simulated runtime.
#[test]
fn reuse_heavy_dags_strictly_benefit_from_caching() {
    let mut strict_wins = 0;
    let mut reuse_heavy = 0;
    for seed in 0..16u64 {
        let spec = DataSpec::from_seed(seed);
        let generated = generate(seed, &spec.train(4));
        if generated.estimators < 2 {
            continue;
        }
        reuse_heavy += 1;
        let c = check_cache_plan(seed, BUDGET_UNBOUNDED);
        assert!(c.planned_runtime <= c.empty_runtime + 1e-9);
        if c.planned_runtime < c.empty_runtime - 1e-12 {
            strict_wins += 1;
        }
    }
    assert!(reuse_heavy >= 3, "fuzzer produced too few reuse-heavy DAGs");
    assert!(
        strict_wins > 0,
        "caching never strictly improved any reuse-heavy DAG"
    );
}

/// CSE is a projection: running it twice eliminates nothing further, and it
/// preserves the fit roots (estimators feeding the output) and their
/// reachability, on every generated DAG.
#[test]
fn cse_is_idempotent_and_preserves_fit_roots() {
    for seed in 0..16u64 {
        let spec = DataSpec::from_seed(seed);
        let generated = generate(seed, &spec.train(2));
        let graph = generated.pipeline.graph_snapshot();
        let output = generated.pipeline.output_node();
        let roots_before = fit_roots(&graph, output);

        let first = eliminate_common_subexpressions(&graph);
        assert!(
            first.graph.len() <= graph.len(),
            "seed {seed}: CSE grew the graph"
        );
        let output1 = first.remap[&output];
        let mapped: BTreeSet<_> = roots_before.iter().map(|r| first.remap[r]).collect();
        let after: BTreeSet<_> = fit_roots(&first.graph, output1).into_iter().collect();
        assert_eq!(
            mapped, after,
            "seed {seed}: fit roots changed under CSE\n{}",
            generated.description
        );
        let ancestors = first.graph.ancestors(&[output1]);
        for root in &after {
            assert!(
                ancestors.contains(root),
                "seed {seed}: root {root} unreachable from output after CSE"
            );
        }

        let second = eliminate_common_subexpressions(&first.graph);
        assert_eq!(
            second.eliminated, 0,
            "seed {seed}: second CSE pass still found merges\n{}",
            generated.description
        );
        assert_eq!(second.graph.len(), first.graph.len());
    }
}

/// Whole-stage fusion laws on every generated DAG, checked against the same
/// pass `fit` runs: the pass is idempotent, every absorbed (non-tail) member
/// was a single-consumer node outside the materialization picks, the cost
/// model's `est_runtime` never increases, and the rewrite touches only chain
/// tails — every other node keeps its label and inputs byte-for-byte.
#[test]
fn fusion_respects_barriers_and_cost_model() {
    use keystone_core::context::ExecContext;
    use keystone_core::optimizer::{build_mat_problem, fuse_chains, merge_profiles};
    use keystone_core::profiler::{profile_and_select, ProfileOptions};

    let mut chains_seen = 0usize;
    for seed in 0..16u64 {
        let spec = DataSpec::from_seed(seed);
        let generated = generate(seed, &spec.train(2));
        let cse = eliminate_common_subexpressions(&generated.pipeline.graph_snapshot());
        let mut graph = cse.graph;
        let output = cse.remap[&generated.pipeline.output_node()];
        let roots = fit_roots(&graph, output);
        let ctx = ExecContext::default_cluster();
        let mut profile = profile_and_select(
            &mut graph,
            &roots,
            &ctx,
            &ProfileOptions {
                sizes: vec![8, 16],
                seed: 5,
                select_operators: false,
                deterministic_timing: true,
            },
        );
        let problem = build_mat_problem(&graph, &profile, &roots);
        let picks = problem.greedy_cache_set(BUDGET_TIGHT);
        let rt_before = problem.est_runtime(&picks);

        let relevant = graph.ancestors(&[output]);
        let successors = graph.successors();
        let result = fuse_chains(&graph, output, &picks);
        chains_seen += result.chains.len();

        // Barriers: absorbed members were single-consumer, un-picked nodes.
        let mut tails = std::collections::HashSet::new();
        for chain in &result.chains {
            assert!(chain.members.len() >= 2, "seed {seed}: degenerate chain");
            assert_eq!(*chain.members.last().unwrap(), chain.tail);
            tails.insert(chain.tail);
            for &m in &chain.members[..chain.members.len() - 1] {
                assert!(
                    !picks.contains(&m),
                    "seed {seed}: fused across materialization pick {m}\n{}",
                    generated.description
                );
                let live: Vec<_> = successors[m]
                    .iter()
                    .filter(|c| relevant.contains(*c))
                    .collect();
                assert_eq!(
                    live.len(),
                    1,
                    "seed {seed}: fused across multi-consumer node {m}\n{}",
                    generated.description
                );
            }
        }

        // The rewrite is tail-only: every non-tail node keeps its label and
        // inputs; every tail keeps its consumers and takes the head's input.
        assert_eq!(
            result.graph.len(),
            graph.len(),
            "seed {seed}: fusion resized graph"
        );
        for id in 0..graph.len() {
            if tails.contains(&id) {
                let chain = result.chains.iter().find(|c| c.tail == id).unwrap();
                let head = chain.members[0];
                assert!(
                    result.graph.nodes[id].label.starts_with("Fused["),
                    "seed {seed}: tail {id} not relabeled"
                );
                assert_eq!(
                    result.graph.nodes[id].inputs, graph.nodes[head].inputs,
                    "seed {seed}: tail {id} must take the chain head's input"
                );
            } else {
                assert_eq!(result.graph.nodes[id].label, graph.nodes[id].label);
                assert_eq!(result.graph.nodes[id].inputs, graph.nodes[id].inputs);
            }
        }

        // Cost model: fusing never makes the planned runtime worse.
        merge_profiles(&mut profile, &result.chains);
        let fused_problem = build_mat_problem(&result.graph, &profile, &roots);
        let rt_after = fused_problem.est_runtime(&picks);
        assert!(
            rt_after <= rt_before * (1.0 + 1e-9) + 1e-9,
            "seed {seed}: fusion increased est_runtime ({rt_after} > {rt_before})\n{}",
            generated.description
        );

        // Idempotence: a second pass finds nothing and changes nothing.
        let second = fuse_chains(&result.graph, output, &picks);
        assert_eq!(
            second.chains.len(),
            0,
            "seed {seed}: second fusion pass still found chains\n{}",
            generated.description
        );
        assert_eq!(second.absorbed, 0);
        assert_eq!(second.graph.summary(), result.graph.summary());
    }
    assert!(
        chains_seen > 0,
        "fuzzer produced no fusable chain in 16 seeds — the fusion laws never ran"
    );
}

/// A handful of full differential sweeps from a disjoint seed range (the
/// tier-1 `tests/differential.rs` covers the pinned 0..25 range).
#[test]
fn differential_smoke() {
    for seed in 100..106u64 {
        let report = check_seed(seed).unwrap_or_else(|e| panic!("{e}"));
        assert_eq!(report.cells, 224);
    }
}
