//! Property tests for the adaptive recalibration laws.
//!
//! The recalibrator's contract ([`recalibrate_profile`]'s doc) makes three
//! promises that the mid-fit re-planner leans on:
//!
//! 1. **Idempotence** — a perfectly-predicted profile is a *bitwise* no-op
//!    under recalibration, for any smoothing factor. Without this, every
//!    adaptive fit would drift the cost model even when nothing was wrong.
//! 2. **Monotone convergence** — repeated recalibration against a fixed
//!    observation strictly shrinks the relative prediction error, and
//!    `alpha = 1.0` lands on the observation in one step.
//! 3. **Revision soundness** — across all revisions of one fit, an evicted
//!    pick is never evicted twice, never promoted back, and a promoted pick
//!    is never evicted later. Checked end-to-end on fuzzer-generated
//!    pipelines, not just synthetic problems.
//!
//! Laws 1–2 are exercised over seeded random profiles (grid-snapped floats,
//! power-of-two execution counts, so exactness claims are meaningful); law
//! 3 plus fit-twice determinism run the real `fit` machinery over the
//! generated-pipeline corpus with adaptation forced on.

use std::collections::{HashMap, HashSet};

use keystone_core::context::ExecContext;
use keystone_core::optimizer::{
    recalibrate_profile, recalibrate_resources, AdaptationReport, PipelineOptions,
};
use keystone_core::pipeline::Pipeline;
use keystone_core::profiler::{NodeProfile, PipelineProfile, ProfileOptions};
use keystone_core::trace::NodeActuals;
use keystone_dataflow::cluster::ClusterProfile;
use keystone_dataflow::collection::DistCollection;
use keystone_dataflow::metrics::TaskSpan;
use keystone_testkit::gen::SplitMix64;
use keystone_testkit::ops::{Affine, UnderdeclaredMeanCenter};
use keystone_testkit::oracle::{BUDGET_TIGHT, BUDGET_ZERO};
use keystone_testkit::{generate, DataSpec};

const WORKERS: usize = 4;

/// Seeded random profile. All parameters are grid values or powers of two,
/// so the "bitwise no-op" half of the idempotence law is a meaningful claim
/// rather than an accident of rounding.
fn seeded_profile(rng: &mut SplitMix64, nodes: usize) -> PipelineProfile {
    let mut profile = PipelineProfile::default();
    for id in 0..nodes {
        profile.nodes.insert(
            id,
            NodeProfile {
                secs_per_record: [0.5, 0.25, 0.125, 1.5][rng.pick(4) as usize],
                fixed_secs: [0.0, 0.5, 2.0, 0.75][rng.pick(4) as usize],
                out_bytes_per_record: 8.0,
                out_records_per_in: 1.0,
                records_hint: 16 << rng.pick(3),
                out_stats: Default::default(),
            },
        );
    }
    profile
}

/// Actuals whose per-execution cost lands exactly on the prediction.
/// Execution counts and the worker count are powers of two, so the
/// de-amortization in [`recalibrate_profile`] round-trips bit-exactly.
fn perfect_actuals(profile: &PipelineProfile, rng: &mut SplitMix64) -> HashMap<usize, NodeActuals> {
    profile
        .nodes
        .iter()
        .map(|(&id, p)| {
            let execs = 1u64 << rng.pick(4);
            let sim_secs = p.est_secs(p.records_hint) * execs as f64 / WORKERS as f64;
            (
                id,
                NodeActuals {
                    execs,
                    wall_secs: 0.0,
                    sim_secs,
                    records: p.records_hint,
                    out_bytes: 0,
                },
            )
        })
        .collect()
}

fn profile_bits(profile: &PipelineProfile) -> Vec<(usize, u64, u64)> {
    let mut bits: Vec<(usize, u64, u64)> = profile
        .nodes
        .iter()
        .map(|(&id, p)| (id, p.fixed_secs.to_bits(), p.secs_per_record.to_bits()))
        .collect();
    bits.sort_unstable();
    bits
}

#[test]
fn recalibration_is_a_bitwise_noop_on_perfect_predictions() {
    for seed in 0..32u64 {
        let mut rng = SplitMix64(seed ^ 0xADA7);
        let nodes = 2 + rng.pick(6) as usize;
        let mut profile = seeded_profile(&mut rng, nodes);
        let actuals = perfect_actuals(&profile, &mut rng);
        let before = profile_bits(&profile);
        for alpha in [1.0, 0.5, 0.25] {
            recalibrate_profile(&mut profile, &actuals, WORKERS, alpha);
            assert_eq!(
                before,
                profile_bits(&profile),
                "seed {seed} alpha {alpha}: perfect predictions must be a \
                 bitwise fixed point"
            );
        }
    }
}

/// Largest relative prediction error across all observed nodes.
fn max_rel_error(profile: &PipelineProfile, actuals: &HashMap<usize, NodeActuals>) -> f64 {
    profile
        .nodes
        .iter()
        .filter_map(|(id, p)| {
            let a = actuals.get(id)?;
            let predicted = p.est_secs(p.records_hint);
            let observed = a.sim_secs / a.execs as f64 * WORKERS as f64;
            Some((observed / predicted - 1.0).abs())
        })
        .fold(0.0, f64::max)
}

#[test]
fn recalibration_converges_monotonically_on_mispredictions() {
    for seed in 0..16u64 {
        let mut rng = SplitMix64(seed ^ 0x5EED);
        let nodes = 2 + rng.pick(5) as usize;
        let mut profile = seeded_profile(&mut rng, nodes);
        // Mis-predict every node by a seed-chosen ratio on both sides of 1.
        let actuals: HashMap<usize, NodeActuals> = profile
            .nodes
            .iter()
            .map(|(&id, p)| {
                let ratio = [0.25, 0.5, 3.0, 8.0][rng.pick(4) as usize];
                let execs = 1u64 << rng.pick(3);
                let sim_secs = p.est_secs(p.records_hint) * ratio * execs as f64 / WORKERS as f64;
                (
                    id,
                    NodeActuals {
                        execs,
                        wall_secs: 0.0,
                        sim_secs,
                        records: p.records_hint,
                        out_bytes: 0,
                    },
                )
            })
            .collect();

        let mut err = max_rel_error(&profile, &actuals);
        assert!(err > 0.5, "seed {seed}: fixture failed to mis-predict");
        for step in 0..12 {
            recalibrate_profile(&mut profile, &actuals, WORKERS, 0.5);
            let next = max_rel_error(&profile, &actuals);
            assert!(
                next < err,
                "seed {seed} step {step}: error went {err} -> {next} (not \
                 strictly shrinking)"
            );
            err = next;
        }
        assert!(
            err < 0.05,
            "seed {seed}: error {err} after 12 smoothing steps"
        );

        // Full-strength recalibration lands on the observation in one step.
        let mut jump = seeded_profile(&mut SplitMix64(seed ^ 0x5EED), nodes);
        recalibrate_profile(&mut jump, &actuals, WORKERS, 1.0);
        assert!(
            max_rel_error(&jump, &actuals) < 1e-12,
            "seed {seed}: alpha=1.0 must converge in one step"
        );
    }
}

#[test]
fn resource_recalibration_is_order_invariant_and_ignores_degenerate_spans() {
    let r = ClusterProfile::SingleNode.descriptor(WORKERS);
    let span = |start_us: u64, end_us: u64, bytes: u64| TaskSpan {
        stage: "transform:x".into(),
        op: "map",
        op_seq: 0,
        stage_id: Some(1),
        partition: 0,
        worker: 0,
        start_us,
        end_us,
        items_in: 1,
        items_out: 1,
        bytes,
        retries: 0,
        speculative: false,
    };
    // Degenerate traces (no bytes, or no elapsed time) leave the
    // description bitwise unchanged.
    for spans in [
        vec![],
        vec![span(0, 1000, 0)],
        vec![span(500, 500, 1 << 20)],
    ] {
        let out = recalibrate_resources(&r, &spans);
        assert_eq!(out.mem_bandwidth.to_bits(), r.mem_bandwidth.to_bits());
    }
    // Integer sums make the refit independent of span order.
    let spans = vec![
        span(0, 250, 1 << 16),
        span(100, 1100, 3 << 20),
        span(50, 8050, 1 << 10),
    ];
    let mut reversed = spans.clone();
    reversed.reverse();
    let a = recalibrate_resources(&r, &spans);
    let b = recalibrate_resources(&r, &reversed);
    assert_eq!(a.mem_bandwidth.to_bits(), b.mem_bandwidth.to_bits());
    assert!(a.mem_bandwidth > 0.0 && a.mem_bandwidth.is_finite());
}

/// Revision-soundness invariants over one fit's revision sequence.
fn assert_sound(adaptation: &AdaptationReport, ctx: &str) {
    let mut evicted_ever: HashSet<usize> = HashSet::new();
    let mut promoted_ever: HashSet<usize> = HashSet::new();
    for rev in &adaptation.revisions {
        for e in &rev.evicted {
            assert!(
                evicted_ever.insert(*e),
                "{ctx}: pick {e} evicted twice in one fit"
            );
            assert!(
                !promoted_ever.contains(e),
                "{ctx}: pick {e} promoted then evicted in one fit"
            );
        }
        for p in &rev.promoted {
            assert!(
                !evicted_ever.contains(p),
                "{ctx}: pick {p} evicted then promoted back in one fit"
            );
            promoted_ever.insert(*p);
        }
        assert!(
            rev.predicted_saving_secs > 0.0,
            "{ctx}: revision applied without predicted savings"
        );
    }
}

fn adaptive_opts(budget: u64) -> PipelineOptions {
    PipelineOptions {
        profile: ProfileOptions {
            sizes: vec![8, 16],
            seed: 5,
            select_operators: false,
            deterministic_timing: true,
        },
        ..PipelineOptions::full()
    }
    .with_budget(budget)
    .with_adaptive(true)
}

#[test]
fn generated_pipelines_adapt_soundly_and_deterministically() {
    for seed in 0..12u64 {
        let spec = DataSpec::from_seed(seed);
        let train = spec.train(4);
        for budget in [BUDGET_ZERO, BUDGET_TIGHT] {
            let run = |train: &DistCollection<Vec<f64>>| {
                let ctx = ExecContext::default_cluster();
                let (_fitted, report) = generate(seed, train)
                    .pipeline
                    .fit(&ctx, &adaptive_opts(budget));
                (report.adaptation, ctx.sim.total_seconds())
            };
            let (adaptation, sim) = run(&train);
            assert_sound(&adaptation, &format!("seed {seed} budget {budget}"));
            let (again, sim_again) = run(&train);
            assert_eq!(
                adaptation, again,
                "seed {seed} budget {budget}: adaptation not deterministic"
            );
            assert_eq!(
                sim.to_bits(),
                sim_again.to_bits(),
                "seed {seed} budget {budget}: simulated clock not deterministic"
            );
        }
    }
}

/// The corpus must actually exercise the trigger path: an estimator that
/// declares one pass but iterates five re-requests its input beyond the
/// plan's prediction, which must be observed as a recalibration even when
/// a zero budget forecloses any revision.
#[test]
fn underdeclared_estimator_triggers_recalibration() {
    let train = DistCollection::from_vec(
        (0..48)
            .map(|r| (0..6).map(|c| ((r * 7 + c) % 13) as f64).collect())
            .collect(),
        4,
    );
    let pipe = Pipeline::<Vec<f64>, Vec<f64>>::input()
        .and_then(Affine { a: 0.5, b: 1.0 })
        .and_then_est(UnderdeclaredMeanCenter { actual_passes: 5 }, &train);
    let ctx = ExecContext::default_cluster();
    let (_fitted, report) = pipe.fit(&ctx, &adaptive_opts(BUDGET_ZERO));
    assert!(
        report.adaptation.recalibrations >= 1,
        "excess demand went unobserved: {:?}",
        report.adaptation
    );
    // Nothing fits in a zero budget, so soundness is trivially preserved —
    // but the law still has to hold.
    assert_sound(&report.adaptation, "underdeclared/zero-budget");
    // Sanity: the honest estimator under the same options never triggers.
    let honest = Pipeline::<Vec<f64>, Vec<f64>>::input()
        .and_then(Affine { a: 0.5, b: 1.0 })
        .and_then_est(keystone_testkit::ops::SeqMeanCenter { passes: 2 }, &train);
    let ctx2 = ExecContext::default_cluster();
    let (_f2, r2) = honest.fit(&ctx2, &adaptive_opts(BUDGET_ZERO));
    assert_eq!(r2.adaptation.recalibrations, 0, "{:?}", r2.adaptation);
}
