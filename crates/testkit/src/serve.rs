//! The serving-equivalence oracle.
//!
//! Micro-batching is a *physical* decision: how single-record requests are
//! grouped into waves may change latency, never predictions. For one seed,
//! [`check_serving`] fits the generated pipeline (fusion off/on × fault
//! plan off/on), computes the batch-`apply` predictions on the held-out
//! records as the baseline, then feeds the same records one at a time
//! through a [`Server`] under several batching policies — including the
//! degenerate batch=1/no-linger policy — and requires every response to be
//! bit-identical (`f64::to_bits`) to the baseline. A run with rejects is a
//! failure: the oracle's queue capacity comfortably covers the held-out
//! set, so a reject means the batcher lost a request it had room for.

use keystone_core::optimizer::PipelineOptions;
use keystone_dataflow::faults::FaultSpec;
use keystone_serve::{BatchPolicy, Request, Server};

use crate::gen::{generate, DataSpec};
use crate::oracle::{profile_opts, BUDGET_TIGHT};

/// The batching policies the oracle sweeps: (max_batch, max_linger_secs).
/// Batch=1 degenerates to one wave per request; the others force real
/// grouping, partial tail batches, and linger-bounded dispatches against
/// the 1e-4 s inter-arrival gap used below.
pub const SERVING_POLICIES: [(usize, f64); 4] = [(1, 0.0), (2, 0.0), (4, 2e-4), (8, 1e-3)];

/// Successful serving-equivalence run over one seed.
#[derive(Debug)]
pub struct ServingReport {
    /// The seed checked.
    pub seed: u64,
    /// (fusion × faults × policy) configurations that agreed.
    pub configs: usize,
    /// Total dispatched waves across all configurations.
    pub waves: usize,
}

fn serving_failure(seed: u64, config: &str, detail: String) -> String {
    let spec = DataSpec::from_seed(seed);
    let train = spec.train(1);
    let generated = generate(seed, &train);
    format!(
        "serving mismatch at seed {seed}: config `{config}`: {detail}\n\
         recipe: {}\n\
         reproduce: KEYSTONE_TESTKIT_SEED={seed} cargo test --test differential serving -- --nocapture\n",
        generated.description,
    )
}

/// Runs the serving-equivalence sweep for `seed`: for fusion off/on and
/// fault plan off/on, the one-record-at-a-time served outputs must be
/// bit-identical to one batch `apply` under every policy in
/// [`SERVING_POLICIES`], with zero rejects.
pub fn check_serving(seed: u64) -> Result<ServingReport, String> {
    let spec = DataSpec::from_seed(seed);
    let train = spec.train(4);
    let test = spec.test(1);
    let records: Vec<Vec<f64>> = test.collect();
    let mut configs = 0usize;
    let mut waves = 0usize;

    for fused in [false, true] {
        for faulted in [false, true] {
            let generated = generate(seed, &train);
            let ctx = if faulted {
                // Same seeded plan as the optimizer matrix: scheduling
                // perturbations may never change a served bit.
                keystone_core::context::ExecContext::default_cluster().with_faults(
                    FaultSpec::new(seed ^ 0xFA17)
                        .with_task_failures(0.25)
                        .with_stragglers(0.2)
                        .with_cache_loss(0.3)
                        .with_straggler_min_delay_us(200)
                        .into_plan(),
                )
            } else {
                keystone_core::context::ExecContext::default_cluster()
            };
            let opts = PipelineOptions {
                profile: profile_opts(),
                ..PipelineOptions::full()
                    .with_budget(BUDGET_TIGHT)
                    .with_fusion(fused)
            };
            let (fitted, _) = generated.pipeline.fit(&ctx, &opts);
            let baseline: Vec<Vec<u64>> = fitted
                .apply(&test, &ctx)
                .collect()
                .into_iter()
                .map(|row| row.into_iter().map(f64::to_bits).collect())
                .collect();

            for (max_batch, linger) in SERVING_POLICIES {
                let config =
                    format!("fuse={fused}/faults={faulted}/batch={max_batch}/linger={linger}");
                let server = Server::new(
                    &fitted,
                    BatchPolicy::new(max_batch, linger)
                        .with_queue_capacity(records.len().max(1) * 2),
                );
                let requests: Vec<Request<Vec<f64>>> = records
                    .iter()
                    .enumerate()
                    .map(|(i, r)| Request {
                        id: i as u64,
                        arrival_secs: i as f64 * 1e-4,
                        record: r.clone(),
                    })
                    .collect();
                let outcome = server.run(requests, &ctx);
                if !outcome.rejects.is_empty() {
                    return Err(serving_failure(
                        seed,
                        &config,
                        format!(
                            "{} requests rejected with queue headroom",
                            outcome.rejects.len()
                        ),
                    ));
                }
                let served: Vec<Vec<u64>> = outcome
                    .responses
                    .iter()
                    .map(|r| r.output.iter().map(|v| v.to_bits()).collect())
                    .collect();
                if served != baseline {
                    let diverged = served
                        .iter()
                        .zip(&baseline)
                        .position(|(s, b)| s != b)
                        .map(|i| format!("first divergent record: {i}"))
                        .unwrap_or_else(|| {
                            format!(
                                "{} responses vs {} baseline rows",
                                served.len(),
                                baseline.len()
                            )
                        });
                    return Err(serving_failure(
                        seed,
                        &config,
                        format!("served bits diverged from batch apply ({diverged})"),
                    ));
                }
                configs += 1;
                waves += outcome.batches.len();
            }
        }
    }
    Ok(ServingReport {
        seed,
        configs,
        waves,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_seed_serving_smoke() {
        let report = check_serving(3).unwrap_or_else(|e| panic!("{e}"));
        assert_eq!(report.configs, 2 * 2 * SERVING_POLICIES.len());
        assert!(report.waves > 0);
    }

    #[test]
    fn serving_failure_carries_repro() {
        let r = serving_failure(
            42,
            "fuse=true/faults=false/batch=4/linger=0.0002",
            "x".into(),
        );
        assert!(r.contains("seed 42"));
        assert!(r.contains("KEYSTONE_TESTKIT_SEED=42"));
        assert!(r.contains("recipe: seed=42:"));
    }
}
