//! Seeded random-pipeline generator.
//!
//! A seed fully determines (a) the training/test datasets — via the
//! quantized [`TimitLike`] generator — and (b) the pipeline DAG: a chain of
//! 3–8 stages drawn from the deterministic operator pool in [`crate::ops`]
//! plus the real per-record normalizers from `keystone-ops`, with gather
//! branches and multi-pass estimators mixed in. All floating-point operator
//! parameters come from small fixed grids, so regenerating from the same
//! seed reproduces the exact same bits everywhere.

use keystone_core::pipeline::{gather, Pipeline};
use keystone_dataflow::collection::DistCollection;
use keystone_ops::stats::{Normalizer, SignedPowerNormalizer};
use keystone_workloads::dense_gen::TimitLike;

use crate::ops::{
    AbsVal, Affine, SeqMeanCenter, SeqRangeScale, SwapHalves, TwoPathScale, UnderdeclaredMeanCenter,
};

/// Sebastiano Vigna's splitmix64 — the testkit's only randomness source.
/// Small, stateful, and trivially reproducible from the seed.
#[derive(Debug, Clone)]
pub struct SplitMix64(pub u64);

impl SplitMix64 {
    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `0..n` (`n > 0`).
    pub fn pick(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }
}

/// Seed-derived dataset shape. Train and test share centroids (same
/// generator seed) but draw from different sample streams.
#[derive(Debug, Clone)]
pub struct DataSpec {
    /// The generating seed.
    pub seed: u64,
    /// Training records.
    pub n: usize,
    /// Feature dimensionality.
    pub dim: usize,
    /// Cluster count.
    pub classes: usize,
}

impl DataSpec {
    /// Derives the dataset shape from a seed. Sizes are kept tiny: the
    /// differential matrix fits hundreds of pipelines in debug builds.
    pub fn from_seed(seed: u64) -> Self {
        let mut rng = SplitMix64(seed ^ 0xD1B5_4A32_D192_ED03);
        DataSpec {
            seed,
            n: 48 + 8 * rng.pick(6) as usize,
            dim: 3 + rng.pick(4) as usize,
            classes: 2 + rng.pick(3) as usize,
        }
    }

    fn timit(&self, n: usize, stream: u64, partitions: usize) -> DistCollection<Vec<f64>> {
        TimitLike {
            n,
            dim: self.dim,
            classes: self.classes,
            separation: 2.0,
            seed: self.seed ^ 0x7131,
            stream,
            partitions,
            // Grid-snap values so exact bit comparison across cells never
            // trips over printing or accumulated representation noise.
            quantize: Some(64),
        }
        .generate()
        .data
    }

    /// Training data at the given partition count. Content and order are
    /// partition-invariant; only the chunking changes.
    pub fn train(&self, partitions: usize) -> DistCollection<Vec<f64>> {
        self.timit(self.n, 0, partitions)
    }

    /// Held-out data (independent sample stream, same centroids).
    pub fn test(&self, partitions: usize) -> DistCollection<Vec<f64>> {
        self.timit(24, 1, partitions)
    }
}

/// A generated pipeline plus its human-readable recipe.
pub struct GeneratedPipeline {
    /// The pipeline, ready to `fit`.
    pub pipeline: Pipeline<Vec<f64>, Vec<f64>>,
    /// One-line stage recipe (for failure reports).
    pub description: String,
    /// How many estimator stages were generated (always ≥ 1).
    pub estimators: usize,
}

const A_GRID: [f64; 4] = [0.5, -1.5, 2.0, 0.25];
const B_GRID: [f64; 4] = [0.0, 1.0, -2.0, 0.5];
const C_GRID: [f64; 4] = [2.0, 0.5, -1.0, 1.25];

/// Generates a well-typed `Vec<f64> → Vec<f64>` pipeline from `seed`,
/// binding every estimator stage to `train`. The DAG structure depends only
/// on the seed — never on the data or its partitioning — so the same seed
/// regenerates the identical pipeline in every matrix cell.
pub fn generate(seed: u64, train: &DistCollection<Vec<f64>>) -> GeneratedPipeline {
    let mut rng = SplitMix64(seed.wrapping_mul(0x9E3779B97F4A7C15) ^ 0x5851_F42D_4C95_7F2D);
    let mut cur = Pipeline::<Vec<f64>, Vec<f64>>::input();
    let mut desc: Vec<String> = Vec::new();
    let mut estimators = 0usize;

    let stages = 3 + rng.pick(5) as usize;
    for _ in 0..stages {
        match rng.pick(9) {
            0 => {
                let a = A_GRID[rng.pick(4) as usize];
                let b = B_GRID[rng.pick(4) as usize];
                cur = cur.and_then(Affine { a, b });
                desc.push(format!("Affine({a},{b})"));
            }
            1 => {
                cur = cur.and_then(AbsVal);
                desc.push("Abs".into());
            }
            2 => {
                cur = cur.and_then(SwapHalves);
                desc.push("Swap".into());
            }
            3 => {
                if rng.pick(2) == 0 {
                    cur = cur.and_then(Normalizer);
                    desc.push("Normalize".into());
                } else {
                    cur = cur.and_then(SignedPowerNormalizer::default());
                    desc.push("SignedPower(0.5)".into());
                }
            }
            4 => {
                let c = C_GRID[rng.pick(4) as usize];
                cur = cur.and_then_optimizable(TwoPathScale { c });
                desc.push(format!("TwoPathScale({c})"));
            }
            5 => {
                // Two branches over the shared prefix; gather doubles the
                // dimensionality. The Abs branch duplicates work CSE can
                // later merge with chain stages.
                let a = A_GRID[rng.pick(4) as usize];
                let left = cur.and_then(Affine { a, b: 0.0 });
                let right = cur.and_then(AbsVal);
                cur = gather(&[left, right]);
                desc.push(format!("Gather[Affine({a},0)|Abs]"));
            }
            6 => {
                let passes = 2 + rng.pick(2) as u32;
                cur = cur.and_then_est(SeqMeanCenter { passes }, train);
                estimators += 1;
                desc.push(format!("SeqMeanCenter(w={passes})"));
            }
            7 => {
                // Declares one pass but iterates more — exactly the kind of
                // cost-model lie the adaptive re-planner is built to catch.
                // The fitted model is bit-identical regardless of the lie,
                // so the oracle's cross-cell comparison stays valid.
                let actual_passes = 2 + rng.pick(3) as u32;
                cur = cur.and_then_est(UnderdeclaredMeanCenter { actual_passes }, train);
                estimators += 1;
                desc.push(format!("UnderdeclaredMeanCenter(actual={actual_passes})"));
            }
            _ => {
                let passes = 2 + rng.pick(2) as u32;
                cur = cur.and_then_est(SeqRangeScale { passes }, train);
                estimators += 1;
                desc.push(format!("SeqRangeScale(w={passes})"));
            }
        }
    }

    // Every generated pipeline must exercise fit: force at least one
    // estimator so the materialization optimizer has passes to save.
    if estimators == 0 {
        cur = cur.and_then_est(SeqMeanCenter { passes: 2 }, train);
        estimators = 1;
        desc.push("SeqMeanCenter(w=2)".into());
    }

    GeneratedPipeline {
        pipeline: cur,
        description: format!("seed={seed}: {}", desc.join(" > ")),
        estimators,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic_and_nontrivial() {
        let mut a = SplitMix64(42);
        let mut b = SplitMix64(42);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
        assert!(xs.windows(2).any(|w| w[0] != w[1]));
    }

    #[test]
    fn generation_is_structurally_deterministic() {
        let spec = DataSpec::from_seed(7);
        for partitions in [1usize, 4] {
            let train = spec.train(partitions);
            let g1 = generate(7, &train);
            let g2 = generate(7, &train);
            assert_eq!(g1.description, g2.description);
            assert_eq!(g1.pipeline.summary(), g2.pipeline.summary());
            assert!(g1.estimators >= 1);
        }
        // Structure must not depend on the partition count either.
        let s1 = generate(7, &spec.train(1)).pipeline.summary();
        let s4 = generate(7, &spec.train(4)).pipeline.summary();
        assert_eq!(s1, s4);
    }

    #[test]
    fn seeds_produce_varied_shapes() {
        let spec = DataSpec::from_seed(0);
        let train = spec.train(1);
        let descriptions: std::collections::BTreeSet<String> = (0..24)
            .map(|s| {
                generate(s, &train)
                    .description
                    .split_once(": ")
                    .expect("prefix")
                    .1
                    .to_string()
            })
            .collect();
        assert!(
            descriptions.len() >= 12,
            "only {} distinct recipes across 24 seeds",
            descriptions.len()
        );
    }
}
