//! Differential pipeline-equivalence testkit.
//!
//! KeystoneML's optimizer (CSE, greedy materialization under a budget,
//! cost-based operator selection — §4–5 of the paper) changes *how* a
//! pipeline executes, never *what* it computes. This crate makes that claim
//! a machine-checked invariant:
//!
//! * [`gen`] — a seeded random-pipeline generator composing well-typed DAGs
//!   (chains, gathers, multi-pass estimators) from deterministic operators;
//! * [`ops`] — the operator pool. Every operator is **bit-identical by
//!   construction** across optimizer configurations: transformers are
//!   per-record (partition-chunking invariant), estimators aggregate over
//!   `collect()` (which concatenates partitions in original record order, so
//!   float summation order never depends on the partition count), and the
//!   optimizable operator's physical options compute the same arithmetic by
//!   different traversals. The real `LinearSolverOp` variants are
//!   deliberately excluded: their physical options (L-BFGS vs QR vs block
//!   coordinate descent) are numerically different algorithms, so
//!   bit-identity across operator selection is not a property they can or
//!   should satisfy;
//! * [`oracle`] — the differential-execution oracle: fit each generated
//!   pipeline under a matrix of configurations (optimization level ×
//!   materialization budget × partition count × caching strategy × seeded
//!   fault plan) and require bit-identical predictions in every cell, plus
//!   metamorphic checks of the cost model against its own laws;
//! * [`forest`] — the multi-tenant forest axis: 2–4 seeded pipeline
//!   variants with controlled prefix overlap, fit both independently and
//!   through `fit_forest`'s merged plan; per-tenant held-out predictions
//!   must match bitwise and the forest's total simulated cost may never
//!   exceed the sum of the solo fits;
//! * [`serve`] — the serving-equivalence oracle: the same held-out records
//!   fed one at a time through the `keystone-serve` micro-batching
//!   front-end (several batch-size/linger policies, including the
//!   degenerate batch=1) must reproduce a single batch `apply()`
//!   bit-for-bit, with and without an injected fault plan.
//!
//! Seeds are ordinary `u64`s; a failing seed reproduces with
//! `KEYSTONE_TESTKIT_SEED=<seed> cargo test --test differential`.

pub mod forest;
pub mod gen;
pub mod ops;
pub mod oracle;
pub mod serve;

pub use forest::{
    check_forest_seed, forest_matrix, generate_forest, ForestCell, ForestSeedReport,
    GeneratedForest,
};
pub use gen::{generate, DataSpec, GeneratedPipeline, SplitMix64};
pub use oracle::{
    check_cache_plan, check_seed, matrix, run_cell, seeds_from_env, CachePlanCheck, MatrixCell,
    SeedReport,
};
pub use serve::{check_serving, ServingReport, SERVING_POLICIES};
