//! Multi-tenant forest axis of the differential oracle.
//!
//! The forest optimizer ([`keystone_core::optimizer::fit_forest`]) merges N
//! tenant pipelines into one plan: cross-pipeline CSE over a shared trunk,
//! one global materialization budget, fair wave scheduling. Its contract is
//! twofold and this module checks both halves per seed, per cell:
//!
//! 1. **Equivalence** — each tenant's fitted pipeline must produce held-out
//!    predictions *bit-identical* (`f64::to_bits`) to the pipeline fit
//!    alone, in every optimization-level × budget × fusion × columnar cell;
//! 2. **Dominance** — the forest fit's total simulated cost must never
//!    exceed the sum of the N independent fits' costs.
//!
//! Forests are generated with *controlled prefix overlap*: one seeded trunk
//! of 0–4 stages (0 ⇒ no sharing at all, exercising the fallback path) on a
//! single `Pipeline::input()` handle, then 2–4 divergent tenant heads each
//! ending in at least one estimator. Only truthfully-declared operators are
//! drawn — cost mis-declaration is a different axis ([`crate::oracle`]) and
//! would make per-cell *analytic* cost comparisons meaningless, though the
//! measure-then-choose forest fit tolerates it by construction.

use keystone_core::context::ExecContext;
use keystone_core::optimizer::{fit_forest, CachingStrategy, PipelineOptions};
use keystone_core::pipeline::Pipeline;
use keystone_dataflow::collection::DistCollection;
use keystone_ops::stats::{Normalizer, SignedPowerNormalizer};

use crate::gen::{DataSpec, SplitMix64};
use crate::ops::{AbsVal, Affine, SeqMeanCenter, SeqRangeScale, SwapHalves, TwoPathScale};
use crate::oracle::{BUDGET_TIGHT, BUDGET_UNBOUNDED};

/// Parameter grids, shared with [`crate::gen`]'s philosophy: all float
/// operator parameters come from small fixed grids so a seed reproduces the
/// exact same bits everywhere.
const A_GRID: [f64; 4] = [0.5, -1.5, 2.0, 0.25];
const B_GRID: [f64; 4] = [0.0, 1.0, -2.0, 0.5];
const C_GRID: [f64; 4] = [2.0, 0.5, -1.0, 1.25];

/// A seeded multi-tenant forest: 2–4 pipelines branching off one shared
/// trunk, all handles into the *same* underlying graph so trunk stages are
/// literally the same nodes (maximal, honest prefix overlap).
pub struct GeneratedForest {
    /// One pipeline per tenant, sharing a trunk of `trunk_len` stages.
    pub tenants: Vec<Pipeline<Vec<f64>, Vec<f64>>>,
    /// Human-readable recipe, for failure reports.
    pub description: String,
    /// Number of shared trunk stages (0 ⇒ tenants only share the source).
    pub trunk_len: usize,
}

/// Draws one truthful stage onto `cur`. The pool deliberately excludes the
/// mis-declared estimators (`UnderdeclaredMeanCenter` and friends): the
/// forest axis compares costs across plans, so every operator's declared
/// cost must be honest.
fn truthful_stage(
    rng: &mut SplitMix64,
    cur: &Pipeline<Vec<f64>, Vec<f64>>,
    train: &DistCollection<Vec<f64>>,
    desc: &mut String,
) -> (Pipeline<Vec<f64>, Vec<f64>>, bool) {
    match rng.pick(7) {
        0 => {
            let a = A_GRID[rng.pick(4) as usize];
            let b = B_GRID[rng.pick(4) as usize];
            desc.push_str(&format!(" affine({a},{b})"));
            (cur.and_then(Affine { a, b }), false)
        }
        1 => {
            desc.push_str(" abs");
            (cur.and_then(AbsVal), false)
        }
        2 => {
            desc.push_str(" swap");
            (cur.and_then(SwapHalves), false)
        }
        3 => {
            if rng.pick(2) == 0 {
                desc.push_str(" normalize");
                (cur.and_then(Normalizer), false)
            } else {
                desc.push_str(" signed-power");
                (cur.and_then(SignedPowerNormalizer::default()), false)
            }
        }
        4 => {
            let c = C_GRID[rng.pick(4) as usize];
            desc.push_str(&format!(" two-path({c})"));
            (cur.and_then_optimizable(TwoPathScale { c }), false)
        }
        5 => {
            let passes = 2 + rng.pick(2) as u32;
            desc.push_str(&format!(" mean-center(x{passes})"));
            (cur.and_then_est(SeqMeanCenter { passes }, train), true)
        }
        _ => {
            let passes = 2 + rng.pick(2) as u32;
            desc.push_str(&format!(" range-scale(x{passes})"));
            (cur.and_then_est(SeqRangeScale { passes }, train), true)
        }
    }
}

/// Generates the seed's forest over `train`. Deterministic: same seed and
/// data ⇒ same graph node-for-node, same operator parameters.
pub fn generate_forest(seed: u64, train: &DistCollection<Vec<f64>>) -> GeneratedForest {
    // A distinct mixing constant keeps the forest stream independent of the
    // single-pipeline generator's stream for the same seed.
    let mut rng = SplitMix64(seed.wrapping_mul(0x9E3779B97F4A7C15) ^ 0xF0E1_D2C3_B4A5_9687);
    let n_tenants = 2 + rng.pick(3) as usize; // 2..=4
    let trunk_len = rng.pick(5) as usize; // 0..=4, 0 = no prefix overlap

    let mut desc = format!("{n_tenants} tenants; trunk[");
    let mut trunk: Pipeline<Vec<f64>, Vec<f64>> = Pipeline::input();
    for _ in 0..trunk_len {
        let (next, _) = truthful_stage(&mut rng, &trunk, train, &mut desc);
        trunk = next;
    }
    desc.push_str(" ]");

    let tenants = (0..n_tenants)
        .map(|t| {
            desc.push_str(&format!("; head{t}["));
            let head_len = 1 + rng.pick(3) as usize; // 1..=3
            let mut cur = trunk.clone();
            let mut has_est = false;
            for _ in 0..head_len {
                let (next, est) = truthful_stage(&mut rng, &cur, train, &mut desc);
                cur = next;
                has_est |= est;
            }
            if !has_est {
                desc.push_str(" mean-center(x2)");
                cur = cur.and_then_est(SeqMeanCenter { passes: 2 }, train);
            }
            desc.push_str(" ]");
            cur
        })
        .collect();

    GeneratedForest {
        tenants,
        description: desc,
        trunk_len,
    }
}

/// One configuration under which a forest is fit both ways.
pub struct ForestCell {
    /// Display name, e.g. `full/greedy-tight+fuse+col`.
    pub name: String,
    /// Optimizer configuration.
    pub opts: PipelineOptions,
    /// Partition count for training and held-out data.
    pub partitions: usize,
}

/// The forest configuration grid: opt level × budget × caching strategy ×
/// fusion × columnar. Fault plans are deliberately absent — the solo and
/// shared paths draw from a fault schedule in different orders, which is
/// fine for bit-equality (faults are masked) but would make the two cost
/// measurements incommensurable.
pub fn forest_matrix() -> Vec<ForestCell> {
    let profiled = |opts: PipelineOptions| PipelineOptions {
        profile: crate::oracle::profile_opts(),
        ..opts
    };
    let cells: Vec<(&str, PipelineOptions, usize)> = vec![
        ("none", PipelineOptions::none(), 1),
        (
            "pipe/greedy-tight",
            profiled(PipelineOptions::pipe_only().with_budget(BUDGET_TIGHT)),
            1,
        ),
        (
            "pipe/greedy-unbounded/p4",
            profiled(PipelineOptions::pipe_only().with_budget(BUDGET_UNBOUNDED)),
            4,
        ),
        (
            "pipe/lru-tight",
            profiled(
                PipelineOptions::pipe_only()
                    .with_budget(BUDGET_TIGHT)
                    .with_caching(CachingStrategy::Lru {
                        admission_fraction: 1.0,
                    }),
            ),
            1,
        ),
        (
            "pipe/greedy-tight+fuse",
            profiled(
                PipelineOptions::pipe_only()
                    .with_budget(BUDGET_TIGHT)
                    .with_fusion(true),
            ),
            1,
        ),
        (
            "full/greedy-tight+fuse+col",
            profiled(
                PipelineOptions::full()
                    .with_budget(BUDGET_TIGHT)
                    .with_fusion(true)
                    .with_columnar(true),
            ),
            1,
        ),
        (
            "full/greedy-unbounded/p4",
            profiled(PipelineOptions::full().with_budget(BUDGET_UNBOUNDED)),
            4,
        ),
        (
            "full/greedy-unbounded+fuse+col",
            profiled(
                PipelineOptions::full()
                    .with_budget(BUDGET_UNBOUNDED)
                    .with_fusion(true)
                    .with_columnar(true),
            ),
            1,
        ),
    ];
    cells
        .into_iter()
        .map(|(name, opts, partitions)| ForestCell {
            name: name.to_string(),
            opts,
            partitions,
        })
        .collect()
}

/// Summary of one passing forest seed.
#[derive(Debug)]
pub struct ForestSeedReport {
    /// The seed checked.
    pub seed: u64,
    /// Cells swept.
    pub cells: usize,
    /// Tenants in the generated forest.
    pub tenants: usize,
    /// Shared trunk stages.
    pub trunk_len: usize,
    /// Cells in which the shared merged plan won and ran.
    pub shared_cells: usize,
}

/// Renders the diagnostic block for a forest divergence.
pub fn forest_failure_report(seed: u64, cell: &str, detail: &str) -> String {
    let spec = DataSpec::from_seed(seed);
    let train = spec.train(1);
    let forest = generate_forest(seed, &train);
    format!(
        "forest oracle failure at seed {seed}: cell `{cell}`: {detail}\n\
         data: n={} dim={} classes={}\n\
         forest: {}\n\
         reproduce: KEYSTONE_TESTKIT_SEED={seed} cargo test --test differential forest -- --nocapture\n",
        spec.n, spec.dim, spec.classes, forest.description,
    )
}

/// Held-out predictions as raw bit patterns.
fn prediction_bits(
    fitted: &keystone_core::pipeline::FittedPipeline<Vec<f64>, Vec<f64>>,
    test: &DistCollection<Vec<f64>>,
    ctx: &ExecContext,
) -> Vec<Vec<u64>> {
    fitted
        .apply(test, ctx)
        .collect()
        .into_iter()
        .map(|row| row.into_iter().map(f64::to_bits).collect())
        .collect()
}

/// Fits the seed's forest in every cell, solo and shared, and checks the
/// equivalence and dominance halves of the forest contract.
pub fn check_forest_seed(seed: u64) -> Result<ForestSeedReport, String> {
    let spec = DataSpec::from_seed(seed);
    let cells = forest_matrix();
    let mut tenants_seen = 0;
    let mut trunk_seen = 0;
    let mut shared_cells = 0;

    for cell in &cells {
        let train = spec.train(cell.partitions);
        let test = spec.test(cell.partitions);
        let forest = generate_forest(seed, &train);
        tenants_seen = forest.tenants.len();
        trunk_seen = forest.trunk_len;

        // Solo fits: each tenant alone on a fresh context. The simulated
        // cost is read *before* apply so held-out scoring is not charged.
        let mut solo_total = 0.0;
        let mut solo_bits = Vec::with_capacity(forest.tenants.len());
        for tenant in &forest.tenants {
            let ctx = ExecContext::default_cluster();
            let (fitted, _report) = tenant.fit(&ctx, &cell.opts);
            solo_total += ctx.sim.total_seconds();
            solo_bits.push(prediction_bits(&fitted, &test, &ctx));
        }

        // Forest fit: all tenants through one shared optimizer pass.
        let fctx = ExecContext::default_cluster();
        let (fitted_all, report) = fit_forest(&forest.tenants, &fctx, &cell.opts);
        let forest_total = fctx.sim.total_seconds();
        if report.shared {
            shared_cells += 1;
        }

        if fitted_all.len() != forest.tenants.len() {
            return Err(forest_failure_report(
                seed,
                &cell.name,
                &format!(
                    "fit_forest returned {} pipelines for {} tenants",
                    fitted_all.len(),
                    forest.tenants.len()
                ),
            ));
        }

        // Equivalence: bit-identical held-out predictions per tenant.
        for (t, fitted) in fitted_all.iter().enumerate() {
            let forest_bits = prediction_bits(fitted, &test, &fctx);
            if forest_bits != solo_bits[t] {
                return Err(forest_failure_report(
                    seed,
                    &cell.name,
                    &format!(
                        "tenant {t} predictions diverged between solo fit and forest fit \
                         (shared={})",
                        report.shared
                    ),
                ));
            }
        }

        // Dominance: the forest never costs more than N independent fits.
        if forest_total > solo_total + 1e-9 {
            return Err(forest_failure_report(
                seed,
                &cell.name,
                &format!(
                    "forest fit cost {forest_total:.6}s exceeds Σ solo {solo_total:.6}s \
                     (shared={})",
                    report.shared
                ),
            ));
        }
        // The report must agree with the external measurement's verdict.
        if report.forest_secs > report.total_solo_secs() + 1e-9 {
            return Err(forest_failure_report(
                seed,
                &cell.name,
                &format!(
                    "report claims forest_secs {:.6} > Σ solo_secs {:.6}",
                    report.forest_secs,
                    report.total_solo_secs()
                ),
            ));
        }
        // Attribution rows must cover every tenant exactly once.
        let mut row_ids: Vec<usize> = report.tenants.iter().map(|r| r.tenant).collect();
        row_ids.sort_unstable();
        if row_ids != (0..forest.tenants.len()).collect::<Vec<_>>() {
            return Err(forest_failure_report(
                seed,
                &cell.name,
                &format!("tenant attribution rows {row_ids:?} do not cover every tenant"),
            ));
        }
    }

    Ok(ForestSeedReport {
        seed,
        cells: cells.len(),
        tenants: tenants_seen,
        trunk_len: trunk_seen,
        shared_cells,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forest_generation_is_deterministic() {
        let spec = DataSpec::from_seed(7);
        let train = spec.train(1);
        let a = generate_forest(7, &train);
        let b = generate_forest(7, &train);
        assert_eq!(a.description, b.description);
        assert_eq!(a.tenants.len(), b.tenants.len());
        for (x, y) in a.tenants.iter().zip(&b.tenants) {
            assert_eq!(x.summary(), y.summary());
        }
    }

    #[test]
    fn forest_tenants_share_one_graph() {
        let spec = DataSpec::from_seed(3);
        let train = spec.train(1);
        let forest = generate_forest(3, &train);
        assert!(forest.tenants.len() >= 2);
        // All tenants draw from the same Pipeline::input() handle, so their
        // snapshots are node-for-node the same graph (different outputs).
        let first = forest.tenants[0].graph_snapshot().len();
        for t in &forest.tenants[1..] {
            assert_eq!(t.graph_snapshot().len(), first);
        }
    }

    #[test]
    fn single_tenant_forest_is_bit_equal_to_solo_fit() {
        use keystone_core::optimizer::PipelineOptions;
        let spec = DataSpec::from_seed(5);
        let train = spec.train(1);
        let test = spec.test(1);
        let generated = crate::gen::generate(5, &train);
        let opts = PipelineOptions {
            profile: crate::oracle::profile_opts(),
            ..PipelineOptions::full().with_budget(BUDGET_TIGHT)
        };

        let solo_ctx = ExecContext::default_cluster();
        let (solo_fitted, _) = generated.pipeline.fit(&solo_ctx, &opts);

        let forest_ctx = ExecContext::default_cluster();
        let (forest_fitted, report) = fit_forest(
            std::slice::from_ref(&generated.pipeline),
            &forest_ctx,
            &opts,
        );
        assert!(!report.shared, "N=1 must delegate to Pipeline::fit");

        // Same SimClock ledger to the last bit: same stages, same charges.
        let a = solo_ctx.sim.entries();
        let b = forest_ctx.sim.entries();
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.stage, y.stage);
            assert_eq!(x.exec_secs.to_bits(), y.exec_secs.to_bits());
            assert_eq!(x.coord_secs.to_bits(), y.coord_secs.to_bits());
        }

        // And identical held-out predictions.
        assert_eq!(
            prediction_bits(&solo_fitted, &test, &solo_ctx),
            prediction_bits(&forest_fitted[0], &test, &forest_ctx)
        );
    }

    #[test]
    fn one_seed_passes_the_forest_oracle() {
        let report = check_forest_seed(11).expect("seed 11 must pass");
        assert_eq!(report.cells, forest_matrix().len());
        assert!(report.tenants >= 2);
    }
}
