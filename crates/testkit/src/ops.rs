//! The deterministic operator pool the pipeline fuzzer draws from.
//!
//! The differential oracle asserts *bit-identical* predictions across every
//! optimizer configuration, so each operator here must be invariant to the
//! things the optimizer is allowed to change:
//!
//! * **partition count** — transformers are per-record (`apply` only), so
//!   chunking never affects them; estimators aggregate over `collect()`,
//!   which concatenates partitions in original record order, fixing the
//!   float summation order regardless of partitioning;
//! * **caching / recomputation** — every operator is a pure function of its
//!   input, so a lineage recompute after a fault or cache miss reproduces
//!   the same bits;
//! * **operator selection** — [`TwoPathScale`]'s physical options compute
//!   the same per-element arithmetic by different traversals, so whichever
//!   option the cost model picks, the output bits are identical. Their cost
//!   models *do* differ (one is cheap on small inputs, the other on large),
//!   so Full-level selection is genuinely exercised.

use std::sync::Arc;

use keystone_core::context::ExecContext;
use keystone_core::operator::{
    ColumnarFn, CostFn, Estimator, OptimizableTransformer, Transformer, TransformerOption,
};
use keystone_dataflow::collection::DistCollection;
use keystone_dataflow::cost::CostProfile;

// ---------------------------------------------------------------------------
// Per-record transformers
// ---------------------------------------------------------------------------

/// `x ↦ a·x + b` element-wise.
#[derive(Clone, Copy)]
pub struct Affine {
    /// Scale.
    pub a: f64,
    /// Shift.
    pub b: f64,
}

impl Transformer<Vec<f64>, Vec<f64>> for Affine {
    fn apply(&self, x: &Vec<f64>) -> Vec<f64> {
        x.iter().map(|v| v * self.a + self.b).collect()
    }

    fn columnar_kernel(&self) -> Option<ColumnarFn> {
        let (a, b) = (self.a, self.b);
        Some(Arc::new(move |x, out| {
            out.extend(x.iter().map(|v| v * a + b))
        }))
    }
}

/// Element-wise absolute value.
#[derive(Clone, Copy)]
pub struct AbsVal;

impl Transformer<Vec<f64>, Vec<f64>> for AbsVal {
    fn apply(&self, x: &Vec<f64>) -> Vec<f64> {
        x.iter().map(|v| v.abs()).collect()
    }

    fn columnar_kernel(&self) -> Option<ColumnarFn> {
        Some(Arc::new(|x, out| out.extend(x.iter().map(|v| v.abs()))))
    }
}

/// Rotates the vector so its back half comes first — a cheap, invertible
/// permutation that makes downstream per-dimension models order-sensitive.
#[derive(Clone, Copy)]
pub struct SwapHalves;

impl Transformer<Vec<f64>, Vec<f64>> for SwapHalves {
    fn apply(&self, x: &Vec<f64>) -> Vec<f64> {
        let mid = x.len() / 2;
        let mut out = Vec::with_capacity(x.len());
        out.extend_from_slice(&x[mid..]);
        out.extend_from_slice(&x[..mid]);
        out
    }

    fn columnar_kernel(&self) -> Option<ColumnarFn> {
        Some(Arc::new(|x, out| {
            let mid = x.len() / 2;
            out.extend_from_slice(&x[mid..]);
            out.extend_from_slice(&x[..mid]);
        }))
    }
}

// ---------------------------------------------------------------------------
// Optimizable transformer with bit-identical physical options
// ---------------------------------------------------------------------------

/// Forward-order scaling traversal.
struct ScaleForward(f64);

impl Transformer<Vec<f64>, Vec<f64>> for ScaleForward {
    fn apply(&self, x: &Vec<f64>) -> Vec<f64> {
        x.iter().map(|v| v * self.0).collect()
    }

    fn name(&self) -> String {
        "scale:forward".into()
    }

    fn columnar_kernel(&self) -> Option<ColumnarFn> {
        let c = self.0;
        Some(Arc::new(move |x, out| out.extend(x.iter().map(|v| v * c))))
    }
}

/// Chunked scaling traversal: same multiply per element, different loop
/// structure. Element-wise products are independent, so the output bits
/// match [`ScaleForward`] exactly.
struct ScaleChunked(f64);

impl Transformer<Vec<f64>, Vec<f64>> for ScaleChunked {
    fn apply(&self, x: &Vec<f64>) -> Vec<f64> {
        let mut out = Vec::with_capacity(x.len());
        for chunk in x.chunks(4) {
            for v in chunk {
                out.push(v * self.0);
            }
        }
        out
    }

    fn name(&self) -> String {
        "scale:chunked".into()
    }

    fn columnar_kernel(&self) -> Option<ColumnarFn> {
        let c = self.0;
        Some(Arc::new(move |x, out| {
            for chunk in x.chunks(4) {
                for v in chunk {
                    out.push(v * c);
                }
            }
        }))
    }
}

/// A logical scaling operator with two physical options whose *outputs* are
/// bit-identical but whose *cost models* cross over with input size: the
/// forward traversal is modeled cheap on small inputs, the chunked one cheap
/// on large. Operator selection at `OptLevel::Full` therefore makes a
/// data-dependent choice — and the differential oracle checks that the
/// choice never changes the pipeline's output.
#[derive(Clone, Copy)]
pub struct TwoPathScale {
    /// The scale factor both options apply.
    pub c: f64,
}

impl OptimizableTransformer<Vec<f64>, Vec<f64>> for TwoPathScale {
    fn options(&self) -> Vec<TransformerOption<Vec<f64>, Vec<f64>>> {
        let c = self.c;
        let forward: CostFn =
            Box::new(|stats, _r| CostProfile::compute(50.0 + stats[0].count as f64 * 40.0));
        let chunked: CostFn =
            Box::new(|stats, _r| CostProfile::compute(600.0 + stats[0].count as f64 * 4.0));
        vec![
            TransformerOption {
                name: "scale:forward".into(),
                cost: forward,
                op: Box::new(ScaleForward(c)),
            },
            TransformerOption {
                name: "scale:chunked".into(),
                cost: chunked,
                op: Box::new(ScaleChunked(c)),
            },
        ]
    }

    fn name(&self) -> String {
        "TwoPathScale".into()
    }
}

// ---------------------------------------------------------------------------
// Multi-pass estimators with partition-invariant aggregation
// ---------------------------------------------------------------------------

/// Subtracts a fitted per-dimension vector (zip-min semantics: dimensions
/// beyond the fitted length pass through unchanged).
struct SubtractVec(Vec<f64>);

impl Transformer<Vec<f64>, Vec<f64>> for SubtractVec {
    fn apply(&self, x: &Vec<f64>) -> Vec<f64> {
        x.iter()
            .enumerate()
            .map(|(j, v)| v - self.0.get(j).copied().unwrap_or(0.0))
            .collect()
    }

    fn name(&self) -> String {
        "SubtractVec".into()
    }
}

/// Divides by a fitted per-dimension vector (entries are ≥ 1, so never a
/// division by zero).
struct DivideVec(Vec<f64>);

impl Transformer<Vec<f64>, Vec<f64>> for DivideVec {
    fn apply(&self, x: &Vec<f64>) -> Vec<f64> {
        x.iter()
            .enumerate()
            .map(|(j, v)| v / self.0.get(j).copied().unwrap_or(1.0))
            .collect()
    }

    fn name(&self) -> String {
        "DivideVec".into()
    }
}

/// Computes the per-dimension mean by folding over `collect()` — the
/// partition-order-invariant aggregation the module docs describe — and
/// subtracts it. `passes` re-pulls the training input that many times
/// (`w` in §4.3), which is what gives the materialization optimizer
/// something to save.
#[derive(Clone, Copy)]
pub struct SeqMeanCenter {
    /// Number of passes over the training input.
    pub passes: u32,
}

fn seq_mean(rows: &[Vec<f64>]) -> Vec<f64> {
    let dim = rows.first().map_or(0, |r| r.len());
    let mut mean = vec![0.0f64; dim];
    for r in rows {
        for (j, v) in r.iter().enumerate() {
            if j < dim {
                mean[j] += v;
            }
        }
    }
    let n = rows.len().max(1) as f64;
    for m in &mut mean {
        *m /= n;
    }
    mean
}

impl Estimator<Vec<f64>, Vec<f64>> for SeqMeanCenter {
    fn fit(
        &self,
        data: &DistCollection<Vec<f64>>,
        ctx: &ExecContext,
    ) -> Box<dyn Transformer<Vec<f64>, Vec<f64>>> {
        self.fit_lazy(&|| data.clone(), ctx)
    }

    fn fit_lazy(
        &self,
        data: &dyn Fn() -> DistCollection<Vec<f64>>,
        _ctx: &ExecContext,
    ) -> Box<dyn Transformer<Vec<f64>, Vec<f64>>> {
        let mut mean = Vec::new();
        for _ in 0..self.passes.max(1) {
            mean = seq_mean(&data().collect());
        }
        Box::new(SubtractVec(mean))
    }

    fn weight(&self) -> u32 {
        self.passes.max(1)
    }

    fn name(&self) -> String {
        "SeqMeanCenter".into()
    }
}

/// Fits per-dimension `1 + max |x_j|` (max is order-invariant, but the fold
/// over `collect()` keeps even rounding behaviour fixed) and divides by it,
/// bounding every dimension to `[-1, 1]`. Multi-pass like
/// [`SeqMeanCenter`].
#[derive(Clone, Copy)]
pub struct SeqRangeScale {
    /// Number of passes over the training input.
    pub passes: u32,
}

impl Estimator<Vec<f64>, Vec<f64>> for SeqRangeScale {
    fn fit(
        &self,
        data: &DistCollection<Vec<f64>>,
        ctx: &ExecContext,
    ) -> Box<dyn Transformer<Vec<f64>, Vec<f64>>> {
        self.fit_lazy(&|| data.clone(), ctx)
    }

    fn fit_lazy(
        &self,
        data: &dyn Fn() -> DistCollection<Vec<f64>>,
        _ctx: &ExecContext,
    ) -> Box<dyn Transformer<Vec<f64>, Vec<f64>>> {
        let mut scale = Vec::new();
        for _ in 0..self.passes.max(1) {
            let rows = data().collect();
            let dim = rows.first().map_or(0, |r| r.len());
            let mut max_abs = vec![0.0f64; dim];
            for r in &rows {
                for (j, v) in r.iter().enumerate() {
                    if j < dim && v.abs() > max_abs[j] {
                        max_abs[j] = v.abs();
                    }
                }
            }
            scale = max_abs.into_iter().map(|m| 1.0 + m).collect();
        }
        Box::new(DivideVec(scale))
    }

    fn weight(&self) -> u32 {
        self.passes.max(1)
    }

    fn name(&self) -> String {
        "SeqRangeScale".into()
    }
}

/// [`SeqMeanCenter`] with a *lying* weight declaration: `weight()` reports
/// a single pass while `fit_lazy` actually re-pulls the training input
/// `actual_passes` times. The materialization optimizer therefore
/// under-provisions its input — exactly the mis-profiled shape the
/// adaptive re-planner exists to correct. The fitted model is a pure
/// function of the input (every pass computes the same mean), so outputs
/// stay bit-identical whether or not adaptation caches the input
/// mid-fit.
#[derive(Clone, Copy)]
pub struct UnderdeclaredMeanCenter {
    /// How many passes `fit_lazy` actually performs (declared: 1).
    pub actual_passes: u32,
}

impl Estimator<Vec<f64>, Vec<f64>> for UnderdeclaredMeanCenter {
    fn fit(
        &self,
        data: &DistCollection<Vec<f64>>,
        ctx: &ExecContext,
    ) -> Box<dyn Transformer<Vec<f64>, Vec<f64>>> {
        self.fit_lazy(&|| data.clone(), ctx)
    }

    fn fit_lazy(
        &self,
        data: &dyn Fn() -> DistCollection<Vec<f64>>,
        _ctx: &ExecContext,
    ) -> Box<dyn Transformer<Vec<f64>, Vec<f64>>> {
        let mut mean = Vec::new();
        for _ in 0..self.actual_passes.max(1) {
            mean = seq_mean(&data().collect());
        }
        Box::new(SubtractVec(mean))
    }

    fn weight(&self) -> u32 {
        1
    }

    fn name(&self) -> String {
        "UnderdeclaredMeanCenter".into()
    }
}

/// The opposite lie: `weight()` declares `declared_passes` but `fit_lazy`
/// converges after a single pull, so any materialization pick made for it
/// goes unpaid — the eviction half of the adaptive re-planner's job.
#[derive(Clone, Copy)]
pub struct OverdeclaredMeanCenter {
    /// The declared pass count (actual: 1).
    pub declared_passes: u32,
}

impl Estimator<Vec<f64>, Vec<f64>> for OverdeclaredMeanCenter {
    fn fit(
        &self,
        data: &DistCollection<Vec<f64>>,
        _ctx: &ExecContext,
    ) -> Box<dyn Transformer<Vec<f64>, Vec<f64>>> {
        Box::new(SubtractVec(seq_mean(&data.collect())))
    }

    fn weight(&self) -> u32 {
        self.declared_passes.max(1)
    }

    fn name(&self) -> String {
        "OverdeclaredMeanCenter".into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_path_options_are_bit_identical() {
        let op = TwoPathScale { c: 1.25 };
        let opts = op.options();
        assert_eq!(opts.len(), 2);
        let x = vec![0.1, -3.5, 7.25, 0.0, -0.125, 9.0, 2.5];
        let a = opts[0].op.apply(&x);
        let b = opts[1].op.apply(&x);
        let bits = |v: &[f64]| v.iter().map(|f| f.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&a), bits(&b));
    }

    #[test]
    fn estimators_are_partition_invariant() {
        let rows: Vec<Vec<f64>> = (0..17)
            .map(|i| vec![i as f64 * 0.5, -(i as f64), 3.0])
            .collect();
        let ctx = ExecContext::default_cluster();
        for est_passes in [1u32, 3] {
            let mut fitted_bits = Vec::new();
            for parts in [1usize, 2, 5] {
                let data = DistCollection::from_vec(rows.clone(), parts);
                let model = SeqMeanCenter { passes: est_passes }.fit(&data, &ctx);
                let out = model.apply(&vec![1.0, 2.0, 3.0]);
                fitted_bits.push(out.iter().map(|v| v.to_bits()).collect::<Vec<_>>());
            }
            assert_eq!(fitted_bits[0], fitted_bits[1]);
            assert_eq!(fitted_bits[1], fitted_bits[2]);
        }
    }

    #[test]
    fn range_scale_bounds_output() {
        let rows = vec![vec![4.0, -8.0], vec![-2.0, 6.0]];
        let data = DistCollection::from_vec(rows, 2);
        let ctx = ExecContext::default_cluster();
        let model = SeqRangeScale { passes: 2 }.fit(&data, &ctx);
        for r in [vec![4.0, -8.0], vec![-2.0, 6.0]] {
            for v in model.apply(&r) {
                assert!(v.abs() <= 1.0);
            }
        }
    }

    #[test]
    fn misdeclared_estimators_fit_the_same_model_as_the_honest_one() {
        let rows: Vec<Vec<f64>> = (0..13)
            .map(|i| vec![i as f64 * 0.75, -(i as f64)])
            .collect();
        let data = DistCollection::from_vec(rows, 3);
        let ctx = ExecContext::default_cluster();
        let probe = vec![2.5, -1.25];
        let bits = |m: &dyn Transformer<Vec<f64>, Vec<f64>>| {
            m.apply(&probe)
                .iter()
                .map(|v| v.to_bits())
                .collect::<Vec<_>>()
        };
        let honest = SeqMeanCenter { passes: 1 }.fit(&data, &ctx);
        let under = UnderdeclaredMeanCenter { actual_passes: 4 }.fit(&data, &ctx);
        let over = OverdeclaredMeanCenter { declared_passes: 6 }.fit(&data, &ctx);
        assert_eq!(bits(honest.as_ref()), bits(under.as_ref()));
        assert_eq!(bits(honest.as_ref()), bits(over.as_ref()));
        // The lies live only in the declarations.
        assert_eq!(UnderdeclaredMeanCenter { actual_passes: 4 }.weight(), 1);
        assert_eq!(OverdeclaredMeanCenter { declared_passes: 6 }.weight(), 6);
    }

    #[test]
    fn swap_halves_rotates() {
        assert_eq!(
            SwapHalves.apply(&vec![1.0, 2.0, 3.0, 4.0, 5.0]),
            vec![3.0, 4.0, 5.0, 1.0, 2.0]
        );
    }

    #[test]
    fn columnar_kernels_match_apply_bit_for_bit() {
        let inputs = vec![
            vec![0.0, -0.0, 1.5, -2.25, 1e-300, f64::MAX, 3.7],
            vec![0.1, 0.2],
            vec![],
        ];
        type BoxedOp = Box<dyn Transformer<Vec<f64>, Vec<f64>>>;
        let ops: Vec<(BoxedOp, &str)> = vec![
            (Box::new(Affine { a: 1.7, b: -0.3 }), "affine"),
            (Box::new(AbsVal), "absval"),
            (Box::new(SwapHalves), "swaphalves"),
            (Box::new(ScaleForward(0.73)), "scale:forward"),
            (Box::new(ScaleChunked(0.73)), "scale:chunked"),
        ];
        for (op, name) in &ops {
            let kernel = op
                .columnar_kernel()
                .unwrap_or_else(|| panic!("{name} should expose a columnar kernel"));
            for x in &inputs {
                let via_apply = op.apply(x);
                let mut via_kernel = Vec::new();
                kernel(x, &mut via_kernel);
                let a: Vec<u64> = via_apply.iter().map(|v| v.to_bits()).collect();
                let k: Vec<u64> = via_kernel.iter().map(|v| v.to_bits()).collect();
                assert_eq!(a, k, "columnar kernel for {name} diverged from apply");
            }
        }
    }
}
