//! The differential-execution oracle.
//!
//! For one seed, [`matrix`] enumerates a grid of optimizer configurations —
//! optimization level × materialization budget × caching strategy ×
//! partition count × seeded fault plan — and [`check_seed`] fits the seed's
//! generated pipeline in every cell, comparing held-out predictions
//! *bitwise* (`f64::to_bits`, so `-0.0` vs `0.0` or NaN payload drift cannot
//! masquerade as equality). Any divergence produces a report carrying the
//! seed, the generated recipe, the DAG summary, and the one-command repro.

use std::collections::HashSet;

use keystone_core::context::ExecContext;
use keystone_core::optimizer::{build_mat_problem, fit_roots, CachingStrategy, PipelineOptions};
use keystone_core::profiler::ProfileOptions;
use keystone_dataflow::faults::FaultSpec;

use crate::gen::{generate, DataSpec};

/// A cache budget that admits nothing.
pub const BUDGET_ZERO: u64 = 0;
/// A budget that forces real greedy trade-offs on the tiny generated data.
pub const BUDGET_TIGHT: u64 = 4 * 1024;
/// A budget that is effectively unbounded.
pub const BUDGET_UNBOUNDED: u64 = 1 << 40;

/// One configuration under which a generated pipeline is fit and applied.
pub struct MatrixCell {
    /// Display name, e.g. `full/greedy-tight/p4/faults`.
    pub name: String,
    /// Optimizer configuration.
    pub opts: PipelineOptions,
    /// Partition count for both the training and held-out data.
    pub partitions: usize,
    /// Whether a seeded fault plan is injected during fit.
    pub faulted: bool,
}

fn profile_opts() -> ProfileOptions {
    ProfileOptions {
        sizes: vec![8, 16],
        seed: 5,
        select_operators: true,
    }
}

/// The full configuration matrix for one seed: 7 optimizer configurations ×
/// {1, 4} partitions × {no faults, seeded faults} = 28 cells.
pub fn matrix(_seed: u64) -> Vec<MatrixCell> {
    let configs: Vec<(&str, PipelineOptions)> = vec![
        ("none", PipelineOptions::none()),
        (
            "pipe/greedy-b0",
            PipelineOptions::pipe_only().with_budget(BUDGET_ZERO),
        ),
        (
            "pipe/greedy-tight",
            PipelineOptions::pipe_only().with_budget(BUDGET_TIGHT),
        ),
        (
            "pipe/greedy-unbounded",
            PipelineOptions::pipe_only().with_budget(BUDGET_UNBOUNDED),
        ),
        (
            "pipe/lru-tight",
            PipelineOptions::pipe_only()
                .with_budget(BUDGET_TIGHT)
                .with_caching(CachingStrategy::Lru {
                    admission_fraction: 1.0,
                }),
        ),
        (
            "full/greedy-tight",
            PipelineOptions::full().with_budget(BUDGET_TIGHT),
        ),
        (
            "full/greedy-unbounded",
            PipelineOptions::full().with_budget(BUDGET_UNBOUNDED),
        ),
    ];
    let mut cells = Vec::with_capacity(configs.len() * 4);
    for partitions in [1usize, 4] {
        for faulted in [false, true] {
            for (tag, opts) in &configs {
                cells.push(MatrixCell {
                    name: format!(
                        "{tag}/p{partitions}{}",
                        if faulted { "/faults" } else { "" }
                    ),
                    opts: PipelineOptions {
                        profile: profile_opts(),
                        ..opts.clone()
                    },
                    partitions,
                    faulted,
                });
            }
        }
    }
    cells
}

fn cell_context(seed: u64, cell: &MatrixCell) -> ExecContext {
    let ctx = ExecContext::default_cluster();
    if cell.faulted {
        // The fault schedule is a pure function of the seed: failures and
        // stragglers perturb scheduling and accounting, cache losses force
        // lineage recomputes — none of which may change a single output bit.
        ctx.with_faults(
            FaultSpec::new(seed ^ 0xFA17)
                .with_task_failures(0.25)
                .with_stragglers(0.2)
                .with_cache_loss(0.3)
                .with_straggler_min_delay_us(200)
                .into_plan(),
        )
    } else {
        ctx
    }
}

/// Fits the seed's pipeline under `cell` and returns the held-out
/// predictions as raw bit patterns.
pub fn run_cell(seed: u64, cell: &MatrixCell) -> Vec<Vec<u64>> {
    let spec = DataSpec::from_seed(seed);
    let train = spec.train(cell.partitions);
    let test = spec.test(cell.partitions);
    let generated = generate(seed, &train);
    let ctx = cell_context(seed, cell);
    let (fitted, _report) = generated.pipeline.fit(&ctx, &cell.opts);
    fitted
        .apply(&test, &ctx)
        .collect()
        .into_iter()
        .map(|row| row.into_iter().map(f64::to_bits).collect())
        .collect()
}

/// Successful differential run over one seed.
#[derive(Debug)]
pub struct SeedReport {
    /// The seed checked.
    pub seed: u64,
    /// Number of matrix cells that agreed.
    pub cells: usize,
}

/// Runs the full matrix for `seed`, requiring bit-identical predictions in
/// every cell. On divergence returns a report with everything needed to
/// reproduce: the seed, the generated recipe, the DAG, and the command.
pub fn check_seed(seed: u64) -> Result<SeedReport, String> {
    let cells = matrix(seed);
    let mut baseline: Option<(&str, Vec<Vec<u64>>)> = None;
    for cell in &cells {
        let out = run_cell(seed, cell);
        match &baseline {
            None => baseline = Some((&cell.name, out)),
            Some((base_name, base_out)) => {
                if *base_out != out {
                    return Err(failure_report(seed, base_name, &cell.name));
                }
            }
        }
    }
    Ok(SeedReport {
        seed,
        cells: cells.len(),
    })
}

/// Renders the diagnostic block for a diverged cell.
pub fn failure_report(seed: u64, baseline_cell: &str, diverged_cell: &str) -> String {
    let spec = DataSpec::from_seed(seed);
    let train = spec.train(1);
    let generated = generate(seed, &train);
    format!(
        "differential mismatch at seed {seed}: cell `{diverged_cell}` diverged from `{baseline_cell}`\n\
         data: n={} dim={} classes={}\n\
         recipe: {}\n\
         DAG:\n{}\
         reproduce: KEYSTONE_TESTKIT_SEED={seed} cargo test --test differential -- --nocapture\n",
        spec.n,
        spec.dim,
        spec.classes,
        generated.description,
        generated.pipeline.summary(),
    )
}

/// Seeds to sweep: the pinned default range unless `KEYSTONE_TESTKIT_SEED`
/// overrides it with a single seed (`17`) or a half-open range (`0..50`).
pub fn seeds_from_env(default_start: u64, default_count: u64) -> Vec<u64> {
    match std::env::var("KEYSTONE_TESTKIT_SEED") {
        Ok(raw) => {
            let raw = raw.trim().to_string();
            if let Some((a, b)) = raw.split_once("..") {
                let a: u64 = a.parse().expect("KEYSTONE_TESTKIT_SEED range start");
                let b: u64 = b.parse().expect("KEYSTONE_TESTKIT_SEED range end");
                (a..b).collect()
            } else {
                vec![raw.parse().expect("KEYSTONE_TESTKIT_SEED must be a u64")]
            }
        }
        Err(_) => (default_start..default_start + default_count).collect(),
    }
}

/// Writes a failure report where CI's artifact step expects it
/// (`target/testkit-failure.txt` relative to the test's working directory).
/// Best-effort: returns the path on success.
pub fn write_failure_artifact(report: &str) -> Option<std::path::PathBuf> {
    let dir = std::path::Path::new("target");
    std::fs::create_dir_all(dir).ok()?;
    let path = dir.join("testkit-failure.txt");
    std::fs::write(&path, report).ok()?;
    Some(path)
}

/// Cost-model facts about the materialization plan of one fitted pipeline,
/// for metamorphic assertions (monotonicity, budget feasibility,
/// greedy-vs-optimal) at the pipeline level rather than on synthetic DAGs.
#[derive(Debug)]
pub struct CachePlanCheck {
    /// `est_runtime(∅)`.
    pub empty_runtime: f64,
    /// `est_runtime` of the cache set the fit actually chose.
    pub planned_runtime: f64,
    /// Bytes of the chosen cache set.
    pub planned_bytes: u64,
    /// The budget the plan was solved under.
    pub budget: u64,
    /// Number of cacheable (non-`always_cached`) nodes.
    pub candidates: usize,
    /// `est_runtime` of a fresh greedy solution on the rebuilt problem.
    pub greedy_runtime: f64,
    /// `est_runtime` of the exact solution, when the instance is small
    /// enough to enumerate (≤ 12 candidates).
    pub optimal_runtime: Option<f64>,
}

/// Fits the seed's pipeline with greedy materialization under `budget`,
/// rebuilds the exact [`MatProblem`](keystone_core::optimizer::MatProblem)
/// that fit solved, and evaluates the cost model around the chosen plan.
pub fn check_cache_plan(seed: u64, budget: u64) -> CachePlanCheck {
    let spec = DataSpec::from_seed(seed);
    let train = spec.train(4);
    let generated = generate(seed, &train);
    let ctx = ExecContext::default_cluster();
    let opts = PipelineOptions {
        profile: profile_opts(),
        ..PipelineOptions::pipe_only().with_budget(budget)
    };
    let (fitted, report) = generated.pipeline.fit(&ctx, &opts);
    let roots = fit_roots(fitted.graph(), fitted.output_node());
    let problem = build_mat_problem(fitted.graph(), &report.profile, &roots);
    // Must match `MatProblem::candidates()`: the exact solver enumerates
    // 2^candidates subsets, so the gate below has to count what it counts.
    let candidates = problem.nodes.iter().filter(|n| !n.always_cached).count();
    let empty_runtime = problem.est_runtime(&HashSet::new());
    let planned_runtime = problem.est_runtime(&report.cache_set);
    let planned_bytes = problem.set_bytes(&report.cache_set);
    let greedy_runtime = problem.est_runtime(&problem.greedy_cache_set(budget));
    let optimal_runtime =
        (candidates <= 12).then(|| problem.est_runtime(&problem.optimal_cache_set(budget)));
    CachePlanCheck {
        empty_runtime,
        planned_runtime,
        planned_bytes,
        budget,
        candidates,
        greedy_runtime,
        optimal_runtime,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_has_28_distinct_cells() {
        let cells = matrix(0);
        assert_eq!(cells.len(), 28);
        let names: HashSet<&str> = cells.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names.len(), 28, "cell names must be unique");
        assert!(cells.iter().any(|c| c.faulted));
        assert!(cells.iter().any(|c| c.partitions == 4));
    }

    #[test]
    fn failure_report_carries_repro() {
        let r = failure_report(99, "none/p1", "full/greedy-tight/p4/faults");
        assert!(r.contains("seed 99"));
        assert!(r.contains("KEYSTONE_TESTKIT_SEED=99 cargo test --test differential"));
        assert!(r.contains("recipe: seed=99:"));
        assert!(r.contains("input"), "DAG summary missing:\n{r}");
    }

    #[test]
    fn seeds_env_parsing() {
        // Can't mutate the real env safely under parallel tests; exercise
        // only the default path here (the parse paths are covered by the
        // differential test's documented usage).
        let seeds = seeds_from_env(10, 3);
        if std::env::var("KEYSTONE_TESTKIT_SEED").is_err() {
            assert_eq!(seeds, vec![10, 11, 12]);
        }
    }

    #[test]
    fn single_seed_smoke() {
        let report = check_seed(3).unwrap_or_else(|e| panic!("{e}"));
        assert_eq!(report.cells, 28);
    }
}
