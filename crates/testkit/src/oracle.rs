//! The differential-execution oracle.
//!
//! For one seed, [`matrix`] enumerates a grid of optimizer configurations —
//! optimization level × materialization budget × caching strategy ×
//! partition count × seeded fault plan × whole-stage fusion on/off ×
//! columnar lowering on/off × adaptive re-optimization on/off — and
//! [`check_seed`] fits the seed's generated pipeline in every cell,
//! comparing held-out predictions *bitwise* (`f64::to_bits`, so `-0.0` vs
//! `0.0` or NaN payload drift cannot masquerade as equality). The four
//! physical variants (fusion × columnar) of each configuration must
//! additionally choose the exact same materialization picks — fusion and
//! columnar lowering are physical rewrites and may never perturb the
//! caching decision. Each adaptive cell is further compared against its
//! static twin: adaptation is *cost-only*, so it may never increase the
//! simulated fit cost beyond the charged decision overhead, and when no
//! revision fires the two twins must agree to the last bit of the clock.
//! Any divergence produces a report carrying the seed, the generated
//! recipe, the DAG summary, and the one-command repro.

use std::collections::{HashMap, HashSet};

use keystone_core::context::ExecContext;
use keystone_core::optimizer::{
    build_mat_problem, fit_roots, CachingStrategy, PipelineOptions, ADAPT_DECISION_SECS,
};
use keystone_core::profiler::ProfileOptions;
use keystone_dataflow::faults::FaultSpec;

use crate::gen::{generate, DataSpec};

/// A cache budget that admits nothing.
pub const BUDGET_ZERO: u64 = 0;
/// A budget that forces real greedy trade-offs on the tiny generated data.
pub const BUDGET_TIGHT: u64 = 4 * 1024;
/// A budget that is effectively unbounded.
pub const BUDGET_UNBOUNDED: u64 = 1 << 40;

/// One configuration under which a generated pipeline is fit and applied.
pub struct MatrixCell {
    /// Display name, e.g. `full/greedy-tight/p4/faults+adapt+fuse+col`.
    pub name: String,
    /// Key shared by the four physical variants (fusion × columnar) of the
    /// same base configuration; materialization picks are compared within a
    /// pair.
    pub pair: String,
    /// Optimizer configuration.
    pub opts: PipelineOptions,
    /// Partition count for both the training and held-out data.
    pub partitions: usize,
    /// Whether a seeded fault plan is injected during fit.
    pub faulted: bool,
    /// Whether whole-stage fusion is forced on (vs forced off).
    pub fused: bool,
    /// Whether columnar lowering of fused chains is forced on (vs forced
    /// off). Only observable when `fused` is also on; forcing it in both
    /// directions on unfused cells pins the toggle as a structural no-op.
    pub col: bool,
    /// Whether mid-fit adaptive re-optimization is forced on (vs forced
    /// off). Adaptation is cost-only: predictions must stay bit-identical
    /// and the simulated fit cost may never exceed the static twin's by
    /// more than the charged decision overhead.
    pub adapt: bool,
}

pub(crate) fn profile_opts() -> ProfileOptions {
    ProfileOptions {
        sizes: vec![8, 16],
        seed: 5,
        select_operators: true,
        // Pick-equality between fusion variants (and repro of a failing
        // cell) requires the cost model to be a pure function of the seed.
        deterministic_timing: true,
    }
}

/// The full configuration matrix for one seed: 7 optimizer configurations ×
/// {1, 4} partitions × {no faults, seeded faults} × {adaptive off, adaptive
/// on} × {fusion off, fusion on} × {columnar off, columnar on} = 224 cells.
pub fn matrix(_seed: u64) -> Vec<MatrixCell> {
    let configs: Vec<(&str, PipelineOptions)> = vec![
        ("none", PipelineOptions::none()),
        (
            "pipe/greedy-b0",
            PipelineOptions::pipe_only().with_budget(BUDGET_ZERO),
        ),
        (
            "pipe/greedy-tight",
            PipelineOptions::pipe_only().with_budget(BUDGET_TIGHT),
        ),
        (
            "pipe/greedy-unbounded",
            PipelineOptions::pipe_only().with_budget(BUDGET_UNBOUNDED),
        ),
        (
            "pipe/lru-tight",
            PipelineOptions::pipe_only()
                .with_budget(BUDGET_TIGHT)
                .with_caching(CachingStrategy::Lru {
                    admission_fraction: 1.0,
                }),
        ),
        (
            "full/greedy-tight",
            PipelineOptions::full().with_budget(BUDGET_TIGHT),
        ),
        (
            "full/greedy-unbounded",
            PipelineOptions::full().with_budget(BUDGET_UNBOUNDED),
        ),
    ];
    let mut cells = Vec::with_capacity(configs.len() * 32);
    for partitions in [1usize, 4] {
        for faulted in [false, true] {
            for (tag, opts) in &configs {
                for adapt in [false, true] {
                    let pair = format!(
                        "{tag}/p{partitions}{}{}",
                        if faulted { "/faults" } else { "" },
                        if adapt { "+adapt" } else { "" }
                    );
                    for fused in [false, true] {
                        for col in [false, true] {
                            let mut name = pair.clone();
                            if fused {
                                name.push_str("+fuse");
                            }
                            if col {
                                name.push_str("+col");
                            }
                            cells.push(MatrixCell {
                                name,
                                pair: pair.clone(),
                                opts: PipelineOptions {
                                    profile: profile_opts(),
                                    ..opts
                                        .clone()
                                        .with_fusion(fused)
                                        .with_columnar(col)
                                        .with_adaptive(adapt)
                                },
                                partitions,
                                faulted,
                                fused,
                                col,
                                adapt,
                            });
                        }
                    }
                }
            }
        }
    }
    cells
}

fn cell_context(seed: u64, cell: &MatrixCell) -> ExecContext {
    let ctx = ExecContext::default_cluster();
    if cell.faulted {
        // The fault schedule is a pure function of the seed: failures and
        // stragglers perturb scheduling and accounting, cache losses force
        // lineage recomputes — none of which may change a single output bit.
        ctx.with_faults(
            FaultSpec::new(seed ^ 0xFA17)
                .with_task_failures(0.25)
                .with_stragglers(0.2)
                .with_cache_loss(0.3)
                .with_straggler_min_delay_us(200)
                .into_plan(),
        )
    } else {
        ctx
    }
}

/// What one matrix cell produced: the held-out predictions (bitwise) plus
/// the materialization picks the fit chose, for pairwise fused-vs-unfused
/// comparison.
pub struct CellRun {
    /// Held-out predictions as raw `f64::to_bits` patterns.
    pub bits: Vec<Vec<u64>>,
    /// The chosen cache set, sorted for stable comparison.
    pub mat_picks: Vec<usize>,
    /// Simulated seconds on the clock when fit returned (profiling +
    /// optimization + fit waves + any adaptive decision charges).
    pub sim_fit_secs: f64,
    /// Adaptive recalibration triggers observed during fit.
    pub recalibrations: u64,
    /// Applied (non-empty) mid-fit plan revisions.
    pub revisions: u64,
}

/// Fits the seed's pipeline under `cell` and returns the held-out
/// predictions as raw bit patterns plus the materialization picks and the
/// adaptive accounting for twin comparison.
pub fn run_cell(seed: u64, cell: &MatrixCell) -> CellRun {
    let spec = DataSpec::from_seed(seed);
    let train = spec.train(cell.partitions);
    let test = spec.test(cell.partitions);
    let generated = generate(seed, &train);
    let ctx = cell_context(seed, cell);
    let (fitted, report) = generated.pipeline.fit(&ctx, &cell.opts);
    let sim_fit_secs = ctx.sim.total_seconds();
    let mut mat_picks: Vec<usize> = report.cache_set.iter().copied().collect();
    mat_picks.sort_unstable();
    let bits = fitted
        .apply(&test, &ctx)
        .collect()
        .into_iter()
        .map(|row| row.into_iter().map(f64::to_bits).collect())
        .collect();
    CellRun {
        bits,
        mat_picks,
        sim_fit_secs,
        recalibrations: report.adaptation.recalibrations,
        revisions: report.adaptation.revisions.len() as u64,
    }
}

/// Successful differential run over one seed.
#[derive(Debug)]
pub struct SeedReport {
    /// The seed checked.
    pub seed: u64,
    /// Number of matrix cells that agreed.
    pub cells: usize,
}

/// Runs the full matrix for `seed`, requiring bit-identical predictions in
/// every cell, identical materialization picks among the four physical
/// variants (fusion × columnar) of each base configuration, and cost-only
/// adaptation: every `+adapt` cell is compared against its static twin —
/// the adaptive simulated fit cost may never exceed the static cost by more
/// than the charged decision overhead, and when no revision fired the twins
/// must match the clock (and the picks) exactly. On divergence returns a
/// report with everything needed to reproduce: the seed, the generated
/// recipe, the DAG, and the command.
pub fn check_seed(seed: u64) -> Result<SeedReport, String> {
    let cells = matrix(seed);
    let mut baseline: Option<(&str, Vec<Vec<u64>>)> = None;
    let mut picks_by_pair: HashMap<&str, (&str, Vec<usize>)> = HashMap::new();
    let mut static_twins: HashMap<String, (&str, f64, Vec<usize>)> = HashMap::new();
    for cell in &cells {
        let run = run_cell(seed, cell);
        match &baseline {
            None => baseline = Some((&cell.name, run.bits)),
            Some((base_name, base_out)) => {
                if *base_out != run.bits {
                    return Err(failure_report(seed, base_name, &cell.name));
                }
            }
        }
        match picks_by_pair.get(cell.pair.as_str()) {
            None => {
                picks_by_pair.insert(&cell.pair, (&cell.name, run.mat_picks.clone()));
            }
            Some((other_name, other_picks)) => {
                if *other_picks != run.mat_picks {
                    return Err(format!(
                        "materialization picks diverged between physical variants: \
                         `{}` chose {:?} but `{}` chose {:?}\n{}",
                        other_name,
                        other_picks,
                        cell.name,
                        run.mat_picks,
                        failure_report(seed, other_name, &cell.name)
                    ));
                }
            }
        }
        if !cell.adapt {
            static_twins.insert(
                cell.name.clone(),
                (&cell.name, run.sim_fit_secs, run.mat_picks),
            );
        } else {
            // The static twin shares the name minus the `+adapt` marker and
            // is always generated (and therefore run) first.
            let twin_key = cell.name.replace("+adapt", "");
            let (twin_name, sim_off, twin_picks) = static_twins
                .get(&twin_key)
                .unwrap_or_else(|| panic!("static twin `{twin_key}` missing for `{}`", cell.name));
            if cell.faulted {
                // Fault-injected fits keep the static plan (recovery work
                // charges measured durations to the clock, so the clock is
                // not twin-comparable); adaptation must never engage.
                if run.recalibrations != 0 || run.revisions != 0 {
                    return Err(format!(
                        "adaptation engaged under fault injection: `{}` recorded {} \
                         recalibrations / {} revisions\n{}",
                        cell.name,
                        run.recalibrations,
                        run.revisions,
                        failure_report(seed, twin_name, &cell.name)
                    ));
                }
                if run.mat_picks != *twin_picks {
                    return Err(format!(
                        "adaptive toggle changed the cache set under faults: `{}` \
                         chose {:?} but static twin `{twin_name}` chose {:?}\n{}",
                        cell.name,
                        run.mat_picks,
                        twin_picks,
                        failure_report(seed, twin_name, &cell.name)
                    ));
                }
                continue;
            }
            let allowance = run.revisions as f64 * ADAPT_DECISION_SECS + 1e-12;
            if run.sim_fit_secs > sim_off + allowance {
                return Err(format!(
                    "adaptation increased simulated fit cost: `{}` spent {:.9}s but \
                     static twin `{twin_name}` spent {:.9}s ({} revisions, allowance \
                     {allowance:.12}s)\n{}",
                    cell.name,
                    run.sim_fit_secs,
                    sim_off,
                    run.revisions,
                    failure_report(seed, twin_name, &cell.name)
                ));
            }
            if run.revisions == 0 {
                if run.sim_fit_secs.to_bits() != sim_off.to_bits() {
                    return Err(format!(
                        "adaptation without a revision perturbed the clock: `{}` spent \
                         {:.12}s but static twin `{twin_name}` spent {:.12}s\n{}",
                        cell.name,
                        run.sim_fit_secs,
                        sim_off,
                        failure_report(seed, twin_name, &cell.name)
                    ));
                }
                if run.mat_picks != *twin_picks {
                    return Err(format!(
                        "adaptation without a revision changed the cache set: `{}` \
                         chose {:?} but static twin `{twin_name}` chose {:?}\n{}",
                        cell.name,
                        run.mat_picks,
                        twin_picks,
                        failure_report(seed, twin_name, &cell.name)
                    ));
                }
            }
        }
    }
    Ok(SeedReport {
        seed,
        cells: cells.len(),
    })
}

/// Renders the diagnostic block for a diverged cell.
pub fn failure_report(seed: u64, baseline_cell: &str, diverged_cell: &str) -> String {
    let spec = DataSpec::from_seed(seed);
    let train = spec.train(1);
    let generated = generate(seed, &train);
    format!(
        "differential mismatch at seed {seed}: cell `{diverged_cell}` diverged from `{baseline_cell}`\n\
         data: n={} dim={} classes={}\n\
         recipe: {}\n\
         DAG:\n{}\
         reproduce: KEYSTONE_TESTKIT_SEED={seed} cargo test --test differential -- --nocapture\n",
        spec.n,
        spec.dim,
        spec.classes,
        generated.description,
        generated.pipeline.summary(),
    )
}

/// Seeds to sweep: the pinned default range unless `KEYSTONE_TESTKIT_SEED`
/// overrides it with a single seed (`17`) or a half-open range (`0..50`).
pub fn seeds_from_env(default_start: u64, default_count: u64) -> Vec<u64> {
    match std::env::var("KEYSTONE_TESTKIT_SEED") {
        Ok(raw) => {
            let raw = raw.trim().to_string();
            if let Some((a, b)) = raw.split_once("..") {
                let a: u64 = a.parse().expect("KEYSTONE_TESTKIT_SEED range start");
                let b: u64 = b.parse().expect("KEYSTONE_TESTKIT_SEED range end");
                (a..b).collect()
            } else {
                vec![raw.parse().expect("KEYSTONE_TESTKIT_SEED must be a u64")]
            }
        }
        Err(_) => (default_start..default_start + default_count).collect(),
    }
}

/// Writes a failure report where CI's artifact step expects it
/// (`target/testkit-failure.txt` relative to the test's working directory).
/// Best-effort: returns the path on success.
pub fn write_failure_artifact(report: &str) -> Option<std::path::PathBuf> {
    let dir = std::path::Path::new("target");
    std::fs::create_dir_all(dir).ok()?;
    let path = dir.join("testkit-failure.txt");
    std::fs::write(&path, report).ok()?;
    Some(path)
}

/// Cost-model facts about the materialization plan of one fitted pipeline,
/// for metamorphic assertions (monotonicity, budget feasibility,
/// greedy-vs-optimal) at the pipeline level rather than on synthetic DAGs.
#[derive(Debug)]
pub struct CachePlanCheck {
    /// `est_runtime(∅)`.
    pub empty_runtime: f64,
    /// `est_runtime` of the cache set the fit actually chose.
    pub planned_runtime: f64,
    /// Bytes of the chosen cache set.
    pub planned_bytes: u64,
    /// The budget the plan was solved under.
    pub budget: u64,
    /// Number of cacheable (non-`always_cached`) nodes.
    pub candidates: usize,
    /// `est_runtime` of a fresh greedy solution on the rebuilt problem.
    pub greedy_runtime: f64,
    /// `est_runtime` of the exact solution, when the instance is small
    /// enough to enumerate (≤ 12 candidates).
    pub optimal_runtime: Option<f64>,
}

/// Fits the seed's pipeline with greedy materialization under `budget`,
/// rebuilds the exact [`MatProblem`](keystone_core::optimizer::MatProblem)
/// that fit solved, and evaluates the cost model around the chosen plan.
pub fn check_cache_plan(seed: u64, budget: u64) -> CachePlanCheck {
    let spec = DataSpec::from_seed(seed);
    let train = spec.train(4);
    let generated = generate(seed, &train);
    let ctx = ExecContext::default_cluster();
    let opts = PipelineOptions {
        profile: profile_opts(),
        ..PipelineOptions::pipe_only().with_budget(budget)
    };
    let (fitted, report) = generated.pipeline.fit(&ctx, &opts);
    let roots = fit_roots(fitted.graph(), fitted.output_node());
    let problem = build_mat_problem(fitted.graph(), &report.profile, &roots);
    // Must match `MatProblem::candidates()`: the exact solver enumerates
    // 2^candidates subsets, so the gate below has to count what it counts.
    let candidates = problem.nodes.iter().filter(|n| !n.always_cached).count();
    let empty_runtime = problem.est_runtime(&HashSet::new());
    let planned_runtime = problem.est_runtime(&report.cache_set);
    let planned_bytes = problem.set_bytes(&report.cache_set);
    let greedy_runtime = problem.est_runtime(&problem.greedy_cache_set(budget));
    let optimal_runtime =
        (candidates <= 12).then(|| problem.est_runtime(&problem.optimal_cache_set(budget)));
    CachePlanCheck {
        empty_runtime,
        planned_runtime,
        planned_bytes,
        budget,
        candidates,
        greedy_runtime,
        optimal_runtime,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_has_224_distinct_cells_in_physical_variant_pairs() {
        let cells = matrix(0);
        assert_eq!(cells.len(), 224);
        let names: HashSet<&str> = cells.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names.len(), 224, "cell names must be unique");
        let pairs: HashSet<&str> = cells.iter().map(|c| c.pair.as_str()).collect();
        assert_eq!(pairs.len(), 56, "every base config appears as one pair");
        for pair in &pairs {
            let variants: Vec<&MatrixCell> = cells.iter().filter(|c| c.pair == *pair).collect();
            assert_eq!(variants.len(), 4, "pair `{pair}` must have 4 variants");
            assert!(variants.iter().any(|c| c.fused) && variants.iter().any(|c| !c.fused));
            assert!(variants.iter().any(|c| c.col) && variants.iter().any(|c| !c.col));
            assert!(
                variants.iter().any(|c| c.fused && c.col),
                "pair `{pair}` must cover the fused+columnar corner"
            );
            // Adaptation is part of the pair key, never mixed inside one.
            let adapt = variants[0].adapt;
            assert!(variants.iter().all(|c| c.adapt == adapt));
            assert_eq!(pair.contains("+adapt"), adapt);
        }
        assert!(cells.iter().any(|c| c.faulted));
        assert!(cells.iter().any(|c| c.partitions == 4));
        // Every static cell has an adaptive twin under the `+adapt` name.
        for cell in cells.iter().filter(|c| !c.adapt) {
            let twin = format!("{}+adapt", cell.pair);
            assert!(
                cells.iter().any(|c| c.adapt && c.pair == twin),
                "static pair `{}` has no adaptive twin",
                cell.pair
            );
        }
        // The fusion, columnar, and adaptive axes must be forced in both
        // directions, never left to the opt level's default.
        assert!(cells.iter().all(|c| c.opts.fusion_enabled() == c.fused));
        assert!(cells.iter().all(|c| c.opts.columnar_enabled() == c.col));
        assert!(cells.iter().all(|c| c.opts.adaptive_enabled() == c.adapt));
    }

    #[test]
    fn failure_report_carries_repro() {
        let r = failure_report(99, "none/p1", "full/greedy-tight/p4/faults");
        assert!(r.contains("seed 99"));
        assert!(r.contains("KEYSTONE_TESTKIT_SEED=99 cargo test --test differential"));
        assert!(r.contains("recipe: seed=99:"));
        assert!(r.contains("input"), "DAG summary missing:\n{r}");
    }

    #[test]
    fn seeds_env_parsing() {
        // Can't mutate the real env safely under parallel tests; exercise
        // only the default path here (the parse paths are covered by the
        // differential test's documented usage).
        let seeds = seeds_from_env(10, 3);
        if std::env::var("KEYSTONE_TESTKIT_SEED").is_err() {
            assert_eq!(seeds, vec![10, 11, 12]);
        }
    }

    #[test]
    fn single_seed_smoke() {
        let report = check_seed(3).unwrap_or_else(|e| panic!("{e}"));
        assert_eq!(report.cells, 224);
    }
}
