//! The fitted model every linear solver produces: a `d × k` linear map
//! (plus intercept) applied row-wise.

use keystone_core::context::ExecContext;
use keystone_core::operator::Transformer;
use keystone_linalg::dense::DenseMatrix;

use crate::features::Features;

/// A linear model `scores = x·W + b`.
#[derive(Clone)]
pub struct LinearMapModel {
    /// Weights, `d × k`.
    pub weights: DenseMatrix,
    /// Optional per-class intercept, length `k`.
    pub intercept: Option<Vec<f64>>,
}

impl LinearMapModel {
    /// Model without intercept.
    pub fn new(weights: DenseMatrix) -> Self {
        LinearMapModel {
            weights,
            intercept: None,
        }
    }

    /// Number of output classes/targets.
    pub fn k(&self) -> usize {
        self.weights.cols()
    }

    /// Scores for one feature vector.
    pub fn scores<F: Features>(&self, x: &F) -> Vec<f64> {
        let mut s = match &self.intercept {
            Some(b) => b.clone(),
            None => vec![0.0; self.k()],
        };
        x.add_scores(&self.weights, &mut s);
        s
    }
}

impl<F: Features> Transformer<F, Vec<f64>> for LinearMapModel {
    fn apply(&self, x: &F) -> Vec<f64> {
        self.scores(x)
    }

    fn name(&self) -> String {
        "LinearMap".to_string()
    }
}

/// Picks the argmax class from a score vector.
#[derive(Clone, Copy, Default)]
pub struct MaxClassifier;

impl Transformer<Vec<f64>, usize> for MaxClassifier {
    fn apply(&self, scores: &Vec<f64>) -> usize {
        scores
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite scores"))
            .map(|(i, _)| i)
            .unwrap_or(0)
    }

    fn name(&self) -> String {
        "MaxClassifier".to_string()
    }
}

/// Helper used by tests and examples: applies a model to a whole collection.
pub fn predict_all<F: Features>(
    model: &LinearMapModel,
    data: &keystone_dataflow::collection::DistCollection<F>,
    ctx: &ExecContext,
) -> keystone_dataflow::collection::DistCollection<Vec<f64>> {
    Transformer::apply_collection(model, data, ctx)
}

#[cfg(test)]
mod tests {
    use super::*;
    use keystone_linalg::sparse::SparseVector;

    #[test]
    fn scores_dense() {
        let w = DenseMatrix::from_rows(&[&[1.0, 0.0], &[0.0, 2.0]]);
        let m = LinearMapModel::new(w);
        assert_eq!(m.scores(&vec![3.0, 4.0]), vec![3.0, 8.0]);
        assert_eq!(m.k(), 2);
    }

    #[test]
    fn scores_with_intercept() {
        let w = DenseMatrix::from_rows(&[&[1.0]]);
        let m = LinearMapModel {
            weights: w,
            intercept: Some(vec![10.0]),
        };
        assert_eq!(m.scores(&vec![5.0]), vec![15.0]);
    }

    #[test]
    fn scores_sparse_matches_dense() {
        let w = DenseMatrix::from_fn(4, 3, |i, j| (i * 3 + j) as f64);
        let m = LinearMapModel::new(w);
        let s = SparseVector::from_pairs(4, vec![(0, 1.0), (2, -1.0)]);
        let d = s.to_dense_row();
        assert_eq!(m.scores(&s), m.scores(&d));
    }

    #[test]
    fn max_classifier_argmax() {
        let c = MaxClassifier;
        assert_eq!(c.apply(&vec![0.1, 0.9, 0.5]), 1);
        assert_eq!(c.apply(&vec![2.0]), 0);
        assert_eq!(c.apply(&vec![]), 0);
    }
}
