//! The distributed exact solver (Table 1 row 2): workers compute partial
//! Gram matrices `A_p^T A_p` and cross-products `A_p^T B_p`, the driver
//! tree-aggregates them and solves the (ridge-regularized) normal equations
//! with one Cholesky. Communication is `O(d(d+k))` regardless of `n` — the
//! communication-avoiding structure that lets the CIFAR pipeline keep
//! scaling where per-step-synchronized SGD stops (Table 6).

use keystone_core::context::ExecContext;
use keystone_core::operator::{LabelEstimator, Transformer};
use keystone_dataflow::collection::DistCollection;
use keystone_linalg::cholesky::solve_normal_equations;
use keystone_linalg::dense::DenseMatrix;

use crate::cost::{dist_qr_cost, SolveShape};
use crate::features::Features;
use crate::linear_map::LinearMapModel;

/// Distributed normal-equations solver.
#[derive(Debug, Clone)]
pub struct DistQrSolver {
    /// Ridge regularization; a small default keeps rank-deficient feature
    /// matrices solvable.
    pub lambda: f64,
}

impl Default for DistQrSolver {
    fn default() -> Self {
        DistQrSolver { lambda: 1e-8 }
    }
}

impl DistQrSolver {
    /// Solver with the default tiny ridge.
    pub fn new() -> Self {
        Self::default()
    }

    /// Solver with an explicit ridge.
    pub fn with_lambda(lambda: f64) -> Self {
        DistQrSolver { lambda }
    }
}

impl<F: Features> LabelEstimator<F, Vec<f64>, Vec<f64>> for DistQrSolver {
    fn fit(
        &self,
        data: &DistCollection<F>,
        labels: &DistCollection<Vec<f64>>,
        ctx: &ExecContext,
    ) -> Box<dyn Transformer<F, Vec<f64>>> {
        let n = data.count();
        assert_eq!(n, labels.count(), "data/label count mismatch");
        let d = data.iter().next().map_or(0, |x| x.dim());
        let k = labels.iter().next().map_or(0, |y| y.len());
        let shape = SolveShape::new(n, d, k, None);
        ctx.sim.charge(
            "solve:dist-qr",
            &dist_qr_cost(&shape, &ctx.resources),
            &ctx.resources,
        );

        let pairs = data.zip(labels, |x, y| (x.clone(), y.clone()));
        let (gram, rhs) = pairs
            .map_reduce_partitions(
                |part| {
                    let mut gram = DenseMatrix::zeros(d, d);
                    let mut rhs = DenseMatrix::zeros(d, k);
                    for (x, y) in part {
                        let row = x.to_dense_row();
                        // gram += x xᵀ (upper triangle), rhs += x ⊗ y.
                        for i in 0..d {
                            let xi = row[i];
                            if xi == 0.0 {
                                continue;
                            }
                            let grow = &mut gram.data_mut()[i * d..(i + 1) * d];
                            for (j, &xj) in row.iter().enumerate().skip(i) {
                                grow[j] += xi * xj;
                            }
                        }
                        x.add_outer(y, 1.0, &mut rhs);
                    }
                    (gram, rhs)
                },
                |(mut g1, mut r1), (g2, r2)| {
                    g1 += &g2;
                    r1 += &r2;
                    (g1, r1)
                },
            )
            .unwrap_or_else(|| (DenseMatrix::zeros(d, d), DenseMatrix::zeros(d, k)));

        // Mirror the upper triangle.
        let mut gram = gram;
        for i in 0..d {
            for j in 0..i {
                let v = gram.get(j, i);
                gram.set(i, j, v);
            }
        }
        let x = solve_normal_equations(&gram, &rhs, self.lambda);
        Box::new(LinearMapModel::new(x))
    }

    fn name(&self) -> String {
        "LinearSolver[dist-qr]".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::local_qr::LocalQrSolver;
    use keystone_linalg::rng::XorShiftRng;
    use keystone_linalg::sparse::SparseVector;

    fn noisy_problem(
        n: usize,
        d: usize,
        k: usize,
        seed: u64,
    ) -> (DistCollection<Vec<f64>>, DistCollection<Vec<f64>>) {
        let mut rng = XorShiftRng::new(seed);
        let xstar: Vec<Vec<f64>> = (0..d)
            .map(|_| (0..k).map(|_| rng.next_gaussian()).collect())
            .collect();
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|_| (0..d).map(|_| rng.next_gaussian()).collect())
            .collect();
        let labels: Vec<Vec<f64>> = rows
            .iter()
            .map(|r| {
                (0..k)
                    .map(|c| {
                        r.iter().zip(&xstar).map(|(x, w)| x * w[c]).sum::<f64>()
                            + rng.next_gaussian() * 0.01
                    })
                    .collect()
            })
            .collect();
        (
            DistCollection::from_vec(rows, 4),
            DistCollection::from_vec(labels, 4),
        )
    }

    #[test]
    fn matches_local_qr_solution() {
        let (data, labels) = noisy_problem(80, 6, 3, 1);
        let ctx = ExecContext::default_cluster();
        let dist = DistQrSolver::new().fit(&data, &labels, &ctx);
        let local = LocalQrSolver::new().fit(&data, &labels, &ctx);
        for x in data.collect().iter().take(10) {
            let pd = dist.apply(x);
            let pl = local.apply(x);
            for (a, b) in pd.iter().zip(&pl) {
                assert!((a - b).abs() < 1e-5, "{} vs {}", a, b);
            }
        }
    }

    #[test]
    fn works_on_sparse_features() {
        // y = 2·x_3 with sparse inputs.
        let mut rng = XorShiftRng::new(2);
        let rows: Vec<SparseVector> = (0..50)
            .map(|_| {
                let v = rng.next_gaussian();
                SparseVector::from_pairs(8, vec![(3, v), (6, rng.next_gaussian())])
            })
            .collect();
        let labels: Vec<Vec<f64>> = rows.iter().map(|r| vec![2.0 * r.get(3)]).collect();
        let data = DistCollection::from_vec(rows, 3);
        let labels = DistCollection::from_vec(labels, 3);
        let ctx = ExecContext::default_cluster();
        let model = DistQrSolver::new().fit(&data, &labels, &ctx);
        let test = SparseVector::from_pairs(8, vec![(3, 1.0)]);
        let pred = model.apply(&test);
        assert!((pred[0] - 2.0).abs() < 1e-4, "pred {}", pred[0]);
    }

    #[test]
    fn partition_count_does_not_change_result() {
        let (data, labels) = noisy_problem(64, 5, 2, 3);
        let ctx = ExecContext::default_cluster();
        let model_4 = DistQrSolver::new().fit(&data, &labels, &ctx);
        let data1 = data.repartition(1);
        let labels1 = labels.repartition(1);
        let model_1 = DistQrSolver::new().fit(&data1, &labels1, &ctx);
        let probe = vec![0.5; 5];
        let p4 = model_4.apply(&probe);
        let p1 = model_1.apply(&probe);
        for (a, b) in p4.iter().zip(&p1) {
            assert!((a - b).abs() < 1e-8);
        }
    }

    #[test]
    fn charges_dist_qr_on_sim_clock() {
        let (data, labels) = noisy_problem(32, 4, 2, 4);
        let ctx = ExecContext::default_cluster();
        let _ = DistQrSolver::new().fit(&data, &labels, &ctx);
        assert!(ctx
            .sim
            .entries()
            .iter()
            .any(|e| e.stage.contains("dist-qr")));
    }
}
