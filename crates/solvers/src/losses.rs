//! Loss functions and distributed gradient evaluation shared by the
//! iterative solvers.

use keystone_dataflow::collection::DistCollection;
use keystone_linalg::dense::DenseMatrix;

use crate::features::Features;

/// Which loss the iterative solvers minimize.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LossKind {
    /// `1/(2n)·||XW − Y||²` — least squares.
    Squared,
    /// Softmax cross-entropy against one-hot labels.
    Logistic,
}

/// Numerically stable softmax in place.
pub fn softmax_inplace(scores: &mut [f64]) {
    let max = scores.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let mut sum = 0.0;
    for s in scores.iter_mut() {
        *s = (*s - max).exp();
        sum += *s;
    }
    let inv = 1.0 / sum.max(1e-300);
    for s in scores.iter_mut() {
        *s *= inv;
    }
}

/// Loss and gradient accumulated over one `(x, y)` pair.
///
/// For squared loss the per-row residual is `x·W − y`; for logistic it is
/// `softmax(x·W) − y`. Both yield `grad += x ⊗ residual`.
fn row_loss_grad<F: Features>(
    x: &F,
    y: &[f64],
    w: &DenseMatrix,
    kind: LossKind,
    grad: &mut DenseMatrix,
) -> f64 {
    let k = w.cols();
    let mut scores = vec![0.0; k];
    x.add_scores(w, &mut scores);
    match kind {
        LossKind::Squared => {
            let mut loss = 0.0;
            for (s, &yv) in scores.iter_mut().zip(y) {
                *s -= yv;
                loss += *s * *s;
            }
            x.add_outer(&scores, 1.0, grad);
            0.5 * loss
        }
        LossKind::Logistic => {
            softmax_inplace(&mut scores);
            let mut loss = 0.0;
            for (s, &yv) in scores.iter_mut().zip(y) {
                if yv > 0.0 {
                    loss -= yv * s.max(1e-300).ln();
                }
                *s -= yv;
            }
            x.add_outer(&scores, 1.0, grad);
            loss
        }
    }
}

/// Distributed loss + gradient of the regularized objective
/// `1/n Σ ℓ(x_i, y_i; W) + λ/2·||W||²`.
///
/// One pass over the data: per-partition partial `(loss, grad)` pairs are
/// combined on the driver (the tree-aggregate pattern; the solvers charge
/// its `O(d·k)` network cost on the simulated clock).
pub fn distributed_loss_grad<F: Features>(
    data: &DistCollection<F>,
    labels: &DistCollection<Vec<f64>>,
    w: &DenseMatrix,
    kind: LossKind,
    lambda: f64,
) -> (f64, DenseMatrix) {
    let n = data.count().max(1) as f64;
    let (d, k) = w.shape();
    let pairs = data.zip(labels, |x, y| (x.clone(), y.clone()));
    let partial = pairs.map_reduce_partitions(
        |part| {
            let mut grad = DenseMatrix::zeros(d, k);
            let mut loss = 0.0;
            for (x, y) in part {
                loss += row_loss_grad(x, y, w, kind, &mut grad);
            }
            (loss, grad)
        },
        |(l1, mut g1), (l2, g2)| {
            g1 += &g2;
            (l1 + l2, g1)
        },
    );
    let (mut loss, mut grad) = partial.unwrap_or_else(|| (0.0, DenseMatrix::zeros(d, k)));
    loss /= n;
    grad.scale_inplace(1.0 / n);
    if lambda > 0.0 {
        let wn = w.frobenius_norm();
        loss += 0.5 * lambda * wn * wn;
        let reg = w * lambda;
        grad += &reg;
    }
    (loss, grad)
}

/// Distributed loss only (used by line searches).
pub fn distributed_loss<F: Features>(
    data: &DistCollection<F>,
    labels: &DistCollection<Vec<f64>>,
    w: &DenseMatrix,
    kind: LossKind,
    lambda: f64,
) -> f64 {
    let n = data.count().max(1) as f64;
    let k = w.cols();
    let pairs = data.zip(labels, |x, y| (x.clone(), y.clone()));
    let total = pairs
        .map_reduce_partitions(
            |part| {
                let mut loss = 0.0;
                for (x, y) in part {
                    let mut scores = vec![0.0; k];
                    x.add_scores(w, &mut scores);
                    loss += match kind {
                        LossKind::Squared => {
                            let mut l = 0.0;
                            for (s, &yv) in scores.iter().zip(y) {
                                let r = s - yv;
                                l += r * r;
                            }
                            0.5 * l
                        }
                        LossKind::Logistic => {
                            softmax_inplace(&mut scores);
                            let mut l = 0.0;
                            for (s, &yv) in scores.iter().zip(y) {
                                if yv > 0.0 {
                                    l -= yv * s.max(1e-300).ln();
                                }
                            }
                            l
                        }
                    };
                }
                loss
            },
            |a, b| a + b,
        )
        .unwrap_or(0.0);
    let mut loss = total / n;
    if lambda > 0.0 {
        let wn = w.frobenius_norm();
        loss += 0.5 * lambda * wn * wn;
    }
    loss
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> (DistCollection<Vec<f64>>, DistCollection<Vec<f64>>) {
        // y = x0 exactly; two targets for shape checks.
        let data =
            DistCollection::from_vec(vec![vec![1.0, 0.0], vec![0.0, 1.0], vec![2.0, 1.0]], 2);
        let labels =
            DistCollection::from_vec(vec![vec![1.0, 0.0], vec![0.0, 0.0], vec![2.0, 0.0]], 2);
        (data, labels)
    }

    #[test]
    fn softmax_sums_to_one() {
        let mut s = vec![1.0, 2.0, 3.0];
        softmax_inplace(&mut s);
        assert!((s.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(s[2] > s[1] && s[1] > s[0]);
    }

    #[test]
    fn softmax_stable_for_huge_inputs() {
        let mut s = vec![1e9, 1e9 + 1.0];
        softmax_inplace(&mut s);
        assert!(s.iter().all(|v| v.is_finite()));
        assert!((s.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn squared_loss_zero_at_solution() {
        let (data, labels) = toy();
        // W = [[1,0],[0,0]] reproduces labels exactly.
        let w = DenseMatrix::from_rows(&[&[1.0, 0.0], &[0.0, 0.0]]);
        let (loss, grad) = distributed_loss_grad(&data, &labels, &w, LossKind::Squared, 0.0);
        assert!(loss < 1e-15);
        assert!(grad.frobenius_norm() < 1e-12);
    }

    #[test]
    fn squared_gradient_matches_finite_difference() {
        let (data, labels) = toy();
        let w = DenseMatrix::from_rows(&[&[0.3, -0.2], &[0.1, 0.4]]);
        let (_, grad) = distributed_loss_grad(&data, &labels, &w, LossKind::Squared, 0.1);
        let eps = 1e-6;
        for i in 0..2 {
            for j in 0..2 {
                let mut wp = w.clone();
                wp.set(i, j, w.get(i, j) + eps);
                let mut wm = w.clone();
                wm.set(i, j, w.get(i, j) - eps);
                let lp = distributed_loss(&data, &labels, &wp, LossKind::Squared, 0.1);
                let lm = distributed_loss(&data, &labels, &wm, LossKind::Squared, 0.1);
                let fd = (lp - lm) / (2.0 * eps);
                assert!(
                    (fd - grad.get(i, j)).abs() < 1e-5,
                    "({}, {}): fd {} vs grad {}",
                    i,
                    j,
                    fd,
                    grad.get(i, j)
                );
            }
        }
    }

    #[test]
    fn logistic_gradient_matches_finite_difference() {
        let data = DistCollection::from_vec(vec![vec![1.0, -1.0], vec![-0.5, 2.0]], 1);
        let labels = DistCollection::from_vec(vec![vec![1.0, 0.0], vec![0.0, 1.0]], 1);
        let w = DenseMatrix::from_rows(&[&[0.2, -0.1], &[0.3, 0.05]]);
        let (_, grad) = distributed_loss_grad(&data, &labels, &w, LossKind::Logistic, 0.0);
        let eps = 1e-6;
        for i in 0..2 {
            for j in 0..2 {
                let mut wp = w.clone();
                wp.set(i, j, w.get(i, j) + eps);
                let mut wm = w.clone();
                wm.set(i, j, w.get(i, j) - eps);
                let lp = distributed_loss(&data, &labels, &wp, LossKind::Logistic, 0.0);
                let lm = distributed_loss(&data, &labels, &wm, LossKind::Logistic, 0.0);
                let fd = (lp - lm) / (2.0 * eps);
                assert!(
                    (fd - grad.get(i, j)).abs() < 1e-5,
                    "({}, {}): fd {} vs grad {}",
                    i,
                    j,
                    fd,
                    grad.get(i, j)
                );
            }
        }
    }

    #[test]
    fn ridge_term_included() {
        let (data, labels) = toy();
        let w = DenseMatrix::from_rows(&[&[1.0, 0.0], &[0.0, 0.0]]);
        let loss = distributed_loss(&data, &labels, &w, LossKind::Squared, 2.0);
        // Data term 0, ridge = 0.5*2*||W||² = 1.
        assert!((loss - 1.0).abs() < 1e-12);
    }
}
