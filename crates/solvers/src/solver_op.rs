//! `LinearSolverOp` — the **Optimizable** logical linear-solver operator.
//!
//! One logical operator, four physical implementations (Table 1), each with
//! its cost model. The operator-level optimizer evaluates the cost models
//! against the input statistics collected by execution subsampling and
//! picks the cheapest feasible plan — the mechanism behind Fig. 6's
//! crossovers and the §3 "Cost Model Evaluation".

use keystone_core::operator::{LabelEstimatorOption, OptimizableLabelEstimator};
use keystone_core::record::DataStats;
use keystone_dataflow::cluster::ResourceDesc;
use keystone_dataflow::cost::CostProfile;

use crate::block::BlockSolver;
use crate::cost::{block_solve_cost, dist_qr_cost, lbfgs_cost, local_qr_cost, SolveShape};
use crate::dist_qr::DistQrSolver;
use crate::features::Features;
use crate::lbfgs::LbfgsSolver;
use crate::local_qr::LocalQrSolver;

/// Extracts a [`SolveShape`] from the optimizer's input statistics
/// (`stats[0]` = data, `stats[1]` = one-hot labels).
pub fn shape_from_stats(stats: &[DataStats]) -> SolveShape {
    let data = stats.first().copied().unwrap_or_else(DataStats::empty);
    let labels = stats.get(1).copied();
    let k = labels.map_or(1.0, |l| l.dims.max(1.0));
    SolveShape {
        n: data.count as f64,
        d: data.dims.max(1.0),
        k,
        s: if data.is_sparse {
            data.nnz_per_record.max(1.0)
        } else {
            data.dims.max(1.0)
        },
    }
}

/// The optimizable logical least-squares solver.
#[derive(Debug, Clone)]
pub struct LinearSolverOp {
    /// Ridge regularization shared by all physical options.
    pub lambda: f64,
    /// Iteration budget for L-BFGS.
    pub lbfgs_iters: usize,
    /// Block size for the block solver.
    pub block_size: usize,
    /// Sweeps for the block solver.
    pub block_sweeps: usize,
}

impl Default for LinearSolverOp {
    fn default() -> Self {
        LinearSolverOp {
            lambda: 1e-6,
            lbfgs_iters: 20,
            block_size: 1024,
            block_sweeps: 3,
        }
    }
}

impl LinearSolverOp {
    /// Default configuration.
    pub fn new() -> Self {
        Self::default()
    }
}

impl<F: Features> OptimizableLabelEstimator<F, Vec<f64>, Vec<f64>> for LinearSolverOp {
    fn options(&self) -> Vec<LabelEstimatorOption<F, Vec<f64>, Vec<f64>>> {
        let lbfgs_iters = self.lbfgs_iters;
        let block_size = self.block_size;
        let block_sweeps = self.block_sweeps;
        vec![
            LabelEstimatorOption {
                name: "lbfgs".to_string(),
                cost: Box::new(
                    move |stats: &[DataStats], r: &ResourceDesc| -> CostProfile {
                        lbfgs_cost(&shape_from_stats(stats), lbfgs_iters, r)
                    },
                ),
                op: Box::new(LbfgsSolver {
                    max_iters: self.lbfgs_iters,
                    lambda: self.lambda,
                    ..Default::default()
                }),
            },
            LabelEstimatorOption {
                name: "local-qr".to_string(),
                cost: Box::new(|stats: &[DataStats], r: &ResourceDesc| -> CostProfile {
                    local_qr_cost(&shape_from_stats(stats), r)
                }),
                op: Box::new(LocalQrSolver::with_lambda(self.lambda)),
            },
            LabelEstimatorOption {
                name: "dist-qr".to_string(),
                cost: Box::new(|stats: &[DataStats], r: &ResourceDesc| -> CostProfile {
                    dist_qr_cost(&shape_from_stats(stats), r)
                }),
                op: Box::new(DistQrSolver::with_lambda(self.lambda.max(1e-10))),
            },
            LabelEstimatorOption {
                name: "block".to_string(),
                cost: Box::new(
                    move |stats: &[DataStats], r: &ResourceDesc| -> CostProfile {
                        block_solve_cost(&shape_from_stats(stats), block_sweeps, block_size, r)
                    },
                ),
                op: Box::new(BlockSolver {
                    block_size: self.block_size,
                    sweeps: self.block_sweeps,
                    lambda: self.lambda.max(1e-10),
                    ..Default::default()
                }),
            },
        ]
    }

    // The paper notes the default (unoptimized) configuration uses L-BFGS.
    fn default_index(&self) -> usize {
        0
    }

    fn name(&self) -> String {
        "LinearSolver".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use keystone_dataflow::cluster::ClusterProfile;

    fn stats(n: usize, d: usize, k: usize, sparse_nnz: Option<f64>) -> Vec<DataStats> {
        let data = DataStats {
            count: n,
            bytes_per_record: sparse_nnz.map_or(d as f64 * 8.0, |s| s * 12.0),
            dims: d as f64,
            nnz_per_record: sparse_nnz.unwrap_or(d as f64),
            is_sparse: sparse_nnz.is_some(),
        };
        let labels = DataStats {
            count: n,
            bytes_per_record: k as f64 * 8.0,
            dims: k as f64,
            nnz_per_record: 1.0,
            is_sparse: false,
        };
        vec![data, labels]
    }

    fn best_option(stats: &[DataStats], workers: usize) -> String {
        let r = ClusterProfile::R3_4xlarge.descriptor(workers);
        let op = LinearSolverOp::new();
        let options =
            <LinearSolverOp as OptimizableLabelEstimator<Vec<f64>, Vec<f64>, Vec<f64>>>::options(
                &op,
            );
        options
            .iter()
            .min_by(|a, b| {
                let ca = (a.cost)(stats, &r).estimated_seconds(&r);
                let cb = (b.cost)(stats, &r).estimated_seconds(&r);
                ca.partial_cmp(&cb).expect("finite costs")
            })
            .map(|o| o.name.clone())
            .expect("non-empty options")
    }

    #[test]
    fn shape_extraction_sparse_vs_dense() {
        let s = shape_from_stats(&stats(1000, 500, 2, Some(5.0)));
        assert_eq!(s.s, 5.0);
        let d = shape_from_stats(&stats(1000, 500, 2, None));
        assert_eq!(d.s, 500.0);
        assert_eq!(d.k, 2.0);
    }

    #[test]
    fn picks_lbfgs_for_sparse_text() {
        // Amazon-like: 1M × 100k sparse, 2 classes.
        let choice = best_option(&stats(1_000_000, 100_000, 2, Some(100.0)), 16);
        assert_eq!(choice, "lbfgs");
    }

    #[test]
    fn picks_exact_for_small_dense() {
        // Small dense problem: exact solve is cheapest.
        let choice = best_option(&stats(2_000_000, 1024, 2, None), 16);
        assert!(
            choice == "dist-qr" || choice == "local-qr",
            "expected exact, got {}",
            choice
        );
    }

    #[test]
    fn picks_block_for_very_wide_dense() {
        // TIMIT-like with huge feature count: block wins past ~8k (Fig. 6).
        let choice = best_option(&stats(2_000_000, 65_536, 147, None), 16);
        assert_eq!(choice, "block");
    }

    #[test]
    fn options_have_distinct_names() {
        let op = LinearSolverOp::new();
        let options =
            <LinearSolverOp as OptimizableLabelEstimator<Vec<f64>, Vec<f64>, Vec<f64>>>::options(
                &op,
            );
        let mut names: Vec<String> = options.iter().map(|o| o.name.clone()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), 4);
    }
}
