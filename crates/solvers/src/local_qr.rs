//! The "Local QR" exact solver: gather the design matrix to the driver and
//! solve `min ||AX − B||_F` with Householder QR (Table 1 row 1).

use keystone_core::context::ExecContext;
use keystone_core::operator::{LabelEstimator, Transformer};
use keystone_dataflow::collection::DistCollection;
use keystone_linalg::dense::DenseMatrix;
use keystone_linalg::qr::lstsq;

use crate::cost::{local_qr_cost, SolveShape};
use crate::features::Features;
use crate::linear_map::LinearMapModel;

/// Exact least-squares solver via local QR.
#[derive(Debug, Clone, Default)]
pub struct LocalQrSolver {
    /// Ridge regularization (0 = plain least squares; QR handles it by
    /// row-augmenting the design matrix).
    pub lambda: f64,
}

impl LocalQrSolver {
    /// Plain least squares.
    pub fn new() -> Self {
        Self::default()
    }

    /// Ridge-regularized least squares.
    pub fn with_lambda(lambda: f64) -> Self {
        LocalQrSolver { lambda }
    }
}

/// Gathers a features collection into a driver-local dense matrix.
pub fn collect_design_matrix<F: Features>(data: &DistCollection<F>) -> DenseMatrix {
    let rows: Vec<Vec<f64>> = data.iter().map(|x| x.to_dense_row()).collect();
    let d = rows.first().map_or(0, |r| r.len());
    let mut m = DenseMatrix::zeros(rows.len(), d);
    for (i, r) in rows.iter().enumerate() {
        m.row_mut(i).copy_from_slice(r);
    }
    m
}

/// Gathers one-hot labels into a driver-local dense matrix.
pub fn collect_labels(labels: &DistCollection<Vec<f64>>) -> DenseMatrix {
    collect_design_matrix(labels)
}

impl<F: Features> LabelEstimator<F, Vec<f64>, Vec<f64>> for LocalQrSolver {
    fn fit(
        &self,
        data: &DistCollection<F>,
        labels: &DistCollection<Vec<f64>>,
        ctx: &ExecContext,
    ) -> Box<dyn Transformer<F, Vec<f64>>> {
        let a = collect_design_matrix(data);
        let b = collect_labels(labels);
        assert_eq!(
            a.rows(),
            b.rows(),
            "data/label count mismatch: {} vs {}",
            a.rows(),
            b.rows()
        );
        let (n, d) = a.shape();
        let k = b.cols();
        let shape = SolveShape::new(n, d, k, None);
        ctx.sim.charge(
            "solve:local-qr",
            &local_qr_cost(&shape, &ctx.resources),
            &ctx.resources,
        );
        let x = if self.lambda > 0.0 {
            // Augment with sqrt(lambda)·I rows: solves the ridge problem
            // exactly through the same QR path.
            let sqrt_l = self.lambda.sqrt();
            let mut aug = DenseMatrix::zeros(n + d, d);
            for i in 0..n {
                aug.row_mut(i).copy_from_slice(a.row(i));
            }
            for j in 0..d {
                aug.set(n + j, j, sqrt_l);
            }
            let mut baug = DenseMatrix::zeros(n + d, k);
            for i in 0..n {
                baug.row_mut(i).copy_from_slice(b.row(i));
            }
            lstsq(&aug, &baug)
        } else {
            lstsq(&a, &b)
        };
        Box::new(LinearMapModel::new(x))
    }

    fn name(&self) -> String {
        "LinearSolver[local-qr]".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use keystone_linalg::gemm::matmul;
    use keystone_linalg::rng::XorShiftRng;

    fn planted(
        n: usize,
        d: usize,
        k: usize,
        seed: u64,
    ) -> (
        DistCollection<Vec<f64>>,
        DistCollection<Vec<f64>>,
        DenseMatrix,
    ) {
        let mut rng = XorShiftRng::new(seed);
        let xstar = DenseMatrix::from_fn(d, k, |_, _| rng.next_gaussian());
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|_| (0..d).map(|_| rng.next_gaussian()).collect())
            .collect();
        let labels: Vec<Vec<f64>> = rows
            .iter()
            .map(|r| {
                let m = DenseMatrix::from_rows(&[r]);
                matmul(&m, &xstar).row(0).to_vec()
            })
            .collect();
        (
            DistCollection::from_vec(rows, 4),
            DistCollection::from_vec(labels, 4),
            xstar,
        )
    }

    #[test]
    fn recovers_planted_model() {
        let (data, labels, xstar) = planted(60, 5, 3, 1);
        let ctx = ExecContext::default_cluster();
        let model = LocalQrSolver::new().fit(&data, &labels, &ctx);
        // Predictions must match labels exactly (noise-free system).
        for (x, y) in data.collect().iter().zip(labels.collect()) {
            let pred = model.apply(x);
            for (p, yv) in pred.iter().zip(&y) {
                assert!((p - yv).abs() < 1e-8);
            }
        }
        let _ = xstar;
    }

    #[test]
    fn charges_simulated_clock() {
        let (data, labels, _) = planted(30, 4, 2, 2);
        let ctx = ExecContext::default_cluster();
        let _ = LocalQrSolver::new().fit(&data, &labels, &ctx);
        assert!(ctx.sim.total_seconds() > 0.0);
        assert!(ctx
            .sim
            .entries()
            .iter()
            .any(|e| e.stage.contains("local-qr")));
    }

    #[test]
    fn ridge_shrinks_weights() {
        let (data, labels, _) = planted(40, 6, 2, 3);
        let ctx = ExecContext::default_cluster();
        let plain = LocalQrSolver::new().fit(&data, &labels, &ctx);
        let ridged = LocalQrSolver::with_lambda(100.0).fit(&data, &labels, &ctx);
        let norm = |m: &dyn Transformer<Vec<f64>, Vec<f64>>| {
            let p = m.apply(&vec![1.0; 6]);
            p.iter().map(|v| v * v).sum::<f64>()
        };
        assert!(norm(&*ridged) < norm(&*plain));
    }

    #[test]
    #[should_panic(expected = "count mismatch")]
    fn mismatched_counts_panic() {
        let data = DistCollection::from_vec(vec![vec![1.0]; 5], 1);
        let labels = DistCollection::from_vec(vec![vec![1.0]; 4], 1);
        let ctx = ExecContext::default_cluster();
        let _ = LocalQrSolver::new().fit(&data, &labels, &ctx);
    }
}
