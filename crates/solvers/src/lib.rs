//! # keystone-solvers
//!
//! Linear-solver physical operators (§3, Table 1) and the baseline systems
//! used in the paper's comparisons (§5.2):
//!
//! * [`local_qr`] — "Local QR": gather data to the driver, Householder QR.
//! * [`dist_qr`] — "Dist. QR": tree-aggregated Gram matrix + Cholesky on
//!   the normal equations.
//! * [`block`] — block-coordinate (Jacobi) solver over feature blocks.
//! * [`lbfgs`] — L-BFGS over dense or sparse features (the sparse path is
//!   `O(nnz)` per gradient, which is what wins Fig. 6's Amazon panel).
//! * [`sgd`] — synchronous minibatch SGD with per-step coordination costs
//!   (the TensorFlow-style baseline of Table 6).
//! * [`cg`] — conjugate gradient with a data-conversion pass (the
//!   SystemML-style baseline of Fig. 8).
//! * [`vw`] — online SGD with per-epoch model averaging (the Vowpal
//!   Wabbit-style baseline of Fig. 8).
//! * [`solver_op`] — `LinearSolverOp`, the **Optimizable** logical operator
//!   whose cost models implement Table 1 and drive operator-level selection.
//! * [`logistic`] — logistic-loss variants used by the text pipeline.

pub mod block;
pub mod cg;
pub mod cost;
pub mod dist_qr;
pub mod features;
pub mod lbfgs;
pub mod linear_map;
pub mod local_qr;
pub mod logistic;
pub mod losses;
pub mod sgd;
pub mod solver_op;
pub mod vw;

pub use features::Features;
pub use linear_map::LinearMapModel;
pub use solver_op::LinearSolverOp;
