//! The block solver (Table 1 row 4): partitions features into blocks and
//! applies exact block coordinate descent (block Gauss–Seidel — one of the
//! two second-order schemes the paper cites).
//!
//! Per sweep, each block is minimized exactly against the current residual
//! and the per-row scores are updated incrementally, so a sweep costs
//! `O(n·d·(b+k)/w)` compute and `O(d·(b+k))` communication — linear rather
//! than quadratic in `d`, which is why this overtakes the exact solver past
//! ~8k dense features in Fig. 6. Exact block minimization of a convex
//! quadratic descends monotonically, so the solver cannot diverge.

use keystone_core::context::ExecContext;
use keystone_core::operator::{LabelEstimator, Transformer};
use keystone_dataflow::collection::DistCollection;
use keystone_linalg::cholesky::solve_normal_equations;
use keystone_linalg::dense::DenseMatrix;

use crate::cost::{block_solve_cost, SolveShape};
use crate::features::Features;
use crate::linear_map::LinearMapModel;

/// Block Gauss–Seidel least-squares solver.
#[derive(Debug, Clone)]
pub struct BlockSolver {
    /// Feature-block size `b`.
    pub block_size: usize,
    /// Sweeps over all blocks (`i` in Table 1; also the Iterative weight).
    pub sweeps: usize,
    /// Step scale in `(0, 1]`; 1.0 = exact block minimization.
    pub damping: f64,
    /// Ridge regularization.
    pub lambda: f64,
}

impl Default for BlockSolver {
    fn default() -> Self {
        BlockSolver {
            block_size: 1024,
            sweeps: 3,
            damping: 1.0,
            lambda: 1e-8,
        }
    }
}

impl BlockSolver {
    /// Default configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Custom block size and sweep count.
    pub fn with_config(block_size: usize, sweeps: usize) -> Self {
        BlockSolver {
            block_size: block_size.max(1),
            sweeps,
            ..Default::default()
        }
    }

    /// Runs the solver with a data-pull closure (one call per sweep).
    pub fn minimize<F: Features>(
        &self,
        pull_data: &dyn Fn() -> DistCollection<F>,
        labels: &DistCollection<Vec<f64>>,
        ctx: &ExecContext,
    ) -> LinearMapModel {
        let data0 = pull_data();
        let n = data0.count();
        let d = data0.iter().next().map_or(0, |x| x.dim());
        let k = labels.iter().next().map_or(1, |y| y.len());
        let b = self.block_size.min(d.max(1));
        let shape = SolveShape::new(n, d, k, None);
        ctx.sim.charge(
            "solve:block",
            &block_solve_cost(&shape, self.sweeps, b, &ctx.resources),
            &ctx.resources,
        );

        let blocks: Vec<(usize, usize)> =
            (0..d).step_by(b).map(|lo| (lo, (lo + b).min(d))).collect();
        let mut w = DenseMatrix::zeros(d, k);
        // Per-row scores S = X·W, maintained incrementally as a distributed
        // collection aligned with the data.
        let mut scores = data0.map(move |_| vec![0.0f64; k]);
        drop(data0);

        for _sweep in 0..self.sweeps {
            let data = pull_data();
            for &(lo, hi) in &blocks {
                let bs = hi - lo;
                // Pass 1: accumulate G_j = X_jᵀX_j and R_j = X_jᵀ(Y − S).
                let with_labels = data.zip(labels, |x, y| (x.clone(), y.clone()));
                let triples =
                    with_labels.zip(&scores, |(x, y), s| (x.clone(), y.clone(), s.clone()));
                let partial = triples.map_reduce_partitions(
                    |part| {
                        let mut gram = DenseMatrix::zeros(bs, bs);
                        let mut rhs = DenseMatrix::zeros(bs, k);
                        for (x, y, s) in part {
                            let row = x.to_dense_row();
                            let sub = &row[lo..hi];
                            for i in 0..bs {
                                let xi = sub[i];
                                if xi == 0.0 {
                                    continue;
                                }
                                let grow = &mut gram.data_mut()[i * bs..(i + 1) * bs];
                                for (j, &xj) in sub.iter().enumerate() {
                                    grow[j] += xi * xj;
                                }
                                let rrow = rhs.row_mut(i);
                                for ((rv, &yv), &sv) in rrow.iter_mut().zip(y.iter()).zip(s.iter())
                                {
                                    *rv += xi * (yv - sv);
                                }
                            }
                        }
                        (gram, rhs)
                    },
                    |(mut g1, mut r1), (g2, r2)| {
                        g1 += &g2;
                        r1 += &r2;
                        (g1, r1)
                    },
                );
                let Some((gram, rhs)) = partial else { break };
                let mut delta = solve_normal_equations(&gram, &rhs, self.lambda);
                if self.damping != 1.0 {
                    delta.scale_inplace(self.damping);
                }
                // Apply the update to W.
                for i in 0..bs {
                    let wrow = w.row_mut(lo + i);
                    for (wv, &dv) in wrow.iter_mut().zip(delta.row(i)) {
                        *wv += dv;
                    }
                }
                // Pass 2: S += X_j · ΔW_j.
                let delta = std::sync::Arc::new(delta);
                let d2 = delta.clone();
                scores = data.zip(&scores, move |x, s| {
                    let row = x.to_dense_row();
                    let sub = &row[lo..hi];
                    let mut out = s.clone();
                    for (i, &xi) in sub.iter().enumerate() {
                        if xi == 0.0 {
                            continue;
                        }
                        for (o, &dv) in out.iter_mut().zip(d2.row(i)) {
                            *o += xi * dv;
                        }
                    }
                    out
                });
            }
        }
        LinearMapModel::new(w)
    }
}

impl<F: Features> LabelEstimator<F, Vec<f64>, Vec<f64>> for BlockSolver {
    fn fit(
        &self,
        data: &DistCollection<F>,
        labels: &DistCollection<Vec<f64>>,
        ctx: &ExecContext,
    ) -> Box<dyn Transformer<F, Vec<f64>>> {
        let data = data.clone();
        Box::new(self.minimize(&move || data.clone(), labels, ctx))
    }

    fn fit_lazy(
        &self,
        data: &dyn Fn() -> DistCollection<F>,
        labels: &DistCollection<Vec<f64>>,
        ctx: &ExecContext,
    ) -> Box<dyn Transformer<F, Vec<f64>>> {
        Box::new(self.minimize(data, labels, ctx))
    }

    fn weight(&self) -> u32 {
        self.sweeps as u32
    }

    fn name(&self) -> String {
        "LinearSolver[block]".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::local_qr::LocalQrSolver;
    use keystone_linalg::rng::XorShiftRng;

    fn problem(
        n: usize,
        d: usize,
        k: usize,
        seed: u64,
    ) -> (DistCollection<Vec<f64>>, DistCollection<Vec<f64>>) {
        let mut rng = XorShiftRng::new(seed);
        let wstar: Vec<Vec<f64>> = (0..d)
            .map(|_| (0..k).map(|_| rng.next_gaussian()).collect())
            .collect();
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|_| (0..d).map(|_| rng.next_gaussian()).collect())
            .collect();
        let labels: Vec<Vec<f64>> = rows
            .iter()
            .map(|r| {
                (0..k)
                    .map(|c| r.iter().zip(&wstar).map(|(x, w)| x * w[c]).sum())
                    .collect()
            })
            .collect();
        (
            DistCollection::from_vec(rows, 4),
            DistCollection::from_vec(labels, 4),
        )
    }

    fn train_mse(
        m: &LinearMapModel,
        data: &DistCollection<Vec<f64>>,
        labels: &DistCollection<Vec<f64>>,
    ) -> f64 {
        let n = data.count().max(1) as f64;
        data.collect()
            .iter()
            .zip(labels.collect())
            .map(|(x, y)| {
                let p = m.scores(x);
                p.iter()
                    .zip(&y)
                    .map(|(a, b)| (a - b) * (a - b))
                    .sum::<f64>()
            })
            .sum::<f64>()
            / n
    }

    #[test]
    fn single_block_one_sweep_is_exact() {
        let (data, labels) = problem(60, 6, 2, 1);
        let ctx = ExecContext::default_cluster();
        let solver = BlockSolver {
            block_size: 6,
            sweeps: 1,
            damping: 1.0,
            lambda: 1e-10,
        };
        let block = solver.minimize(&|| data.clone(), &labels, &ctx);
        let exact = LocalQrSolver::new().fit(&data, &labels, &ctx);
        for x in data.collect().iter().take(5) {
            let pb = block.scores(x);
            let pe = exact.apply(x);
            for (a, b) in pb.iter().zip(&pe) {
                assert!((a - b).abs() < 1e-6, "{} vs {}", a, b);
            }
        }
    }

    #[test]
    fn multi_block_converges_to_exact_solution() {
        let (data, labels) = problem(120, 8, 2, 2);
        let ctx = ExecContext::default_cluster();
        let solver = BlockSolver {
            block_size: 3,
            sweeps: 25,
            damping: 1.0,
            lambda: 1e-10,
        };
        let block = solver.minimize(&|| data.clone(), &labels, &ctx);
        let exact = LocalQrSolver::new().fit(&data, &labels, &ctx);
        for x in data.collect().iter().take(5) {
            let pb = block.scores(x);
            let pe = exact.apply(x);
            for (a, b) in pb.iter().zip(&pe) {
                assert!((a - b).abs() < 1e-3, "{} vs {}", a, b);
            }
        }
    }

    #[test]
    fn gauss_seidel_descends_monotonically() {
        let (data, labels) = problem(100, 16, 2, 3);
        let ctx = ExecContext::default_cluster();
        let mse_for = |sweeps: usize| {
            let solver = BlockSolver {
                block_size: 4,
                sweeps,
                damping: 1.0,
                lambda: 1e-10,
            };
            let m = solver.minimize(&|| data.clone(), &labels, &ctx);
            train_mse(&m, &data, &labels)
        };
        let m1 = mse_for(1);
        let m3 = mse_for(3);
        let m10 = mse_for(10);
        assert!(m3 <= m1 + 1e-9, "{} -> {}", m1, m3);
        assert!(m10 <= m3 + 1e-9, "{} -> {}", m3, m10);
        assert!(m10 < m1 * 0.5, "insufficient progress: {} -> {}", m1, m10);
    }

    #[test]
    fn never_diverges_on_strongly_coupled_dense_data() {
        // Dense Gaussian design with many blocks: damped Jacobi would
        // diverge here; Gauss–Seidel must not.
        let (data, labels) = problem(200, 64, 2, 4);
        let ctx = ExecContext::default_cluster();
        let solver = BlockSolver {
            block_size: 8,
            sweeps: 5,
            damping: 1.0,
            lambda: 1e-8,
        };
        let m = solver.minimize(&|| data.clone(), &labels, &ctx);
        let mse = train_mse(&m, &data, &labels);
        // Labels are exact linear functions: residual must be small.
        assert!(mse < 0.5, "mse {}", mse);
        assert!(m.weights.data().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn pulls_once_per_sweep() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let (data, labels) = problem(30, 4, 1, 5);
        let ctx = ExecContext::default_cluster();
        let pulls = AtomicUsize::new(0);
        let solver = BlockSolver {
            block_size: 2,
            sweeps: 7,
            ..Default::default()
        };
        let _ = solver.minimize(
            &|| {
                pulls.fetch_add(1, Ordering::SeqCst);
                data.clone()
            },
            &labels,
            &ctx,
        );
        assert_eq!(pulls.load(Ordering::SeqCst), 8, "1 probe + 7 sweeps");
    }

    #[test]
    fn works_on_sparse_features() {
        use keystone_linalg::sparse::SparseVector;
        let mut rng = XorShiftRng::new(6);
        let rows: Vec<SparseVector> = (0..150)
            .map(|_| {
                SparseVector::from_pairs(
                    12,
                    (0..3)
                        .map(|_| (rng.next_usize(12) as u32, rng.next_gaussian()))
                        .collect(),
                )
            })
            .collect();
        let labels: Vec<Vec<f64>> = rows.iter().map(|r| vec![2.0 * r.get(5)]).collect();
        let data = DistCollection::from_vec(rows, 3);
        let labels = DistCollection::from_vec(labels, 3);
        let ctx = ExecContext::default_cluster();
        let m = BlockSolver {
            block_size: 4,
            sweeps: 15,
            damping: 1.0,
            lambda: 1e-10,
        }
        .minimize(&|| data.clone(), &labels, &ctx);
        assert!(
            (m.weights.get(5, 0) - 2.0).abs() < 1e-2,
            "w5 {}",
            m.weights.get(5, 0)
        );
    }
}
