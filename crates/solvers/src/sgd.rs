//! Synchronous minibatch SGD — the TensorFlow-style baseline of Table 6.
//!
//! Every step draws a minibatch, computes a gradient, and performs a model
//! synchronization whose cost is charged on the simulated clock. The
//! coordination cost per step is what caps this strategy's scalability:
//! past a handful of nodes the synchronization outweighs the parallelism
//! gain, exactly the effect Table 6 reports for TensorFlow on CIFAR-10.

use keystone_core::context::ExecContext;
use keystone_core::operator::{LabelEstimator, Transformer};
use keystone_dataflow::collection::DistCollection;
use keystone_linalg::dense::DenseMatrix;
use keystone_linalg::rng::XorShiftRng;

use crate::cost::{sync_sgd_cost, SolveShape};
use crate::features::Features;
use crate::linear_map::LinearMapModel;
use crate::losses::{softmax_inplace, LossKind};

/// Scaling regime for the minibatch (Table 6 ran both).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SgdScaling {
    /// Fixed global minibatch regardless of workers.
    Strong,
    /// Minibatch grows with the worker count (`base × workers`).
    Weak,
}

/// Synchronous minibatch SGD solver.
#[derive(Debug, Clone)]
pub struct SyncSgdSolver {
    /// Total optimization steps.
    pub steps: usize,
    /// Base minibatch size (128 in the paper's TensorFlow runs).
    pub minibatch: usize,
    /// Learning rate.
    pub lr: f64,
    /// Loss to minimize.
    pub loss: LossKind,
    /// Scaling regime.
    pub scaling: SgdScaling,
    /// RNG seed for minibatch sampling.
    pub seed: u64,
}

impl Default for SyncSgdSolver {
    fn default() -> Self {
        SyncSgdSolver {
            steps: 1000,
            minibatch: 128,
            lr: 0.05,
            loss: LossKind::Logistic,
            scaling: SgdScaling::Strong,
            seed: 42,
        }
    }
}

/// Resumable SGD state, used by benches that interleave optimization with
/// accuracy evaluation (time-to-accuracy curves).
pub struct SgdState {
    /// Current weights.
    pub w: DenseMatrix,
    /// Steps taken so far.
    pub steps_taken: usize,
    rng: XorShiftRng,
}

impl SyncSgdSolver {
    /// Fresh resumable state for a `d × k` model.
    pub fn init_state(&self, d: usize, k: usize) -> SgdState {
        SgdState {
            w: DenseMatrix::zeros(d, k),
            steps_taken: 0,
            rng: XorShiftRng::new(self.seed),
        }
    }

    /// Effective global minibatch under the scaling regime.
    pub fn effective_minibatch(&self, workers: usize) -> usize {
        match self.scaling {
            SgdScaling::Strong => self.minibatch,
            SgdScaling::Weak => self.minibatch * workers.max(1),
        }
    }

    /// Runs `steps` more SGD steps on driver-collected data, charging the
    /// per-step synchronization on the simulated clock.
    pub fn run_steps<F: Features>(
        &self,
        state: &mut SgdState,
        rows: &[(F, Vec<f64>)],
        steps: usize,
        ctx: &ExecContext,
    ) {
        let n = rows.len();
        if n == 0 {
            return;
        }
        let (d, k) = state.w.shape();
        let m = self.effective_minibatch(ctx.resources.workers);
        let avg_nnz = rows
            .iter()
            .take(32)
            .map(|(x, _)| Features::nnz(x) as f64)
            .sum::<f64>()
            / rows.len().min(32) as f64;
        let shape = SolveShape::new(n, d, k, Some(avg_nnz));
        ctx.sim.charge(
            "solve:sync-sgd",
            &sync_sgd_cost(&shape, steps, m, &ctx.resources),
            &ctx.resources,
        );

        for _ in 0..steps {
            let mut grad = DenseMatrix::zeros(d, k);
            for _ in 0..m {
                let (x, y) = &rows[state.rng.next_usize(n)];
                let mut scores = vec![0.0; k];
                x.add_scores(&state.w, &mut scores);
                match self.loss {
                    LossKind::Squared => {
                        for (s, yv) in scores.iter_mut().zip(y) {
                            *s -= yv;
                        }
                    }
                    LossKind::Logistic => {
                        softmax_inplace(&mut scores);
                        for (s, yv) in scores.iter_mut().zip(y) {
                            *s -= yv;
                        }
                    }
                }
                x.add_outer(&scores, 1.0 / m as f64, &mut grad);
            }
            // Decaying step size keeps late steps stable.
            let lr = self.lr / (1.0 + state.steps_taken as f64 / self.steps.max(1) as f64);
            for (wv, gv) in state.w.data_mut().iter_mut().zip(grad.data()) {
                *wv -= lr * gv;
            }
            state.steps_taken += 1;
        }
    }
}

impl<F: Features> LabelEstimator<F, Vec<f64>, Vec<f64>> for SyncSgdSolver {
    fn fit(
        &self,
        data: &DistCollection<F>,
        labels: &DistCollection<Vec<f64>>,
        ctx: &ExecContext,
    ) -> Box<dyn Transformer<F, Vec<f64>>> {
        let rows: Vec<(F, Vec<f64>)> = data.zip(labels, |x, y| (x.clone(), y.clone())).collect();
        let d = rows.first().map_or(0, |(x, _)| x.dim());
        let k = rows.first().map_or(1, |(_, y)| y.len());
        let mut state = self.init_state(d, k);
        self.run_steps(&mut state, &rows, self.steps, ctx);
        Box::new(LinearMapModel::new(state.w))
    }

    fn weight(&self) -> u32 {
        // SGD touches a minibatch per step; approximate full-data passes.
        1
    }

    fn name(&self) -> String {
        "LinearSolver[sync-sgd]".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blob_problem(n: usize, seed: u64) -> Vec<(Vec<f64>, Vec<f64>)> {
        let mut rng = XorShiftRng::new(seed);
        (0..n)
            .map(|_| {
                let class = rng.next_usize(2);
                let c = if class == 0 { -1.5 } else { 1.5 };
                let x = vec![c + rng.next_gaussian() * 0.4, 1.0];
                let y = if class == 0 {
                    vec![1.0, 0.0]
                } else {
                    vec![0.0, 1.0]
                };
                (x, y)
            })
            .collect()
    }

    #[test]
    fn learns_separable_blobs() {
        let rows = blob_problem(400, 1);
        let ctx = ExecContext::default_cluster();
        let solver = SyncSgdSolver {
            steps: 300,
            lr: 0.5,
            ..Default::default()
        };
        let mut state = solver.init_state(2, 2);
        solver.run_steps(&mut state, &rows, 300, &ctx);
        let model = LinearMapModel::new(state.w);
        let correct = rows
            .iter()
            .filter(|(x, y)| {
                let s = model.scores(x);
                (s[1] > s[0]) == (y[1] > 0.5)
            })
            .count();
        assert!(correct as f64 / rows.len() as f64 > 0.95);
    }

    #[test]
    fn weak_scaling_grows_minibatch() {
        let solver = SyncSgdSolver {
            scaling: SgdScaling::Weak,
            minibatch: 128,
            ..Default::default()
        };
        assert_eq!(solver.effective_minibatch(4), 512);
        let strong = SyncSgdSolver::default();
        assert_eq!(strong.effective_minibatch(4), 128);
    }

    #[test]
    fn sim_coordination_grows_with_workers() {
        let rows = blob_problem(200, 2);
        let solver = SyncSgdSolver {
            steps: 50,
            ..Default::default()
        };
        let coord = |workers: usize| {
            let ctx = ExecContext::new(
                keystone_dataflow::cluster::ClusterProfile::R3_4xlarge.descriptor(workers),
            );
            let mut st = solver.init_state(2, 2);
            solver.run_steps(&mut st, &rows, 50, &ctx);
            ctx.sim.coord_seconds()
        };
        assert!(coord(32) > coord(2), "sync cost must grow with workers");
    }

    #[test]
    fn state_resumes_across_chunks() {
        let rows = blob_problem(100, 3);
        let ctx = ExecContext::default_cluster();
        let solver = SyncSgdSolver {
            steps: 100,
            seed: 9,
            ..Default::default()
        };
        let mut a = solver.init_state(2, 2);
        solver.run_steps(&mut a, &rows, 100, &ctx);
        let mut b = solver.init_state(2, 2);
        solver.run_steps(&mut b, &rows, 60, &ctx);
        solver.run_steps(&mut b, &rows, 40, &ctx);
        assert_eq!(a.steps_taken, b.steps_taken);
        assert!(a.w.max_abs_diff(&b.w) < 1e-12, "chunked run must match");
    }
}
