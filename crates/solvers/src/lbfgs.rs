//! L-BFGS (Table 1 row 3): limited-memory quasi-Newton over the regularized
//! least-squares or logistic objective.
//!
//! The solver is `Iterative` with weight = `max_iters`: it re-pulls its
//! training data through the lazy handle once per iteration, reproducing
//! Spark's recompute-unless-cached behaviour that drives the caching
//! experiments (Fig. 9/10). Gradients are sparse-aware (`O(nnz)` per row),
//! which is why this operator dominates Fig. 6's Amazon panel.

use keystone_core::context::ExecContext;
use keystone_core::operator::{LabelEstimator, Transformer};
use keystone_dataflow::collection::DistCollection;
use keystone_linalg::dense::DenseMatrix;

use crate::cost::{lbfgs_cost, SolveShape};
use crate::features::Features;
use crate::linear_map::LinearMapModel;
use crate::losses::{distributed_loss, distributed_loss_grad, LossKind};

/// L-BFGS configuration.
#[derive(Debug, Clone)]
pub struct LbfgsSolver {
    /// Maximum iterations (also the operator's `Iterative` weight).
    pub max_iters: usize,
    /// History pairs kept for the two-loop recursion.
    pub memory: usize,
    /// Ridge regularization.
    pub lambda: f64,
    /// Loss to minimize.
    pub loss: LossKind,
    /// Stop when the gradient norm falls below this.
    pub tol: f64,
}

impl Default for LbfgsSolver {
    fn default() -> Self {
        LbfgsSolver {
            max_iters: 20,
            memory: 10,
            lambda: 1e-6,
            loss: LossKind::Squared,
            tol: 1e-9,
        }
    }
}

impl LbfgsSolver {
    /// Default squared-loss solver.
    pub fn new() -> Self {
        Self::default()
    }

    /// Squared-loss solver with a given iteration budget.
    pub fn with_iters(max_iters: usize) -> Self {
        LbfgsSolver {
            max_iters,
            ..Default::default()
        }
    }

    /// Logistic-loss variant.
    pub fn logistic(max_iters: usize) -> Self {
        LbfgsSolver {
            max_iters,
            loss: LossKind::Logistic,
            ..Default::default()
        }
    }

    /// Runs the optimizer given a data-pull closure (one call per pass).
    pub fn minimize<F: Features>(
        &self,
        pull_data: &dyn Fn() -> DistCollection<F>,
        labels: &DistCollection<Vec<f64>>,
        ctx: &ExecContext,
    ) -> LinearMapModel {
        // First pull establishes the shape.
        let data0 = pull_data();
        let n = data0.count();
        let d = data0.iter().next().map_or(0, |x| x.dim());
        let k = labels.iter().next().map_or(1, |y| y.len());
        let avg_nnz = {
            let probe: f64 = data0.iter().take(64).map(|x| Features::nnz(x) as f64).sum();
            let seen = data0.iter().take(64).count().max(1);
            probe / seen as f64
        };
        let shape = SolveShape::new(n, d, k, Some(avg_nnz));
        ctx.sim.charge(
            "solve:lbfgs",
            &lbfgs_cost(&shape, self.max_iters, &ctx.resources),
            &ctx.resources,
        );
        drop(data0);

        let mut w = DenseMatrix::zeros(d, k);
        // History of (s, y, rho) for the two-loop recursion, flattened.
        let mut hist_s: Vec<Vec<f64>> = Vec::new();
        let mut hist_y: Vec<Vec<f64>> = Vec::new();
        let mut rho: Vec<f64> = Vec::new();

        let data = pull_data();
        let (mut loss, mut grad) = distributed_loss_grad(&data, labels, &w, self.loss, self.lambda);
        drop(data);

        for _iter in 0..self.max_iters {
            let gnorm = grad.frobenius_norm();
            if gnorm < self.tol {
                break;
            }
            // Two-loop recursion on the flattened gradient.
            let mut q: Vec<f64> = grad.data().to_vec();
            let m = hist_s.len();
            let mut alpha = vec![0.0; m];
            for i in (0..m).rev() {
                alpha[i] = rho[i] * dot(&hist_s[i], &q);
                axpy(-alpha[i], &hist_y[i], &mut q);
            }
            // Initial Hessian scaling.
            if m > 0 {
                let last = m - 1;
                let ys = 1.0 / rho[last];
                let yy = dot(&hist_y[last], &hist_y[last]);
                if yy > 0.0 {
                    let scale = ys / yy;
                    for v in &mut q {
                        *v *= scale;
                    }
                }
            }
            for i in 0..m {
                let beta = rho[i] * dot(&hist_y[i], &q);
                axpy(alpha[i] - beta, &hist_s[i], &mut q);
            }
            // q is now the ascent direction estimate; step downhill.
            let dir: Vec<f64> = q.iter().map(|v| -v).collect();

            // Backtracking line search (Armijo). One data pull per
            // iteration: the pulled collection serves both the line-search
            // loss evaluations and the next gradient.
            let data = pull_data();
            let g_dot_dir = dot(grad.data(), &dir);
            let mut step = 1.0;
            let mut accepted = false;
            for _bt in 0..6 {
                let mut w_try = w.clone();
                for (wv, dv) in w_try.data_mut().iter_mut().zip(&dir) {
                    *wv += step * dv;
                }
                let l_try = distributed_loss(&data, labels, &w_try, self.loss, self.lambda);
                if l_try <= loss + 1e-4 * step * g_dot_dir {
                    // Accept: update history.
                    let (l_new, g_new) =
                        distributed_loss_grad(&data, labels, &w_try, self.loss, self.lambda);
                    let s_vec: Vec<f64> = w_try
                        .data()
                        .iter()
                        .zip(w.data())
                        .map(|(a, b)| a - b)
                        .collect();
                    let y_vec: Vec<f64> = g_new
                        .data()
                        .iter()
                        .zip(grad.data())
                        .map(|(a, b)| a - b)
                        .collect();
                    let sy = dot(&s_vec, &y_vec);
                    if sy > 1e-12 {
                        hist_s.push(s_vec);
                        hist_y.push(y_vec);
                        rho.push(1.0 / sy);
                        if hist_s.len() > self.memory {
                            hist_s.remove(0);
                            hist_y.remove(0);
                            rho.remove(0);
                        }
                    }
                    w = w_try;
                    loss = l_new;
                    grad = g_new;
                    accepted = true;
                    break;
                }
                step *= 0.5;
            }
            if !accepted {
                break; // Line search failed: converged or direction bad.
            }
        }
        LinearMapModel::new(w)
    }
}

fn dot(a: &[f64], b: &[f64]) -> f64 {
    keystone_linalg::dense::dot(a, b)
}

fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    keystone_linalg::dense::axpy(alpha, x, y)
}

impl<F: Features> LabelEstimator<F, Vec<f64>, Vec<f64>> for LbfgsSolver {
    fn fit(
        &self,
        data: &DistCollection<F>,
        labels: &DistCollection<Vec<f64>>,
        ctx: &ExecContext,
    ) -> Box<dyn Transformer<F, Vec<f64>>> {
        let data = data.clone();
        Box::new(self.minimize(&move || data.clone(), labels, ctx))
    }

    fn fit_lazy(
        &self,
        data: &dyn Fn() -> DistCollection<F>,
        labels: &DistCollection<Vec<f64>>,
        ctx: &ExecContext,
    ) -> Box<dyn Transformer<F, Vec<f64>>> {
        Box::new(self.minimize(data, labels, ctx))
    }

    fn weight(&self) -> u32 {
        self.max_iters as u32
    }

    fn name(&self) -> String {
        "LinearSolver[lbfgs]".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use keystone_linalg::rng::XorShiftRng;
    use keystone_linalg::sparse::SparseVector;

    fn dense_problem(
        n: usize,
        d: usize,
        seed: u64,
    ) -> (DistCollection<Vec<f64>>, DistCollection<Vec<f64>>, Vec<f64>) {
        let mut rng = XorShiftRng::new(seed);
        let wstar: Vec<f64> = (0..d).map(|_| rng.next_gaussian()).collect();
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|_| (0..d).map(|_| rng.next_gaussian()).collect())
            .collect();
        let labels: Vec<Vec<f64>> = rows
            .iter()
            .map(|r| vec![r.iter().zip(&wstar).map(|(x, w)| x * w).sum::<f64>()])
            .collect();
        (
            DistCollection::from_vec(rows, 4),
            DistCollection::from_vec(labels, 4),
            wstar,
        )
    }

    #[test]
    fn converges_on_dense_least_squares() {
        let (data, labels, wstar) = dense_problem(200, 8, 1);
        let ctx = ExecContext::default_cluster();
        let solver = LbfgsSolver {
            max_iters: 60,
            lambda: 0.0,
            ..Default::default()
        };
        let model = solver.minimize(&|| data.clone(), &labels, &ctx);
        for (j, &w) in wstar.iter().enumerate() {
            assert!(
                (model.weights.get(j, 0) - w).abs() < 1e-4,
                "weight {}: {} vs {}",
                j,
                model.weights.get(j, 0),
                w
            );
        }
    }

    #[test]
    fn converges_on_sparse_features() {
        let mut rng = XorShiftRng::new(2);
        let rows: Vec<SparseVector> = (0..300)
            .map(|_| {
                SparseVector::from_pairs(
                    50,
                    (0..3)
                        .map(|_| (rng.next_usize(50) as u32, rng.next_gaussian()))
                        .collect(),
                )
            })
            .collect();
        // Planted: y = 3·x_7 − 2·x_20.
        let labels: Vec<Vec<f64>> = rows
            .iter()
            .map(|r| vec![3.0 * r.get(7) - 2.0 * r.get(20)])
            .collect();
        let data = DistCollection::from_vec(rows, 4);
        let labels = DistCollection::from_vec(labels, 4);
        let ctx = ExecContext::default_cluster();
        let solver = LbfgsSolver {
            max_iters: 80,
            lambda: 0.0,
            ..Default::default()
        };
        let model = solver.minimize(&|| data.clone(), &labels, &ctx);
        assert!((model.weights.get(7, 0) - 3.0).abs() < 1e-2);
        assert!((model.weights.get(20, 0) + 2.0).abs() < 1e-2);
    }

    #[test]
    fn logistic_separates_classes() {
        let mut rng = XorShiftRng::new(3);
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for _ in 0..200 {
            let class = rng.next_usize(2);
            let center = if class == 0 { -2.0 } else { 2.0 };
            rows.push(vec![center + rng.next_gaussian() * 0.5, 1.0]);
            labels.push(if class == 0 {
                vec![1.0, 0.0]
            } else {
                vec![0.0, 1.0]
            });
        }
        let data = DistCollection::from_vec(rows.clone(), 4);
        let labels_c = DistCollection::from_vec(labels.clone(), 4);
        let ctx = ExecContext::default_cluster();
        let model = LbfgsSolver::logistic(40).minimize(&|| data.clone(), &labels_c, &ctx);
        let mut correct = 0;
        for (x, y) in rows.iter().zip(&labels) {
            let scores = model.scores(x);
            let pred = if scores[1] > scores[0] { 1 } else { 0 };
            let truth = if y[1] > 0.5 { 1 } else { 0 };
            if pred == truth {
                correct += 1;
            }
        }
        let acc = correct as f64 / rows.len() as f64;
        assert!(acc > 0.95, "accuracy {}", acc);
    }

    #[test]
    fn pulls_data_once_per_iteration() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let (data, labels, _) = dense_problem(50, 4, 5);
        let ctx = ExecContext::default_cluster();
        let pulls = AtomicUsize::new(0);
        let solver = LbfgsSolver {
            max_iters: 5,
            ..Default::default()
        };
        let _ = solver.minimize(
            &|| {
                pulls.fetch_add(1, Ordering::SeqCst);
                data.clone()
            },
            &labels,
            &ctx,
        );
        let got = pulls.load(Ordering::SeqCst);
        // 1 shape probe + 1 initial gradient + ≤1 per iteration.
        assert!(got <= 2 + 5, "pulled {} times", got);
        assert!(got >= 3, "pulled {} times", got);
    }

    #[test]
    fn weight_equals_iteration_budget() {
        let solver = LbfgsSolver::with_iters(17);
        assert_eq!(
            <LbfgsSolver as LabelEstimator<Vec<f64>, Vec<f64>, Vec<f64>>>::weight(&solver),
            17
        );
    }

    #[test]
    fn charges_sim_clock() {
        let (data, labels, _) = dense_problem(30, 3, 7);
        let ctx = ExecContext::default_cluster();
        let _ = LbfgsSolver::with_iters(3).minimize(&|| data.clone(), &labels, &ctx);
        assert!(ctx.sim.entries().iter().any(|e| e.stage.contains("lbfgs")));
    }
}
