//! Table 1 cost models for the linear solvers.
//!
//! Each function maps problem shape `(n, d, k, sparsity, …)` and the worker
//! count to a [`CostProfile`] whose components follow Table 1's asymptotics
//! with calibrated constants. Memory requirements act as feasibility
//! constraints: a physical operator whose working set exceeds a node's
//! memory gets an effectively infinite cost (the paper's exact solver
//! "crashes for greater than 4k features" on Amazon — our optimizer must
//! never pick it there).

use keystone_dataflow::cluster::ResourceDesc;
use keystone_dataflow::cost::CostProfile;

/// Shape of a least-squares problem as seen by the cost models.
#[derive(Debug, Clone, Copy)]
pub struct SolveShape {
    /// Examples.
    pub n: f64,
    /// Features.
    pub d: f64,
    /// Classes / targets.
    pub k: f64,
    /// Average non-zeros per example (`= d` when dense).
    pub s: f64,
}

impl SolveShape {
    /// Builds a shape; `s` defaults to `d` when `None`.
    pub fn new(n: usize, d: usize, k: usize, s: Option<f64>) -> Self {
        SolveShape {
            n: n as f64,
            d: d as f64,
            k: (k.max(1)) as f64,
            s: s.unwrap_or(d as f64),
        }
    }
}

const BYTES: f64 = 8.0;
/// Effort multiplier for a fused multiply-add pair.
const FLOP: f64 = 2.0;
/// Cost returned for infeasible plans.
pub const INFEASIBLE: f64 = 1e18;

fn infeasible() -> CostProfile {
    CostProfile {
        flops: INFEASIBLE,
        bytes: 0.0,
        network: 0.0,
        barriers: 0.0,
    }
}

/// Local QR (Table 1 row 1): compute `O(nd(d+k))` **on the driver**,
/// network `O(n(d+k))` to gather the data, memory `O(d(n+k))` on one node.
pub fn local_qr_cost(shape: &SolveShape, r: &ResourceDesc) -> CostProfile {
    let mem = BYTES * shape.n * (shape.d + shape.k);
    if mem > r.mem_per_worker as f64 * 0.5 {
        return infeasible();
    }
    CostProfile {
        flops: FLOP * shape.n * shape.d * (shape.d + shape.k),
        bytes: BYTES * shape.d * (shape.n + shape.k),
        network: BYTES * shape.n * (shape.d + shape.k),
        barriers: 1.0,
    }
}

/// Distributed QR / normal equations (Table 1 row 2): compute
/// `O(nd(d+k)/w)`, network `O(d(d+k))` (the aggregated Gram matrix),
/// memory `O(nd/w + d²)` per node.
pub fn dist_qr_cost(shape: &SolveShape, r: &ResourceDesc) -> CostProfile {
    let w = r.workers.max(1) as f64;
    let mem = BYTES * (shape.n * shape.d / w + shape.d * shape.d);
    if mem > r.mem_per_worker as f64 * 0.5 {
        return infeasible();
    }
    CostProfile {
        // Gram accumulation dominates; the d³ Cholesky runs on the driver.
        flops: FLOP * shape.n * shape.d * (shape.d + shape.k) / w
            + shape.d * shape.d * shape.d / 3.0,
        bytes: mem,
        network: BYTES * shape.d * (shape.d + shape.k) * (w.log2().max(1.0)),
        barriers: 2.0,
    }
}

/// L-BFGS (Table 1 row 3): compute `O(i·n·s·k/w)` (sparse-aware), network
/// `O(i·d·k)` (one gradient aggregation per iteration), memory
/// `O(ns/w + dk)`.
pub fn lbfgs_cost(shape: &SolveShape, iters: usize, r: &ResourceDesc) -> CostProfile {
    let w = r.workers.max(1) as f64;
    let i = iters as f64;
    CostProfile {
        // ~2 gradient-equivalent passes per iteration (gradient + line
        // search), each 2·n·s·k multiply-adds.
        flops: 2.0 * FLOP * i * shape.n * shape.s * shape.k / w,
        bytes: BYTES * (shape.n * shape.s / w + shape.d * shape.k),
        network: BYTES * i * shape.d * shape.k * (w.log2().max(1.0)),
        // Gradient pass + ~2 line-search loss evaluations per iteration.
        barriers: 3.0 * i,
    }
}

/// Block solver (Table 1 row 4): compute `O(i·n·d·(b+k)/w)`, network
/// `O(i·d·(b+k))`, memory `O(nb/w + dk)`.
pub fn block_solve_cost(
    shape: &SolveShape,
    iters: usize,
    block: usize,
    r: &ResourceDesc,
) -> CostProfile {
    let w = r.workers.max(1) as f64;
    let b = (block as f64).min(shape.d.max(1.0));
    // A single block (b >= d) makes one sweep exact — the cost degenerates
    // to the distributed normal-equation solve plus block bookkeeping, so
    // the plain exact solver always (weakly) dominates in that regime.
    if b >= shape.d {
        let mut c = dist_qr_cost(shape, r);
        c.barriers += 1.0;
        return c;
    }
    let i = iters as f64;
    let num_blocks = (shape.d / b).ceil().max(1.0);
    CostProfile {
        // Per sweep: the data pass plus one b³/3 Cholesky per block on the
        // driver.
        flops: FLOP * i * shape.n * shape.d * (b + shape.k) / w + i * num_blocks * b * b * b / 3.0,
        bytes: BYTES * (shape.n * b / w + shape.d * shape.k),
        network: BYTES * i * shape.d * (b + shape.k),
        barriers: 2.0 * i,
    }
}

/// Synchronous minibatch SGD: per-step compute `O(m·s·k/w)` over minibatch
/// `m`, but a full model synchronization (`O(dk)` network) **every step** —
/// the coordination bound that caps Table 6's TensorFlow-style scaling.
pub fn sync_sgd_cost(
    shape: &SolveShape,
    steps: usize,
    minibatch: usize,
    r: &ResourceDesc,
) -> CostProfile {
    let w = r.workers.max(1) as f64;
    let t = steps as f64;
    let m = minibatch as f64;
    CostProfile {
        flops: FLOP * t * m * shape.s * shape.k / w,
        bytes: BYTES * shape.n * shape.s / w,
        network: BYTES * t * shape.d * shape.k * (w.log2().max(1.0) + 1.0),
        // One model synchronization per step: the scalability ceiling.
        barriers: t,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use keystone_dataflow::cluster::ClusterProfile;

    fn r16() -> ResourceDesc {
        ClusterProfile::R3_4xlarge.descriptor(16)
    }

    #[test]
    fn sparse_lbfgs_cheaper_than_exact_on_sparse_data() {
        // Amazon-like: n=65M (scaled: 1e6), d=100k, k=2, 0.1% dense.
        let shape = SolveShape::new(1_000_000, 100_000, 2, Some(100.0));
        let r = r16();
        let lbfgs = lbfgs_cost(&shape, 20, &r).estimated_seconds(&r);
        let exact = local_qr_cost(&shape, &r).estimated_seconds(&r);
        let dist = dist_qr_cost(&shape, &r).estimated_seconds(&r);
        assert!(lbfgs < exact, "lbfgs {} exact {}", lbfgs, exact);
        assert!(lbfgs < dist, "lbfgs {} dist {}", lbfgs, dist);
    }

    #[test]
    fn exact_wins_small_dense_problems() {
        // TIMIT-like small: dense, d=1024.
        let shape = SolveShape::new(100_000, 1024, 147, None);
        let r = r16();
        let exact = dist_qr_cost(&shape, &r).estimated_seconds(&r);
        let lbfgs = lbfgs_cost(&shape, 50, &r).estimated_seconds(&r);
        assert!(exact < lbfgs, "exact {} lbfgs {}", exact, lbfgs);
    }

    #[test]
    fn block_beats_exact_at_high_dimension() {
        // Dense, very wide: d=64k. Exact grows ~d², block stays linear in d
        // per block sweep.
        let shape = SolveShape::new(200_000, 65_536, 147, None);
        let r = r16();
        let exact = dist_qr_cost(&shape, &r).estimated_seconds(&r);
        let block = block_solve_cost(&shape, 10, 4096, &r).estimated_seconds(&r);
        assert!(block < exact, "block {} exact {}", block, exact);
    }

    #[test]
    fn local_qr_infeasible_when_data_exceeds_node_memory() {
        // 1e9 × 1e4 dense doubles = 80 TB: cannot be gathered to one node.
        let shape = SolveShape::new(1_000_000_000, 10_000, 2, None);
        let c = local_qr_cost(&shape, &r16());
        assert!(c.flops >= INFEASIBLE);
    }

    #[test]
    fn sync_sgd_network_grows_with_steps_not_data() {
        let shape = SolveShape::new(1_000_000, 1000, 10, None);
        let r = r16();
        let few = sync_sgd_cost(&shape, 100, 128, &r);
        let many = sync_sgd_cost(&shape, 10_000, 128, &r);
        assert!(many.network > few.network * 50.0);
    }

    #[test]
    fn sgd_coordination_dominates_at_scale() {
        // With many workers, sync SGD's coordination share grows.
        let shape = SolveShape::new(500_000, 3000, 10, None);
        let steps = 2000;
        let r2 = ClusterProfile::R3_4xlarge.descriptor(2);
        let r32 = ClusterProfile::R3_4xlarge.descriptor(32);
        let c2 = sync_sgd_cost(&shape, steps, 128, &r2);
        let c32 = sync_sgd_cost(&shape, steps, 128, &r32);
        let frac2 = c2.coord_seconds(&r2) / c2.estimated_seconds(&r2);
        let frac32 = c32.coord_seconds(&r32) / c32.estimated_seconds(&r32);
        assert!(
            frac32 > frac2,
            "coord share must grow: {} vs {}",
            frac2,
            frac32
        );
    }

    #[test]
    fn dist_qr_scales_with_workers() {
        let shape = SolveShape::new(1_000_000, 4096, 100, None);
        let r8 = ClusterProfile::R3_4xlarge.descriptor(8);
        let r64 = ClusterProfile::R3_4xlarge.descriptor(64);
        let t8 = dist_qr_cost(&shape, &r8).estimated_seconds(&r8);
        let t64 = dist_qr_cost(&shape, &r64).estimated_seconds(&r64);
        assert!(t64 < t8, "more workers must be faster: {} vs {}", t64, t8);
    }
}
