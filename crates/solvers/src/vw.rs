//! Online SGD with per-epoch model averaging — the Vowpal Wabbit-style
//! baseline (§5.2, Fig. 8).
//!
//! VW streams examples through a single learner per node and periodically
//! averages models (its spanning-tree allreduce). The strategy is fixed: it
//! never switches to an exact or block solver regardless of problem shape,
//! which is precisely the limitation Fig. 8 exposes.

use keystone_core::context::ExecContext;
use keystone_core::operator::{LabelEstimator, Transformer};
use keystone_dataflow::collection::DistCollection;
use keystone_dataflow::cost::CostProfile;
use keystone_linalg::dense::DenseMatrix;

use crate::features::Features;
use crate::linear_map::LinearMapModel;
use crate::losses::{softmax_inplace, LossKind};

/// VW-style online SGD solver.
#[derive(Debug, Clone)]
pub struct VwSolver {
    /// Passes over the data.
    pub epochs: usize,
    /// Base learning rate (decays per epoch).
    pub lr: f64,
    /// Loss to minimize.
    pub loss: LossKind,
}

impl Default for VwSolver {
    fn default() -> Self {
        VwSolver {
            epochs: 10,
            lr: 0.1,
            loss: LossKind::Squared,
        }
    }
}

impl VwSolver {
    /// Default configuration.
    pub fn new() -> Self {
        Self::default()
    }
}

impl<F: Features> LabelEstimator<F, Vec<f64>, Vec<f64>> for VwSolver {
    fn fit(
        &self,
        data: &DistCollection<F>,
        labels: &DistCollection<Vec<f64>>,
        ctx: &ExecContext,
    ) -> Box<dyn Transformer<F, Vec<f64>>> {
        let n = data.count();
        let d = data.iter().next().map_or(0, |x| x.dim());
        let k = labels.iter().next().map_or(1, |y| y.len());
        let avg_nnz = {
            let probe: f64 = data.iter().take(64).map(|x| Features::nnz(x) as f64).sum();
            probe / data.iter().take(64).count().max(1) as f64
        };
        let w_nodes = ctx.resources.workers.max(1) as f64;
        // Per epoch: each node streams its shard (n·s·k/w flops), then an
        // allreduce of the d×k model.
        ctx.sim.charge(
            "solve:vw",
            &CostProfile {
                flops: 4.0 * self.epochs as f64 * n as f64 * avg_nnz * k as f64 / w_nodes,
                bytes: 8.0 * n as f64 * avg_nnz / w_nodes,
                network: 8.0 * self.epochs as f64 * d as f64 * k as f64 * (w_nodes.log2().max(1.0)),
                barriers: self.epochs as f64,
            },
            &ctx.resources,
        );

        let pairs = data.zip(labels, |x, y| (x.clone(), y.clone()));
        let mut w = DenseMatrix::zeros(d, k);
        for epoch in 0..self.epochs {
            let lr = self.lr / (1.0 + epoch as f64);
            let loss = self.loss;
            // Each partition runs sequential online SGD from the current
            // global model; the results are averaged (allreduce).
            let w_in = w.clone();
            let summed = pairs.map_reduce_partitions(
                |part| {
                    let mut local = w_in.clone();
                    for (x, y) in part {
                        let mut scores = vec![0.0; k];
                        x.add_scores(&local, &mut scores);
                        match loss {
                            LossKind::Squared => {
                                for (s, yv) in scores.iter_mut().zip(y) {
                                    *s -= yv;
                                }
                            }
                            LossKind::Logistic => {
                                softmax_inplace(&mut scores);
                                for (s, yv) in scores.iter_mut().zip(y) {
                                    *s -= yv;
                                }
                            }
                        }
                        // VW-style normalized update: scale by the example
                        // norm so dense high-dimensional rows cannot blow
                        // the iterate up.
                        let norm2: f64 = {
                            let row = x.to_dense_row();
                            row.iter().map(|v| v * v).sum()
                        };
                        let step = lr / (1.0 + norm2);
                        x.add_outer(&scores, -step, &mut local);
                    }
                    (local, 1usize)
                },
                |(mut a, ca), (b, cb)| {
                    a += &b;
                    (a, ca + cb)
                },
            );
            if let Some((sum, count)) = summed {
                w = sum;
                w.scale_inplace(1.0 / count.max(1) as f64);
            }
        }
        Box::new(LinearMapModel::new(w))
    }

    fn weight(&self) -> u32 {
        self.epochs as u32
    }

    fn name(&self) -> String {
        "LinearSolver[vw-online-sgd]".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use keystone_linalg::rng::XorShiftRng;

    #[test]
    fn learns_simple_regression() {
        let mut rng = XorShiftRng::new(1);
        let rows: Vec<Vec<f64>> = (0..500)
            .map(|_| vec![rng.next_gaussian(), rng.next_gaussian()])
            .collect();
        let labels: Vec<Vec<f64>> = rows.iter().map(|r| vec![2.0 * r[0] - r[1]]).collect();
        let data = DistCollection::from_vec(rows.clone(), 4);
        let labels_c = DistCollection::from_vec(labels, 4);
        let ctx = ExecContext::default_cluster();
        let model = VwSolver {
            epochs: 30,
            lr: 0.1,
            loss: LossKind::Squared,
        }
        .fit(&data, &labels_c, &ctx);
        // Online SGD with averaging is approximate; accept coarse recovery.
        let p = model.apply(&vec![1.0, 0.0]);
        assert!((p[0] - 2.0).abs() < 0.3, "w0 estimate {}", p[0]);
    }

    #[test]
    fn charges_epoch_proportional_network() {
        let rows = vec![vec![1.0, 2.0]; 50];
        let labels = vec![vec![1.0]; 50];
        let data = DistCollection::from_vec(rows, 2);
        let labels = DistCollection::from_vec(labels, 2);
        let coord = |epochs: usize| {
            let ctx = ExecContext::default_cluster();
            let _ = VwSolver {
                epochs,
                ..Default::default()
            }
            .fit(&data, &labels, &ctx);
            ctx.sim.coord_seconds()
        };
        let c2 = coord(2);
        let c20 = coord(20);
        assert!(
            c20 > c2 * 5.0,
            "network must scale with epochs: {} vs {}",
            c2,
            c20
        );
    }
}
