//! Logistic regression — the classifier the Amazon text pipeline trains
//! (Table 4). Thin configuration over the L-BFGS engine with softmax loss.

use keystone_core::context::ExecContext;
use keystone_core::operator::{LabelEstimator, Transformer};
use keystone_dataflow::collection::DistCollection;

use crate::features::Features;
use crate::lbfgs::LbfgsSolver;
use crate::losses::LossKind;

/// Multinomial logistic regression via L-BFGS.
#[derive(Debug, Clone)]
pub struct LogisticRegression {
    /// L-BFGS iterations.
    pub max_iters: usize,
    /// Ridge regularization.
    pub lambda: f64,
}

impl Default for LogisticRegression {
    fn default() -> Self {
        LogisticRegression {
            max_iters: 30,
            lambda: 1e-6,
        }
    }
}

impl LogisticRegression {
    /// Default configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Custom iteration budget.
    pub fn with_iters(max_iters: usize) -> Self {
        LogisticRegression {
            max_iters,
            ..Default::default()
        }
    }

    fn engine(&self) -> LbfgsSolver {
        LbfgsSolver {
            max_iters: self.max_iters,
            lambda: self.lambda,
            loss: LossKind::Logistic,
            ..Default::default()
        }
    }
}

impl<F: Features> LabelEstimator<F, Vec<f64>, Vec<f64>> for LogisticRegression {
    fn fit(
        &self,
        data: &DistCollection<F>,
        labels: &DistCollection<Vec<f64>>,
        ctx: &ExecContext,
    ) -> Box<dyn Transformer<F, Vec<f64>>> {
        let data = data.clone();
        Box::new(self.engine().minimize(&move || data.clone(), labels, ctx))
    }

    fn fit_lazy(
        &self,
        data: &dyn Fn() -> DistCollection<F>,
        labels: &DistCollection<Vec<f64>>,
        ctx: &ExecContext,
    ) -> Box<dyn Transformer<F, Vec<f64>>> {
        Box::new(self.engine().minimize(data, labels, ctx))
    }

    fn weight(&self) -> u32 {
        self.max_iters as u32
    }

    fn name(&self) -> String {
        "LogisticRegression".to_string()
    }
}

/// Encodes class indices as one-hot vectors for the solvers.
pub fn one_hot(labels: &DistCollection<usize>, classes: usize) -> DistCollection<Vec<f64>> {
    labels.map(move |&c| {
        let mut v = vec![0.0; classes];
        if c < classes {
            v[c] = 1.0;
        }
        v
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use keystone_linalg::rng::XorShiftRng;
    use keystone_linalg::sparse::SparseVector;

    #[test]
    fn one_hot_encoding() {
        let labels = DistCollection::from_vec(vec![0usize, 2, 1], 1);
        let oh = one_hot(&labels, 3);
        assert_eq!(
            oh.collect(),
            vec![
                vec![1.0, 0.0, 0.0],
                vec![0.0, 0.0, 1.0],
                vec![0.0, 1.0, 0.0]
            ]
        );
    }

    #[test]
    fn one_hot_out_of_range_is_zero_vector() {
        let labels = DistCollection::from_vec(vec![5usize], 1);
        let oh = one_hot(&labels, 3);
        assert_eq!(oh.collect(), vec![vec![0.0, 0.0, 0.0]]);
    }

    #[test]
    fn classifies_sparse_text_like_data() {
        // Two "topics": class 0 uses features 0..5, class 1 uses 5..10.
        let mut rng = XorShiftRng::new(1);
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for _ in 0..300 {
            let class = rng.next_usize(2);
            let base = if class == 0 { 0 } else { 5 };
            let pairs: Vec<(u32, f64)> = (0..3)
                .map(|_| ((base + rng.next_usize(5)) as u32, 1.0))
                .collect();
            rows.push(SparseVector::from_pairs(10, pairs));
            labels.push(class);
        }
        let data = DistCollection::from_vec(rows.clone(), 4);
        let y = one_hot(&DistCollection::from_vec(labels.clone(), 4), 2);
        let ctx = ExecContext::default_cluster();
        let model = LogisticRegression::with_iters(25).fit(&data, &y, &ctx);
        let correct = rows
            .iter()
            .zip(&labels)
            .filter(|(x, &c)| {
                let s = model.apply(*x);
                (s[1] > s[0]) == (c == 1)
            })
            .count();
        assert!(correct as f64 / rows.len() as f64 > 0.95);
    }
}
