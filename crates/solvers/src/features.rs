//! The [`Features`] abstraction: one row of a design matrix, dense or
//! sparse. Solvers are generic over it, so the same L-BFGS code runs in
//! `O(d)` per row on dense TIMIT features and `O(nnz)` per row on the 0.1%
//! dense Amazon text features — the asymmetry behind Fig. 6.

use keystone_core::record::Record;
use keystone_linalg::dense::DenseMatrix;
use keystone_linalg::sparse::SparseVector;

/// A feature vector usable as a design-matrix row.
pub trait Features: Record {
    /// Ambient dimensionality `d`.
    fn dim(&self) -> usize;

    /// Structural non-zeros (`s·d` for sparsity `s`).
    fn nnz(&self) -> usize;

    /// `scores += x · W` where `W` is `d × k` and `scores` has length `k`.
    fn add_scores(&self, w: &DenseMatrix, scores: &mut [f64]);

    /// `grad += scale · (x ⊗ err)`, i.e. `grad[j][c] += scale·x[j]·err[c]`.
    fn add_outer(&self, err: &[f64], scale: f64, grad: &mut DenseMatrix);

    /// Dense copy of the row (used by exact solvers that build matrices).
    fn to_dense_row(&self) -> Vec<f64>;

    /// Dot product with a dense vector of length `dim()`.
    fn dot(&self, v: &[f64]) -> f64;
}

impl Features for Vec<f64> {
    fn dim(&self) -> usize {
        self.len()
    }

    fn nnz(&self) -> usize {
        self.len()
    }

    fn add_scores(&self, w: &DenseMatrix, scores: &mut [f64]) {
        debug_assert_eq!(w.rows(), self.len());
        for (j, &xj) in self.iter().enumerate() {
            if xj == 0.0 {
                continue;
            }
            let wrow = w.row(j);
            for (s, &wv) in scores.iter_mut().zip(wrow) {
                *s += xj * wv;
            }
        }
    }

    fn add_outer(&self, err: &[f64], scale: f64, grad: &mut DenseMatrix) {
        debug_assert_eq!(grad.rows(), self.len());
        for (j, &xj) in self.iter().enumerate() {
            if xj == 0.0 {
                continue;
            }
            let f = scale * xj;
            let grow = grad.row_mut(j);
            for (g, &e) in grow.iter_mut().zip(err) {
                *g += f * e;
            }
        }
    }

    fn to_dense_row(&self) -> Vec<f64> {
        self.clone()
    }

    fn dot(&self, v: &[f64]) -> f64 {
        keystone_linalg::dense::dot(self, v)
    }
}

impl Features for SparseVector {
    fn dim(&self) -> usize {
        SparseVector::dim(self)
    }

    fn nnz(&self) -> usize {
        SparseVector::nnz(self)
    }

    fn add_scores(&self, w: &DenseMatrix, scores: &mut [f64]) {
        debug_assert_eq!(w.rows(), SparseVector::dim(self));
        for (j, xj) in self.iter() {
            let wrow = w.row(j);
            for (s, &wv) in scores.iter_mut().zip(wrow) {
                *s += xj * wv;
            }
        }
    }

    fn add_outer(&self, err: &[f64], scale: f64, grad: &mut DenseMatrix) {
        debug_assert_eq!(grad.rows(), SparseVector::dim(self));
        for (j, xj) in self.iter() {
            let f = scale * xj;
            let grow = grad.row_mut(j);
            for (g, &e) in grow.iter_mut().zip(err) {
                *g += f * e;
            }
        }
    }

    fn to_dense_row(&self) -> Vec<f64> {
        self.to_dense()
    }

    fn dot(&self, v: &[f64]) -> f64 {
        self.dot_dense(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_scores_match_matvec() {
        let x = vec![1.0, 2.0, 0.0];
        let w = DenseMatrix::from_rows(&[&[1.0, 10.0], &[2.0, 20.0], &[3.0, 30.0]]);
        let mut scores = vec![0.0; 2];
        x.add_scores(&w, &mut scores);
        assert_eq!(scores, vec![5.0, 50.0]);
    }

    #[test]
    fn sparse_scores_match_dense() {
        let sx = SparseVector::from_pairs(3, vec![(0, 1.0), (1, 2.0)]);
        let dx = sx.to_dense_row();
        let w = DenseMatrix::from_rows(&[&[1.0, 10.0], &[2.0, 20.0], &[3.0, 30.0]]);
        let mut s1 = vec![0.0; 2];
        let mut s2 = vec![0.0; 2];
        sx.add_scores(&w, &mut s1);
        dx.add_scores(&w, &mut s2);
        assert_eq!(s1, s2);
    }

    #[test]
    fn outer_product_accumulation() {
        let x = vec![1.0, -1.0];
        let err = vec![2.0, 3.0];
        let mut grad = DenseMatrix::zeros(2, 2);
        x.add_outer(&err, 0.5, &mut grad);
        assert_eq!(grad.row(0), &[1.0, 1.5]);
        assert_eq!(grad.row(1), &[-1.0, -1.5]);
    }

    #[test]
    fn sparse_outer_matches_dense() {
        let sx = SparseVector::from_pairs(4, vec![(1, 3.0), (3, -2.0)]);
        let dx = sx.to_dense_row();
        let err = vec![1.0, -1.0, 2.0];
        let mut g1 = DenseMatrix::zeros(4, 3);
        let mut g2 = DenseMatrix::zeros(4, 3);
        sx.add_outer(&err, 1.5, &mut g1);
        dx.add_outer(&err, 1.5, &mut g2);
        assert!(g1.max_abs_diff(&g2) < 1e-15);
    }

    #[test]
    fn nnz_reporting() {
        assert_eq!(Features::nnz(&vec![1.0, 0.0, 2.0]), 3); // dense counts length
        let s = SparseVector::from_pairs(10, vec![(1, 1.0)]);
        assert_eq!(Features::nnz(&s), 1);
        assert_eq!(Features::dim(&s), 10);
    }
}
