//! Conjugate-gradient least squares — the SystemML-style baseline (§5.2).
//!
//! SystemML optimizes the linear-algebra *implementation* of a fixed
//! algorithm (CG) but never switches algorithms; it also requires a data
//! conversion pass before solving. Both properties are modeled here: CG on
//! the normal equations `(XᵀX + λI)w = Xᵀy` without ever forming the Gram
//! matrix (one fused `Xᵀ(Xp)` pass per iteration), preceded by an optional
//! conversion pass that copies the dataset once.

use keystone_core::context::ExecContext;
use keystone_core::operator::{LabelEstimator, Transformer};
use keystone_dataflow::collection::DistCollection;
use keystone_linalg::dense::DenseMatrix;

use crate::cost::SolveShape;
use crate::features::Features;
use crate::linear_map::LinearMapModel;
use keystone_dataflow::cost::CostProfile;

/// CG-based least-squares solver.
#[derive(Debug, Clone)]
pub struct CgSolver {
    /// CG iterations per class column.
    pub iters: usize,
    /// Ridge regularization.
    pub lambda: f64,
    /// Model SystemML's input-format conversion pass.
    pub conversion_pass: bool,
}

impl Default for CgSolver {
    fn default() -> Self {
        CgSolver {
            iters: 30,
            lambda: 1e-8,
            conversion_pass: true,
        }
    }
}

impl CgSolver {
    /// Default configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fused `q = Xᵀ(X p) + λ p` in one distributed pass.
    fn apply_normal<F: Features>(data: &DistCollection<F>, p: &[f64], lambda: f64) -> Vec<f64> {
        let d = p.len();
        let q = data
            .map_reduce_partitions(
                |part| {
                    let mut acc = vec![0.0; d];
                    for x in part {
                        let t = x.dot(p);
                        if t != 0.0 {
                            // acc += t · x
                            let row = x.to_dense_row();
                            for (a, &xv) in acc.iter_mut().zip(&row) {
                                *a += t * xv;
                            }
                        }
                    }
                    acc
                },
                |mut a, b| {
                    for (x, y) in a.iter_mut().zip(&b) {
                        *x += y;
                    }
                    a
                },
            )
            .unwrap_or_else(|| vec![0.0; d]);
        q.iter().zip(p).map(|(qv, pv)| qv + lambda * pv).collect()
    }

    /// Solves one right-hand side with CG.
    fn solve_column<F: Features>(&self, data: &DistCollection<F>, rhs: &[f64]) -> Vec<f64> {
        let d = rhs.len();
        let mut w = vec![0.0; d];
        let mut r = rhs.to_vec();
        let mut p = r.clone();
        let mut rs_old: f64 = r.iter().map(|v| v * v).sum();
        for _ in 0..self.iters {
            if rs_old.sqrt() < 1e-12 {
                break;
            }
            let ap = Self::apply_normal(data, &p, self.lambda);
            let p_ap: f64 = p.iter().zip(&ap).map(|(a, b)| a * b).sum();
            if p_ap <= 0.0 {
                break;
            }
            let alpha = rs_old / p_ap;
            for ((wv, pv), (rv, apv)) in w.iter_mut().zip(&p).zip(r.iter_mut().zip(&ap)) {
                *wv += alpha * pv;
                *rv -= alpha * apv;
            }
            let rs_new: f64 = r.iter().map(|v| v * v).sum();
            let beta = rs_new / rs_old;
            for (pv, &rv) in p.iter_mut().zip(&r) {
                *pv = rv + beta * *pv;
            }
            rs_old = rs_new;
        }
        w
    }
}

impl<F: Features> LabelEstimator<F, Vec<f64>, Vec<f64>> for CgSolver {
    fn fit(
        &self,
        data: &DistCollection<F>,
        labels: &DistCollection<Vec<f64>>,
        ctx: &ExecContext,
    ) -> Box<dyn Transformer<F, Vec<f64>>> {
        let n = data.count();
        let d = data.iter().next().map_or(0, |x| x.dim());
        let k = labels.iter().next().map_or(1, |y| y.len());
        let shape = SolveShape::new(n, d, k, None);
        let w_nodes = ctx.resources.workers.max(1) as f64;

        // SystemML-style conversion pass: one full copy of the dataset.
        let data = if self.conversion_pass {
            let bytes = shape.n * shape.s * 8.0;
            ctx.sim.charge(
                "solve:cg-convert",
                &CostProfile {
                    flops: 0.0,
                    bytes: 2.0 * bytes / w_nodes,
                    network: 0.0,
                    barriers: 1.0,
                },
                &ctx.resources,
            );
            data.map(|x| x.clone())
        } else {
            data.clone()
        };

        // Per-iteration: one fused pass (2·n·s flops) + a d-length allreduce.
        let i = (self.iters * k.max(1)) as f64;
        ctx.sim.charge(
            "solve:cg",
            &CostProfile {
                flops: 4.0 * i * shape.n * shape.s / w_nodes,
                bytes: 8.0 * shape.n * shape.s / w_nodes,
                network: 8.0 * i * shape.d * (w_nodes.log2().max(1.0)),
                barriers: 2.0 * i,
            },
            &ctx.resources,
        );

        // rhs_c = Xᵀ y_c for every class, in one pass.
        let pairs = data.zip(labels, |x, y| (x.clone(), y.clone()));
        let rhs = pairs
            .map_reduce_partitions(
                |part| {
                    let mut acc = DenseMatrix::zeros(d, k);
                    for (x, y) in part {
                        x.add_outer(y, 1.0, &mut acc);
                    }
                    acc
                },
                |mut a, b| {
                    a += &b;
                    a
                },
            )
            .unwrap_or_else(|| DenseMatrix::zeros(d, k));

        let mut weights = DenseMatrix::zeros(d, k);
        for c in 0..k {
            let col: Vec<f64> = rhs.col(c);
            let w = self.solve_column(&data, &col);
            for (j, v) in w.into_iter().enumerate() {
                weights.set(j, c, v);
            }
        }
        Box::new(LinearMapModel::new(weights))
    }

    fn weight(&self) -> u32 {
        self.iters as u32
    }

    fn name(&self) -> String {
        "LinearSolver[cg-systemml]".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::local_qr::LocalQrSolver;
    use keystone_linalg::rng::XorShiftRng;

    fn problem(
        n: usize,
        d: usize,
        seed: u64,
    ) -> (DistCollection<Vec<f64>>, DistCollection<Vec<f64>>) {
        let mut rng = XorShiftRng::new(seed);
        let wstar: Vec<f64> = (0..d).map(|_| rng.next_gaussian()).collect();
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|_| (0..d).map(|_| rng.next_gaussian()).collect())
            .collect();
        let labels: Vec<Vec<f64>> = rows
            .iter()
            .map(|r| vec![r.iter().zip(&wstar).map(|(x, w)| x * w).sum::<f64>()])
            .collect();
        (
            DistCollection::from_vec(rows, 4),
            DistCollection::from_vec(labels, 4),
        )
    }

    #[test]
    fn cg_matches_exact_solver() {
        let (data, labels) = problem(100, 8, 1);
        let ctx = ExecContext::default_cluster();
        let cg = CgSolver {
            iters: 50,
            lambda: 0.0,
            conversion_pass: false,
        }
        .fit(&data, &labels, &ctx);
        let exact = LocalQrSolver::new().fit(&data, &labels, &ctx);
        for x in data.collect().iter().take(10) {
            let a = cg.apply(x)[0];
            let b = exact.apply(x)[0];
            assert!((a - b).abs() < 1e-6, "{} vs {}", a, b);
        }
    }

    #[test]
    fn conversion_pass_charges_extra_sim_time() {
        let (data, labels) = problem(50, 4, 2);
        let with = {
            let ctx = ExecContext::default_cluster();
            let _ = CgSolver::new().fit(&data, &labels, &ctx);
            ctx.sim.total_seconds()
        };
        let without = {
            let ctx = ExecContext::default_cluster();
            let _ = CgSolver {
                conversion_pass: false,
                ..CgSolver::new()
            }
            .fit(&data, &labels, &ctx);
            ctx.sim.total_seconds()
        };
        assert!(
            with > without,
            "conversion must cost time: {} vs {}",
            with,
            without
        );
    }

    #[test]
    fn multiclass_columns_solved_independently() {
        let mut rng = XorShiftRng::new(3);
        let rows: Vec<Vec<f64>> = (0..60)
            .map(|_| (0..4).map(|_| rng.next_gaussian()).collect())
            .collect();
        // Two targets: y0 = x0, y1 = -x2.
        let labels: Vec<Vec<f64>> = rows.iter().map(|r| vec![r[0], -r[2]]).collect();
        let data = DistCollection::from_vec(rows.clone(), 2);
        let labels = DistCollection::from_vec(labels, 2);
        let ctx = ExecContext::default_cluster();
        let model = CgSolver {
            iters: 30,
            lambda: 0.0,
            conversion_pass: false,
        }
        .fit(&data, &labels, &ctx);
        let pred = model.apply(&rows[0]);
        assert!((pred[0] - rows[0][0]).abs() < 1e-6);
        assert!((pred[1] + rows[0][2]).abs() < 1e-6);
    }
}
