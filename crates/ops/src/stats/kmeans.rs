//! K-Means (Lloyd's algorithm with k-means++ seeding). Used to learn
//! convolution filter banks in the CIFAR pipeline and to initialize GMMs.

use keystone_linalg::dense::DenseMatrix;
use keystone_linalg::rng::XorShiftRng;

/// K-Means configuration.
#[derive(Debug, Clone, Copy)]
pub struct KMeans {
    /// Cluster count.
    pub k: usize,
    /// Lloyd iterations.
    pub iters: usize,
    /// Seed for k-means++ initialization.
    pub seed: u64,
}

impl KMeans {
    /// `k` clusters, 20 iterations.
    pub fn new(k: usize) -> Self {
        KMeans {
            k,
            iters: 20,
            seed: 0xC1,
        }
    }

    /// Runs Lloyd's algorithm on rows of `x`; returns `k × d` centroids.
    pub fn fit(&self, x: &DenseMatrix) -> DenseMatrix {
        let (n, d) = x.shape();
        assert!(n > 0, "k-means needs data");
        let k = self.k.min(n);
        let mut rng = XorShiftRng::new(self.seed);

        // k-means++ seeding.
        let mut centers = DenseMatrix::zeros(k, d);
        let first = rng.next_usize(n);
        centers.row_mut(0).copy_from_slice(x.row(first));
        let mut dists: Vec<f64> = (0..n).map(|i| sq_dist(x.row(i), centers.row(0))).collect();
        for c in 1..k {
            let total: f64 = dists.iter().sum();
            let mut target = rng.next_f64() * total.max(1e-300);
            let mut chosen = n - 1;
            for (i, &dv) in dists.iter().enumerate() {
                target -= dv;
                if target <= 0.0 {
                    chosen = i;
                    break;
                }
            }
            centers.row_mut(c).copy_from_slice(x.row(chosen));
            for i in 0..n {
                let nd = sq_dist(x.row(i), centers.row(c));
                if nd < dists[i] {
                    dists[i] = nd;
                }
            }
        }

        // Lloyd iterations.
        let mut assign = vec![0usize; n];
        for _ in 0..self.iters {
            let mut moved = false;
            for i in 0..n {
                let row = x.row(i);
                let mut best = 0;
                let mut best_d = f64::INFINITY;
                for c in 0..k {
                    let dv = sq_dist(row, centers.row(c));
                    if dv < best_d {
                        best_d = dv;
                        best = c;
                    }
                }
                if assign[i] != best {
                    moved = true;
                    assign[i] = best;
                }
            }
            let mut sums = DenseMatrix::zeros(k, d);
            let mut counts = vec![0usize; k];
            for i in 0..n {
                let c = assign[i];
                counts[c] += 1;
                let srow = sums.row_mut(c);
                for (s, &v) in srow.iter_mut().zip(x.row(i)) {
                    *s += v;
                }
            }
            for c in 0..k {
                if counts[c] == 0 {
                    // Re-seed empty cluster at a random point.
                    let i = rng.next_usize(n);
                    centers.row_mut(c).copy_from_slice(x.row(i));
                    continue;
                }
                let inv = 1.0 / counts[c] as f64;
                let crow = centers.row_mut(c);
                for (cv, &sv) in crow.iter_mut().zip(sums.row(c)) {
                    *cv = sv * inv;
                }
            }
            if !moved {
                break;
            }
        }
        centers
    }

    /// Index of the nearest centroid to `x`.
    pub fn assign(centers: &DenseMatrix, x: &[f64]) -> usize {
        (0..centers.rows())
            .min_by(|&a, &b| {
                sq_dist(centers.row(a), x)
                    .partial_cmp(&sq_dist(centers.row(b), x))
                    .expect("finite distances")
            })
            .unwrap_or(0)
    }
}

fn sq_dist(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Three well-separated blobs in 2-D.
    fn blobs(per: usize, seed: u64) -> DenseMatrix {
        let centers = [(0.0, 0.0), (10.0, 0.0), (0.0, 10.0)];
        let mut rng = XorShiftRng::new(seed);
        DenseMatrix::from_fn(per * 3, 2, |i, j| {
            let (cx, cy) = centers[i / per];
            let c = if j == 0 { cx } else { cy };
            c + rng.next_gaussian() * 0.3
        })
    }

    #[test]
    fn recovers_separated_blobs() {
        let x = blobs(50, 1);
        let centers = KMeans::new(3).fit(&x);
        assert_eq!(centers.shape(), (3, 2));
        // Each true center must have a learned centroid within 1.0.
        for (cx, cy) in [(0.0, 0.0), (10.0, 0.0), (0.0, 10.0)] {
            let best = (0..3)
                .map(|c| sq_dist(centers.row(c), &[cx, cy]))
                .fold(f64::INFINITY, f64::min);
            assert!(best < 1.0, "no centroid near ({}, {}): {}", cx, cy, best);
        }
    }

    #[test]
    fn assignment_consistent_with_centers() {
        let x = blobs(30, 2);
        let centers = KMeans::new(3).fit(&x);
        // Points from the same blob must agree on assignment.
        let a0 = KMeans::assign(&centers, x.row(0));
        let a1 = KMeans::assign(&centers, x.row(1));
        assert_eq!(a0, a1);
    }

    #[test]
    fn k_capped_at_n() {
        let x = DenseMatrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let centers = KMeans::new(10).fit(&x);
        assert_eq!(centers.rows(), 2);
    }

    #[test]
    fn deterministic_given_seed() {
        let x = blobs(20, 3);
        let c1 = KMeans::new(3).fit(&x);
        let c2 = KMeans::new(3).fit(&x);
        assert!(c1.max_abs_diff(&c2) == 0.0);
    }
}
