//! Statistical operators: PCA (optimizable, Table 2), GMM, K-Means, Fisher
//! vectors, random kernel features, scaling and normalization.

pub mod fisher;
pub mod gmm;
pub mod kmeans;
pub mod pca;
pub mod random_features;
pub mod scaling;

pub use fisher::FisherVectorEstimator;
pub use gmm::{Gmm, GmmModel};
pub use kmeans::KMeans;
pub use pca::{DescriptorPca, Pca, PcaModel};
pub use random_features::RandomFeatures;
pub use scaling::{ColumnSampler, Normalizer, SignedPowerNormalizer, StandardScaler};

/// Cost returned by cost models for physically infeasible plans (e.g. the
/// separable convolver on non-separable filters, or a local SVD whose data
/// exceeds driver memory).
pub const INFEASIBLE_COST: f64 = 1e18;
