//! Fisher-vector encoding (Sánchez et al., the paper's image featurizer).
//!
//! `FisherVectorEstimator` fits a GMM codebook on sampled descriptors and
//! returns a transformer that aggregates each image's descriptor matrix
//! into a `2·K·d` gradient vector (mean and variance gradients per
//! component).

use keystone_core::context::ExecContext;
use keystone_core::operator::{Estimator, Transformer};
use keystone_dataflow::collection::DistCollection;
use keystone_linalg::dense::DenseMatrix;

use super::gmm::{fit_gmm, gather_rows, Gmm, GmmModel};

/// Fits a GMM and encodes descriptor matrices as Fisher vectors.
#[derive(Debug, Clone, Copy)]
pub struct FisherVectorEstimator {
    /// GMM configuration (K components over descriptor space).
    pub gmm: Gmm,
}

impl FisherVectorEstimator {
    /// Fisher vectors over a `k`-component codebook.
    pub fn new(k: usize) -> Self {
        FisherVectorEstimator { gmm: Gmm::new(k) }
    }
}

/// The fitted Fisher-vector encoder.
#[derive(Clone)]
pub struct FisherVectorModel {
    /// The codebook.
    pub gmm: GmmModel,
}

impl FisherVectorModel {
    /// Output dimensionality `2·K·d`.
    pub fn out_dim(&self) -> usize {
        2 * self.gmm.k() * self.gmm.d()
    }

    /// Encodes a descriptor matrix.
    pub fn encode(&self, descs: &DenseMatrix) -> Vec<f64> {
        let k = self.gmm.k();
        let d = self.gmm.d();
        let mut fv = vec![0.0; 2 * k * d];
        let t = descs.rows();
        if t == 0 {
            return fv;
        }
        for i in 0..t {
            let x = descs.row(i);
            let gamma = self.gmm.posteriors(x);
            for c in 0..k {
                let g = gamma[c];
                if g < 1e-12 {
                    continue;
                }
                let (mean_part, var_part) = (c * d, k * d + c * d);
                for j in 0..d {
                    let sigma = self.gmm.vars.get(c, j).sqrt();
                    let z = (x[j] - self.gmm.means.get(c, j)) / sigma;
                    fv[mean_part + j] += g * z;
                    fv[var_part + j] += g * (z * z - 1.0);
                }
            }
        }
        // Normalize by count and weight (the FV scaling).
        for c in 0..k {
            let wc = self.gmm.weights[c].max(1e-12);
            let mscale = 1.0 / (t as f64 * wc.sqrt());
            let vscale = 1.0 / (t as f64 * (2.0 * wc).sqrt());
            for j in 0..d {
                fv[c * d + j] *= mscale;
                fv[k * d + c * d + j] *= vscale;
            }
        }
        fv
    }
}

impl Transformer<DenseMatrix, Vec<f64>> for FisherVectorModel {
    fn apply(&self, descs: &DenseMatrix) -> Vec<f64> {
        self.encode(descs)
    }
    fn name(&self) -> String {
        "FisherVector".into()
    }
}

impl Estimator<DenseMatrix, Vec<f64>> for FisherVectorEstimator {
    fn fit(
        &self,
        data: &DistCollection<DenseMatrix>,
        _ctx: &ExecContext,
    ) -> Box<dyn Transformer<DenseMatrix, Vec<f64>>> {
        let sample = gather_rows(data, self.gmm.max_samples);
        let gmm = fit_gmm(&self.gmm, &sample);
        Box::new(FisherVectorModel { gmm })
    }

    fn name(&self) -> String {
        "FisherVector".into()
    }

    fn weight(&self) -> u32 {
        self.gmm.iters as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use keystone_linalg::rng::XorShiftRng;

    fn descriptor_set(n: usize, d: usize, shift: f64, seed: u64) -> DenseMatrix {
        let mut rng = XorShiftRng::new(seed);
        DenseMatrix::from_fn(n, d, |_, _| rng.next_gaussian() + shift)
    }

    fn fitted(seed: u64) -> FisherVectorModel {
        let mats = vec![
            descriptor_set(30, 4, -2.0, seed),
            descriptor_set(30, 4, 2.0, seed + 1),
        ];
        let data = DistCollection::from_vec(mats, 2);
        let sample = gather_rows(&data, 10_000);
        FisherVectorModel {
            gmm: fit_gmm(&Gmm::new(2), &sample),
        }
    }

    #[test]
    fn output_dimensionality() {
        let model = fitted(1);
        assert_eq!(model.out_dim(), 2 * 2 * 4);
        let fv = model.encode(&descriptor_set(10, 4, 0.0, 9));
        assert_eq!(fv.len(), 16);
    }

    #[test]
    fn empty_descriptor_set_encodes_to_zero() {
        let model = fitted(2);
        let fv = model.encode(&DenseMatrix::zeros(0, 4));
        assert!(fv.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn different_content_gives_different_codes() {
        let model = fitted(3);
        let a = model.encode(&descriptor_set(20, 4, -2.0, 11));
        let b = model.encode(&descriptor_set(20, 4, 2.0, 12));
        let dist: f64 = a.iter().zip(&b).map(|(x, y)| (x - y).powi(2)).sum();
        assert!(dist > 0.1, "codes too similar: {}", dist);
    }

    #[test]
    fn similar_content_gives_similar_codes() {
        let model = fitted(4);
        let a = model.encode(&descriptor_set(200, 4, -2.0, 21));
        let b = model.encode(&descriptor_set(200, 4, -2.0, 22));
        let cross: f64 = a.iter().zip(&b).map(|(x, y)| (x - y).powi(2)).sum();
        let c = model.encode(&descriptor_set(200, 4, 2.0, 23));
        let far: f64 = a.iter().zip(&c).map(|(x, y)| (x - y).powi(2)).sum();
        assert!(
            cross < far,
            "same-class distance {} >= cross-class {}",
            cross,
            far
        );
    }

    #[test]
    fn estimator_end_to_end() {
        let mats = vec![
            descriptor_set(40, 3, -1.5, 31),
            descriptor_set(40, 3, 1.5, 32),
        ];
        let data = DistCollection::from_vec(mats.clone(), 2);
        let ctx = ExecContext::default_cluster();
        let model = FisherVectorEstimator::new(2).fit(&data, &ctx);
        let fv = model.apply(&mats[0]);
        assert_eq!(fv.len(), 2 * 2 * 3);
        assert!(fv.iter().any(|&v| v != 0.0));
    }
}
