//! Scaling and normalization operators.

use std::sync::Arc;

use keystone_core::context::ExecContext;
use keystone_core::operator::{ColumnarFn, Estimator, Transformer};
use keystone_dataflow::collection::DistCollection;
use keystone_linalg::dense::DenseMatrix;
use keystone_linalg::rng::XorShiftRng;

/// L2 normalization of feature vectors (the image pipelines' `Normalize`).
#[derive(Clone, Copy, Default)]
pub struct Normalizer;

impl Transformer<Vec<f64>, Vec<f64>> for Normalizer {
    fn apply(&self, x: &Vec<f64>) -> Vec<f64> {
        let norm = x.iter().map(|v| v * v).sum::<f64>().sqrt();
        if norm <= 1e-300 {
            return x.clone();
        }
        let inv = 1.0 / norm;
        x.iter().map(|v| v * inv).collect()
    }
    fn name(&self) -> String {
        "Normalize".into()
    }

    fn columnar_kernel(&self) -> Option<ColumnarFn> {
        Some(Arc::new(|x, out| {
            let norm = x.iter().map(|v| v * v).sum::<f64>().sqrt();
            if norm <= 1e-300 {
                out.extend_from_slice(x);
                return;
            }
            let inv = 1.0 / norm;
            out.extend(x.iter().map(|v| v * inv));
        }))
    }
}

/// Signed power ("improved Fisher vector") normalization followed by L2:
/// `sign(x)·|x|^p`, then unit norm.
#[derive(Clone, Copy)]
pub struct SignedPowerNormalizer {
    /// Power exponent (0.5 in the improved-FV recipe).
    pub power: f64,
}

impl Default for SignedPowerNormalizer {
    fn default() -> Self {
        SignedPowerNormalizer { power: 0.5 }
    }
}

impl Transformer<Vec<f64>, Vec<f64>> for SignedPowerNormalizer {
    fn apply(&self, x: &Vec<f64>) -> Vec<f64> {
        let powered: Vec<f64> = x
            .iter()
            .map(|v| v.signum() * v.abs().powf(self.power))
            .collect();
        Normalizer.apply(&powered)
    }
    fn name(&self) -> String {
        "SignedPowerNormalize".into()
    }

    fn columnar_kernel(&self) -> Option<ColumnarFn> {
        let power = self.power;
        let l2 = Normalizer.columnar_kernel()?;
        Some(Arc::new(move |x, out| {
            let powered: Vec<f64> = x.iter().map(|v| v.signum() * v.abs().powf(power)).collect();
            l2(&powered, out);
        }))
    }
}

/// Fitted standardization transform.
#[derive(Clone)]
pub struct StandardScalerModel {
    mean: Vec<f64>,
    inv_std: Vec<f64>,
}

impl Transformer<Vec<f64>, Vec<f64>> for StandardScalerModel {
    fn apply(&self, x: &Vec<f64>) -> Vec<f64> {
        x.iter()
            .zip(&self.mean)
            .zip(&self.inv_std)
            .map(|((v, m), s)| (v - m) * s)
            .collect()
    }
    fn name(&self) -> String {
        "StandardScalerModel".into()
    }
}

/// Standardizes each dimension to zero mean, unit variance (distributed
/// moment aggregation).
#[derive(Clone, Copy, Default)]
pub struct StandardScaler;

impl Estimator<Vec<f64>, Vec<f64>> for StandardScaler {
    fn fit(
        &self,
        data: &DistCollection<Vec<f64>>,
        _ctx: &ExecContext,
    ) -> Box<dyn Transformer<Vec<f64>, Vec<f64>>> {
        let d = data.iter().next().map_or(0, |x| x.len());
        let n = data.count().max(1) as f64;
        let (sum, sq) = data
            .map_reduce_partitions(
                |part| {
                    let mut sum = vec![0.0; d];
                    let mut sq = vec![0.0; d];
                    for x in part {
                        for (j, &v) in x.iter().enumerate() {
                            sum[j] += v;
                            sq[j] += v * v;
                        }
                    }
                    (sum, sq)
                },
                |(mut s1, mut q1), (s2, q2)| {
                    for (a, b) in s1.iter_mut().zip(&s2) {
                        *a += b;
                    }
                    for (a, b) in q1.iter_mut().zip(&q2) {
                        *a += b;
                    }
                    (s1, q1)
                },
            )
            .unwrap_or_else(|| (vec![0.0; d], vec![0.0; d]));
        let mean: Vec<f64> = sum.iter().map(|s| s / n).collect();
        let inv_std: Vec<f64> = sq
            .iter()
            .zip(&mean)
            .map(|(q, m)| {
                let var = (q / n - m * m).max(0.0);
                if var > 1e-300 {
                    1.0 / var.sqrt()
                } else {
                    1.0
                }
            })
            .collect();
        Box::new(StandardScalerModel { mean, inv_std })
    }

    fn name(&self) -> String {
        "StandardScaler".into()
    }
}

/// Randomly samples up to `count` rows of a descriptor matrix (the image
/// pipelines' `ColumnSampler`).
#[derive(Clone, Copy)]
pub struct ColumnSampler {
    /// Rows kept per record.
    pub count: usize,
    /// Seed.
    pub seed: u64,
}

impl Transformer<DenseMatrix, DenseMatrix> for ColumnSampler {
    fn apply(&self, m: &DenseMatrix) -> DenseMatrix {
        if m.rows() <= self.count {
            return m.clone();
        }
        let content = m.data().iter().take(4).fold(self.seed, |acc, v| {
            acc.wrapping_mul(37).wrapping_add(v.to_bits())
        });
        let mut rng = XorShiftRng::new(content);
        let mut idx = rng.sample_indices(m.rows(), self.count);
        idx.sort_unstable();
        m.select_rows(&idx)
    }
    fn name(&self) -> String {
        "ColumnSampler".into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn l2_normalizer_unit_norm() {
        let x = vec![3.0, 4.0];
        let n = Normalizer.apply(&x);
        assert!((n[0] - 0.6).abs() < 1e-12);
        assert!((n[1] - 0.8).abs() < 1e-12);
        // Zero vector passes through.
        assert_eq!(Normalizer.apply(&vec![0.0, 0.0]), vec![0.0, 0.0]);
    }

    #[test]
    fn signed_power_preserves_sign() {
        let x = vec![4.0, -9.0];
        let n = SignedPowerNormalizer::default().apply(&x);
        assert!(n[0] > 0.0 && n[1] < 0.0);
        let norm: f64 = n.iter().map(|v| v * v).sum();
        assert!((norm - 1.0).abs() < 1e-12);
        // sqrt compresses: ratio 2:3 rather than 4:9.
        assert!((n[1].abs() / n[0] - 1.5).abs() < 1e-9);
    }

    #[test]
    fn normalizer_columnar_kernels_match_apply_bit_for_bit() {
        let inputs = vec![
            vec![3.0, 4.0],
            vec![0.0, 0.0],
            vec![1e-160, -1e-160],
            vec![4.0, -9.0, 0.25, -0.0],
            vec![],
        ];
        type BoxedOp = Box<dyn Transformer<Vec<f64>, Vec<f64>>>;
        let ops: Vec<(BoxedOp, &str)> = vec![
            (Box::new(Normalizer), "Normalize"),
            (
                Box::new(SignedPowerNormalizer::default()),
                "SignedPowerNormalize",
            ),
        ];
        for (op, name) in &ops {
            let kernel = op
                .columnar_kernel()
                .unwrap_or_else(|| panic!("{name} should expose a columnar kernel"));
            for x in &inputs {
                let via_apply = op.apply(x);
                let mut via_kernel = Vec::new();
                kernel(x, &mut via_kernel);
                let a: Vec<u64> = via_apply.iter().map(|v| v.to_bits()).collect();
                let k: Vec<u64> = via_kernel.iter().map(|v| v.to_bits()).collect();
                assert_eq!(a, k, "columnar kernel for {name} diverged from apply");
            }
        }
    }

    #[test]
    fn standard_scaler_standardizes() {
        let rows: Vec<Vec<f64>> = (0..100)
            .map(|i| vec![i as f64, 1000.0 + 2.0 * i as f64])
            .collect();
        let data = DistCollection::from_vec(rows, 4);
        let ctx = ExecContext::default_cluster();
        let model = StandardScaler.fit(&data, &ctx);
        let scaled = data.map(|x| model.apply(x));
        // Mean ~0, var ~1 per dim.
        let n = scaled.count() as f64;
        for j in 0..2 {
            let mean: f64 = scaled.iter().map(|x| x[j]).sum::<f64>() / n;
            let var: f64 = scaled.iter().map(|x| x[j] * x[j]).sum::<f64>() / n;
            assert!(mean.abs() < 1e-9, "mean {}", mean);
            assert!((var - 1.0).abs() < 1e-9, "var {}", var);
        }
    }

    #[test]
    fn standard_scaler_constant_dim_is_noop() {
        let rows = vec![vec![5.0]; 10];
        let data = DistCollection::from_vec(rows, 2);
        let ctx = ExecContext::default_cluster();
        let model = StandardScaler.fit(&data, &ctx);
        let out = model.apply(&vec![5.0]);
        assert!(out[0].abs() < 1e-12);
        assert!(out[0].is_finite());
    }

    #[test]
    fn column_sampler_caps_rows() {
        let m = DenseMatrix::from_fn(100, 3, |i, j| (i * 3 + j) as f64);
        let s = ColumnSampler { count: 10, seed: 1 }.apply(&m);
        assert_eq!(s.shape(), (10, 3));
        // Small matrices pass through unchanged.
        let small = DenseMatrix::zeros(5, 3);
        assert_eq!(
            ColumnSampler { count: 10, seed: 1 }.apply(&small).shape(),
            (5, 3)
        );
    }

    #[test]
    fn column_sampler_deterministic() {
        let m = DenseMatrix::from_fn(50, 2, |i, j| (i + j) as f64);
        let cs = ColumnSampler { count: 7, seed: 2 };
        assert!(cs.apply(&m).max_abs_diff(&cs.apply(&m)) == 0.0);
    }
}
