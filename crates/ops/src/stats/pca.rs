//! The optimizable PCA operator (§3, Table 2): one logical operator, four
//! physical implementations — {local, distributed} × {exact SVD, randomized
//! truncated SVD}.
//!
//! * local exact: gather + covariance eigendecomposition, `O(n d²)`;
//! * local approximate: gather + randomized TSVD, `O(n d k)`;
//! * distributed exact: tree-aggregated covariance (`O(n d² / w)` compute,
//!   `O(d²)` network) + driver eigensolve;
//! * distributed approximate: distributed randomized range finder
//!   (`O(n d l / w)` per pass, `O(d l)` network per pass).

use keystone_core::context::ExecContext;
use keystone_core::operator::{Estimator, EstimatorOption, OptimizableEstimator, Transformer};
use keystone_core::record::DataStats;
use keystone_dataflow::cluster::ResourceDesc;
use keystone_dataflow::collection::DistCollection;
use keystone_dataflow::cost::CostProfile;
use keystone_linalg::dense::DenseMatrix;
use keystone_linalg::eigen::sym_eigen;
use keystone_linalg::gemm::matmul;
use keystone_linalg::qr::QrFactorization;
use keystone_linalg::rng::XorShiftRng;
use keystone_linalg::svd::pca_via_covariance;
use keystone_linalg::tsvd::{truncated_svd, TsvdOptions};

use super::INFEASIBLE_COST;

/// Fitted PCA projection.
#[derive(Clone)]
pub struct PcaModel {
    /// Training mean.
    pub mean: Vec<f64>,
    /// Principal components, `d × k`.
    pub components: DenseMatrix,
}

impl PcaModel {
    /// Projects one vector.
    pub fn project(&self, x: &[f64]) -> Vec<f64> {
        let centered: Vec<f64> = x.iter().zip(&self.mean).map(|(a, b)| a - b).collect();
        self.components.tr_matvec(&centered)
    }
}

impl Transformer<Vec<f64>, Vec<f64>> for PcaModel {
    fn apply(&self, x: &Vec<f64>) -> Vec<f64> {
        self.project(x)
    }
    fn name(&self) -> String {
        "PCAModel".into()
    }
}

/// Row-wise PCA over descriptor matrices.
#[derive(Clone)]
pub struct DescriptorPcaModel {
    inner: PcaModel,
}

impl Transformer<DenseMatrix, DenseMatrix> for DescriptorPcaModel {
    fn apply(&self, rows: &DenseMatrix) -> DenseMatrix {
        let k = self.inner.components.cols();
        let mut out = DenseMatrix::zeros(rows.rows(), k);
        for i in 0..rows.rows() {
            out.row_mut(i)
                .copy_from_slice(&self.inner.project(rows.row(i)));
        }
        out
    }
    fn name(&self) -> String {
        "ReduceDimensions".into()
    }
}

// ---------------------------------------------------------------------------
// Fitting kernels (shared by the physical operators and the Table 2 bench)
// ---------------------------------------------------------------------------

/// Exact PCA on a local matrix via the covariance eigendecomposition.
pub fn fit_local_exact(x: &DenseMatrix, k: usize) -> PcaModel {
    let mean = x.col_means();
    let mut centered = x.clone();
    centered.center_rows(&mean);
    let components = pca_via_covariance(&centered, k.min(x.cols()));
    PcaModel { mean, components }
}

/// Approximate PCA on a local matrix via randomized truncated SVD.
pub fn fit_local_tsvd(x: &DenseMatrix, k: usize, seed: u64) -> PcaModel {
    let mean = x.col_means();
    let mut centered = x.clone();
    centered.center_rows(&mean);
    let dec = truncated_svd(
        &centered,
        k.min(x.cols()),
        TsvdOptions {
            seed,
            ..Default::default()
        },
    );
    PcaModel {
        mean,
        components: dec.v,
    }
}

/// Exact PCA over a distributed collection: per-partition `(n, Σx, XᵀX)`
/// tree-aggregated, covariance formed and eigendecomposed on the driver.
pub fn fit_dist_exact(data: &DistCollection<Vec<f64>>, k: usize) -> PcaModel {
    let d = data.iter().next().map_or(0, |x| x.len());
    let partial = data.map_reduce_partitions(
        |part| {
            let mut sum = vec![0.0; d];
            let mut g = DenseMatrix::zeros(d, d);
            for x in part {
                for (s, &v) in sum.iter_mut().zip(x) {
                    *s += v;
                }
                for i in 0..d {
                    let xi = x[i];
                    if xi == 0.0 {
                        continue;
                    }
                    let row = &mut g.data_mut()[i * d..(i + 1) * d];
                    for (j, &xj) in x.iter().enumerate().skip(i) {
                        row[j] += xi * xj;
                    }
                }
            }
            (part.len() as f64, sum, g)
        },
        |(n1, mut s1, mut g1), (n2, s2, g2)| {
            for (a, b) in s1.iter_mut().zip(&s2) {
                *a += b;
            }
            g1 += &g2;
            (n1 + n2, s1, g1)
        },
    );
    let Some((n, sum, g)) = partial else {
        return PcaModel {
            mean: vec![],
            components: DenseMatrix::zeros(0, 0),
        };
    };
    let mean: Vec<f64> = sum.iter().map(|s| s / n).collect();
    // cov = (XᵀX)/n − μμᵀ, symmetrized from the upper triangle.
    let mut cov = DenseMatrix::zeros(d, d);
    for i in 0..d {
        for j in i..d {
            let v = g.get(i, j) / n - mean[i] * mean[j];
            cov.set(i, j, v);
            cov.set(j, i, v);
        }
    }
    let components = sym_eigen(&cov).top_k(k.min(d));
    PcaModel { mean, components }
}

/// Approximate distributed PCA: randomized range finder with distributed
/// passes (`Y = XᵀX Ω` style power iterations), small factorization on the
/// driver.
pub fn fit_dist_tsvd(
    data: &DistCollection<Vec<f64>>,
    k: usize,
    power_iters: usize,
    seed: u64,
) -> PcaModel {
    let d = data.iter().next().map_or(0, |x| x.len());
    let n = data.count().max(1) as f64;
    let k = k.min(d);
    let l = (k + 8).min(d);
    // Mean (one pass).
    let sum = data
        .map_reduce_partitions(
            |part| {
                let mut s = vec![0.0; d];
                for x in part {
                    for (a, &v) in s.iter_mut().zip(x) {
                        *a += v;
                    }
                }
                s
            },
            |mut a, b| {
                for (x, y) in a.iter_mut().zip(&b) {
                    *x += y;
                }
                a
            },
        )
        .unwrap_or_else(|| vec![0.0; d]);
    let mean: Vec<f64> = sum.iter().map(|s| s / n).collect();

    let mut rng = XorShiftRng::new(seed);
    let mut omega = DenseMatrix::from_fn(d, l, |_, _| rng.next_gaussian());
    // Power iterations on the covariance: Ω ← orth(Cov · Ω), where
    // Cov·Ω is computed in one distributed pass per iteration.
    for _ in 0..power_iters.max(1) {
        let mean_c = mean.clone();
        let om = omega.clone();
        let y = data
            .map_reduce_partitions(
                |part| {
                    let mut acc = DenseMatrix::zeros(d, l);
                    for x in part {
                        let xc: Vec<f64> = x.iter().zip(&mean_c).map(|(a, b)| a - b).collect();
                        // t = xcᵀ Ω (length l), acc += xc ⊗ t.
                        let t = om.tr_matvec(&xc);
                        for (i, &xv) in xc.iter().enumerate() {
                            if xv == 0.0 {
                                continue;
                            }
                            let row = acc.row_mut(i);
                            for (r, &tv) in row.iter_mut().zip(&t) {
                                *r += xv * tv;
                            }
                        }
                    }
                    acc
                },
                |mut a, b| {
                    a += &b;
                    a
                },
            )
            .unwrap_or_else(|| DenseMatrix::zeros(d, l));
        omega = QrFactorization::new(y).q();
    }
    // Project covariance into the basis: B = Qᵀ Cov Q (small l×l), then
    // eigendecompose. Cov Q was the last pre-orthonormalization product; we
    // recompute via one more pass folded into the loop above by simply
    // using the final Q's Rayleigh quotient on a sample — cheaper: use the
    // relation Cov Q ≈ Y R⁻¹... For clarity we take one more pass:
    let mean_c = mean.clone();
    let q = omega.clone();
    let cov_q = data
        .map_reduce_partitions(
            |part| {
                let mut acc = DenseMatrix::zeros(d, l);
                for x in part {
                    let xc: Vec<f64> = x.iter().zip(&mean_c).map(|(a, b)| a - b).collect();
                    let t = q.tr_matvec(&xc);
                    for (i, &xv) in xc.iter().enumerate() {
                        if xv == 0.0 {
                            continue;
                        }
                        let row = acc.row_mut(i);
                        for (r, &tv) in row.iter_mut().zip(&t) {
                            *r += xv * tv;
                        }
                    }
                }
                acc
            },
            |mut a, b| {
                a += &b;
                a
            },
        )
        .unwrap_or_else(|| DenseMatrix::zeros(d, l));
    let small = matmul(&omega.transpose(), &cov_q); // l × l
                                                    // Symmetrize against numerical drift.
    let smallt = small.transpose();
    let mut sym = small;
    sym += &smallt;
    sym.scale_inplace(0.5);
    let eig = sym_eigen(&sym);
    let top = eig.top_k(k);
    let components = matmul(&omega, &top);
    PcaModel { mean, components }
}

// ---------------------------------------------------------------------------
// The optimizable operators
// ---------------------------------------------------------------------------

/// Optimizable PCA over vector records.
#[derive(Debug, Clone)]
pub struct Pca {
    /// Output dimensionality.
    pub k: usize,
    /// Randomized-method seed.
    pub seed: u64,
    /// Power iterations for the approximate paths.
    pub power_iters: usize,
}

impl Pca {
    /// PCA to `k` components.
    pub fn new(k: usize) -> Self {
        Pca {
            k,
            seed: 0xACE,
            power_iters: 2,
        }
    }
}

struct LocalExactEst {
    k: usize,
}
impl Estimator<Vec<f64>, Vec<f64>> for LocalExactEst {
    fn fit(
        &self,
        data: &DistCollection<Vec<f64>>,
        _ctx: &ExecContext,
    ) -> Box<dyn Transformer<Vec<f64>, Vec<f64>>> {
        let rows = data.collect();
        let d = rows.first().map_or(0, |r| r.len());
        let mut m = DenseMatrix::zeros(rows.len(), d);
        for (i, r) in rows.iter().enumerate() {
            m.row_mut(i).copy_from_slice(r);
        }
        Box::new(fit_local_exact(&m, self.k))
    }
    fn name(&self) -> String {
        "PCA[local-svd]".into()
    }
}

struct LocalTsvdEst {
    k: usize,
    seed: u64,
}
impl Estimator<Vec<f64>, Vec<f64>> for LocalTsvdEst {
    fn fit(
        &self,
        data: &DistCollection<Vec<f64>>,
        _ctx: &ExecContext,
    ) -> Box<dyn Transformer<Vec<f64>, Vec<f64>>> {
        let rows = data.collect();
        let d = rows.first().map_or(0, |r| r.len());
        let mut m = DenseMatrix::zeros(rows.len(), d);
        for (i, r) in rows.iter().enumerate() {
            m.row_mut(i).copy_from_slice(r);
        }
        Box::new(fit_local_tsvd(&m, self.k, self.seed))
    }
    fn name(&self) -> String {
        "PCA[local-tsvd]".into()
    }
}

struct DistExactEst {
    k: usize,
}
impl Estimator<Vec<f64>, Vec<f64>> for DistExactEst {
    fn fit(
        &self,
        data: &DistCollection<Vec<f64>>,
        _ctx: &ExecContext,
    ) -> Box<dyn Transformer<Vec<f64>, Vec<f64>>> {
        Box::new(fit_dist_exact(data, self.k))
    }
    fn name(&self) -> String {
        "PCA[dist-svd]".into()
    }
}

struct DistTsvdEst {
    k: usize,
    seed: u64,
    power_iters: usize,
}
impl Estimator<Vec<f64>, Vec<f64>> for DistTsvdEst {
    fn fit(
        &self,
        data: &DistCollection<Vec<f64>>,
        _ctx: &ExecContext,
    ) -> Box<dyn Transformer<Vec<f64>, Vec<f64>>> {
        Box::new(fit_dist_tsvd(data, self.k, self.power_iters, self.seed))
    }
    fn name(&self) -> String {
        "PCA[dist-tsvd]".into()
    }
    fn weight(&self) -> u32 {
        (self.power_iters + 2) as u32
    }
}

/// Shape helper shared by the PCA cost models.
fn nd(stats: &[DataStats]) -> (f64, f64) {
    let s = stats.first().copied().unwrap_or_else(DataStats::empty);
    (s.count.max(1) as f64, s.dims.max(1.0))
}

impl OptimizableEstimator<Vec<f64>, Vec<f64>> for Pca {
    fn options(&self) -> Vec<EstimatorOption<Vec<f64>, Vec<f64>>> {
        let k = self.k as f64;
        let kk = self.k;
        let seed = self.seed;
        let q = self.power_iters;
        vec![
            EstimatorOption {
                name: "local-svd".into(),
                cost: Box::new(move |stats, r: &ResourceDesc| {
                    let (n, d) = nd(stats);
                    if 8.0 * n * d > r.mem_per_worker as f64 * 0.5 {
                        return CostProfile::compute(INFEASIBLE_COST);
                    }
                    CostProfile {
                        flops: 2.0 * n * d * d + d * d * d,
                        bytes: 8.0 * n * d,
                        network: 8.0 * n * d,
                        barriers: 1.0,
                    }
                }),
                op: Box::new(LocalExactEst { k: kk }),
            },
            EstimatorOption {
                name: "local-tsvd".into(),
                cost: Box::new(move |stats, r: &ResourceDesc| {
                    let (n, d) = nd(stats);
                    if 8.0 * n * d > r.mem_per_worker as f64 * 0.5 {
                        return CostProfile::compute(INFEASIBLE_COST);
                    }
                    let l = k + 8.0;
                    CostProfile {
                        flops: 2.0 * (q as f64 + 2.0) * n * d * l + n * l * l,
                        bytes: 8.0 * n * d,
                        network: 8.0 * n * d,
                        barriers: 1.0,
                    }
                }),
                op: Box::new(LocalTsvdEst { k: kk, seed }),
            },
            EstimatorOption {
                name: "dist-svd".into(),
                cost: Box::new(move |stats, r: &ResourceDesc| {
                    let (n, d) = nd(stats);
                    let w = r.workers.max(1) as f64;
                    CostProfile {
                        flops: n * d * d / w + 8.0 * d * d * d,
                        bytes: 8.0 * (n * d / w + d * d),
                        network: 8.0 * d * d * w.log2().max(1.0),
                        barriers: 1.0,
                    }
                }),
                op: Box::new(DistExactEst { k: kk }),
            },
            EstimatorOption {
                name: "dist-tsvd".into(),
                cost: Box::new(move |stats, r: &ResourceDesc| {
                    let (n, d) = nd(stats);
                    let w = r.workers.max(1) as f64;
                    let l = k + 8.0;
                    let passes = q as f64 + 2.0;
                    CostProfile {
                        flops: 4.0 * passes * n * d * l / w + l * l * l,
                        bytes: 8.0 * n * d / w,
                        network: 8.0 * passes * d * l * w.log2().max(1.0),
                        barriers: passes,
                    }
                }),
                op: Box::new(DistTsvdEst {
                    k: kk,
                    seed,
                    power_iters: q,
                }),
            },
        ]
    }

    fn default_index(&self) -> usize {
        2 // dist-svd: the safe exact default
    }

    fn name(&self) -> String {
        "PCA".into()
    }
}

/// PCA over per-record descriptor matrices (the image pipelines'
/// `ColumnSampler → PCA → ReduceDimensions` fused into one estimator:
/// descriptor rows are subsampled internally before fitting).
#[derive(Debug, Clone)]
pub struct DescriptorPca {
    /// Output dimensionality.
    pub k: usize,
    /// Cap on descriptor rows gathered for fitting.
    pub max_samples: usize,
    /// Randomized-method seed.
    pub seed: u64,
}

impl DescriptorPca {
    /// PCA to `k` components over at most 20k sampled descriptors.
    pub fn new(k: usize) -> Self {
        DescriptorPca {
            k,
            max_samples: 20_000,
            seed: 0xACE,
        }
    }
}

impl Estimator<DenseMatrix, DenseMatrix> for DescriptorPca {
    fn fit(
        &self,
        data: &DistCollection<DenseMatrix>,
        _ctx: &ExecContext,
    ) -> Box<dyn Transformer<DenseMatrix, DenseMatrix>> {
        let mut rows: Vec<Vec<f64>> = Vec::new();
        'outer: for m in data.iter() {
            for i in 0..m.rows() {
                rows.push(m.row(i).to_vec());
                if rows.len() >= self.max_samples {
                    break 'outer;
                }
            }
        }
        let d = rows.first().map_or(0, |r| r.len());
        let mut mat = DenseMatrix::zeros(rows.len(), d);
        for (i, r) in rows.iter().enumerate() {
            mat.row_mut(i).copy_from_slice(r);
        }
        // Sampled rows are modest: exact local PCA unless k is small
        // relative to d, where the randomized method is clearly cheaper.
        let inner = if self.k * 4 < d && rows.len() > 512 {
            fit_local_tsvd(&mat, self.k, self.seed)
        } else {
            fit_local_exact(&mat, self.k)
        };
        Box::new(DescriptorPcaModel { inner })
    }

    fn name(&self) -> String {
        "PCA".into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Data stretched along a known direction.
    fn anisotropic(n: usize, d: usize, seed: u64) -> Vec<Vec<f64>> {
        let mut rng = XorShiftRng::new(seed);
        (0..n)
            .map(|_| {
                let main = rng.next_gaussian() * 10.0;
                (0..d)
                    .map(|j| {
                        let dir = if j == 0 { 1.0 } else { 0.5 / (j as f64) };
                        main * dir + rng.next_gaussian() * 0.1 + 3.0
                    })
                    .collect()
            })
            .collect()
    }

    fn to_matrix(rows: &[Vec<f64>]) -> DenseMatrix {
        let d = rows[0].len();
        let mut m = DenseMatrix::zeros(rows.len(), d);
        for (i, r) in rows.iter().enumerate() {
            m.row_mut(i).copy_from_slice(r);
        }
        m
    }

    /// Captured variance of the projection (should be ~total for k=1 here).
    fn captured_variance(model: &PcaModel, rows: &[Vec<f64>]) -> f64 {
        let projs: Vec<Vec<f64>> = rows.iter().map(|r| model.project(r)).collect();
        let k = projs[0].len();
        let n = projs.len() as f64;
        let mut var = 0.0;
        for c in 0..k {
            let mean: f64 = projs.iter().map(|p| p[c]).sum::<f64>() / n;
            var += projs.iter().map(|p| (p[c] - mean).powi(2)).sum::<f64>() / n;
        }
        var
    }

    #[test]
    fn all_four_implementations_agree_on_captured_variance() {
        let rows = anisotropic(400, 6, 1);
        let m = to_matrix(&rows);
        let dist = DistCollection::from_vec(rows.clone(), 4);
        let models = [
            fit_local_exact(&m, 2),
            fit_local_tsvd(&m, 2, 7),
            fit_dist_exact(&dist, 2),
            fit_dist_tsvd(&dist, 2, 3, 7),
        ];
        let exact_var = captured_variance(&models[0], &rows);
        for (i, model) in models.iter().enumerate() {
            let v = captured_variance(model, &rows);
            assert!(
                (v - exact_var).abs() < 0.02 * exact_var,
                "impl {}: variance {} vs exact {}",
                i,
                v,
                exact_var
            );
            assert_eq!(model.components.shape(), (6, 2));
        }
    }

    #[test]
    fn dist_exact_matches_local_exact_components() {
        let rows = anisotropic(200, 4, 2);
        let local = fit_local_exact(&to_matrix(&rows), 2);
        let dist = fit_dist_exact(&DistCollection::from_vec(rows, 3), 2);
        // Components match up to sign.
        for c in 0..2 {
            let a = local.components.col(c);
            let b = dist.components.col(c);
            let dot: f64 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
            assert!(
                dot.abs() > 0.999,
                "component {} misaligned: |dot| = {}",
                c,
                dot.abs()
            );
        }
    }

    #[test]
    fn projection_removes_mean() {
        let rows = anisotropic(300, 5, 3);
        let model = fit_dist_exact(&DistCollection::from_vec(rows.clone(), 2), 3);
        let projs: Vec<Vec<f64>> = rows.iter().map(|r| model.project(r)).collect();
        for c in 0..3 {
            let mean: f64 = projs.iter().map(|p| p[c]).sum::<f64>() / projs.len() as f64;
            assert!(mean.abs() < 1e-6, "projected mean {} for comp {}", mean, c);
        }
    }

    #[test]
    fn optimizable_pca_prefers_approximate_for_small_k_large_d() {
        // Table 2 regime: n=1e6, d=4096, k=16 -> dist-tsvd.
        let pca = Pca::new(16);
        let stats = vec![DataStats {
            count: 1_000_000,
            bytes_per_record: 4096.0 * 8.0,
            dims: 4096.0,
            nnz_per_record: 4096.0,
            is_sparse: false,
        }];
        let r = keystone_dataflow::cluster::ClusterProfile::R3_4xlarge.descriptor(16);
        let best = pca
            .options()
            .into_iter()
            .min_by(|a, b| {
                (a.cost)(&stats, &r)
                    .estimated_seconds(&r)
                    .partial_cmp(&(b.cost)(&stats, &r).estimated_seconds(&r))
                    .expect("finite")
            })
            .map(|o| o.name)
            .expect("non-empty");
        assert_eq!(best, "dist-tsvd");
    }

    #[test]
    fn optimizable_pca_prefers_exact_for_large_k() {
        // k close to d: approximate loses its advantage (Table 2, k=1024).
        let pca = Pca::new(1024);
        let stats = vec![DataStats {
            count: 10_000,
            bytes_per_record: 4096.0 * 8.0,
            dims: 4096.0,
            nnz_per_record: 4096.0,
            is_sparse: false,
        }];
        let r = keystone_dataflow::cluster::ClusterProfile::R3_4xlarge.descriptor(16);
        let opts = pca.options();
        let tsvd_cost = opts
            .iter()
            .find(|o| o.name == "local-tsvd")
            .map(|o| (o.cost)(&stats, &r).estimated_seconds(&r))
            .expect("tsvd option");
        let svd_cost = opts
            .iter()
            .find(|o| o.name == "local-svd")
            .map(|o| (o.cost)(&stats, &r).estimated_seconds(&r))
            .expect("svd option");
        // With k ~ d/4, the gap must be small or reversed vs the k=16 case.
        assert!(svd_cost < tsvd_cost * 4.0);
    }

    #[test]
    fn local_infeasible_on_huge_data() {
        let pca = Pca::new(8);
        let stats = vec![DataStats {
            count: 10_000_000_000,
            bytes_per_record: 8.0 * 4096.0,
            dims: 4096.0,
            nnz_per_record: 4096.0,
            is_sparse: false,
        }];
        let r = keystone_dataflow::cluster::ClusterProfile::R3_4xlarge.descriptor(16);
        let opts = pca.options();
        let local = opts.iter().find(|o| o.name == "local-svd").expect("local");
        assert!((local.cost)(&stats, &r).flops >= INFEASIBLE_COST);
    }

    #[test]
    fn descriptor_pca_projects_rows() {
        let rows = anisotropic(100, 8, 4);
        let mats: Vec<DenseMatrix> = rows.chunks(10).map(to_matrix).collect();
        let data = DistCollection::from_vec(mats.clone(), 2);
        let ctx = ExecContext::default_cluster();
        let model = DescriptorPca::new(3).fit(&data, &ctx);
        let out = model.apply(&mats[0]);
        assert_eq!(out.shape(), (10, 3));
    }
}
