//! Random Fourier features (Rahimi & Recht) — the kernel approximation the
//! TIMIT pipeline uses to turn a kernel SVM into a linear solve (§5.1).
//!
//! `z(x) = sqrt(2/D) · cos(W x + b)` with `W ~ N(0, γ)` approximates the RBF
//! kernel. `W` entries are derived on demand from a hash of `(seed, i, j)`,
//! so the operator needs no knowledge of the input dimension up front and
//! several blocks with different seeds can be merged with `gather`.

use keystone_core::operator::Transformer;

/// Random cosine feature block.
#[derive(Debug, Clone, Copy)]
pub struct RandomFeatures {
    /// Output features `D` of this block.
    pub out_dim: usize,
    /// Kernel bandwidth multiplier: `W ~ N(0, gamma²)`.
    pub gamma: f64,
    /// Block seed (different seeds give independent blocks).
    pub seed: u64,
}

impl RandomFeatures {
    /// A block of `out_dim` features with unit bandwidth.
    pub fn new(out_dim: usize, seed: u64) -> Self {
        RandomFeatures {
            out_dim,
            gamma: 1.0,
            seed,
        }
    }

    #[inline]
    fn hash2(&self, i: u64, j: u64) -> u64 {
        let mut z = self
            .seed
            .wrapping_add(i.wrapping_mul(0x9E3779B97F4A7C15))
            .wrapping_add(j.wrapping_mul(0xD1B54A32D192ED03));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Deterministic standard normal for weight `(i, j)`.
    #[inline]
    fn w(&self, i: usize, j: usize) -> f64 {
        let h1 = self.hash2(i as u64, 2 * j as u64);
        let h2 = self.hash2(i as u64, 2 * j as u64 + 1);
        let u1 = ((h1 >> 11) as f64 / (1u64 << 53) as f64).max(1e-12);
        let u2 = (h2 >> 11) as f64 / (1u64 << 53) as f64;
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }

    /// Deterministic uniform phase for output `i`.
    #[inline]
    fn phase(&self, i: usize) -> f64 {
        let h = self.hash2(i as u64, u64::MAX);
        (h >> 11) as f64 / (1u64 << 53) as f64 * 2.0 * std::f64::consts::PI
    }
}

impl Transformer<Vec<f64>, Vec<f64>> for RandomFeatures {
    fn apply(&self, x: &Vec<f64>) -> Vec<f64> {
        let scale = (2.0 / self.out_dim as f64).sqrt();
        (0..self.out_dim)
            .map(|i| {
                let mut proj = self.phase(i);
                for (j, &xv) in x.iter().enumerate() {
                    proj += self.gamma * self.w(i, j) * xv;
                }
                scale * proj.cos()
            })
            .collect()
    }
    fn name(&self) -> String {
        "RandomFeatures".into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use keystone_linalg::rng::XorShiftRng;

    #[test]
    fn output_shape_and_determinism() {
        let rf = RandomFeatures::new(64, 1);
        let x = vec![0.5, -1.0, 2.0];
        let a = rf.apply(&x);
        let b = rf.apply(&x);
        assert_eq!(a.len(), 64);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_give_different_features() {
        let x = vec![1.0, 1.0];
        let a = RandomFeatures::new(32, 1).apply(&x);
        let b = RandomFeatures::new(32, 2).apply(&x);
        assert_ne!(a, b);
    }

    #[test]
    fn values_bounded_by_scale() {
        let rf = RandomFeatures::new(16, 3);
        let x = vec![3.0, -2.0, 0.5, 1.0];
        let z = rf.apply(&x);
        let bound = (2.0 / 16.0f64).sqrt() + 1e-12;
        assert!(z.iter().all(|v| v.abs() <= bound));
    }

    #[test]
    fn kernel_approximation_quality() {
        // E[z(x)·z(y)] ≈ exp(-γ²||x−y||²/2) for RBF.
        let gamma = 0.7;
        let rf = RandomFeatures {
            out_dim: 4096,
            gamma,
            seed: 5,
        };
        let mut rng = XorShiftRng::new(9);
        let mut worst = 0.0f64;
        for _ in 0..5 {
            let x: Vec<f64> = (0..4).map(|_| rng.next_gaussian() * 0.5).collect();
            let y: Vec<f64> = (0..4).map(|_| rng.next_gaussian() * 0.5).collect();
            let zx = rf.apply(&x);
            let zy = rf.apply(&y);
            let approx: f64 = zx.iter().zip(&zy).map(|(a, b)| a * b).sum();
            let dist2: f64 = x.iter().zip(&y).map(|(a, b)| (a - b).powi(2)).sum();
            let exact = (-gamma * gamma * dist2 / 2.0).exp();
            worst = worst.max((approx - exact).abs());
        }
        assert!(worst < 0.08, "kernel approximation error {}", worst);
    }

    #[test]
    fn self_kernel_is_one() {
        let rf = RandomFeatures {
            out_dim: 4096,
            gamma: 1.0,
            seed: 6,
        };
        let x = vec![0.3, 0.1, -0.7];
        let z = rf.apply(&x);
        let k: f64 = z.iter().map(|v| v * v).sum();
        assert!((k - 1.0).abs() < 0.08, "self-kernel {}", k);
    }
}
