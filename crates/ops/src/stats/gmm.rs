//! Diagonal-covariance Gaussian mixture models via EM, k-means-initialized.
//! The GMM is the codebook underneath Fisher-vector encoding (Table 4's
//! image pipelines).

use keystone_core::context::ExecContext;
use keystone_core::operator::{Estimator, Transformer};
use keystone_dataflow::collection::DistCollection;
use keystone_linalg::dense::DenseMatrix;

use super::kmeans::KMeans;

/// GMM estimator configuration.
#[derive(Debug, Clone, Copy)]
pub struct Gmm {
    /// Mixture components.
    pub k: usize,
    /// EM iterations.
    pub iters: usize,
    /// Variance floor.
    pub var_floor: f64,
    /// Cap on rows gathered for fitting.
    pub max_samples: usize,
    /// Seed.
    pub seed: u64,
}

impl Gmm {
    /// `k` components, 25 EM iterations.
    pub fn new(k: usize) -> Self {
        Gmm {
            k,
            iters: 25,
            var_floor: 1e-4,
            max_samples: 20_000,
            seed: 0x6A,
        }
    }
}

/// Fitted diagonal GMM.
#[derive(Debug, Clone)]
pub struct GmmModel {
    /// Mixture weights, length `k`.
    pub weights: Vec<f64>,
    /// Component means, `k × d`.
    pub means: DenseMatrix,
    /// Component variances (diagonal), `k × d`.
    pub vars: DenseMatrix,
}

impl GmmModel {
    /// Number of components.
    pub fn k(&self) -> usize {
        self.weights.len()
    }

    /// Feature dimensionality.
    pub fn d(&self) -> usize {
        self.means.cols()
    }

    /// Log density of `x` under component `c` (up to the shared constant).
    fn log_component(&self, c: usize, x: &[f64]) -> f64 {
        let mut log_det = 0.0;
        let mut maha = 0.0;
        for (j, &xv) in x.iter().enumerate() {
            let var = self.vars.get(c, j);
            log_det += var.ln();
            let diff = xv - self.means.get(c, j);
            maha += diff * diff / var;
        }
        -0.5 * (log_det + maha)
    }

    /// Posterior responsibilities `γ_c(x)`.
    pub fn posteriors(&self, x: &[f64]) -> Vec<f64> {
        let k = self.k();
        let mut logp: Vec<f64> = (0..k)
            .map(|c| self.weights[c].max(1e-300).ln() + self.log_component(c, x))
            .collect();
        let max = logp.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let mut sum = 0.0;
        for lp in &mut logp {
            *lp = (*lp - max).exp();
            sum += *lp;
        }
        let inv = 1.0 / sum.max(1e-300);
        logp.iter().map(|p| p * inv).collect()
    }

    /// Average log-likelihood of rows of `x` (used to verify EM ascends).
    pub fn avg_log_likelihood(&self, x: &DenseMatrix) -> f64 {
        let k = self.k();
        let mut total = 0.0;
        for i in 0..x.rows() {
            let row = x.row(i);
            let logs: Vec<f64> = (0..k)
                .map(|c| self.weights[c].max(1e-300).ln() + self.log_component(c, row))
                .collect();
            let max = logs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            let s: f64 = logs.iter().map(|l| (l - max).exp()).sum();
            total += max + s.ln();
        }
        total / x.rows().max(1) as f64
    }
}

impl Transformer<Vec<f64>, Vec<f64>> for GmmModel {
    fn apply(&self, x: &Vec<f64>) -> Vec<f64> {
        self.posteriors(x)
    }
    fn name(&self) -> String {
        "GMMModel".into()
    }
}

/// Fits a diagonal GMM on the rows of a local matrix.
pub fn fit_gmm(cfg: &Gmm, x: &DenseMatrix) -> GmmModel {
    let (n, d) = x.shape();
    assert!(n > 0, "GMM needs data");
    let k = cfg.k.min(n);

    // Initialize from k-means.
    let means = KMeans {
        k,
        iters: 10,
        seed: cfg.seed,
    }
    .fit(x);
    // Global variance as the starting spread.
    let gmean = x.col_means();
    let mut gvar = vec![0.0; d];
    for i in 0..n {
        for (j, &v) in x.row(i).iter().enumerate() {
            let diff = v - gmean[j];
            gvar[j] += diff * diff;
        }
    }
    for v in &mut gvar {
        *v = (*v / n as f64).max(cfg.var_floor);
    }
    let mut model = GmmModel {
        weights: vec![1.0 / k as f64; k],
        means,
        vars: DenseMatrix::from_fn(k, d, |_, j| gvar[j]),
    };

    let mut resp = DenseMatrix::zeros(n, k);
    for _ in 0..cfg.iters {
        // E-step.
        for i in 0..n {
            let post = model.posteriors(x.row(i));
            resp.row_mut(i).copy_from_slice(&post);
        }
        // M-step.
        for c in 0..k {
            let nk: f64 = (0..n).map(|i| resp.get(i, c)).sum();
            let nk_safe = nk.max(1e-10);
            model.weights[c] = nk / n as f64;
            for j in 0..d {
                let mu: f64 = (0..n).map(|i| resp.get(i, c) * x.get(i, j)).sum::<f64>() / nk_safe;
                model.means.set(c, j, mu);
            }
            for j in 0..d {
                let mu = model.means.get(c, j);
                let var: f64 = (0..n)
                    .map(|i| {
                        let diff = x.get(i, j) - mu;
                        resp.get(i, c) * diff * diff
                    })
                    .sum::<f64>()
                    / nk_safe;
                model.vars.set(c, j, var.max(cfg.var_floor));
            }
        }
    }
    model
}

/// Gathers up to `max` descriptor rows from a collection of matrices.
pub fn gather_rows(data: &DistCollection<DenseMatrix>, max: usize) -> DenseMatrix {
    let mut rows: Vec<Vec<f64>> = Vec::new();
    'outer: for m in data.iter() {
        for i in 0..m.rows() {
            rows.push(m.row(i).to_vec());
            if rows.len() >= max {
                break 'outer;
            }
        }
    }
    let d = rows.first().map_or(0, |r| r.len());
    let mut out = DenseMatrix::zeros(rows.len(), d);
    for (i, r) in rows.iter().enumerate() {
        out.row_mut(i).copy_from_slice(r);
    }
    out
}

impl Estimator<Vec<f64>, Vec<f64>> for Gmm {
    fn fit(
        &self,
        data: &DistCollection<Vec<f64>>,
        _ctx: &ExecContext,
    ) -> Box<dyn Transformer<Vec<f64>, Vec<f64>>> {
        let rows = data.sample(self.max_samples, self.seed);
        let d = rows.first().map_or(0, |r| r.len());
        let mut m = DenseMatrix::zeros(rows.len(), d);
        for (i, r) in rows.iter().enumerate() {
            m.row_mut(i).copy_from_slice(r);
        }
        Box::new(fit_gmm(self, &m))
    }

    fn name(&self) -> String {
        "GMM".into()
    }

    fn weight(&self) -> u32 {
        self.iters as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use keystone_linalg::rng::XorShiftRng;

    fn two_blobs(per: usize, seed: u64) -> DenseMatrix {
        let mut rng = XorShiftRng::new(seed);
        DenseMatrix::from_fn(per * 2, 2, |i, j| {
            let c = if i < per { -4.0 } else { 4.0 };
            let base = if j == 0 { c } else { 0.0 };
            base + rng.next_gaussian() * 0.5
        })
    }

    #[test]
    fn recovers_two_components() {
        let x = two_blobs(100, 1);
        let model = fit_gmm(&Gmm::new(2), &x);
        let mut centers: Vec<f64> = (0..2).map(|c| model.means.get(c, 0)).collect();
        centers.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        assert!((centers[0] + 4.0).abs() < 0.5, "left {}", centers[0]);
        assert!((centers[1] - 4.0).abs() < 0.5, "right {}", centers[1]);
        assert!((model.weights[0] - 0.5).abs() < 0.1);
    }

    #[test]
    fn posteriors_sum_to_one_and_separate() {
        let x = two_blobs(80, 2);
        let model = fit_gmm(&Gmm::new(2), &x);
        let p_left = model.posteriors(&[-4.0, 0.0]);
        let p_right = model.posteriors(&[4.0, 0.0]);
        assert!((p_left.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        // The dominant component must differ between the two probes.
        let arg = |p: &[f64]| if p[0] > p[1] { 0 } else { 1 };
        assert_ne!(arg(&p_left), arg(&p_right));
        assert!(p_left.iter().cloned().fold(0.0, f64::max) > 0.99);
    }

    #[test]
    fn em_increases_likelihood() {
        let x = two_blobs(60, 3);
        let short = fit_gmm(
            &Gmm {
                iters: 1,
                ..Gmm::new(2)
            },
            &x,
        );
        let long = fit_gmm(
            &Gmm {
                iters: 25,
                ..Gmm::new(2)
            },
            &x,
        );
        assert!(
            long.avg_log_likelihood(&x) >= short.avg_log_likelihood(&x) - 1e-9,
            "EM must not decrease likelihood"
        );
    }

    #[test]
    fn variance_floor_enforced() {
        // Identical points would give zero variance without the floor.
        let x = DenseMatrix::from_fn(20, 2, |_, _| 1.0);
        let model = fit_gmm(&Gmm::new(2), &x);
        for c in 0..model.k() {
            for j in 0..2 {
                assert!(model.vars.get(c, j) >= 1e-4);
            }
        }
    }

    #[test]
    fn estimator_interface_over_collection() {
        let rows: Vec<Vec<f64>> = (0..100)
            .map(|i| vec![if i < 50 { -4.0 } else { 4.0 }, 0.1 * (i % 7) as f64])
            .collect();
        let data = DistCollection::from_vec(rows, 4);
        let ctx = ExecContext::default_cluster();
        let model = Gmm::new(2).fit(&data, &ctx);
        let p = model.apply(&vec![-4.0, 0.3]);
        assert_eq!(p.len(), 2);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn gather_rows_caps() {
        let mats = vec![DenseMatrix::zeros(10, 3); 5];
        let data = DistCollection::from_vec(mats, 2);
        let g = gather_rows(&data, 25);
        assert_eq!(g.shape(), (25, 3));
    }
}
