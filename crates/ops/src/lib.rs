//! # keystone-ops
//!
//! The KeystoneML Standard Library: the logical ML operators the paper's
//! pipelines are built from (Table 4).
//!
//! * [`text`] — `Trim`, `LowerCase`, `Tokenizer`, `NGrams`, `TermFrequency`,
//!   `CommonSparseFeatures`, `HashingTF` (the Fig. 2 text pipeline).
//! * [`image`] — the `Image` type, `GrayScale`, the **optimizable**
//!   `Convolver` (separable / im2col-GEMM / FFT physical operators, Fig. 7),
//!   `Pooler`, `Windower`, `PatchExtractor`, `SymmetricRectifier`,
//!   simplified `Sift` and `Lcs` descriptors, `ZcaWhitener`.
//! * [`stats`] — the **optimizable** `PCA` (local/distributed ×
//!   exact/approximate, Table 2), `GMM`, `KMeans`, `FisherVector`,
//!   `RandomFeatures` (TIMIT kernel approximation), `StandardScaler`,
//!   `Normalizer`, `ColumnSampler`.
//! * [`eval`] — accuracy, top-k error, confusion matrices, mean average
//!   precision.

// Numeric kernels index multiple buffers in lockstep; indexed loops are the
// clearer idiom there.
#![allow(clippy::needless_range_loop)]

pub mod eval;
pub mod image;
pub mod stats;
pub mod text;
