//! Simplified dense SIFT descriptors.
//!
//! The real SIFT detector finds scale-space keypoints; the image pipelines
//! in the paper use *dense* SIFT — descriptors extracted on a regular grid —
//! which is what we implement: per grid patch, a 4×4 spatial histogram of
//! gradient orientations over 8 bins (128-dim), L2-normalized and clipped,
//! matching the descriptor's statistical shape.

use keystone_core::operator::Transformer;
use keystone_linalg::dense::DenseMatrix;

use super::Image;

/// Dense SIFT descriptor extractor (expects single-channel images; apply
/// [`super::GrayScale`] first).
#[derive(Clone, Copy)]
pub struct Sift {
    /// Patch edge in pixels (must be a multiple of 4).
    pub patch: usize,
    /// Stride between patch origins.
    pub stride: usize,
}

impl Default for Sift {
    fn default() -> Self {
        Sift {
            patch: 16,
            stride: 8,
        }
    }
}

/// Descriptor dimensionality: 4×4 cells × 8 orientations.
pub const SIFT_DIM: usize = 128;

impl Sift {
    fn descriptor(&self, img: &Image, x0: usize, y0: usize) -> [f64; SIFT_DIM] {
        let mut desc = [0.0; SIFT_DIM];
        let cell = self.patch / 4;
        for dy in 0..self.patch {
            for dx in 0..self.patch {
                let x = x0 + dx;
                let y = y0 + dy;
                // Central-difference gradient with clamped borders.
                let xm = img.get(x.saturating_sub(1), y, 0);
                let xp = img.get((x + 1).min(img.width() - 1), y, 0);
                let ym = img.get(x, y.saturating_sub(1), 0);
                let yp = img.get(x, (y + 1).min(img.height() - 1), 0);
                let gx = xp - xm;
                let gy = yp - ym;
                let mag = gx.hypot(gy);
                if mag == 0.0 {
                    continue;
                }
                let angle = gy.atan2(gx); // (-π, π]
                let bin = (((angle + std::f64::consts::PI) / (2.0 * std::f64::consts::PI) * 8.0)
                    as usize)
                    .min(7);
                let cx = (dx / cell).min(3);
                let cy = (dy / cell).min(3);
                desc[(cy * 4 + cx) * 8 + bin] += mag;
            }
        }
        // L2 normalize, clip at 0.2, renormalize (standard SIFT).
        let norm = desc.iter().map(|v| v * v).sum::<f64>().sqrt();
        if norm > 1e-12 {
            for v in &mut desc {
                *v = (*v / norm).min(0.2);
            }
            let norm2 = desc.iter().map(|v| v * v).sum::<f64>().sqrt();
            if norm2 > 1e-12 {
                for v in &mut desc {
                    *v /= norm2;
                }
            }
        }
        desc
    }
}

impl Transformer<Image, DenseMatrix> for Sift {
    fn apply(&self, img: &Image) -> DenseMatrix {
        assert!(
            self.patch.is_multiple_of(4),
            "SIFT patch must be a multiple of 4"
        );
        if img.width() < self.patch || img.height() < self.patch {
            return DenseMatrix::zeros(0, SIFT_DIM);
        }
        let mut descs = Vec::new();
        let mut y = 0;
        while y + self.patch <= img.height() {
            let mut x = 0;
            while x + self.patch <= img.width() {
                descs.push(self.descriptor(img, x, y));
                x += self.stride;
            }
            y += self.stride;
        }
        let mut out = DenseMatrix::zeros(descs.len(), SIFT_DIM);
        for (i, d) in descs.iter().enumerate() {
            out.row_mut(i).copy_from_slice(d);
        }
        out
    }
    fn name(&self) -> String {
        "SIFT".into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use keystone_linalg::rng::XorShiftRng;

    fn noise_image(n: usize, seed: u64) -> Image {
        let mut rng = XorShiftRng::new(seed);
        Image::new(n, n, 1, (0..n * n).map(|_| rng.next_f64()).collect())
    }

    #[test]
    fn descriptor_grid_shape() {
        let img = noise_image(32, 1);
        let d = Sift::default().apply(&img);
        // Origins at 0 and 8 and 16: (32-16)/8+1 = 3 per axis.
        assert_eq!(d.shape(), (9, SIFT_DIM));
    }

    #[test]
    fn descriptors_unit_norm() {
        let img = noise_image(16, 2);
        let d = Sift::default().apply(&img);
        for i in 0..d.rows() {
            let norm: f64 = d.row(i).iter().map(|v| v * v).sum::<f64>().sqrt();
            assert!((norm - 1.0).abs() < 1e-9, "norm {}", norm);
        }
    }

    #[test]
    fn flat_image_gives_zero_descriptor() {
        let img = Image::new(16, 16, 1, vec![3.0; 256]);
        let d = Sift::default().apply(&img);
        assert!(d.data().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn horizontal_edge_activates_vertical_gradient_bins() {
        // Top half dark, bottom half bright: gradient points in +y.
        let mut img = Image::zeros(16, 16, 1);
        for y in 8..16 {
            for x in 0..16 {
                img.set(x, y, 0, 10.0);
            }
        }
        let d = Sift::default().apply(&img);
        assert_eq!(d.rows(), 1);
        // angle = atan2(+g, 0) = π/2 -> bin floor((π/2+π)/2π*8) = 6.
        let row = d.row(0);
        let bin6: f64 = (0..16).map(|cell| row[cell * 8 + 6]).sum();
        let others: f64 = row.iter().sum::<f64>() - bin6;
        assert!(
            bin6 > others,
            "edge energy must land in bin 6: {} vs {}",
            bin6,
            others
        );
    }

    #[test]
    fn small_image_yields_no_descriptors() {
        let img = noise_image(8, 3);
        let d = Sift::default().apply(&img);
        assert_eq!(d.rows(), 0);
    }

    #[test]
    fn values_clipped_at_point_two_before_renorm() {
        let img = noise_image(16, 4);
        let d = Sift::default().apply(&img);
        // After clipping at 0.2 and renormalizing, no value can exceed
        // 0.2 / 0.2 = 1; realistically far below. Sanity bound:
        assert!(d.data().iter().all(|&v| v <= 1.0 + 1e-12));
    }
}
