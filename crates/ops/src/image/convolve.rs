//! The optimizable `Convolver` (§3, Fig. 7): one logical convolution, three
//! physical implementations —
//!
//! * **separable** matrix-vector scheme, `O(d·b·k·m² + b·k³)`, valid only
//!   when every filter is rank-1;
//! * **BLAS** im2col + GEMM, `O(d·b·k²·m²)`;
//! * **FFT**, `O(d·b·(6 n² log n + 4 n²))`, independent of `k`.
//!
//! where the image is `n×n×d`, filters are `k×k`, and `m = n − k + 1`.

use std::sync::Arc;

use keystone_core::operator::{OptimizableTransformer, Transformer, TransformerOption};
use keystone_core::record::DataStats;
use keystone_dataflow::cluster::ResourceDesc;
use keystone_dataflow::cost::CostProfile;
use keystone_linalg::dense::DenseMatrix;
use keystone_linalg::fft::{correlate2d_direct, correlate2d_fft};
use keystone_linalg::gemm::matmul;
use keystone_linalg::rng::XorShiftRng;
use keystone_linalg::svd::svd;

use super::Image;
use crate::stats::INFEASIBLE_COST;

/// A bank of `b` square filters, each `k × k`, shared across channels.
#[derive(Debug, Clone)]
pub struct FilterBank {
    filters: Vec<DenseMatrix>,
    k: usize,
}

impl FilterBank {
    /// Builds a bank from explicit filters.
    ///
    /// # Panics
    /// Panics on an empty bank or non-square / inconsistent filters.
    pub fn new(filters: Vec<DenseMatrix>) -> Self {
        assert!(!filters.is_empty(), "empty filter bank");
        let k = filters[0].rows();
        for f in &filters {
            assert_eq!(f.shape(), (k, k), "filters must be square, same size");
        }
        FilterBank { filters, k }
    }

    /// Random Gaussian filters (generally non-separable).
    pub fn random(count: usize, k: usize, seed: u64) -> Self {
        let mut rng = XorShiftRng::new(seed);
        let filters = (0..count)
            .map(|_| DenseMatrix::from_fn(k, k, |_, _| rng.next_gaussian()))
            .collect();
        FilterBank::new(filters)
    }

    /// Random rank-1 (separable) filters `u vᵀ`.
    pub fn random_separable(count: usize, k: usize, seed: u64) -> Self {
        let mut rng = XorShiftRng::new(seed);
        let filters = (0..count)
            .map(|_| {
                let u: Vec<f64> = (0..k).map(|_| rng.next_gaussian()).collect();
                let v: Vec<f64> = (0..k).map(|_| rng.next_gaussian()).collect();
                DenseMatrix::from_fn(k, k, |i, j| u[i] * v[j])
            })
            .collect();
        FilterBank::new(filters)
    }

    /// Number of filters `b`.
    pub fn len(&self) -> usize {
        self.filters.len()
    }

    /// Whether the bank is empty (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.filters.is_empty()
    }

    /// Filter edge `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// The filters.
    pub fn filters(&self) -> &[DenseMatrix] {
        &self.filters
    }

    /// True when every filter is numerically rank-1 (second singular value
    /// below `tol` relative to the first).
    pub fn is_separable(&self, tol: f64) -> bool {
        self.filters.iter().all(|f| {
            let s = svd(f).s;
            s.len() < 2 || s[1] <= tol * s[0].max(1e-300)
        })
    }

    /// Rank-1 factors `(u, v)` of each filter (valid when separable).
    fn rank1_factors(&self) -> Vec<(Vec<f64>, Vec<f64>)> {
        self.filters
            .iter()
            .map(|f| {
                let dec = svd(f);
                let s0 = dec.s[0];
                let u: Vec<f64> = dec.u.col(0).iter().map(|x| x * s0).collect();
                let v: Vec<f64> = dec.v.col(0).to_vec();
                (u, v)
            })
            .collect()
    }
}

fn output_side(img: &Image, k: usize) -> (usize, usize) {
    assert!(
        img.width() >= k && img.height() >= k,
        "filter larger than image"
    );
    (img.width() - k + 1, img.height() - k + 1)
}

/// im2col + GEMM physical implementation ("BLAS" in Fig. 7).
#[derive(Clone)]
pub struct ConvolverMatMul {
    bank: Arc<FilterBank>,
}

impl ConvolverMatMul {
    /// Builds the physical operator over a shared filter bank.
    pub fn from_bank(bank: Arc<FilterBank>) -> Self {
        ConvolverMatMul { bank }
    }
}

impl Transformer<Image, Image> for ConvolverMatMul {
    fn apply(&self, img: &Image) -> Image {
        let k = self.bank.k();
        let (mw, mh) = output_side(img, k);
        let b = self.bank.len();
        // Filter matrix: k² × b.
        let mut fmat = DenseMatrix::zeros(k * k, b);
        for (bi, f) in self.bank.filters().iter().enumerate() {
            for i in 0..k {
                for j in 0..k {
                    fmat.set(i * k + j, bi, f.get(i, j));
                }
            }
        }
        let mut out = Image::zeros(mw, mh, b);
        // Accumulate channel by channel: im2col (m² × k²) × fmat (k² × b).
        let mut cols = DenseMatrix::zeros(mw * mh, k * k);
        for c in 0..img.channels() {
            for oy in 0..mh {
                for ox in 0..mw {
                    let row = cols.row_mut(oy * mw + ox);
                    for i in 0..k {
                        for j in 0..k {
                            row[i * k + j] = img.get(ox + j, oy + i, c);
                        }
                    }
                }
            }
            let res = matmul(&cols, &fmat);
            for bi in 0..b {
                for oy in 0..mh {
                    for ox in 0..mw {
                        let v = out.get(ox, oy, bi) + res.get(oy * mw + ox, bi);
                        out.set(ox, oy, bi, v);
                    }
                }
            }
        }
        out
    }
    fn name(&self) -> String {
        "Convolver[blas]".into()
    }
}

/// FFT physical implementation.
#[derive(Clone)]
pub struct ConvolverFft {
    bank: Arc<FilterBank>,
}

impl ConvolverFft {
    /// Builds the physical operator over a shared filter bank.
    pub fn from_bank(bank: Arc<FilterBank>) -> Self {
        ConvolverFft { bank }
    }
}

impl Transformer<Image, Image> for ConvolverFft {
    fn apply(&self, img: &Image) -> Image {
        let k = self.bank.k();
        let (mw, mh) = output_side(img, k);
        assert_eq!(
            img.width(),
            img.height(),
            "FFT convolver requires square images"
        );
        let n = img.width();
        let b = self.bank.len();
        let mut out = Image::zeros(mw, mh, b);
        for (bi, f) in self.bank.filters().iter().enumerate() {
            let fdata: Vec<f64> = (0..k * k).map(|i| f.data()[i]).collect();
            for c in 0..img.channels() {
                let res = correlate2d_fft(img.plane(c), n, &fdata, k);
                for oy in 0..mh {
                    for ox in 0..mw {
                        let v = out.get(ox, oy, bi) + res[oy * mw + ox];
                        out.set(ox, oy, bi, v);
                    }
                }
            }
        }
        out
    }
    fn name(&self) -> String {
        "Convolver[fft]".into()
    }
}

/// Separable matrix-vector physical implementation.
#[derive(Clone)]
pub struct ConvolverSeparable {
    bank: Arc<FilterBank>,
    factors: Vec<(Vec<f64>, Vec<f64>)>,
}

impl ConvolverSeparable {
    /// Builds the physical operator over a shared filter bank, extracting
    /// the rank-1 factors once up front.
    pub fn from_bank(bank: Arc<FilterBank>) -> Self {
        let factors = bank.rank1_factors();
        ConvolverSeparable { bank, factors }
    }
}

impl Transformer<Image, Image> for ConvolverSeparable {
    fn apply(&self, img: &Image) -> Image {
        let k = self.bank.k();
        let (mw, mh) = output_side(img, k);
        let b = self.bank.len();
        let w = img.width();
        let mut out = Image::zeros(mw, mh, b);
        for (bi, (u, v)) in self.factors.iter().enumerate() {
            for c in 0..img.channels() {
                let plane = img.plane(c);
                // Horizontal pass with v: rows stay, columns shrink to mw.
                let mut horiz = vec![0.0; mw * img.height()];
                for y in 0..img.height() {
                    for ox in 0..mw {
                        let mut s = 0.0;
                        for (j, &vj) in v.iter().enumerate() {
                            s += plane[y * w + ox + j] * vj;
                        }
                        horiz[y * mw + ox] = s;
                    }
                }
                // Vertical pass with u.
                for oy in 0..mh {
                    for ox in 0..mw {
                        let mut s = 0.0;
                        for (i, &ui) in u.iter().enumerate() {
                            s += horiz[(oy + i) * mw + ox] * ui;
                        }
                        let cur = out.get(ox, oy, bi) + s;
                        out.set(ox, oy, bi, cur);
                    }
                }
            }
        }
        out
    }
    fn name(&self) -> String {
        "Convolver[separable]".into()
    }
}

/// The optimizable logical convolution operator.
#[derive(Clone)]
pub struct Convolver {
    bank: Arc<FilterBank>,
    /// Channel count assumed by the cost models when sizing inputs.
    pub expected_channels: usize,
    separable: bool,
}

impl Convolver {
    /// Wraps a filter bank; separability is detected once here.
    pub fn new(bank: FilterBank, expected_channels: usize) -> Self {
        let separable = bank.is_separable(1e-10);
        Convolver {
            bank: Arc::new(bank),
            expected_channels,
            separable,
        }
    }
}

impl OptimizableTransformer<Image, Image> for Convolver {
    fn options(&self) -> Vec<TransformerOption<Image, Image>> {
        let b = self.bank.len() as f64;
        let k = self.bank.k() as f64;
        let d = self.expected_channels.max(1) as f64;
        let separable = self.separable;

        // Image side n from input statistics: dims = n²·d.
        let side = move |stats: &[DataStats]| -> f64 {
            let dims = stats.first().map_or(0.0, |s| s.dims.max(1.0));
            (dims / d).sqrt().max(k)
        };
        let records =
            |stats: &[DataStats]| -> f64 { stats.first().map_or(1.0, |s| s.count.max(1) as f64) };

        vec![
            TransformerOption {
                name: "blas".into(),
                cost: Box::new(move |stats, _r: &ResourceDesc| {
                    let n = side(stats);
                    let m = (n - k + 1.0).max(1.0);
                    CostProfile::compute(records(stats) * 2.0 * d * b * k * k * m * m)
                }),
                op: Box::new(ConvolverMatMul {
                    bank: self.bank.clone(),
                }),
            },
            TransformerOption {
                name: "fft".into(),
                cost: Box::new(move |stats, _r: &ResourceDesc| {
                    let n = side(stats);
                    CostProfile::compute(
                        records(stats) * d * b * (6.0 * n * n * n.log2().max(1.0) + 4.0 * n * n),
                    )
                }),
                op: Box::new(ConvolverFft {
                    bank: self.bank.clone(),
                }),
            },
            TransformerOption {
                name: "separable".into(),
                cost: Box::new(move |stats, _r: &ResourceDesc| {
                    if !separable {
                        return CostProfile::compute(INFEASIBLE_COST);
                    }
                    let n = side(stats);
                    let m = (n - k + 1.0).max(1.0);
                    CostProfile::compute(records(stats) * (2.0 * d * b * k * m * m + b * k * k * k))
                }),
                op: Box::new(ConvolverSeparable::from_bank(self.bank.clone())),
            },
        ]
    }

    fn name(&self) -> String {
        "Convolver".into()
    }
}

/// Direct (nested-loop) convolution used as the test oracle.
pub fn convolve_direct_oracle(img: &Image, bank: &FilterBank) -> Image {
    let k = bank.k();
    let (mw, mh) = output_side(img, k);
    let mut out = Image::zeros(mw, mh, bank.len());
    for (bi, f) in bank.filters().iter().enumerate() {
        let fdata: Vec<f64> = f.data().to_vec();
        for c in 0..img.channels() {
            let res = correlate2d_direct(img.plane(c), img.width(), &fdata, k);
            for oy in 0..mh {
                for ox in 0..mw {
                    let v = out.get(ox, oy, bi) + res[oy * mw + ox];
                    out.set(ox, oy, bi, v);
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use keystone_core::operator::OptimizableTransformer;

    fn test_image(n: usize, c: usize, seed: u64) -> Image {
        let mut rng = XorShiftRng::new(seed);
        let data: Vec<f64> = (0..n * n * c).map(|_| rng.next_gaussian()).collect();
        Image::new(n, n, c, data)
    }

    fn assert_images_close(a: &Image, b: &Image, tol: f64) {
        assert_eq!(a.width(), b.width());
        assert_eq!(a.channels(), b.channels());
        for (x, y) in a.data().iter().zip(b.data()) {
            assert!((x - y).abs() < tol * (1.0 + y.abs()), "{} vs {}", x, y);
        }
    }

    #[test]
    fn matmul_matches_direct() {
        let img = test_image(12, 3, 1);
        let bank = FilterBank::random(4, 3, 2);
        let oracle = convolve_direct_oracle(&img, &bank);
        let got = ConvolverMatMul {
            bank: Arc::new(bank),
        }
        .apply(&img);
        assert_images_close(&got, &oracle, 1e-10);
    }

    #[test]
    fn fft_matches_direct() {
        let img = test_image(16, 2, 3);
        let bank = FilterBank::random(3, 5, 4);
        let oracle = convolve_direct_oracle(&img, &bank);
        let got = ConvolverFft {
            bank: Arc::new(bank),
        }
        .apply(&img);
        assert_images_close(&got, &oracle, 1e-8);
    }

    #[test]
    fn separable_matches_direct_on_rank1_filters() {
        let img = test_image(10, 2, 5);
        let bank = FilterBank::random_separable(3, 4, 6);
        assert!(bank.is_separable(1e-10));
        let oracle = convolve_direct_oracle(&img, &bank);
        let got = ConvolverSeparable::from_bank(Arc::new(bank)).apply(&img);
        assert_images_close(&got, &oracle, 1e-8);
    }

    #[test]
    fn random_filters_not_separable() {
        let bank = FilterBank::random(4, 5, 7);
        assert!(!bank.is_separable(1e-10));
    }

    #[test]
    fn cost_models_flip_with_filter_size() {
        // Small k: BLAS cheapest; large k: FFT cheapest (Fig. 7).
        let conv_small = Convolver::new(FilterBank::random(8, 3, 1), 3);
        let conv_large = Convolver::new(FilterBank::random(8, 25, 1), 3);
        let stats = vec![DataStats {
            count: 50,
            bytes_per_record: 256.0 * 256.0 * 3.0 * 8.0,
            dims: 256.0 * 256.0 * 3.0,
            nnz_per_record: 256.0 * 256.0 * 3.0,
            is_sparse: false,
        }];
        let r = keystone_dataflow::cluster::ClusterProfile::R3_4xlarge.descriptor(1);
        let pick = |conv: &Convolver| {
            conv.options()
                .into_iter()
                .min_by(|a, b| {
                    (a.cost)(&stats, &r)
                        .estimated_seconds(&r)
                        .partial_cmp(&(b.cost)(&stats, &r).estimated_seconds(&r))
                        .expect("finite")
                })
                .map(|o| o.name)
                .expect("non-empty")
        };
        assert_eq!(pick(&conv_small), "blas");
        assert_eq!(pick(&conv_large), "fft");
    }

    #[test]
    fn separable_cheapest_when_valid() {
        let conv = Convolver::new(FilterBank::random_separable(8, 9, 1), 3);
        let stats = vec![DataStats {
            count: 50,
            bytes_per_record: 0.0,
            dims: 128.0 * 128.0 * 3.0,
            nnz_per_record: 0.0,
            is_sparse: false,
        }];
        let r = keystone_dataflow::cluster::ClusterProfile::R3_4xlarge.descriptor(1);
        let best = conv
            .options()
            .into_iter()
            .min_by(|a, b| {
                (a.cost)(&stats, &r)
                    .estimated_seconds(&r)
                    .partial_cmp(&(b.cost)(&stats, &r).estimated_seconds(&r))
                    .expect("finite")
            })
            .map(|o| o.name)
            .expect("non-empty");
        assert_eq!(best, "separable");
    }

    #[test]
    fn separable_infeasible_for_full_rank_bank() {
        let conv = Convolver::new(FilterBank::random(4, 5, 9), 3);
        let stats = vec![DataStats::empty().at_scale(10)];
        let r = keystone_dataflow::cluster::ClusterProfile::R3_4xlarge.descriptor(1);
        let options = conv.options();
        let sep = options.iter().find(|o| o.name == "separable").expect("sep");
        assert!((sep.cost)(&stats, &r).flops >= INFEASIBLE_COST);
    }

    #[test]
    #[should_panic(expected = "filter larger than image")]
    fn filter_too_large_panics() {
        let img = test_image(4, 1, 1);
        let bank = FilterBank::random(1, 8, 1);
        let _ = convolve_direct_oracle(&img, &bank);
    }
}
