//! ZCA whitening (the CIFAR pipeline's preprocessing, Table 4).
//!
//! Fits `W = V (Λ + εI)^{-1/2} Vᵀ` on patch rows and whitens each row of a
//! descriptor matrix: decorrelated, unit-variance patches that stay close to
//! the originals.

use keystone_core::context::ExecContext;
use keystone_core::operator::{Estimator, Transformer};
use keystone_dataflow::collection::DistCollection;
use keystone_linalg::dense::DenseMatrix;
use keystone_linalg::eigen::sym_eigen;
use keystone_linalg::gemm::{gram, matmul};

/// ZCA whitening estimator over per-record patch matrices.
#[derive(Clone, Copy)]
pub struct ZcaWhitener {
    /// Eigenvalue floor ε.
    pub eps: f64,
    /// Cap on rows gathered for fitting (the internal column sampler).
    pub max_samples: usize,
}

impl Default for ZcaWhitener {
    fn default() -> Self {
        ZcaWhitener {
            eps: 1e-2,
            max_samples: 10_000,
        }
    }
}

/// The fitted whitening transform.
#[derive(Clone)]
pub struct ZcaModel {
    mean: Vec<f64>,
    w: DenseMatrix,
}

impl ZcaModel {
    /// The whitening matrix.
    pub fn matrix(&self) -> &DenseMatrix {
        &self.w
    }
}

impl Transformer<DenseMatrix, DenseMatrix> for ZcaModel {
    fn apply(&self, rows: &DenseMatrix) -> DenseMatrix {
        let mut centered = rows.clone();
        centered.center_rows(&self.mean);
        matmul(&centered, &self.w)
    }
    fn name(&self) -> String {
        "ZCAModel".into()
    }
}

impl Estimator<DenseMatrix, DenseMatrix> for ZcaWhitener {
    fn fit(
        &self,
        data: &DistCollection<DenseMatrix>,
        _ctx: &ExecContext,
    ) -> Box<dyn Transformer<DenseMatrix, DenseMatrix>> {
        // Gather up to max_samples rows across records.
        let mut rows: Vec<Vec<f64>> = Vec::new();
        'outer: for m in data.iter() {
            for i in 0..m.rows() {
                rows.push(m.row(i).to_vec());
                if rows.len() >= self.max_samples {
                    break 'outer;
                }
            }
        }
        assert!(!rows.is_empty(), "ZCA needs at least one patch row");
        let d = rows[0].len();
        let mut mat = DenseMatrix::zeros(rows.len(), d);
        for (i, r) in rows.iter().enumerate() {
            mat.row_mut(i).copy_from_slice(r);
        }
        let mean = mat.col_means();
        mat.center_rows(&mean);
        let mut cov = gram(&mat);
        cov.scale_inplace(1.0 / rows.len() as f64);
        let eig = sym_eigen(&cov);
        // W = V diag(1/sqrt(λ + eps)) Vᵀ.
        let inv_sqrt: Vec<f64> = eig
            .values
            .iter()
            .map(|&l| 1.0 / (l.max(0.0) + self.eps).sqrt())
            .collect();
        let scaled = keystone_linalg::svd::scale_cols(&eig.vectors, &inv_sqrt);
        let w = matmul(&scaled, &eig.vectors.transpose());
        Box::new(ZcaModel { mean, w })
    }

    fn name(&self) -> String {
        "ZCAWhitener".into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use keystone_linalg::rng::XorShiftRng;

    /// Correlated 2-D data: x1 = x0 + noise.
    fn correlated_patches(n: usize, seed: u64) -> DistCollection<DenseMatrix> {
        let mut rng = XorShiftRng::new(seed);
        let mats: Vec<DenseMatrix> = (0..n)
            .map(|_| {
                DenseMatrix::from_fn(8, 2, |_, j| {
                    let base = rng.next_gaussian();
                    if j == 0 {
                        base
                    } else {
                        base + 0.1 * rng.next_gaussian()
                    }
                })
            })
            .collect();
        DistCollection::from_vec(mats, 2)
    }

    #[test]
    fn whitened_covariance_is_identity() {
        let data = correlated_patches(100, 1);
        let ctx = ExecContext::default_cluster();
        let model = ZcaWhitener {
            eps: 1e-8,
            max_samples: 10_000,
        }
        .fit(&data, &ctx);
        // Whiten everything and measure covariance.
        let mut all: Vec<Vec<f64>> = Vec::new();
        for m in data.iter() {
            let w = model.apply(m);
            for i in 0..w.rows() {
                all.push(w.row(i).to_vec());
            }
        }
        let n = all.len() as f64;
        let mut cov = [[0.0f64; 2]; 2];
        for r in &all {
            for i in 0..2 {
                for j in 0..2 {
                    cov[i][j] += r[i] * r[j] / n;
                }
            }
        }
        assert!((cov[0][0] - 1.0).abs() < 0.1, "var0 {}", cov[0][0]);
        assert!((cov[1][1] - 1.0).abs() < 0.1, "var1 {}", cov[1][1]);
        assert!(cov[0][1].abs() < 0.1, "cross {}", cov[0][1]);
    }

    #[test]
    fn whitening_matrix_is_symmetric() {
        let data = correlated_patches(50, 2);
        let ctx = ExecContext::default_cluster();
        let boxed = ZcaWhitener::default().fit(&data, &ctx);
        // Downcast via re-fit through concrete API for inspection.
        let model = ZcaWhitener::default();
        let _ = model;
        // Indirect check: applying to symmetric input stays finite and
        // deterministic.
        let probe = DenseMatrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0]]);
        let out1 = boxed.apply(&probe);
        let out2 = boxed.apply(&probe);
        assert!(out1.max_abs_diff(&out2) == 0.0);
        assert!(out1.data().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn sample_cap_respected() {
        let data = correlated_patches(1000, 3);
        let ctx = ExecContext::default_cluster();
        // With a tiny cap this must still work.
        let model = ZcaWhitener {
            eps: 1e-4,
            max_samples: 16,
        }
        .fit(&data, &ctx);
        let probe = DenseMatrix::from_rows(&[&[0.5, -0.5]]);
        assert!(model.apply(&probe).data().iter().all(|v| v.is_finite()));
    }
}
