//! Image operators and the planar [`Image`] type.

pub mod convolve;
pub mod sift;
pub mod zca;

pub use convolve::{Convolver, ConvolverFft, ConvolverMatMul, ConvolverSeparable, FilterBank};
pub use sift::Sift;
pub use zca::ZcaWhitener;

use keystone_core::operator::Transformer;
use keystone_core::record::Record;
use keystone_linalg::dense::DenseMatrix;
use keystone_linalg::rng::XorShiftRng;

/// A planar multi-channel image: channel `c` occupies
/// `data[c·w·h .. (c+1)·w·h]`, row-major within the plane.
#[derive(Debug, Clone, PartialEq)]
pub struct Image {
    width: usize,
    height: usize,
    channels: usize,
    data: Vec<f64>,
}

impl Image {
    /// Builds an image from planar data.
    ///
    /// # Panics
    /// Panics if `data.len() != width * height * channels`.
    pub fn new(width: usize, height: usize, channels: usize, data: Vec<f64>) -> Self {
        assert_eq!(
            data.len(),
            width * height * channels,
            "image data length mismatch"
        );
        Image {
            width,
            height,
            channels,
            data,
        }
    }

    /// All-zero image.
    pub fn zeros(width: usize, height: usize, channels: usize) -> Self {
        Image {
            width,
            height,
            channels,
            data: vec![0.0; width * height * channels],
        }
    }

    /// Width in pixels.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Height in pixels.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Channel count.
    pub fn channels(&self) -> usize {
        self.channels
    }

    /// Raw planar data.
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Pixel accessor.
    #[inline]
    pub fn get(&self, x: usize, y: usize, c: usize) -> f64 {
        debug_assert!(x < self.width && y < self.height && c < self.channels);
        self.data[c * self.width * self.height + y * self.width + x]
    }

    /// Pixel assignment.
    #[inline]
    pub fn set(&mut self, x: usize, y: usize, c: usize, v: f64) {
        debug_assert!(x < self.width && y < self.height && c < self.channels);
        self.data[c * self.width * self.height + y * self.width + x] = v;
    }

    /// Borrow of one channel plane (row-major `height × width`).
    pub fn plane(&self, c: usize) -> &[f64] {
        let sz = self.width * self.height;
        &self.data[c * sz..(c + 1) * sz]
    }

    /// Flattens to a plain vector (planar order).
    pub fn to_vec(&self) -> Vec<f64> {
        self.data.clone()
    }

    /// Crops the rectangle at `(x0, y0)` with the given size.
    ///
    /// # Panics
    /// Panics if the rectangle exceeds the image bounds.
    pub fn crop(&self, x0: usize, y0: usize, w: usize, h: usize) -> Image {
        assert!(
            x0 + w <= self.width && y0 + h <= self.height,
            "crop out of bounds"
        );
        let mut out = Image::zeros(w, h, self.channels);
        for c in 0..self.channels {
            for y in 0..h {
                for x in 0..w {
                    out.set(x, y, c, self.get(x0 + x, y0 + y, c));
                }
            }
        }
        out
    }
}

impl Record for Image {
    fn approx_bytes(&self) -> usize {
        self.data.len() * 8 + std::mem::size_of::<Self>()
    }
    fn dims(&self) -> usize {
        self.data.len()
    }
}

/// Averages channels into a single-channel image.
#[derive(Clone, Copy, Default)]
pub struct GrayScale;

impl Transformer<Image, Image> for GrayScale {
    fn apply(&self, img: &Image) -> Image {
        let mut out = Image::zeros(img.width(), img.height(), 1);
        let inv = 1.0 / img.channels().max(1) as f64;
        for y in 0..img.height() {
            for x in 0..img.width() {
                let mut s = 0.0;
                for c in 0..img.channels() {
                    s += img.get(x, y, c);
                }
                out.set(x, y, 0, s * inv);
            }
        }
        out
    }
    fn name(&self) -> String {
        "GrayScale".into()
    }
}

/// Symmetric rectifier: doubles channels into
/// `[max(0, x − α), max(0, −x − α)]`.
#[derive(Clone, Copy)]
pub struct SymmetricRectifier {
    /// Activation offset α.
    pub alpha: f64,
}

impl Default for SymmetricRectifier {
    fn default() -> Self {
        SymmetricRectifier { alpha: 0.0 }
    }
}

impl Transformer<Image, Image> for SymmetricRectifier {
    fn apply(&self, img: &Image) -> Image {
        let c = img.channels();
        let mut out = Image::zeros(img.width(), img.height(), 2 * c);
        for ch in 0..c {
            for y in 0..img.height() {
                for x in 0..img.width() {
                    let v = img.get(x, y, ch);
                    out.set(x, y, ch, (v - self.alpha).max(0.0));
                    out.set(x, y, c + ch, (-v - self.alpha).max(0.0));
                }
            }
        }
        out
    }
    fn name(&self) -> String {
        "SymmetricRectifier".into()
    }
}

/// Sum-pools each channel over non-overlapping `pool × pool` cells.
#[derive(Clone, Copy)]
pub struct Pooler {
    /// Pool cell edge.
    pub pool: usize,
}

impl Pooler {
    /// Pooler with the given cell edge.
    pub fn new(pool: usize) -> Self {
        assert!(pool >= 1, "pool size must be positive");
        Pooler { pool }
    }
}

impl Transformer<Image, Image> for Pooler {
    fn apply(&self, img: &Image) -> Image {
        let ow = (img.width() / self.pool).max(1);
        let oh = (img.height() / self.pool).max(1);
        let mut out = Image::zeros(ow, oh, img.channels());
        for c in 0..img.channels() {
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut s = 0.0;
                    for dy in 0..self.pool {
                        for dx in 0..self.pool {
                            let x = (ox * self.pool + dx).min(img.width() - 1);
                            let y = (oy * self.pool + dy).min(img.height() - 1);
                            s += img.get(x, y, c);
                        }
                    }
                    out.set(ox, oy, c, s);
                }
            }
        }
        out
    }
    fn name(&self) -> String {
        "Pooler".into()
    }
}

/// Flattens an image into a feature vector (planar order).
#[derive(Clone, Copy, Default)]
pub struct ImageVectorizer;

impl Transformer<Image, Vec<f64>> for ImageVectorizer {
    fn apply(&self, img: &Image) -> Vec<f64> {
        img.to_vec()
    }
    fn name(&self) -> String {
        "ImageVectorizer".into()
    }
}

/// Slides a window over the image, emitting each sub-image.
#[derive(Clone, Copy)]
pub struct Windower {
    /// Window edge.
    pub size: usize,
    /// Stride between windows.
    pub stride: usize,
}

impl Transformer<Image, Vec<Image>> for Windower {
    fn apply(&self, img: &Image) -> Vec<Image> {
        let mut out = Vec::new();
        if img.width() < self.size || img.height() < self.size {
            return out;
        }
        let mut y = 0;
        while y + self.size <= img.height() {
            let mut x = 0;
            while x + self.size <= img.width() {
                out.push(img.crop(x, y, self.size, self.size));
                x += self.stride;
            }
            y += self.stride;
        }
        out
    }
    fn name(&self) -> String {
        "Windower".into()
    }
}

/// Extracts `count` random square patches, flattened into rows of a matrix
/// (used to train whiteners / filter banks).
#[derive(Clone, Copy)]
pub struct PatchExtractor {
    /// Patch edge.
    pub size: usize,
    /// Patches per image.
    pub count: usize,
    /// Seed for deterministic extraction.
    pub seed: u64,
}

impl Transformer<Image, DenseMatrix> for PatchExtractor {
    fn apply(&self, img: &Image) -> DenseMatrix {
        let dim = self.size * self.size * img.channels();
        if img.width() < self.size || img.height() < self.size {
            return DenseMatrix::zeros(0, dim);
        }
        // Seed from image content so different images give different
        // patches deterministically.
        let content = img.data().iter().take(8).fold(self.seed, |acc, v| {
            acc.wrapping_mul(31).wrapping_add(v.to_bits())
        });
        let mut rng = XorShiftRng::new(content);
        let mut out = DenseMatrix::zeros(self.count, dim);
        for p in 0..self.count {
            let x0 = rng.next_usize(img.width() - self.size + 1);
            let y0 = rng.next_usize(img.height() - self.size + 1);
            let patch = img.crop(x0, y0, self.size, self.size);
            out.row_mut(p).copy_from_slice(patch.data());
        }
        out
    }
    fn name(&self) -> String {
        "PatchExtractor".into()
    }
}

/// Local color statistics descriptor: per grid cell and channel, the mean
/// and standard deviation of intensities (the LCS features of the ImageNet
/// pipeline, simplified).
#[derive(Clone, Copy)]
pub struct Lcs {
    /// Grid cells per axis.
    pub grid: usize,
}

impl Transformer<Image, DenseMatrix> for Lcs {
    fn apply(&self, img: &Image) -> DenseMatrix {
        let g = self.grid.max(1);
        let cw = (img.width() / g).max(1);
        let ch = (img.height() / g).max(1);
        let mut out = DenseMatrix::zeros(g * g, 2 * img.channels());
        for gy in 0..g {
            for gx in 0..g {
                let row = out.row_mut(gy * g + gx);
                for c in 0..img.channels() {
                    let (mut sum, mut sq, mut n) = (0.0, 0.0, 0.0);
                    for y in (gy * ch)..((gy + 1) * ch).min(img.height()) {
                        for x in (gx * cw)..((gx + 1) * cw).min(img.width()) {
                            let v = img.get(x, y, c);
                            sum += v;
                            sq += v * v;
                            n += 1.0;
                        }
                    }
                    let mean = if n > 0.0 { sum / n } else { 0.0 };
                    let var = if n > 0.0 {
                        (sq / n - mean * mean).max(0.0)
                    } else {
                        0.0
                    };
                    row[2 * c] = mean;
                    row[2 * c + 1] = var.sqrt();
                }
            }
        }
        out
    }
    fn name(&self) -> String {
        "LCS".into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gradient_image(w: usize, h: usize, c: usize) -> Image {
        let mut img = Image::zeros(w, h, c);
        for ch in 0..c {
            for y in 0..h {
                for x in 0..w {
                    img.set(x, y, ch, (x + y * w + ch * 100) as f64);
                }
            }
        }
        img
    }

    #[test]
    fn image_accessors_roundtrip() {
        let mut img = Image::zeros(4, 3, 2);
        img.set(2, 1, 1, 7.5);
        assert_eq!(img.get(2, 1, 1), 7.5);
        assert_eq!(img.plane(1)[4 + 2], 7.5);
        assert_eq!(Record::dims(&img), 24);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn image_rejects_bad_data() {
        let _ = Image::new(2, 2, 1, vec![0.0; 3]);
    }

    #[test]
    fn grayscale_averages_channels() {
        let img = Image::new(1, 1, 3, vec![3.0, 6.0, 9.0]);
        let g = GrayScale.apply(&img);
        assert_eq!(g.channels(), 1);
        assert_eq!(g.get(0, 0, 0), 6.0);
    }

    #[test]
    fn rectifier_splits_sign() {
        let img = Image::new(2, 1, 1, vec![2.0, -3.0]);
        let r = SymmetricRectifier { alpha: 0.5 }.apply(&img);
        assert_eq!(r.channels(), 2);
        assert_eq!(r.get(0, 0, 0), 1.5); // max(0, 2-0.5)
        assert_eq!(r.get(1, 0, 0), 0.0);
        assert_eq!(r.get(0, 0, 1), 0.0);
        assert_eq!(r.get(1, 0, 1), 2.5); // max(0, 3-0.5)
    }

    #[test]
    fn pooler_sums_cells() {
        let img = Image::new(4, 4, 1, (0..16).map(|i| i as f64).collect());
        let p = Pooler::new(2).apply(&img);
        assert_eq!(p.width(), 2);
        // Top-left cell: 0+1+4+5 = 10.
        assert_eq!(p.get(0, 0, 0), 10.0);
        assert_eq!(p.get(1, 1, 0), 10.0 + 11.0 + 14.0 + 15.0);
    }

    #[test]
    fn windower_counts_windows() {
        let img = gradient_image(6, 6, 1);
        let wins = Windower { size: 4, stride: 2 }.apply(&img);
        assert_eq!(wins.len(), 4);
        assert!(wins.iter().all(|w| w.width() == 4 && w.height() == 4));
        // Too-small image yields nothing.
        let tiny = gradient_image(2, 2, 1);
        assert!(Windower { size: 4, stride: 2 }.apply(&tiny).is_empty());
    }

    #[test]
    fn patch_extractor_shapes_and_determinism() {
        let img = gradient_image(8, 8, 2);
        let pe = PatchExtractor {
            size: 3,
            count: 5,
            seed: 1,
        };
        let a = pe.apply(&img);
        let b = pe.apply(&img);
        assert_eq!(a.shape(), (5, 3 * 3 * 2));
        assert!(a.max_abs_diff(&b) == 0.0, "must be deterministic");
    }

    #[test]
    fn lcs_constant_image_zero_std() {
        let img = Image::new(4, 4, 1, vec![5.0; 16]);
        let d = Lcs { grid: 2 }.apply(&img);
        assert_eq!(d.shape(), (4, 2));
        for r in 0..4 {
            assert!((d.get(r, 0) - 5.0).abs() < 1e-12);
            assert!(d.get(r, 1).abs() < 1e-12);
        }
    }

    #[test]
    fn crop_extracts_expected_region() {
        let img = gradient_image(5, 5, 1);
        let c = img.crop(1, 2, 3, 2);
        assert_eq!(c.get(0, 0, 0), img.get(1, 2, 0));
        assert_eq!(c.get(2, 1, 0), img.get(3, 3, 0));
    }

    #[test]
    fn vectorizer_flattens() {
        let img = Image::new(2, 1, 2, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(ImageVectorizer.apply(&img), vec![1.0, 2.0, 3.0, 4.0]);
    }
}
