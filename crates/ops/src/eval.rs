//! Evaluation metrics: accuracy, top-k error (ImageNet reports top-5), mean
//! average precision (VOC reports mAP), and confusion matrices.

/// Fraction of predictions equal to the truth.
///
/// # Panics
/// Panics on length mismatch.
pub fn accuracy(predicted: &[usize], truth: &[usize]) -> f64 {
    assert_eq!(predicted.len(), truth.len(), "length mismatch");
    if predicted.is_empty() {
        return 0.0;
    }
    let correct = predicted.iter().zip(truth).filter(|(p, t)| p == t).count();
    correct as f64 / predicted.len() as f64
}

/// Fraction of examples whose true class appears in the top `k` scores.
pub fn top_k_accuracy(scores: &[Vec<f64>], truth: &[usize], k: usize) -> f64 {
    assert_eq!(scores.len(), truth.len(), "length mismatch");
    if scores.is_empty() {
        return 0.0;
    }
    let hits = scores
        .iter()
        .zip(truth)
        .filter(|(s, &t)| {
            let target = s.get(t).copied().unwrap_or(f64::NEG_INFINITY);
            let better = s.iter().filter(|&&v| v > target).count();
            better < k
        })
        .count();
    hits as f64 / scores.len() as f64
}

/// Top-k **error** (what the paper reports for ImageNet).
pub fn top_k_error(scores: &[Vec<f64>], truth: &[usize], k: usize) -> f64 {
    1.0 - top_k_accuracy(scores, truth, k)
}

/// `classes × classes` confusion matrix: `m[truth][pred]` counts.
pub fn confusion_matrix(predicted: &[usize], truth: &[usize], classes: usize) -> Vec<Vec<u64>> {
    assert_eq!(predicted.len(), truth.len(), "length mismatch");
    let mut m = vec![vec![0u64; classes]; classes];
    for (&p, &t) in predicted.iter().zip(truth) {
        if p < classes && t < classes {
            m[t][p] += 1;
        }
    }
    m
}

/// Average precision of one ranked binary-relevance list: `scores[i]` is
/// the confidence that example `i` is positive, `relevant[i]` the truth.
pub fn average_precision(scores: &[f64], relevant: &[bool]) -> f64 {
    assert_eq!(scores.len(), relevant.len(), "length mismatch");
    let total_pos = relevant.iter().filter(|&&r| r).count();
    if total_pos == 0 {
        return 0.0;
    }
    let mut order: Vec<usize> = (0..scores.len()).collect();
    order.sort_by(|&a, &b| scores[b].partial_cmp(&scores[a]).expect("finite scores"));
    let mut hits = 0usize;
    let mut ap = 0.0;
    for (rank, &i) in order.iter().enumerate() {
        if relevant[i] {
            hits += 1;
            ap += hits as f64 / (rank + 1) as f64;
        }
    }
    ap / total_pos as f64
}

/// Mean average precision over classes (VOC's metric): `class_scores[c][i]`
/// is class `c`'s score for example `i`, truth is the class index per
/// example.
pub fn mean_average_precision(class_scores: &[Vec<f64>], truth: &[usize]) -> f64 {
    if class_scores.is_empty() {
        return 0.0;
    }
    let classes = class_scores.len();
    let mut sum = 0.0;
    for (c, scores) in class_scores.iter().enumerate() {
        let relevant: Vec<bool> = truth.iter().map(|&t| t == c).collect();
        sum += average_precision(scores, &relevant);
    }
    sum / classes as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_basic() {
        assert_eq!(accuracy(&[0, 1, 2], &[0, 1, 0]), 2.0 / 3.0);
        assert_eq!(accuracy(&[], &[]), 0.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn accuracy_rejects_mismatch() {
        let _ = accuracy(&[0], &[0, 1]);
    }

    #[test]
    fn top_k_behaviour() {
        let scores = vec![
            vec![0.1, 0.9, 0.5], // truth 2 is rank 2
            vec![0.8, 0.1, 0.1], // truth 0 is rank 1
        ];
        let truth = vec![2, 0];
        assert_eq!(top_k_accuracy(&scores, &truth, 1), 0.5);
        assert_eq!(top_k_accuracy(&scores, &truth, 2), 1.0);
        assert!((top_k_error(&scores, &truth, 1) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn top_k_with_ties_counts_strictly_better() {
        // All scores equal: nothing is strictly better, so top-1 hits.
        let scores = vec![vec![0.5, 0.5, 0.5]];
        assert_eq!(top_k_accuracy(&scores, &[2], 1), 1.0);
    }

    #[test]
    fn confusion_counts() {
        let m = confusion_matrix(&[0, 1, 1, 0], &[0, 1, 0, 1], 2);
        assert_eq!(m[0][0], 1);
        assert_eq!(m[1][1], 1);
        assert_eq!(m[0][1], 1);
        assert_eq!(m[1][0], 1);
    }

    #[test]
    fn average_precision_perfect_and_worst() {
        // Perfect ranking.
        let ap = average_precision(&[0.9, 0.8, 0.1, 0.0], &[true, true, false, false]);
        assert!((ap - 1.0).abs() < 1e-12);
        // Positives ranked last: AP = (1/3 + 2/4)/2.
        let ap2 = average_precision(&[0.9, 0.8, 0.7, 0.6], &[false, false, true, true]);
        assert!((ap2 - (1.0 / 3.0 + 0.5) / 2.0).abs() < 1e-12);
        // No positives.
        assert_eq!(average_precision(&[1.0], &[false]), 0.0);
    }

    #[test]
    fn map_averages_class_aps() {
        // Two classes, two examples; class scores rank their own example
        // first -> both APs are 1.
        let class_scores = vec![vec![0.9, 0.1], vec![0.2, 0.8]];
        let truth = vec![0, 1];
        assert!((mean_average_precision(&class_scores, &truth) - 1.0).abs() < 1e-12);
    }
}
