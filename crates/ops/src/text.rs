//! Text operators: the building blocks of the Fig. 2 classification
//! pipeline (`Trim andThen LowerCase andThen Tokenizer andThen
//! NGramsFeaturizer andThen TermFrequency andThen CommonSparseFeatures`).

use std::collections::HashMap;

use keystone_core::context::ExecContext;
use keystone_core::operator::{Estimator, Transformer};
use keystone_dataflow::collection::DistCollection;
use keystone_linalg::sparse::SparseVector;

/// Trims surrounding whitespace.
#[derive(Clone, Copy, Default)]
pub struct Trim;

impl Transformer<String, String> for Trim {
    fn apply(&self, s: &String) -> String {
        s.trim().to_string()
    }
    fn name(&self) -> String {
        "Trim".into()
    }
}

/// Lowercases the text.
#[derive(Clone, Copy, Default)]
pub struct LowerCase;

impl Transformer<String, String> for LowerCase {
    fn apply(&self, s: &String) -> String {
        s.to_lowercase()
    }
    fn name(&self) -> String {
        "LowerCase".into()
    }
}

/// Splits on non-alphanumeric characters, dropping empties.
#[derive(Clone, Copy, Default)]
pub struct Tokenizer;

impl Transformer<String, Vec<String>> for Tokenizer {
    fn apply(&self, s: &String) -> Vec<String> {
        s.split(|c: char| !c.is_alphanumeric())
            .filter(|t| !t.is_empty())
            .map(|t| t.to_string())
            .collect()
    }
    fn name(&self) -> String {
        "Tokenizer".into()
    }
}

/// Produces all n-grams for n in the configured range (inclusive), joined
/// with spaces — `NGramsFeaturizer(1 to 2)` in the paper.
#[derive(Clone)]
pub struct NGrams {
    /// Smallest n.
    pub min_n: usize,
    /// Largest n (inclusive).
    pub max_n: usize,
}

impl NGrams {
    /// N-grams for `min_n..=max_n`.
    pub fn new(min_n: usize, max_n: usize) -> Self {
        assert!(min_n >= 1 && min_n <= max_n, "invalid n-gram range");
        NGrams { min_n, max_n }
    }
}

impl Transformer<Vec<String>, Vec<String>> for NGrams {
    fn apply(&self, tokens: &Vec<String>) -> Vec<String> {
        let mut out = Vec::new();
        for n in self.min_n..=self.max_n {
            if tokens.len() < n {
                break;
            }
            for window in tokens.windows(n) {
                out.push(window.join(" "));
            }
        }
        out
    }
    fn name(&self) -> String {
        "NGrams".into()
    }
}

/// Hashes terms into a fixed-dimensional sparse count vector (feature
/// hashing). `binary` mode emits presence indicators instead of counts —
/// the `TermFrequency(x => 1)` of Fig. 2.
#[derive(Clone)]
pub struct HashingTF {
    /// Output dimensionality.
    pub dim: usize,
    /// Emit 1.0 per present term instead of counts.
    pub binary: bool,
}

impl HashingTF {
    /// Count-valued hashing featurizer.
    pub fn new(dim: usize) -> Self {
        HashingTF { dim, binary: false }
    }

    /// Presence-valued hashing featurizer.
    pub fn binary(dim: usize) -> Self {
        HashingTF { dim, binary: true }
    }

    fn hash(&self, term: &str) -> u32 {
        // FNV-1a over the term bytes.
        let mut h = 0xcbf29ce484222325u64;
        for b in term.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        (h % self.dim as u64) as u32
    }
}

impl Transformer<Vec<String>, SparseVector> for HashingTF {
    fn apply(&self, terms: &Vec<String>) -> SparseVector {
        let mut pairs: Vec<(u32, f64)> = terms.iter().map(|t| (self.hash(t), 1.0)).collect();
        if self.binary {
            pairs.sort_unstable_by_key(|p| p.0);
            pairs.dedup_by_key(|p| p.0);
        }
        SparseVector::from_pairs(self.dim, pairs)
    }
    fn name(&self) -> String {
        "HashingTF".into()
    }
}

/// Per-document term frequency over an explicit vocabulary (the model
/// produced by [`CommonSparseFeatures`]).
#[derive(Clone)]
pub struct VocabTermFrequency {
    vocab: HashMap<String, u32>,
    dim: usize,
    binary: bool,
}

impl Transformer<Vec<String>, SparseVector> for VocabTermFrequency {
    fn apply(&self, terms: &Vec<String>) -> SparseVector {
        let mut pairs: Vec<(u32, f64)> = terms
            .iter()
            .filter_map(|t| self.vocab.get(t).map(|&i| (i, 1.0)))
            .collect();
        if self.binary {
            pairs.sort_unstable_by_key(|p| p.0);
            pairs.dedup_by_key(|p| p.0);
        }
        SparseVector::from_pairs(self.dim, pairs)
    }
    fn name(&self) -> String {
        "VocabTermFrequency".into()
    }
}

/// Estimator selecting the `max_features` most frequent terms in the corpus
/// and featurizing documents against that vocabulary — the paper's
/// `CommonSparseFeatures(1e5)`. The frequency count is a distributed
/// aggregation (this is the "aggregation tree which does not scale
/// linearly" noted for the Amazon pipeline in §5.5).
#[derive(Clone)]
pub struct CommonSparseFeatures {
    /// Vocabulary size cap.
    pub max_features: usize,
    /// Emit presence indicators instead of counts.
    pub binary: bool,
}

impl CommonSparseFeatures {
    /// Keeps the `max_features` most common terms.
    pub fn new(max_features: usize) -> Self {
        CommonSparseFeatures {
            max_features,
            binary: true,
        }
    }
}

impl Estimator<Vec<String>, SparseVector> for CommonSparseFeatures {
    fn fit(
        &self,
        data: &DistCollection<Vec<String>>,
        _ctx: &ExecContext,
    ) -> Box<dyn Transformer<Vec<String>, SparseVector>> {
        // Per-partition term counts merged on the driver.
        let counts = data
            .map_reduce_partitions(
                |part| {
                    let mut m: HashMap<String, u64> = HashMap::new();
                    for doc in part {
                        for t in doc {
                            *m.entry(t.clone()).or_insert(0) += 1;
                        }
                    }
                    m
                },
                |mut a, b| {
                    for (t, c) in b {
                        *a.entry(t).or_insert(0) += c;
                    }
                    a
                },
            )
            .unwrap_or_default();
        let mut by_freq: Vec<(String, u64)> = counts.into_iter().collect();
        // Sort by frequency descending, term ascending for determinism.
        by_freq.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        by_freq.truncate(self.max_features);
        let dim = by_freq.len();
        let vocab: HashMap<String, u32> = by_freq
            .into_iter()
            .enumerate()
            .map(|(i, (t, _))| (t, i as u32))
            .collect();
        Box::new(VocabTermFrequency {
            vocab,
            dim,
            binary: self.binary,
        })
    }

    fn name(&self) -> String {
        "CommonSparseFeatures".into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx() -> ExecContext {
        ExecContext::default_cluster()
    }

    #[test]
    fn trim_and_lowercase() {
        assert_eq!(Trim.apply(&"  Hello ".to_string()), "Hello");
        assert_eq!(LowerCase.apply(&"HeLLo".to_string()), "hello");
    }

    #[test]
    fn tokenizer_splits_and_drops_empties() {
        let t = Tokenizer.apply(&"great product, would buy!".to_string());
        assert_eq!(t, vec!["great", "product", "would", "buy"]);
        assert!(Tokenizer.apply(&"...".to_string()).is_empty());
    }

    #[test]
    fn ngrams_1_to_2() {
        let toks: Vec<String> = ["a", "b", "c"].iter().map(|s| s.to_string()).collect();
        let grams = NGrams::new(1, 2).apply(&toks);
        assert_eq!(grams, vec!["a", "b", "c", "a b", "b c"]);
    }

    #[test]
    fn ngrams_short_input() {
        let toks = vec!["only".to_string()];
        assert_eq!(NGrams::new(1, 3).apply(&toks), vec!["only"]);
    }

    #[test]
    #[should_panic(expected = "invalid n-gram range")]
    fn ngrams_rejects_bad_range() {
        let _ = NGrams::new(2, 1);
    }

    #[test]
    fn hashing_tf_counts_and_binary() {
        let terms: Vec<String> = ["x", "x", "y"].iter().map(|s| s.to_string()).collect();
        let counted = HashingTF::new(64).apply(&terms);
        assert_eq!(counted.values().iter().sum::<f64>(), 3.0);
        let binary = HashingTF::binary(64).apply(&terms);
        assert!(binary.values().iter().all(|&v| v == 1.0));
        assert!(binary.nnz() <= 2);
    }

    #[test]
    fn hashing_tf_deterministic() {
        let terms = vec!["stable".to_string()];
        let a = HashingTF::new(1000).apply(&terms);
        let b = HashingTF::new(1000).apply(&terms);
        assert_eq!(a, b);
    }

    #[test]
    fn common_sparse_features_keeps_most_frequent() {
        let docs: Vec<Vec<String>> = vec![
            vec!["apple", "banana", "apple"],
            vec!["apple", "cherry"],
            vec!["banana", "apple"],
        ]
        .into_iter()
        .map(|d| d.into_iter().map(String::from).collect())
        .collect();
        let data = DistCollection::from_vec(docs.clone(), 2);
        let model = CommonSparseFeatures::new(2).fit(&data, &ctx());
        // apple (4) and banana (2) survive; cherry is dropped.
        let fv = model.apply(&docs[1]);
        assert_eq!(fv.dim(), 2);
        assert_eq!(fv.nnz(), 1, "only apple remains from doc 1");
        let fv0 = model.apply(&docs[0]);
        assert_eq!(fv0.nnz(), 2);
    }

    #[test]
    fn common_sparse_features_binary_values() {
        let docs: Vec<Vec<String>> = vec![vec!["w".to_string(), "w".to_string(), "w".to_string()]];
        let data = DistCollection::from_vec(docs.clone(), 1);
        let model = CommonSparseFeatures::new(10).fit(&data, &ctx());
        let fv = model.apply(&docs[0]);
        assert_eq!(fv.values(), &[1.0], "binary mode collapses counts");
    }

    #[test]
    fn vocabulary_is_deterministic_across_partitionings() {
        let docs: Vec<Vec<String>> = (0..40)
            .map(|i| vec![format!("tok{}", i % 7), "common".to_string()])
            .collect();
        let d2 = DistCollection::from_vec(docs.clone(), 2);
        let d8 = DistCollection::from_vec(docs.clone(), 8);
        let m2 = CommonSparseFeatures::new(5).fit(&d2, &ctx());
        let m8 = CommonSparseFeatures::new(5).fit(&d8, &ctx());
        for doc in &docs {
            assert_eq!(m2.apply(doc), m8.apply(doc));
        }
    }

    #[test]
    fn full_fig2_chain_produces_sparse_features() {
        // Trim -> LowerCase -> Tokenizer -> NGrams -> CommonSparseFeatures.
        let raw = "  Great Product  ".to_string();
        let tokens = Tokenizer.apply(&LowerCase.apply(&Trim.apply(&raw)));
        let grams = NGrams::new(1, 2).apply(&tokens);
        assert!(grams.contains(&"great product".to_string()));
        let corpus = DistCollection::from_vec(vec![grams.clone()], 1);
        let model = CommonSparseFeatures::new(100).fit(&corpus, &ctx());
        let fv = model.apply(&grams);
        assert_eq!(fv.nnz(), 3); // great, product, great product
    }
}
