//! The typed pipeline-construction API (Fig. 2/4) and `fit`.
//!
//! A `Pipeline<A, B>` is a handle into a shared operator DAG: `and_then`
//! appends transformer nodes; `and_then_est` binds training data, clones the
//! preceding prefix over it (CSE later merges the duplicates), fits an
//! estimator, and applies the resulting model to the main flow; `gather`
//! merges branches. Calling [`Pipeline::fit`] triggers the lazy optimization
//! procedure of §2.3 and returns a [`FittedPipeline`].

use std::collections::{HashMap, HashSet};
use std::marker::PhantomData;
use std::sync::Arc;
use std::time::Instant;

use keystone_dataflow::cache::{CacheManager, CachePolicy};
use keystone_dataflow::collection::DistCollection;

use crate::context::ExecContext;
use crate::executor::Executor;
use crate::graph::{Graph, NodeId, NodeKind};
use crate::operator::{
    AnyData, ErasedTransformer, Estimator, GatherConcat, LabelEstimator, OptimizableEstimator,
    OptimizableLabelEstimator, OptimizableTransformer, Transformer, TypedEstimator,
    TypedLabelEstimator, TypedOptimizableEstimator, TypedOptimizableLabelEstimator,
    TypedOptimizableTransformer, TypedTransformer,
};
use crate::optimizer::{
    build_mat_problem, eliminate_common_subexpressions, fit_roots, labels_of, CachingStrategy,
    OptLevel, PipelineOptions,
};
use crate::profiler::{profile_and_select, PipelineProfile, ProfileOptions};
use crate::record::Record;
use parking_lot::Mutex;

/// A typed handle into a pipeline DAG under construction.
pub struct Pipeline<A: Record, B: Record> {
    graph: Arc<Mutex<Graph>>,
    input: NodeId,
    output: NodeId,
    _ph: PhantomData<fn(&A) -> B>,
}

impl<A: Record, B: Record> Clone for Pipeline<A, B> {
    fn clone(&self) -> Self {
        Pipeline {
            graph: self.graph.clone(),
            input: self.input,
            output: self.output,
            _ph: PhantomData,
        }
    }
}

impl<A: Record> Pipeline<A, A> {
    /// Starts a new pipeline: the identity over the runtime input.
    pub fn input() -> Self {
        let mut g = Graph::new();
        let input = g.add(NodeKind::RuntimeInput, vec![], "input");
        Pipeline {
            graph: Arc::new(Mutex::new(g)),
            input,
            output: input,
            _ph: PhantomData,
        }
    }
}

impl<A: Record, B: Record> Pipeline<A, B> {
    fn derive<C: Record>(&self, output: NodeId) -> Pipeline<A, C> {
        Pipeline {
            graph: self.graph.clone(),
            input: self.input,
            output,
            _ph: PhantomData,
        }
    }

    /// Chains a transformer (`andThen`).
    pub fn and_then<C: Record>(&self, t: impl Transformer<B, C>) -> Pipeline<A, C> {
        let label = t.name();
        let mut g = self.graph.lock();
        let id = g.add(
            NodeKind::Transform(Arc::new(TypedTransformer::new(t))),
            vec![self.output],
            label,
        );
        drop(g);
        self.derive(id)
    }

    /// Chains an optimizable transformer (multiple physical options).
    pub fn and_then_optimizable<C: Record>(
        &self,
        t: impl OptimizableTransformer<B, C>,
    ) -> Pipeline<A, C> {
        let label = t.name();
        let mut g = self.graph.lock();
        let id = g.add(
            NodeKind::Transform(Arc::new(TypedOptimizableTransformer::new(t))),
            vec![self.output],
            label,
        );
        drop(g);
        self.derive(id)
    }

    /// Chains an unsupervised estimator fit on `data` passed through the
    /// preceding prefix (`andThen (est, data)`).
    pub fn and_then_est<C: Record>(
        &self,
        est: impl Estimator<B, C>,
        data: &DistCollection<A>,
    ) -> Pipeline<A, C> {
        let label = est.name();
        let erased = Arc::new(TypedEstimator::new(est));
        self.append_estimator(erased, label, data, None)
    }

    /// Chains an optimizable unsupervised estimator.
    pub fn and_then_optimizable_est<C: Record>(
        &self,
        est: impl OptimizableEstimator<B, C>,
        data: &DistCollection<A>,
    ) -> Pipeline<A, C> {
        let label = est.name();
        let erased = Arc::new(TypedOptimizableEstimator::new(est));
        self.append_estimator(erased, label, data, None)
    }

    /// Chains a supervised estimator (`andThen (est, data, labels)`).
    pub fn and_then_label_est<L: Record, C: Record>(
        &self,
        est: impl LabelEstimator<B, L, C>,
        data: &DistCollection<A>,
        labels: &DistCollection<L>,
    ) -> Pipeline<A, C> {
        let label = est.name();
        let erased = Arc::new(TypedLabelEstimator::new(est));
        self.append_estimator(erased, label, data, Some(AnyData::wrap(labels.clone())))
    }

    /// Chains an optimizable supervised estimator.
    pub fn and_then_optimizable_label_est<L: Record, C: Record>(
        &self,
        est: impl OptimizableLabelEstimator<B, L, C>,
        data: &DistCollection<A>,
        labels: &DistCollection<L>,
    ) -> Pipeline<A, C> {
        let label = est.name();
        let erased = Arc::new(TypedOptimizableLabelEstimator::new(est));
        self.append_estimator(erased, label, data, Some(AnyData::wrap(labels.clone())))
    }

    fn append_estimator<C: Record>(
        &self,
        erased: Arc<dyn crate::operator::ErasedEstimator>,
        label: String,
        data: &DistCollection<A>,
        labels: Option<AnyData>,
    ) -> Pipeline<A, C> {
        let mut g = self.graph.lock();
        let src = g.add(
            NodeKind::DataSource(AnyData::wrap(data.clone())),
            vec![],
            "train-data",
        );
        let train_out = g.clone_rerooted(self.output, src);
        let mut est_inputs = vec![train_out];
        if let Some(l) = labels {
            let lsrc = g.add(NodeKind::DataSource(l), vec![], "train-labels");
            est_inputs.push(lsrc);
        }
        let est = g.add(NodeKind::Estimate(erased), est_inputs, label.clone());
        let apply = g.add(
            NodeKind::ModelApply,
            vec![est, self.output],
            format!("{}Model", label),
        );
        drop(g);
        self.derive(apply)
    }

    /// Renders the current DAG as Graphviz.
    pub fn to_dot(&self) -> String {
        self.graph.lock().to_dot(&HashSet::new())
    }

    /// Number of nodes currently in the shared DAG.
    pub fn graph_len(&self) -> usize {
        self.graph.lock().len()
    }

    /// Snapshot of the current (pre-optimization) DAG. Test harnesses use
    /// this to run optimizer passes such as CSE directly against the graph
    /// `fit` would see.
    pub fn graph_snapshot(&self) -> Graph {
        self.graph.lock().clone()
    }

    /// The node id this handle's output corresponds to in
    /// [`Pipeline::graph_snapshot`].
    pub fn output_node(&self) -> NodeId {
        self.output
    }

    /// Deterministic structural summary of the current DAG (see
    /// [`Graph::summary`]).
    pub fn summary(&self) -> String {
        self.graph.lock().summary()
    }

    /// Optimizes and fits the pipeline (§2.3's "optimization time" followed
    /// by estimator execution), returning the fitted pipeline and a report
    /// of every optimizer decision.
    pub fn fit(
        &self,
        ctx: &ExecContext,
        opts: &PipelineOptions,
    ) -> (FittedPipeline<A, B>, FitReport) {
        let snapshot = self.graph.lock().clone();
        let t0 = Instant::now();

        // 1. Common sub-expression elimination.
        let (mut graph, output, eliminated) = if opts.level == OptLevel::None {
            (snapshot, self.output, 0)
        } else {
            let r = eliminate_common_subexpressions(&snapshot);
            let out = r.remap[&self.output];
            // Trace each merge: group old nodes by their canonical image.
            // Sorted by kept id so the event stream is deterministic.
            let mut group_sizes: HashMap<NodeId, usize> = HashMap::new();
            for &new in r.remap.values() {
                *group_sizes.entry(new).or_insert(0) += 1;
            }
            let mut merges: Vec<(NodeId, usize)> =
                group_sizes.into_iter().filter(|&(_, n)| n > 1).collect();
            merges.sort_unstable();
            for (kept, size) in merges {
                ctx.tracer.record(crate::trace::TraceEvent::CseMerge {
                    kept,
                    label: r.graph.nodes[kept].label.clone(),
                    duplicates: size - 1,
                });
            }
            (r.graph, out, r.eliminated)
        };

        let roots = fit_roots(&graph, output);

        // 2. Execution subsampling + (at Full) operator selection.
        let mut profile = if opts.level == OptLevel::None {
            PipelineProfile::default()
        } else {
            let popts = ProfileOptions {
                select_operators: opts.level == OptLevel::Full,
                ..opts.profile.clone()
            };
            profile_and_select(&mut graph, &roots, ctx, &popts)
        };

        // 3. Automatic materialization.
        let budget = opts
            .mem_budget
            .unwrap_or_else(|| ctx.resources.total_cache_bytes());
        let observer = Arc::new(crate::trace::TraceCacheObserver(ctx.tracer.clone()));
        let mut adaptive: Option<Arc<crate::optimizer::AdaptiveController>> = None;
        let (cache, cache_set) = match (opts.level, opts.caching) {
            (OptLevel::None, _) | (_, CachingStrategy::RuleBased) => (
                CacheManager::new(0, CachePolicy::Pinned(HashSet::new())).with_observer(observer),
                HashSet::new(),
            ),
            (_, CachingStrategy::Lru { admission_fraction }) => (
                CacheManager::new(budget, CachePolicy::Lru { admission_fraction })
                    .with_observer(observer),
                HashSet::new(),
            ),
            (_, CachingStrategy::Greedy) => {
                let problem = build_mat_problem(&graph, &profile, &roots);
                let (set, picks) = problem.greedy_cache_set_traced(budget);
                for pick in picks {
                    ctx.tracer
                        .record(crate::trace::TraceEvent::MaterializePick {
                            node: pick.node,
                            label: pick.label,
                            est_saving_secs: pick.est_saving_secs,
                            size_bytes: pick.size_bytes,
                        });
                }
                let keys: HashSet<u64> = set.iter().map(|&v| v as u64).collect();
                // Adaptive re-optimization watches this fit's demand against
                // the problem's predictions. Fault-injected runs keep the
                // static plan: cache-loss probes fire per resident entry, so
                // mid-fit membership changes would perturb the injected draw
                // sequence rather than just the cost.
                if opts.adaptive_enabled() && ctx.faults.is_none() {
                    adaptive = Some(Arc::new(crate::optimizer::AdaptiveController::new(
                        problem,
                        set.clone(),
                        budget,
                        ctx.resources.workers,
                        ctx.tracer.clone(),
                        ctx.sim.clone(),
                        opts.adaptive_hints.clone(),
                    )));
                }
                (
                    CacheManager::new(budget, CachePolicy::Pinned(keys)).with_observer(observer),
                    set,
                )
            }
        };
        // Operator-choice labels are resolved before fusion relabels chain
        // tails to `Fused[...]`.
        let choices: Vec<(String, String)> = profile
            .choices
            .iter()
            .map(|(id, name)| (graph.nodes[*id].label.clone(), name.clone()))
            .collect();

        // 3b. Whole-stage fusion, after materialization so every pick acts
        // as a barrier. The rewrite is id-stable (chains collapse onto their
        // tail's node id), so the cache key set, fit roots, and the output
        // id all apply to the fused graph unchanged.
        let mut fused: Vec<(NodeId, Vec<String>)> = Vec::new();
        let mut fused_nodes = 0;
        let mut columnar_chains = 0;
        if opts.fusion_enabled() {
            let result = crate::optimizer::fuse_chains_with(
                &graph,
                output,
                &cache_set,
                opts.columnar_enabled(),
            );
            graph = result.graph;
            crate::optimizer::merge_profiles(&mut profile, &result.chains);
            fused_nodes = result.absorbed;
            columnar_chains = result.columnar_chains;
            // Chains arrive in ascending tail-id order, so the event stream
            // is deterministic (same discipline as the CseMerge emission).
            for chain in &result.chains {
                ctx.tracer.record(crate::trace::TraceEvent::FusionMerge {
                    node: chain.tail,
                    label: graph.nodes[chain.tail].label.clone(),
                    members: chain.labels.clone(),
                });
                fused.push((chain.tail, chain.labels.clone()));
            }
        }
        let optimize_secs = t0.elapsed().as_secs_f64();

        // 4. Fit every estimator feeding the output.
        let profiles = Arc::new(profile.nodes.clone());
        let mut executor =
            Executor::new(&graph, ctx.clone(), Arc::new(cache)).with_profiles(profiles.clone());
        if let Some(ad) = &adaptive {
            executor = executor.with_adaptive(ad.clone());
        }
        for &est in &roots {
            let _ = executor.eval(est);
        }
        let models = executor.models();
        let adaptation = adaptive.map(|ad| ad.report()).unwrap_or_default();

        let observability = crate::report::PipelineReport::build_with_metrics(
            &graph,
            &profile,
            &ctx.tracer,
            Some(&ctx.metrics),
        );
        let report = FitReport {
            optimize_secs,
            eliminated_nodes: eliminated,
            choices,
            fused,
            fused_nodes,
            columnar_chains,
            cache_set_labels: labels_of(&graph, &cache_set),
            cache_set: cache_set.clone(),
            adaptation,
            dot: graph.to_dot(&cache_set),
            profile,
            observability,
        };
        let fitted = FittedPipeline {
            plan: Arc::new(ExecutablePlan {
                graph: Arc::new(graph),
                output,
                models,
                profiles,
            }),
            _ph: PhantomData,
        };
        (fitted, report)
    }
}

/// Merges branches element-wise by concatenating their `Vec<f64>` outputs
/// (Fig. 4's `gather`, as used by the TIMIT random-feature pipeline). All
/// branches must share the same pipeline graph and input.
///
/// # Panics
/// Panics if `branches` is empty or the branches come from different
/// pipeline inputs.
pub fn gather<A: Record>(branches: &[Pipeline<A, Vec<f64>>]) -> Pipeline<A, Vec<f64>> {
    assert!(!branches.is_empty(), "gather needs at least one branch");
    let first = &branches[0];
    for b in branches {
        assert!(
            Arc::ptr_eq(&first.graph, &b.graph) && first.input == b.input,
            "gather branches must come from the same pipeline input"
        );
    }
    let inputs: Vec<NodeId> = branches.iter().map(|b| b.output).collect();
    let mut g = first.graph.lock();
    let id = g.add(
        NodeKind::Transform(Arc::new(GatherConcat)),
        inputs,
        "Gather",
    );
    drop(g);
    Pipeline {
        graph: first.graph.clone(),
        input: first.input,
        output: id,
        _ph: PhantomData,
    }
}

/// What the optimizer did during `fit`.
#[derive(Debug)]
pub struct FitReport {
    /// Wall seconds spent on profiling + optimization (Fig. 9's "Optimize").
    pub optimize_secs: f64,
    /// Nodes removed by CSE.
    pub eliminated_nodes: usize,
    /// `(node label, chosen physical operator)` pairs.
    pub choices: Vec<(String, String)>,
    /// `(fused node id, member labels)` per whole-stage fused chain, in
    /// ascending node-id order.
    pub fused: Vec<(NodeId, Vec<String>)>,
    /// Nodes absorbed into some fused chain (the span-count saving).
    pub fused_nodes: usize,
    /// How many fused chains lowered to the columnar batch path (0 when
    /// fusion or the columnar toggle is off, or when no chain's members
    /// all provide columnar kernels).
    pub columnar_chains: usize,
    /// Node ids chosen for materialization. Always the *initial* greedy
    /// solution: mid-fit adaptive revisions change the live cache but are
    /// reported separately in [`FitReport::adaptation`], so this field is
    /// comparable across adaptive on/off runs.
    pub cache_set: HashSet<NodeId>,
    /// Their labels (Fig. 11).
    pub cache_set_labels: Vec<String>,
    /// What adaptive re-optimization did during the fit (all-zero when it
    /// was disabled or never triggered).
    pub adaptation: crate::optimizer::AdaptationReport,
    /// Graphviz dump with the cache set highlighted.
    pub dot: String,
    /// The raw pipeline profile.
    pub profile: PipelineProfile,
    /// Predicted-vs-actual join over the fit execution: per-node estimated
    /// and observed runtimes, output sizes and cache counters.
    pub observability: crate::report::PipelineReport,
}

/// The type-erased executable artifact of a fit: the optimized DAG, the
/// fitted models, and the per-node profiles — everything needed to run the
/// apply path, with the input typing stripped off.
///
/// Both [`FittedPipeline::apply`] and the serving layer (`keystone-serve`)
/// execute through this one object, so batch apply and micro-batched
/// serving cannot diverge: a serving wave *is* an [`ExecutablePlan::
/// execute_erased`] call over the wave's records.
pub struct ExecutablePlan {
    graph: Arc<Graph>,
    output: NodeId,
    models: HashMap<NodeId, Arc<dyn ErasedTransformer>>,
    profiles: Arc<HashMap<NodeId, crate::profiler::NodeProfile>>,
}

impl ExecutablePlan {
    /// Assembles a plan from its parts. `Pipeline::fit` is the normal
    /// producer; this constructor exists for serving/test harnesses that
    /// build the optimized graph directly (e.g. to exercise cross-request
    /// cache reuse on hand-crafted DAGs).
    pub fn new(
        graph: Arc<Graph>,
        output: NodeId,
        models: HashMap<NodeId, Arc<dyn ErasedTransformer>>,
        profiles: Arc<HashMap<NodeId, crate::profiler::NodeProfile>>,
    ) -> Self {
        ExecutablePlan {
            graph,
            output,
            models,
            profiles,
        }
    }

    /// The optimized DAG.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// The output node id within [`ExecutablePlan::graph`].
    pub fn output_node(&self) -> NodeId {
        self.output
    }

    /// Per-node cost profiles the optimizer settled on (artifact capture
    /// joins these predictions against executor actuals by node id).
    pub fn profiles(&self) -> &HashMap<NodeId, crate::profiler::NodeProfile> {
        &self.profiles
    }

    /// Runs the apply path over an erased input with a fresh, nothing-
    /// admitted cache — the classic single-shot `apply`.
    pub fn execute_erased(&self, input: AnyData, ctx: &ExecContext) -> AnyData {
        let cache = Arc::new(
            CacheManager::new(0, CachePolicy::Pinned(HashSet::new())).with_observer(Arc::new(
                crate::trace::TraceCacheObserver(ctx.tracer.clone()),
            )),
        );
        self.execute_erased_with_cache(input, ctx, cache)
    }

    /// Runs the apply path against a caller-supplied cache. The serving
    /// layer passes one long-lived [`CacheManager`] across waves so
    /// request-independent intermediates (see
    /// [`ExecutablePlan::reusable_nodes`]) are computed once per process,
    /// not once per batch.
    pub fn execute_erased_with_cache(
        &self,
        input: AnyData,
        ctx: &ExecContext,
        cache: Arc<CacheManager>,
    ) -> AnyData {
        let executor = Executor::new(&self.graph, ctx.clone(), cache)
            .with_runtime_input(input)
            .with_models(self.models.clone())
            .with_profiles(self.profiles.clone())
            .memoize_all()
            .with_cross_run_cache();
        executor.eval(self.output).data().clone()
    }

    /// Data-producing nodes on the output's ancestry whose value does *not*
    /// depend on the runtime input — safe to cache across apply calls with
    /// different inputs. Estimator models are memoized separately and data
    /// sources are already resident, so only `Transform` and `ModelApply`
    /// nodes qualify.
    pub fn reusable_nodes(&self) -> HashSet<NodeId> {
        let tainted = self
            .graph
            .runtime_input()
            .map(|ri| self.graph.dependents(ri))
            .unwrap_or_default();
        self.graph
            .topo_ancestors(&[self.output])
            .into_iter()
            .filter(|&id| {
                !tainted.contains(&id)
                    && matches!(
                        self.graph.nodes[id].kind,
                        NodeKind::Transform(_) | NodeKind::ModelApply
                    )
            })
            .collect()
    }

    /// Apply-path nodes: the output's ancestry restricted to what the
    /// runtime input feeds, in topological order. This is exactly the work
    /// one `execute_erased` call performs per wave (request-independent
    /// ancestry is either a memoized model or served by the cross-run
    /// cache after the first wave).
    pub fn apply_path(&self) -> Vec<NodeId> {
        let tainted = self
            .graph
            .runtime_input()
            .map(|ri| self.graph.dependents(ri))
            .unwrap_or_default();
        self.graph
            .topo_ancestors(&[self.output])
            .into_iter()
            .filter(|id| tainted.contains(id))
            .collect()
    }

    /// Deterministic estimate of one apply wave's simulated seconds over
    /// `records` input records on `workers` workers. Profiled nodes use
    /// their extrapolated cost; apply-path nodes the profiler skipped (they
    /// hang off the runtime input) are priced on the same synthetic
    /// per-label scale that `deterministic_timing` profiling uses — with
    /// fused chains on the columnar path charged at the columnar discount —
    /// so the estimate — and everything the serving layer derives from it —
    /// is a pure function of the plan, the record count, and the worker
    /// count.
    pub fn est_apply_secs(&self, records: usize, workers: usize) -> f64 {
        let w = workers.max(1) as f64;
        self.apply_path()
            .into_iter()
            .filter(|&id| {
                matches!(
                    self.graph.nodes[id].kind,
                    NodeKind::Transform(_) | NodeKind::ModelApply
                )
            })
            .map(|id| {
                let n = &self.graph.nodes[id];
                match self.profiles.get(&id) {
                    Some(p) => p.est_secs(records),
                    None => crate::profiler::synthetic_node_secs(n, records),
                }
            })
            .sum::<f64>()
            / w
    }
}

/// A fitted pipeline: a typed handle over the shared [`ExecutablePlan`].
pub struct FittedPipeline<A: Record, B: Record> {
    plan: Arc<ExecutablePlan>,
    _ph: PhantomData<fn(&A) -> B>,
}

impl<A: Record, B: Record> Clone for FittedPipeline<A, B> {
    fn clone(&self) -> Self {
        FittedPipeline {
            plan: self.plan.clone(),
            _ph: PhantomData,
        }
    }
}

impl<A: Record, B: Record> FittedPipeline<A, B> {
    /// Wraps a plan in a typed handle. `Pipeline::fit` is the normal
    /// producer; the forest fit (`keystone_core::optimizer::multi`) uses
    /// this to hand each tenant a typed view over the shared merged graph
    /// with that tenant's own output node.
    pub fn from_plan(plan: Arc<ExecutablePlan>) -> Self {
        FittedPipeline {
            plan,
            _ph: PhantomData,
        }
    }

    /// Applies the fitted pipeline to new data.
    pub fn apply(&self, data: &DistCollection<A>, ctx: &ExecContext) -> DistCollection<B> {
        self.plan
            .execute_erased(AnyData::wrap(data.clone()), ctx)
            .downcast()
    }

    /// Applies to a single record (convenience; wraps it in a collection).
    pub fn apply_one(&self, record: &A, ctx: &ExecContext) -> B {
        let c = DistCollection::from_vec(vec![record.clone()], 1);
        self.apply(&c, ctx)
            .collect()
            .pop()
            .expect("one output for one input")
    }

    /// The shared executable plan (the serving layer's entry point).
    pub fn plan(&self) -> Arc<ExecutablePlan> {
        self.plan.clone()
    }

    /// The optimized DAG (for inspection / Fig. 11 dumps).
    pub fn graph(&self) -> &Graph {
        self.plan.graph()
    }

    /// The output node id within [`FittedPipeline::graph`] — with
    /// [`crate::optimizer::fit_roots`] and
    /// [`crate::optimizer::build_mat_problem`], test harnesses can rebuild
    /// the exact materialization problem this fit solved.
    pub fn output_node(&self) -> NodeId {
        self.plan.output_node()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use keystone_dataflow::cluster::ClusterProfile;

    struct Inc;
    impl Transformer<f64, f64> for Inc {
        fn apply(&self, x: &f64) -> f64 {
            x + 1.0
        }
    }

    struct Scale;
    impl Transformer<f64, f64> for Scale {
        fn apply(&self, x: &f64) -> f64 {
            x * 3.0
        }
    }

    /// Subtracts the training mean.
    struct MeanCenter;
    impl Estimator<f64, f64> for MeanCenter {
        fn fit(
            &self,
            data: &DistCollection<f64>,
            _ctx: &ExecContext,
        ) -> Box<dyn Transformer<f64, f64>> {
            let n = data.count().max(1) as f64;
            let mu = data.aggregate(0.0, |a, x| a + x, |a, b| a + b) / n;
            struct Shift(f64);
            impl Transformer<f64, f64> for Shift {
                fn apply(&self, x: &f64) -> f64 {
                    x - self.0
                }
            }
            Box::new(Shift(mu))
        }
    }

    /// Fits b so that x + b approximates labels.
    struct OffsetFit;
    impl LabelEstimator<f64, f64, f64> for OffsetFit {
        fn fit(
            &self,
            data: &DistCollection<f64>,
            labels: &DistCollection<f64>,
            _ctx: &ExecContext,
        ) -> Box<dyn Transformer<f64, f64>> {
            let n = data.count().max(1) as f64;
            let dx = data.aggregate(0.0, |a, x| a + x, |a, b| a + b) / n;
            let dy = labels.aggregate(0.0, |a, x| a + x, |a, b| a + b) / n;
            struct Off(f64);
            impl Transformer<f64, f64> for Off {
                fn apply(&self, x: &f64) -> f64 {
                    x + self.0
                }
            }
            Box::new(Off(dy - dx))
        }
    }

    fn ctx() -> ExecContext {
        ExecContext::new(ClusterProfile::R3_4xlarge.descriptor(4))
    }

    fn small_profile() -> ProfileOptions {
        ProfileOptions {
            sizes: vec![4, 8],
            seed: 1,
            select_operators: true,
            deterministic_timing: true,
        }
    }

    #[test]
    fn transformer_only_pipeline() {
        let pipe = Pipeline::<f64, f64>::input().and_then(Inc).and_then(Scale);
        let ctx = ctx();
        let (fitted, report) = pipe.fit(
            &ctx,
            &PipelineOptions {
                profile: small_profile(),
                ..Default::default()
            },
        );
        assert_eq!(report.eliminated_nodes, 0);
        let out = fitted.apply(&DistCollection::from_vec(vec![1.0, 2.0], 2), &ctx);
        assert_eq!(out.collect(), vec![6.0, 9.0]);
        assert_eq!(fitted.apply_one(&0.0, &ctx), 3.0);
    }

    #[test]
    fn estimator_pipeline_fits_and_applies() {
        let train = DistCollection::from_vec(vec![1.0, 2.0, 3.0], 2);
        let pipe = Pipeline::<f64, f64>::input()
            .and_then(Inc)
            .and_then_est(MeanCenter, &train);
        let ctx = ctx();
        let (fitted, _) = pipe.fit(
            &ctx,
            &PipelineOptions {
                profile: small_profile(),
                ..Default::default()
            },
        );
        // Training mean of Inc(train) = mean(2,3,4) = 3; apply: x+1-3.
        let out = fitted.apply(&DistCollection::from_vec(vec![5.0], 1), &ctx);
        assert_eq!(out.collect(), vec![3.0]);
    }

    #[test]
    fn label_estimator_pipeline() {
        let train = DistCollection::from_vec(vec![1.0, 2.0, 3.0], 2);
        let labels = DistCollection::from_vec(vec![11.0, 12.0, 13.0], 2);
        let pipe = Pipeline::<f64, f64>::input().and_then_label_est(OffsetFit, &train, &labels);
        let ctx = ctx();
        let (fitted, _) = pipe.fit(
            &ctx,
            &PipelineOptions {
                profile: small_profile(),
                ..Default::default()
            },
        );
        let out = fitted.apply(&DistCollection::from_vec(vec![5.0], 1), &ctx);
        assert_eq!(out.collect(), vec![15.0]);
    }

    #[test]
    fn cse_merges_duplicated_prefixes() {
        // Two estimators over the same data duplicate the Inc prefix; CSE
        // must merge the copies.
        let train = DistCollection::from_vec(vec![1.0, 2.0, 3.0, 4.0], 2);
        let pipe = Pipeline::<f64, f64>::input()
            .and_then(Inc)
            .and_then_est(MeanCenter, &train)
            .and_then_est(MeanCenter, &train);
        let ctx = ctx();
        let (_, report) = pipe.fit(
            &ctx,
            &PipelineOptions {
                profile: small_profile(),
                ..Default::default()
            },
        );
        assert!(
            report.eliminated_nodes >= 1,
            "expected CSE to merge duplicated prefix, eliminated = {}",
            report.eliminated_nodes
        );
    }

    #[test]
    fn gather_merges_branches() {
        struct ToVec(f64);
        impl Transformer<f64, Vec<f64>> for ToVec {
            fn apply(&self, x: &f64) -> Vec<f64> {
                vec![x * self.0]
            }
        }
        let input = Pipeline::<f64, f64>::input();
        let b1 = input.and_then(ToVec(1.0));
        let b2 = input.and_then(ToVec(10.0));
        let pipe = gather(&[b1, b2]);
        let ctx = ctx();
        let (fitted, _) = pipe.fit(
            &ctx,
            &PipelineOptions {
                profile: small_profile(),
                ..Default::default()
            },
        );
        let out = fitted.apply(&DistCollection::from_vec(vec![2.0], 1), &ctx);
        assert_eq!(out.collect(), vec![vec![2.0, 20.0]]);
    }

    #[test]
    fn opt_levels_produce_same_results() {
        let train = DistCollection::from_vec((0..32).map(|i| i as f64).collect::<Vec<_>>(), 4);
        let pipe = Pipeline::<f64, f64>::input()
            .and_then(Inc)
            .and_then_est(MeanCenter, &train);
        let test = DistCollection::from_vec(vec![1.0, 7.0], 1);
        let mut results = Vec::new();
        for opts in [
            PipelineOptions::none(),
            PipelineOptions {
                profile: small_profile(),
                ..PipelineOptions::pipe_only()
            },
            PipelineOptions {
                profile: small_profile(),
                ..PipelineOptions::full()
            },
        ] {
            let ctx = ctx();
            let (fitted, _) = pipe.fit(&ctx, &opts);
            results.push(fitted.apply(&test, &ctx).collect());
        }
        assert_eq!(results[0], results[1], "None vs PipeOnly diverged");
        assert_eq!(results[1], results[2], "PipeOnly vs Full diverged");
    }

    #[test]
    fn fusion_collapses_chains_and_preserves_results() {
        let train = DistCollection::from_vec((0..32).map(|i| i as f64).collect::<Vec<_>>(), 4);
        let pipe = Pipeline::<f64, f64>::input()
            .and_then(Inc)
            .and_then(Scale)
            .and_then(Inc)
            .and_then_est(MeanCenter, &train);
        let test = DistCollection::from_vec(vec![1.0, 7.0], 2);
        let base = PipelineOptions {
            profile: small_profile(),
            ..Default::default()
        };

        let ctx_off = ctx();
        let (fitted_off, report_off) = pipe.fit(&ctx_off, &base.clone().with_fusion(false));
        let ctx_on = ctx();
        let (fitted_on, report_on) = pipe.fit(&ctx_on, &base);

        assert_eq!(report_off.fused_nodes, 0);
        assert!(report_off.fused.is_empty());
        // The apply-side Inc -> Scale -> Inc chain always fuses (it is
        // unprofiled, so never picked for materialization).
        assert!(
            report_on
                .fused
                .iter()
                .any(|(_, members)| members.len() >= 3),
            "expected a 3-member fused chain, got {:?}",
            report_on.fused
        );
        assert!(report_on.fused_nodes >= 2);
        // Picks are chosen before fusion on the identical graph.
        assert_eq!(report_off.cache_set, report_on.cache_set);

        let off = fitted_off.apply(&test, &ctx_off).collect();
        let on = fitted_on.apply(&test, &ctx_on).collect();
        assert_eq!(off, on, "fusion changed pipeline semantics");
    }

    #[test]
    fn fusion_merge_events_are_deterministic_dag_order() {
        struct ToVec(f64);
        impl Transformer<f64, Vec<f64>> for ToVec {
            fn apply(&self, x: &f64) -> Vec<f64> {
                vec![x * self.0]
            }
        }
        struct VShift(f64);
        impl Transformer<Vec<f64>, Vec<f64>> for VShift {
            fn apply(&self, x: &Vec<f64>) -> Vec<f64> {
                x.iter().map(|v| v + self.0).collect()
            }
        }
        let input = Pipeline::<f64, f64>::input();
        let b1 = input.and_then(ToVec(1.0)).and_then(VShift(0.5));
        let b2 = input.and_then(ToVec(10.0)).and_then(VShift(0.25));
        let pipe = gather(&[b1, b2]);
        let run = || {
            let ctx = ctx();
            let _ = pipe.fit(
                &ctx,
                &PipelineOptions {
                    profile: small_profile(),
                    ..Default::default()
                },
            );
            ctx.tracer
                .events()
                .into_iter()
                .filter_map(|e| match e.event {
                    crate::trace::TraceEvent::FusionMerge {
                        node,
                        label,
                        members,
                    } => Some((node, label, members)),
                    _ => None,
                })
                .collect::<Vec<_>>()
        };
        let first = run();
        let second = run();
        assert_eq!(first.len(), 2, "each branch is one fused chain: {first:?}");
        assert!(
            first.windows(2).all(|w| w[0].0 < w[1].0),
            "FusionMerge events must arrive in ascending node order: {first:?}"
        );
        assert_eq!(first, second, "event stream must be deterministic");
        for (_, label, members) in &first {
            assert_eq!(members.len(), 2);
            assert_eq!(label, &format!("Fused[{}]", members.join("+")));
        }
    }

    #[test]
    fn fit_report_contains_dot() {
        let train = DistCollection::from_vec(vec![1.0, 2.0], 1);
        let pipe = Pipeline::<f64, f64>::input().and_then_est(MeanCenter, &train);
        let ctx = ctx();
        let (_, report) = pipe.fit(
            &ctx,
            &PipelineOptions {
                profile: small_profile(),
                ..Default::default()
            },
        );
        assert!(report.dot.contains("digraph"));
        assert!(report.dot.contains("MeanCenter"));
    }

    #[test]
    #[should_panic(expected = "same pipeline input")]
    fn gather_rejects_foreign_branches() {
        struct ToVec;
        impl Transformer<f64, Vec<f64>> for ToVec {
            fn apply(&self, x: &f64) -> Vec<f64> {
                vec![*x]
            }
        }
        let a = Pipeline::<f64, f64>::input().and_then(ToVec);
        let b = Pipeline::<f64, f64>::input().and_then(ToVec);
        let _ = gather(&[a, b]);
    }
}
