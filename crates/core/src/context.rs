//! Execution context threaded through every operator invocation.

use keystone_dataflow::cluster::{ClusterProfile, ResourceDesc};
use keystone_dataflow::faults::FaultPlan;
use keystone_dataflow::metrics::MetricsRegistry;
use keystone_dataflow::simclock::SimClock;
use keystone_dataflow::stats::ExecStats;

use crate::trace::Tracer;

/// Shared execution context: the cluster descriptor plus both clocks, the
/// observability event sink, and the partition-level metrics registry.
///
/// Cloning is cheap and shares the underlying ledgers, so operators deep in
/// a pipeline charge the same clocks — and trace into the same sink — the
/// driver reads.
#[derive(Debug, Clone)]
pub struct ExecContext {
    /// Cluster resource descriptor (`R`).
    pub resources: ResourceDesc,
    /// Simulated cluster clock.
    pub sim: SimClock,
    /// Wall-clock stage ledger.
    pub wall: ExecStats,
    /// Structured event sink for optimizer and executor decisions.
    pub tracer: Tracer,
    /// Partition-level task spans, counters and histograms. The executor
    /// opens a task scope per node, so every `DistCollection` operation an
    /// operator runs lands here with stage/partition/worker attribution.
    pub metrics: MetricsRegistry,
    /// Optional deterministic fault-injection plan. When set, the executor
    /// threads it into every task scope (task failures and stragglers land
    /// inside partition work) and probes it for cache-entry loss; recovery
    /// costs are charged back to `sim`.
    pub faults: Option<FaultPlan>,
}

impl ExecContext {
    /// Context over an explicit descriptor.
    pub fn new(resources: ResourceDesc) -> Self {
        ExecContext {
            resources,
            sim: SimClock::new(),
            wall: ExecStats::new(),
            tracer: Tracer::new(),
            metrics: MetricsRegistry::new(),
            faults: None,
        }
    }

    /// Attaches a fault-injection plan; pipelines fit under this context
    /// will see its scheduled task failures, stragglers, and cache losses.
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.faults = Some(plan);
        self
    }

    /// Convenience: a 16-node `r3.4xlarge` cluster, the paper's default.
    /// Use this when the quantity of interest is the *simulated* cluster
    /// clock (scaling studies, paper-scale cost estimates).
    pub fn default_cluster() -> Self {
        Self::new(ClusterProfile::R3_4xlarge.descriptor(16))
    }

    /// Context whose resource descriptor is microbenchmarked from the local
    /// machine (§3: the descriptor "is collected via configuration data and
    /// microbenchmarks"). Use this when pipelines actually execute here and
    /// wall time is the quantity of interest — the optimizer's choices then
    /// reflect the hardware the operators really run on. `workers` should
    /// match the collection partition count (local parallelism).
    pub fn calibrated(workers: usize) -> Self {
        Self::new(keystone_dataflow::cluster::calibrate_local(workers))
    }

    /// Copy of this context pointing at a different worker count but
    /// sharing clocks (used by scaling sweeps).
    pub fn with_workers(&self, workers: usize) -> Self {
        ExecContext {
            resources: self.resources.with_workers(workers),
            sim: self.sim.clone(),
            wall: self.wall.clone(),
            tracer: self.tracer.clone(),
            metrics: self.metrics.clone(),
            faults: self.faults.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_cluster_is_16_nodes() {
        let ctx = ExecContext::default_cluster();
        assert_eq!(ctx.resources.workers, 16);
    }

    #[test]
    fn with_workers_shares_clocks() {
        let ctx = ExecContext::default_cluster();
        let scaled = ctx.with_workers(128);
        scaled.sim.charge_seconds("x", 1.0, 0.0);
        assert_eq!(ctx.sim.total_seconds(), 1.0);
        assert_eq!(scaled.resources.workers, 128);
    }
}
