//! Execution subsampling (§4.1): the pipeline profile.
//!
//! The profiler runs the fit-relevant part of the DAG on small samples
//! (512 and 1024 records by default), recording each node's execution time
//! and output size, then extrapolates linearly to full scale — the paper
//! reports memory extrapolations as highly accurate and runtimes within 15%.
//!
//! Operator-level optimization is interleaved exactly as §4.1 describes:
//! each node is optimized using statistics derived from the sample outputs
//! of its (already optimized) predecessors, then executed on the sample so
//! its successors can be optimized in turn.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

use crate::context::ExecContext;
use crate::graph::{Graph, NodeId, NodeKind};
use crate::operator::{AnyData, ErasedTransformer, InputHandle};
use crate::record::DataStats;

/// Extrapolated profile of one node.
#[derive(Debug, Clone, Default)]
pub struct NodeProfile {
    /// Marginal seconds per input record (slope of the linear fit).
    pub secs_per_record: f64,
    /// Fixed seconds per execution (intercept, clamped at 0).
    pub fixed_secs: f64,
    /// Output bytes per output record.
    pub out_bytes_per_record: f64,
    /// Output records produced per input record.
    pub out_records_per_in: f64,
    /// Full-scale input record count.
    pub records_hint: usize,
    /// Output statistics at full scale.
    pub out_stats: DataStats,
}

impl NodeProfile {
    /// Estimated seconds for one execution over `records` input records.
    pub fn est_secs(&self, records: usize) -> f64 {
        self.fixed_secs + self.secs_per_record * records as f64
    }

    /// Estimated output bytes at full scale.
    pub fn est_output_bytes(&self) -> f64 {
        self.out_stats.total_bytes()
    }
}

/// The pipeline profile: per-node extrapolations plus the physical-operator
/// choices made along the way.
#[derive(Debug, Clone, Default)]
pub struct PipelineProfile {
    /// Per-node extrapolated profiles.
    pub nodes: HashMap<NodeId, NodeProfile>,
    /// `(node, chosen physical operator)` decisions.
    pub choices: Vec<(NodeId, String)>,
}

/// Profiling options.
#[derive(Debug, Clone)]
pub struct ProfileOptions {
    /// Sample sizes; the paper uses 512 and 1024.
    pub sizes: Vec<usize>,
    /// Sampling seed.
    pub seed: u64,
    /// Whether to perform operator-level (physical) selection.
    pub select_operators: bool,
    /// Replace wall-clock measurements with a synthetic clock that is a
    /// pure function of (operator label, input records). Real timings make
    /// the materialization picks a race between near-tied candidates, so
    /// differential oracles that compare picks across independent fits
    /// (e.g. fusion on vs off) need this to hold deterministically.
    pub deterministic_timing: bool,
}

impl Default for ProfileOptions {
    fn default() -> Self {
        ProfileOptions {
            sizes: vec![512, 1024],
            seed: 0xBEEF,
            select_operators: true,
            deterministic_timing: false,
        }
    }
}

/// The synthetic profiling clock: linear in `in_records` with an
/// FNV-1a-derived per-label rate, so distinct operators order stably and
/// the two-size linear fit recovers a non-negative slope and intercept.
/// Crate-visible so [`ExecutablePlan::est_apply_secs`] can price apply-path
/// nodes the profiler skipped (they depend on the runtime input) on the
/// same deterministic scale.
///
/// [`ExecutablePlan::est_apply_secs`]: crate::pipeline::ExecutablePlan::est_apply_secs
pub(crate) fn synthetic_secs(label: &str, in_records: usize) -> f64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in label.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    let rate = 1.0 + (h % 1024) as f64 / 1024.0;
    1e-6 * rate * in_records as f64 + 1e-8 * rate
}

/// Synthetic-scale price of a columnar-lowered fused chain relative to the
/// record path: tight slice loops replace per-record boxed dispatch, so a
/// columnar node is charged half the record-path rate. Like the base rate
/// this is a *modeling* constant, not a measurement — it exists so the
/// deterministic sim ledger credits the columnar lowering consistently.
pub(crate) const COLUMNAR_SYNTHETIC_DISCOUNT: f64 = 0.5;

/// Synthetic pricing for an unprofiled node, on the per-label scale above,
/// with the columnar discount applied to fused chains executing on the
/// columnar path.
pub(crate) fn synthetic_node_secs(node: &crate::graph::Node, in_records: usize) -> f64 {
    let base = synthetic_secs(&node.label, in_records);
    match &node.kind {
        crate::graph::NodeKind::Transform(op) if op.fused_columnar() => {
            base * COLUMNAR_SYNTHETIC_DISCOUNT
        }
        _ => base,
    }
}

/// One raw measurement of a node at one sample size.
#[derive(Debug, Clone, Copy, Default)]
struct Measurement {
    in_records: usize,
    secs: f64,
    out_records: usize,
    out_bytes_per_record: f64,
}

struct SampleHandle(AnyData);
impl InputHandle for SampleHandle {
    fn get(&self) -> AnyData {
        self.0.clone()
    }
}

/// Profiles the subgraph feeding `roots`, mutating `graph` in place when
/// operator selection replaces optimizable nodes with their chosen physical
/// implementation.
pub fn profile_and_select(
    graph: &mut Graph,
    roots: &[NodeId],
    ctx: &ExecContext,
    opts: &ProfileOptions,
) -> PipelineProfile {
    let mut profile = PipelineProfile::default();
    // Nodes depending on the runtime input cannot be profiled at fit time.
    let skip = graph
        .runtime_input()
        .map(|r| graph.dependents(r))
        .unwrap_or_default();
    let topo = graph.topo_ancestors(roots);
    let mut measurements: HashMap<NodeId, Vec<Measurement>> = HashMap::new();
    let mut scales: HashMap<NodeId, f64> = HashMap::new();
    let mut full_counts: HashMap<NodeId, usize> = HashMap::new();
    let mut sample_stats: HashMap<NodeId, DataStats> = HashMap::new();

    for (pass, &size) in opts.sizes.iter().enumerate() {
        let mut outputs: HashMap<NodeId, AnyData> = HashMap::new();
        let mut models: HashMap<NodeId, Arc<dyn ErasedTransformer>> = HashMap::new();

        for &id in &topo {
            if skip.contains(&id) {
                continue;
            }
            let node = graph.nodes[id].clone();
            match &node.kind {
                NodeKind::RuntimeInput => {}
                NodeKind::DataSource(data) => {
                    let full = data.stats().count;
                    let sampled = sample_anydata(data, size, opts.seed);
                    let got = sampled.stats().count.max(1);
                    scales.insert(id, full as f64 / got as f64);
                    full_counts.insert(id, full);
                    sample_stats.insert(id, *sampled.stats());
                    outputs.insert(id, sampled);
                }
                NodeKind::Transform(op) => {
                    let in_id = node.inputs[0];
                    let scale = scales.get(&in_id).copied().unwrap_or(1.0);
                    let inputs: Vec<AnyData> =
                        node.inputs.iter().map(|i| outputs[i].clone()).collect();
                    // Operator selection on the first pass only.
                    let op = if pass == 0 && opts.select_operators {
                        match op.physical_options() {
                            Some(options) if !options.is_empty() => {
                                let stats: Vec<DataStats> = node
                                    .inputs
                                    .iter()
                                    .map(|i| {
                                        full_scale_stats(&outputs[i], &scales, *i, &full_counts)
                                    })
                                    .collect();
                                let best = pick_min(&options, |o| {
                                    (o.cost)(&stats, &ctx.resources)
                                        .estimated_seconds(&ctx.resources)
                                });
                                let chosen = &options[best];
                                profile.choices.push((id, chosen.name.clone()));
                                trace_choice(
                                    ctx,
                                    id,
                                    &node.label,
                                    chosen.name.clone(),
                                    options.iter().map(|o| {
                                        (o.name.clone(), (o.cost)(&stats, &ctx.resources))
                                    }),
                                );
                                let new_label = format!("{}[{}]", node.label, chosen.name);
                                graph.nodes[id].kind = NodeKind::Transform(chosen.op.clone());
                                graph.nodes[id].label = new_label;
                                chosen.op.clone()
                            }
                            _ => op.clone(),
                        }
                    } else if let NodeKind::Transform(cur) = &graph.nodes[id].kind {
                        cur.clone()
                    } else {
                        op.clone()
                    };
                    let in_records = inputs[0].stats().count;
                    let start = Instant::now();
                    let out = op.apply_any(&inputs, ctx);
                    let secs = if opts.deterministic_timing {
                        synthetic_secs(&graph.nodes[id].label, in_records)
                    } else {
                        start.elapsed().as_secs_f64()
                    };
                    record_measurement(&mut measurements, id, in_records, secs, &out);
                    scales.insert(id, scale);
                    full_counts.insert(id, (out.stats().count as f64 * scale).round() as usize);
                    sample_stats.insert(id, *out.stats());
                    outputs.insert(id, out);
                }
                NodeKind::Estimate(op) => {
                    let op = if pass == 0 && opts.select_operators {
                        match op.physical_options() {
                            Some(options) if !options.is_empty() => {
                                let stats: Vec<DataStats> = node
                                    .inputs
                                    .iter()
                                    .map(|i| {
                                        full_scale_stats(&outputs[i], &scales, *i, &full_counts)
                                    })
                                    .collect();
                                let best = pick_min(&options, |o| {
                                    (o.cost)(&stats, &ctx.resources)
                                        .estimated_seconds(&ctx.resources)
                                });
                                let chosen = &options[best];
                                profile.choices.push((id, chosen.name.clone()));
                                trace_choice(
                                    ctx,
                                    id,
                                    &node.label,
                                    chosen.name.clone(),
                                    options.iter().map(|o| {
                                        (o.name.clone(), (o.cost)(&stats, &ctx.resources))
                                    }),
                                );
                                let new_label = format!("{}[{}]", node.label, chosen.name);
                                graph.nodes[id].kind = NodeKind::Estimate(chosen.op.clone());
                                graph.nodes[id].label = new_label;
                                chosen.op.clone()
                            }
                            _ => op.clone(),
                        }
                    } else if let NodeKind::Estimate(cur) = &graph.nodes[id].kind {
                        cur.clone()
                    } else {
                        op.clone()
                    };
                    let handles: Vec<SampleHandle> = node
                        .inputs
                        .iter()
                        .map(|i| SampleHandle(outputs[i].clone()))
                        .collect();
                    let handle_refs: Vec<&dyn InputHandle> =
                        handles.iter().map(|h| h as &dyn InputHandle).collect();
                    let in_records = outputs[&node.inputs[0]].stats().count;
                    let start = Instant::now();
                    let model = op.fit_any(&handle_refs, ctx);
                    let secs = if opts.deterministic_timing {
                        synthetic_secs(&graph.nodes[id].label, in_records)
                    } else {
                        start.elapsed().as_secs_f64()
                    };
                    measurements.entry(id).or_default().push(Measurement {
                        in_records,
                        secs,
                        out_records: 1,
                        out_bytes_per_record: 1024.0,
                    });
                    scales.insert(id, scales.get(&node.inputs[0]).copied().unwrap_or(1.0));
                    full_counts.insert(
                        id,
                        (in_records as f64 * scales.get(&node.inputs[0]).copied().unwrap_or(1.0))
                            .round() as usize,
                    );
                    models.insert(id, model);
                }
                NodeKind::ModelApply => {
                    let model = models[&node.inputs[0]].clone();
                    let data = outputs[&node.inputs[1]].clone();
                    let scale = scales.get(&node.inputs[1]).copied().unwrap_or(1.0);
                    let in_records = data.stats().count;
                    let start = Instant::now();
                    let out = model.apply_any(&[data], ctx);
                    let secs = if opts.deterministic_timing {
                        synthetic_secs(&graph.nodes[id].label, in_records)
                    } else {
                        start.elapsed().as_secs_f64()
                    };
                    record_measurement(&mut measurements, id, in_records, secs, &out);
                    scales.insert(id, scale);
                    full_counts.insert(id, (out.stats().count as f64 * scale).round() as usize);
                    sample_stats.insert(id, *out.stats());
                    outputs.insert(id, out);
                }
            }
        }
    }

    // Extrapolate each node's measurements to full scale.
    for (id, ms) in &measurements {
        let (slope, intercept) = linear_fit(ms);
        let last = ms.last().expect("at least one measurement");
        let scale = scales.get(id).copied().unwrap_or(1.0);
        let records_hint = (last.in_records as f64 * scale).round() as usize;
        let out_full = full_counts.get(id).copied().unwrap_or(records_hint);
        let out_stats = sample_stats
            .get(id)
            .copied()
            .unwrap_or_else(DataStats::empty)
            .at_scale(out_full);
        profile.nodes.insert(
            *id,
            NodeProfile {
                secs_per_record: slope,
                fixed_secs: intercept,
                out_bytes_per_record: last.out_bytes_per_record,
                out_records_per_in: if last.in_records > 0 {
                    last.out_records as f64 / last.in_records as f64
                } else {
                    1.0
                },
                records_hint,
                out_stats,
            },
        );
    }
    profile
}

fn record_measurement(
    measurements: &mut HashMap<NodeId, Vec<Measurement>>,
    id: NodeId,
    in_records: usize,
    secs: f64,
    out: &AnyData,
) {
    measurements.entry(id).or_default().push(Measurement {
        in_records,
        secs,
        out_records: out.stats().count,
        out_bytes_per_record: out.stats().bytes_per_record,
    });
}

/// Stats of a node's sample output rescaled to its full-scale record count.
fn full_scale_stats(
    sample: &AnyData,
    scales: &HashMap<NodeId, f64>,
    id: NodeId,
    full_counts: &HashMap<NodeId, usize>,
) -> DataStats {
    let full = full_counts.get(&id).copied().unwrap_or_else(|| {
        let scale = scales.get(&id).copied().unwrap_or(1.0);
        (sample.stats().count as f64 * scale).round() as usize
    });
    sample.stats().at_scale(full)
}

/// Records an [`OperatorChoice`](crate::trace::TraceEvent::OperatorChoice)
/// event carrying every candidate's cost profile — winners and losers — so
/// reports can show what the optimizer rejected and why.
fn trace_choice(
    ctx: &ExecContext,
    node: NodeId,
    label: &str,
    chosen: String,
    costs: impl Iterator<Item = (String, keystone_dataflow::cost::CostProfile)>,
) {
    let candidates: Vec<crate::trace::OperatorCandidate> = costs
        .map(|(name, cost)| crate::trace::OperatorCandidate {
            name,
            est_secs: cost.estimated_seconds(&ctx.resources),
            cost,
        })
        .collect();
    ctx.tracer.record(crate::trace::TraceEvent::OperatorChoice {
        node,
        label: label.to_string(),
        chosen,
        candidates,
    });
}

fn pick_min<T>(items: &[T], score: impl Fn(&T) -> f64) -> usize {
    let mut best = 0;
    let mut best_score = f64::INFINITY;
    for (i, item) in items.iter().enumerate() {
        let s = score(item);
        if s < best_score {
            best_score = s;
            best = i;
        }
    }
    best
}

/// Least-squares line through the measurements; degenerates gracefully when
/// all sample sizes coincide (slope = t/n, intercept 0). Both outputs are
/// clamped non-negative so extrapolations stay physical.
fn linear_fit(ms: &[Measurement]) -> (f64, f64) {
    if ms.is_empty() {
        return (0.0, 0.0);
    }
    let n = ms.len() as f64;
    let mean_x = ms.iter().map(|m| m.in_records as f64).sum::<f64>() / n;
    let mean_y = ms.iter().map(|m| m.secs).sum::<f64>() / n;
    let var_x = ms
        .iter()
        .map(|m| (m.in_records as f64 - mean_x).powi(2))
        .sum::<f64>();
    if var_x < 1e-12 {
        let slope = if mean_x > 0.0 { mean_y / mean_x } else { 0.0 };
        return (slope.max(0.0), 0.0);
    }
    let cov = ms
        .iter()
        .map(|m| (m.in_records as f64 - mean_x) * (m.secs - mean_y))
        .sum::<f64>();
    let slope = (cov / var_x).max(0.0);
    let intercept = (mean_y - slope * mean_x).max(0.0);
    (slope, intercept)
}

fn sample_anydata(data: &AnyData, size: usize, seed: u64) -> AnyData {
    data.sample_erased(size, seed)
}

impl AnyData {
    /// Samples up to `size` records deterministically, preserving the
    /// element type, and rewraps as a single-partition collection so
    /// profiled timings are sequential per-record costs.
    pub fn sample_erased(&self, size: usize, seed: u64) -> AnyData {
        (self.sampler())(self, size, seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operator::{Transformer, TypedTransformer};
    use keystone_dataflow::collection::DistCollection;
    use keystone_dataflow::cost::CostProfile;

    struct SlowId(u64);
    impl Transformer<Vec<f64>, Vec<f64>> for SlowId {
        fn apply(&self, x: &Vec<f64>) -> Vec<f64> {
            // Busy-wait proportional to self.0 to create measurable cost.
            let mut acc = 0.0f64;
            for i in 0..self.0 * 50 {
                acc += (i as f64).sqrt();
            }
            std::hint::black_box(acc);
            x.clone()
        }
    }

    fn source(n: usize) -> NodeKind {
        let data: Vec<Vec<f64>> = (0..n).map(|i| vec![i as f64, 1.0]).collect();
        NodeKind::DataSource(AnyData::wrap(DistCollection::from_vec(data, 4)))
    }

    #[test]
    fn profiles_chain_and_extrapolates() {
        let mut g = Graph::new();
        let src = g.add(source(5000), vec![], "src");
        let t = g.add(
            NodeKind::Transform(Arc::new(TypedTransformer::new(SlowId(10)))),
            vec![src],
            "slow",
        );
        let ctx = ExecContext::default_cluster();
        let prof = profile_and_select(
            &mut g,
            &[t],
            &ctx,
            &ProfileOptions {
                sizes: vec![128, 256],
                seed: 7,
                select_operators: true,
                ..Default::default()
            },
        );
        let p = prof.nodes.get(&t).expect("profiled");
        assert!(p.secs_per_record >= 0.0);
        assert_eq!(p.records_hint, 5000, "hint {}", p.records_hint);
        assert_eq!(p.out_stats.count, 5000);
        assert!(p.est_output_bytes() > 0.0);
        assert!((p.out_records_per_in - 1.0).abs() < 1e-9);
    }

    #[test]
    fn linear_fit_two_points() {
        let ms = vec![
            Measurement {
                in_records: 100,
                secs: 1.0,
                out_records: 100,
                out_bytes_per_record: 8.0,
            },
            Measurement {
                in_records: 200,
                secs: 1.8,
                out_records: 200,
                out_bytes_per_record: 8.0,
            },
        ];
        let (slope, intercept) = linear_fit(&ms);
        assert!((slope - 0.008).abs() < 1e-9);
        assert!((intercept - 0.2).abs() < 1e-9);
    }

    #[test]
    fn linear_fit_degenerate_single_size() {
        let ms = vec![Measurement {
            in_records: 100,
            secs: 2.0,
            out_records: 100,
            out_bytes_per_record: 8.0,
        }];
        let (slope, intercept) = linear_fit(&ms);
        assert!((slope - 0.02).abs() < 1e-9);
        assert_eq!(intercept, 0.0);
    }

    #[test]
    fn linear_fit_never_negative() {
        // Decreasing time with size (noise) must clamp slope to 0.
        let ms = vec![
            Measurement {
                in_records: 100,
                secs: 2.0,
                out_records: 100,
                out_bytes_per_record: 8.0,
            },
            Measurement {
                in_records: 200,
                secs: 1.0,
                out_records: 200,
                out_bytes_per_record: 8.0,
            },
        ];
        let (slope, intercept) = linear_fit(&ms);
        assert_eq!(slope, 0.0);
        assert!(intercept >= 0.0);
    }

    struct CheapOp;
    impl Transformer<Vec<f64>, Vec<f64>> for CheapOp {
        fn apply(&self, x: &Vec<f64>) -> Vec<f64> {
            x.clone()
        }
    }
    struct PriceyOp;
    impl Transformer<Vec<f64>, Vec<f64>> for PriceyOp {
        fn apply(&self, x: &Vec<f64>) -> Vec<f64> {
            x.iter().map(|v| v + 0.0).collect()
        }
    }

    struct TwoWay;
    impl crate::operator::OptimizableTransformer<Vec<f64>, Vec<f64>> for TwoWay {
        fn options(&self) -> Vec<crate::operator::TransformerOption<Vec<f64>, Vec<f64>>> {
            vec![
                crate::operator::TransformerOption {
                    name: "pricey".into(),
                    cost: Box::new(|stats, _| CostProfile::compute(stats[0].count as f64 * 1e6)),
                    op: Box::new(PriceyOp),
                },
                crate::operator::TransformerOption {
                    name: "cheap".into(),
                    cost: Box::new(|stats, _| CostProfile::compute(stats[0].count as f64)),
                    op: Box::new(CheapOp),
                },
            ]
        }
    }

    #[test]
    fn operator_selection_picks_cheapest_and_rewrites_graph() {
        let mut g = Graph::new();
        let src = g.add(source(1000), vec![], "src");
        let t = g.add(
            NodeKind::Transform(Arc::new(crate::operator::TypedOptimizableTransformer::new(
                TwoWay,
            ))),
            vec![src],
            "twoway",
        );
        let ctx = ExecContext::default_cluster();
        let prof = profile_and_select(&mut g, &[t], &ctx, &ProfileOptions::default());
        assert_eq!(prof.choices.len(), 1);
        assert_eq!(prof.choices[0], (t, "cheap".to_string()));
        assert!(g.nodes[t].label.contains("cheap"));
        // The rewritten node is no longer optimizable.
        if let NodeKind::Transform(op) = &g.nodes[t].kind {
            assert!(op.physical_options().is_none());
        } else {
            panic!("expected transform");
        }
    }

    #[test]
    fn selection_disabled_keeps_default() {
        let mut g = Graph::new();
        let src = g.add(source(1000), vec![], "src");
        let t = g.add(
            NodeKind::Transform(Arc::new(crate::operator::TypedOptimizableTransformer::new(
                TwoWay,
            ))),
            vec![src],
            "twoway",
        );
        let ctx = ExecContext::default_cluster();
        let prof = profile_and_select(
            &mut g,
            &[t],
            &ctx,
            &ProfileOptions {
                select_operators: false,
                ..Default::default()
            },
        );
        assert!(prof.choices.is_empty());
        if let NodeKind::Transform(op) = &g.nodes[t].kind {
            assert!(op.physical_options().is_some(), "node must stay logical");
        }
    }
}
