//! Multi-tenant forest optimization (ROADMAP item 5): Algorithm 1 and the
//! whole-pipeline passes generalized from one DAG to a *forest* of tenant
//! pipelines fitted concurrently — the hyperparameter-sweep / per-segment
//! regime where SystemML-style plan costing pays for itself across many
//! near-identical plans rather than a single one.
//!
//! Three cooperating layers:
//!
//! 1. **Cross-pipeline CSE** ([`merge_forest`]): tenant graph snapshots are
//!    concatenated (input ids offset) and run through the existing
//!    [`eliminate_common_subexpressions`] pass. Because CSE signatures are
//!    content-addressed, structurally-identical prefixes across tenants — the
//!    shared featurization trunk of a sweep — collapse into one shared plan
//!    region. Every node the merge leaves shared by ≥ 2 tenants is reported
//!    as a deterministic [`TraceEvent::CrossCseMerge`].
//! 2. **Global greedy materialization** ([`forest_cache_set`]): one shared
//!    cache budget allocated by a forest-wide `MatProblem` whose sink set is
//!    the union of every tenant's fit roots, so reuse counts sum demand
//!    *across* tenants. The chosen set is the better of the forest-wide
//!    greedy solution and the budget-trimmed union of per-tenant greedy
//!    solutions, so it dominates or equals the per-tenant answer on
//!    estimated cost by construction.
//! 3. **Fair wave scheduling** ([`WaveScheduler`]): a deterministic
//!    deficit-round-robin scheduler interleaves estimator waves from the
//!    concurrent fits on the shared executor. Each wave runs under a
//!    `tenant{i}` stage tag, so [`SimClock`](keystone_dataflow::simclock::
//!    SimClock) charges land in per-tenant lanes (rendered as separate
//!    tracks by the Chrome-trace exporter) and per-tenant rows appear in
//!    `PipelineReport`/`RunArtifact`.
//!
//! **Invariant**: each tenant's fitted pipeline is bit-identical to the
//! pipeline a solo [`Pipeline::fit`] would produce — forest optimization may
//! only change *when* and *what is shared*, never *what is computed*. And
//! the forest's total simulated cost never exceeds the sum of solo costs:
//! [`fit_forest`] scratch-measures both strategies on throwaway contexts and
//! replays only the winner on the real one (determinism makes the replay
//! exact), so even adversarially mis-declared operators cannot make sharing
//! a regression.

use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::Arc;
use std::time::Instant;

use keystone_dataflow::cache::{CacheManager, CachePolicy};

use crate::context::ExecContext;
use crate::executor::Executor;
use crate::graph::{Graph, NodeId, NodeKind};
use crate::optimizer::{
    build_mat_problem, eliminate_common_subexpressions, fit_roots, labels_of, CachingStrategy,
    MatProblem, OptLevel, PipelineOptions,
};
use crate::pipeline::{ExecutablePlan, FitReport, FittedPipeline, Pipeline};
use crate::profiler::{profile_and_select, ProfileOptions};
use crate::record::Record;
use crate::report::TenantRow;
use crate::trace::TraceEvent;

/// One shared node the forest canonicalizer found: a plan region used by
/// two or more tenants, merged into a single node of the forest graph.
#[derive(Debug, Clone, PartialEq)]
pub struct CrossMerge {
    /// Node id in the merged forest graph.
    pub node: NodeId,
    /// Node label.
    pub label: String,
    /// How many tenants' outputs depend on this node.
    pub tenants: usize,
    /// Content-addressed structural signature (kind tag + label + input
    /// signatures, recursively) — stable under tenant permutation *and*
    /// across runs, unlike the node id.
    pub signature: u64,
}

/// Result of [`merge_forest`]: the canonical forest graph plus per-tenant
/// output ids into it.
#[derive(Clone)]
pub struct ForestMerge {
    /// The merged forest graph.
    pub graph: Graph,
    /// Each tenant's output node in the merged graph, input order.
    pub outputs: Vec<NodeId>,
    /// Nodes removed by cross-pipeline CSE.
    pub eliminated: usize,
    /// Computation nodes shared by ≥ 2 tenants, ascending node id.
    pub merges: Vec<CrossMerge>,
}

/// Forest-level canonicalizer: concatenates tenant graph snapshots
/// (offsetting node ids) and runs single-pipeline CSE over the result, so
/// structurally-identical prefixes across tenants merge into one shared
/// region. With one tenant this is exactly `eliminate_common_subexpressions`
/// — the concatenation of a single graph is the graph itself — which is the
/// N=1 degeneration law the property tests pin down.
///
/// `merges` reports every Transform/Estimate/ModelApply node that ended up
/// on ≥ 2 tenants' ancestry paths, in ascending node-id order. Shared
/// RuntimeInput/DataSource nodes are excluded: sources are "shared" by
/// construction, not by optimization, and reporting them would make every
/// forest look like it merged something.
/// Content-recursive structural signatures that are stable across *runs*:
/// FNV over the node's kind tag, its label bytes, and its inputs'
/// signatures. Unlike [`Graph::signatures`] — whose per-node identity is the
/// operator `Arc` address, perfect for intra-process CSE but different on
/// every invocation — these can be embedded in deterministic artifacts and
/// compared across processes.
fn stable_signatures(graph: &Graph) -> Vec<u64> {
    let mut sig = vec![0u64; graph.nodes.len()];
    for (id, node) in graph.nodes.iter().enumerate() {
        let mut h = 0xcbf29ce484222325u64; // FNV offset basis
        let mut mix = |v: u64| {
            h ^= v;
            h = h.wrapping_mul(0x100000001b3);
        };
        mix(node.kind.tag() as u64);
        for b in node.label.bytes() {
            mix(b as u64);
        }
        for &input in &node.inputs {
            mix(sig[input]);
        }
        sig[id] = h;
    }
    sig
}

pub fn merge_forest(graphs: &[(Graph, NodeId)]) -> ForestMerge {
    assert!(!graphs.is_empty(), "merge_forest needs at least one tenant");
    let mut concat = Graph::new();
    let mut outputs: Vec<NodeId> = Vec::new();
    for (g, out) in graphs {
        let offset = concat.len();
        for n in &g.nodes {
            let inputs: Vec<NodeId> = n.inputs.iter().map(|&i| i + offset).collect();
            concat.add(n.kind.clone(), inputs, n.label.clone());
        }
        assert!(*out < g.len(), "tenant output must be in its graph");
        outputs.push(out + offset);
    }
    let r = eliminate_common_subexpressions(&concat);
    let outputs: Vec<NodeId> = outputs.iter().map(|o| r.remap[o]).collect();

    let ancestries: Vec<HashSet<NodeId>> =
        outputs.iter().map(|&o| r.graph.ancestors(&[o])).collect();
    let sigs = stable_signatures(&r.graph);
    let mut merges: Vec<CrossMerge> = Vec::new();
    for (id, node) in r.graph.nodes.iter().enumerate() {
        let tenants = ancestries.iter().filter(|a| a.contains(&id)).count();
        let computation = matches!(
            node.kind,
            NodeKind::Transform(_) | NodeKind::Estimate(_) | NodeKind::ModelApply
        );
        if tenants >= 2 && computation {
            merges.push(CrossMerge {
                node: id,
                label: node.label.clone(),
                tenants,
                signature: sigs[id],
            });
        }
    }
    ForestMerge {
        graph: r.graph,
        outputs,
        eliminated: r.eliminated,
        merges,
    }
}

/// Restricts a forest `MatProblem` to one tenant: keeps the DAG shape but
/// zeroes execution time outside the ancestor closure of the tenant's sinks
/// and requests only those sinks — exactly what `build_mat_problem` would
/// have produced had the tenant been optimized alone on the merged graph.
pub fn tenant_subproblem(problem: &MatProblem, sinks: &[usize]) -> MatProblem {
    let mut relevant: HashSet<usize> = HashSet::new();
    let mut stack: Vec<usize> = sinks.to_vec();
    while let Some(v) = stack.pop() {
        if relevant.insert(v) {
            stack.extend(problem.nodes[v].inputs.iter().copied());
        }
    }
    let nodes = problem
        .nodes
        .iter()
        .enumerate()
        .map(|(i, n)| {
            let mut n = n.clone();
            if !relevant.contains(&i) {
                n.t_secs = 0.0;
            }
            n
        })
        .collect();
    MatProblem {
        nodes,
        sinks: sinks.to_vec(),
    }
}

/// Shrinks a cache set until it fits the budget, each step dropping the
/// member whose removal costs the least estimated runtime (ties broken by
/// smallest node id, so the result is deterministic).
pub fn trim_to_budget(
    problem: &MatProblem,
    mut set: HashSet<usize>,
    budget: u64,
) -> HashSet<usize> {
    while problem.set_bytes(&set) > budget {
        let mut members: Vec<usize> = set
            .iter()
            .copied()
            .filter(|&v| !problem.nodes[v].always_cached)
            .collect();
        members.sort_unstable();
        let mut best: Option<(f64, usize)> = None;
        for &v in &members {
            set.remove(&v);
            let runtime = problem.est_runtime(&set);
            set.insert(v);
            if best.is_none_or(|(r, _)| runtime < r) {
                best = Some((runtime, v));
            }
        }
        match best {
            Some((_, v)) => {
                set.remove(&v);
            }
            // Only always-cached members remain; they are budget-free.
            None => break,
        }
    }
    set
}

/// Global greedy materialization over one shared budget. Candidates are the
/// forest-wide greedy Algorithm 1 solution (reuse counts summed across
/// tenants) and the budget-trimmed union of per-tenant greedy solutions; the
/// one with the lower forest-estimated runtime wins, ties going to the
/// forest-wide set. The result therefore dominates or equals the per-tenant
/// answer on estimated total cost *by construction* — the property the ISSUE
/// asks the property tests to hold.
pub fn forest_cache_set(
    problem: &MatProblem,
    tenant_sinks: &[Vec<usize>],
    budget: u64,
) -> HashSet<usize> {
    let forest = problem.greedy_cache_set(budget);
    let mut union: HashSet<usize> = HashSet::new();
    for sinks in tenant_sinks {
        let sub = tenant_subproblem(problem, sinks);
        union.extend(sub.greedy_cache_set(budget));
    }
    let trimmed = trim_to_budget(problem, union, budget);
    if problem.est_runtime(&forest) <= problem.est_runtime(&trimmed) {
        forest
    } else {
        trimmed
    }
}

/// One schedulable unit of fit work: an estimator wave belonging to a
/// tenant, with the profiler's cost estimate attached for deficit
/// accounting.
#[derive(Debug, Clone, PartialEq)]
pub struct Wave {
    /// Owning tenant index.
    pub tenant: usize,
    /// Estimator node to evaluate.
    pub node: NodeId,
    /// Estimated seconds for the wave (0.0 when unprofiled).
    pub est_cost: f64,
}

/// Deterministic deficit-round-robin over per-tenant wave queues.
///
/// The quantum is fixed at the cost of the most expensive wave in the forest
/// (clamped to ≥ 1.0 so zero-cost forests still progress), so every visit of
/// a non-empty lane can afford its front wave and dispatches exactly one.
/// That makes the fairness laws sharp, not asymptotic:
///
/// * **work-conserving** — `schedule` drains every queue; the output is a
///   permutation of the input waves;
/// * **starvation-free** — between two consecutive waves of any tenant with
///   queued work, at most N−1 waves of other tenants run;
/// * **deterministic** — the schedule is a pure function of the input;
/// * **N=1 degeneration** — with one tenant the schedule is the input order,
///   i.e. today's single-pipeline wave order.
#[derive(Debug)]
pub struct WaveScheduler {
    queues: Vec<VecDeque<Wave>>,
    deficits: Vec<f64>,
    quantum: f64,
    cursor: usize,
}

impl WaveScheduler {
    /// Builds a scheduler over per-tenant wave lists (tenant order = lane
    /// order; each list already topological for its tenant).
    pub fn new(per_tenant: Vec<Vec<Wave>>) -> Self {
        let quantum = per_tenant
            .iter()
            .flatten()
            .map(|w| w.est_cost)
            .fold(0.0f64, f64::max)
            .max(1.0);
        let deficits = vec![0.0; per_tenant.len()];
        WaveScheduler {
            queues: per_tenant.into_iter().map(VecDeque::from).collect(),
            deficits,
            quantum,
            cursor: 0,
        }
    }

    /// Whether every lane has drained.
    pub fn is_empty(&self) -> bool {
        self.queues.iter().all(|q| q.is_empty())
    }

    /// Dispatches the next wave, or `None` when all lanes are drained.
    pub fn next_wave(&mut self) -> Option<Wave> {
        if self.is_empty() {
            return None;
        }
        loop {
            let t = self.cursor;
            self.cursor = (self.cursor + 1) % self.queues.len();
            if self.queues[t].is_empty() {
                // An idle lane forfeits its accumulated credit (classic DRR).
                self.deficits[t] = 0.0;
                continue;
            }
            self.deficits[t] += self.quantum;
            let cost = self.queues[t].front().expect("non-empty lane").est_cost;
            if cost <= self.deficits[t] {
                let w = self.queues[t].pop_front().expect("non-empty lane");
                // Cap the carried credit so float growth stays bounded; with
                // quantum ≥ every wave cost the cap never changes behavior.
                self.deficits[t] = (self.deficits[t] - w.est_cost).min(self.quantum);
                if self.queues[t].is_empty() {
                    self.deficits[t] = 0.0;
                }
                return Some(w);
            }
        }
    }

    /// Runs the scheduler to completion, returning the full dispatch order.
    pub fn schedule(mut self) -> Vec<Wave> {
        let mut out = Vec::new();
        while let Some(w) = self.next_wave() {
            out.push(w);
        }
        out
    }
}

/// What the forest fit decided and measured.
#[derive(Debug)]
pub struct ForestReport {
    /// Whether the shared (merged-forest) plan was executed. `false` means
    /// the fit fell back to sequential solo fits — either sharing was not
    /// estimated cheaper, or the opt level was [`OptLevel::None`].
    pub shared: bool,
    /// Per-tenant simulated solo-fit cost, seconds (scratch-measured).
    pub solo_secs: Vec<f64>,
    /// Total simulated cost of the forest fit as executed, seconds. By
    /// construction ≤ `solo_secs.iter().sum()` (equal on the fallback path).
    pub forest_secs: f64,
    /// Shared computation nodes found by cross-pipeline CSE (empty when the
    /// fallback path ran).
    pub cross_merges: Vec<CrossMerge>,
    /// Per-tenant attribution rows (also exported on the fit report's
    /// `observability.tenants` and, from there, `RunArtifact`).
    pub tenants: Vec<TenantRow>,
    /// The merged-plan fit report when the shared path ran.
    pub fit: Option<FitReport>,
    /// Per-tenant fit reports when the fallback path ran.
    pub solo_reports: Vec<FitReport>,
}

impl ForestReport {
    /// Sum of scratch-measured solo costs, seconds.
    pub fn total_solo_secs(&self) -> f64 {
        self.solo_secs.iter().sum()
    }

    /// Simulated-cost speedup of the executed forest plan over N
    /// independent fits (≥ 1.0 by construction; 1.0 on the fallback path).
    pub fn speedup(&self) -> f64 {
        if self.forest_secs > 0.0 {
            self.total_solo_secs() / self.forest_secs
        } else {
            1.0
        }
    }
}

/// A fresh context with the same cluster shape (and fault plan) as `ctx`
/// but empty ledgers — the scratch bench [`fit_forest`] measures candidate
/// strategies on before committing charges to the real context.
fn scratch_ctx(ctx: &ExecContext) -> ExecContext {
    let fresh = ExecContext::new(ctx.resources.clone());
    match &ctx.faults {
        Some(plan) => fresh.with_faults(plan.clone()),
        None => fresh,
    }
}

/// Optimizes and fits N tenant pipelines as one forest.
///
/// Strategy selection is *measure-then-choose*: both the shared merged plan
/// and the N-independent-fits plan are executed on scratch contexts first,
/// and only the cheaper one is replayed on `ctx` — execution is
/// deterministic, so the replay cost equals the measurement exactly. This
/// makes `forest_secs ≤ Σ solo_secs` unconditional: mis-declared operator
/// costs can fool an analytic model, but not a measurement.
///
/// Each returned [`FittedPipeline`] is bit-identical (same models, same
/// predictions) to the one `tenants[i].fit(ctx, opts)` would produce alone;
/// the differential oracle's forest axis (`keystone-testkit`) holds this
/// across opt level × budget × fusion × columnar cells.
///
/// With one tenant this delegates wholly to [`Pipeline::fit`] — same trace
/// events, same `SimClock` ledger, bit-equal plan.
pub fn fit_forest<A: Record, B: Record>(
    tenants: &[Pipeline<A, B>],
    ctx: &ExecContext,
    opts: &PipelineOptions,
) -> (Vec<FittedPipeline<A, B>>, ForestReport) {
    assert!(!tenants.is_empty(), "fit_forest needs at least one tenant");
    if tenants.len() == 1 {
        let mark = ctx.sim.mark();
        let (fitted, report) = tenants[0].fit(ctx, opts);
        let secs = ctx.sim.seconds_since(mark);
        let graph = fitted.plan().graph().clone();
        let output = fitted.plan().output_node();
        let row = TenantRow {
            tenant: 0,
            output,
            fit_roots: fit_roots(&graph, output),
            shared_nodes: 0,
            sim_secs: secs,
            solo_secs: secs,
        };
        return (
            vec![fitted],
            ForestReport {
                shared: false,
                solo_secs: vec![secs],
                forest_secs: secs,
                cross_merges: Vec::new(),
                tenants: vec![row],
                fit: None,
                solo_reports: vec![report],
            },
        );
    }

    // OptLevel::None runs no CSE at all (per the options contract), so
    // cross-pipeline sharing is off the table: go straight to solo fits.
    if opts.level == OptLevel::None {
        return fit_sequential(tenants, ctx, opts, Vec::new());
    }

    // Phase A: scratch-measure each tenant's solo cost.
    let solo_secs: Vec<f64> = tenants
        .iter()
        .map(|t| {
            let scratch = scratch_ctx(ctx);
            let _ = t.fit(&scratch, opts);
            scratch.sim.total_seconds()
        })
        .collect();
    let total_solo: f64 = solo_secs.iter().sum();

    // Phase B: scratch-measure the shared merged plan.
    let scratch = scratch_ctx(ctx);
    let _ = fit_shared(tenants, &scratch, opts);
    let shared_secs = scratch.sim.total_seconds();

    // Phase C: replay the winner on the real context.
    if shared_secs < total_solo - 1e-9 {
        let mark = ctx.sim.mark();
        let (fitted, mut report) = fit_shared(tenants, ctx, opts);
        report.forest_secs = ctx.sim.seconds_since(mark);
        report.solo_secs = solo_secs.clone();
        for (row, &solo) in report.tenants.iter_mut().zip(&solo_secs) {
            row.solo_secs = solo;
        }
        if let Some(fit) = &mut report.fit {
            fit.observability.tenants = report.tenants.clone();
        }
        (fitted, report)
    } else {
        fit_sequential(tenants, ctx, opts, solo_secs)
    }
}

/// Fallback path: fit every tenant independently on the real context, in
/// tenant order. Realized cost equals the scratch measurement exactly
/// (deterministic execution), so `forest_secs == Σ solo_secs`.
fn fit_sequential<A: Record, B: Record>(
    tenants: &[Pipeline<A, B>],
    ctx: &ExecContext,
    opts: &PipelineOptions,
    solo_hint: Vec<f64>,
) -> (Vec<FittedPipeline<A, B>>, ForestReport) {
    let mut fitted = Vec::new();
    let mut reports = Vec::new();
    let mut rows = Vec::new();
    let mut measured = Vec::new();
    for (i, t) in tenants.iter().enumerate() {
        let mark = ctx.sim.mark();
        let (f, r) = t.fit(ctx, opts);
        let secs = ctx.sim.seconds_since(mark);
        let output = f.plan().output_node();
        rows.push(TenantRow {
            tenant: i,
            output,
            fit_roots: fit_roots(f.plan().graph(), output),
            shared_nodes: 0,
            sim_secs: secs,
            solo_secs: *solo_hint.get(i).unwrap_or(&secs),
        });
        measured.push(secs);
        fitted.push(f);
        reports.push(r);
    }
    let forest_secs: f64 = measured.iter().sum();
    let solo_secs = if solo_hint.is_empty() {
        measured
    } else {
        solo_hint
    };
    (
        fitted,
        ForestReport {
            shared: false,
            solo_secs,
            forest_secs,
            cross_merges: Vec::new(),
            tenants: rows,
            fit: None,
            solo_reports: reports,
        },
    )
}

/// The shared path: merge the forest, optimize the merged graph once, and
/// drive all tenants' estimator waves through one executor under the fair
/// wave scheduler. Mirrors `Pipeline::fit` stage for stage, generalized to
/// multiple outputs.
fn fit_shared<A: Record, B: Record>(
    tenants: &[Pipeline<A, B>],
    ctx: &ExecContext,
    opts: &PipelineOptions,
) -> (Vec<FittedPipeline<A, B>>, ForestReport) {
    let t0 = Instant::now();

    // 1. Cross-pipeline CSE over the concatenated snapshots.
    let graphs: Vec<(Graph, NodeId)> = tenants
        .iter()
        .map(|t| (t.graph_snapshot(), t.output_node()))
        .collect();
    let merged = merge_forest(&graphs);
    let mut graph = merged.graph;
    let outputs = merged.outputs.clone();
    // Ascending node-id order by construction of `merges`.
    for m in &merged.merges {
        ctx.tracer.record(TraceEvent::CrossCseMerge {
            node: m.node,
            label: m.label.clone(),
            tenants: m.tenants,
            signature: m.signature,
        });
    }
    // Per-tenant shared-node counts, taken before fusion rewrites labels.
    let ancestries: Vec<HashSet<NodeId>> = outputs.iter().map(|&o| graph.ancestors(&[o])).collect();
    let shared_counts: Vec<usize> = ancestries
        .iter()
        .map(|anc| {
            merged
                .merges
                .iter()
                .filter(|m| anc.contains(&m.node))
                .count()
        })
        .collect();

    let tenant_roots: Vec<Vec<NodeId>> = outputs.iter().map(|&o| fit_roots(&graph, o)).collect();
    let mut all_roots: Vec<NodeId> = tenant_roots.iter().flatten().copied().collect();
    all_roots.sort_unstable();
    all_roots.dedup();

    // 2. One profiling pass over the union of fit-relevant subgraphs.
    let popts = ProfileOptions {
        select_operators: opts.level == OptLevel::Full,
        ..opts.profile.clone()
    };
    let mut profile = profile_and_select(&mut graph, &all_roots, ctx, &popts);

    // 3. Global greedy materialization under the one shared budget.
    let budget = opts
        .mem_budget
        .unwrap_or_else(|| ctx.resources.total_cache_bytes());
    let observer = Arc::new(crate::trace::TraceCacheObserver(ctx.tracer.clone()));
    let (cache, cache_set) = match (opts.level, opts.caching) {
        (OptLevel::None, _) | (_, CachingStrategy::RuleBased) => (
            CacheManager::new(0, CachePolicy::Pinned(HashSet::new())).with_observer(observer),
            HashSet::new(),
        ),
        (_, CachingStrategy::Lru { admission_fraction }) => (
            CacheManager::new(budget, CachePolicy::Lru { admission_fraction })
                .with_observer(observer),
            HashSet::new(),
        ),
        (_, CachingStrategy::Greedy) => {
            let problem = build_mat_problem(&graph, &profile, &all_roots);
            let set = forest_cache_set(&problem, &tenant_roots, budget);
            let mut picks: Vec<usize> = set.iter().copied().collect();
            picks.sort_unstable();
            for &node in &picks {
                let mut without = set.clone();
                without.remove(&node);
                ctx.tracer.record(TraceEvent::MaterializePick {
                    node,
                    label: graph.nodes[node].label.clone(),
                    est_saving_secs: problem.est_runtime(&without) - problem.est_runtime(&set),
                    size_bytes: problem.nodes[node].size_bytes,
                });
            }
            let keys: HashSet<u64> = set.iter().map(|&v| v as u64).collect();
            (
                CacheManager::new(budget, CachePolicy::Pinned(keys)).with_observer(observer),
                set,
            )
        }
    };
    let choices: Vec<(String, String)> = profile
        .choices
        .iter()
        .map(|(id, name)| (graph.nodes[*id].label.clone(), name.clone()))
        .collect();

    // 3b. Whole-stage fusion with every tenant output as a barrier.
    let mut fused: Vec<(NodeId, Vec<String>)> = Vec::new();
    let mut fused_nodes = 0;
    let mut columnar_chains = 0;
    if opts.fusion_enabled() {
        let result = crate::optimizer::fusion::fuse_chains_multi(
            &graph,
            &outputs,
            &cache_set,
            opts.columnar_enabled(),
        );
        graph = result.graph;
        crate::optimizer::merge_profiles(&mut profile, &result.chains);
        fused_nodes = result.absorbed;
        columnar_chains = result.columnar_chains;
        for chain in &result.chains {
            ctx.tracer.record(TraceEvent::FusionMerge {
                node: chain.tail,
                label: graph.nodes[chain.tail].label.clone(),
                members: chain.labels.clone(),
            });
            fused.push((chain.tail, chain.labels.clone()));
        }
    }
    let optimize_secs = t0.elapsed().as_secs_f64();

    // 4. Fair wave scheduling: every tenant's estimator waves interleave on
    // one executor. A shared root appears in several tenants' wave lists;
    // the first wave computes it (charged to that tenant's lane) and later
    // waves hit the model memo — that asymmetry is the saving being
    // reported, not an accounting bug. The adaptive controller is not
    // threaded through the shared path: mid-fit cache revisions are a
    // per-pipeline feature and would break the bit-identity invariant.
    let profiles = Arc::new(profile.nodes.clone());
    let executor =
        Executor::new(&graph, ctx.clone(), Arc::new(cache)).with_profiles(profiles.clone());
    let waves: Vec<Vec<Wave>> = tenant_roots
        .iter()
        .enumerate()
        .map(|(i, roots)| {
            roots
                .iter()
                .map(|&node| Wave {
                    tenant: i,
                    node,
                    est_cost: profiles
                        .get(&node)
                        .map(|p| p.est_secs(p.records_hint))
                        .unwrap_or(0.0),
                })
                .collect()
        })
        .collect();
    for wave in WaveScheduler::new(waves).schedule() {
        // The clock's ambient prefix scopes every charge the wave makes —
        // the executor's own (`fit:...`) and the ones operators issue
        // themselves (a solver's `solve:lbfgs`) — into the tenant's lane.
        ctx.sim
            .set_stage_prefix(Some(format!("tenant{}", wave.tenant)));
        let _ = executor.eval(wave.node);
    }
    ctx.sim.set_stage_prefix(None);
    let models = executor.models();

    // 5. Per-tenant attribution rows from the SimClock lanes the stage tags
    // produced.
    let lanes: HashMap<String, f64> = ctx.sim.by_stage().into_iter().collect();
    let rows: Vec<TenantRow> = (0..tenants.len())
        .map(|i| TenantRow {
            tenant: i,
            output: outputs[i],
            fit_roots: tenant_roots[i].clone(),
            shared_nodes: shared_counts[i],
            sim_secs: lanes.get(&format!("tenant{i}")).copied().unwrap_or(0.0),
            solo_secs: 0.0, // filled by fit_forest from the scratch bench
        })
        .collect();

    let mut observability = crate::report::PipelineReport::build_with_metrics(
        &graph,
        &profile,
        &ctx.tracer,
        Some(&ctx.metrics),
    );
    observability.tenants = rows.clone();
    let fit_report = FitReport {
        optimize_secs,
        eliminated_nodes: merged.eliminated,
        choices,
        fused,
        fused_nodes,
        columnar_chains,
        cache_set_labels: labels_of(&graph, &cache_set),
        cache_set: cache_set.clone(),
        adaptation: crate::optimizer::AdaptationReport::default(),
        dot: graph.to_dot(&cache_set),
        profile,
        observability,
    };

    // 6. Every tenant gets a typed plan over the one shared graph, rooted at
    // its own output. Models and profiles are shared Arcs — sharing the
    // artifact, not just the fit.
    let graph_arc = Arc::new(graph);
    let fitted: Vec<FittedPipeline<A, B>> = outputs
        .iter()
        .map(|&out| {
            FittedPipeline::from_plan(Arc::new(ExecutablePlan::new(
                graph_arc.clone(),
                out,
                models.clone(),
                profiles.clone(),
            )))
        })
        .collect();
    let report = ForestReport {
        shared: true,
        solo_secs: Vec::new(),
        forest_secs: 0.0,
        cross_merges: merged.merges,
        tenants: rows,
        fit: Some(fit_report),
        solo_reports: Vec::new(),
    };
    (fitted, report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wave(tenant: usize, node: usize, cost: f64) -> Wave {
        Wave {
            tenant,
            node,
            est_cost: cost,
        }
    }

    #[test]
    fn scheduler_single_tenant_preserves_input_order() {
        let waves = vec![vec![wave(0, 3, 5.0), wave(0, 1, 0.5), wave(0, 7, 2.0)]];
        let order = WaveScheduler::new(waves.clone()).schedule();
        assert_eq!(order, waves[0]);
    }

    #[test]
    fn scheduler_round_robins_equal_lanes() {
        let waves = vec![
            vec![wave(0, 0, 1.0), wave(0, 1, 1.0)],
            vec![wave(1, 2, 1.0), wave(1, 3, 1.0)],
        ];
        let order = WaveScheduler::new(waves).schedule();
        let tenants: Vec<usize> = order.iter().map(|w| w.tenant).collect();
        assert_eq!(tenants, vec![0, 1, 0, 1]);
    }

    #[test]
    fn scheduler_drains_unequal_lanes() {
        let waves = vec![
            vec![wave(0, 0, 10.0)],
            vec![wave(1, 1, 0.1), wave(1, 2, 0.1), wave(1, 3, 0.1)],
        ];
        let order = WaveScheduler::new(waves).schedule();
        assert_eq!(order.len(), 4);
        // Work-conserving: all four waves dispatched exactly once.
        let mut nodes: Vec<usize> = order.iter().map(|w| w.node).collect();
        nodes.sort_unstable();
        assert_eq!(nodes, vec![0, 1, 2, 3]);
    }

    #[test]
    fn trim_to_budget_is_deterministic_and_fits() {
        let problem = MatProblem {
            nodes: vec![
                crate::optimizer::MatNode {
                    t_secs: 1.0,
                    size_bytes: 8,
                    weight: 1,
                    always_cached: true,
                    inputs: vec![],
                    label: "src".into(),
                },
                crate::optimizer::MatNode {
                    t_secs: 5.0,
                    size_bytes: 100,
                    weight: 1,
                    always_cached: false,
                    inputs: vec![0],
                    label: "a".into(),
                },
                crate::optimizer::MatNode {
                    t_secs: 2.0,
                    size_bytes: 100,
                    weight: 1,
                    always_cached: false,
                    inputs: vec![1],
                    label: "b".into(),
                },
            ],
            sinks: vec![2, 2],
        };
        let all: HashSet<usize> = [1, 2].into_iter().collect();
        let trimmed = trim_to_budget(&problem, all, 100);
        assert!(problem.set_bytes(&trimmed) <= 100);
        assert_eq!(trimmed.len(), 1);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::operator::{
        AnyData, ErasedEstimator, ErasedTransformer, Estimator, Transformer, TypedEstimator,
        TypedTransformer,
    };
    use keystone_dataflow::collection::DistCollection;
    use proptest::prelude::*;

    struct Id;
    impl Transformer<f64, f64> for Id {
        fn apply(&self, x: &f64) -> f64 {
            *x
        }
    }

    struct MeanEst;
    impl Estimator<f64, f64> for MeanEst {
        fn fit(
            &self,
            _data: &DistCollection<f64>,
            _ctx: &ExecContext,
        ) -> Box<dyn Transformer<f64, f64>> {
            Box::new(Id)
        }
    }

    /// Shared building blocks for a forest: operator `Arc`s and the data
    /// source `AnyData` are created once and cloned into every tenant graph,
    /// because CSE structural identity is `Arc`/pointer identity — exactly
    /// the sharing a real sweep's prefix cloning produces.
    struct ForestKit {
        src: AnyData,
        ops: Vec<Arc<dyn ErasedTransformer>>,
        ests: Vec<Arc<dyn ErasedEstimator>>,
    }

    impl ForestKit {
        fn new() -> Self {
            ForestKit {
                src: AnyData::wrap(DistCollection::from_vec(vec![1.0f64, 2.0], 1)),
                ops: (0..4)
                    .map(|_| Arc::new(TypedTransformer::new(Id)) as _)
                    .collect(),
                ests: (0..4)
                    .map(|_| Arc::new(TypedEstimator::new(MeanEst)) as _)
                    .collect(),
            }
        }

        /// Builds one tenant graph: shared source, `trunk` transform stages,
        /// `head` transform stages, then one estimator (+ model apply) —
        /// `est_idx` selects which estimator `Arc`, so tenants can share or
        /// not share their estimator boundary.
        fn tenant(&self, trunk: &[usize], head: &[usize], est_idx: usize) -> (Graph, NodeId) {
            let mut g = Graph::new();
            let mut cur = g.add(NodeKind::DataSource(self.src.clone()), vec![], "src");
            for (i, &op) in trunk.iter().enumerate() {
                cur = g.add(
                    NodeKind::Transform(self.ops[op % self.ops.len()].clone()),
                    vec![cur],
                    format!("trunk{i}"),
                );
            }
            for (i, &op) in head.iter().enumerate() {
                cur = g.add(
                    NodeKind::Transform(self.ops[op % self.ops.len()].clone()),
                    vec![cur],
                    format!("head{i}"),
                );
            }
            let est = g.add(
                NodeKind::Estimate(self.ests[est_idx % self.ests.len()].clone()),
                vec![cur],
                "est",
            );
            let apply = g.add(NodeKind::ModelApply, vec![est, cur], "apply");
            (g, apply)
        }
    }

    /// The permutation-stable identity of a merge event set: node ids shift
    /// with tenant order, but (signature, label, tenants) must not.
    fn merge_keys(merges: &[CrossMerge]) -> Vec<(u64, String, usize)> {
        let mut keys: Vec<_> = merges
            .iter()
            .map(|m| (m.signature, m.label.clone(), m.tenants))
            .collect();
        keys.sort();
        keys
    }

    fn forest_strategy() -> impl Strategy<
        Value = (
            Vec<usize>,      // trunk op picks (shared by all tenants)
            Vec<Vec<usize>>, // per-tenant head op picks
        ),
    > {
        (
            proptest::collection::vec(0usize..4, 0..5),
            proptest::collection::vec(proptest::collection::vec(0usize..4, 0..4), 2..5),
        )
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Merging the already-merged forest again (every tenant handing in
        /// the same canonical graph) collapses straight back to it: same
        /// node count, same merge-event identity.
        #[test]
        fn prop_merge_idempotent(spec in forest_strategy()) {
            let (trunk, heads) = spec;
            let kit = ForestKit::new();
            let tenants: Vec<(Graph, NodeId)> = heads
                .iter()
                .enumerate()
                .map(|(t, head)| kit.tenant(&trunk, head, t))
                .collect();
            let once = merge_forest(&tenants);
            let again: Vec<(Graph, NodeId)> = once
                .outputs
                .iter()
                .map(|&o| (once.graph.clone(), o))
                .collect();
            let twice = merge_forest(&again);
            prop_assert_eq!(twice.graph.len(), once.graph.len());
            prop_assert_eq!(
                twice.eliminated,
                (again.len() - 1) * once.graph.len()
            );
            prop_assert_eq!(merge_keys(&twice.merges), merge_keys(&once.merges));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Tenant order is presentation, not semantics: permuting the
        /// tenants yields the same merge-event identity set and the same
        /// amount of sharing.
        #[test]
        fn prop_merge_order_invariant(spec in forest_strategy()) {
            let (trunk, heads) = spec;
            let kit = ForestKit::new();
            let tenants: Vec<(Graph, NodeId)> = heads
                .iter()
                .enumerate()
                .map(|(t, head)| kit.tenant(&trunk, head, t))
                .collect();
            let forward = merge_forest(&tenants);
            let reversed: Vec<(Graph, NodeId)> = tenants.iter().rev().cloned().collect();
            let backward = merge_forest(&reversed);
            prop_assert_eq!(forward.graph.len(), backward.graph.len());
            prop_assert_eq!(forward.eliminated, backward.eliminated);
            prop_assert_eq!(merge_keys(&forward.merges), merge_keys(&backward.merges));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// The canonicalizer never merges across an estimator boundary:
        /// tenants with distinct estimator `Arc`s keep distinct Estimate and
        /// ModelApply nodes even under a fully shared trunk, so every merge
        /// event names a trunk node.
        #[test]
        fn prop_no_merge_across_estimator_boundary(spec in forest_strategy()) {
            let (trunk, heads) = spec;
            let kit = ForestKit::new();
            // Identical heads maximize mergeable structure; only the
            // estimator Arc differs per tenant.
            let tenants: Vec<(Graph, NodeId)> = (0..heads.len())
                .map(|t| kit.tenant(&trunk, &trunk, t))
                .collect();
            let merged = merge_forest(&tenants);
            let est_nodes = merged
                .graph
                .nodes
                .iter()
                .filter(|n| matches!(n.kind, NodeKind::Estimate(_)))
                .count();
            prop_assert_eq!(est_nodes, tenants.len());
            // Outputs (the per-tenant ModelApply nodes) stay distinct.
            let mut outs = merged.outputs.clone();
            outs.sort_unstable();
            outs.dedup();
            prop_assert_eq!(outs.len(), tenants.len());
            for m in &merged.merges {
                prop_assert!(
                    m.label != "est" && m.label != "apply",
                    "merged across estimator boundary: {:?}", m
                );
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// N=1 degenerates to single-pipeline CSE bitwise: same node
        /// sequence (labels and inputs), same elimination count, no merge
        /// events.
        #[test]
        fn prop_single_tenant_degenerates_to_cse(spec in forest_strategy()) {
            let (trunk, heads) = spec;
            let kit = ForestKit::new();
            let (g, out) = kit.tenant(&trunk, &heads[0], 0);
            let solo = eliminate_common_subexpressions(&g);
            let merged = merge_forest(&[(g.clone(), out)]);
            prop_assert_eq!(merged.graph.len(), solo.graph.len());
            for (a, b) in merged.graph.nodes.iter().zip(&solo.graph.nodes) {
                prop_assert_eq!(&a.label, &b.label);
                prop_assert_eq!(&a.inputs, &b.inputs);
            }
            prop_assert_eq!(merged.outputs[0], solo.remap[&out]);
            prop_assert_eq!(merged.eliminated, solo.eliminated);
            prop_assert!(merged.merges.is_empty());
        }
    }

    fn lanes_strategy() -> impl Strategy<Value = Vec<Vec<u32>>> {
        proptest::collection::vec(proptest::collection::vec(0u32..8, 0..6), 1..5)
    }

    fn build_lanes(costs: &[Vec<u32>]) -> Vec<Vec<Wave>> {
        let mut node = 0usize;
        costs
            .iter()
            .enumerate()
            .map(|(t, lane)| {
                lane.iter()
                    .map(|&c| {
                        node += 1;
                        Wave {
                            tenant: t,
                            node,
                            est_cost: c as f64 * 0.5,
                        }
                    })
                    .collect()
            })
            .collect()
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Work-conserving and per-lane order-preserving: every submitted
        /// wave is dispatched exactly once, and each lane's waves appear in
        /// submission order.
        #[test]
        fn prop_scheduler_work_conserving(costs in lanes_strategy()) {
            let lanes = build_lanes(&costs);
            let order = WaveScheduler::new(lanes.clone()).schedule();
            let total: usize = lanes.iter().map(Vec::len).sum();
            prop_assert_eq!(order.len(), total);
            for (t, lane) in lanes.iter().enumerate() {
                let got: Vec<usize> = order
                    .iter()
                    .filter(|w| w.tenant == t)
                    .map(|w| w.node)
                    .collect();
                let want: Vec<usize> = lane.iter().map(|w| w.node).collect();
                prop_assert_eq!(got, want);
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Starvation-free: while a lane still has waves queued, at most
        /// N−1 waves from other lanes run between two of its consecutive
        /// dispatches (quantum ≥ max wave cost ⇒ every round-robin visit of
        /// a non-empty lane dispatches).
        #[test]
        fn prop_scheduler_bounded_wave_gap(costs in lanes_strategy()) {
            let lanes = build_lanes(&costs);
            let n = lanes.len();
            let order = WaveScheduler::new(lanes).schedule();
            for t in 0..n {
                let positions: Vec<usize> = order
                    .iter()
                    .enumerate()
                    .filter(|(_, w)| w.tenant == t)
                    .map(|(i, _)| i)
                    .collect();
                for pair in positions.windows(2) {
                    prop_assert!(
                        pair[1] - pair[0] <= n,
                        "lane {} starved: gap {} with {} lanes",
                        t, pair[1] - pair[0], n
                    );
                }
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Deterministic: the schedule is a pure function of the input.
        #[test]
        fn prop_scheduler_deterministic(costs in lanes_strategy()) {
            let lanes = build_lanes(&costs);
            let a = WaveScheduler::new(lanes.clone()).schedule();
            let b = WaveScheduler::new(lanes).schedule();
            prop_assert_eq!(a, b);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// One lane collapses to input order — no reordering, no deficit
        /// effects.
        #[test]
        fn prop_scheduler_single_lane_is_input_order(lane in proptest::collection::vec(0u32..8, 0..8)) {
            let lanes = build_lanes(&[lane]);
            let order = WaveScheduler::new(lanes.clone()).schedule();
            prop_assert_eq!(order, lanes.into_iter().next().unwrap());
        }
    }
}
