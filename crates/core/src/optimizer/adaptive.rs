//! Adaptive re-optimization from observed traces (ROADMAP item 4, after
//! Boehm et al.'s online what-if costing of generated runtime plans).
//!
//! The optimizer's materialization picks come from subsample-extrapolated
//! estimates and *declared* iteration weights. Both can be wrong: an
//! estimator may read its input more often than `weight()` admits, a node
//! may run far slower at scale than the subsample predicted, and a pick
//! made under those errors can waste budget that a genuinely hot node
//! needs. This module closes the loop using only *observed* evidence:
//!
//! 1. **Recalibration** — [`recalibrate_profile`] refits per-node cost
//!    constants from the executor's measured [`NodeActuals`] (simulated
//!    seconds per execution, observed output bytes), and
//!    [`recalibrate_resources`] refits the cluster description's memory
//!    bandwidth from measured [`TaskSpan`]s. Perfectly-predicted runs are
//!    exact no-ops (the update is multiplicative in the observed/predicted
//!    ratio, which is then `1.0`).
//! 2. **What-if re-planning** — [`AdaptiveController`] watches per-node
//!    request counts during fit. When a node is requested *more* often
//!    than the plan's [`MatProblem::request_counts`] predicted, it rebuilds
//!    the materialization problem with observed costs and remaining demand
//!    and re-runs greedy Algorithm 1 on it.
//! 3. **Mid-fit revision** — the re-planned solution is applied at the
//!    wave boundary as a [`TraceEvent::PlanRevision`]: picks with no
//!    remaining demand are evicted (freeing budget), and recalibrated
//!    picks that fit the freed budget are promoted. The decision itself is
//!    charged to the simulated clock under an `adapt:` stage.
//!
//! The revision rules are *cost-monotone by construction*: an eviction
//! only drops entries nobody will ask for again (or that external
//! diagnosis evidence marked unpaid), and a promotion only adds cache
//! capacity — under the pinned policy an admission can never displace
//! another entry, and cache hits replace simulated compute charges. Since
//! cached values are the same bits a recompute would produce, adaptation
//! can change *cost only, never results* — the property the testkit's
//! differential oracle holds it to across its adaptive on/off axis.

use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use keystone_dataflow::cache::CacheManager;
use keystone_dataflow::cluster::ResourceDesc;
use keystone_dataflow::metrics::TaskSpan;
use keystone_dataflow::simclock::SimClock;
use parking_lot::Mutex;

use crate::graph::NodeId;
use crate::optimizer::materialize::MatProblem;
use crate::profiler::PipelineProfile;
use crate::trace::{NodeActuals, TraceEvent, Tracer};

/// Simulated coordination seconds one applied plan revision costs: the
/// driver-side decision is a metadata operation, priced like a barrier-free
/// scheduling step. Charged under the `adapt:revision` stage only when a
/// revision actually promotes or evicts something.
pub const ADAPT_DECISION_SECS: f64 = 1e-9;

/// External evidence the re-planner may consume, typically derived from a
/// prior run's diagnosis findings (`keystone_obs::replanner_hints`).
#[derive(Debug, Clone, Default)]
pub struct AdaptiveHints {
    /// `(node, observed sim seconds per execution)` overrides — measured
    /// evidence that takes precedence over both the profile and the
    /// current run's actuals when the re-planner recosts the problem.
    pub cost_overrides: Vec<(NodeId, f64)>,
    /// Materialization picks a diagnosis flagged as unpaid (zero cache
    /// hits); the re-planner evicts them on its first revision even if the
    /// current run hasn't yet proven them dead.
    pub unpaid_picks: Vec<NodeId>,
}

/// One applied mid-fit plan revision, mirroring the
/// [`TraceEvent::PlanRevision`] wire event.
#[derive(Debug, Clone, PartialEq)]
pub struct RevisionRecord {
    /// Revision sequence number within the fit (1-based).
    pub wave: u64,
    /// Node ids promoted into the materialized set, ascending.
    pub promoted: Vec<NodeId>,
    /// Node ids evicted from the materialized set, ascending.
    pub evicted: Vec<NodeId>,
    /// Runtime saving the recalibrated model predicts for this revision.
    pub predicted_saving_secs: f64,
}

/// What adaptation did during one fit, surfaced as `FitReport.adaptation`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AdaptationReport {
    /// How many nodes triggered recalibration (observed demand exceeded
    /// the plan's prediction).
    pub recalibrations: u64,
    /// Applied revisions, in order.
    pub revisions: Vec<RevisionRecord>,
    /// Total simulated seconds charged for revision decisions.
    pub decision_secs: f64,
}

impl AdaptationReport {
    /// Node ids promoted by any revision, ascending and deduplicated.
    pub fn promoted(&self) -> Vec<NodeId> {
        let mut ids: Vec<NodeId> = self
            .revisions
            .iter()
            .flat_map(|r| r.promoted.iter().copied())
            .collect();
        ids.sort_unstable();
        ids.dedup();
        ids
    }

    /// Node ids evicted by any revision, ascending and deduplicated.
    pub fn evicted(&self) -> Vec<NodeId> {
        let mut ids: Vec<NodeId> = self
            .revisions
            .iter()
            .flat_map(|r| r.evicted.iter().copied())
            .collect();
        ids.sort_unstable();
        ids.dedup();
        ids
    }

    /// Deterministic JSON rendering (golden-pinned wire format).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        out.push_str(&format!("\"recalibrations\":{}", self.recalibrations));
        out.push_str(",\"revisions\":[");
        for (i, r) in self.revisions.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"wave\":{},\"promoted\":[{}],\"evicted\":[{}],\"predicted_saving_secs\":{}}}",
                r.wave,
                ids_csv(&r.promoted),
                ids_csv(&r.evicted),
                json_f64(r.predicted_saving_secs),
            ));
        }
        out.push(']');
        out.push_str(&format!(
            ",\"decision_secs\":{}",
            json_f64(self.decision_secs)
        ));
        out.push('}');
        out
    }
}

fn ids_csv(ids: &[NodeId]) -> String {
    ids.iter()
        .map(|i| i.to_string())
        .collect::<Vec<_>>()
        .join(",")
}

/// Same float convention as the report renderer: integral finite values
/// keep a trailing `.0`, non-finite values become `null`.
fn json_f64(v: f64) -> String {
    if !v.is_finite() {
        "null".to_string()
    } else if v == v.trunc() {
        format!("{v:.1}")
    } else {
        format!("{v}")
    }
}

/// Refits per-node cost constants from measured actuals. For each node with
/// at least one observed execution, the predicted one-execution cost
/// `est_secs(records_hint)` is compared against the observed per-execution
/// simulated cost (de-amortized by the worker count the executor divided
/// by), and both `fixed_secs` and `secs_per_record` are scaled by
/// `1 + alpha * (observed/predicted - 1)`.
///
/// * `alpha = 1.0` jumps straight to the observed cost;
/// * `alpha in (0, 1)` is exponential smoothing: iterating the update K
///   times shrinks the relative error by `(1-alpha)^K` (monotone
///   convergence);
/// * a perfectly-predicted node has ratio exactly `1.0`, making the update
///   an exact bitwise no-op (idempotence).
pub fn recalibrate_profile(
    profile: &mut PipelineProfile,
    actuals: &HashMap<NodeId, NodeActuals>,
    workers: usize,
    alpha: f64,
) {
    let w = workers.max(1) as f64;
    for (id, p) in profile.nodes.iter_mut() {
        let Some(a) = actuals.get(id) else { continue };
        if a.execs == 0 {
            continue;
        }
        let predicted = p.est_secs(p.records_hint);
        if predicted <= 0.0 || predicted.is_nan() {
            continue;
        }
        let observed = a.sim_secs / a.execs as f64 * w;
        let factor = 1.0 + alpha * (observed / predicted - 1.0);
        if factor.is_finite() && factor > 0.0 {
            p.fixed_secs *= factor;
            p.secs_per_record *= factor;
        }
    }
}

/// Refits the cluster description's memory bandwidth from measured task
/// spans: observed bytes moved divided by observed busy time, summed over
/// all spans (integer sums, so the result is independent of span order).
/// Spans with no bytes or no duration leave the description unchanged.
pub fn recalibrate_resources(r: &ResourceDesc, spans: &[TaskSpan]) -> ResourceDesc {
    let total_bytes: u64 = spans.iter().map(|s| s.bytes).sum();
    let total_us: u64 = spans
        .iter()
        .map(|s| s.end_us.saturating_sub(s.start_us))
        .sum();
    let mut out = r.clone();
    if total_bytes > 0 && total_us > 0 {
        out.mem_bandwidth = total_bytes as f64 / (total_us as f64 / 1e6);
    }
    out
}

struct AdaptState {
    /// The materialization problem the fit was planned with (pre-fusion
    /// node ids, which survive fusion's id-stable rewrite).
    problem: MatProblem,
    /// Requests per node the plan predicted under the initial cache set.
    predicted: Vec<f64>,
    /// Requests per node actually observed so far.
    observed: Vec<u64>,
    /// The materialized set currently in force (initial picks ± revisions).
    current_set: HashSet<usize>,
    /// Nodes that already triggered recalibration (one trigger per node
    /// per fit).
    attempted: HashSet<usize>,
    /// Nodes ever evicted by a revision — never evicted again, never
    /// promoted back (revision soundness).
    evicted_ever: HashSet<usize>,
    /// Nodes ever promoted by a revision — never evicted by a later one.
    promoted_ever: HashSet<usize>,
    hints: AdaptiveHints,
    report: AdaptationReport,
}

/// Mid-fit re-planner: observes per-node demand from the executor's eval
/// hook and applies cost-only plan revisions at wave boundaries.
///
/// Lock discipline: `on_request` takes the internal state lock first, then
/// may read the tracer and mutate the cache; neither of those ever calls
/// back into the controller, so the order is acyclic.
pub struct AdaptiveController {
    tracer: Tracer,
    sim: SimClock,
    workers: usize,
    budget: u64,
    state: Mutex<AdaptState>,
}

impl AdaptiveController {
    /// Builds a controller over the materialization problem a fit was
    /// planned with, its chosen cache set, and the budget it was solved
    /// under.
    pub fn new(
        problem: MatProblem,
        initial_set: HashSet<usize>,
        budget: u64,
        workers: usize,
        tracer: Tracer,
        sim: SimClock,
        hints: AdaptiveHints,
    ) -> Self {
        let predicted = problem.request_counts(&initial_set);
        let observed = vec![0u64; problem.nodes.len()];
        AdaptiveController {
            tracer,
            sim,
            workers,
            budget,
            state: Mutex::new(AdaptState {
                problem,
                predicted,
                observed,
                current_set: initial_set,
                attempted: HashSet::new(),
                evicted_ever: HashSet::new(),
                promoted_ever: HashSet::new(),
                hints,
                report: AdaptationReport::default(),
            }),
        }
    }

    /// Snapshot of what adaptation has done so far.
    pub fn report(&self) -> AdaptationReport {
        self.state.lock().report.clone()
    }

    /// The executor's eval-entry hook: counts one request against `node`
    /// and, when observed demand exceeds the plan's prediction, runs the
    /// recalibrate → re-plan → revise sequence. `fitted` is the set of
    /// already-fitted estimator nodes (their future demand is zero);
    /// `cache` is the fit's live cache, which revisions mutate through its
    /// promote/demote overlay.
    pub fn on_request(&self, node: NodeId, fitted: &HashSet<NodeId>, cache: &CacheManager) {
        let mut state = self.state.lock();
        if node >= state.observed.len() {
            return;
        }
        state.observed[node] += 1;
        let observed = state.observed[node];
        let predicted = state.predicted[node];
        if (observed as f64) <= predicted + 1e-9
            || state.problem.nodes[node].always_cached
            || state.current_set.contains(&node)
            || state.attempted.contains(&node)
        {
            return;
        }
        state.attempted.insert(node);
        state.report.recalibrations += 1;
        self.tracer.record(TraceEvent::Recalibrate {
            node,
            label: state.problem.nodes[node].label.clone(),
            observed_requests: observed,
            predicted_requests: predicted,
        });

        // Recost the problem from observed evidence: hint overrides first,
        // then this run's actuals, then the original extrapolations.
        let actuals = self.tracer.node_actuals();
        let w = self.workers.max(1) as f64;
        let mut recal = state.problem.clone();
        for (id, a) in &actuals {
            if *id < recal.nodes.len() && a.execs > 0 {
                recal.nodes[*id].t_secs = a.sim_secs / a.execs as f64 * w;
                if a.out_bytes > 0 {
                    recal.nodes[*id].size_bytes = a.out_bytes;
                }
            }
        }
        for &(id, secs_per_exec) in &state.hints.cost_overrides {
            if id < recal.nodes.len() {
                recal.nodes[id].t_secs = secs_per_exec * w;
            }
        }
        // Remaining demand: fitted estimators are done (their models are
        // memoized), and the trigger node is owed at least the demand the
        // plan failed to predict.
        recal.sinks.retain(|s| !fitted.contains(s));
        let extra = ((observed as f64 - predicted.floor()).max(1.0)) as usize;
        for _ in 0..extra {
            recal.sinks.push(node);
        }

        // Evictions: picks with zero remaining demand under the
        // recalibrated problem (pure wins — nobody will ask again), plus
        // externally diagnosed unpaid picks. Promoted picks are immune.
        let requests = recal.request_counts(&state.current_set);
        let mut evicted: Vec<usize> = state
            .current_set
            .iter()
            .copied()
            .filter(|&v| {
                !state.promoted_ever.contains(&v)
                    && (requests[v] <= 0.0 || state.hints.unpaid_picks.contains(&v))
            })
            .collect();
        evicted.sort_unstable();

        // Promotions: what greedy Algorithm 1 wants on the recalibrated
        // problem, admitted in pick order while the post-eviction set still
        // has budget. Never resurrect an eviction.
        let after_evict: HashSet<usize> = state
            .current_set
            .iter()
            .copied()
            .filter(|v| !evicted.contains(v))
            .collect();
        let (_, picks) = recal.greedy_cache_set_traced(self.budget);
        let mut used = recal.set_bytes(&after_evict);
        let mut promoted: Vec<usize> = Vec::new();
        for pick in &picks {
            let v = pick.node;
            if state.current_set.contains(&v)
                || state.evicted_ever.contains(&v)
                || evicted.contains(&v)
            {
                continue;
            }
            let size = recal.nodes[v].size_bytes;
            if used.saturating_add(size) <= self.budget {
                used += size;
                promoted.push(v);
            }
        }
        promoted.sort_unstable();

        if promoted.is_empty() && evicted.is_empty() {
            return;
        }

        let before = recal.est_runtime(&state.current_set);
        let mut after_set = after_evict;
        after_set.extend(promoted.iter().copied());
        let predicted_saving_secs = before - recal.est_runtime(&after_set);

        for &v in &evicted {
            cache.demote(v as u64);
            state.current_set.remove(&v);
            state.evicted_ever.insert(v);
        }
        for &v in &promoted {
            cache.promote(v as u64);
            state.current_set.insert(v);
            state.promoted_ever.insert(v);
        }
        let wave = state.report.revisions.len() as u64 + 1;
        self.tracer.record(TraceEvent::PlanRevision {
            wave,
            promoted: promoted.clone(),
            evicted: evicted.clone(),
            predicted_saving_secs,
        });
        self.sim
            .charge_seconds("adapt:revision", 0.0, ADAPT_DECISION_SECS);
        state.report.decision_secs += ADAPT_DECISION_SECS;
        state.report.revisions.push(RevisionRecord {
            wave,
            promoted,
            evicted,
            predicted_saving_secs,
        });
    }
}

/// Convenience alias used by `Pipeline::fit`.
pub type SharedAdaptiveController = Arc<AdaptiveController>;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optimizer::materialize::MatNode;
    use crate::profiler::NodeProfile;
    use keystone_dataflow::cache::CachePolicy;
    use keystone_dataflow::cluster::ClusterProfile;

    fn node(t_secs: f64, size: u64, weight: u32, always: bool, inputs: Vec<usize>) -> MatNode {
        MatNode {
            t_secs,
            size_bytes: size,
            weight,
            always_cached: always,
            inputs,
            label: format!("n{}", t_secs),
        }
    }

    /// src -> work -> solver that *declares* weight 1 but actually pulls
    /// its input many times: the classic under-declared estimator.
    fn underdeclared_problem() -> (MatProblem, HashSet<usize>) {
        let problem = MatProblem {
            nodes: vec![
                node(0.0, 1, 1, true, vec![]),
                node(10.0, 100, 1, false, vec![0]),
                node(1.0, 1, 1, true, vec![1]), // estimator, declared weight 1
            ],
            sinks: vec![2],
        };
        // Declared demand never reuses `work`, so the greedy set is empty.
        let set = problem.greedy_cache_set(1000);
        assert!(set.is_empty(), "declared weights justify no pick");
        (problem, set)
    }

    fn controller(
        problem: MatProblem,
        set: HashSet<usize>,
        budget: u64,
        hints: AdaptiveHints,
    ) -> AdaptiveController {
        AdaptiveController::new(
            problem,
            set,
            budget,
            1,
            Tracer::default(),
            SimClock::default(),
            hints,
        )
    }

    fn pinned_cache(keys: &HashSet<usize>, budget: u64) -> CacheManager {
        CacheManager::new(
            budget,
            CachePolicy::Pinned(keys.iter().map(|&k| k as u64).collect()),
        )
    }

    #[test]
    fn demand_within_prediction_never_triggers() {
        let (problem, set) = underdeclared_problem();
        let ctl = controller(problem, set.clone(), 1000, AdaptiveHints::default());
        let cache = pinned_cache(&set, 1000);
        let fitted = HashSet::new();
        // Exactly the predicted demand: one request per node.
        for n in [2usize, 1, 0] {
            ctl.on_request(n, &fitted, &cache);
        }
        let report = ctl.report();
        assert_eq!(report.recalibrations, 0);
        assert!(report.revisions.is_empty());
        assert_eq!(report.decision_secs, 0.0);
    }

    #[test]
    fn excess_demand_promotes_the_hot_node() {
        let (problem, set) = underdeclared_problem();
        let ctl = controller(problem, set.clone(), 1000, AdaptiveHints::default());
        let cache = pinned_cache(&set, 1000);
        let fitted = HashSet::new();
        ctl.on_request(2, &fitted, &cache);
        ctl.on_request(1, &fitted, &cache); // pass 1 — predicted
        ctl.on_request(1, &fitted, &cache); // pass 2 — excess: trigger
        let report = ctl.report();
        assert_eq!(report.recalibrations, 1);
        assert_eq!(report.revisions.len(), 1);
        let rev = &report.revisions[0];
        assert_eq!(rev.promoted, vec![1]);
        assert!(rev.evicted.is_empty());
        assert!(rev.predicted_saving_secs > 0.0);
        assert!((report.decision_secs - ADAPT_DECISION_SECS).abs() < 1e-18);
        // The cache admits the promoted key now.
        assert!(cache.policy_admits(1));
        // Further passes must not re-trigger.
        for _ in 0..5 {
            ctl.on_request(1, &fitted, &cache);
        }
        assert_eq!(ctl.report().recalibrations, 1);
    }

    #[test]
    fn revision_soundness_an_eviction_is_never_revisited() {
        // Two estimators: est A (node 2, weight 3 over `a`) fits first and
        // its pick pays off; then est B (node 4) hammers `b` (node 3) far
        // past its declared weight. Budget fits only one of a/b.
        let problem = MatProblem {
            nodes: vec![
                node(0.0, 1, 1, true, vec![]),
                node(10.0, 100, 1, false, vec![0]), // a
                node(1.0, 1, 3, true, vec![1]),     // est A, weight 3
                node(12.0, 100, 1, false, vec![0]), // b
                node(1.0, 1, 1, true, vec![3]),     // est B, declared 1
            ],
            sinks: vec![2, 4],
        };
        let set = problem.greedy_cache_set(100);
        assert_eq!(set, [1usize].into_iter().collect(), "plan picks a");
        let ctl = controller(problem, set.clone(), 100, AdaptiveHints::default());
        let cache = pinned_cache(&set, 100);

        // Est A's three predicted passes over a.
        let fitted = HashSet::new();
        ctl.on_request(2, &fitted, &cache);
        for _ in 0..3 {
            ctl.on_request(1, &fitted, &cache);
        }
        // Est A is now fitted; est B starts hammering b.
        let fitted: HashSet<usize> = [2].into_iter().collect();
        ctl.on_request(4, &fitted, &cache);
        ctl.on_request(3, &fitted, &cache);
        ctl.on_request(3, &fitted, &cache); // excess → trigger
        let report = ctl.report();
        assert_eq!(report.recalibrations, 1);
        assert_eq!(report.revisions.len(), 1);
        let rev = &report.revisions[0];
        // a has no remaining demand (est A fitted) → evicted; b promoted
        // into the freed budget.
        assert_eq!(rev.evicted, vec![1]);
        assert_eq!(rev.promoted, vec![3]);
        assert!(!cache.policy_admits(1));
        assert!(cache.policy_admits(3));
        // Soundness: nothing later re-evicts 1's slot or re-promotes it.
        for _ in 0..10 {
            ctl.on_request(3, &fitted, &cache);
            ctl.on_request(1, &fitted, &cache);
        }
        let report = ctl.report();
        assert_eq!(report.revisions.len(), 1, "no second revision");
        for rev in &report.revisions {
            assert!(!rev.promoted.contains(&1));
        }
    }

    #[test]
    fn unpaid_hint_evicts_even_with_remaining_demand() {
        // Two branches off src: `work` (picked, diagnosed unpaid) and
        // `other` (whose excess demand triggers the revision). `work` still
        // has remaining declared demand, so only the hint can evict it.
        let problem = MatProblem {
            nodes: vec![
                node(0.0, 1, 1, true, vec![]),
                node(10.0, 100, 1, false, vec![0]), // work — picked, unpaid
                node(1.0, 1, 1, true, vec![1]),     // est over work
                node(5.0, 50, 1, false, vec![0]),   // other — under-declared
                node(1.0, 1, 1, true, vec![3]),     // est over other
            ],
            sinks: vec![2, 4],
        };
        let set: HashSet<usize> = [1].into_iter().collect();
        let hints = AdaptiveHints {
            cost_overrides: vec![],
            unpaid_picks: vec![1],
        };
        let ctl = controller(problem, set.clone(), 1000, hints);
        let cache = pinned_cache(&set, 1000);
        let fitted = HashSet::new();
        // `other`'s predicted demand is 1; the second request triggers.
        ctl.on_request(3, &fitted, &cache);
        ctl.on_request(3, &fitted, &cache);
        let report = ctl.report();
        assert_eq!(report.recalibrations, 1);
        assert_eq!(report.revisions.len(), 1);
        assert!(
            report.revisions[0].evicted.contains(&1),
            "hint must evict the unpaid pick: {:?}",
            report.revisions[0]
        );
        assert!(!cache.policy_admits(1));
    }

    #[test]
    fn cost_override_hint_takes_precedence_over_actuals() {
        let (problem, set) = underdeclared_problem();
        let hints = AdaptiveHints {
            // Diagnosis says node 1 really costs 99 s/exec.
            cost_overrides: vec![(1, 99.0)],
            unpaid_picks: vec![],
        };
        let ctl = controller(problem, set.clone(), 1000, hints);
        let cache = pinned_cache(&set, 1000);
        let fitted = HashSet::new();
        ctl.on_request(1, &fitted, &cache);
        ctl.on_request(1, &fitted, &cache); // trigger
        let report = ctl.report();
        assert_eq!(report.revisions.len(), 1);
        // Saving reflects the override: caching 1 saves one extra 99 s
        // execution under the extra-demand sink.
        assert!(
            report.revisions[0].predicted_saving_secs >= 99.0 - 1e-9,
            "saving {} ignores the override",
            report.revisions[0].predicted_saving_secs
        );
    }

    #[test]
    fn recalibrate_profile_is_a_noop_on_perfect_predictions() {
        let mut profile = PipelineProfile::default();
        profile.nodes.insert(
            1,
            NodeProfile {
                secs_per_record: 0.25,
                fixed_secs: 3.0,
                records_hint: 8,
                ..Default::default()
            },
        );
        let before = profile.nodes[&1].clone();
        let mut actuals = HashMap::new();
        actuals.insert(
            1,
            NodeActuals {
                execs: 1,
                sim_secs: before.est_secs(8),
                ..Default::default()
            },
        );
        recalibrate_profile(&mut profile, &actuals, 1, 0.5);
        let after = &profile.nodes[&1];
        assert_eq!(after.fixed_secs.to_bits(), before.fixed_secs.to_bits());
        assert_eq!(
            after.secs_per_record.to_bits(),
            before.secs_per_record.to_bits()
        );
    }

    #[test]
    fn recalibrate_profile_converges_monotonically() {
        let mut profile = PipelineProfile::default();
        profile.nodes.insert(
            0,
            NodeProfile {
                secs_per_record: 0.1,
                fixed_secs: 1.0,
                records_hint: 10,
                ..Default::default()
            },
        );
        // The node actually costs 5x its prediction.
        let truth = 5.0 * profile.nodes[&0].est_secs(10);
        let mut actuals = HashMap::new();
        actuals.insert(
            0,
            NodeActuals {
                execs: 2,
                sim_secs: 2.0 * truth,
                ..Default::default()
            },
        );
        let mut prev_err = f64::INFINITY;
        for _ in 0..6 {
            recalibrate_profile(&mut profile, &actuals, 1, 0.5);
            let p = &profile.nodes[&0];
            let err = (p.est_secs(p.records_hint) - truth).abs() / truth;
            assert!(err < prev_err, "relative error must shrink every step");
            prev_err = err;
        }
        assert!(prev_err < 0.02, "6 steps of alpha=0.5 reach ~1.5% error");
    }

    #[test]
    fn recalibrate_resources_refits_bandwidth_from_spans() {
        let r = ClusterProfile::SingleNode.descriptor(1);
        let span = |bytes: u64, start_us: u64, end_us: u64| TaskSpan {
            stage: "transform:x".into(),
            op: "map",
            op_seq: 0,
            stage_id: Some(1),
            partition: 0,
            worker: 0,
            start_us,
            end_us,
            items_in: 1,
            items_out: 1,
            bytes,
            retries: 0,
            speculative: false,
        };
        // 3 MB over 1.5 s total busy time → 2 MB/s.
        let spans = vec![span(1_000_000, 0, 500_000), span(2_000_000, 0, 1_000_000)];
        let out = recalibrate_resources(&r, &spans);
        assert!((out.mem_bandwidth - 2_000_000.0).abs() < 1e-6);
        assert_eq!(out.workers, r.workers);
        // Degenerate spans leave the description untouched.
        let same = recalibrate_resources(&r, &[span(0, 0, 0)]);
        assert_eq!(same, r);
    }

    #[test]
    fn adaptation_report_json_is_stable() {
        let report = AdaptationReport {
            recalibrations: 2,
            revisions: vec![RevisionRecord {
                wave: 1,
                promoted: vec![3, 5],
                evicted: vec![1],
                predicted_saving_secs: 12.5,
            }],
            decision_secs: ADAPT_DECISION_SECS,
        };
        assert_eq!(
            report.to_json(),
            "{\"recalibrations\":2,\"revisions\":[{\"wave\":1,\"promoted\":[3,5],\
             \"evicted\":[1],\"predicted_saving_secs\":12.5}],\"decision_secs\":0.000000001}"
        );
        assert_eq!(report.promoted(), vec![3, 5]);
        assert_eq!(report.evicted(), vec![1]);
        let empty = AdaptationReport::default();
        assert_eq!(
            empty.to_json(),
            "{\"recalibrations\":0,\"revisions\":[],\"decision_secs\":0.0}"
        );
    }
}
