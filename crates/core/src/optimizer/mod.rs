//! Whole-pipeline optimization (§4): orchestration of CSE, execution
//! subsampling, cost-based operator selection, and automatic
//! materialization.

pub mod adaptive;
pub mod cse;
pub mod fusion;
pub mod materialize;
pub mod multi;

use std::collections::HashSet;

use crate::graph::{Graph, NodeId, NodeKind};
use crate::profiler::{PipelineProfile, ProfileOptions};

pub use adaptive::{
    recalibrate_profile, recalibrate_resources, AdaptationReport, AdaptiveController,
    AdaptiveHints, RevisionRecord, ADAPT_DECISION_SECS,
};
pub use cse::{eliminate_common_subexpressions, CseResult};
pub use fusion::{
    fuse_chains, fuse_chains_multi, fuse_chains_with, fused_cost, merge_profiles, FusedChain,
    FusedMap, FusionResult,
};
pub use materialize::{MatNode, MatProblem};
pub use multi::{
    fit_forest, forest_cache_set, merge_forest, tenant_subproblem, trim_to_budget, CrossMerge,
    ForestMerge, ForestReport, Wave, WaveScheduler,
};

/// How much of the optimizer to run (the three configurations of Fig. 9).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OptLevel {
    /// Unoptimized: default physical operators, no CSE, no data caching.
    None,
    /// Whole-pipeline only: CSE + automatic materialization, default
    /// physical operators.
    PipeOnly,
    /// Everything: CSE + materialization + cost-based operator selection.
    Full,
}

/// Which cache-management strategy runs at execution time (Fig. 10).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CachingStrategy {
    /// The KeystoneML strategy: the greedy Algorithm 1 pinned set.
    Greedy,
    /// LRU with Spark-like admission control.
    Lru {
        /// Largest admissible object as a fraction of the budget.
        admission_fraction: f64,
    },
    /// Rule-based: cache only estimator results (models) — models are
    /// always memoized, so no data is cached.
    RuleBased,
}

/// Options controlling `Pipeline::fit`.
#[derive(Debug, Clone)]
pub struct PipelineOptions {
    /// Optimization level.
    pub level: OptLevel,
    /// Cache-management strategy.
    pub caching: CachingStrategy,
    /// Cache budget in bytes (defaults to the cluster's total memory).
    pub mem_budget: Option<u64>,
    /// Subsampling profiler configuration.
    pub profile: ProfileOptions,
    /// Whole-stage operator fusion override: `None` follows the level
    /// default (on at [`OptLevel::Full`], off below), `Some(b)` forces it.
    pub fuse: Option<bool>,
    /// Columnar fused execution override: `None` follows the level default
    /// (on at [`OptLevel::Full`], off below), `Some(b)` forces it. Only
    /// takes effect on chains the fusion pass builds whose members all
    /// provide columnar kernels; everything else keeps the record path.
    pub columnar: Option<bool>,
    /// Adaptive mid-fit re-optimization override: `None` follows the level
    /// default (on at [`OptLevel::Full`], off below), `Some(b)` forces it.
    /// Only takes effect under [`CachingStrategy::Greedy`] on fault-free
    /// runs (fault probes fire per resident cache entry, so mid-fit
    /// membership changes would perturb the injected draw sequence).
    pub adaptive: Option<bool>,
    /// External evidence for the adaptive re-planner, typically distilled
    /// from a prior run's diagnosis (`keystone_obs::replanner_hints`).
    pub adaptive_hints: AdaptiveHints,
}

impl Default for PipelineOptions {
    fn default() -> Self {
        PipelineOptions {
            level: OptLevel::Full,
            caching: CachingStrategy::Greedy,
            mem_budget: None,
            profile: ProfileOptions::default(),
            fuse: None,
            columnar: None,
            adaptive: None,
            adaptive_hints: AdaptiveHints::default(),
        }
    }
}

impl PipelineOptions {
    /// The unoptimized configuration (`None` in Fig. 9).
    pub fn none() -> Self {
        PipelineOptions {
            level: OptLevel::None,
            caching: CachingStrategy::RuleBased,
            ..Default::default()
        }
    }

    /// Whole-pipeline optimizations only (`Pipe Only` in Fig. 9).
    pub fn pipe_only() -> Self {
        PipelineOptions {
            level: OptLevel::PipeOnly,
            ..Default::default()
        }
    }

    /// Everything on (`KeystoneML` in Fig. 9).
    pub fn full() -> Self {
        PipelineOptions::default()
    }

    /// Overrides the cache budget.
    pub fn with_budget(mut self, bytes: u64) -> Self {
        self.mem_budget = Some(bytes);
        self
    }

    /// Overrides the caching strategy.
    pub fn with_caching(mut self, caching: CachingStrategy) -> Self {
        self.caching = caching;
        self
    }

    /// Forces whole-stage fusion on or off regardless of the level default.
    pub fn with_fusion(mut self, on: bool) -> Self {
        self.fuse = Some(on);
        self
    }

    /// Whether the fusion pass runs: the explicit toggle when set, else on
    /// exactly at [`OptLevel::Full`].
    pub fn fusion_enabled(&self) -> bool {
        self.fuse.unwrap_or(self.level == OptLevel::Full)
    }

    /// Forces columnar fused execution on or off regardless of the level
    /// default. Only meaningful when fusion runs (columnar execution is a
    /// lowering of fused chains).
    pub fn with_columnar(mut self, on: bool) -> Self {
        self.columnar = Some(on);
        self
    }

    /// Whether fused chains lower to the columnar batch path: the explicit
    /// toggle when set, else on exactly at [`OptLevel::Full`].
    pub fn columnar_enabled(&self) -> bool {
        self.columnar.unwrap_or(self.level == OptLevel::Full)
    }

    /// Forces adaptive mid-fit re-optimization on or off regardless of the
    /// level default.
    pub fn with_adaptive(mut self, on: bool) -> Self {
        self.adaptive = Some(on);
        self
    }

    /// Whether adaptive re-optimization runs: the explicit toggle when set,
    /// else on exactly at [`OptLevel::Full`].
    pub fn adaptive_enabled(&self) -> bool {
        self.adaptive.unwrap_or(self.level == OptLevel::Full)
    }

    /// Supplies diagnosis-derived evidence to the adaptive re-planner.
    pub fn with_adaptive_hints(mut self, hints: AdaptiveHints) -> Self {
        self.adaptive_hints = hints;
        self
    }
}

/// Builds the materialization problem for the fit-relevant subgraph: every
/// node gets its profiled one-execution time and output size; sources and
/// estimator (model) nodes are marked always-cached.
pub fn build_mat_problem(graph: &Graph, profile: &PipelineProfile, roots: &[NodeId]) -> MatProblem {
    let relevant = graph.ancestors(roots);
    let nodes = graph
        .nodes
        .iter()
        .enumerate()
        .map(|(id, node)| {
            let prof = profile.nodes.get(&id);
            let (t_secs, size_bytes) = match prof {
                Some(p) => (
                    p.est_secs(p.records_hint),
                    p.est_output_bytes().max(1.0) as u64,
                ),
                None => (0.0, 1),
            };
            let (weight, always_cached) = match &node.kind {
                NodeKind::Estimate(op) => (op.weight(), true),
                NodeKind::DataSource(_) | NodeKind::RuntimeInput => (1, true),
                _ => (1, false),
            };
            MatNode {
                t_secs: if relevant.contains(&id) { t_secs } else { 0.0 },
                size_bytes,
                weight,
                always_cached,
                inputs: node.inputs.clone(),
                label: node.label.clone(),
            }
        })
        .collect();
    MatProblem {
        nodes,
        sinks: roots.to_vec(),
    }
}

/// Returns the estimator nodes feeding `output` in topological order.
pub fn fit_roots(graph: &Graph, output: NodeId) -> Vec<NodeId> {
    let anc = graph.ancestors(&[output]);
    graph
        .estimators()
        .into_iter()
        .filter(|e| anc.contains(e))
        .collect()
}

/// Labels of a node-id set, for reports and Fig. 11-style dumps.
pub fn labels_of(graph: &Graph, set: &HashSet<NodeId>) -> Vec<String> {
    let mut ids: Vec<NodeId> = set.iter().copied().collect();
    ids.sort_unstable();
    ids.iter().map(|&i| graph.nodes[i].label.clone()).collect()
}
