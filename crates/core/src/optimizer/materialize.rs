//! Automatic materialization (§4.3): choose which intermediate outputs to
//! cache under a memory budget to minimize total execution time.
//!
//! Implements the `T(v)` / `C(v)` recurrences and the greedy Algorithm 1
//! from the paper, plus an exhaustive optimal search for small DAGs (the
//! paper notes the exact ILP is too slow for practical use — the exhaustive
//! variant lets our tests *measure* the greedy/optimal gap the paper only
//! asserts is small).

use std::collections::HashSet;

/// Per-node inputs to the materialization problem.
#[derive(Debug, Clone)]
pub struct MatNode {
    /// `t(v)`: seconds for one execution of the node, inputs available.
    pub t_secs: f64,
    /// `size(v)`: bytes of the node's output.
    pub size_bytes: u64,
    /// `w(v)`: times the node iterates over its inputs per execution.
    pub weight: u32,
    /// Nodes that are effectively always materialized (bound data sources,
    /// fitted models): they cost nothing to revisit and use no cache budget.
    pub always_cached: bool,
    /// Direct input node indices.
    pub inputs: Vec<usize>,
    /// Display label.
    pub label: String,
}

/// A materialization problem: DAG + per-node costs + requested sinks.
#[derive(Debug, Clone, Default)]
pub struct MatProblem {
    /// Nodes in topological order (inputs precede users).
    pub nodes: Vec<MatNode>,
    /// Sink nodes the driver requests once each.
    pub sinks: Vec<usize>,
}

/// One greedy pick, in the order Algorithm 1 made it.
#[derive(Debug, Clone)]
pub struct MatPick {
    /// Index of the node chosen for caching.
    pub node: usize,
    /// Node label.
    pub label: String,
    /// Estimated runtime saving of this pick over the previous state, seconds.
    pub est_saving_secs: f64,
    /// Bytes the pick charged against the memory budget.
    pub size_bytes: u64,
}

impl MatProblem {
    /// How many times each node executes under a cache set — the measured
    /// counterpart of `C(v)` with `κ` applied. Computed sinks-first.
    pub fn exec_counts(&self, cache: &HashSet<usize>) -> Vec<f64> {
        let n = self.nodes.len();
        let mut requests = vec![0.0f64; n];
        for &s in &self.sinks {
            requests[s] += 1.0;
        }
        let mut execs = vec![0.0f64; n];
        // Reverse topological order: successors are finalized before their
        // inputs accumulate requests.
        for v in (0..n).rev() {
            let node = &self.nodes[v];
            execs[v] = if requests[v] <= 0.0 {
                0.0
            } else if node.always_cached || cache.contains(&v) {
                1.0
            } else {
                requests[v]
            };
            let pulls = execs[v] * node.weight as f64;
            for &u in &node.inputs {
                requests[u] += pulls;
            }
        }
        execs
    }

    /// How many times each node is *requested* under a cache set — the
    /// demand side of the `exec_counts` recurrence, before caching collapses
    /// it to one execution. The adaptive re-planner compares these
    /// predictions against the executor's observed request counters to
    /// decide when the declared iteration weights were wrong.
    pub fn request_counts(&self, cache: &HashSet<usize>) -> Vec<f64> {
        let n = self.nodes.len();
        let mut requests = vec![0.0f64; n];
        for &s in &self.sinks {
            requests[s] += 1.0;
        }
        for v in (0..n).rev() {
            let node = &self.nodes[v];
            let execs = if requests[v] <= 0.0 {
                0.0
            } else if node.always_cached || cache.contains(&v) {
                1.0
            } else {
                requests[v]
            };
            let pulls = execs * node.weight as f64;
            for &u in &node.inputs {
                requests[u] += pulls;
            }
        }
        requests
    }

    /// `T(sink(G))`: estimated total execution time under a cache set.
    pub fn est_runtime(&self, cache: &HashSet<usize>) -> f64 {
        self.exec_counts(cache)
            .iter()
            .zip(&self.nodes)
            .map(|(&e, n)| e * n.t_secs)
            .sum()
    }

    /// Total cache bytes a set would consume.
    pub fn set_bytes(&self, cache: &HashSet<usize>) -> u64 {
        cache
            .iter()
            .filter(|v| !self.nodes[**v].always_cached)
            .map(|&v| self.nodes[v].size_bytes)
            .sum()
    }

    /// Candidate nodes worth considering: actually requested, not free, and
    /// with positive recomputation cost in their subtree.
    fn candidates(&self) -> Vec<usize> {
        (0..self.nodes.len())
            .filter(|&v| !self.nodes[v].always_cached)
            .collect()
    }

    /// Greedy Algorithm 1: repeatedly cache the node yielding the largest
    /// runtime saving that still fits, until no strict improvement or no
    /// memory remains.
    pub fn greedy_cache_set(&self, budget: u64) -> HashSet<usize> {
        self.greedy_cache_set_traced(budget).0
    }

    /// Greedy Algorithm 1, additionally returning each pick with its
    /// estimated saving and budget charge — the observability layer turns
    /// these into `MaterializePick` trace events.
    pub fn greedy_cache_set_traced(&self, budget: u64) -> (HashSet<usize>, Vec<MatPick>) {
        let mut cache: HashSet<usize> = HashSet::new();
        let mut picks: Vec<MatPick> = Vec::new();
        let mut mem_left = budget;
        let candidates = self.candidates();
        let mut current = self.est_runtime(&cache);
        loop {
            // pickNext: argmin runtime over fitting, uncached nodes.
            let mut best: Option<(usize, f64)> = None;
            for &v in &candidates {
                if cache.contains(&v) || self.nodes[v].size_bytes > mem_left {
                    continue;
                }
                cache.insert(v);
                let runtime = self.est_runtime(&cache);
                cache.remove(&v);
                if best.is_none_or(|(_, b)| runtime < b) {
                    best = Some((v, runtime));
                }
            }
            match best {
                Some((v, runtime)) if runtime < current - 1e-12 => {
                    cache.insert(v);
                    mem_left -= self.nodes[v].size_bytes;
                    picks.push(MatPick {
                        node: v,
                        label: self.nodes[v].label.clone(),
                        est_saving_secs: current - runtime,
                        size_bytes: self.nodes[v].size_bytes,
                    });
                    current = runtime;
                }
                _ => break,
            }
        }
        (cache, picks)
    }

    /// Exhaustive optimal cache set (2^candidates subsets). Usable for DAGs
    /// with at most ~20 candidate nodes; tests compare greedy against it.
    ///
    /// # Panics
    /// Panics if there are more than 24 candidate nodes.
    pub fn optimal_cache_set(&self, budget: u64) -> HashSet<usize> {
        let candidates = self.candidates();
        assert!(
            candidates.len() <= 24,
            "optimal search is exponential; got {} candidates",
            candidates.len()
        );
        let mut best_set = HashSet::new();
        let mut best_time = self.est_runtime(&best_set);
        for mask in 1u32..(1 << candidates.len()) {
            let set: HashSet<usize> = candidates
                .iter()
                .enumerate()
                .filter(|(i, _)| mask & (1 << i) != 0)
                .map(|(_, &v)| v)
                .collect();
            if self.set_bytes(&set) > budget {
                continue;
            }
            let t = self.est_runtime(&set);
            if t < best_time - 1e-12 {
                best_time = t;
                best_set = set;
            }
        }
        best_set
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Linear chain: src(free) -> a -> b -> est-like sink that re-reads b
    /// `w` times.
    fn chain(w: u32) -> MatProblem {
        MatProblem {
            nodes: vec![
                MatNode {
                    t_secs: 0.0,
                    size_bytes: 100,
                    weight: 1,
                    always_cached: true,
                    inputs: vec![],
                    label: "src".into(),
                },
                MatNode {
                    t_secs: 10.0,
                    size_bytes: 1000,
                    weight: 1,
                    always_cached: false,
                    inputs: vec![0],
                    label: "a".into(),
                },
                MatNode {
                    t_secs: 1.0,
                    size_bytes: 500,
                    weight: 1,
                    always_cached: false,
                    inputs: vec![1],
                    label: "b".into(),
                },
                MatNode {
                    t_secs: 5.0,
                    size_bytes: 1,
                    weight: w,
                    always_cached: false,
                    inputs: vec![2],
                    label: "solver".into(),
                },
            ],
            sinks: vec![3],
        }
    }

    #[test]
    fn exec_counts_without_cache_multiply_by_weight() {
        let p = chain(10);
        let execs = p.exec_counts(&HashSet::new());
        // Solver executes once, pulls b 10 times, which pulls a 10 times.
        assert_eq!(execs[3], 1.0);
        assert_eq!(execs[2], 10.0);
        assert_eq!(execs[1], 10.0);
        assert_eq!(execs[0], 1.0, "always-cached source computed once");
    }

    #[test]
    fn caching_b_cuts_upstream_recomputation() {
        let p = chain(10);
        let mut cache = HashSet::new();
        cache.insert(2);
        let execs = p.exec_counts(&cache);
        assert_eq!(execs[2], 1.0);
        assert_eq!(execs[1], 1.0, "a only needed for b's single execution");
    }

    #[test]
    fn request_counts_expose_demand_before_caching_collapses_it() {
        let p = chain(10);
        let req = p.request_counts(&HashSet::new());
        // Sink requested once; b pulled 10x by the solver; a pulled 10x by b.
        assert_eq!(req[3], 1.0);
        assert_eq!(req[2], 10.0);
        assert_eq!(req[1], 10.0);
        // Caching b leaves b's own demand intact (requests are demand, not
        // executions) but collapses the upstream pulls.
        let cached: HashSet<usize> = [2].into_iter().collect();
        let req = p.request_counts(&cached);
        assert_eq!(req[2], 10.0, "demand on the cached node is unchanged");
        assert_eq!(req[1], 1.0, "cached node pulls its input once");
    }

    #[test]
    fn est_runtime_decreases_with_cache() {
        let p = chain(10);
        let none = p.est_runtime(&HashSet::new());
        let mut cache = HashSet::new();
        cache.insert(2);
        let with_b = p.est_runtime(&cache);
        // none: 10*10 (a) + 1*10 (b) + 5 = 115; with b: 10 + 1 + 5 = 16.
        assert!((none - 115.0).abs() < 1e-9, "none = {}", none);
        assert!((with_b - 16.0).abs() < 1e-9, "with_b = {}", with_b);
    }

    #[test]
    fn greedy_picks_the_bottleneck_under_budget() {
        let p = chain(10);
        // Budget fits only b (500), not a (1000).
        let set = p.greedy_cache_set(600);
        assert!(set.contains(&2), "set = {:?}", set);
        assert!(!set.contains(&1));
    }

    #[test]
    fn greedy_with_ample_budget_matches_optimal() {
        let p = chain(10);
        let g = p.greedy_cache_set(10_000);
        let o = p.optimal_cache_set(10_000);
        assert!((p.est_runtime(&g) - p.est_runtime(&o)).abs() < 1e-9);
    }

    #[test]
    fn greedy_zero_budget_caches_nothing() {
        let p = chain(10);
        assert!(p.greedy_cache_set(0).is_empty());
    }

    #[test]
    fn traced_picks_agree_with_the_set_and_savings_are_positive() {
        let p = chain(10);
        let (set, picks) = p.greedy_cache_set_traced(10_000);
        let picked: HashSet<usize> = picks.iter().map(|m| m.node).collect();
        assert_eq!(picked, set);
        let mut spent = 0u64;
        for m in &picks {
            assert!(m.est_saving_secs > 0.0, "pick {:?} saved nothing", m.label);
            assert_eq!(m.size_bytes, p.nodes[m.node].size_bytes);
            assert_eq!(m.label, p.nodes[m.node].label);
            spent += m.size_bytes;
        }
        assert_eq!(spent, p.set_bytes(&set));
        // Total claimed saving equals the end-to-end runtime delta.
        let claimed: f64 = picks.iter().map(|m| m.est_saving_secs).sum();
        let delta = p.est_runtime(&HashSet::new()) - p.est_runtime(&set);
        assert!((claimed - delta).abs() < 1e-9);
    }

    /// Diamond: src -> x; x feeds both left and right; both feed sink.
    /// x is revisited twice unless cached.
    fn diamond() -> MatProblem {
        MatProblem {
            nodes: vec![
                MatNode {
                    t_secs: 0.0,
                    size_bytes: 0,
                    weight: 1,
                    always_cached: true,
                    inputs: vec![],
                    label: "src".into(),
                },
                MatNode {
                    t_secs: 8.0,
                    size_bytes: 100,
                    weight: 1,
                    always_cached: false,
                    inputs: vec![0],
                    label: "x".into(),
                },
                MatNode {
                    t_secs: 1.0,
                    size_bytes: 50,
                    weight: 1,
                    always_cached: false,
                    inputs: vec![1],
                    label: "left".into(),
                },
                MatNode {
                    t_secs: 1.0,
                    size_bytes: 50,
                    weight: 1,
                    always_cached: false,
                    inputs: vec![1],
                    label: "right".into(),
                },
                MatNode {
                    t_secs: 1.0,
                    size_bytes: 1,
                    weight: 1,
                    always_cached: false,
                    inputs: vec![2, 3],
                    label: "sink".into(),
                },
            ],
            sinks: vec![4],
        }
    }

    #[test]
    fn diamond_fanout_counts() {
        let p = diamond();
        let execs = p.exec_counts(&HashSet::new());
        assert_eq!(execs[1], 2.0, "x requested by both branches");
        let mut cache = HashSet::new();
        cache.insert(1);
        let execs = p.exec_counts(&cache);
        assert_eq!(execs[1], 1.0);
    }

    #[test]
    fn greedy_caches_shared_fanout_node() {
        let p = diamond();
        let set = p.greedy_cache_set(100);
        assert!(set.contains(&1), "set = {:?}", set);
    }

    #[test]
    fn greedy_matches_optimal_on_diamond_for_all_budgets() {
        let p = diamond();
        for budget in [0u64, 60, 100, 150, 1000] {
            let g = p.est_runtime(&p.greedy_cache_set(budget));
            let o = p.est_runtime(&p.optimal_cache_set(budget));
            assert!(
                g <= o + 1e-9,
                "budget {}: greedy {} worse than optimal {}",
                budget,
                g,
                o
            );
        }
    }

    /// A case where greedy is known to be suboptimal: two complementary
    /// items where the pair beats any single greedy-first pick that blocks
    /// the budget. Greedy must still be within a small factor.
    #[test]
    fn greedy_is_near_optimal_when_budget_forces_tradeoffs() {
        // expensive node (big) vs two medium nodes that together save more.
        let p = MatProblem {
            nodes: vec![
                MatNode {
                    t_secs: 0.0,
                    size_bytes: 0,
                    weight: 1,
                    always_cached: true,
                    inputs: vec![],
                    label: "src".into(),
                },
                // big: saves 30 per reuse, costs 100 bytes
                MatNode {
                    t_secs: 30.0,
                    size_bytes: 100,
                    weight: 1,
                    always_cached: false,
                    inputs: vec![0],
                    label: "big".into(),
                },
                // m1, m2: save 20 each, cost 60 bytes each
                MatNode {
                    t_secs: 20.0,
                    size_bytes: 60,
                    weight: 1,
                    always_cached: false,
                    inputs: vec![0],
                    label: "m1".into(),
                },
                MatNode {
                    t_secs: 20.0,
                    size_bytes: 60,
                    weight: 1,
                    always_cached: false,
                    inputs: vec![0],
                    label: "m2".into(),
                },
                // consumers revisiting each input twice
                MatNode {
                    t_secs: 0.1,
                    size_bytes: 1,
                    weight: 2,
                    always_cached: false,
                    inputs: vec![1],
                    label: "c_big".into(),
                },
                MatNode {
                    t_secs: 0.1,
                    size_bytes: 1,
                    weight: 2,
                    always_cached: false,
                    inputs: vec![2],
                    label: "c1".into(),
                },
                MatNode {
                    t_secs: 0.1,
                    size_bytes: 1,
                    weight: 2,
                    always_cached: false,
                    inputs: vec![3],
                    label: "c2".into(),
                },
            ],
            sinks: vec![4, 5, 6],
        };
        let budget = 120; // fits big alone, or m1+m2.
        let g = p.est_runtime(&p.greedy_cache_set(budget));
        let o = p.est_runtime(&p.optimal_cache_set(budget));
        // Optimal caches m1+m2 (saves 40); greedy grabs big first (saves 30).
        assert!(o <= g);
        assert!(g <= o + 10.0 + 1e-9, "greedy within the single-item gap");
    }

    #[test]
    fn unrequested_nodes_never_execute() {
        let mut p = chain(1);
        // Add an orphan node nobody requests.
        p.nodes.push(MatNode {
            t_secs: 100.0,
            size_bytes: 10,
            weight: 1,
            always_cached: false,
            inputs: vec![0],
            label: "orphan".into(),
        });
        let execs = p.exec_counts(&HashSet::new());
        assert_eq!(execs[4], 0.0);
    }

    #[test]
    fn set_bytes_ignores_always_cached() {
        let p = chain(1);
        let mut s = HashSet::new();
        s.insert(0); // always_cached source
        s.insert(2);
        assert_eq!(p.set_bytes(&s), 500);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    /// Random DAG generator: node i draws inputs from earlier nodes, with
    /// random costs, sizes and iteration weights. Node 0 is a free source;
    /// the last node is the sink.
    fn random_problem(n: usize, seed: u64) -> MatProblem {
        let mut state = seed.max(1);
        let mut next = move || {
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            state.wrapping_mul(0x2545F4914F6CDD1D)
        };
        let mut nodes = vec![MatNode {
            t_secs: 0.0,
            size_bytes: 0,
            weight: 1,
            always_cached: true,
            inputs: vec![],
            label: "src".into(),
        }];
        for i in 1..n {
            let num_inputs = 1 + (next() as usize % 2.min(i));
            let mut inputs = Vec::new();
            for _ in 0..num_inputs {
                inputs.push(next() as usize % i);
            }
            inputs.sort_unstable();
            inputs.dedup();
            nodes.push(MatNode {
                t_secs: (next() % 100) as f64 / 10.0,
                size_bytes: 1 + next() % 500,
                weight: 1 + (next() % 4) as u32,
                always_cached: false,
                inputs,
                label: format!("n{}", i),
            });
        }
        MatProblem {
            nodes,
            sinks: vec![n - 1],
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// Caching anything can only help: greedy ≤ empty-set runtime.
        #[test]
        fn prop_greedy_never_hurts(n in 3usize..10, seed in 1u64..5000, budget in 0u64..4000) {
            let p = random_problem(n, seed);
            let empty = p.est_runtime(&HashSet::new());
            let greedy = p.est_runtime(&p.greedy_cache_set(budget));
            prop_assert!(greedy <= empty + 1e-9);
        }

        /// More memory can only help the greedy strategy.
        #[test]
        fn prop_greedy_monotone_in_budget(n in 3usize..10, seed in 1u64..5000, budget in 0u64..2000) {
            let p = random_problem(n, seed);
            let small = p.est_runtime(&p.greedy_cache_set(budget));
            let large = p.est_runtime(&p.greedy_cache_set(budget * 2 + 500));
            prop_assert!(large <= small + 1e-9);
        }

        /// Greedy respects the budget.
        #[test]
        fn prop_greedy_respects_budget(n in 3usize..10, seed in 1u64..5000, budget in 0u64..3000) {
            let p = random_problem(n, seed);
            let set = p.greedy_cache_set(budget);
            prop_assert!(p.set_bytes(&set) <= budget);
        }

        /// Greedy never caches a zero-reuse node: caching a node executed at
        /// most once can't strictly reduce runtime, and the algorithm
        /// requires strict improvement. (Exec counts only shrink as the
        /// cache grows, so the empty-cache count bounds every later state.)
        #[test]
        fn prop_greedy_skips_zero_reuse_nodes(n in 3usize..10, seed in 1u64..5000, budget in 0u64..4000) {
            let p = random_problem(n, seed);
            let baseline = p.exec_counts(&HashSet::new());
            let set = p.greedy_cache_set(budget);
            for &v in &set {
                prop_assert!(
                    baseline[v] > 1.0 + 1e-12,
                    "node {} cached with only {} baseline executions",
                    v,
                    baseline[v]
                );
            }
        }

        /// Greedy tracks the exhaustive optimum closely on small DAGs (the
        /// claim the paper makes without measurement). A 2x bound holds
        /// comfortably in practice; the typical gap is zero.
        #[test]
        fn prop_greedy_near_optimal(n in 3usize..9, seed in 1u64..3000, budget in 100u64..3000) {
            let p = random_problem(n, seed);
            let greedy = p.est_runtime(&p.greedy_cache_set(budget));
            let optimal = p.est_runtime(&p.optimal_cache_set(budget));
            prop_assert!(optimal <= greedy + 1e-9, "optimal must not exceed greedy");
            prop_assert!(
                greedy <= optimal * 2.0 + 1e-9,
                "greedy {} vs optimal {}",
                greedy,
                optimal
            );
        }

        /// Each traced pick's claimed saving equals the runtime delta its
        /// cache insertion actually causes, recomputed independently from
        /// `exec_counts`: the trace is an accurate story of Algorithm 1, not
        /// a parallel bookkeeping path that can drift.
        #[test]
        fn prop_traced_picks_match_exec_count_deltas(n in 3usize..11, seed in 1u64..4000, budget in 0u64..4000) {
            let p = random_problem(n, seed);
            let (set, picks) = p.greedy_cache_set_traced(budget);
            let mut cache: HashSet<usize> = HashSet::new();
            for pick in &picks {
                // Recompute the delta from raw exec counts, not est_runtime,
                // so the two paths are independent.
                let before = p.exec_counts(&cache);
                cache.insert(pick.node);
                let after = p.exec_counts(&cache);
                let delta: f64 = before
                    .iter()
                    .zip(&after)
                    .zip(&p.nodes)
                    .map(|((&b, &a), node)| (b - a) * node.t_secs)
                    .sum();
                prop_assert!(
                    (delta - pick.est_saving_secs).abs() < 1e-9,
                    "pick {} claimed {} but exec-count delta is {}",
                    pick.label,
                    pick.est_saving_secs,
                    delta
                );
                // A pick must strictly reduce its own exec count: caching a
                // node that was already executed at most once saves nothing.
                prop_assert!(before[pick.node] > after[pick.node]);
            }
            prop_assert_eq!(cache, set);
        }

        /// The bytes the picks charge agree with `set_bytes`, every greedy
        /// prefix stays within budget, and the final set passes the same
        /// budget check the optimizer applies.
        #[test]
        fn prop_set_bytes_agrees_with_budget_check(n in 3usize..11, seed in 1u64..4000, budget in 0u64..4000) {
            let p = random_problem(n, seed);
            let (set, picks) = p.greedy_cache_set_traced(budget);
            let mut cache: HashSet<usize> = HashSet::new();
            let mut charged = 0u64;
            for pick in &picks {
                cache.insert(pick.node);
                charged += pick.size_bytes;
                prop_assert_eq!(charged, p.set_bytes(&cache), "prefix bytes drifted");
                prop_assert!(charged <= budget, "prefix over budget");
            }
            prop_assert_eq!(charged, p.set_bytes(&set));
            prop_assert!(p.set_bytes(&set) <= budget);
        }

        /// On instances up to 12 nodes the exhaustive optimum is well
        /// defined; it never loses to greedy, respects the same budget, and
        /// greedy stays within 2x of it.
        #[test]
        fn prop_optimal_vs_greedy_up_to_12_nodes(n in 3usize..13, seed in 1u64..3000, budget in 0u64..4000) {
            let p = random_problem(n, seed);
            let greedy_set = p.greedy_cache_set(budget);
            let optimal_set = p.optimal_cache_set(budget);
            prop_assert!(p.set_bytes(&optimal_set) <= budget);
            let greedy = p.est_runtime(&greedy_set);
            let optimal = p.est_runtime(&optimal_set);
            prop_assert!(optimal <= greedy + 1e-9, "optimal {} worse than greedy {}", optimal, greedy);
            prop_assert!(greedy <= optimal * 2.0 + 1e-9, "greedy {} vs optimal {}", greedy, optimal);
        }

        /// `est_runtime` is monotone non-increasing as the cache set grows
        /// one node at a time, along any insertion order.
        #[test]
        fn prop_est_runtime_monotone_in_cache_set(n in 3usize..11, seed in 1u64..4000, order_seed in 1u64..1000) {
            let p = random_problem(n, seed);
            // A seed-scrambled insertion order over all candidate nodes.
            let mut ids: Vec<usize> = (0..p.nodes.len()).collect();
            let mut s = order_seed;
            for i in (1..ids.len()).rev() {
                s ^= s >> 12; s ^= s << 25; s ^= s >> 27;
                let j = (s.wrapping_mul(0x2545F4914F6CDD1D) % (i as u64 + 1)) as usize;
                ids.swap(i, j);
            }
            let mut cache: HashSet<usize> = HashSet::new();
            let mut prev = p.est_runtime(&cache);
            for v in ids {
                cache.insert(v);
                let now = p.est_runtime(&cache);
                prop_assert!(now <= prev + 1e-9, "caching node {} increased runtime {} -> {}", v, prev, now);
                prev = now;
            }
        }

        /// Unbounded memory: greedy equals the optimum (cache everything
        /// useful), and exec counts collapse to at most one per node.
        #[test]
        fn prop_unbounded_budget_is_optimal(n in 3usize..9, seed in 1u64..3000) {
            let p = random_problem(n, seed);
            let greedy = p.est_runtime(&p.greedy_cache_set(u64::MAX));
            let optimal = p.est_runtime(&p.optimal_cache_set(u64::MAX));
            prop_assert!((greedy - optimal).abs() < 1e-9);
            // With everything useful cached, total cost equals the
            // cache-everything lower bound: every node's cost paid at most
            // once. (Zero-cost nodes may legitimately re-execute for free.)
            let all: HashSet<usize> = (0..p.nodes.len()).collect();
            let lower_bound = p.est_runtime(&all);
            prop_assert!((greedy - lower_bound).abs() < 1e-9, "greedy {} vs lower bound {}", greedy, lower_bound);
        }
    }
}
