//! Common sub-expression elimination (§4.2).
//!
//! Pipelines duplicate work structurally: every `and_then(est, data)` clones
//! the preceding prefix over the training data, so a text pipeline that both
//! selects common features and trains a classifier tokenizes the corpus
//! twice in the unoptimized DAG. CSE merges structurally identical nodes
//! (same operator instance over the same, already-merged inputs) so the
//! computation runs once.

use std::collections::HashMap;

use crate::graph::{Graph, NodeId};

/// Result of CSE: the rewritten graph plus the old-id → new-id mapping.
pub struct CseResult {
    /// Deduplicated graph.
    pub graph: Graph,
    /// Mapping from original node ids to merged ids.
    pub remap: HashMap<NodeId, NodeId>,
    /// Number of nodes eliminated.
    pub eliminated: usize,
}

/// Merges structurally identical nodes. Structural identity is defined by
/// the node kind tag, the operator/data `Arc` identity, and the (merged)
/// input ids — exactly the sharing that prefix cloning preserves.
pub fn eliminate_common_subexpressions(graph: &Graph) -> CseResult {
    let mut out = Graph::new();
    let mut remap: HashMap<NodeId, NodeId> = HashMap::new();
    let mut canon: HashMap<u64, NodeId> = HashMap::new();
    // We re-derive signatures incrementally over the *merged* inputs so that
    // chains of duplicates collapse transitively.
    for (id, node) in graph.nodes.iter().enumerate() {
        let new_inputs: Vec<NodeId> = node.inputs.iter().map(|i| remap[i]).collect();
        let sig = node_signature(node, &new_inputs);
        match canon.get(&sig) {
            Some(&existing) => {
                remap.insert(id, existing);
            }
            None => {
                let new_id = out.add(node.kind.clone(), new_inputs, node.label.clone());
                canon.insert(sig, new_id);
                remap.insert(id, new_id);
            }
        }
    }
    let eliminated = graph.len() - out.len();
    CseResult {
        graph: out,
        remap,
        eliminated,
    }
}

fn node_signature(node: &crate::graph::Node, inputs: &[NodeId]) -> u64 {
    use crate::graph::NodeKind;
    let (tag, identity): (u64, u64) = match &node.kind {
        NodeKind::RuntimeInput => (0, 1),
        NodeKind::DataSource(d) => (1, d.ptr_id() as u64),
        NodeKind::Transform(op) => (2, std::sync::Arc::as_ptr(op) as *const () as usize as u64),
        NodeKind::Estimate(op) => (3, std::sync::Arc::as_ptr(op) as *const () as usize as u64),
        NodeKind::ModelApply => (4, 2),
    };
    let mut h = 0xcbf29ce484222325u64;
    let mut mix = |v: u64| {
        h ^= v;
        h = h.wrapping_mul(0x100000001b3);
    };
    mix(tag);
    mix(identity);
    mix(inputs.len() as u64);
    for &i in inputs {
        mix(i as u64);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::NodeKind;
    use crate::operator::{AnyData, ErasedTransformer, Transformer, TypedTransformer};
    use keystone_dataflow::collection::DistCollection;
    use std::sync::Arc;

    struct AddOne;
    impl Transformer<f64, f64> for AddOne {
        fn apply(&self, x: &f64) -> f64 {
            x + 1.0
        }
    }

    fn shared_op() -> Arc<dyn ErasedTransformer> {
        Arc::new(TypedTransformer::new(AddOne))
    }

    fn source() -> NodeKind {
        NodeKind::DataSource(AnyData::wrap(DistCollection::from_vec(vec![1.0f64], 1)))
    }

    #[test]
    fn merges_duplicated_chain() {
        let mut g = Graph::new();
        let src = g.add(source(), vec![], "src");
        let op1 = shared_op();
        let op2 = shared_op();
        // Two copies of the same two-op chain over the same source.
        let a1 = g.add(NodeKind::Transform(op1.clone()), vec![src], "a");
        let b1 = g.add(NodeKind::Transform(op2.clone()), vec![a1], "b");
        let a2 = g.add(NodeKind::Transform(op1), vec![src], "a");
        let b2 = g.add(NodeKind::Transform(op2), vec![a2], "b");
        let r = eliminate_common_subexpressions(&g);
        assert_eq!(r.eliminated, 2);
        assert_eq!(r.remap[&a1], r.remap[&a2]);
        assert_eq!(r.remap[&b1], r.remap[&b2]);
        assert_eq!(r.graph.len(), 3);
    }

    #[test]
    fn distinct_ops_not_merged() {
        let mut g = Graph::new();
        let src = g.add(source(), vec![], "src");
        let a = g.add(NodeKind::Transform(shared_op()), vec![src], "a");
        let b = g.add(NodeKind::Transform(shared_op()), vec![src], "b");
        let r = eliminate_common_subexpressions(&g);
        assert_eq!(r.eliminated, 0);
        assert_ne!(r.remap[&a], r.remap[&b]);
    }

    #[test]
    fn distinct_sources_not_merged() {
        let mut g = Graph::new();
        let s1 = g.add(source(), vec![], "s1");
        let s2 = g.add(source(), vec![], "s2");
        let op = shared_op();
        let a = g.add(NodeKind::Transform(op.clone()), vec![s1], "a");
        let b = g.add(NodeKind::Transform(op), vec![s2], "b");
        let r = eliminate_common_subexpressions(&g);
        assert_ne!(r.remap[&a], r.remap[&b]);
    }

    #[test]
    fn transitive_merging_through_chains() {
        let mut g = Graph::new();
        let src = g.add(source(), vec![], "src");
        let op1 = shared_op();
        let op2 = shared_op();
        let op3 = shared_op();
        // Chain copies of depth 3.
        let mut last = Vec::new();
        for _ in 0..3 {
            let a = g.add(NodeKind::Transform(op1.clone()), vec![src], "a");
            let b = g.add(NodeKind::Transform(op2.clone()), vec![a], "b");
            let c = g.add(NodeKind::Transform(op3.clone()), vec![b], "c");
            last.push(c);
        }
        let r = eliminate_common_subexpressions(&g);
        assert_eq!(r.eliminated, 6);
        assert_eq!(r.remap[&last[0]], r.remap[&last[1]]);
        assert_eq!(r.remap[&last[1]], r.remap[&last[2]]);
    }

    #[test]
    fn remap_preserves_reachability() {
        let mut g = Graph::new();
        let src = g.add(source(), vec![], "src");
        let op = shared_op();
        let a = g.add(NodeKind::Transform(op.clone()), vec![src], "a");
        let b = g.add(NodeKind::Transform(op), vec![src], "b"); // duplicate of a
        let apply = g.add(NodeKind::ModelApply, vec![a, b], "apply");
        let r = eliminate_common_subexpressions(&g);
        let new_apply = r.remap[&apply];
        let inputs = &r.graph.nodes[new_apply].inputs;
        assert_eq!(inputs[0], inputs[1], "both inputs collapse to one node");
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::graph::NodeKind;
    use crate::operator::{AnyData, ErasedTransformer, Transformer, TypedTransformer};
    use keystone_dataflow::collection::DistCollection;
    use proptest::prelude::*;
    use std::sync::Arc;

    struct Id;
    impl Transformer<f64, f64> for Id {
        fn apply(&self, x: &f64) -> f64 {
            *x
        }
    }

    /// Builds a random graph over a small pool of shared operators, so
    /// duplicates occur naturally.
    fn random_graph(spec: &[(usize, usize)]) -> Graph {
        let pool: Vec<Arc<dyn ErasedTransformer>> = (0..3)
            .map(|_| Arc::new(TypedTransformer::new(Id)) as _)
            .collect();
        let mut g = Graph::new();
        let src = g.add(
            NodeKind::DataSource(AnyData::wrap(DistCollection::from_vec(vec![1.0f64], 1))),
            vec![],
            "src",
        );
        for &(op_idx, input_offset) in spec {
            let input = if g.len() == 1 {
                src
            } else {
                input_offset % g.len()
            };
            g.add(
                NodeKind::Transform(pool[op_idx % pool.len()].clone()),
                vec![input],
                format!("t{}", op_idx),
            );
        }
        g
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// CSE is idempotent: a second pass eliminates nothing.
        #[test]
        fn prop_cse_idempotent(spec in proptest::collection::vec((0usize..3, 0usize..8), 1..12)) {
            let g = random_graph(&spec);
            let once = eliminate_common_subexpressions(&g);
            let twice = eliminate_common_subexpressions(&once.graph);
            prop_assert_eq!(twice.eliminated, 0);
            prop_assert_eq!(twice.graph.len(), once.graph.len());
        }

        /// Remap is total and structure-preserving: every original node maps
        /// to a node of the same kind whose (mapped) inputs match.
        #[test]
        fn prop_cse_remap_preserves_structure(spec in proptest::collection::vec((0usize..3, 0usize..8), 1..12)) {
            let g = random_graph(&spec);
            let r = eliminate_common_subexpressions(&g);
            for (id, node) in g.nodes.iter().enumerate() {
                let new_id = *r.remap.get(&id).expect("total remap");
                let new_node = &r.graph.nodes[new_id];
                prop_assert_eq!(node.inputs.len(), new_node.inputs.len());
                for (a, b) in node.inputs.iter().zip(&new_node.inputs) {
                    prop_assert_eq!(r.remap[a], *b);
                }
            }
        }

        /// Node count never grows.
        #[test]
        fn prop_cse_never_grows(spec in proptest::collection::vec((0usize..3, 0usize..8), 1..12)) {
            let g = random_graph(&spec);
            let r = eliminate_common_subexpressions(&g);
            prop_assert!(r.graph.len() <= g.len());
            prop_assert_eq!(g.len() - r.graph.len(), r.eliminated);
        }
    }

    use self::keystone_core_estimator_pool::random_pipeline_graph;
    use crate::operator::TypedEstimator;

    /// Shared estimator/transformer pool for pipeline-shaped random graphs:
    /// estimator duplicates occur naturally the same way prefix cloning
    /// produces them in real pipelines.
    mod keystone_core_estimator_pool {
        use super::{AnyData, DistCollection, Id, NodeKind, TypedEstimator, TypedTransformer};
        use crate::context::ExecContext;
        use crate::graph::Graph;
        use crate::operator::{ErasedEstimator, ErasedTransformer, Estimator, Transformer};
        use std::sync::Arc;

        pub struct MeanFit;
        impl Estimator<f64, f64> for MeanFit {
            fn fit(
                &self,
                data: &DistCollection<f64>,
                _ctx: &ExecContext,
            ) -> Box<dyn Transformer<f64, f64>> {
                let mu = data.aggregate(0.0, |a, x| a + x, |a, b| a + b);
                struct Shift(f64);
                impl Transformer<f64, f64> for Shift {
                    fn apply(&self, x: &f64) -> f64 {
                        x - self.0
                    }
                }
                Box::new(Shift(mu))
            }
        }

        /// Builds a pipeline-shaped random graph: runtime input + source,
        /// then transform / estimate+apply steps wired to earlier nodes.
        pub fn random_pipeline_graph(spec: &[(usize, usize)]) -> (Graph, crate::graph::NodeId) {
            let t_pool: Vec<Arc<dyn ErasedTransformer>> = (0..3)
                .map(|_| Arc::new(TypedTransformer::new(Id)) as _)
                .collect();
            let e_pool: Vec<Arc<dyn ErasedEstimator>> = (0..2)
                .map(|_| Arc::new(TypedEstimator::new(MeanFit)) as _)
                .collect();
            let mut g = Graph::new();
            let input = g.add(NodeKind::RuntimeInput, vec![], "input");
            let _src = g.add(
                NodeKind::DataSource(AnyData::wrap(DistCollection::from_vec(vec![1.0f64], 1))),
                vec![],
                "src",
            );
            let mut out = input;
            for &(op_idx, input_offset) in spec {
                let pick = input_offset % g.len();
                if op_idx < 3 {
                    out = g.add(
                        NodeKind::Transform(t_pool[op_idx].clone()),
                        vec![pick],
                        format!("t{op_idx}"),
                    );
                } else {
                    let est = g.add(
                        NodeKind::Estimate(e_pool[op_idx - 3].clone()),
                        vec![pick],
                        format!("e{}", op_idx - 3),
                    );
                    out = g.add(NodeKind::ModelApply, vec![est, out], "apply");
                }
            }
            (g, out)
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Differential idempotence on estimator-bearing graphs: the CSE of a
        /// CSE'd graph is the identity — same node count, identity remap.
        #[test]
        fn prop_cse_idempotent_with_estimators(spec in proptest::collection::vec((0usize..5, 0usize..10), 1..14)) {
            let (g, _out) = random_pipeline_graph(&spec);
            let once = eliminate_common_subexpressions(&g);
            let twice = eliminate_common_subexpressions(&once.graph);
            prop_assert_eq!(twice.eliminated, 0);
            prop_assert_eq!(twice.graph.len(), once.graph.len());
            for id in 0..once.graph.len() {
                prop_assert_eq!(twice.remap[&id], id, "second pass moved node {}", id);
            }
        }

        /// CSE preserves the topological reachability of fit roots: the
        /// estimators feeding the output before CSE map exactly onto the
        /// estimators feeding the mapped output afterwards.
        #[test]
        fn prop_cse_preserves_fit_roots(spec in proptest::collection::vec((0usize..5, 0usize..10), 1..14)) {
            use std::collections::BTreeSet;
            let (g, out) = random_pipeline_graph(&spec);
            let roots = crate::optimizer::fit_roots(&g, out);
            let r = eliminate_common_subexpressions(&g);
            let mapped: BTreeSet<NodeId> = roots.iter().map(|root| r.remap[root]).collect();
            let after: BTreeSet<NodeId> =
                crate::optimizer::fit_roots(&r.graph, r.remap[&out]).into_iter().collect();
            prop_assert_eq!(&mapped, &after, "fit roots changed under CSE");
            // Every mapped root must remain a topological ancestor of the
            // mapped output.
            let anc = r.graph.ancestors(&[r.remap[&out]]);
            for root in &mapped {
                prop_assert!(anc.contains(root), "root {} unreachable from output", root);
            }
        }
    }
}
