//! Whole-stage operator fusion: collapse chains of per-record transformers
//! into one partition pass.
//!
//! KeystoneML's optimizer (CSE + materialization) treats every transformer
//! as its own distributed job: k chained per-record maps cost k collection
//! allocations, k statistics probes, and k task-span waves. Following the
//! fusion plans of SystemML ("On Optimizing Operator Fusion Plans for
//! Large-Scale Machine Learning in SystemML", Boehm et al., 2018), this
//! pass runs **after** CSE and materialization selection and greedily fuses
//! maximal chains of single-consumer, per-record transformer nodes into one
//! [`FusedMap`] physical operator that executes as a single closure per
//! partition.
//!
//! Fusion barriers — a node is never absorbed into a downstream chain when:
//!
//! * it was **picked for materialization**: its output must exist as a
//!   cacheable dataset under its own node id, so the greedy Algorithm 1
//!   decisions stay valid byte-for-byte (a pick may still *terminate* a
//!   chain as its tail, because the tail's output is exactly the chain's
//!   output);
//! * it has **more than one consumer**: both consumers need the
//!   intermediate result;
//! * it **feeds an estimator**: estimators iterate over their input
//!   (`w > 1` passes), so the input must exist as a collection;
//! * it is not a pure per-record map (no
//!   [`record_kernel`](crate::operator::ErasedTransformer::record_kernel)),
//!   takes several inputs (gather), or is the requested output node.
//!
//! Because the rewrite happens *in place on the chain tail's node id* —
//! the tail's kind becomes the [`FusedMap`] and its input is rewired to the
//! chain head's input — every external reference (cache keys, model slots,
//! fit roots, the output id) survives unchanged; absorbed members simply
//! become orphans outside the output's ancestor set.

use std::collections::HashSet;
use std::sync::Arc;

use keystone_dataflow::collection::DistCollection;
use keystone_dataflow::columnar::ColumnarBatch;
use keystone_dataflow::cost::CostProfile;

use crate::context::ExecContext;
use crate::graph::{Graph, NodeId, NodeKind};
use crate::operator::{
    AnyData, ColumnarFn, ErasedTransformer, FusedDriver, PartitionAssemble, PartitionFold, RecordFn,
};
use crate::profiler::{NodeProfile, PipelineProfile};

/// The fused physical operator: a chain of per-record members executed in
/// one partition-parallel pass with no intermediate `DistCollection`.
pub struct FusedMap {
    labels: Vec<String>,
    /// Members `1..` composed into a single record function.
    composed: RecordFn,
    /// The head member's typed driver (it knows the input element type).
    driver: FusedDriver,
    /// The tail member's partition fold (it knows the output element type).
    fold: PartitionFold,
    /// The tail member's collection assembler.
    assemble: PartitionAssemble,
    /// The columnar lowering: one kernel per member, present only when the
    /// columnar path was requested *and* every member provided one (which
    /// implies the chain's records are dense `Vec<f64>` end to end). When
    /// set, execution gathers each partition into a [`ColumnarBatch`] and
    /// ping-pongs it through the kernels' tight slice loops instead of the
    /// per-record boxed dispatch above.
    columnar: Option<Vec<ColumnarFn>>,
}

impl FusedMap {
    /// Fuses `members` (head first) into one operator on the record path.
    /// Returns `None` for chains shorter than two or when any member lacks
    /// a record kernel.
    pub fn try_fuse(members: &[(String, Arc<dyn ErasedTransformer>)]) -> Option<FusedMap> {
        Self::try_fuse_with(members, false)
    }

    /// Like [`FusedMap::try_fuse`], optionally lowering the chain to the
    /// columnar path. With `columnar` set, the chain executes columnar iff
    /// *every* member supplies a
    /// [`columnar_kernel`](ErasedTransformer::columnar_kernel); any member
    /// without one (non-vector record types, or operators that never opted
    /// in) silently keeps the whole chain on the record path — fusion
    /// itself is never lost to the fallback.
    pub fn try_fuse_with(
        members: &[(String, Arc<dyn ErasedTransformer>)],
        columnar: bool,
    ) -> Option<FusedMap> {
        if members.len() < 2 {
            return None;
        }
        let kernels = members
            .iter()
            .map(|(_, op)| op.record_kernel())
            .collect::<Option<Vec<_>>>()?;
        let rest: Vec<RecordFn> = kernels[1..].iter().map(|k| k.func.clone()).collect();
        let composed: RecordFn = Arc::new(move |mut r| {
            for f in &rest {
                r = f(r);
            }
            r
        });
        let tail = kernels.last().expect("len >= 2");
        let columnar = if columnar {
            members
                .iter()
                .map(|(_, op)| op.columnar_kernel())
                .collect::<Option<Vec<_>>>()
        } else {
            None
        };
        Some(FusedMap {
            labels: members.iter().map(|(l, _)| l.clone()).collect(),
            composed,
            driver: kernels[0].driver.clone(),
            fold: tail.fold.clone(),
            assemble: tail.assemble.clone(),
            columnar,
        })
    }

    /// Display label: `Fused[a+b+c]`.
    pub fn label(&self) -> String {
        format!("Fused[{}]", self.labels.join("+"))
    }

    /// Columnar execution: gather each partition into a [`ColumnarBatch`],
    /// run every member kernel as a tight loop over contiguous slices
    /// (ping-ponging two batches so allocations amortize across members),
    /// scatter back to records. Uses the same `fold_partitions` primitive —
    /// and therefore the same single "fused" task-span wave and fault
    /// surface — as the record path; only the per-record inner work
    /// changes, and each kernel reproduces its operator's `apply`
    /// bit-for-bit, so outputs are identical to the record path.
    fn apply_columnar(&self, input: &AnyData, kernels: &[ColumnarFn]) -> AnyData {
        let typed: DistCollection<Vec<f64>> = input.downcast();
        let folded = typed.fold_partitions(|part| {
            let mut batch = ColumnarBatch::from_records(part);
            let mut next = ColumnarBatch::with_capacity(batch.values().len(), batch.len());
            for k in kernels {
                next.clear();
                for i in 0..batch.len() {
                    next.push_record_with(|out| k(batch.record(i), out));
                }
                std::mem::swap(&mut batch, &mut next);
            }
            let n = batch.len() as u64;
            (batch.into_records(), n)
        });
        // Each folded partition holds exactly one element (the partition's
        // record vector); flatten restores one `Vec<Vec<f64>>` per input
        // partition, exactly what the record path's assemble produces.
        let parts: Vec<Vec<Vec<f64>>> = folded
            .into_partitions()
            .expect("fused fold output is freshly produced and uniquely owned")
            .into_iter()
            .flatten()
            .collect();
        AnyData::wrap(DistCollection::from_partitions(parts))
    }
}

impl ErasedTransformer for FusedMap {
    fn name(&self) -> String {
        self.label()
    }

    fn apply_any(&self, inputs: &[AnyData], ctx: &ExecContext) -> AnyData {
        if let Some(kernels) = &self.columnar {
            return self.apply_columnar(&inputs[0], kernels);
        }
        (self.driver)(&inputs[0], &self.composed, &self.fold, &self.assemble, ctx)
    }

    fn fused_members(&self) -> Option<Vec<String>> {
        Some(self.labels.clone())
    }

    fn fused_columnar(&self) -> bool {
        self.columnar.is_some()
    }

    // `record_kernel` stays `None`: a FusedMap is already maximal when
    // built, and opting out keeps a second fusion pass a structural no-op.
}

/// One fused chain, head first.
#[derive(Debug, Clone)]
pub struct FusedChain {
    /// Node id the fused operator lives on (the chain's last member).
    pub tail: NodeId,
    /// Member node ids in execution order (`members.last() == tail`).
    pub members: Vec<NodeId>,
    /// Member labels in execution order.
    pub labels: Vec<String>,
}

/// Result of [`fuse_chains`].
pub struct FusionResult {
    /// The rewritten graph (chain tails replaced by [`FusedMap`] nodes).
    pub graph: Graph,
    /// Fused chains in ascending tail-id (topological) order.
    pub chains: Vec<FusedChain>,
    /// Number of nodes absorbed into some downstream tail.
    pub absorbed: usize,
    /// How many of `chains` lowered to the columnar path (0 unless
    /// requested via [`fuse_chains_with`]).
    pub columnar_chains: usize,
}

/// Greedily fuses maximal per-record transformer chains in the subgraph
/// feeding `output`. `picks` is the materialization set chosen by the
/// greedy algorithm — every pick is a fusion barrier (see module docs).
/// Chains execute on the record path; see [`fuse_chains_with`] for the
/// columnar variant.
pub fn fuse_chains(graph: &Graph, output: NodeId, picks: &HashSet<NodeId>) -> FusionResult {
    fuse_chains_with(graph, output, picks, false)
}

/// [`fuse_chains`] with an explicit columnar toggle: when `columnar` is
/// set, each chain whose members all provide columnar kernels executes on
/// the [`ColumnarBatch`] path (chains with any non-columnar member keep
/// the record path — chain *shape* is identical either way, so picks,
/// profiles, and predictions are unaffected by the toggle).
pub fn fuse_chains_with(
    graph: &Graph,
    output: NodeId,
    picks: &HashSet<NodeId>,
    columnar: bool,
) -> FusionResult {
    fuse_chains_multi(graph, &[output], picks, columnar)
}

/// Multi-output generalization of [`fuse_chains_with`] for forest fits
/// (`keystone_core::optimizer::multi`): the live subgraph is the ancestor
/// set of *all* tenant outputs, and every output is a fusion barrier (each
/// tenant's result must materialize under its own node id). With a single
/// output this is exactly [`fuse_chains_with`] — the single-output path
/// delegates here, so both produce bit-identical rewrites.
pub fn fuse_chains_multi(
    graph: &Graph,
    outputs: &[NodeId],
    picks: &HashSet<NodeId>,
    columnar: bool,
) -> FusionResult {
    let relevant = graph.ancestors(outputs);
    // Consumers restricted to the live subgraph: orphans left behind by CSE
    // (or an earlier fusion pass) must not pin their former inputs.
    let consumers: Vec<Vec<NodeId>> = graph
        .successors()
        .iter()
        .map(|s| s.iter().copied().filter(|c| relevant.contains(c)).collect())
        .collect();

    let fusable = |id: NodeId| {
        relevant.contains(&id)
            && graph.nodes[id].inputs.len() == 1
            && matches!(&graph.nodes[id].kind, NodeKind::Transform(op) if op.record_kernel().is_some())
    };
    let feeds_estimator = |id: NodeId| {
        consumers[id]
            .iter()
            .any(|&c| matches!(graph.nodes[c].kind, NodeKind::Estimate(_)))
    };
    // May `id` be absorbed into its (unique) downstream consumer?
    let absorbable = |id: NodeId| {
        fusable(id)
            && !outputs.contains(&id)
            && !picks.contains(&id)
            && !feeds_estimator(id)
            && consumers[id].len() == 1
            && fusable(consumers[id][0])
    };

    let mut chains = Vec::new();
    // Node ids are topological, so tails are discovered in ascending-id DAG
    // order and `chains` needs no further sorting.
    for tail in 0..graph.nodes.len() {
        if !fusable(tail) || absorbable(tail) {
            continue;
        }
        let mut members = vec![tail];
        let mut head = tail;
        loop {
            let up = graph.nodes[head].inputs[0];
            if !absorbable(up) {
                break;
            }
            members.push(up);
            head = up;
        }
        members.reverse();
        if members.len() < 2 {
            continue;
        }
        let labels = members
            .iter()
            .map(|&m| graph.nodes[m].label.clone())
            .collect();
        chains.push(FusedChain {
            tail,
            members,
            labels,
        });
    }

    let mut out = graph.clone();
    let mut absorbed = 0;
    let mut columnar_chains = 0;
    for chain in &chains {
        let members: Vec<(String, Arc<dyn ErasedTransformer>)> = chain
            .members
            .iter()
            .map(|&m| match &graph.nodes[m].kind {
                NodeKind::Transform(op) => (graph.nodes[m].label.clone(), op.clone()),
                _ => unreachable!("fusable nodes are transforms"),
            })
            .collect();
        let fused =
            FusedMap::try_fuse_with(&members, columnar).expect("chain members all carry kernels");
        columnar_chains += fused.fused_columnar() as usize;
        let head = chain.members[0];
        out.nodes[chain.tail].label = fused.label();
        out.nodes[chain.tail].kind = NodeKind::Transform(Arc::new(fused));
        out.nodes[chain.tail].inputs = vec![graph.nodes[head].inputs[0]];
        absorbed += chain.members.len() - 1;
    }
    FusionResult {
        graph: out,
        chains,
        absorbed,
        columnar_chains,
    }
}

/// Folds the members' profiles into one entry on the chain tail so the
/// materialization problem and the report cost fused nodes as units.
///
/// Per-record members are 1:1, so every member sees the same record count
/// and the chain's one-execution time is the sum of member times (identical
/// `est_secs` up to float reassociation — fusion never *increases* the
/// modeled runtime). Output shape comes from the tail, input scale from the
/// head. Absorbed members' entries are always removed (they are orphans in
/// the fused graph); the merged entry is only written when every member was
/// profiled, since a partial sum would underestimate the chain.
pub fn merge_profiles(profile: &mut PipelineProfile, chains: &[FusedChain]) {
    for chain in chains {
        let members: Option<Vec<NodeProfile>> = chain
            .members
            .iter()
            .map(|m| profile.nodes.get(m).cloned())
            .collect();
        for &m in &chain.members {
            profile.nodes.remove(&m);
        }
        if let Some(members) = members {
            let head = &members[0];
            let tail = members.last().expect("chains have >= 2 members");
            profile.nodes.insert(
                chain.tail,
                NodeProfile {
                    secs_per_record: members.iter().map(|p| p.secs_per_record).sum(),
                    fixed_secs: members.iter().map(|p| p.fixed_secs).sum(),
                    out_bytes_per_record: tail.out_bytes_per_record,
                    out_records_per_in: members.iter().map(|p| p.out_records_per_in).product(),
                    records_hint: head.records_hint,
                    out_stats: tail.out_stats,
                },
            );
        }
    }
}

/// Cost profile of a fused chain (Boehm 2015's generated-operator costing):
/// compute, network, and barriers add up across members, but **memory bytes
/// are charged only at the chain boundaries** — interior results live in
/// registers/cache, never in a materialized collection. Treating each
/// member's `bytes` as an even read/write split, the surviving traffic is
/// the head's input read plus the tail's output write.
pub fn fused_cost(members: &[CostProfile]) -> CostProfile {
    let (Some(first), Some(last)) = (members.first(), members.last()) else {
        return CostProfile::default();
    };
    CostProfile {
        flops: members.iter().map(|m| m.flops).sum(),
        bytes: (first.bytes + last.bytes) / 2.0,
        network: members.iter().map(|m| m.network).sum(),
        barriers: members.iter().map(|m| m.barriers).sum(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operator::{Transformer, TypedTransformer};
    use crate::record::DataStats;
    use keystone_dataflow::collection::DistCollection;

    struct AddC(f64);
    impl Transformer<f64, f64> for AddC {
        fn apply(&self, x: &f64) -> f64 {
            x + self.0
        }
    }

    struct MulC(f64);
    impl Transformer<f64, f64> for MulC {
        fn apply(&self, x: &f64) -> f64 {
            x * self.0
        }
    }

    fn t(op: impl Transformer<f64, f64>) -> NodeKind {
        NodeKind::Transform(Arc::new(TypedTransformer::new(op)))
    }

    fn source(n: usize) -> NodeKind {
        NodeKind::DataSource(AnyData::wrap(DistCollection::from_vec(
            (0..n).map(|i| i as f64).collect(),
            2,
        )))
    }

    fn ctx() -> ExecContext {
        ExecContext::default_cluster()
    }

    #[test]
    fn fuses_a_linear_chain_and_preserves_results() {
        let mut g = Graph::new();
        let src = g.add(source(6), vec![], "src");
        let a = g.add(t(AddC(1.0)), vec![src], "add1");
        let b = g.add(t(MulC(2.0)), vec![a], "mul2");
        let c = g.add(t(AddC(3.0)), vec![b], "add3");
        let res = fuse_chains(&g, c, &HashSet::new());
        assert_eq!(res.chains.len(), 1);
        assert_eq!(res.chains[0].members, vec![a, b, c]);
        assert_eq!(res.chains[0].tail, c);
        assert_eq!(res.absorbed, 2);
        assert_eq!(res.graph.nodes[c].inputs, vec![src]);
        assert_eq!(res.graph.nodes[c].label, "Fused[add1+mul2+add3]");

        // Execute the fused node and compare with the unfused chain.
        let data = AnyData::wrap(DistCollection::from_vec(vec![0.0, 1.0, 2.0], 2));
        let NodeKind::Transform(fused) = &res.graph.nodes[c].kind else {
            panic!("tail must stay a transform");
        };
        let out: DistCollection<f64> = fused.apply_any(&[data], &ctx()).downcast();
        assert_eq!(out.collect(), vec![5.0, 7.0, 9.0]); // (x+1)*2+3
        assert_eq!(
            fused.fused_members().as_deref(),
            Some(["add1", "mul2", "add3"].map(String::from).as_slice())
        );
    }

    #[test]
    fn materialization_pick_is_a_barrier_but_may_be_a_tail() {
        let mut g = Graph::new();
        let src = g.add(source(4), vec![], "src");
        let a = g.add(t(AddC(1.0)), vec![src], "a");
        let b = g.add(t(AddC(2.0)), vec![a], "b");
        let c = g.add(t(AddC(3.0)), vec![b], "c");
        let picks: HashSet<NodeId> = [b].into_iter().collect();
        let res = fuse_chains(&g, c, &picks);
        // b may terminate a chain (its output still materializes under its
        // own id) but never sit inside one, so c is left alone.
        assert_eq!(res.chains.len(), 1);
        assert_eq!(res.chains[0].members, vec![a, b]);
        assert!(matches!(res.graph.nodes[c].kind, NodeKind::Transform(_)));
        assert_eq!(res.graph.nodes[c].inputs, vec![b]);
    }

    #[test]
    fn multi_consumer_nodes_are_barriers() {
        let mut g = Graph::new();
        let src = g.add(source(4), vec![], "src");
        let shared = g.add(t(AddC(1.0)), vec![src], "shared");
        let left = g.add(t(MulC(2.0)), vec![shared], "left");
        let right = g.add(t(MulC(3.0)), vec![shared], "right");
        let out = g.add(
            NodeKind::Transform(Arc::new(crate::operator::GatherConcat)),
            vec![left, right],
            "gather",
        );
        let res = fuse_chains(&g, out, &HashSet::new());
        assert!(
            res.chains.is_empty(),
            "shared feeds two consumers and the branches are single nodes"
        );
        assert_eq!(res.absorbed, 0);
    }

    struct VecAffine {
        a: f64,
        b: f64,
    }
    impl Transformer<Vec<f64>, Vec<f64>> for VecAffine {
        fn apply(&self, x: &Vec<f64>) -> Vec<f64> {
            x.iter().map(|v| v * self.a + self.b).collect()
        }
        fn columnar_kernel(&self) -> Option<crate::operator::ColumnarFn> {
            let (a, b) = (self.a, self.b);
            Some(Arc::new(move |x, out| {
                out.extend(x.iter().map(|v| v * a + b))
            }))
        }
    }

    /// No columnar kernel: stays fusable but forces the record path.
    struct VecAbs;
    impl Transformer<Vec<f64>, Vec<f64>> for VecAbs {
        fn apply(&self, x: &Vec<f64>) -> Vec<f64> {
            x.iter().map(|v| v.abs()).collect()
        }
    }

    fn vec_source(n: usize) -> NodeKind {
        NodeKind::DataSource(AnyData::wrap(DistCollection::from_vec(
            (0..n)
                .map(|r| (0..4).map(|c| (r * 4 + c) as f64 * 0.3 - 2.0).collect())
                .collect::<Vec<Vec<f64>>>(),
            2,
        )))
    }

    fn vt(op: impl Transformer<Vec<f64>, Vec<f64>>) -> NodeKind {
        NodeKind::Transform(Arc::new(TypedTransformer::new(op)))
    }

    #[test]
    fn columnar_chain_is_bit_identical_to_record_path() {
        let mut g = Graph::new();
        let src = g.add(vec_source(7), vec![], "src");
        let a = g.add(vt(VecAffine { a: 1.5, b: 0.25 }), vec![src], "aff1");
        let b = g.add(vt(VecAffine { a: -0.75, b: 1.0 }), vec![a], "aff2");
        let c = g.add(vt(VecAffine { a: 3.0, b: -0.5 }), vec![b], "aff3");

        let record = fuse_chains_with(&g, c, &HashSet::new(), false);
        assert_eq!(record.columnar_chains, 0);
        let columnar = fuse_chains_with(&g, c, &HashSet::new(), true);
        assert_eq!(columnar.chains.len(), 1);
        assert_eq!(columnar.columnar_chains, 1);
        // Chain structure is identical either way — the toggle never
        // changes what fuses, only how the fused node executes.
        assert_eq!(record.chains[0].members, columnar.chains[0].members);
        assert_eq!(record.graph.nodes[c].label, columnar.graph.nodes[c].label);

        let data = || {
            AnyData::wrap(DistCollection::from_vec(
                (0..11)
                    .map(|r| (0..5).map(|c| (r * 5 + c) as f64 * 0.17 - 4.0).collect())
                    .collect::<Vec<Vec<f64>>>(),
                3,
            ))
        };
        let run = |res: &FusionResult| -> Vec<Vec<f64>> {
            let NodeKind::Transform(op) = &res.graph.nodes[c].kind else {
                panic!("tail must stay a transform");
            };
            assert_eq!(op.fused_columnar(), res.columnar_chains == 1);
            let out: DistCollection<Vec<f64>> = op.apply_any(&[data()], &ctx()).downcast();
            out.collect()
        };
        let rec_out = run(&record);
        let col_out = run(&columnar);
        assert_eq!(rec_out.len(), 11);
        for (r, c2) in rec_out.iter().zip(&col_out) {
            let rb: Vec<u64> = r.iter().map(|v| v.to_bits()).collect();
            let cb: Vec<u64> = c2.iter().map(|v| v.to_bits()).collect();
            assert_eq!(rb, cb, "columnar path must be bit-identical");
        }
    }

    #[test]
    fn chain_with_kernelless_member_falls_back_to_record_path() {
        let mut g = Graph::new();
        let src = g.add(vec_source(5), vec![], "src");
        let a = g.add(vt(VecAffine { a: 2.0, b: 0.0 }), vec![src], "aff");
        let b = g.add(vt(VecAbs), vec![a], "abs");
        let res = fuse_chains_with(&g, b, &HashSet::new(), true);
        assert_eq!(res.chains.len(), 1, "fusion itself is never lost");
        assert_eq!(
            res.columnar_chains, 0,
            "a member without a columnar kernel keeps the chain on the record path"
        );
        let NodeKind::Transform(op) = &res.graph.nodes[b].kind else {
            panic!("tail must stay a transform");
        };
        assert!(!op.fused_columnar());
        let out: DistCollection<Vec<f64>> = op
            .apply_any(
                &[AnyData::wrap(DistCollection::from_vec(
                    vec![vec![-1.0, 2.0], vec![3.0, -4.0]],
                    2,
                ))],
                &ctx(),
            )
            .downcast();
        assert_eq!(out.collect(), vec![vec![2.0, 4.0], vec![6.0, 8.0]]);
    }

    #[test]
    fn non_vector_record_types_never_lower_columnar() {
        // f64 records: the erased layer's type gate returns no columnar
        // kernels, so even with the toggle on the chain stays record-path.
        let mut g = Graph::new();
        let src = g.add(source(4), vec![], "src");
        let a = g.add(t(AddC(1.0)), vec![src], "a");
        let b = g.add(t(MulC(2.0)), vec![a], "b");
        let res = fuse_chains_with(&g, b, &HashSet::new(), true);
        assert_eq!(res.chains.len(), 1);
        assert_eq!(res.columnar_chains, 0);
        let NodeKind::Transform(op) = &res.graph.nodes[b].kind else {
            panic!("tail must stay a transform");
        };
        let data = AnyData::wrap(DistCollection::from_vec(vec![0.0, 1.0, 2.0], 2));
        let out: DistCollection<f64> = op.apply_any(&[data], &ctx()).downcast();
        assert_eq!(out.collect(), vec![2.0, 4.0, 6.0]);
    }

    #[test]
    fn fusion_is_idempotent() {
        let mut g = Graph::new();
        let src = g.add(source(4), vec![], "src");
        let a = g.add(t(AddC(1.0)), vec![src], "a");
        let b = g.add(t(MulC(2.0)), vec![a], "b");
        let res = fuse_chains(&g, b, &HashSet::new());
        assert_eq!(res.chains.len(), 1);
        let again = fuse_chains(&res.graph, b, &HashSet::new());
        assert!(again.chains.is_empty(), "a FusedMap exposes no kernel");
        assert_eq!(again.graph.summary(), res.graph.summary());
    }

    #[test]
    fn try_fuse_rejects_short_or_kernelless_chains() {
        let one: Vec<(String, Arc<dyn ErasedTransformer>)> = vec![(
            "a".into(),
            Arc::new(TypedTransformer::new(AddC(1.0))) as Arc<dyn ErasedTransformer>,
        )];
        assert!(FusedMap::try_fuse(&one).is_none());
        let with_gather: Vec<(String, Arc<dyn ErasedTransformer>)> = vec![
            (
                "a".into(),
                Arc::new(TypedTransformer::new(AddC(1.0))) as Arc<dyn ErasedTransformer>,
            ),
            (
                "g".into(),
                Arc::new(crate::operator::GatherConcat) as Arc<dyn ErasedTransformer>,
            ),
        ];
        assert!(FusedMap::try_fuse(&with_gather).is_none());
    }

    #[test]
    fn merge_profiles_sums_time_and_keeps_boundary_shape() {
        let mut profile = PipelineProfile::default();
        for (id, fixed, slope) in [(1usize, 0.5, 0.01), (2, 0.25, 0.02)] {
            profile.nodes.insert(
                id,
                NodeProfile {
                    secs_per_record: slope,
                    fixed_secs: fixed,
                    out_bytes_per_record: id as f64 * 8.0,
                    out_records_per_in: 1.0,
                    records_hint: 100,
                    out_stats: DataStats {
                        count: 100,
                        bytes_per_record: id as f64 * 8.0,
                        ..DataStats::empty()
                    },
                },
            );
        }
        let chain = FusedChain {
            tail: 2,
            members: vec![1, 2],
            labels: vec!["a".into(), "b".into()],
        };
        let unfused: f64 = [1usize, 2]
            .iter()
            .map(|id| profile.nodes[id].est_secs(100))
            .sum();
        merge_profiles(&mut profile, &[chain]);
        assert!(!profile.nodes.contains_key(&1));
        let merged = &profile.nodes[&2];
        assert!((merged.est_secs(100) - unfused).abs() < 1e-12);
        assert_eq!(merged.out_bytes_per_record, 16.0);
        assert_eq!(merged.records_hint, 100);
    }

    #[test]
    fn merge_profiles_drops_partially_profiled_chains() {
        let mut profile = PipelineProfile::default();
        profile.nodes.insert(
            2,
            NodeProfile {
                secs_per_record: 0.1,
                fixed_secs: 0.0,
                out_bytes_per_record: 8.0,
                out_records_per_in: 1.0,
                records_hint: 10,
                out_stats: DataStats::empty(),
            },
        );
        let chain = FusedChain {
            tail: 2,
            members: vec![1, 2], // member 1 unprofiled
            labels: vec!["a".into(), "b".into()],
        };
        merge_profiles(&mut profile, &[chain]);
        assert!(profile.nodes.is_empty(), "partial sums would under-cost");
    }

    #[test]
    fn fused_cost_charges_bytes_only_at_boundaries() {
        let members = [
            CostProfile {
                flops: 10.0,
                bytes: 100.0,
                network: 1.0,
                barriers: 1.0,
            },
            CostProfile {
                flops: 20.0,
                bytes: 400.0,
                network: 2.0,
                barriers: 0.0,
            },
            CostProfile {
                flops: 30.0,
                bytes: 60.0,
                network: 0.0,
                barriers: 1.0,
            },
        ];
        let c = fused_cost(&members);
        assert_eq!(c.flops, 60.0);
        assert_eq!(c.network, 3.0);
        assert_eq!(c.barriers, 2.0);
        // Head input read (50) + tail output write (30); the interior 400
        // bytes vanish.
        assert_eq!(c.bytes, 80.0);
        assert_eq!(fused_cost(&[]), CostProfile::default());
    }
}
