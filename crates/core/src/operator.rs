//! Operator abstractions: the typed public traits mirrored from the paper's
//! API (Fig. 3) and the type-erased layer the pipeline DAG stores.
//!
//! * [`Transformer`] — deterministic, side-effect-free unary function over
//!   records; applied item-wise or to a whole distributed collection.
//! * [`Estimator`] / [`LabelEstimator`] — functions from a dataset (plus
//!   labels) to a `Transformer`; "function generating functions".
//! * `Optimizable*` — logical operators with multiple physical
//!   implementations, each carrying a [`CostFn`] used by the operator-level
//!   optimizer (§3).
//! * `Erased*` — object-safe wrappers that downcast whole collections once
//!   per node execution (never per item), so the DAG can hold heterogeneous
//!   operators while the public API stays fully typed.

use std::any::Any;
use std::sync::Arc;

use keystone_dataflow::cluster::ResourceDesc;
use keystone_dataflow::collection::DistCollection;
use keystone_dataflow::cost::CostProfile;

use crate::context::ExecContext;
use crate::record::{DataStats, Record};

/// Type-preserving sampler stored inside [`AnyData`].
pub type ErasedSampler = Arc<dyn Fn(&AnyData, usize, u64) -> AnyData + Send + Sync>;

/// A type-erased record in flight between members of a fused operator chain.
pub type AnyRecord = Box<dyn Any + Send + Sync>;

/// One fused-chain member applied to a single erased record.
pub type RecordFn = Arc<dyn Fn(AnyRecord) -> AnyRecord + Send + Sync>;

/// A columnar kernel: reads one dense record as a contiguous `f64` slice
/// and appends the output record's values onto the packed batch buffer.
/// Must reproduce the operator's [`Transformer::apply`] arithmetic exactly
/// (same operations, same order), because the differential oracle requires
/// the columnar and record paths to agree bit-for-bit.
pub type ColumnarFn = Arc<dyn Fn(&[f64], &mut Vec<f64>) + Send + Sync>;

/// Folds one partition's fused outputs into a typed, still-boxed partition
/// (`Box<Vec<B>>`). Runs inside the fused partition pass, on worker threads.
pub type PartitionFold = Arc<dyn Fn(Vec<AnyRecord>) -> AnyRecord + Send + Sync>;

/// Assembles the folded partitions into the typed output collection.
pub type PartitionAssemble = Arc<dyn Fn(Vec<AnyRecord>) -> AnyData + Send + Sync>;

/// Drives a fused chain over its typed input in **one** partition-parallel
/// pass: applies the owning member's operator to each record, pipes the
/// boxed result through `rest` (the downstream members' composed
/// [`RecordFn`]s), folds each partition with `fold`, and hands the folded
/// partitions to `assemble`. Provided by the chain *head*, which is the only
/// member that knows the input element type.
pub type FusedDriver = Arc<
    dyn Fn(&AnyData, &RecordFn, &PartitionFold, &PartitionAssemble, &ExecContext) -> AnyData
        + Send
        + Sync,
>;

/// The fusion surface of a per-record transformer: everything the
/// whole-stage fusion pass (`optimizer::fusion`) needs to splice this
/// operator into a fused chain. `driver` is used when the operator heads a
/// chain, `func` when it sits anywhere downstream, and `fold`/`assemble`
/// when it terminates one (only the tail knows the output element type).
pub struct RecordKernel {
    /// Applies this member to one erased record.
    pub func: RecordFn,
    /// Runs a whole chain over this member's typed input (chain head role).
    pub driver: FusedDriver,
    /// Folds a partition of this member's outputs (chain tail role).
    pub fold: PartitionFold,
    /// Rebuilds the typed output collection (chain tail role).
    pub assemble: PartitionAssemble,
}

/// Erased cost model over a node's input statistics.
pub type ErasedCostFn = Arc<dyn Fn(&[DataStats], &ResourceDesc) -> CostProfile + Send + Sync>;

/// Strips module paths and generic params from a type name.
pub fn short_type_name<T: ?Sized>() -> String {
    let full = std::any::type_name::<T>();
    let no_generics = full.split('<').next().unwrap_or(full);
    no_generics
        .rsplit("::")
        .next()
        .unwrap_or(no_generics)
        .to_string()
}

// ---------------------------------------------------------------------------
// Typed public traits
// ---------------------------------------------------------------------------

/// A deterministic, side-effect-free function from `A` to `B`.
pub trait Transformer<A: Record, B: Record>: Send + Sync + 'static {
    /// Applies to a single record.
    fn apply(&self, input: &A) -> B;

    /// Applies to a whole collection. The default maps item-wise; operators
    /// with per-partition setup (or distributed semantics) override this.
    fn apply_collection(&self, input: &DistCollection<A>, _ctx: &ExecContext) -> DistCollection<B> {
        input.map(|x| self.apply(x))
    }

    /// Human-readable operator name.
    fn name(&self) -> String {
        short_type_name::<Self>()
    }

    /// Whether `apply_collection` is equivalent to mapping [`apply`] over
    /// every record independently. Operators that override
    /// `apply_collection` with per-partition setup or distributed semantics
    /// must return `false` here, or the fusion pass would change their
    /// behaviour by replaying them record-wise inside a fused chain.
    ///
    /// [`apply`]: Transformer::apply
    fn per_record(&self) -> bool {
        true
    }

    /// Optional columnar lowering of [`apply`], used only when `A` and `B`
    /// are both `Vec<f64>` (the erased layer enforces the type gate). The
    /// returned kernel must compute exactly what `apply` computes — same
    /// floating-point operations in the same order — so the columnar fused
    /// path stays bit-identical to the record path. Operators without a
    /// kernel simply keep their chains on the record path.
    ///
    /// [`apply`]: Transformer::apply
    fn columnar_kernel(&self) -> Option<ColumnarFn> {
        None
    }
}

/// An unsupervised estimator: fits a model from data.
pub trait Estimator<A: Record, B: Record>: Send + Sync + 'static {
    /// Fits on materialized data.
    fn fit(&self, data: &DistCollection<A>, ctx: &ExecContext) -> Box<dyn Transformer<A, B>>;

    /// Fits with lazy access to the data. Iterative estimators override
    /// this and call `data()` once per pass, reproducing Spark's
    /// recompute-unless-cached behaviour that the materialization optimizer
    /// (§4.3) exists to manage.
    fn fit_lazy(
        &self,
        data: &dyn Fn() -> DistCollection<A>,
        ctx: &ExecContext,
    ) -> Box<dyn Transformer<A, B>> {
        self.fit(&data(), ctx)
    }

    /// Number of passes over the input (`w` in §4.3); 1 for single-pass.
    fn weight(&self) -> u32 {
        1
    }

    /// Human-readable operator name.
    fn name(&self) -> String {
        short_type_name::<Self>()
    }
}

/// A supervised estimator: fits a model from data and labels.
pub trait LabelEstimator<A: Record, L: Record, B: Record>: Send + Sync + 'static {
    /// Fits on materialized data and labels.
    fn fit(
        &self,
        data: &DistCollection<A>,
        labels: &DistCollection<L>,
        ctx: &ExecContext,
    ) -> Box<dyn Transformer<A, B>>;

    /// Lazy-data variant; see [`Estimator::fit_lazy`].
    fn fit_lazy(
        &self,
        data: &dyn Fn() -> DistCollection<A>,
        labels: &DistCollection<L>,
        ctx: &ExecContext,
    ) -> Box<dyn Transformer<A, B>> {
        self.fit(&data(), labels, ctx)
    }

    /// Number of passes over the input (`w` in §4.3).
    fn weight(&self) -> u32 {
        1
    }

    /// Human-readable operator name.
    fn name(&self) -> String {
        short_type_name::<Self>()
    }
}

// ---------------------------------------------------------------------------
// Cost models and optimizable logical operators
// ---------------------------------------------------------------------------

/// A developer-supplied cost model: maps input statistics (one entry per
/// DAG input — data first, labels second) and the cluster descriptor to a
/// resource-consumption estimate.
pub type CostFn = Box<dyn Fn(&[DataStats], &ResourceDesc) -> CostProfile + Send + Sync>;

/// One physical implementation of a logical transformer.
pub struct TransformerOption<A: Record, B: Record> {
    /// Physical operator name (e.g. "conv:fft").
    pub name: String,
    /// Its cost model.
    pub cost: CostFn,
    /// The implementation.
    pub op: Box<dyn Transformer<A, B>>,
}

/// One physical implementation of a logical estimator.
pub struct EstimatorOption<A: Record, B: Record> {
    /// Physical operator name (e.g. "pca:dist-tsvd").
    pub name: String,
    /// Its cost model.
    pub cost: CostFn,
    /// The implementation.
    pub op: Box<dyn Estimator<A, B>>,
}

/// One physical implementation of a logical supervised estimator.
pub struct LabelEstimatorOption<A: Record, L: Record, B: Record> {
    /// Physical operator name (e.g. "solver:lbfgs").
    pub name: String,
    /// Its cost model.
    pub cost: CostFn,
    /// The implementation.
    pub op: Box<dyn LabelEstimator<A, L, B>>,
}

/// A logical transformer with several physical implementations.
pub trait OptimizableTransformer<A: Record, B: Record>: Send + Sync + 'static {
    /// The candidate implementations with their cost models.
    fn options(&self) -> Vec<TransformerOption<A, B>>;
    /// Index into `options()` used when operator-level optimization is off.
    fn default_index(&self) -> usize {
        0
    }
    /// Logical operator name.
    fn name(&self) -> String {
        short_type_name::<Self>()
    }
}

/// A logical estimator with several physical implementations.
pub trait OptimizableEstimator<A: Record, B: Record>: Send + Sync + 'static {
    /// The candidate implementations with their cost models.
    fn options(&self) -> Vec<EstimatorOption<A, B>>;
    /// Index into `options()` used when operator-level optimization is off.
    fn default_index(&self) -> usize {
        0
    }
    /// Logical operator name.
    fn name(&self) -> String {
        short_type_name::<Self>()
    }
}

/// A logical supervised estimator with several physical implementations.
pub trait OptimizableLabelEstimator<A: Record, L: Record, B: Record>:
    Send + Sync + 'static
{
    /// The candidate implementations with their cost models.
    fn options(&self) -> Vec<LabelEstimatorOption<A, L, B>>;
    /// Index into `options()` used when operator-level optimization is off.
    fn default_index(&self) -> usize {
        0
    }
    /// Logical operator name.
    fn name(&self) -> String {
        short_type_name::<Self>()
    }
}

// ---------------------------------------------------------------------------
// Erased data
// ---------------------------------------------------------------------------

/// A type-erased distributed collection plus its measured statistics.
#[derive(Clone)]
pub struct AnyData {
    inner: Arc<dyn Any + Send + Sync>,
    stats: DataStats,
    type_name: &'static str,
    /// Identity of the underlying partition data (clones share it).
    content_id: usize,
    /// Type-preserving sampler captured at wrap time, so the profiler can
    /// subsample erased data without knowing its element type.
    sampler: ErasedSampler,
}

impl AnyData {
    /// Wraps a typed collection, probing up to 64 records for statistics.
    pub fn wrap<T: Record>(c: DistCollection<T>) -> Self {
        let stats = DataStats::from_collection(&c, 64);
        let content_id = c.content_id();
        AnyData {
            inner: Arc::new(c),
            stats,
            content_id,
            type_name: std::any::type_name::<T>(),
            sampler: Arc::new(|this: &AnyData, size: usize, seed: u64| {
                let typed: DistCollection<T> = this.downcast();
                // Single partition: profiled timings are sequential
                // per-record costs, which the simulated clock then divides
                // across workers.
                AnyData::wrap(DistCollection::from_vec(typed.sample(size, seed), 1))
            }),
        }
    }

    /// The type-preserving sampler.
    pub(crate) fn sampler(&self) -> ErasedSampler {
        self.sampler.clone()
    }

    /// Recovers the typed collection (cheap: collections are `Arc`-backed).
    ///
    /// # Panics
    /// Panics with both type names if the stored type differs — this
    /// indicates a pipeline wiring bug, which the typed construction API
    /// makes unreachable for users.
    pub fn downcast<T: Record>(&self) -> DistCollection<T> {
        self.inner
            .downcast_ref::<DistCollection<T>>()
            .unwrap_or_else(|| {
                panic!(
                    "pipeline type error: expected DistCollection<{}>, found {}",
                    std::any::type_name::<T>(),
                    self.type_name
                )
            })
            .clone()
    }

    /// Measured statistics of this dataset.
    pub fn stats(&self) -> &DataStats {
        &self.stats
    }

    /// Estimated total bytes.
    pub fn total_bytes(&self) -> u64 {
        self.stats.total_bytes() as u64
    }

    /// Stored element type name (diagnostics).
    pub fn type_name(&self) -> &'static str {
        self.type_name
    }

    /// Identity of the underlying data (used for CSE of sources): clones of
    /// the same collection — including separate `wrap` calls over them —
    /// report the same id because they share partition allocations.
    pub fn ptr_id(&self) -> usize {
        self.content_id
    }
}

impl std::fmt::Debug for AnyData {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AnyData")
            .field("type", &self.type_name)
            .field("count", &self.stats.count)
            .finish()
    }
}

/// Output of a DAG node: either data or a fitted model.
#[derive(Clone)]
pub enum NodeOutput {
    /// A dataset.
    Data(AnyData),
    /// A fitted transformer produced by an estimator node.
    Model(Arc<dyn ErasedTransformer>),
}

impl NodeOutput {
    /// The data payload.
    ///
    /// # Panics
    /// Panics if this output is a model.
    pub fn data(&self) -> &AnyData {
        match self {
            NodeOutput::Data(d) => d,
            NodeOutput::Model(_) => panic!("expected data output, found model"),
        }
    }

    /// The model payload.
    ///
    /// # Panics
    /// Panics if this output is data.
    pub fn model(&self) -> &Arc<dyn ErasedTransformer> {
        match self {
            NodeOutput::Model(m) => m,
            NodeOutput::Data(_) => panic!("expected model output, found data"),
        }
    }

    /// Approximate bytes (models report a nominal small footprint).
    pub fn approx_bytes(&self) -> u64 {
        match self {
            NodeOutput::Data(d) => d.total_bytes(),
            NodeOutput::Model(_) => 1 << 10,
        }
    }
}

// ---------------------------------------------------------------------------
// Erased operator layer
// ---------------------------------------------------------------------------

/// Erased physical option of a transformer node.
pub struct ErasedTransformerOption {
    /// Physical operator name.
    pub name: String,
    /// Cost model over the node's input statistics.
    pub cost: ErasedCostFn,
    /// The erased implementation.
    pub op: Arc<dyn ErasedTransformer>,
}

/// Erased physical option of an estimator node.
pub struct ErasedEstimatorOption {
    /// Physical operator name.
    pub name: String,
    /// Cost model over the node's input statistics.
    pub cost: ErasedCostFn,
    /// The erased implementation.
    pub op: Arc<dyn ErasedEstimator>,
}

/// Object-safe transformer over erased collections. May take several data
/// inputs (e.g. `gather`).
pub trait ErasedTransformer: Send + Sync {
    /// Operator name for labels and diagnostics.
    fn name(&self) -> String;

    /// Applies to erased inputs.
    fn apply_any(&self, inputs: &[AnyData], ctx: &ExecContext) -> AnyData;

    /// Physical alternatives, when this is an optimizable logical operator.
    fn physical_options(&self) -> Option<Vec<ErasedTransformerOption>> {
        None
    }

    /// The per-record fusion surface, when this operator is a pure
    /// record-wise map (see [`Transformer::per_record`]). `None` marks the
    /// operator as a fusion barrier.
    fn record_kernel(&self) -> Option<RecordKernel> {
        None
    }

    /// Labels of the original member operators, when this is a fused chain.
    fn fused_members(&self) -> Option<Vec<String>> {
        None
    }

    /// The columnar lowering of this operator, when its records are dense
    /// `Vec<f64>` vectors and the underlying operator provides one (see
    /// [`Transformer::columnar_kernel`]). `None` keeps chains containing
    /// this operator on the record path — the automatic fallback for
    /// non-vector record types.
    fn columnar_kernel(&self) -> Option<ColumnarFn> {
        None
    }

    /// True when this is a fused chain executing on the columnar path; the
    /// executor prices such nodes on the columnar synthetic scale.
    fn fused_columnar(&self) -> bool {
        false
    }
}

/// Lazy access to an estimator's input: calling [`InputHandle::get`] may hit
/// the cache or trigger recomputation of the upstream chain, exactly like an
/// uncached RDD in Spark.
pub trait InputHandle: Sync {
    /// Produces (or re-produces) the input dataset.
    fn get(&self) -> AnyData;
}

/// Object-safe estimator over erased inputs.
pub trait ErasedEstimator: Send + Sync {
    /// Operator name for labels and diagnostics.
    fn name(&self) -> String;

    /// Number of passes over the first input.
    fn weight(&self) -> u32;

    /// Fits a model. `inputs[0]` is the training data (lazy); further
    /// handles are auxiliary inputs such as labels.
    fn fit_any(&self, inputs: &[&dyn InputHandle], ctx: &ExecContext)
        -> Arc<dyn ErasedTransformer>;

    /// Physical alternatives, when this is an optimizable logical operator.
    fn physical_options(&self) -> Option<Vec<ErasedEstimatorOption>> {
        None
    }
}

// ---------------------------------------------------------------------------
// Typed -> erased adapters
// ---------------------------------------------------------------------------

/// Erases a typed [`Transformer`].
pub struct TypedTransformer<A: Record, B: Record> {
    op: Arc<dyn Transformer<A, B>>,
}

impl<A: Record, B: Record> TypedTransformer<A, B> {
    /// Wraps a typed transformer.
    pub fn new(op: impl Transformer<A, B>) -> Self {
        TypedTransformer { op: Arc::new(op) }
    }

    /// Wraps an already-boxed transformer (e.g. a fitted model).
    pub fn from_box(op: Box<dyn Transformer<A, B>>) -> Self {
        TypedTransformer { op: Arc::from(op) }
    }
}

impl<A: Record, B: Record> ErasedTransformer for TypedTransformer<A, B> {
    fn name(&self) -> String {
        self.op.name()
    }

    fn apply_any(&self, inputs: &[AnyData], ctx: &ExecContext) -> AnyData {
        let input = inputs[0].downcast::<A>();
        AnyData::wrap(self.op.apply_collection(&input, ctx))
    }

    fn record_kernel(&self) -> Option<RecordKernel> {
        if !self.op.per_record() {
            return None;
        }
        let func: RecordFn = {
            let op = self.op.clone();
            Arc::new(move |r: AnyRecord| {
                let x = r.downcast::<A>().unwrap_or_else(|_| {
                    panic!(
                        "fused chain type error: expected record of type {}",
                        std::any::type_name::<A>()
                    )
                });
                Box::new(op.apply(&x)) as AnyRecord
            })
        };
        // The driver borrows each input record directly out of the
        // partition slice — the only per-record allocation in a fused pass
        // is the small `Box` carrying the value between members.
        let driver: FusedDriver = {
            let op = self.op.clone();
            Arc::new(
                move |input: &AnyData,
                      rest: &RecordFn,
                      fold: &PartitionFold,
                      assemble: &PartitionAssemble,
                      _ctx: &ExecContext| {
                    let typed: DistCollection<A> = input.downcast();
                    let folded = typed.fold_partitions(|part| {
                        let out: Vec<AnyRecord> = part
                            .iter()
                            .map(|x| rest(Box::new(op.apply(x)) as AnyRecord))
                            .collect();
                        let n = out.len() as u64;
                        (fold(out), n)
                    });
                    let parts = folded
                        .into_partitions()
                        .expect("fused fold output is freshly produced and uniquely owned");
                    assemble(parts.into_iter().flatten().collect())
                },
            )
        };
        let fold: PartitionFold = Arc::new(|records: Vec<AnyRecord>| {
            let typed: Vec<B> = records
                .into_iter()
                .map(|r| {
                    *r.downcast::<B>().unwrap_or_else(|_| {
                        panic!(
                            "fused chain type error: expected record of type {}",
                            std::any::type_name::<B>()
                        )
                    })
                })
                .collect();
            Box::new(typed) as AnyRecord
        });
        let assemble: PartitionAssemble = Arc::new(|parts: Vec<AnyRecord>| {
            let parts: Vec<Vec<B>> = parts
                .into_iter()
                .map(|p| {
                    *p.downcast::<Vec<B>>()
                        .expect("fused chain type error: partition fold mismatch")
                })
                .collect();
            AnyData::wrap(DistCollection::from_partitions(parts))
        });
        Some(RecordKernel {
            func,
            driver,
            fold,
            assemble,
        })
    }

    fn columnar_kernel(&self) -> Option<ColumnarFn> {
        // The type gate: columnar execution only exists for dense
        // `Vec<f64>` records. Chains over any other record type fall back
        // to the record path automatically.
        if !self.op.per_record()
            || std::any::TypeId::of::<A>() != std::any::TypeId::of::<Vec<f64>>()
            || std::any::TypeId::of::<B>() != std::any::TypeId::of::<Vec<f64>>()
        {
            return None;
        }
        self.op.columnar_kernel()
    }
}

/// Erases a typed [`Estimator`].
pub struct TypedEstimator<A: Record, B: Record> {
    op: Arc<dyn Estimator<A, B>>,
}

impl<A: Record, B: Record> TypedEstimator<A, B> {
    /// Wraps a typed estimator.
    pub fn new(op: impl Estimator<A, B>) -> Self {
        TypedEstimator { op: Arc::new(op) }
    }

    /// Wraps an already-boxed estimator.
    pub fn from_box(op: Box<dyn Estimator<A, B>>) -> Self {
        TypedEstimator { op: Arc::from(op) }
    }
}

impl<A: Record, B: Record> ErasedEstimator for TypedEstimator<A, B> {
    fn name(&self) -> String {
        self.op.name()
    }

    fn weight(&self) -> u32 {
        self.op.weight()
    }

    fn fit_any(
        &self,
        inputs: &[&dyn InputHandle],
        ctx: &ExecContext,
    ) -> Arc<dyn ErasedTransformer> {
        let handle = inputs[0];
        let model = self.op.fit_lazy(&|| handle.get().downcast::<A>(), ctx);
        Arc::new(TypedTransformer::from_box(model))
    }
}

/// Erases a typed [`LabelEstimator`]. Labels (`inputs[1]`) are fetched once.
pub struct TypedLabelEstimator<A: Record, L: Record, B: Record> {
    op: Arc<dyn LabelEstimator<A, L, B>>,
}

impl<A: Record, L: Record, B: Record> TypedLabelEstimator<A, L, B> {
    /// Wraps a typed supervised estimator.
    pub fn new(op: impl LabelEstimator<A, L, B>) -> Self {
        TypedLabelEstimator { op: Arc::new(op) }
    }

    /// Wraps an already-boxed supervised estimator.
    pub fn from_box(op: Box<dyn LabelEstimator<A, L, B>>) -> Self {
        TypedLabelEstimator { op: Arc::from(op) }
    }
}

impl<A: Record, L: Record, B: Record> ErasedEstimator for TypedLabelEstimator<A, L, B> {
    fn name(&self) -> String {
        self.op.name()
    }

    fn weight(&self) -> u32 {
        self.op.weight()
    }

    fn fit_any(
        &self,
        inputs: &[&dyn InputHandle],
        ctx: &ExecContext,
    ) -> Arc<dyn ErasedTransformer> {
        let data_handle = inputs[0];
        let labels = inputs[1].get().downcast::<L>();
        let model = self
            .op
            .fit_lazy(&|| data_handle.get().downcast::<A>(), &labels, ctx);
        Arc::new(TypedTransformer::from_box(model))
    }
}

/// Erases an [`OptimizableTransformer`]: applies via the default option and
/// exposes erased physical options to the operator-level optimizer.
pub struct TypedOptimizableTransformer<A: Record, B: Record> {
    op: Arc<dyn OptimizableTransformer<A, B>>,
}

impl<A: Record, B: Record> TypedOptimizableTransformer<A, B> {
    /// Wraps an optimizable logical transformer.
    pub fn new(op: impl OptimizableTransformer<A, B>) -> Self {
        TypedOptimizableTransformer { op: Arc::new(op) }
    }
}

impl<A: Record, B: Record> ErasedTransformer for TypedOptimizableTransformer<A, B> {
    fn name(&self) -> String {
        self.op.name()
    }

    fn apply_any(&self, inputs: &[AnyData], ctx: &ExecContext) -> AnyData {
        let mut options = self.op.options();
        let idx = self.op.default_index().min(options.len() - 1);
        let chosen = options.swap_remove(idx);
        let input = inputs[0].downcast::<A>();
        AnyData::wrap(chosen.op.apply_collection(&input, ctx))
    }

    fn physical_options(&self) -> Option<Vec<ErasedTransformerOption>> {
        Some(
            self.op
                .options()
                .into_iter()
                .map(|o| ErasedTransformerOption {
                    name: o.name,
                    cost: Arc::new(o.cost),
                    op: Arc::new(TypedTransformer::from_box(o.op)),
                })
                .collect(),
        )
    }
}

/// Erases an [`OptimizableEstimator`].
pub struct TypedOptimizableEstimator<A: Record, B: Record> {
    op: Arc<dyn OptimizableEstimator<A, B>>,
}

impl<A: Record, B: Record> TypedOptimizableEstimator<A, B> {
    /// Wraps an optimizable logical estimator.
    pub fn new(op: impl OptimizableEstimator<A, B>) -> Self {
        TypedOptimizableEstimator { op: Arc::new(op) }
    }
}

impl<A: Record, B: Record> ErasedEstimator for TypedOptimizableEstimator<A, B> {
    fn name(&self) -> String {
        self.op.name()
    }

    fn weight(&self) -> u32 {
        let options = self.op.options();
        let idx = self.op.default_index().min(options.len().saturating_sub(1));
        options.get(idx).map_or(1, |o| o.op.weight())
    }

    fn fit_any(
        &self,
        inputs: &[&dyn InputHandle],
        ctx: &ExecContext,
    ) -> Arc<dyn ErasedTransformer> {
        let mut options = self.op.options();
        let idx = self.op.default_index().min(options.len() - 1);
        let chosen = options.swap_remove(idx);
        TypedEstimator::from_box(chosen.op).fit_any(inputs, ctx)
    }

    fn physical_options(&self) -> Option<Vec<ErasedEstimatorOption>> {
        Some(
            self.op
                .options()
                .into_iter()
                .map(|o| ErasedEstimatorOption {
                    name: o.name,
                    cost: Arc::new(o.cost),
                    op: Arc::new(TypedEstimator::from_box(o.op)),
                })
                .collect(),
        )
    }
}

/// Erases an [`OptimizableLabelEstimator`].
pub struct TypedOptimizableLabelEstimator<A: Record, L: Record, B: Record> {
    op: Arc<dyn OptimizableLabelEstimator<A, L, B>>,
}

impl<A: Record, L: Record, B: Record> TypedOptimizableLabelEstimator<A, L, B> {
    /// Wraps an optimizable supervised logical estimator.
    pub fn new(op: impl OptimizableLabelEstimator<A, L, B>) -> Self {
        TypedOptimizableLabelEstimator { op: Arc::new(op) }
    }
}

impl<A: Record, L: Record, B: Record> ErasedEstimator for TypedOptimizableLabelEstimator<A, L, B> {
    fn name(&self) -> String {
        self.op.name()
    }

    fn weight(&self) -> u32 {
        let options = self.op.options();
        let idx = self.op.default_index().min(options.len().saturating_sub(1));
        options.get(idx).map_or(1, |o| o.op.weight())
    }

    fn fit_any(
        &self,
        inputs: &[&dyn InputHandle],
        ctx: &ExecContext,
    ) -> Arc<dyn ErasedTransformer> {
        let mut options = self.op.options();
        let idx = self.op.default_index().min(options.len() - 1);
        let chosen = options.swap_remove(idx);
        TypedLabelEstimator::from_box(chosen.op).fit_any(inputs, ctx)
    }

    fn physical_options(&self) -> Option<Vec<ErasedEstimatorOption>> {
        Some(
            self.op
                .options()
                .into_iter()
                .map(|o| ErasedEstimatorOption {
                    name: o.name,
                    cost: Arc::new(o.cost),
                    op: Arc::new(TypedLabelEstimator::from_box(o.op)),
                })
                .collect(),
        )
    }
}

/// The `gather` combinator's physical operator: element-wise concatenation
/// of `Vec<f64>` feature vectors from several branches (Fig. 4's
/// `Pipeline.gather`, as used by the TIMIT random-feature pipeline).
pub struct GatherConcat;

impl ErasedTransformer for GatherConcat {
    fn name(&self) -> String {
        "Gather".to_string()
    }

    fn apply_any(&self, inputs: &[AnyData], _ctx: &ExecContext) -> AnyData {
        assert!(!inputs.is_empty(), "gather needs at least one branch");
        let mut acc: DistCollection<Vec<f64>> = inputs[0].downcast();
        for next in &inputs[1..] {
            let branch: DistCollection<Vec<f64>> = next.downcast();
            acc = acc.zip(&branch, |a, b| {
                let mut out = Vec::with_capacity(a.len() + b.len());
                out.extend_from_slice(a);
                out.extend_from_slice(b);
                out
            });
        }
        AnyData::wrap(acc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Doubler;
    impl Transformer<f64, f64> for Doubler {
        fn apply(&self, x: &f64) -> f64 {
            x * 2.0
        }
    }

    struct MeanCenter;
    impl Estimator<f64, f64> for MeanCenter {
        fn fit(
            &self,
            data: &DistCollection<f64>,
            _ctx: &ExecContext,
        ) -> Box<dyn Transformer<f64, f64>> {
            let n = data.count().max(1) as f64;
            let sum = data.aggregate(0.0, |a, x| a + x, |a, b| a + b);
            let mu = sum / n;
            struct Shift(f64);
            impl Transformer<f64, f64> for Shift {
                fn apply(&self, x: &f64) -> f64 {
                    x - self.0
                }
            }
            Box::new(Shift(mu))
        }
    }

    fn ctx() -> ExecContext {
        ExecContext::default_cluster()
    }

    #[test]
    fn short_names() {
        assert_eq!(short_type_name::<Doubler>(), "Doubler");
        assert_eq!(short_type_name::<Vec<f64>>(), "Vec");
    }

    #[test]
    fn anydata_roundtrip_and_stats() {
        let c = DistCollection::from_vec(vec![vec![1.0, 2.0]; 10], 2);
        let any = AnyData::wrap(c);
        assert_eq!(any.stats().count, 10);
        let back: DistCollection<Vec<f64>> = any.downcast();
        assert_eq!(back.count(), 10);
    }

    #[test]
    #[should_panic(expected = "pipeline type error")]
    fn anydata_wrong_downcast_panics() {
        let c = DistCollection::from_vec(vec![1.0f64; 3], 1);
        let any = AnyData::wrap(c);
        let _: DistCollection<String> = any.downcast();
    }

    #[test]
    fn typed_transformer_erasure() {
        let erased = TypedTransformer::new(Doubler);
        let input = AnyData::wrap(DistCollection::from_vec(vec![1.0, 2.0, 3.0], 2));
        let out = erased.apply_any(&[input], &ctx());
        let data: DistCollection<f64> = out.downcast();
        assert_eq!(data.collect(), vec![2.0, 4.0, 6.0]);
        assert!(erased.physical_options().is_none());
    }

    #[test]
    fn record_kernel_composes_into_one_pass() {
        // Manually splice Doubler -> ScaleBy(10) the way the fusion pass
        // does: head's driver, downstream func, tail's fold/assemble.
        let head = TypedTransformer::new(Doubler);
        let tail = TypedTransformer::new(ScaleBy(10.0));
        let hk = head.record_kernel().expect("Doubler is per-record");
        let tk = tail.record_kernel().expect("ScaleBy is per-record");
        let input = AnyData::wrap(DistCollection::from_vec(vec![1.0, 2.0, 3.0], 2));
        let out = (hk.driver)(&input, &tk.func, &tk.fold, &tk.assemble, &ctx());
        let v: DistCollection<f64> = out.downcast();
        assert_eq!(v.collect(), vec![20.0, 40.0, 60.0]);
    }

    #[test]
    fn non_per_record_transformer_has_no_kernel() {
        struct WholeCollection;
        impl Transformer<f64, f64> for WholeCollection {
            fn apply(&self, x: &f64) -> f64 {
                *x
            }
            fn apply_collection(
                &self,
                input: &DistCollection<f64>,
                _ctx: &ExecContext,
            ) -> DistCollection<f64> {
                input.map(|x| *x)
            }
            fn per_record(&self) -> bool {
                false
            }
        }
        assert!(TypedTransformer::new(WholeCollection)
            .record_kernel()
            .is_none());
        assert!(TypedTransformer::new(Doubler).record_kernel().is_some());
        assert!(TypedTransformer::new(Doubler).fused_members().is_none());
    }

    struct DirectHandle(AnyData);
    impl InputHandle for DirectHandle {
        fn get(&self) -> AnyData {
            self.0.clone()
        }
    }

    #[test]
    fn typed_estimator_erasure() {
        let erased = TypedEstimator::new(MeanCenter);
        let input = DirectHandle(AnyData::wrap(DistCollection::from_vec(
            vec![1.0, 2.0, 3.0],
            2,
        )));
        let model = erased.fit_any(&[&input], &ctx());
        let out = model.apply_any(&[input.get()], &ctx());
        let shifted: DistCollection<f64> = out.downcast();
        assert_eq!(shifted.collect(), vec![-1.0, 0.0, 1.0]);
        assert_eq!(erased.weight(), 1);
    }

    struct ScaleBy(f64);
    impl Transformer<f64, f64> for ScaleBy {
        fn apply(&self, x: &f64) -> f64 {
            x * self.0
        }
    }

    struct PickScale;
    impl OptimizableTransformer<f64, f64> for PickScale {
        fn options(&self) -> Vec<TransformerOption<f64, f64>> {
            vec![
                TransformerOption {
                    name: "x10".into(),
                    cost: Box::new(|_stats, _r| CostProfile::compute(100.0)),
                    op: Box::new(ScaleBy(10.0)),
                },
                TransformerOption {
                    name: "x100".into(),
                    cost: Box::new(|_stats, _r| CostProfile::compute(1.0)),
                    op: Box::new(ScaleBy(100.0)),
                },
            ]
        }
    }

    #[test]
    fn optimizable_transformer_exposes_options_and_default() {
        let erased = TypedOptimizableTransformer::new(PickScale);
        let opts = erased.physical_options().expect("optimizable");
        assert_eq!(opts.len(), 2);
        assert_eq!(opts[0].name, "x10");
        // Default index 0 -> x10.
        let input = AnyData::wrap(DistCollection::from_vec(vec![1.0], 1));
        let out = erased.apply_any(&[input], &ctx());
        let v: DistCollection<f64> = out.downcast();
        assert_eq!(v.collect(), vec![10.0]);
    }

    #[test]
    fn gather_concatenates_branches() {
        let a = AnyData::wrap(DistCollection::from_vec(vec![vec![1.0], vec![2.0]], 2));
        let b = AnyData::wrap(DistCollection::from_vec(vec![vec![10.0], vec![20.0]], 2));
        let out = GatherConcat.apply_any(&[a, b], &ctx());
        let v: DistCollection<Vec<f64>> = out.downcast();
        assert_eq!(v.collect(), vec![vec![1.0, 10.0], vec![2.0, 20.0]]);
    }

    #[test]
    fn node_output_accessors() {
        let d = NodeOutput::Data(AnyData::wrap(DistCollection::from_vec(vec![1.0], 1)));
        assert!(d.data().stats().count == 1);
        assert!(d.approx_bytes() > 0);
        let m: NodeOutput = NodeOutput::Model(Arc::new(TypedTransformer::new(Doubler)));
        assert_eq!(m.model().name(), "Doubler");
        assert_eq!(m.approx_bytes(), 1 << 10);
    }
}
