//! Hyperparameter search over pipelines — the §7 future-work item the paper
//! points at (TuPAQ): "look at how hyperparameter tuning can be integrated
//! into the system".
//!
//! This module provides the integration point: a grid search that builds,
//! optimizes and fits one pipeline per configuration and scores it on
//! held-out data. Each trial goes through the full optimizer, so physical
//! operator choices adapt per configuration (a trial with 10× more features
//! may get a different solver). Cross-trial computation reuse is the
//! natural next step and is deliberately left at this boundary.

use std::time::Instant;

use crate::context::ExecContext;
use crate::optimizer::PipelineOptions;
use crate::pipeline::{FittedPipeline, Pipeline};
use crate::record::Record;

/// One evaluated configuration.
#[derive(Debug, Clone)]
pub struct Trial<C> {
    /// The configuration.
    pub config: C,
    /// Validation score (higher is better).
    pub score: f64,
    /// Seconds spent optimizing + fitting this trial.
    pub fit_secs: f64,
}

/// Result of a grid search.
pub struct TuningResult<C, A: Record, B: Record> {
    /// All trials, in evaluation order.
    pub trials: Vec<Trial<C>>,
    /// Index of the best trial.
    pub best_index: usize,
    /// The fitted pipeline of the best trial.
    pub best_pipeline: FittedPipeline<A, B>,
}

impl<C: Clone, A: Record, B: Record> TuningResult<C, A, B> {
    /// The best configuration.
    pub fn best_config(&self) -> C {
        self.trials[self.best_index].config.clone()
    }

    /// The best score.
    pub fn best_score(&self) -> f64 {
        self.trials[self.best_index].score
    }
}

/// Evaluates every configuration and returns the best-scoring fitted
/// pipeline. `build` constructs the pipeline for a configuration (binding
/// training data); `score` evaluates a fitted pipeline (higher is better).
///
/// # Panics
/// Panics if `configs` is empty or a score is NaN.
pub fn grid_search<C: Clone, A: Record, B: Record>(
    configs: &[C],
    ctx: &ExecContext,
    opts: &PipelineOptions,
    build: impl Fn(&C) -> Pipeline<A, B>,
    score: impl Fn(&FittedPipeline<A, B>, &ExecContext) -> f64,
) -> TuningResult<C, A, B> {
    assert!(!configs.is_empty(), "grid search needs at least one config");
    let mut trials: Vec<Trial<C>> = Vec::with_capacity(configs.len());
    let mut best: Option<(usize, FittedPipeline<A, B>)> = None;
    for (i, config) in configs.iter().enumerate() {
        let start = Instant::now();
        let pipe = build(config);
        let (fitted, _report) = pipe.fit(ctx, opts);
        let fit_secs = start.elapsed().as_secs_f64();
        let s = score(&fitted, ctx);
        assert!(!s.is_nan(), "score must not be NaN");
        let is_best = best.as_ref().is_none_or(|(bi, _)| s > trials[*bi].score);
        trials.push(Trial {
            config: config.clone(),
            score: s,
            fit_secs,
        });
        if is_best {
            best = Some((i, fitted));
        }
    }
    let (best_index, best_pipeline) = best.expect("at least one trial");
    TuningResult {
        trials,
        best_index,
        best_pipeline,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operator::{Estimator, Transformer};
    use crate::profiler::ProfileOptions;
    use keystone_dataflow::collection::DistCollection;

    /// Scales by a tunable factor, then mean-centers (estimator): the best
    /// factor is the one matching the validation target.
    struct Scale(f64);
    impl Transformer<f64, f64> for Scale {
        fn apply(&self, x: &f64) -> f64 {
            x * self.0
        }
    }

    struct MeanCenter;
    impl Estimator<f64, f64> for MeanCenter {
        fn fit(
            &self,
            data: &DistCollection<f64>,
            _ctx: &ExecContext,
        ) -> Box<dyn Transformer<f64, f64>> {
            let n = data.count().max(1) as f64;
            let mu = data.aggregate(0.0, |a, x| a + x, |a, b| a + b) / n;
            struct Shift(f64);
            impl Transformer<f64, f64> for Shift {
                fn apply(&self, x: &f64) -> f64 {
                    x - self.0
                }
            }
            Box::new(Shift(mu))
        }
    }

    fn opts() -> PipelineOptions {
        PipelineOptions {
            profile: ProfileOptions {
                sizes: vec![4, 8],
                ..Default::default()
            },
            ..Default::default()
        }
    }

    #[test]
    fn grid_search_finds_planted_scale() {
        let train = DistCollection::from_vec(vec![1.0, 2.0, 3.0, 4.0], 2);
        // Validation: want outputs to approximate 3x the centered input.
        let val_in = DistCollection::from_vec(vec![0.0, 5.0], 1);
        let val_target = [-7.5, 7.5]; // 3 * (x - 2.5)
        let ctx = ExecContext::default_cluster();
        let result = grid_search(
            &[1.0, 2.0, 3.0, 4.0],
            &ctx,
            &opts(),
            |&scale| {
                Pipeline::<f64, f64>::input()
                    .and_then(Scale(scale))
                    .and_then_est(MeanCenter, &train)
            },
            |fitted, ctx| {
                let out = fitted.apply(&val_in, ctx).collect();
                // Negative squared error as the score.
                -out.iter()
                    .zip(&val_target)
                    .map(|(a, b)| (a - b) * (a - b))
                    .sum::<f64>()
            },
        );
        assert_eq!(result.trials.len(), 4);
        assert_eq!(result.best_config(), 3.0);
        assert!(result.best_score() > -1e-12);
        // Best pipeline reproduces the target.
        let ctx2 = ExecContext::default_cluster();
        let out = result.best_pipeline.apply(&val_in, &ctx2).collect();
        assert!((out[0] + 7.5).abs() < 1e-9);
    }

    #[test]
    fn trials_record_time_and_order() {
        let train = DistCollection::from_vec(vec![1.0, 2.0], 1);
        let ctx = ExecContext::default_cluster();
        let result = grid_search(
            &[1.0, 2.0],
            &ctx,
            &opts(),
            |&s| Pipeline::<f64, f64>::input().and_then(Scale(s)),
            |_, _| 0.5,
        );
        assert_eq!(result.trials.len(), 2);
        assert!(result.trials.iter().all(|t| t.fit_secs >= 0.0));
        // Ties keep the first trial.
        assert_eq!(result.best_index, 0);
        let _ = train;
    }

    #[test]
    #[should_panic(expected = "at least one config")]
    fn empty_grid_panics() {
        let ctx = ExecContext::default_cluster();
        let _ = grid_search(
            &[] as &[f64],
            &ctx,
            &opts(),
            |&s| Pipeline::<f64, f64>::input().and_then(Scale(s)),
            |_, _| 0.0,
        );
    }
}
