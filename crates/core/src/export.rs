//! Full-run Chrome-trace export: worker lanes + simulated cluster +
//! serving events, from one [`ExecContext`].
//!
//! The partition-level exporter
//! ([`keystone_dataflow::metrics::chrome_trace_json`]) renders measured
//! `TaskSpan` lanes (`pid 1`) and the `SimClock` ledger (`pid 2`), which
//! already covers the `serve:`/`recovery:`/`speculative:` sim stages the
//! executor and serving layer charge. What it cannot see are the
//! node-level tracer events that live in this crate —
//! [`ServeBatch`](crate::trace::TraceEvent::ServeBatch) waves and
//! [`ServeReject`](crate::trace::TraceEvent::ServeReject) admissions —
//! because `keystone-core` depends on `keystone-dataflow`, not the other
//! way round. This module closes the gap: it lowers those tracer events
//! into [`ChromeExtra`] carriers and hands them to
//! [`chrome_trace_json_with`], which renders them as a third process
//! (`pid 3`, "serving (virtual)") on virtual-time lanes.

use keystone_dataflow::metrics::{chrome_trace_json_with, ChromeArg, ChromeExtra};

use crate::context::ExecContext;
use crate::trace::TraceEvent;

/// Lowers the context's serving-layer trace events into [`ChromeExtra`]
/// events: one complete event per dispatched wave on lane
/// `serve:batches` (spanning linger + execute from the wave's open to its
/// completion) and one instant per admission reject on lane
/// `serve:rejects`.
pub fn serving_extras(ctx: &ExecContext) -> Vec<ChromeExtra> {
    let mut extras = Vec::new();
    for traced in ctx.tracer.events() {
        match traced.event {
            TraceEvent::ServeBatch {
                batch,
                size,
                dispatch_secs,
                linger_secs,
                execute_secs,
            } => {
                let open_secs = (dispatch_secs - linger_secs).max(0.0);
                extras.push(ChromeExtra {
                    lane: "serve:batches".to_string(),
                    name: format!("batch-{batch}"),
                    start_us: (open_secs * 1e6).max(0.0) as u64,
                    dur_us: ((linger_secs + execute_secs) * 1e6).max(0.0) as u64,
                    args: vec![
                        ("size".to_string(), ChromeArg::Num(size as f64)),
                        ("linger_secs".to_string(), ChromeArg::Num(linger_secs)),
                        ("execute_secs".to_string(), ChromeArg::Num(execute_secs)),
                    ],
                });
            }
            TraceEvent::ServeReject {
                request,
                at_secs,
                queue_depth,
            } => {
                extras.push(ChromeExtra {
                    lane: "serve:rejects".to_string(),
                    name: format!("reject-{request}"),
                    start_us: (at_secs * 1e6).max(0.0) as u64,
                    dur_us: 0,
                    args: vec![
                        ("request".to_string(), ChromeArg::Num(request as f64)),
                        (
                            "queue_depth".to_string(),
                            ChromeArg::Num(queue_depth as f64),
                        ),
                    ],
                });
            }
            _ => {}
        }
    }
    extras
}

/// Serializes the context's whole run — measured `TaskSpan` lanes, the
/// simulated-cluster ledger (fit, recovery, speculation, and serving
/// stages), and the serving layer's batch/reject events — as one
/// Perfetto-loadable Chrome trace-event JSON array.
pub fn chrome_trace_json(ctx: &ExecContext) -> String {
    chrome_trace_json_with(&ctx.metrics, &ctx.sim, &serving_extras(ctx))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serve_events_lower_to_virtual_lanes() {
        let ctx = ExecContext::default_cluster();
        ctx.tracer.record(TraceEvent::ServeBatch {
            batch: 0,
            size: 3,
            dispatch_secs: 0.5,
            linger_secs: 0.2,
            execute_secs: 1.0,
        });
        ctx.tracer.record(TraceEvent::ServeReject {
            request: 7,
            at_secs: 0.25,
            queue_depth: 4,
        });
        let extras = serving_extras(&ctx);
        assert_eq!(extras.len(), 2);
        assert_eq!(extras[0].lane, "serve:batches");
        assert_eq!(extras[0].start_us, 300_000); // open = dispatch - linger
        assert_eq!(extras[0].dur_us, 1_200_000); // linger + execute
        assert_eq!(extras[1].lane, "serve:rejects");
        assert_eq!(extras[1].start_us, 250_000);
        assert_eq!(extras[1].dur_us, 0);

        let json = chrome_trace_json(&ctx);
        assert!(json.contains("serving (virtual)"));
        assert!(json.contains("batch-0"));
        assert!(json.contains("reject-7"));
    }
}
