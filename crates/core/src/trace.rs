//! Pipeline observability: the structured event sink every optimizer and
//! executor decision flows through.
//!
//! The paper validates its optimizer by comparing *predicted* quantities
//! (per-node runtimes and memory from execution subsampling, §4.1; cache
//! picks from Algorithm 1, §4.3) against *observed* execution. This module
//! records both sides as structured [`TraceEvent`]s on a shared [`Tracer`]:
//!
//! * node execution start/end with wall-clock and simulated-clock durations
//!   (from the [`Executor`](crate::executor::Executor)),
//! * cache hits/misses/evictions/admissions/rejections per node (via a
//!   [`CacheObserver`] adapter on the
//!   [`CacheManager`](keystone_dataflow::cache::CacheManager)),
//! * operator-selection decisions including the losing candidates' cost
//!   profiles (from the profiler, §4.1),
//! * CSE merges (§4.2) and materialization picks with their estimated
//!   savings (§4.3).
//!
//! The tracer lives on [`ExecContext`](crate::context::ExecContext) and is
//! cheaply cloneable (clones share the ledger), so operators deep in a
//! pipeline append to the same event stream the driver reads. Joining the
//! stream against a [`PipelineProfile`](crate::profiler::PipelineProfile)
//! yields a [`PipelineReport`](crate::report::PipelineReport) of
//! predicted-vs-actual metrics.
//!
//! One layer *below* these node-level events sits the partition-level
//! [`MetricsRegistry`](keystone_dataflow::metrics::MetricsRegistry), also on
//! the context: the executor opens a task scope per node, so every
//! partition-parallel `DistCollection` operation emits a
//! [`TaskSpan`](keystone_dataflow::metrics::TaskSpan) with worker-lane
//! attribution. The report joins those spans back onto node rows (skew
//! ratio, worker utilization), explaining *why* a node-level prediction
//! missed — a straggler partition versus a uniform mis-estimate.

use std::collections::HashMap;
use std::sync::Arc;

use keystone_dataflow::cache::CacheObserver;
use keystone_dataflow::cost::CostProfile;
use parking_lot::Mutex;

use crate::graph::NodeId;

/// One candidate considered during cost-based operator selection.
#[derive(Debug, Clone)]
pub struct OperatorCandidate {
    /// Physical operator name.
    pub name: String,
    /// Its cost profile over the full-scale input statistics.
    pub cost: CostProfile,
    /// The scalar the optimizer minimized: estimated seconds on the target
    /// cluster.
    pub est_secs: f64,
}

/// A structured record of one runtime or optimizer decision.
#[derive(Debug, Clone)]
pub enum TraceEvent {
    /// A node's own work began (inputs already materialized for transforms
    /// and model application; estimators pull inputs lazily inside).
    NodeStart {
        /// Node id in the executing graph.
        node: NodeId,
        /// Node label.
        label: String,
    },
    /// A node's own work finished.
    NodeEnd {
        /// Node id in the executing graph.
        node: NodeId,
        /// Node label.
        label: String,
        /// Input records consumed by this execution.
        records: usize,
        /// Output bytes produced (0 for models).
        out_bytes: u64,
        /// Wall-clock seconds of the node's own work.
        wall_secs: f64,
        /// Simulated cluster seconds charged during the node's work.
        sim_secs: f64,
    },
    /// Cache lookup found the node's output resident.
    CacheHit {
        /// Node id (cache key).
        node: NodeId,
    },
    /// Cache lookup missed.
    CacheMiss {
        /// Node id (cache key).
        node: NodeId,
    },
    /// The node's output was admitted to the cache.
    CacheAdmit {
        /// Node id (cache key).
        node: NodeId,
        /// Admitted size in bytes.
        bytes: u64,
    },
    /// The node's output was evicted to make room.
    CacheEvict {
        /// Node id (cache key).
        node: NodeId,
    },
    /// An offer of the node's output was refused by policy or size.
    CacheReject {
        /// Node id (cache key).
        node: NodeId,
    },
    /// Cost-based operator selection resolved a logical operator (§4.1).
    OperatorChoice {
        /// Node id of the rewritten operator.
        node: NodeId,
        /// Logical node label before rewriting.
        label: String,
        /// Winning physical operator name.
        chosen: String,
        /// Every candidate considered, winners and losers, with costs.
        candidates: Vec<OperatorCandidate>,
    },
    /// CSE merged a structurally duplicate node into a canonical one (§4.2).
    CseMerge {
        /// Canonical node id (post-CSE graph).
        kept: NodeId,
        /// Canonical node's label.
        label: String,
        /// Number of duplicate nodes folded into it.
        duplicates: usize,
    },
    /// Algorithm 1 pinned a node's output for materialization (§4.3).
    MaterializePick {
        /// Node id chosen for caching.
        node: NodeId,
        /// Node label.
        label: String,
        /// Estimated runtime saving of this pick, seconds.
        est_saving_secs: f64,
        /// Output size charged against the memory budget, bytes.
        size_bytes: u64,
    },
    /// A partition task absorbed one injected failure and was retried
    /// (attempt `attempt` failed; the retry's backoff is charged to the
    /// simulated clock).
    TaskRetry {
        /// Node whose work the failed task belonged to.
        node: NodeId,
        /// Partition index of the failed task.
        partition: usize,
        /// Zero-based index of the failed attempt.
        attempt: u32,
        /// Backoff charged before the retry, simulated seconds.
        backoff_secs: f64,
    },
    /// A straggler partition lost to its speculative copy: the copy's
    /// (estimated, median-speed) runtime replaces the straggler's on the
    /// simulated clock, and the original span is tagged `speculative`.
    SpeculativeWin {
        /// Node whose work straggled.
        node: NodeId,
        /// The straggler partition.
        partition: usize,
        /// The straggler's measured busy seconds.
        original_secs: f64,
        /// The winning copy's charged seconds (stage median).
        copy_secs: f64,
    },
    /// A cache entry was found lost (or was explicitly invalidated); the
    /// executor recomputes the node from its DAG ancestry.
    CacheLost {
        /// Node id (cache key).
        node: NodeId,
    },
    /// Whole-stage fusion collapsed a chain of per-record transformers into
    /// one `FusedMap` on the chain tail's node id. Emitted in ascending
    /// fused-node (topological) order, the same determinism discipline as
    /// [`CseMerge`](TraceEvent::CseMerge).
    FusionMerge {
        /// Node id the fused operator lives on (the chain tail).
        node: NodeId,
        /// The fused node's label (`Fused[a+b+c]`).
        label: String,
        /// Member labels in execution order.
        members: Vec<String>,
    },
    /// The serving layer closed one micro-batch and dispatched it as a
    /// single apply wave (`keystone-serve`). All durations are virtual
    /// (simulated-clock) seconds.
    ServeBatch {
        /// Zero-based batch sequence number.
        batch: u64,
        /// Requests in the wave.
        size: usize,
        /// When the wave dispatched, virtual seconds — with `linger_secs`
        /// this places the wave on a virtual timeline, so exporters can
        /// render serving lanes without consulting the batcher's schedule.
        dispatch_secs: f64,
        /// Seconds the batch lingered open waiting for more arrivals.
        linger_secs: f64,
        /// Seconds the wave's plan execution was charged.
        execute_secs: f64,
    },
    /// Admission control refused a request: the bounded serving queue was
    /// full at arrival.
    ServeReject {
        /// The rejected request's id.
        request: u64,
        /// The rejected request's arrival instant, virtual seconds.
        at_secs: f64,
        /// Queue depth observed at arrival (equals the configured bound).
        queue_depth: usize,
    },
    /// Adaptive re-optimization observed a node being requested more often
    /// than the cost model predicted and recalibrated the materialization
    /// problem from the executor's measured actuals (observed per-execution
    /// simulated seconds and output bytes replace the subsample
    /// extrapolations).
    Recalibrate {
        /// The node whose observed demand exceeded the prediction.
        node: NodeId,
        /// Node label.
        label: String,
        /// Requests observed so far this fit (including the triggering one).
        observed_requests: u64,
        /// Requests the pre-fit cost model predicted for the whole fit.
        predicted_requests: f64,
    },
    /// The adaptive re-planner applied a mid-fit plan revision at a wave
    /// boundary: materialization picks with no remaining demand are evicted,
    /// and picks the recalibrated greedy solution wants — and that fit the
    /// freed budget — are promoted. The decision itself is charged to the
    /// simulated clock under an `adapt:` stage.
    PlanRevision {
        /// One-based revision number within this fit.
        wave: u64,
        /// Node ids newly admitted to the materialization set.
        promoted: Vec<NodeId>,
        /// Node ids removed from the materialization set (zero remaining
        /// demand; their budget is reclaimed).
        evicted: Vec<NodeId>,
        /// Recalibrated-model runtime saving this revision predicts, seconds.
        predicted_saving_secs: f64,
    },
    /// Cross-pipeline CSE found a plan region shared by two or more tenants
    /// of a forest fit and merged it into one shared node
    /// (`keystone_core::optimizer::multi`). Emitted once per shared node in
    /// ascending node-id order, the same determinism discipline as
    /// [`CseMerge`](TraceEvent::CseMerge).
    CrossCseMerge {
        /// Node id in the merged forest graph.
        node: NodeId,
        /// Node label.
        label: String,
        /// How many tenants' outputs depend on this node.
        tenants: usize,
        /// Content-addressed structural signature
        /// ([`Graph::signatures`](crate::graph::Graph::signatures)) — stable
        /// under tenant permutation, unlike the node id.
        signature: u64,
    },
}

/// Aggregate recovery statistics derived from the event stream.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RecoveryStats {
    /// Failed attempts absorbed as retries.
    pub retries: u64,
    /// Straggler partitions beaten by a speculative copy.
    pub speculative_wins: u64,
    /// Cache entries lost and recomputed from lineage.
    pub cache_losses: u64,
    /// Simulated seconds spent on recovery: retry backoff plus the
    /// speculative copies' charged runtimes.
    pub recovery_secs: f64,
}

impl RecoveryStats {
    fn absorb(&mut self, event: &TraceEvent) {
        match event {
            TraceEvent::TaskRetry { backoff_secs, .. } => {
                self.retries += 1;
                self.recovery_secs += backoff_secs;
            }
            TraceEvent::SpeculativeWin { copy_secs, .. } => {
                self.speculative_wins += 1;
                self.recovery_secs += copy_secs;
            }
            TraceEvent::CacheLost { .. } => self.cache_losses += 1,
            _ => {}
        }
    }
}

/// A [`TraceEvent`] plus its global sequence number (0-based, in the order
/// events were recorded).
#[derive(Debug, Clone)]
pub struct TracedEvent {
    /// Position in the event stream.
    pub seq: u64,
    /// The event.
    pub event: TraceEvent,
}

/// Per-node cache counters derived from the event stream.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheCounters {
    /// Lookups that found the node's output.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Admissions.
    pub admissions: u64,
    /// Evictions.
    pub evictions: u64,
    /// Rejected offers.
    pub rejections: u64,
}

/// Per-node execution actuals derived from the event stream.
#[derive(Debug, Clone, Copy, Default)]
pub struct NodeActuals {
    /// Number of completed executions.
    pub execs: u64,
    /// Total wall-clock seconds across executions.
    pub wall_secs: f64,
    /// Total simulated seconds across executions.
    pub sim_secs: f64,
    /// Input records of the last execution.
    pub records: usize,
    /// Output bytes of the last execution.
    pub out_bytes: u64,
}

/// Shared, append-only event sink. Cloning shares the ledger.
#[derive(Debug, Clone, Default)]
pub struct Tracer {
    events: Arc<Mutex<Vec<TraceEvent>>>,
}

impl Tracer {
    /// Fresh, empty tracer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends an event.
    pub fn record(&self, event: TraceEvent) {
        self.events.lock().push(event);
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.lock().len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.events.lock().is_empty()
    }

    /// Clears the ledger.
    pub fn clear(&self) {
        self.events.lock().clear();
    }

    /// Snapshot of all events with sequence numbers.
    pub fn events(&self) -> Vec<TracedEvent> {
        self.events
            .lock()
            .iter()
            .cloned()
            .enumerate()
            .map(|(i, event)| TracedEvent {
                seq: i as u64,
                event,
            })
            .collect()
    }

    /// Records a node's work beginning.
    pub fn node_start(&self, node: NodeId, label: &str) {
        self.record(TraceEvent::NodeStart {
            node,
            label: label.to_string(),
        });
    }

    /// Records a node's work finishing.
    pub fn node_end(
        &self,
        node: NodeId,
        label: &str,
        records: usize,
        out_bytes: u64,
        wall_secs: f64,
        sim_secs: f64,
    ) {
        self.record(TraceEvent::NodeEnd {
            node,
            label: label.to_string(),
            records,
            out_bytes,
            wall_secs,
            sim_secs,
        });
    }

    /// Per-node cache counters aggregated from the stream.
    pub fn cache_counters(&self) -> HashMap<NodeId, CacheCounters> {
        let mut out: HashMap<NodeId, CacheCounters> = HashMap::new();
        for e in self.events.lock().iter() {
            match e {
                TraceEvent::CacheHit { node } => out.entry(*node).or_default().hits += 1,
                TraceEvent::CacheMiss { node } => out.entry(*node).or_default().misses += 1,
                TraceEvent::CacheAdmit { node, .. } => {
                    out.entry(*node).or_default().admissions += 1
                }
                TraceEvent::CacheEvict { node } => out.entry(*node).or_default().evictions += 1,
                TraceEvent::CacheReject { node } => out.entry(*node).or_default().rejections += 1,
                _ => {}
            }
        }
        out
    }

    /// Per-node execution actuals aggregated from `NodeEnd` events.
    pub fn node_actuals(&self) -> HashMap<NodeId, NodeActuals> {
        let mut out: HashMap<NodeId, NodeActuals> = HashMap::new();
        for e in self.events.lock().iter() {
            if let TraceEvent::NodeEnd {
                node,
                records,
                out_bytes,
                wall_secs,
                sim_secs,
                ..
            } = e
            {
                let a = out.entry(*node).or_default();
                a.execs += 1;
                a.wall_secs += wall_secs;
                a.sim_secs += sim_secs;
                a.records = *records;
                a.out_bytes = *out_bytes;
            }
        }
        out
    }

    /// Pipeline-wide recovery statistics aggregated from the stream.
    pub fn recovery_stats(&self) -> RecoveryStats {
        let mut out = RecoveryStats::default();
        for e in self.events.lock().iter() {
            out.absorb(e);
        }
        out
    }

    /// Per-node recovery statistics aggregated from the stream.
    pub fn recovery_by_node(&self) -> HashMap<NodeId, RecoveryStats> {
        let mut out: HashMap<NodeId, RecoveryStats> = HashMap::new();
        for e in self.events.lock().iter() {
            let node = match e {
                TraceEvent::TaskRetry { node, .. }
                | TraceEvent::SpeculativeWin { node, .. }
                | TraceEvent::CacheLost { node } => *node,
                _ => continue,
            };
            out.entry(node).or_default().absorb(e);
        }
        out
    }

    /// Labels of `NodeEnd` events in completion order (handy for asserting
    /// execution order in tests).
    pub fn completion_order(&self) -> Vec<String> {
        self.events
            .lock()
            .iter()
            .filter_map(|e| match e {
                TraceEvent::NodeEnd { label, .. } => Some(label.clone()),
                _ => None,
            })
            .collect()
    }
}

/// Adapter: forwards [`CacheManager`](keystone_dataflow::cache::CacheManager)
/// callbacks into a [`Tracer`]. Cache keys are node ids by the executor's
/// convention (`node as u64`).
pub struct TraceCacheObserver(pub Tracer);

impl CacheObserver for TraceCacheObserver {
    fn on_hit(&self, key: u64) {
        self.0.record(TraceEvent::CacheHit {
            node: key as NodeId,
        });
    }
    fn on_miss(&self, key: u64) {
        self.0.record(TraceEvent::CacheMiss {
            node: key as NodeId,
        });
    }
    fn on_admit(&self, key: u64, size: u64) {
        self.0.record(TraceEvent::CacheAdmit {
            node: key as NodeId,
            bytes: size,
        });
    }
    fn on_evict(&self, key: u64) {
        self.0.record(TraceEvent::CacheEvict {
            node: key as NodeId,
        });
    }
    fn on_reject(&self, key: u64) {
        self.0.record(TraceEvent::CacheReject {
            node: key as NodeId,
        });
    }
    fn on_invalidate(&self, key: u64) {
        self.0.record(TraceEvent::CacheLost {
            node: key as NodeId,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequence_numbers_follow_recording_order() {
        let t = Tracer::new();
        t.node_start(0, "a");
        t.node_end(0, "a", 10, 80, 0.5, 0.1);
        t.node_start(1, "b");
        t.node_end(1, "b", 10, 80, 0.25, 0.05);
        let evs = t.events();
        assert_eq!(evs.len(), 4);
        for (i, e) in evs.iter().enumerate() {
            assert_eq!(e.seq, i as u64);
        }
        assert_eq!(t.completion_order(), vec!["a", "b"]);
    }

    #[test]
    fn clones_share_the_ledger() {
        let t = Tracer::new();
        let clone = t.clone();
        clone.record(TraceEvent::CacheMiss { node: 3 });
        assert_eq!(t.len(), 1);
        t.clear();
        assert!(clone.is_empty());
    }

    #[test]
    fn cache_counters_aggregate_per_node() {
        let t = Tracer::new();
        let obs = TraceCacheObserver(t.clone());
        obs.on_miss(1);
        obs.on_admit(1, 64);
        obs.on_hit(1);
        obs.on_hit(1);
        obs.on_miss(2);
        obs.on_reject(2);
        obs.on_evict(1);
        let counters = t.cache_counters();
        assert_eq!(
            counters[&1],
            CacheCounters {
                hits: 2,
                misses: 1,
                admissions: 1,
                evictions: 1,
                rejections: 0,
            }
        );
        assert_eq!(counters[&2].misses, 1);
        assert_eq!(counters[&2].rejections, 1);
    }

    #[test]
    fn recovery_stats_aggregate_globally_and_per_node() {
        let t = Tracer::new();
        t.record(TraceEvent::TaskRetry {
            node: 1,
            partition: 0,
            attempt: 0,
            backoff_secs: 1.0,
        });
        t.record(TraceEvent::TaskRetry {
            node: 1,
            partition: 0,
            attempt: 1,
            backoff_secs: 2.0,
        });
        t.record(TraceEvent::SpeculativeWin {
            node: 2,
            partition: 3,
            original_secs: 9.0,
            copy_secs: 1.5,
        });
        t.record(TraceEvent::CacheLost { node: 1 });
        let total = t.recovery_stats();
        assert_eq!(total.retries, 2);
        assert_eq!(total.speculative_wins, 1);
        assert_eq!(total.cache_losses, 1);
        assert!((total.recovery_secs - 4.5).abs() < 1e-12);
        let per = t.recovery_by_node();
        assert_eq!(per[&1].retries, 2);
        assert_eq!(per[&1].cache_losses, 1);
        assert!((per[&1].recovery_secs - 3.0).abs() < 1e-12);
        assert_eq!(per[&2].speculative_wins, 1);
        assert!((per[&2].recovery_secs - 1.5).abs() < 1e-12);
    }

    #[test]
    fn node_actuals_sum_over_executions() {
        let t = Tracer::new();
        t.node_end(5, "x", 100, 800, 1.0, 0.5);
        t.node_end(5, "x", 100, 800, 3.0, 1.5);
        let a = t.node_actuals()[&5];
        assert_eq!(a.execs, 2);
        assert!((a.wall_secs - 4.0).abs() < 1e-12);
        assert!((a.sim_secs - 2.0).abs() < 1e-12);
        assert_eq!(a.records, 100);
        assert_eq!(a.out_bytes, 800);
    }
}
