//! The pipeline operator DAG (Fig. 1 step 2 / Fig. 5).
//!
//! Nodes are sources (either the apply-time runtime input or concrete bound
//! training data), transformers, estimators, and model applications. The
//! graph is append-only during construction; the optimizer produces rewritten
//! copies (CSE-merged, physical operators selected).

use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use crate::operator::{AnyData, ErasedEstimator, ErasedTransformer};

/// Index of a node in its graph.
pub type NodeId = usize;

/// What a node computes.
#[derive(Clone)]
pub enum NodeKind {
    /// Placeholder for the dataset the fitted pipeline is applied to.
    RuntimeInput,
    /// Concrete data bound at construction time (training data, labels).
    DataSource(AnyData),
    /// A transformer; may take several data inputs (gather).
    Transform(Arc<dyn ErasedTransformer>),
    /// An estimator; produces a model. `inputs[0]` is training data,
    /// `inputs[1]` (if present) labels.
    Estimate(Arc<dyn ErasedEstimator>),
    /// Applies a model: `inputs = [model_node, data_node]`.
    ModelApply,
}

impl NodeKind {
    /// Small discriminant for structural signatures.
    pub(crate) fn tag(&self) -> u8 {
        match self {
            NodeKind::RuntimeInput => 0,
            NodeKind::DataSource(_) => 1,
            NodeKind::Transform(_) => 2,
            NodeKind::Estimate(_) => 3,
            NodeKind::ModelApply => 4,
        }
    }

    /// Identity of the operator/data for structural signatures: `Arc`
    /// pointer identity, which is exactly what prefix-cloning preserves.
    fn identity(&self) -> usize {
        match self {
            NodeKind::RuntimeInput => 1,
            NodeKind::DataSource(d) => d.ptr_id(),
            NodeKind::Transform(op) => Arc::as_ptr(op) as *const () as usize,
            NodeKind::Estimate(op) => Arc::as_ptr(op) as *const () as usize,
            NodeKind::ModelApply => 2,
        }
    }
}

/// One DAG node.
#[derive(Clone)]
pub struct Node {
    /// The computation.
    pub kind: NodeKind,
    /// Input node ids (order matters).
    pub inputs: Vec<NodeId>,
    /// Human-readable label for plots and Graphviz dumps.
    pub label: String,
}

/// The pipeline DAG.
#[derive(Clone, Default)]
pub struct Graph {
    /// Nodes in insertion order; inputs always precede users.
    pub nodes: Vec<Node>,
}

impl Graph {
    /// Empty graph.
    pub fn new() -> Self {
        Graph::default()
    }

    /// Appends a node.
    pub fn add(&mut self, kind: NodeKind, inputs: Vec<NodeId>, label: impl Into<String>) -> NodeId {
        for &i in &inputs {
            assert!(i < self.nodes.len(), "input {} does not exist", i);
        }
        self.nodes.push(Node {
            kind,
            inputs,
            label: label.into(),
        });
        self.nodes.len() - 1
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Successor lists (who consumes each node).
    pub fn successors(&self) -> Vec<Vec<NodeId>> {
        let mut succ = vec![Vec::new(); self.nodes.len()];
        for (id, node) in self.nodes.iter().enumerate() {
            for &input in &node.inputs {
                succ[input].push(id);
            }
        }
        succ
    }

    /// All ancestors of `roots` (inclusive).
    pub fn ancestors(&self, roots: &[NodeId]) -> HashSet<NodeId> {
        let mut seen: HashSet<NodeId> = HashSet::new();
        let mut stack: Vec<NodeId> = roots.to_vec();
        while let Some(id) = stack.pop() {
            if seen.insert(id) {
                stack.extend(self.nodes[id].inputs.iter().copied());
            }
        }
        seen
    }

    /// Nodes that (transitively) depend on `source`, including it.
    pub fn dependents(&self, source: NodeId) -> HashSet<NodeId> {
        let succ = self.successors();
        let mut seen: HashSet<NodeId> = HashSet::new();
        let mut stack = vec![source];
        while let Some(id) = stack.pop() {
            if seen.insert(id) {
                stack.extend(succ[id].iter().copied());
            }
        }
        seen
    }

    /// Topological order restricted to the ancestors of `roots`
    /// (dependencies first). Because nodes are append-only, insertion order
    /// is already topological; we just filter.
    pub fn topo_ancestors(&self, roots: &[NodeId]) -> Vec<NodeId> {
        let anc = self.ancestors(roots);
        (0..self.nodes.len())
            .filter(|id| anc.contains(id))
            .collect()
    }

    /// The id of the unique `RuntimeInput` node, if present.
    pub fn runtime_input(&self) -> Option<NodeId> {
        self.nodes
            .iter()
            .position(|n| matches!(n.kind, NodeKind::RuntimeInput))
    }

    /// All estimator node ids.
    pub fn estimators(&self) -> Vec<NodeId> {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| matches!(n.kind, NodeKind::Estimate(_)))
            .map(|(i, _)| i)
            .collect()
    }

    /// Clones the subgraph feeding `output`, substituting every node that
    /// depends on the runtime input; the runtime input itself maps to
    /// `new_root`. Nodes independent of the runtime input (data sources,
    /// estimators trained on them) are **shared**, not cloned — sharing is
    /// what lets common-sub-expression elimination find the duplicates that
    /// matter.
    ///
    /// Returns the id corresponding to `output` in the rewritten graph.
    pub fn clone_rerooted(&mut self, output: NodeId, new_root: NodeId) -> NodeId {
        let runtime = match self.runtime_input() {
            Some(r) => r,
            None => return output,
        };
        let depends = self.dependents(runtime);
        if !depends.contains(&output) {
            return output;
        }
        let mut memo: HashMap<NodeId, NodeId> = HashMap::new();
        memo.insert(runtime, new_root);
        // Process ancestors of `output` in topological order so inputs are
        // mapped before users.
        for id in self.topo_ancestors(&[output]) {
            if !depends.contains(&id) || memo.contains_key(&id) {
                continue;
            }
            let node = self.nodes[id].clone();
            let new_inputs: Vec<NodeId> = node
                .inputs
                .iter()
                .map(|i| *memo.get(i).unwrap_or(i))
                .collect();
            let new_id = self.add(node.kind, new_inputs, node.label);
            memo.insert(id, new_id);
        }
        memo[&output]
    }

    /// Structural signature per node: equal signatures mean equal
    /// computations (same operator identity over the same inputs).
    pub fn signatures(&self) -> Vec<u64> {
        let mut sig = vec![0u64; self.nodes.len()];
        for (id, node) in self.nodes.iter().enumerate() {
            let mut h = 0xcbf29ce484222325u64; // FNV offset basis
            let mut mix = |v: u64| {
                h ^= v;
                h = h.wrapping_mul(0x100000001b3);
            };
            mix(node.kind.tag() as u64);
            mix(node.kind.identity() as u64);
            for &input in &node.inputs {
                mix(sig[input]);
            }
            sig[id] = h;
        }
        sig
    }

    /// Deterministic one-line-per-node text summary: node id, kind, label,
    /// and input ids, in insertion (topological) order. Two structurally
    /// identical graphs always produce identical summaries, so the
    /// differential-testing harness embeds this in failure messages and
    /// compares it across runs — unlike `Debug` output it never leaks
    /// addresses or hash-map iteration order.
    pub fn summary(&self) -> String {
        let mut out = String::with_capacity(self.nodes.len() * 32);
        for (id, node) in self.nodes.iter().enumerate() {
            let kind = match node.kind {
                NodeKind::RuntimeInput => "input",
                NodeKind::DataSource(_) => "source",
                NodeKind::Transform(_) => "transform",
                NodeKind::Estimate(_) => "estimate",
                NodeKind::ModelApply => "apply",
            };
            out.push_str(&format!("{id}: {kind} {}", node.label));
            if !node.inputs.is_empty() {
                out.push_str(" <- ");
                for (i, input) in node.inputs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(&input.to_string());
                }
            }
            out.push('\n');
        }
        out
    }

    /// Graphviz rendering; nodes in `highlight` are filled (used to show the
    /// cache set chosen by the materialization optimizer, Fig. 11).
    pub fn to_dot(&self, highlight: &HashSet<NodeId>) -> String {
        let mut out = String::from("digraph pipeline {\n  rankdir=LR;\n");
        for (id, node) in self.nodes.iter().enumerate() {
            let shape = match node.kind {
                NodeKind::RuntimeInput | NodeKind::DataSource(_) => "ellipse",
                NodeKind::Estimate(_) => "box3d",
                _ => "box",
            };
            let fill = if highlight.contains(&id) {
                ", style=filled, fillcolor=lightblue"
            } else {
                ""
            };
            out.push_str(&format!(
                "  n{} [label=\"{}\", shape={}{}];\n",
                id, node.label, shape, fill
            ));
        }
        for (id, node) in self.nodes.iter().enumerate() {
            for &input in &node.inputs {
                out.push_str(&format!("  n{} -> n{};\n", input, id));
            }
        }
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::ExecContext;
    use crate::operator::{Transformer, TypedTransformer};
    use keystone_dataflow::collection::DistCollection;

    struct AddOne;
    impl Transformer<f64, f64> for AddOne {
        fn apply(&self, x: &f64) -> f64 {
            x + 1.0
        }
    }

    fn transform_node() -> NodeKind {
        NodeKind::Transform(Arc::new(TypedTransformer::new(AddOne)))
    }

    fn data_node() -> NodeKind {
        NodeKind::DataSource(AnyData::wrap(DistCollection::from_vec(vec![1.0f64], 1)))
    }

    #[test]
    fn add_and_topo() {
        let mut g = Graph::new();
        let input = g.add(NodeKind::RuntimeInput, vec![], "input");
        let t1 = g.add(transform_node(), vec![input], "t1");
        let t2 = g.add(transform_node(), vec![t1], "t2");
        assert_eq!(g.len(), 3);
        assert_eq!(g.topo_ancestors(&[t2]), vec![input, t1, t2]);
        assert_eq!(g.runtime_input(), Some(input));
    }

    #[test]
    #[should_panic(expected = "does not exist")]
    fn add_rejects_forward_references() {
        let mut g = Graph::new();
        g.add(transform_node(), vec![5], "bad");
    }

    #[test]
    fn successors_and_dependents() {
        let mut g = Graph::new();
        let input = g.add(NodeKind::RuntimeInput, vec![], "input");
        let a = g.add(transform_node(), vec![input], "a");
        let b = g.add(transform_node(), vec![input], "b");
        let c = g.add(transform_node(), vec![a], "c");
        let succ = g.successors();
        assert_eq!(succ[input], vec![a, b]);
        let deps = g.dependents(a);
        assert!(deps.contains(&c) && deps.contains(&a) && !deps.contains(&b));
    }

    #[test]
    fn clone_rerooted_shares_independent_nodes() {
        let mut g = Graph::new();
        let input = g.add(NodeKind::RuntimeInput, vec![], "input");
        let src = g.add(data_node(), vec![], "train");
        let t1 = g.add(transform_node(), vec![input], "t1");
        let t2 = g.add(transform_node(), vec![t1], "t2");
        let before = g.len();
        let cloned = g.clone_rerooted(t2, src);
        // Two nodes cloned (t1, t2); src shared.
        assert_eq!(g.len(), before + 2);
        assert_ne!(cloned, t2);
        // Cloned t1 must take src as input.
        let cloned_t1 = g.nodes[cloned].inputs[0];
        assert_eq!(g.nodes[cloned_t1].inputs, vec![src]);
        // Operator Arc is shared between original and clone.
        let orig_ptr = g.nodes[t2].kind.identity();
        let clone_ptr = g.nodes[cloned].kind.identity();
        assert_eq!(orig_ptr, clone_ptr);
    }

    #[test]
    fn clone_rerooted_of_independent_output_is_noop() {
        let mut g = Graph::new();
        let _input = g.add(NodeKind::RuntimeInput, vec![], "input");
        let src = g.add(data_node(), vec![], "train");
        let t = g.add(transform_node(), vec![src], "t");
        let before = g.len();
        assert_eq!(g.clone_rerooted(t, src), t);
        assert_eq!(g.len(), before);
    }

    #[test]
    fn signatures_detect_structural_equality() {
        let mut g = Graph::new();
        let input = g.add(NodeKind::RuntimeInput, vec![], "input");
        let op: Arc<dyn ErasedTransformer> = Arc::new(TypedTransformer::new(AddOne));
        let a = g.add(NodeKind::Transform(op.clone()), vec![input], "a");
        let b = g.add(NodeKind::Transform(op.clone()), vec![input], "b");
        let c = g.add(NodeKind::Transform(op), vec![a], "c");
        let sig = g.signatures();
        assert_eq!(sig[a], sig[b], "same op over same input must collide");
        assert_ne!(sig[a], sig[c], "different input must differ");
    }

    #[test]
    fn signatures_distinguish_different_ops() {
        let mut g = Graph::new();
        let input = g.add(NodeKind::RuntimeInput, vec![], "input");
        let a = g.add(transform_node(), vec![input], "a"); // distinct Arc
        let b = g.add(transform_node(), vec![input], "b"); // distinct Arc
        let sig = g.signatures();
        assert_ne!(sig[a], sig[b]);
    }

    #[test]
    fn summary_is_deterministic_and_structural() {
        let build = || {
            let mut g = Graph::new();
            let input = g.add(NodeKind::RuntimeInput, vec![], "input");
            let a = g.add(transform_node(), vec![input], "AddOne");
            let b = g.add(transform_node(), vec![input], "AddOne");
            g.add(NodeKind::ModelApply, vec![a, b], "Model");
            g
        };
        let s1 = build().summary();
        let s2 = build().summary();
        // Operator Arcs differ between the two builds, but the summary is
        // purely structural, so it must match byte for byte.
        assert_eq!(s1, s2);
        assert_eq!(
            s1,
            "0: input input\n1: transform AddOne <- 0\n2: transform AddOne <- 0\n3: apply Model <- 1,2\n"
        );
    }

    #[test]
    fn dot_rendering_mentions_nodes() {
        let mut g = Graph::new();
        let input = g.add(NodeKind::RuntimeInput, vec![], "input");
        let t = g.add(transform_node(), vec![input], "AddOne");
        let mut hl = HashSet::new();
        hl.insert(t);
        let dot = g.to_dot(&hl);
        assert!(dot.contains("AddOne"));
        assert!(dot.contains("lightblue"));
        assert!(dot.contains("n0 -> n1"));
    }

    #[test]
    fn erased_transform_executes_through_graph_node() {
        let mut g = Graph::new();
        let input = g.add(NodeKind::RuntimeInput, vec![], "input");
        let t = g.add(transform_node(), vec![input], "t");
        if let NodeKind::Transform(op) = &g.nodes[t].kind {
            let data = AnyData::wrap(DistCollection::from_vec(vec![1.0, 2.0], 1));
            let out = op.apply_any(&[data], &ExecContext::default_cluster());
            let v: DistCollection<f64> = out.downcast();
            assert_eq!(v.collect(), vec![2.0, 3.0]);
        } else {
            panic!("expected transform node");
        }
    }
}
