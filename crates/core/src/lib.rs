//! # keystone-core
//!
//! The KeystoneML pipeline framework: typed operator APIs, the pipeline DAG,
//! the cost-based operator-level optimizer, whole-pipeline optimizations
//! (common sub-expression elimination, execution subsampling, automatic
//! materialization), and the cache-aware depth-first executor.
//!
//! See `DESIGN.md` at the repository root for the system inventory and the
//! paper-section ↔ module map.

pub mod context;
pub mod executor;
pub mod export;
pub mod graph;
pub mod operator;
pub mod optimizer;
pub mod pipeline;
pub mod profiler;
pub mod record;
pub mod report;
pub mod trace;
pub mod tuning;

pub use context::ExecContext;
pub use operator::{
    AnyData, CostFn, Estimator, EstimatorOption, LabelEstimator, LabelEstimatorOption,
    OptimizableEstimator, OptimizableLabelEstimator, OptimizableTransformer, Transformer,
    TransformerOption,
};
pub use optimizer::{
    AdaptationReport, AdaptiveController, AdaptiveHints, CachingStrategy, FusedChain, FusedMap,
    FusionResult, OptLevel, PipelineOptions, RevisionRecord, ADAPT_DECISION_SECS,
};
pub use pipeline::{gather, ExecutablePlan, FitReport, FittedPipeline, Pipeline};
pub use record::{DataStats, Record};
pub use report::{NodeReport, PipelineReport};
pub use trace::{TraceEvent, TracedEvent, Tracer};
