//! The [`Record`] trait and per-collection data statistics.
//!
//! Every item type that flows through a pipeline implements `Record`, which
//! exposes the numeric properties the cost-based optimizer needs: byte
//! footprint, dimensionality, and sparsity (§3: "numerical data properties
//! such as sparsity and dimensionality are a necessary source of information
//! when selecting optimal execution plans").

use keystone_dataflow::collection::DistCollection;
use keystone_linalg::{DenseMatrix, SparseVector};

/// A pipeline record: something the optimizer can size and characterize.
///
/// `Clone` is required so collections of records can be sampled and
/// repartitioned; every practical record type (strings, vectors, images) is
/// cheaply cloneable or cloned only during profiling.
pub trait Record: Clone + Send + Sync + 'static {
    /// Approximate in-memory footprint in bytes.
    fn approx_bytes(&self) -> usize;

    /// Vector dimensionality, when the record is vector-like (0 otherwise).
    fn dims(&self) -> usize {
        0
    }

    /// Number of structural non-zeros (defaults to `dims`, i.e. dense).
    fn nnz(&self) -> usize {
        self.dims()
    }

    /// Whether this record type uses a sparse representation.
    fn sparse_hint() -> bool
    where
        Self: Sized,
    {
        false
    }
}

impl Record for f64 {
    fn approx_bytes(&self) -> usize {
        8
    }
    fn dims(&self) -> usize {
        1
    }
    fn nnz(&self) -> usize {
        usize::from(*self != 0.0)
    }
}

impl Record for usize {
    fn approx_bytes(&self) -> usize {
        8
    }
    fn dims(&self) -> usize {
        1
    }
}

impl Record for String {
    fn approx_bytes(&self) -> usize {
        self.len() + std::mem::size_of::<String>()
    }
}

/// Vectors of records aggregate their elements (so `Vec<f64>` is a dense
/// feature vector, `Vec<String>` a token list, `Vec<Image>` a window set).
impl<T: Record> Record for Vec<T> {
    fn approx_bytes(&self) -> usize {
        self.iter().map(Record::approx_bytes).sum::<usize>() + std::mem::size_of::<Self>()
    }
    fn dims(&self) -> usize {
        self.iter().map(Record::dims).sum()
    }
    fn nnz(&self) -> usize {
        self.iter().map(Record::nnz).sum()
    }
}

impl Record for SparseVector {
    fn approx_bytes(&self) -> usize {
        self.nbytes()
    }
    fn dims(&self) -> usize {
        self.dim()
    }
    fn nnz(&self) -> usize {
        SparseVector::nnz(self)
    }
    fn sparse_hint() -> bool {
        true
    }
}

impl Record for DenseMatrix {
    fn approx_bytes(&self) -> usize {
        self.nbytes()
    }
    fn dims(&self) -> usize {
        self.rows() * self.cols()
    }
}

/// Pairs (e.g. `(features, label)`) aggregate both sides.
impl<A: Record, B: Record> Record for (A, B) {
    fn approx_bytes(&self) -> usize {
        self.0.approx_bytes() + self.1.approx_bytes()
    }
    fn dims(&self) -> usize {
        self.0.dims()
    }
    fn nnz(&self) -> usize {
        self.0.nnz()
    }
}

/// Statistics of a dataset at one point in the pipeline — the `A_s` of the
/// paper's cost expression `c(f, A_s, R)`.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct DataStats {
    /// Number of records (at whatever scale the stats describe).
    pub count: usize,
    /// Mean bytes per record.
    pub bytes_per_record: f64,
    /// Mean vector dimensionality (0 when not vector-like).
    pub dims: f64,
    /// Mean structural non-zeros per record.
    pub nnz_per_record: f64,
    /// Whether the record representation is sparse.
    pub is_sparse: bool,
}

impl DataStats {
    /// An empty-data placeholder.
    pub fn empty() -> Self {
        DataStats {
            count: 0,
            bytes_per_record: 0.0,
            dims: 0.0,
            nnz_per_record: 0.0,
            is_sparse: false,
        }
    }

    /// Computes stats from a collection by examining up to `probe` records
    /// (count is exact; per-record means come from the probe).
    pub fn from_collection<T: Record>(c: &DistCollection<T>, probe: usize) -> Self {
        let count = c.count();
        if count == 0 {
            return DataStats {
                is_sparse: T::sparse_hint(),
                ..DataStats::empty()
            };
        }
        let probe = probe.max(1);
        let (mut bytes, mut dims, mut nnz, mut seen) = (0usize, 0usize, 0usize, 0usize);
        for r in c.iter().take(probe) {
            bytes += r.approx_bytes();
            dims += r.dims();
            nnz += r.nnz();
            seen += 1;
        }
        let inv = 1.0 / seen as f64;
        DataStats {
            count,
            bytes_per_record: bytes as f64 * inv,
            dims: dims as f64 * inv,
            nnz_per_record: nnz as f64 * inv,
            is_sparse: T::sparse_hint(),
        }
    }

    /// Same stats re-scaled to a different record count (used when stats
    /// were measured on a sample but describe the full dataset).
    pub fn at_scale(&self, count: usize) -> DataStats {
        DataStats { count, ..*self }
    }

    /// Total estimated bytes of the dataset.
    pub fn total_bytes(&self) -> f64 {
        self.count as f64 * self.bytes_per_record
    }

    /// Density in `[0, 1]` (1.0 when dims is unknown/zero).
    pub fn density(&self) -> f64 {
        if self.dims <= 0.0 {
            1.0
        } else {
            (self.nnz_per_record / self.dims).clamp(0.0, 1.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_impls_report_sizes() {
        assert_eq!(2.0f64.approx_bytes(), 8);
        assert_eq!(7usize.dims(), 1);
        let s = String::from("hello");
        assert!(s.approx_bytes() >= 5);
        let v = vec![1.0, 0.0, 3.0];
        assert_eq!(v.dims(), 3);
        assert_eq!(Record::nnz(&v), 2);
        assert!(!<Vec<f64> as Record>::sparse_hint());
        assert!(<SparseVector as Record>::sparse_hint());
    }

    #[test]
    fn sparse_vector_record() {
        let sv = SparseVector::from_pairs(100, vec![(3, 1.0), (50, 2.0)]);
        assert_eq!(sv.dims(), 100);
        assert_eq!(Record::nnz(&sv), 2);
    }

    #[test]
    fn pair_record_uses_first_component_dims() {
        let p = (vec![1.0, 2.0], 3.0f64);
        assert_eq!(p.dims(), 2);
        assert!(p.approx_bytes() > 16);
    }

    #[test]
    fn stats_from_collection() {
        let c = DistCollection::from_vec(
            (0..100)
                .map(|i| vec![i as f64, 0.0, 1.0])
                .collect::<Vec<_>>(),
            4,
        );
        let s = DataStats::from_collection(&c, 50);
        assert_eq!(s.count, 100);
        assert!((s.dims - 3.0).abs() < 1e-12);
        assert!(s.nnz_per_record <= 3.0);
        assert!(!s.is_sparse);
        assert!(s.total_bytes() > 0.0);
    }

    #[test]
    fn stats_empty_collection() {
        let c: DistCollection<Vec<f64>> = DistCollection::from_vec(vec![], 4);
        let s = DataStats::from_collection(&c, 10);
        assert_eq!(s.count, 0);
        assert_eq!(s.total_bytes(), 0.0);
    }

    #[test]
    fn density_computation() {
        let c =
            DistCollection::from_vec(vec![SparseVector::from_pairs(1000, vec![(1, 1.0)]); 10], 2);
        let s = DataStats::from_collection(&c, 10);
        assert!(s.is_sparse);
        assert!((s.density() - 0.001).abs() < 1e-9);
    }

    #[test]
    fn at_scale_rescales_count_only() {
        let c = DistCollection::from_vec(vec![vec![1.0, 2.0]; 8], 2);
        let s = DataStats::from_collection(&c, 8);
        let big = s.at_scale(1_000_000);
        assert_eq!(big.count, 1_000_000);
        assert_eq!(big.bytes_per_record, s.bytes_per_record);
    }
}
