//! The [`PipelineReport`]: optimizer predictions joined against executor
//! actuals.
//!
//! The paper's §4.1 claims execution subsampling predicts memory "nearly
//! perfectly" and runtimes within ~15%. This module makes that claim
//! checkable on every fit: each node's profiled estimate
//! ([`NodeProfile::est_secs`] / [`NodeProfile::est_output_bytes`]) is joined
//! against what the [`Tracer`](crate::trace::Tracer) actually observed —
//! wall/simulated seconds, execution counts, output bytes, and cache
//! hit/miss counters — with per-node relative errors.
//!
//! Reports serialize to JSON via a small hand-rolled writer (the build
//! environment has no registry access, so `serde` is unavailable; the output
//! is plain standard JSON) and render as a fixed-width table for terminals.

use std::collections::HashMap;

use keystone_dataflow::metrics::MetricsRegistry;

use crate::graph::{Graph, NodeId};
use crate::profiler::PipelineProfile;
use crate::trace::{CacheCounters, RecoveryStats, Tracer};

/// One node's predicted-vs-actual row.
#[derive(Debug, Clone)]
pub struct NodeReport {
    /// Node id in the executed graph.
    pub node: NodeId,
    /// Node label.
    pub label: String,
    /// Profiler-predicted seconds for one full-scale execution, if the node
    /// was profiled.
    pub predicted_secs: Option<f64>,
    /// Profiler-predicted output bytes at full scale.
    pub predicted_out_bytes: Option<f64>,
    /// Observed wall-clock seconds summed over executions.
    pub actual_wall_secs: f64,
    /// Observed simulated-cluster seconds summed over executions.
    pub actual_sim_secs: f64,
    /// Observed output bytes (last execution).
    pub actual_out_bytes: u64,
    /// How many times the node actually executed.
    pub execs: u64,
    /// Cache counters for the node's output.
    pub cache: CacheCounters,
    /// `|predicted - actual_per_exec| / actual_per_exec` for wall time;
    /// `None` when either side is missing.
    pub time_rel_error: Option<f64>,
    /// Same for output bytes.
    pub bytes_rel_error: Option<f64>,
    /// Task spans recorded while this node executed (partition-parallel
    /// `DistCollection` operations × partitions).
    pub task_spans: u64,
    /// Distinct partitions those spans covered.
    pub partitions: u64,
    /// Max / median per-partition busy time across the node's spans.
    /// `None` when the node emitted no spans.
    pub skew_ratio: Option<f64>,
    /// Busy wall time ÷ (lanes × stage span), clamped to 1.0.
    pub utilization: Option<f64>,
    /// Failed task attempts this node's executions absorbed as retries.
    pub retries: u64,
    /// Straggler partitions beaten by a speculative copy.
    pub speculative_wins: u64,
    /// Simulated seconds of recovery work (retry backoff + speculative
    /// copies) charged against this node.
    pub recovery_secs: f64,
    /// Member labels when this node is a whole-stage fused chain
    /// (execution order); empty for ordinary nodes.
    pub fused_members: Vec<String>,
    /// What adaptive re-optimization did to this node during the fit:
    /// `"recalibrated"`, `"promoted"`, `"evicted"`, or a `+`-joined
    /// combination (in that order); `None` when adaptation never touched
    /// the node.
    pub adapt: Option<String>,
}

impl NodeReport {
    /// Why did the runtime prediction miss? Returns `None` when the
    /// prediction was within `threshold` relative error (or either side is
    /// missing). Otherwise classifies the miss: a skewed node (max partition
    /// time > 2× median) violates the cost model's "slowest worker"
    /// uniformity assumption, so the miss is attributed to `"skew"`; an
    /// evenly-loaded node that still missed is a `"uniform"` mis-estimate
    /// (wrong per-record cost or cardinality).
    pub fn miss_diagnosis(&self, threshold: f64) -> Option<&'static str> {
        let err = self.time_rel_error?;
        if err < threshold {
            return None;
        }
        match self.skew_ratio {
            Some(r) if r > 2.0 => Some("skew"),
            _ => Some("uniform"),
        }
    }
}

/// One tenant's attribution row in a multi-tenant forest fit
/// (`keystone_core::optimizer::multi`). Solo fits have no rows — the
/// `tenants` section is empty unless the fit came from `fit_forest`.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantRow {
    /// Tenant index (lane `tenant{i}` in the `SimClock` ledger and the
    /// Chrome-trace export).
    pub tenant: usize,
    /// The tenant's output node in the executed (possibly merged) graph.
    pub output: NodeId,
    /// The tenant's estimator nodes, topological order.
    pub fit_roots: Vec<NodeId>,
    /// Computation nodes on this tenant's ancestry shared with ≥ 1 other
    /// tenant (0 for solo/fallback fits).
    pub shared_nodes: usize,
    /// Simulated seconds charged to this tenant's lane during the fit.
    pub sim_secs: f64,
    /// Scratch-measured simulated seconds a solo fit of this tenant costs.
    pub solo_secs: f64,
}

/// Whole-pipeline observability report.
#[derive(Debug, Clone, Default)]
pub struct PipelineReport {
    /// Per-node rows, ordered by node id (topological for executor graphs).
    pub nodes: Vec<NodeReport>,
    /// Total trace events behind this report.
    pub events: usize,
    /// Total cache hits across nodes.
    pub cache_hits: u64,
    /// Total cache misses across nodes.
    pub cache_misses: u64,
    /// Total retries across nodes.
    pub retries: u64,
    /// Total speculative wins across nodes.
    pub speculative_wins: u64,
    /// Total cache entries lost and recomputed from lineage.
    pub cache_losses: u64,
    /// Total simulated recovery seconds across nodes.
    pub recovery_secs: f64,
    /// Per-tenant rows when this fit was part of a multi-tenant forest
    /// (`fit_forest`); empty for ordinary solo fits.
    pub tenants: Vec<TenantRow>,
}

fn rel_error(predicted: f64, actual: f64) -> f64 {
    (predicted - actual).abs() / actual.abs().max(1e-9)
}

impl PipelineReport {
    /// Joins profiler predictions with tracer actuals over `graph`'s nodes.
    /// A node appears if it was profiled or it executed.
    pub fn build(graph: &Graph, profile: &PipelineProfile, tracer: &Tracer) -> Self {
        Self::build_with_metrics(graph, profile, tracer, None)
    }

    /// Like [`PipelineReport::build`], additionally joining partition-level
    /// task spans from `metrics`: rows gain span/partition counts plus the
    /// per-stage skew ratio and worker utilization, keyed by the node id the
    /// executor stamps on every task scope.
    pub fn build_with_metrics(
        graph: &Graph,
        profile: &PipelineProfile,
        tracer: &Tracer,
        metrics: Option<&MetricsRegistry>,
    ) -> Self {
        let actuals = tracer.node_actuals();
        let counters = tracer.cache_counters();
        let recovery = tracer.recovery_by_node();
        // One skew row per executor node; when a node somehow carries more
        // than one stage group (relabeled re-execution), keep the busier one.
        let mut skew_by_node: HashMap<u64, keystone_dataflow::metrics::StageSkew> = HashMap::new();
        if let Some(m) = metrics {
            for sk in m.stage_skew() {
                if let Some(id) = sk.stage_id {
                    match skew_by_node.get(&id) {
                        Some(prev) if prev.tasks >= sk.tasks => {}
                        _ => {
                            skew_by_node.insert(id, sk);
                        }
                    }
                }
            }
        }
        // Adaptation flags per node: (recalibrated, promoted, evicted),
        // folded from the fit's Recalibrate / PlanRevision trace events.
        let mut adapt_by_node: HashMap<NodeId, (bool, bool, bool)> = HashMap::new();
        for te in tracer.events() {
            match &te.event {
                crate::trace::TraceEvent::Recalibrate { node, .. } => {
                    adapt_by_node.entry(*node).or_default().0 = true;
                }
                crate::trace::TraceEvent::PlanRevision {
                    promoted, evicted, ..
                } => {
                    for n in promoted {
                        adapt_by_node.entry(*n).or_default().1 = true;
                    }
                    for n in evicted {
                        adapt_by_node.entry(*n).or_default().2 = true;
                    }
                }
                _ => {}
            }
        }
        let mut nodes = Vec::new();
        for id in 0..graph.len() {
            let prof = profile.nodes.get(&id);
            let act = actuals.get(&id);
            if prof.is_none()
                && act.is_none()
                && !counters.contains_key(&id)
                && !recovery.contains_key(&id)
                && !adapt_by_node.contains_key(&id)
            {
                continue;
            }
            let predicted_secs = prof.map(|p| p.est_secs(p.records_hint));
            let predicted_out_bytes = prof.map(|p| p.est_output_bytes());
            let (wall, sim, execs, out_bytes) = act
                .map(|a| (a.wall_secs, a.sim_secs, a.execs, a.out_bytes))
                .unwrap_or((0.0, 0.0, 0, 0));
            let per_exec = if execs > 0 {
                Some(wall / execs as f64)
            } else {
                None
            };
            let time_rel_error = match (predicted_secs, per_exec) {
                (Some(p), Some(a)) => Some(rel_error(p, a)),
                _ => None,
            };
            let bytes_rel_error = match (predicted_out_bytes, act) {
                (Some(p), Some(a)) if a.out_bytes > 0 => Some(rel_error(p, a.out_bytes as f64)),
                _ => None,
            };
            let skew = skew_by_node.get(&(id as u64));
            let rec = recovery.get(&id).copied().unwrap_or_default();
            let fused_members = match &graph.nodes[id].kind {
                crate::graph::NodeKind::Transform(op) => op.fused_members().unwrap_or_default(),
                _ => Vec::new(),
            };
            nodes.push(NodeReport {
                node: id,
                label: graph.nodes[id].label.clone(),
                predicted_secs,
                predicted_out_bytes,
                actual_wall_secs: wall,
                actual_sim_secs: sim,
                actual_out_bytes: out_bytes,
                execs,
                cache: counters.get(&id).copied().unwrap_or_default(),
                time_rel_error,
                bytes_rel_error,
                task_spans: skew.map_or(0, |s| s.tasks as u64),
                partitions: skew.map_or(0, |s| s.partitions as u64),
                skew_ratio: skew.map(|s| s.skew_ratio),
                utilization: skew.map(|s| s.utilization),
                retries: rec.retries,
                speculative_wins: rec.speculative_wins,
                recovery_secs: rec.recovery_secs,
                fused_members,
                adapt: adapt_by_node.get(&id).map(|&(recal, promo, evict)| {
                    let mut parts = Vec::new();
                    if recal {
                        parts.push("recalibrated");
                    }
                    if promo {
                        parts.push("promoted");
                    }
                    if evict {
                        parts.push("evicted");
                    }
                    parts.join("+")
                }),
            });
        }
        let cache_hits = nodes.iter().map(|n| n.cache.hits).sum();
        let cache_misses = nodes.iter().map(|n| n.cache.misses).sum();
        let totals: RecoveryStats = tracer.recovery_stats();
        PipelineReport {
            nodes,
            events: tracer.len(),
            cache_hits,
            cache_misses,
            retries: totals.retries,
            speculative_wins: totals.speculative_wins,
            cache_losses: totals.cache_losses,
            recovery_secs: totals.recovery_secs,
            tenants: Vec::new(),
        }
    }

    /// Row for a label (first match).
    pub fn node(&self, label: &str) -> Option<&NodeReport> {
        self.nodes.iter().find(|n| n.label == label)
    }

    /// Largest per-node wall-time relative error, if any node has one.
    pub fn max_time_rel_error(&self) -> Option<f64> {
        self.nodes
            .iter()
            .filter_map(|n| n.time_rel_error)
            .fold(None, |acc, e| Some(acc.map_or(e, |a: f64| a.max(e))))
    }

    /// Largest per-node output-bytes relative error, if any node has one.
    pub fn max_bytes_rel_error(&self) -> Option<f64> {
        self.nodes
            .iter()
            .filter_map(|n| n.bytes_rel_error)
            .fold(None, |acc, e| Some(acc.map_or(e, |a: f64| a.max(e))))
    }

    /// Serializes the report as a JSON object.
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(256 + self.nodes.len() * 256);
        s.push_str("{\"events\":");
        s.push_str(&self.events.to_string());
        s.push_str(",\"cache_hits\":");
        s.push_str(&self.cache_hits.to_string());
        s.push_str(",\"cache_misses\":");
        s.push_str(&self.cache_misses.to_string());
        s.push_str(",\"retries\":");
        s.push_str(&self.retries.to_string());
        s.push_str(",\"speculative_wins\":");
        s.push_str(&self.speculative_wins.to_string());
        s.push_str(",\"cache_losses\":");
        s.push_str(&self.cache_losses.to_string());
        s.push_str(",\"recovery_secs\":");
        json_f64(&mut s, self.recovery_secs);
        s.push_str(",\"tenants\":[");
        for (i, t) in self.tenants.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str("{\"tenant\":");
            s.push_str(&t.tenant.to_string());
            s.push_str(",\"output\":");
            s.push_str(&t.output.to_string());
            s.push_str(",\"fit_roots\":[");
            for (j, r) in t.fit_roots.iter().enumerate() {
                if j > 0 {
                    s.push(',');
                }
                s.push_str(&r.to_string());
            }
            s.push(']');
            s.push_str(",\"shared_nodes\":");
            s.push_str(&t.shared_nodes.to_string());
            s.push_str(",\"sim_secs\":");
            json_f64(&mut s, t.sim_secs);
            s.push_str(",\"solo_secs\":");
            json_f64(&mut s, t.solo_secs);
            s.push('}');
        }
        s.push(']');
        s.push_str(",\"nodes\":[");
        for (i, n) in self.nodes.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str("{\"node\":");
            s.push_str(&n.node.to_string());
            s.push_str(",\"label\":");
            json_string(&mut s, &n.label);
            s.push_str(",\"predicted_secs\":");
            json_opt_f64(&mut s, n.predicted_secs);
            s.push_str(",\"predicted_out_bytes\":");
            json_opt_f64(&mut s, n.predicted_out_bytes);
            s.push_str(",\"actual_wall_secs\":");
            json_f64(&mut s, n.actual_wall_secs);
            s.push_str(",\"actual_sim_secs\":");
            json_f64(&mut s, n.actual_sim_secs);
            s.push_str(",\"actual_out_bytes\":");
            s.push_str(&n.actual_out_bytes.to_string());
            s.push_str(",\"execs\":");
            s.push_str(&n.execs.to_string());
            s.push_str(",\"cache\":{\"hits\":");
            s.push_str(&n.cache.hits.to_string());
            s.push_str(",\"misses\":");
            s.push_str(&n.cache.misses.to_string());
            s.push_str(",\"admissions\":");
            s.push_str(&n.cache.admissions.to_string());
            s.push_str(",\"evictions\":");
            s.push_str(&n.cache.evictions.to_string());
            s.push_str(",\"rejections\":");
            s.push_str(&n.cache.rejections.to_string());
            s.push_str("},\"time_rel_error\":");
            json_opt_f64(&mut s, n.time_rel_error);
            s.push_str(",\"bytes_rel_error\":");
            json_opt_f64(&mut s, n.bytes_rel_error);
            s.push_str(",\"task_spans\":");
            s.push_str(&n.task_spans.to_string());
            s.push_str(",\"partitions\":");
            s.push_str(&n.partitions.to_string());
            s.push_str(",\"skew_ratio\":");
            json_opt_f64(&mut s, n.skew_ratio);
            s.push_str(",\"utilization\":");
            json_opt_f64(&mut s, n.utilization);
            s.push_str(",\"retries\":");
            s.push_str(&n.retries.to_string());
            s.push_str(",\"speculative_wins\":");
            s.push_str(&n.speculative_wins.to_string());
            s.push_str(",\"recovery_secs\":");
            json_f64(&mut s, n.recovery_secs);
            s.push_str(",\"fused_members\":[");
            for (j, m) in n.fused_members.iter().enumerate() {
                if j > 0 {
                    s.push(',');
                }
                json_string(&mut s, m);
            }
            s.push(']');
            s.push_str(",\"adapt\":");
            match &n.adapt {
                Some(a) => json_string(&mut s, a),
                None => s.push_str("null"),
            }
            s.push('}');
        }
        s.push_str("]}");
        s
    }

    /// Renders a fixed-width predicted-vs-actual table.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<28} {:>6} {:>11} {:>11} {:>7} {:>6} {:>6} {:>6} {:>6} {:>6} {:>5} {:>8} {:>8} {}\n",
            "node",
            "execs",
            "pred(s)",
            "wall(s)",
            "err%",
            "hits",
            "miss",
            "skew",
            "util%",
            "retry",
            "spec",
            "rec(s)",
            "adapt",
            "fused"
        ));
        for n in &self.nodes {
            let pred = n
                .predicted_secs
                .map_or("-".to_string(), |p| format!("{:.5}", p));
            let err = n
                .time_rel_error
                .map_or("-".to_string(), |e| format!("{:.1}", e * 100.0));
            let skew = n
                .skew_ratio
                .map_or("-".to_string(), |r| format!("{:.2}", r));
            let util = n
                .utilization
                .map_or("-".to_string(), |u| format!("{:.0}", u * 100.0));
            let mut label = n.label.clone();
            if label.len() > 28 {
                label.truncate(25);
                label.push_str("...");
            }
            let rec = if n.recovery_secs > 0.0 {
                format!("{:.3}", n.recovery_secs)
            } else {
                "-".to_string()
            };
            let fused = if n.fused_members.is_empty() {
                "-".to_string()
            } else {
                n.fused_members.join("+")
            };
            let adapt = n.adapt.as_deref().unwrap_or("-");
            out.push_str(&format!(
                "{:<28} {:>6} {:>11} {:>11.5} {:>7} {:>6} {:>6} {:>6} {:>6} {:>6} {:>5} {:>8} {:>8} {}\n",
                label,
                n.execs,
                pred,
                n.actual_wall_secs,
                err,
                n.cache.hits,
                n.cache.misses,
                skew,
                util,
                n.retries,
                n.speculative_wins,
                rec,
                adapt,
                fused
            ));
        }
        out.push_str(&format!(
            "events: {}, cache hits: {}, misses: {}, retries: {}, speculative wins: {}, \
             cache losses: {}, recovery: {:.3}s\n",
            self.events,
            self.cache_hits,
            self.cache_misses,
            self.retries,
            self.speculative_wins,
            self.cache_losses,
            self.recovery_secs
        ));
        out
    }
}

fn json_f64(s: &mut String, v: f64) {
    if v.is_finite() {
        // Shortest roundtrip formatting Rust offers; always valid JSON.
        let formatted = format!("{}", v);
        s.push_str(&formatted);
        if !formatted.contains('.') && !formatted.contains('e') {
            s.push_str(".0");
        }
    } else {
        s.push_str("null");
    }
}

fn json_opt_f64(s: &mut String, v: Option<f64>) {
    match v {
        Some(x) => json_f64(s, x),
        None => s.push_str("null"),
    }
}

fn json_string(s: &mut String, v: &str) {
    s.push('"');
    for c in v.chars() {
        match c {
            '"' => s.push_str("\\\""),
            '\\' => s.push_str("\\\\"),
            '\n' => s.push_str("\\n"),
            '\r' => s.push_str("\\r"),
            '\t' => s.push_str("\\t"),
            c if (c as u32) < 0x20 => s.push_str(&format!("\\u{:04x}", c as u32)),
            c => s.push(c),
        }
    }
    s.push('"');
}

/// Minimal JSON validity check used by tests: verifies balanced structure
/// and quoting without building a DOM.
#[doc(hidden)]
pub fn json_is_balanced(s: &str) -> bool {
    let mut depth: i64 = 0;
    let mut in_str = false;
    let mut escape = false;
    for c in s.chars() {
        if in_str {
            if escape {
                escape = false;
            } else if c == '\\' {
                escape = true;
            } else if c == '"' {
                in_str = false;
            }
            continue;
        }
        match c {
            '"' => in_str = true,
            '{' | '[' => depth += 1,
            '}' | ']' => {
                depth -= 1;
                if depth < 0 {
                    return false;
                }
            }
            _ => {}
        }
    }
    depth == 0 && !in_str
}

/// Convenience: per-node cache counters keyed by label.
pub fn counters_by_label(report: &PipelineReport) -> HashMap<String, CacheCounters> {
    report
        .nodes
        .iter()
        .map(|n| (n.label.clone(), n.cache))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{Graph, NodeKind};
    use crate::operator::AnyData;
    use crate::profiler::{NodeProfile, PipelineProfile};
    use crate::record::DataStats;
    use keystone_dataflow::collection::DistCollection;

    fn graph_with(labels: &[&str]) -> Graph {
        let mut g = Graph::new();
        let mut prev = None;
        for l in labels {
            let inputs = prev.map(|p| vec![p]).unwrap_or_default();
            let kind = if prev.is_none() {
                NodeKind::DataSource(AnyData::wrap(DistCollection::from_vec(vec![1.0f64], 1)))
            } else {
                NodeKind::RuntimeInput // kind irrelevant for report joins
            };
            prev = Some(g.add(kind, inputs, *l));
        }
        g
    }

    fn profile_for(node: usize, secs: f64, bytes: f64) -> PipelineProfile {
        let mut p = PipelineProfile::default();
        p.nodes.insert(
            node,
            NodeProfile {
                secs_per_record: 0.0,
                fixed_secs: secs,
                out_bytes_per_record: 8.0,
                out_records_per_in: 1.0,
                records_hint: 100,
                out_stats: DataStats {
                    count: 100,
                    bytes_per_record: bytes / 100.0,
                    ..DataStats::empty()
                },
            },
        );
        p
    }

    #[test]
    fn join_computes_relative_errors() {
        let g = graph_with(&["src", "op"]);
        let profile = profile_for(1, 2.0, 800.0);
        let t = Tracer::new();
        t.node_end(1, "op", 100, 800, 1.0, 0.5);
        let r = PipelineReport::build(&g, &profile, &t);
        let row = r.node("op").expect("row for op");
        assert_eq!(row.execs, 1);
        // pred 2.0 vs actual 1.0 → 100% relative error.
        assert!((row.time_rel_error.expect("err") - 1.0).abs() < 1e-9);
        // bytes predicted exactly.
        assert!(row.bytes_rel_error.expect("bytes err") < 1e-9);
        assert_eq!(r.max_time_rel_error(), row.time_rel_error);
    }

    #[test]
    fn unexecuted_profiled_node_has_no_error() {
        let g = graph_with(&["src", "op"]);
        let profile = profile_for(1, 2.0, 800.0);
        let t = Tracer::new();
        let r = PipelineReport::build(&g, &profile, &t);
        let row = r.node("op").expect("row");
        assert_eq!(row.execs, 0);
        assert!(row.time_rel_error.is_none());
        assert!(r.max_time_rel_error().is_none());
    }

    #[test]
    fn json_is_well_formed_and_contains_counters() {
        let g = graph_with(&["src", "a\"quoted\"", "b"]);
        let profile = profile_for(1, 2.0, 800.0);
        let t = Tracer::new();
        t.node_end(1, "a\"quoted\"", 100, 800, 1.5, 0.0);
        t.record(crate::trace::TraceEvent::CacheMiss { node: 1 });
        t.record(crate::trace::TraceEvent::CacheHit { node: 1 });
        let r = PipelineReport::build(&g, &profile, &t);
        let json = r.to_json();
        assert!(json_is_balanced(&json), "unbalanced: {json}");
        assert!(json.contains("\"cache_hits\":1"));
        assert!(json.contains("\"cache_misses\":1"));
        assert!(json.contains("\\\"quoted\\\""));
        assert!(json.contains("\"predicted_secs\":2"));
    }

    #[test]
    fn table_renders_every_row() {
        let g = graph_with(&["src", "op"]);
        let profile = profile_for(1, 2.0, 800.0);
        let t = Tracer::new();
        t.node_end(1, "op", 100, 800, 1.0, 0.0);
        let r = PipelineReport::build(&g, &profile, &t);
        let table = r.render_table();
        assert!(table.contains("op"));
        assert!(table.contains("err%"));
        assert!(table.lines().count() >= 3);
    }

    #[test]
    fn build_with_metrics_joins_skew_by_node_id() {
        let g = graph_with(&["src", "op"]);
        let profile = profile_for(1, 2.0, 800.0);
        let t = Tracer::new();
        t.node_end(1, "op", 100, 800, 1.0, 0.5);
        let m = MetricsRegistry::new();
        // Three even partitions and one 5× straggler on node 1.
        for (p, dur) in [(0u64, 10u64), (1, 10), (2, 10), (3, 50)] {
            m.record_span(keystone_dataflow::metrics::TaskSpan {
                stage: "op".into(),
                op: "map",
                op_seq: 0,
                stage_id: Some(1),
                partition: p as usize,
                worker: p as usize % 2,
                start_us: 0,
                end_us: dur,
                items_in: 1,
                items_out: 1,
                bytes: 8,
                retries: 0,
                speculative: false,
            });
        }
        let r = PipelineReport::build_with_metrics(&g, &profile, &t, Some(&m));
        let row = r.node("op").expect("row");
        assert_eq!(row.task_spans, 4);
        assert_eq!(row.partitions, 4);
        assert!((row.skew_ratio.expect("skew") - 5.0).abs() < 1e-9);
        assert!(row.utilization.expect("util") > 0.0);
        // err is 100% > 15% threshold, and skew 5 > 2 → blamed on skew.
        assert_eq!(row.miss_diagnosis(0.15), Some("skew"));
        let json = r.to_json();
        assert!(json_is_balanced(&json), "unbalanced: {json}");
        assert!(json.contains("\"skew_ratio\":5"));
        assert!(json.contains("\"task_spans\":4"));
        let table = r.render_table();
        assert!(table.contains("skew"));
        assert!(table.contains("util%"));
        assert!(table.contains("5.00"));
    }

    #[test]
    fn miss_diagnosis_classifies_uniform_and_accurate_rows() {
        let base = NodeReport {
            node: 0,
            label: "x".into(),
            predicted_secs: Some(1.0),
            predicted_out_bytes: None,
            actual_wall_secs: 2.0,
            actual_sim_secs: 0.0,
            actual_out_bytes: 0,
            execs: 1,
            cache: CacheCounters::default(),
            time_rel_error: Some(0.5),
            bytes_rel_error: None,
            task_spans: 4,
            partitions: 4,
            skew_ratio: Some(1.1),
            utilization: Some(0.9),
            retries: 0,
            speculative_wins: 0,
            recovery_secs: 0.0,
            fused_members: Vec::new(),
            adapt: None,
        };
        // Even load but 50% off → uniform mis-estimate.
        assert_eq!(base.miss_diagnosis(0.15), Some("uniform"));
        // Within threshold → no diagnosis.
        let accurate = NodeReport {
            time_rel_error: Some(0.05),
            ..base.clone()
        };
        assert_eq!(accurate.miss_diagnosis(0.15), None);
        // No spans at all → still a uniform call (no evidence of skew).
        let no_spans = NodeReport {
            skew_ratio: None,
            ..base
        };
        assert_eq!(no_spans.miss_diagnosis(0.15), Some("uniform"));
    }

    /// Builds a report row from `spans` ((partition, start_us, end_us))
    /// joined against a 2.0s prediction and a 1.0s single-exec actual, so
    /// `time_rel_error` is always 100% and only `skew_ratio` varies.
    fn row_from_spans(spans: &[(usize, u64, u64)]) -> NodeReport {
        let g = graph_with(&["src", "op"]);
        let profile = profile_for(1, 2.0, 800.0);
        let t = Tracer::new();
        t.node_end(1, "op", 100, 800, 1.0, 0.5);
        let m = MetricsRegistry::new();
        for &(p, start, end) in spans {
            m.record_span(keystone_dataflow::metrics::TaskSpan {
                stage: "op".into(),
                op: "map",
                op_seq: 0,
                stage_id: Some(1),
                partition: p,
                worker: p % 2,
                start_us: start,
                end_us: end,
                items_in: 1,
                items_out: 1,
                bytes: 8,
                retries: 0,
                speculative: false,
            });
        }
        let r = PipelineReport::build_with_metrics(&g, &profile, &t, Some(&m));
        r.node("op").expect("row").clone()
    }

    #[test]
    fn miss_diagnosis_single_partition_stage_is_uniform() {
        // One partition: max == median busy time, so skew can never be
        // blamed — the miss must fall through to "uniform".
        let row = row_from_spans(&[(0, 0, 40)]);
        assert_eq!(row.partitions, 1);
        assert!((row.skew_ratio.expect("skew") - 1.0).abs() < 1e-9);
        assert_eq!(row.miss_diagnosis(0.15), Some("uniform"));
    }

    #[test]
    fn miss_diagnosis_zero_duration_spans_are_uniform_not_nan() {
        // All spans start and end on the same microsecond. The skew ratio
        // must stay finite (no 0/0 → NaN leaking into the diagnosis), and a
        // NaN comparison would silently fail `r > 2.0` — pin that it lands
        // on "uniform", not a panic or "skew".
        let row = row_from_spans(&[(0, 5, 5), (1, 5, 5), (2, 5, 5)]);
        let skew = row.skew_ratio.expect("skew present");
        assert!(skew.is_finite(), "zero-duration spans produced {skew}");
        assert_eq!(row.miss_diagnosis(0.15), Some("uniform"));
    }

    #[test]
    fn miss_diagnosis_all_equal_spans_sit_exactly_on_the_boundary() {
        // Four identical spans → skew ratio exactly 1.0; the `> 2.0` guard
        // must not fire on equality-adjacent values.
        let row = row_from_spans(&[(0, 0, 10), (1, 0, 10), (2, 0, 10), (3, 0, 10)]);
        assert!((row.skew_ratio.expect("skew") - 1.0).abs() < 1e-9);
        assert_eq!(row.miss_diagnosis(0.15), Some("uniform"));
        // And exactly-2.0 max/median (two at 10, two at 20 → median 15,
        // max 20 → ratio < 2) stays uniform; only strictly >2 flips.
        let boundary = NodeReport {
            skew_ratio: Some(2.0),
            ..row.clone()
        };
        assert_eq!(boundary.miss_diagnosis(0.15), Some("uniform"));
        let over = NodeReport {
            skew_ratio: Some(2.0 + 1e-9),
            ..row
        };
        assert_eq!(over.miss_diagnosis(0.15), Some("skew"));
    }

    #[test]
    fn adaptation_events_join_onto_rows_json_and_table() {
        use crate::trace::TraceEvent;
        let g = graph_with(&["src", "hot", "stale"]);
        let profile = profile_for(1, 2.0, 800.0);
        let t = Tracer::new();
        t.node_end(1, "hot", 100, 800, 1.0, 0.5);
        t.record(TraceEvent::Recalibrate {
            node: 1,
            label: "hot".into(),
            observed_requests: 3,
            predicted_requests: 1.0,
        });
        t.record(TraceEvent::PlanRevision {
            wave: 1,
            promoted: vec![1],
            evicted: vec![2],
            predicted_saving_secs: 4.0,
        });
        let r = PipelineReport::build(&g, &profile, &t);
        let hot = r.node("hot").expect("hot row");
        assert_eq!(hot.adapt.as_deref(), Some("recalibrated+promoted"));
        // The evicted node never executed and was never profiled, but the
        // revision alone earns it a row.
        let stale = r.node("stale").expect("stale row");
        assert_eq!(stale.adapt.as_deref(), Some("evicted"));
        assert_eq!(stale.execs, 0);
        let json = r.to_json();
        assert!(json_is_balanced(&json), "unbalanced: {json}");
        assert!(json.contains("\"adapt\":\"recalibrated+promoted\""));
        assert!(json.contains("\"adapt\":\"evicted\""));
        let table = r.render_table();
        assert!(table.contains("adapt"), "header column missing: {table}");
        assert!(table.contains("evicted"), "flag missing: {table}");
    }

    #[test]
    fn recovery_events_join_onto_node_rows_and_totals() {
        use crate::trace::TraceEvent;
        let g = graph_with(&["src", "op"]);
        let profile = profile_for(1, 2.0, 800.0);
        let t = Tracer::new();
        t.node_end(1, "op", 100, 800, 1.0, 0.5);
        t.record(TraceEvent::TaskRetry {
            node: 1,
            partition: 0,
            attempt: 0,
            backoff_secs: 1.0,
        });
        t.record(TraceEvent::SpeculativeWin {
            node: 1,
            partition: 2,
            original_secs: 5.0,
            copy_secs: 0.5,
        });
        t.record(TraceEvent::CacheLost { node: 1 });
        let r = PipelineReport::build(&g, &profile, &t);
        let row = r.node("op").expect("row");
        assert_eq!(row.retries, 1);
        assert_eq!(row.speculative_wins, 1);
        assert!((row.recovery_secs - 1.5).abs() < 1e-12);
        assert_eq!(r.retries, 1);
        assert_eq!(r.speculative_wins, 1);
        assert_eq!(r.cache_losses, 1);
        assert!((r.recovery_secs - 1.5).abs() < 1e-12);
        let json = r.to_json();
        assert!(json_is_balanced(&json), "unbalanced: {json}");
        assert!(json.contains("\"retries\":1"));
        assert!(json.contains("\"speculative_wins\":1"));
        assert!(json.contains("\"cache_losses\":1"));
        assert!(json.contains("\"recovery_secs\":1.5"));
        let table = r.render_table();
        assert!(table.contains("retry"));
        assert!(table.contains("recovery: 1.500s"));
    }

    #[test]
    fn fused_rows_render_member_lists() {
        use crate::operator::{Transformer, TypedTransformer};
        use std::sync::Arc;
        struct Inc;
        impl Transformer<f64, f64> for Inc {
            fn apply(&self, x: &f64) -> f64 {
                x + 1.0
            }
        }
        struct Dbl;
        impl Transformer<f64, f64> for Dbl {
            fn apply(&self, x: &f64) -> f64 {
                x * 2.0
            }
        }
        let members: Vec<(String, Arc<dyn crate::operator::ErasedTransformer>)> = vec![
            ("Inc".into(), Arc::new(TypedTransformer::new(Inc))),
            ("Dbl".into(), Arc::new(TypedTransformer::new(Dbl))),
        ];
        let fused = crate::optimizer::FusedMap::try_fuse(&members).expect("fusable");
        let mut g = Graph::new();
        let src = g.add(
            NodeKind::DataSource(AnyData::wrap(DistCollection::from_vec(vec![1.0f64], 1))),
            vec![],
            "src",
        );
        let f = g.add(
            NodeKind::Transform(Arc::new(fused)),
            vec![src],
            "Fused[Inc+Dbl]",
        );
        let profile = profile_for(f, 1.0, 800.0);
        let t = Tracer::new();
        t.node_end(f, "Fused[Inc+Dbl]", 100, 800, 0.5, 0.25);
        let r = PipelineReport::build(&g, &profile, &t);
        let row = r.node("Fused[Inc+Dbl]").expect("row");
        assert_eq!(row.fused_members, vec!["Inc", "Dbl"]);
        let json = r.to_json();
        assert!(json_is_balanced(&json), "unbalanced: {json}");
        assert!(json.contains("\"fused_members\":[\"Inc\",\"Dbl\"]"));
        let table = r.render_table();
        assert!(table.contains("fused"), "header column missing: {table}");
        assert!(table.contains("Inc+Dbl"), "member list missing: {table}");
    }

    #[test]
    fn json_f64_emits_valid_numbers() {
        let mut s = String::new();
        json_f64(&mut s, 2.0);
        assert_eq!(s, "2.0");
        let mut s = String::new();
        json_f64(&mut s, f64::NAN);
        assert_eq!(s, "null");
        let mut s = String::new();
        json_f64(&mut s, 1.5e-7);
        assert!(s.contains('e') || s.contains('.'));
    }
}
