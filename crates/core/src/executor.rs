//! Depth-first, cache-aware DAG execution (§2.3 "runtime").
//!
//! The executor evaluates nodes on demand. There is **no implicit
//! memoization of data nodes**: a node requested twice (fan-out, or an
//! iterative estimator re-reading its input) is recomputed unless the
//! [`CacheManager`] holds it — exactly the Spark behaviour the automatic
//! materialization optimizer (§4.3) manages. Fitted models *are* memoized
//! per run: an estimator fits once.
//!
//! ## Fault tolerance
//!
//! When the context carries a [`FaultPlan`], the executor provides the
//! recovery guarantees the paper inherits from Spark's RDD lineage:
//!
//! * **Task retry** — injected per-partition failures surface as `retries`
//!   on task spans; the executor charges each retry's exponential backoff to
//!   the simulated clock (under a `recovery:` stage) and emits a
//!   [`TraceEvent::TaskRetry`](crate::trace::TraceEvent) per attempt. A task
//!   exceeding the retry limit fails the job, as on a real cluster.
//! * **Speculative re-execution** — partitions whose measured busy time
//!   straggles past 2× the stage median get a simulated median-speed copy:
//!   the original span is tagged `speculative` (it lost the race) and the
//!   copy's runtime is charged under a `speculative:` stage.
//! * **Lineage recompute** — a cache entry that is lost (or holds a foreign
//!   value) is invalidated and the node recomputed from its DAG ancestry
//!   instead of panicking; losses surface as `CacheLost` events.
//!
//! Recovery is *accounted* centrally on the driving thread after the node's
//! own work completes, in deterministic span order, so two runs with the
//! same fault seed produce identical event streams.

use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

use keystone_dataflow::cache::CacheManager;
use keystone_dataflow::faults::FaultPlan;
use keystone_dataflow::metrics::{enter_task_scope, TaskScope};

use crate::context::ExecContext;
use crate::graph::{Graph, NodeId, NodeKind};
use crate::operator::{AnyData, ErasedTransformer, InputHandle, NodeOutput};
use crate::profiler::NodeProfile;
use crate::trace::TraceEvent;
use parking_lot::Mutex;

/// DAG evaluator over a frozen graph.
pub struct Executor<'g> {
    graph: &'g Graph,
    ctx: ExecContext,
    cache: Arc<CacheManager>,
    /// Fitted models, memoized for the run.
    models: Mutex<HashMap<NodeId, Arc<dyn ErasedTransformer>>>,
    /// Apply-time input binding.
    runtime_input: Option<AnyData>,
    /// Sample overrides for data sources (profiling mode).
    source_overrides: HashMap<NodeId, AnyData>,
    /// Per-node profiles used to charge the simulated clock.
    profiles: Option<Arc<HashMap<NodeId, NodeProfile>>>,
    /// Mid-fit adaptive re-planner: notified of every node request so it
    /// can compare observed demand against the plan's prediction and apply
    /// cost-only cache revisions (see [`crate::optimizer::adaptive`]).
    adaptive: Option<Arc<crate::optimizer::AdaptiveController>>,
    /// Memoize every data node (single-pass modes: profiling, apply).
    memoize_all: bool,
    /// In `memoize_all` mode, additionally offer data outputs the cache
    /// policy admits to the [`CacheManager`], so a cache shared across runs
    /// (the serving pattern) can serve request-independent intermediates to
    /// later waves. Offers are gated on [`CacheManager::policy_admits`]: an
    /// apply-path node must never be offered, or wave N would serve wave
    /// N-1's answers.
    cross_run_cache: bool,
    memo: Mutex<HashMap<NodeId, NodeOutput>>,
    /// How many times each node was actually computed (not served from
    /// cache/memo) — the measured counterpart of the paper's `C(v)`.
    eval_counts: Mutex<HashMap<NodeId, u64>>,
    /// Stage-label prefix for multi-tenant attribution: when set, every
    /// node's trace/sim/wall label becomes `{tag}:transform:{label}` etc.,
    /// so [`SimClock::by_stage`](keystone_dataflow::simclock::SimClock)
    /// groups charges into per-tenant lanes. `None` (the default) keeps
    /// labels byte-identical to single-tenant runs. Mutable mid-run so the
    /// forest wave scheduler can re-tag the executor between waves.
    stage_tag: Mutex<Option<String>>,
}

impl<'g> Executor<'g> {
    /// Creates an executor in fit mode (cache-managed recomputation).
    pub fn new(graph: &'g Graph, ctx: ExecContext, cache: Arc<CacheManager>) -> Self {
        Executor {
            graph,
            ctx,
            cache,
            models: Mutex::new(HashMap::new()),
            runtime_input: None,
            source_overrides: HashMap::new(),
            profiles: None,
            adaptive: None,
            memoize_all: false,
            cross_run_cache: false,
            memo: Mutex::new(HashMap::new()),
            eval_counts: Mutex::new(HashMap::new()),
            stage_tag: Mutex::new(None),
        }
    }

    /// Sets the per-tenant stage-label prefix (builder form).
    pub fn with_stage_tag(self, tag: impl Into<String>) -> Self {
        *self.stage_tag.lock() = Some(tag.into());
        self
    }

    /// Re-tags (or clears) the stage-label prefix mid-run — the forest wave
    /// scheduler calls this before dispatching each tenant's wave.
    pub fn set_stage_tag(&self, tag: Option<String>) {
        *self.stage_tag.lock() = tag;
    }

    /// A node's stage label, prefixed with the tenant tag when one is set.
    fn stage_label(&self, kind: &str, label: &str) -> String {
        match self.stage_tag.lock().as_deref() {
            Some(tag) => format!("{tag}:{kind}:{label}"),
            None => format!("{kind}:{label}"),
        }
    }

    /// Binds the apply-time input.
    pub fn with_runtime_input(mut self, data: AnyData) -> Self {
        self.runtime_input = Some(data);
        self
    }

    /// Replaces data sources with (sampled) overrides.
    pub fn with_source_overrides(mut self, overrides: HashMap<NodeId, AnyData>) -> Self {
        self.source_overrides = overrides;
        self
    }

    /// Supplies per-node profiles so execution charges the simulated clock.
    pub fn with_profiles(mut self, profiles: Arc<HashMap<NodeId, NodeProfile>>) -> Self {
        self.profiles = Some(profiles);
        self
    }

    /// Attaches the adaptive mid-fit re-planner (fit mode only).
    pub fn with_adaptive(mut self, controller: Arc<crate::optimizer::AdaptiveController>) -> Self {
        self.adaptive = Some(controller);
        self
    }

    /// Memoizes every node output for the run (single-pass modes).
    pub fn memoize_all(mut self) -> Self {
        self.memoize_all = true;
        self
    }

    /// In `memoize_all` mode, also offer policy-admitted data outputs to
    /// the cache so they survive this run (see the field docs). A no-op
    /// against the nothing-admitted cache single-shot apply uses.
    ///
    /// Cache keys are bare node ids, so every executor sharing one
    /// cross-run cache must run the *same* graph — two plans with different
    /// node numbering would collide keys and serve each other's outputs.
    /// The multi-tenant forest path satisfies this by construction (all
    /// tenants execute one merged graph); sharers with concurrent
    /// lifetimes should hold entries via [`CacheManager::pin_shared`]
    /// rather than the one-way `pin` flag so one owner finishing cannot
    /// evict data another still reads.
    pub fn with_cross_run_cache(mut self) -> Self {
        self.cross_run_cache = true;
        self
    }

    /// Preloads fitted models (used by `FittedPipeline::apply`).
    pub fn with_models(self, models: HashMap<NodeId, Arc<dyn ErasedTransformer>>) -> Self {
        *self.models.lock() = models;
        self
    }

    /// The execution context.
    pub fn ctx(&self) -> &ExecContext {
        &self.ctx
    }

    /// Snapshot of fitted models.
    pub fn models(&self) -> HashMap<NodeId, Arc<dyn ErasedTransformer>> {
        self.models.lock().clone()
    }

    /// How many times `node` was actually computed.
    pub fn eval_count(&self, node: NodeId) -> u64 {
        self.eval_counts.lock().get(&node).copied().unwrap_or(0)
    }

    /// Evaluates `node`, recursively materializing dependencies.
    pub fn eval(&self, node: NodeId) -> NodeOutput {
        // Run-local memo (models always; data only in memoize_all mode).
        if let Some(m) = self.memo.lock().get(&node) {
            return m.clone();
        }
        if let Some(m) = self.models.lock().get(&node) {
            return NodeOutput::Model(m.clone());
        }
        // Adaptive hook: count this request and let the re-planner revise
        // the cache membership at the wave boundary. The fitted-model
        // snapshot is taken (and its lock dropped) before the hook runs.
        if let Some(ad) = &self.adaptive {
            let fitted: std::collections::HashSet<NodeId> =
                self.models.lock().keys().copied().collect();
            ad.on_request(node, &fitted, &self.cache);
        }
        // Policy-driven cache for data nodes. A resident entry can still be
        // *lost* (simulated executor failure) or hold a foreign value; both
        // cases invalidate and fall through to lineage recompute — a cached
        // output is an optimization, never a correctness requirement.
        if let Some(v) = self.cache.get(node as u64) {
            if self
                .active_faults()
                .is_some_and(|f| f.cache_entry_lost(node as u64))
            {
                self.cache.invalidate(node as u64);
                self.ctx.metrics.inc_counter("faults.cache_losses", 1);
            } else {
                match v.downcast_ref::<AnyData>() {
                    Some(data) => return NodeOutput::Data(data.clone()),
                    None => {
                        self.cache.invalidate(node as u64);
                    }
                }
            }
        }

        let out = self.compute(node);

        match &out {
            NodeOutput::Data(d) => {
                if self.memoize_all {
                    self.memo.lock().insert(node, out.clone());
                    // Gate on policy so a run that cannot reuse the node
                    // (or must not — apply-path nodes) produces no reject
                    // noise in trace streams.
                    if self.cross_run_cache && self.cache.policy_admits(node as u64) {
                        self.cache
                            .put(node as u64, Arc::new(d.clone()), d.total_bytes().max(1));
                    }
                } else {
                    self.cache
                        .put(node as u64, Arc::new(d.clone()), d.total_bytes().max(1));
                }
            }
            NodeOutput::Model(m) => {
                self.models.lock().insert(node, m.clone());
            }
        }
        out
    }

    /// The fault plan in effect, if any. Single-pass modes (profiling,
    /// `FittedPipeline::apply`) run with `memoize_all` and stay fault-free:
    /// injection targets the fit-time executor the recovery machinery
    /// protects, and profiled estimates must not absorb injected noise.
    fn active_faults(&self) -> Option<&FaultPlan> {
        if self.memoize_all {
            None
        } else {
            self.ctx.faults.as_ref()
        }
    }

    /// Opens a fault-aware task scope for one node's work and runs `f`
    /// inside it.
    fn scoped<T>(&self, label: &str, node: NodeId, f: impl FnOnce() -> T) -> T {
        let scope = TaskScope::new(
            &self.ctx.metrics,
            label,
            Some(node as u64),
            self.ctx.resources.workers,
        )
        .with_faults(self.active_faults().cloned());
        enter_task_scope(scope, f)
    }

    /// Computes a node unconditionally (no cache lookup).
    fn compute(&self, node: NodeId) -> NodeOutput {
        *self.eval_counts.lock().entry(node).or_insert(0) += 1;
        let n = &self.graph.nodes[node];
        match &n.kind {
            NodeKind::RuntimeInput => NodeOutput::Data(
                self.runtime_input
                    .clone()
                    .expect("runtime input not bound; call with_runtime_input"),
            ),
            NodeKind::DataSource(data) => {
                let d = self
                    .source_overrides
                    .get(&node)
                    .cloned()
                    .unwrap_or_else(|| data.clone());
                NodeOutput::Data(d)
            }
            NodeKind::Transform(op) => {
                let inputs: Vec<AnyData> = n
                    .inputs
                    .iter()
                    .map(|&i| self.eval(i).data().clone())
                    .collect();
                let label = self.stage_label("transform", &n.label);
                let in_count = inputs.first().map_or(0, |d| d.stats().count);
                self.ctx.tracer.node_start(node, &label);
                let sim_mark = self.ctx.sim.mark();
                let span_mark = self.ctx.metrics.span_count();
                let start = std::time::Instant::now();
                // Task scope: every DistCollection operation inside the
                // operator emits per-partition spans attributed to this node.
                let out = self.scoped(&label, node, || {
                    self.ctx
                        .wall
                        .time(&label, in_count as u64, || op.apply_any(&inputs, &self.ctx))
                });
                let wall_secs = start.elapsed().as_secs_f64();
                self.charge_sim(node, &label, in_count, wall_secs);
                self.ctx.tracer.node_end(
                    node,
                    &label,
                    in_count,
                    out.total_bytes(),
                    wall_secs,
                    self.ctx.sim.seconds_since(sim_mark),
                );
                self.apply_recovery(node, &label, span_mark);
                NodeOutput::Data(out)
            }
            NodeKind::Estimate(op) => {
                let handles: Vec<NodeHandle<'_, 'g>> = n
                    .inputs
                    .iter()
                    .map(|&i| NodeHandle {
                        exec: self,
                        node: i,
                    })
                    .collect();
                let handle_refs: Vec<&dyn InputHandle> =
                    handles.iter().map(|h| h as &dyn InputHandle).collect();
                let label = self.stage_label("fit", &n.label);
                self.ctx.tracer.node_start(node, &label);
                let sim_mark = self.ctx.sim.mark();
                let sim_before = self.ctx.sim.total_seconds();
                let span_mark = self.ctx.metrics.span_count();
                let start = std::time::Instant::now();
                // Estimators re-enter the executor through lazy handles;
                // inner nodes push their own (innermost-wins) scope, so only
                // the fit's own collection work is attributed here. Inner
                // nodes likewise run their own recovery accounting.
                let model = self.scoped(&label, node, || {
                    self.ctx
                        .wall
                        .time(&label, 0, || op.fit_any(&handle_refs, &self.ctx))
                });
                let wall_secs = start.elapsed().as_secs_f64();
                // If the estimator didn't charge the simulated clock itself
                // (solvers do), fall back to the profiled estimate. The
                // record count comes from the profile's full-scale hint.
                let records = self
                    .profiles
                    .as_ref()
                    .and_then(|p| p.get(&node))
                    .map_or(0, |p| p.records_hint);
                if self.ctx.sim.total_seconds() == sim_before {
                    self.charge_sim(node, &label, records, wall_secs);
                }
                self.ctx.tracer.node_end(
                    node,
                    &label,
                    records,
                    0,
                    wall_secs,
                    self.ctx.sim.seconds_since(sim_mark),
                );
                self.apply_recovery(node, &label, span_mark);
                NodeOutput::Model(model)
            }
            NodeKind::ModelApply => {
                let model = self.eval(n.inputs[0]).model().clone();
                let data = self.eval(n.inputs[1]).data().clone();
                let label = self.stage_label("apply", &n.label);
                let in_count = data.stats().count;
                self.ctx.tracer.node_start(node, &label);
                let sim_mark = self.ctx.sim.mark();
                let span_mark = self.ctx.metrics.span_count();
                let start = std::time::Instant::now();
                let out = self.scoped(&label, node, || {
                    self.ctx.wall.time(&label, in_count as u64, || {
                        model.apply_any(&[data], &self.ctx)
                    })
                });
                let wall_secs = start.elapsed().as_secs_f64();
                self.charge_sim(node, &label, in_count, wall_secs);
                self.ctx.tracer.node_end(
                    node,
                    &label,
                    in_count,
                    out.total_bytes(),
                    wall_secs,
                    self.ctx.sim.seconds_since(sim_mark),
                );
                self.apply_recovery(node, &label, span_mark);
                NodeOutput::Data(out)
            }
        }
    }

    /// Charges the simulated clock: marginal profiled cost × records, spread
    /// over the cluster's workers. Unprofiled nodes (apply path, model-apply
    /// stages the profiler never sees) are priced on the same synthetic
    /// per-label scale as [`ExecutablePlan::est_apply_secs`], so every sim
    /// charge is a pure function of the plan and the record count — the
    /// simulated ledger never absorbs measured wall time.
    ///
    /// [`ExecutablePlan::est_apply_secs`]: crate::pipeline::ExecutablePlan::est_apply_secs
    fn charge_sim(&self, node: NodeId, label: &str, records: usize, _wall_secs: f64) {
        let Some(profiles) = &self.profiles else {
            return;
        };
        let w = self.ctx.resources.workers.max(1) as f64;
        match profiles.get(&node) {
            Some(p) => {
                let total = p.fixed_secs + p.secs_per_record * records as f64;
                self.ctx.sim.charge_seconds(label, total / w, 0.0);
            }
            None => {
                let total = crate::profiler::synthetic_node_secs(&self.graph.nodes[node], records);
                self.ctx.sim.charge_seconds(label, total / w, 0.0);
            }
        }
    }

    /// Accounts for the recovery work a node's execution incurred, reading
    /// the task spans recorded since `span_mark`. Runs on the driving thread
    /// after the node's own work (and its `NodeEnd` event), so the charges
    /// land in deterministic span order and never perturb the node's own
    /// `sim_secs`.
    ///
    /// Two recovery mechanisms are accounted here:
    ///
    /// * **Retries** — each failed attempt a task absorbed is charged its
    ///   exponential backoff under a `recovery:` sim stage and emitted as a
    ///   [`TraceEvent::TaskRetry`].
    /// * **Speculation** — within each parallel wave (spans sharing an
    ///   `op_seq`), per-partition busy time is compared against the wave
    ///   median; a partition past 2× the median (and past the plan's noise
    ///   floor) is assumed beaten by a median-speed speculative copy: its
    ///   spans are tagged `speculative` and the copy's runtime is charged
    ///   under a `speculative:` stage. Waves, not node-lifetime totals,
    ///   because a straggler in one pass of an iterative estimator washes
    ///   out when summed over the node's other passes.
    fn apply_recovery(&self, node: NodeId, label: &str, span_mark: usize) {
        let Some(faults) = self.active_faults() else {
            return;
        };
        let spans: Vec<_> = self
            .ctx
            .metrics
            .spans_from(span_mark)
            .into_iter()
            .filter(|s| s.stage_id == Some(node as u64))
            .collect();
        if spans.is_empty() {
            return;
        }

        // Retries: charge each failed attempt's backoff.
        let mut backoff_total = 0.0;
        let mut retries = 0u64;
        for s in &spans {
            for attempt in 0..s.retries {
                let backoff_secs = faults.backoff_secs(attempt);
                backoff_total += backoff_secs;
                retries += 1;
                self.ctx.tracer.record(TraceEvent::TaskRetry {
                    node,
                    partition: s.partition,
                    attempt,
                    backoff_secs,
                });
            }
        }
        if retries > 0 {
            self.ctx.metrics.inc_counter("faults.retries", retries);
            self.ctx
                .sim
                .charge_seconds(&format!("recovery:{label}"), backoff_total, 0.0);
        }

        // Speculation: within each parallel wave (one `op_seq` = one
        // collection operation fanned out over partitions), compare each
        // partition's busy time to that wave's median.
        let mut waves: BTreeMap<u64, BTreeMap<usize, f64>> = BTreeMap::new();
        for s in &spans {
            *waves
                .entry(s.op_seq)
                .or_default()
                .entry(s.partition)
                .or_insert(0.0) += s.duration_secs();
        }
        let floor_secs = faults.speculation_threshold_us() as f64 / 1e6;
        let mut copies_total = 0.0;
        let mut wins = 0u64;
        for (&op_seq, busy) in &waves {
            if busy.len() < 2 {
                continue;
            }
            let mut sorted: Vec<f64> = busy.values().copied().collect();
            sorted.sort_by(|a, b| a.partial_cmp(b).expect("durations are finite"));
            // Nearest-rank median, matching `MetricsRegistry::stage_skew`.
            let median = sorted[sorted.len().div_ceil(2) - 1];
            for (&partition, &original_secs) in busy {
                if original_secs > 2.0 * median && original_secs >= floor_secs {
                    let tagged = self.ctx.metrics.mark_speculative(
                        span_mark,
                        Some(node as u64),
                        op_seq,
                        partition,
                    );
                    debug_assert!(tagged > 0, "straggler partition has no spans");
                    copies_total += median;
                    wins += 1;
                    self.ctx.tracer.record(TraceEvent::SpeculativeWin {
                        node,
                        partition,
                        original_secs,
                        copy_secs: median,
                    });
                }
            }
        }
        if wins > 0 {
            self.ctx
                .metrics
                .inc_counter("faults.speculative_wins", wins);
            self.ctx
                .sim
                .charge_seconds(&format!("speculative:{label}"), copies_total, 0.0);
        }
    }
}

/// Lazy estimator input bound to an executor node: each `get` re-enters the
/// executor, so uncached upstream chains are genuinely recomputed per pass.
struct NodeHandle<'a, 'g> {
    exec: &'a Executor<'g>,
    node: NodeId,
}

impl InputHandle for NodeHandle<'_, '_> {
    fn get(&self) -> AnyData {
        self.exec.eval(self.node).data().clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operator::{Estimator, Transformer, TypedEstimator, TypedTransformer};
    use keystone_dataflow::cache::CachePolicy;
    use keystone_dataflow::collection::DistCollection;
    use std::collections::HashSet;
    use std::sync::atomic::{AtomicU64, Ordering};

    struct CountingDouble(Arc<AtomicU64>);
    impl Transformer<f64, f64> for CountingDouble {
        fn apply(&self, x: &f64) -> f64 {
            x * 2.0
        }
        fn apply_collection(
            &self,
            input: &DistCollection<f64>,
            _ctx: &ExecContext,
        ) -> DistCollection<f64> {
            self.0.fetch_add(1, Ordering::SeqCst);
            input.map(|x| x * 2.0)
        }
    }

    fn no_cache() -> Arc<CacheManager> {
        Arc::new(CacheManager::new(0, CachePolicy::Pinned(HashSet::new())))
    }

    fn big_cache() -> Arc<CacheManager> {
        Arc::new(CacheManager::new(
            u64::MAX,
            CachePolicy::Lru {
                admission_fraction: 1.0,
            },
        ))
    }

    fn chain_graph(calls: Arc<AtomicU64>) -> (Graph, NodeId, NodeId) {
        let mut g = Graph::new();
        let src = g.add(
            NodeKind::DataSource(AnyData::wrap(DistCollection::from_vec(
                vec![1.0, 2.0, 3.0],
                2,
            ))),
            vec![],
            "src",
        );
        let t = g.add(
            NodeKind::Transform(Arc::new(TypedTransformer::new(CountingDouble(calls)))),
            vec![src],
            "double",
        );
        (g, src, t)
    }

    #[test]
    fn eval_transform_chain() {
        let calls = Arc::new(AtomicU64::new(0));
        let (g, _src, t) = chain_graph(calls.clone());
        let exec = Executor::new(&g, ExecContext::default_cluster(), no_cache());
        let out = exec.eval(t);
        let v: DistCollection<f64> = out.data().downcast();
        assert_eq!(v.collect(), vec![2.0, 4.0, 6.0]);
        assert_eq!(calls.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn uncached_fanout_recomputes() {
        let calls = Arc::new(AtomicU64::new(0));
        let (g, _src, t) = chain_graph(calls.clone());
        let exec = Executor::new(&g, ExecContext::default_cluster(), no_cache());
        let _ = exec.eval(t);
        let _ = exec.eval(t);
        assert_eq!(calls.load(Ordering::SeqCst), 2, "no-cache must recompute");
        assert_eq!(exec.eval_count(t), 2);
    }

    #[test]
    fn cached_fanout_reuses() {
        let calls = Arc::new(AtomicU64::new(0));
        let (g, _src, t) = chain_graph(calls.clone());
        let exec = Executor::new(&g, ExecContext::default_cluster(), big_cache());
        let _ = exec.eval(t);
        let _ = exec.eval(t);
        assert_eq!(calls.load(Ordering::SeqCst), 1, "cache must serve reuse");
        assert_eq!(exec.eval_count(t), 1);
    }

    #[test]
    fn memoize_all_reuses_without_cache() {
        let calls = Arc::new(AtomicU64::new(0));
        let (g, _src, t) = chain_graph(calls.clone());
        let exec = Executor::new(&g, ExecContext::default_cluster(), no_cache()).memoize_all();
        let _ = exec.eval(t);
        let _ = exec.eval(t);
        assert_eq!(calls.load(Ordering::SeqCst), 1);
    }

    /// An estimator that reads its input `weight` times through the lazy
    /// handle, like the distributed solvers do.
    struct MultiPass {
        passes: u32,
    }
    impl Estimator<f64, f64> for MultiPass {
        fn fit(
            &self,
            _data: &DistCollection<f64>,
            _ctx: &ExecContext,
        ) -> Box<dyn Transformer<f64, f64>> {
            unreachable!("fit_lazy overridden")
        }
        fn fit_lazy(
            &self,
            data: &dyn Fn() -> DistCollection<f64>,
            _ctx: &ExecContext,
        ) -> Box<dyn Transformer<f64, f64>> {
            let mut total = 0.0;
            for _ in 0..self.passes {
                total += data().aggregate(0.0, |a, x| a + x, |a, b| a + b);
            }
            struct Add(f64);
            impl Transformer<f64, f64> for Add {
                fn apply(&self, x: &f64) -> f64 {
                    x + self.0
                }
            }
            Box::new(Add(total / self.passes as f64))
        }
        fn weight(&self) -> u32 {
            self.passes
        }
    }

    fn estimator_graph(calls: Arc<AtomicU64>, passes: u32) -> (Graph, NodeId) {
        let mut g = Graph::new();
        let src = g.add(
            NodeKind::DataSource(AnyData::wrap(DistCollection::from_vec(
                vec![1.0, 2.0, 3.0],
                2,
            ))),
            vec![],
            "src",
        );
        let t = g.add(
            NodeKind::Transform(Arc::new(TypedTransformer::new(CountingDouble(calls)))),
            vec![src],
            "double",
        );
        let e = g.add(
            NodeKind::Estimate(Arc::new(TypedEstimator::new(MultiPass { passes }))),
            vec![t],
            "multipass",
        );
        (g, e)
    }

    #[test]
    fn iterative_estimator_recomputes_uncached_input_per_pass() {
        let calls = Arc::new(AtomicU64::new(0));
        let (g, e) = estimator_graph(calls.clone(), 4);
        let exec = Executor::new(&g, ExecContext::default_cluster(), no_cache());
        let _ = exec.eval(e);
        assert_eq!(
            calls.load(Ordering::SeqCst),
            4,
            "uncached input must be recomputed once per pass"
        );
    }

    #[test]
    fn iterative_estimator_hits_cache_when_materialized() {
        let calls = Arc::new(AtomicU64::new(0));
        let (g, e) = estimator_graph(calls.clone(), 4);
        let exec = Executor::new(&g, ExecContext::default_cluster(), big_cache());
        let _ = exec.eval(e);
        assert_eq!(
            calls.load(Ordering::SeqCst),
            1,
            "materialized input must be computed once"
        );
    }

    #[test]
    fn model_memoized_within_run() {
        let calls = Arc::new(AtomicU64::new(0));
        let (g, e) = estimator_graph(calls.clone(), 1);
        let exec = Executor::new(&g, ExecContext::default_cluster(), no_cache());
        let m1 = exec.eval(e);
        let m2 = exec.eval(e);
        assert!(Arc::ptr_eq(m1.model(), m2.model()));
        assert_eq!(exec.eval_count(e), 1);
    }

    #[test]
    fn model_apply_node_runs_model() {
        let calls = Arc::new(AtomicU64::new(0));
        let (mut g, e) = estimator_graph(calls, 1);
        let input = g.add(NodeKind::RuntimeInput, vec![], "input");
        let apply = g.add(NodeKind::ModelApply, vec![e, input], "apply");
        let test = AnyData::wrap(DistCollection::from_vec(vec![0.0], 1));
        let exec =
            Executor::new(&g, ExecContext::default_cluster(), no_cache()).with_runtime_input(test);
        let out = exec.eval(apply);
        // Model adds mean of doubled [1,2,3] = 12/3... MultiPass computes
        // sum(=12)/passes(=1) = 12, so output = 0 + 12.
        let v: DistCollection<f64> = out.data().downcast();
        assert_eq!(v.collect(), vec![12.0]);
    }

    #[test]
    fn source_override_substitutes_sample() {
        let calls = Arc::new(AtomicU64::new(0));
        let (g, _src, t) = chain_graph(calls);
        let mut overrides = HashMap::new();
        overrides.insert(
            0usize,
            AnyData::wrap(DistCollection::from_vec(vec![10.0], 1)),
        );
        let exec = Executor::new(&g, ExecContext::default_cluster(), no_cache())
            .with_source_overrides(overrides);
        let v: DistCollection<f64> = exec.eval(t).data().downcast();
        assert_eq!(v.collect(), vec![20.0]);
    }

    #[test]
    #[should_panic(expected = "runtime input not bound")]
    fn unbound_runtime_input_panics() {
        let mut g = Graph::new();
        let input = g.add(NodeKind::RuntimeInput, vec![], "input");
        let exec = Executor::new(&g, ExecContext::default_cluster(), no_cache());
        let _ = exec.eval(input);
    }

    #[test]
    fn wall_clock_records_stages() {
        let calls = Arc::new(AtomicU64::new(0));
        let (g, _src, t) = chain_graph(calls);
        let ctx = ExecContext::default_cluster();
        let exec = Executor::new(&g, ctx.clone(), no_cache());
        let _ = exec.eval(t);
        assert!(ctx.wall.seconds_for_prefix("transform:double") >= 0.0);
        assert_eq!(ctx.wall.snapshot().len(), 1);
    }

    #[test]
    fn foreign_cache_value_recomputes_instead_of_panicking() {
        let calls = Arc::new(AtomicU64::new(0));
        let (g, _src, t) = chain_graph(calls.clone());
        let cache = big_cache();
        // Poison the node's cache slot with a value of the wrong type.
        assert!(cache.put(t as u64, Arc::new(123i32), 4));
        let exec = Executor::new(&g, ExecContext::default_cluster(), cache.clone());
        let v: DistCollection<f64> = exec.eval(t).data().downcast();
        assert_eq!(v.collect(), vec![2.0, 4.0, 6.0]);
        assert_eq!(calls.load(Ordering::SeqCst), 1, "lineage recompute ran");
        assert_eq!(cache.stats().invalidations, 1);
    }

    #[test]
    fn lost_cache_entry_recomputes_from_lineage() {
        use keystone_dataflow::faults::FaultSpec;
        let calls = Arc::new(AtomicU64::new(0));
        let (g, _src, t) = chain_graph(calls.clone());
        let ctx = ExecContext::default_cluster()
            .with_faults(FaultSpec::new(11).with_cache_loss(1.0).into_plan());
        // Observer wiring matches what `Pipeline::fit` sets up, so losses
        // surface as `CacheLost` trace events.
        let cache = Arc::new(
            CacheManager::new(
                u64::MAX,
                CachePolicy::Lru {
                    admission_fraction: 1.0,
                },
            )
            .with_observer(Arc::new(crate::trace::TraceCacheObserver(
                ctx.tracer.clone(),
            ))),
        );
        let exec = Executor::new(&g, ctx.clone(), cache);
        let _ = exec.eval(t);
        // The entry is resident but every probe loses it: re-evaluation must
        // recompute rather than panic, and still return the right data.
        let v: DistCollection<f64> = exec.eval(t).data().downcast();
        assert_eq!(v.collect(), vec![2.0, 4.0, 6.0]);
        assert_eq!(calls.load(Ordering::SeqCst), 2, "lost block recomputed");
        // Both resident entries (source and transform) are probed and lost.
        let losses = ctx
            .tracer
            .events()
            .iter()
            .filter(|e| matches!(e.event, TraceEvent::CacheLost { .. }))
            .count() as u64;
        assert_eq!(ctx.metrics.counter("faults.cache_losses"), losses);
        assert_eq!(losses, 2);
    }

    #[test]
    fn injected_failures_surface_as_retries_with_backoff() {
        use keystone_dataflow::faults::FaultSpec;
        let calls = Arc::new(AtomicU64::new(0));
        let (g, _src, t) = chain_graph(calls.clone());
        // Certain failure: every task absorbs the per-task cap (2 failures).
        let ctx = ExecContext::default_cluster()
            .with_faults(FaultSpec::new(5).with_task_failures(1.0).into_plan());
        let exec = Executor::new(&g, ctx.clone(), no_cache());
        let v: DistCollection<f64> = exec.eval(t).data().downcast();
        assert_eq!(v.collect(), vec![2.0, 4.0, 6.0], "faults changed results");
        // 2 partitions × 2 failed attempts each.
        let retries = ctx.metrics.counter("faults.retries");
        assert_eq!(retries, 4);
        let retry_events: Vec<_> = ctx
            .tracer
            .events()
            .into_iter()
            .filter_map(|e| match e.event {
                TraceEvent::TaskRetry {
                    attempt,
                    backoff_secs,
                    ..
                } => Some((attempt, backoff_secs)),
                _ => None,
            })
            .collect();
        assert_eq!(retry_events.len(), 4);
        // Exponential backoff: attempt 0 charges base, attempt 1 charges 2×.
        assert!(retry_events.iter().any(|(a, b)| *a == 0 && *b == 1.0));
        assert!(retry_events.iter().any(|(a, b)| *a == 1 && *b == 2.0));
        // Backoff landed on the simulated clock under a recovery stage.
        let recovery_secs: f64 = ctx
            .sim
            .entries()
            .iter()
            .filter(|e| e.stage.starts_with("recovery:"))
            .map(|e| e.exec_secs)
            .sum();
        assert!((recovery_secs - 6.0).abs() < 1e-9, "got {recovery_secs}");
        // Spans carry the retry counts.
        let spans = ctx.metrics.spans();
        assert_eq!(spans.iter().map(|s| u64::from(s.retries)).sum::<u64>(), 4);
    }

    #[test]
    fn fault_free_plan_changes_nothing() {
        use keystone_dataflow::faults::FaultSpec;
        let calls = Arc::new(AtomicU64::new(0));
        let (g, _src, t) = chain_graph(calls);
        let ctx = ExecContext::default_cluster().with_faults(FaultSpec::new(3).into_plan());
        let exec = Executor::new(&g, ctx.clone(), no_cache());
        let _ = exec.eval(t);
        assert_eq!(ctx.metrics.counter("faults.retries"), 0);
        assert_eq!(ctx.metrics.counter("faults.cache_losses"), 0);
        assert!(ctx.tracer.recovery_stats() == Default::default());
    }
}
