//! Executor behaviour under the LRU cache policy (the Fig. 10 baseline):
//! admission control, eviction-driven recomputation, and agreement with the
//! pinned-set policy on results.

use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use keystone_core::context::ExecContext;
use keystone_core::executor::Executor;
use keystone_core::graph::{Graph, NodeKind};
use keystone_core::operator::{AnyData, Transformer, TypedTransformer};
use keystone_dataflow::cache::{CacheManager, CachePolicy};
use keystone_dataflow::collection::DistCollection;

struct CountingAdd {
    calls: Arc<AtomicU64>,
    delta: f64,
}

impl Transformer<f64, f64> for CountingAdd {
    fn apply(&self, x: &f64) -> f64 {
        x + self.delta
    }
    fn apply_collection(
        &self,
        input: &DistCollection<f64>,
        _ctx: &ExecContext,
    ) -> DistCollection<f64> {
        self.calls.fetch_add(1, Ordering::SeqCst);
        let d = self.delta;
        input.map(move |x| x + d)
    }
}

/// src -> a -> b, with b requested repeatedly.
fn chain(calls_a: Arc<AtomicU64>, calls_b: Arc<AtomicU64>) -> (Graph, usize) {
    let mut g = Graph::new();
    let src = g.add(
        NodeKind::DataSource(AnyData::wrap(DistCollection::from_vec(vec![1.0f64; 64], 4))),
        vec![],
        "src",
    );
    let a = g.add(
        NodeKind::Transform(Arc::new(TypedTransformer::new(CountingAdd {
            calls: calls_a,
            delta: 1.0,
        }))),
        vec![src],
        "a",
    );
    let b = g.add(
        NodeKind::Transform(Arc::new(TypedTransformer::new(CountingAdd {
            calls: calls_b,
            delta: 10.0,
        }))),
        vec![a],
        "b",
    );
    (g, b)
}

#[test]
fn lru_with_room_caches_everything() {
    let (ca, cb) = (Arc::new(AtomicU64::new(0)), Arc::new(AtomicU64::new(0)));
    let (g, b) = chain(ca.clone(), cb.clone());
    let cache = Arc::new(CacheManager::new(
        1 << 20,
        CachePolicy::Lru {
            admission_fraction: 1.0,
        },
    ));
    let exec = Executor::new(&g, ExecContext::default_cluster(), cache);
    for _ in 0..5 {
        let _ = exec.eval(b);
    }
    assert_eq!(ca.load(Ordering::SeqCst), 1, "a must be computed once");
    assert_eq!(cb.load(Ordering::SeqCst), 1, "b must be computed once");
}

#[test]
fn lru_admission_control_blocks_large_objects() {
    let (ca, cb) = (Arc::new(AtomicU64::new(0)), Arc::new(AtomicU64::new(0)));
    let (g, b) = chain(ca.clone(), cb.clone());
    // Budget large, but admission fraction so small every dataset is
    // refused: behaves like no cache at all.
    let cache = Arc::new(CacheManager::new(
        1 << 20,
        CachePolicy::Lru {
            admission_fraction: 1e-9,
        },
    ));
    let exec = Executor::new(&g, ExecContext::default_cluster(), cache);
    for _ in 0..3 {
        let _ = exec.eval(b);
    }
    assert_eq!(
        ca.load(Ordering::SeqCst),
        3,
        "nothing admitted: a recomputed"
    );
    assert_eq!(
        cb.load(Ordering::SeqCst),
        3,
        "nothing admitted: b recomputed"
    );
}

#[test]
fn policies_agree_on_results() {
    let mk = || chain(Arc::new(AtomicU64::new(0)), Arc::new(AtomicU64::new(0)));
    let mut outputs = Vec::new();
    let policies: Vec<Arc<CacheManager>> = vec![
        Arc::new(CacheManager::new(0, CachePolicy::Pinned(HashSet::new()))),
        Arc::new(CacheManager::new(
            1 << 20,
            CachePolicy::Lru {
                admission_fraction: 1.0,
            },
        )),
        Arc::new(CacheManager::new(
            1 << 20,
            CachePolicy::Pinned([1u64, 2].into_iter().collect()),
        )),
    ];
    for cache in policies {
        let (g, b) = mk();
        let exec = Executor::new(&g, ExecContext::default_cluster(), cache);
        let out: DistCollection<f64> = exec.eval(b).data().downcast();
        outputs.push(out.collect());
    }
    assert_eq!(outputs[0], outputs[1]);
    assert_eq!(outputs[1], outputs[2]);
    assert!(outputs[0].iter().all(|&v| (v - 12.0).abs() < 1e-12));
}

#[test]
fn pinned_policy_only_caches_listed_nodes() {
    let (ca, cb) = (Arc::new(AtomicU64::new(0)), Arc::new(AtomicU64::new(0)));
    let (g, b) = chain(ca.clone(), cb.clone());
    // Pin only node 1 (a); b is recomputed per request but pulls the cached a.
    let cache = Arc::new(CacheManager::new(
        1 << 20,
        CachePolicy::Pinned([1u64].into_iter().collect()),
    ));
    let exec = Executor::new(&g, ExecContext::default_cluster(), cache);
    for _ in 0..4 {
        let _ = exec.eval(b);
    }
    assert_eq!(ca.load(Ordering::SeqCst), 1, "pinned a computed once");
    assert_eq!(cb.load(Ordering::SeqCst), 4, "unpinned b recomputed");
}
