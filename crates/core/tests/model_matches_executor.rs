//! Cross-validation of the §4.3 cost model against the real executor: the
//! `C(v)` recurrence in `MatProblem::exec_counts` must predict exactly how
//! many times the depth-first executor computes each node, for any cache
//! set — otherwise the materialization optimizer would be optimizing a
//! fiction.

use std::collections::HashSet;
use std::sync::Arc;

use keystone_core::context::ExecContext;
use keystone_core::executor::Executor;
use keystone_core::graph::{Graph, NodeKind};
use keystone_core::operator::{AnyData, Estimator, Transformer, TypedEstimator, TypedTransformer};
use keystone_core::optimizer::materialize::{MatNode, MatProblem};
use keystone_dataflow::cache::{CacheManager, CachePolicy};
use keystone_dataflow::collection::DistCollection;

struct Add(f64);
impl Transformer<f64, f64> for Add {
    fn apply(&self, x: &f64) -> f64 {
        x + self.0
    }
}

/// Estimator that pulls its input `passes` times (like the solvers).
struct MultiPass {
    passes: u32,
}
impl Estimator<f64, f64> for MultiPass {
    fn fit(
        &self,
        _data: &DistCollection<f64>,
        _ctx: &ExecContext,
    ) -> Box<dyn Transformer<f64, f64>> {
        unreachable!("fit_lazy overridden")
    }
    fn fit_lazy(
        &self,
        data: &dyn Fn() -> DistCollection<f64>,
        _ctx: &ExecContext,
    ) -> Box<dyn Transformer<f64, f64>> {
        let mut acc = 0.0;
        for _ in 0..self.passes {
            acc += data().aggregate(0.0, |a, x| a + x, |a, b| a + b);
        }
        Box::new(Add(acc))
    }
    fn weight(&self) -> u32 {
        self.passes
    }
}

/// Diamond + iterative estimator:
///   src -> a -> {b, c}; b,c -> join(estimator input via b only);
///   est(weight 3) over b; second estimator (weight 2) over c.
fn build() -> (Graph, Vec<usize>) {
    let mut g = Graph::new();
    let src = g.add(
        NodeKind::DataSource(AnyData::wrap(DistCollection::from_vec(vec![1.0f64; 8], 2))),
        vec![],
        "src",
    );
    let a = g.add(
        NodeKind::Transform(Arc::new(TypedTransformer::new(Add(1.0)))),
        vec![src],
        "a",
    );
    let b = g.add(
        NodeKind::Transform(Arc::new(TypedTransformer::new(Add(2.0)))),
        vec![a],
        "b",
    );
    let c = g.add(
        NodeKind::Transform(Arc::new(TypedTransformer::new(Add(3.0)))),
        vec![a],
        "c",
    );
    let e1 = g.add(
        NodeKind::Estimate(Arc::new(TypedEstimator::new(MultiPass { passes: 3 }))),
        vec![b],
        "est3",
    );
    let e2 = g.add(
        NodeKind::Estimate(Arc::new(TypedEstimator::new(MultiPass { passes: 2 }))),
        vec![c],
        "est2",
    );
    (g, vec![src, a, b, c, e1, e2])
}

fn problem_for(g: &Graph, sinks: &[usize]) -> MatProblem {
    let nodes = g
        .nodes
        .iter()
        .map(|n| {
            let (weight, always_cached) = match &n.kind {
                NodeKind::Estimate(op) => (op.weight(), true),
                NodeKind::DataSource(_) | NodeKind::RuntimeInput => (1, true),
                _ => (1, false),
            };
            MatNode {
                t_secs: 1.0,
                size_bytes: 1,
                weight,
                always_cached,
                inputs: n.inputs.clone(),
                label: n.label.clone(),
            }
        })
        .collect();
    MatProblem {
        nodes,
        sinks: sinks.to_vec(),
    }
}

fn check_cache_set(cache_ids: &[usize]) {
    let (g, ids) = build();
    let (e1, e2) = (ids[4], ids[5]);
    let problem = problem_for(&g, &[e1, e2]);
    let set: HashSet<usize> = cache_ids.iter().copied().collect();
    let predicted = problem.exec_counts(&set);

    let keys: HashSet<u64> = cache_ids.iter().map(|&v| v as u64).collect();
    let cache = Arc::new(CacheManager::new(1 << 20, CachePolicy::Pinned(keys)));
    let exec = Executor::new(&g, ExecContext::default_cluster(), cache);
    let _ = exec.eval(e1);
    let _ = exec.eval(e2);

    for (&id, &pred) in ids.iter().zip(predicted.iter()) {
        // Sources and model nodes are "always cached" in the model: their
        // predicted count is the number of *cost-bearing* executions (one),
        // while the executor's visit counter also counts free Arc clones.
        // The recurrence only has to be exact for recomputable nodes.
        if problem.nodes[id].always_cached {
            continue;
        }
        let actual = exec.eval_count(id) as f64;
        assert!(
            (actual - pred).abs() < 1e-9,
            "cache {:?}: node {} ({}) predicted {} executions, executor did {}",
            cache_ids,
            id,
            g.nodes[id].label,
            pred,
            actual
        );
    }
}

#[test]
fn model_matches_executor_without_cache() {
    // a is pulled 3 times via b and 2 times via c = 5 computations.
    check_cache_set(&[]);
}

#[test]
fn model_matches_executor_with_b_cached() {
    check_cache_set(&[2]);
}

#[test]
fn model_matches_executor_with_a_cached() {
    check_cache_set(&[1]);
}

#[test]
fn model_matches_executor_with_everything_cached() {
    check_cache_set(&[1, 2, 3]);
}

#[test]
fn model_matches_executor_on_greedy_choice() {
    let (g, ids) = build();
    let problem = problem_for(&g, &[ids[4], ids[5]]);
    let greedy: Vec<usize> = problem.greedy_cache_set(u64::MAX).into_iter().collect();
    check_cache_set(&greedy);
}
