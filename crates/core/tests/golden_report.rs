//! Golden-file tests for the [`PipelineReport`] renderers.
//!
//! The table and JSON forms are consumed by scripts and by CI artifact
//! diffing, so their exact shape — field order, column set (including the
//! `retry`/`spec`/`rec(s)` recovery columns), number formatting — is a
//! compatibility surface. These tests render a fully synthetic, fully
//! deterministic report and compare byte-for-byte against checked-in golden
//! files.
//!
//! To regenerate after an intentional format change:
//!
//! ```text
//! GOLDEN_UPDATE=1 cargo test -p keystone-core --test golden_report
//! ```

use std::sync::Arc;

use keystone_core::graph::{Graph, NodeKind};
use keystone_core::operator::{AnyData, ErasedTransformer, Transformer, TypedTransformer};
use keystone_core::optimizer::FusedMap;
use keystone_core::profiler::{NodeProfile, PipelineProfile};
use keystone_core::record::DataStats;
use keystone_core::report::PipelineReport;
use keystone_core::trace::{TraceEvent, Tracer};
use keystone_dataflow::collection::DistCollection;
use keystone_dataflow::metrics::{MetricsRegistry, TaskSpan};

fn golden_path(name: &str) -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name)
}

fn assert_matches_golden(name: &str, actual: &str) {
    let path = golden_path(name);
    if std::env::var("GOLDEN_UPDATE").is_ok() {
        std::fs::create_dir_all(path.parent().expect("golden dir")).expect("mkdir");
        std::fs::write(&path, actual).expect("write golden");
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); run with GOLDEN_UPDATE=1",
            path.display()
        )
    });
    assert_eq!(
        expected, actual,
        "{name} drifted from its golden file; if intentional, regenerate with \
         GOLDEN_UPDATE=1 cargo test -p keystone-core --test golden_report"
    );
}

/// A synthetic report exercising every column: a profiled, cache-hit node;
/// a node with retries, a speculative win, and a lost cache entry; and a
/// whole-stage fused node whose row carries its member list.
fn synthetic_report() -> PipelineReport {
    let mut g = Graph::new();
    let src = g.add(
        NodeKind::DataSource(AnyData::wrap(DistCollection::from_vec(vec![1.0f64; 4], 2))),
        vec![],
        "train-data",
    );
    let featurize = g.add(NodeKind::RuntimeInput, vec![src], "Featurize");
    let solve = g.add(NodeKind::RuntimeInput, vec![featurize], "Solve");

    // A real fused operator so the member-list column renders from the
    // operator itself, not a hand-written field.
    struct Normalize;
    impl Transformer<f64, f64> for Normalize {
        fn apply(&self, x: &f64) -> f64 {
            x / 255.0
        }
    }
    struct Center;
    impl Transformer<f64, f64> for Center {
        fn apply(&self, x: &f64) -> f64 {
            x - 0.5
        }
    }
    let members: Vec<(String, Arc<dyn ErasedTransformer>)> = vec![
        (
            "Normalize".into(),
            Arc::new(TypedTransformer::new(Normalize)),
        ),
        ("Center".into(), Arc::new(TypedTransformer::new(Center))),
    ];
    let fused_op = FusedMap::try_fuse(&members).expect("per-record members fuse");
    let fused = g.add(
        NodeKind::Transform(Arc::new(fused_op)),
        vec![solve],
        "Fused[Normalize+Center]",
    );

    let mut profile = PipelineProfile::default();
    for (node, fixed_secs, bytes_per_record) in
        [(featurize, 2.0, 8.0), (solve, 0.5, 4.0), (fused, 0.75, 8.0)]
    {
        profile.nodes.insert(
            node,
            NodeProfile {
                secs_per_record: 0.0,
                fixed_secs,
                out_bytes_per_record: bytes_per_record,
                out_records_per_in: 1.0,
                records_hint: 100,
                out_stats: DataStats {
                    count: 100,
                    bytes_per_record,
                    ..DataStats::empty()
                },
            },
        );
    }

    let t = Tracer::new();
    t.node_end(featurize, "Featurize", 100, 800, 1.0, 0.5);
    t.node_end(solve, "Solve", 100, 400, 0.5, 0.25);
    t.node_end(fused, "Fused[Normalize+Center]", 100, 800, 0.6, 0.3);
    t.record(TraceEvent::FusionMerge {
        node: fused,
        label: "Fused[Normalize+Center]".into(),
        members: vec!["Normalize".into(), "Center".into()],
    });
    t.record(TraceEvent::CacheMiss { node: featurize });
    t.record(TraceEvent::CacheHit { node: featurize });
    t.record(TraceEvent::CacheHit { node: featurize });
    t.record(TraceEvent::TaskRetry {
        node: solve,
        partition: 1,
        attempt: 0,
        backoff_secs: 1.0,
    });
    t.record(TraceEvent::SpeculativeWin {
        node: solve,
        partition: 3,
        original_secs: 5.0,
        copy_secs: 0.5,
    });
    t.record(TraceEvent::CacheLost { node: featurize });

    let m = MetricsRegistry::new();
    // Featurize: four even partitions. Solve: one 4x straggler. The fused
    // stage emits one even "fused" span wave — a single pass for the whole
    // chain.
    for (node, label, op, durations) in [
        (featurize, "Featurize", "map", [10u64, 10, 10, 10]),
        (solve, "Solve", "map", [10, 10, 10, 40]),
        (fused, "Fused[Normalize+Center]", "fused", [5, 5, 5, 5]),
    ] {
        for (p, dur) in durations.iter().enumerate() {
            m.record_span(TaskSpan {
                stage: label.into(),
                op,
                op_seq: 0,
                stage_id: Some(node as u64),
                partition: p,
                worker: p % 2,
                start_us: 0,
                end_us: *dur,
                items_in: 1,
                items_out: 1,
                bytes: 8,
                retries: 0,
                speculative: false,
            });
        }
    }

    PipelineReport::build_with_metrics(&g, &profile, &t, Some(&m))
}

#[test]
fn table_matches_golden() {
    assert_matches_golden("report_table.txt", &synthetic_report().render_table());
}

#[test]
fn json_matches_golden() {
    assert_matches_golden("report.json", &synthetic_report().to_json());
}

/// The golden surface itself: renderers must stay pure functions of the
/// report (two renders of the same report are byte-identical).
#[test]
fn renderers_are_deterministic() {
    let a = synthetic_report();
    let b = synthetic_report();
    assert_eq!(a.render_table(), b.render_table());
    assert_eq!(a.to_json(), b.to_json());
}
