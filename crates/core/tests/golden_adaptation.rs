//! Golden-file test for the [`FitReport::adaptation`] JSON wire format.
//!
//! The adaptation summary is a compatibility surface: the obs artifact
//! embeds it, the CI adaptive job diffs it, and external tooling parses
//! it. This test runs a deliberately mis-declared two-branch fit that
//! triggers exactly one mid-fit revision, then compares
//! [`AdaptationReport::to_json`] byte-for-byte against a checked-in
//! golden file.
//!
//! To regenerate after an intentional format change:
//!
//! ```text
//! GOLDEN_UPDATE=1 cargo test -p keystone-core --test golden_adaptation
//! ```
//!
//! [`FitReport::adaptation`]: keystone_core::pipeline::FitReport
//! [`AdaptationReport::to_json`]: keystone_core::optimizer::AdaptationReport::to_json

use keystone_core::context::ExecContext;
use keystone_core::operator::{Estimator, Transformer};
use keystone_core::optimizer::PipelineOptions;
use keystone_core::pipeline::{gather, Pipeline};
use keystone_core::profiler::ProfileOptions;
use keystone_dataflow::collection::DistCollection;

struct WideLift;
impl Transformer<Vec<f64>, Vec<f64>> for WideLift {
    fn apply(&self, x: &Vec<f64>) -> Vec<f64> {
        (0..16)
            .map(|j| x.iter().sum::<f64>() * (j + 1) as f64)
            .collect()
    }
}

struct SkewLift;
impl Transformer<Vec<f64>, Vec<f64>> for SkewLift {
    fn apply(&self, x: &Vec<f64>) -> Vec<f64> {
        (0..16).map(|j| x.iter().sum::<f64>() + j as f64).collect()
    }
}

struct MeanSub(Vec<f64>);
impl Transformer<Vec<f64>, Vec<f64>> for MeanSub {
    fn apply(&self, x: &Vec<f64>) -> Vec<f64> {
        x.iter().zip(&self.0).map(|(v, m)| v - m).collect()
    }
}

fn column_means(data: &DistCollection<Vec<f64>>) -> Vec<f64> {
    let rows = data.collect();
    let n = rows.len().max(1) as f64;
    let dim = rows.first().map(|r| r.len()).unwrap_or(0);
    let mut mu = vec![0.0; dim];
    for r in &rows {
        for (m, v) in mu.iter_mut().zip(r) {
            *m += v / n;
        }
    }
    mu
}

/// Declares 6 passes, converges after one — its cached input goes unpaid.
struct EagerSolver;
impl Estimator<Vec<f64>, Vec<f64>> for EagerSolver {
    fn fit(
        &self,
        data: &DistCollection<Vec<f64>>,
        _ctx: &ExecContext,
    ) -> Box<dyn Transformer<Vec<f64>, Vec<f64>>> {
        Box::new(MeanSub(column_means(data)))
    }

    fn weight(&self) -> u32 {
        6
    }
}

/// Declares one pass, iterates 5 — its input's demand exceeds the plan.
struct StubbornSolver;
impl Estimator<Vec<f64>, Vec<f64>> for StubbornSolver {
    fn fit(
        &self,
        data: &DistCollection<Vec<f64>>,
        _ctx: &ExecContext,
    ) -> Box<dyn Transformer<Vec<f64>, Vec<f64>>> {
        Box::new(MeanSub(column_means(data)))
    }

    fn fit_lazy(
        &self,
        data: &dyn Fn() -> DistCollection<Vec<f64>>,
        _ctx: &ExecContext,
    ) -> Box<dyn Transformer<Vec<f64>, Vec<f64>>> {
        let mut mu = Vec::new();
        for _ in 0..5 {
            mu = column_means(&data());
        }
        Box::new(MeanSub(mu))
    }
}

fn adaptive_fit() -> keystone_core::optimizer::AdaptationReport {
    let train = DistCollection::from_vec(
        (0..48)
            .map(|r| (0..8).map(|c| ((r * 13 + c) % 11) as f64).collect())
            .collect(),
        4,
    );
    let input = Pipeline::<Vec<f64>, Vec<f64>>::input();
    let stale = input.and_then(WideLift).and_then_est(EagerSolver, &train);
    let hot = input
        .and_then(SkewLift)
        .and_then_est(StubbornSolver, &train);
    let pipe = gather(&[stale, hot]);
    let ctx = ExecContext::default_cluster();
    let opts = PipelineOptions {
        profile: ProfileOptions {
            sizes: vec![8, 16],
            seed: 11,
            select_operators: false,
            deterministic_timing: true,
        },
        ..PipelineOptions::full()
    }
    .with_budget(20_000)
    .with_adaptive(true);
    let (_fitted, report) = pipe.fit(&ctx, &opts);
    report.adaptation
}

#[test]
fn adaptation_json_matches_golden_bytes() {
    let adaptation = adaptive_fit();
    // The fixture is only useful if it actually adapts.
    assert!(
        !adaptation.revisions.is_empty(),
        "fixture failed to trigger a revision"
    );
    let actual = adaptation.to_json();
    let path =
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden/adaptation.json");
    if std::env::var("GOLDEN_UPDATE").is_ok() {
        std::fs::create_dir_all(path.parent().expect("golden dir")).expect("mkdir");
        std::fs::write(&path, &actual).expect("write golden");
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); run with GOLDEN_UPDATE=1",
            path.display()
        )
    });
    assert_eq!(
        expected, actual,
        "AdaptationReport JSON drifted from its golden file; if intentional, \
         regenerate with GOLDEN_UPDATE=1 cargo test -p keystone-core --test \
         golden_adaptation"
    );
}

#[test]
fn adaptive_fit_is_deterministic_across_runs() {
    assert_eq!(adaptive_fit(), adaptive_fit());
}
