//! Executor-level observability: the tracer's view of an execution must
//! agree exactly with the cache manager's own statistics and with the
//! number of times operators really ran.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use keystone_core::context::ExecContext;
use keystone_core::executor::Executor;
use keystone_core::graph::{Graph, NodeKind};
use keystone_core::operator::{AnyData, Transformer, TypedTransformer};
use keystone_core::trace::{TraceCacheObserver, TraceEvent};
use keystone_dataflow::cache::{CacheManager, CachePolicy};
use keystone_dataflow::collection::DistCollection;

struct CountingAdd {
    calls: Arc<AtomicU64>,
    delta: f64,
}

impl Transformer<f64, f64> for CountingAdd {
    fn apply(&self, x: &f64) -> f64 {
        x + self.delta
    }
    fn apply_collection(
        &self,
        input: &DistCollection<f64>,
        _ctx: &ExecContext,
    ) -> DistCollection<f64> {
        self.calls.fetch_add(1, Ordering::SeqCst);
        let d = self.delta;
        input.map(move |x| x + d)
    }
}

/// src -> a -> b.
fn chain(calls_a: Arc<AtomicU64>, calls_b: Arc<AtomicU64>) -> (Graph, usize, usize) {
    let mut g = Graph::new();
    let src = g.add(
        NodeKind::DataSource(AnyData::wrap(DistCollection::from_vec(vec![1.0f64; 64], 4))),
        vec![],
        "src",
    );
    let a = g.add(
        NodeKind::Transform(Arc::new(TypedTransformer::new(CountingAdd {
            calls: calls_a,
            delta: 1.0,
        }))),
        vec![src],
        "a",
    );
    let b = g.add(
        NodeKind::Transform(Arc::new(TypedTransformer::new(CountingAdd {
            calls: calls_b,
            delta: 10.0,
        }))),
        vec![a],
        "b",
    );
    (g, a, b)
}

#[test]
fn tracer_counters_match_cache_manager_stats() {
    let (ca, cb) = (Arc::new(AtomicU64::new(0)), Arc::new(AtomicU64::new(0)));
    let (g, a, b) = chain(ca.clone(), cb.clone());
    let ctx = ExecContext::default_cluster();
    // Pin only `a`: b recomputes per request, pulling the cached a.
    let cache = Arc::new(
        CacheManager::new(
            1 << 20,
            CachePolicy::Pinned([a as u64].into_iter().collect()),
        )
        .with_observer(Arc::new(TraceCacheObserver(ctx.tracer.clone()))),
    );
    let exec = Executor::new(&g, ctx.clone(), cache.clone());
    let requests = 4;
    for _ in 0..requests {
        let _ = exec.eval(b);
    }

    // Counter consistency: every lookup is a hit or a miss, and the tracer
    // saw exactly the events the cache manager counted.
    let stats = cache.stats();
    let counters = ctx.tracer.cache_counters();
    let hits: u64 = counters.values().map(|c| c.hits).sum();
    let misses: u64 = counters.values().map(|c| c.misses).sum();
    let rejections: u64 = counters.values().map(|c| c.rejections).sum();
    assert_eq!(hits, stats.hits);
    assert_eq!(misses, stats.misses);
    assert_eq!(rejections, stats.rejected);
    // Every lookup is a hit or a miss: b once per request, a once per b
    // recomputation, src once for a's single computation.
    assert_eq!(hits + misses, 2 * requests as u64 + 1);
    // Pinned a: one miss then hits; everything else misses.
    assert_eq!(counters[&a].misses, 1);
    assert_eq!(counters[&a].hits, requests as u64 - 1);
    assert_eq!(counters[&b].misses, requests as u64);
    assert_eq!(counters[&b].hits, 0);
    // Operator call counts agree with the tracer's NodeEnd aggregation.
    let actuals = ctx.tracer.node_actuals();
    assert_eq!(actuals[&a].execs, ca.load(Ordering::SeqCst));
    assert_eq!(actuals[&b].execs, cb.load(Ordering::SeqCst));
    assert_eq!(actuals[&a].execs, 1);
    assert_eq!(actuals[&b].execs, requests as u64);
}

#[test]
fn oversized_intermediates_reach_tracer_as_reject_events() {
    let (ca, cb) = (Arc::new(AtomicU64::new(0)), Arc::new(AtomicU64::new(0)));
    let (g, a, b) = chain(ca, cb.clone());
    let ctx = ExecContext::default_cluster();
    // LRU with admission control: the 64-record f64 intermediates are ~512
    // bytes, far above admission_fraction × budget = 102 bytes, so every
    // put is refused at the admission gate and must surface as an
    // `on_reject` callback -> CacheReject trace event.
    let cache = Arc::new(
        CacheManager::new(
            1024,
            CachePolicy::Lru {
                admission_fraction: 0.1,
            },
        )
        .with_observer(Arc::new(TraceCacheObserver(ctx.tracer.clone()))),
    );
    let exec = Executor::new(&g, ctx.clone(), cache.clone());
    let requests = 3;
    for _ in 0..requests {
        let _ = exec.eval(b);
    }

    let stats = cache.stats();
    assert!(stats.rejected > 0, "admission gate never fired");
    assert_eq!(cache.used(), 0, "oversized object was admitted");
    assert!(cache.resident_keys().is_empty());

    // The tracer saw exactly the rejections the cache manager counted, on
    // the nodes that produced the oversized intermediates.
    let counters = ctx.tracer.cache_counters();
    let rejections: u64 = counters.values().map(|c| c.rejections).sum();
    assert_eq!(rejections, stats.rejected);
    assert!(counters[&a].rejections > 0);
    assert!(counters[&b].rejections > 0);
    let reject_events = ctx
        .tracer
        .events()
        .iter()
        .filter(|e| matches!(e.event, TraceEvent::CacheReject { .. }))
        .count() as u64;
    assert_eq!(reject_events, stats.rejected);

    // Nothing cacheable -> every request recomputes the whole chain.
    assert_eq!(counters[&b].hits, 0);
    assert_eq!(counters[&b].misses, requests as u64);
    assert_eq!(cb.load(Ordering::SeqCst), requests as u64);
}

#[test]
fn events_are_ordered_and_start_end_balanced() {
    let (ca, cb) = (Arc::new(AtomicU64::new(0)), Arc::new(AtomicU64::new(0)));
    let (g, _a, b) = chain(ca, cb);
    let ctx = ExecContext::default_cluster();
    let cache = Arc::new(
        CacheManager::new(0, CachePolicy::Pinned(Default::default()))
            .with_observer(Arc::new(TraceCacheObserver(ctx.tracer.clone()))),
    );
    let exec = Executor::new(&g, ctx.clone(), cache);
    let _ = exec.eval(b);

    let events = ctx.tracer.events();
    // Sequence numbers are dense and strictly increasing.
    for (i, e) in events.iter().enumerate() {
        assert_eq!(e.seq, i as u64);
    }
    // Every NodeEnd closes a prior NodeStart for the same node; all starts
    // are closed by the end of the run.
    let mut open: HashMap<usize, u64> = HashMap::new();
    for e in &events {
        match &e.event {
            TraceEvent::NodeStart { node, .. } => *open.entry(*node).or_insert(0) += 1,
            TraceEvent::NodeEnd { node, .. } => {
                let c = open.get_mut(node).expect("end without start");
                assert!(*c > 0, "NodeEnd without open NodeStart for node {node}");
                *c -= 1;
            }
            _ => {}
        }
    }
    assert!(
        open.values().all(|&c| c == 0),
        "unclosed NodeStart: {open:?}"
    );
    // A linear chain completes inputs before consumers.
    assert_eq!(
        ctx.tracer.completion_order(),
        vec!["transform:a", "transform:b"]
    );
}

#[test]
fn node_end_durations_are_nonnegative_and_finite() {
    let (ca, cb) = (Arc::new(AtomicU64::new(0)), Arc::new(AtomicU64::new(0)));
    let (g, _a, b) = chain(ca, cb);
    let ctx = ExecContext::default_cluster();
    let cache = Arc::new(
        CacheManager::new(0, CachePolicy::Pinned(Default::default()))
            .with_observer(Arc::new(TraceCacheObserver(ctx.tracer.clone()))),
    );
    let exec = Executor::new(&g, ctx.clone(), cache);
    let _ = exec.eval(b);
    let mut ends = 0;
    for e in ctx.tracer.events() {
        if let TraceEvent::NodeEnd {
            wall_secs,
            sim_secs,
            out_bytes,
            ..
        } = e.event
        {
            ends += 1;
            assert!(wall_secs.is_finite() && wall_secs >= 0.0);
            assert!(sim_secs.is_finite() && sim_secs >= 0.0);
            assert!(out_bytes > 0, "transforms produce data");
        }
    }
    assert_eq!(ends, 2);
}
