//! # keystone-workloads
//!
//! Synthetic dataset generators matching the statistical shapes of the
//! paper's evaluation workloads (Table 3). Real Amazon/TIMIT/ImageNet/VOC/
//! CIFAR data is not available in this environment; these generators
//! preserve what the optimizer and solvers actually react to — record
//! counts, dimensionality, sparsity, class counts — and plant a recoverable
//! signal so statistical performance is measurable.

pub mod dense_gen;
pub mod image_gen;
pub mod pipelines;
pub mod registry;
pub mod sweep;
pub mod text_gen;

pub use dense_gen::TimitLike;
pub use image_gen::ImageDatasetSpec;
pub use registry::{paper_datasets, DatasetCard};
pub use sweep::{sweep_pipelines, SweepConfig};
pub use text_gen::AmazonLike;
