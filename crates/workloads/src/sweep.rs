//! Hyperparameter-sweep workload: N pipeline variants over one shared
//! featurization-plus-base-model trunk.
//!
//! This is the regime the forest optimizer
//! ([`keystone_core::optimizer::fit_forest`]) targets: a sweep trains many
//! near-identical pipelines whose expensive prefix is byte-for-byte the
//! same plan region, while only a cheap head varies. The trunk here is the
//! TIMIT-style random-feature lift of [`crate::pipelines::speech_pipeline`]
//! followed by a full-budget base solve (a model-stacking preconditioner);
//! each variant then re-solves the base model's scores under its own ridge
//! parameter with a small iteration budget. Fitted independently, every
//! variant recomputes the lift *and* the base solve; fitted as a forest,
//! cross-pipeline CSE merges the trunk and the expensive base solve runs
//! once.
//!
//! All variants are built from **one** `Pipeline::input()` handle, so the
//! trunk is shared at the graph level (same nodes, same operator `Arc`s) —
//! exactly what repeated `and_then` calls in a real sweep loop produce.

use keystone_core::pipeline::{gather, Pipeline};
use keystone_dataflow::collection::DistCollection;
use keystone_ops::stats::RandomFeatures;
use keystone_solvers::solver_op::LinearSolverOp;

/// Configuration for the sweep: trunk shape plus the head grid.
#[derive(Debug, Clone)]
pub struct SweepConfig {
    /// Random-feature blocks merged with `gather` (the shared trunk).
    pub blocks: usize,
    /// Features per block.
    pub block_dim: usize,
    /// RBF bandwidth of the random-feature lift.
    pub gamma: f64,
    /// Seed for the random feature maps (shared by every variant).
    pub seed: u64,
    /// The shared base solve ending the trunk — deliberately given the
    /// full iteration budget, it dominates the simulated cost.
    pub trunk_solver: LinearSolverOp,
    /// Template for the per-variant head solve; `lambda` is overridden by
    /// each grid value. Kept cheap (few iterations) so the sweep's cost
    /// lives in the shared trunk, as in a real stacking sweep.
    pub head_solver: LinearSolverOp,
    /// Ridge-regularization grid — one pipeline variant per value.
    pub lambdas: Vec<f64>,
}

impl Default for SweepConfig {
    fn default() -> Self {
        SweepConfig {
            blocks: 3,
            block_dim: 24,
            gamma: 0.8,
            seed: 42,
            trunk_solver: LinearSolverOp::default(),
            head_solver: LinearSolverOp {
                lbfgs_iters: 2,
                ..LinearSolverOp::default()
            },
            lambdas: vec![1e-6, 1e-4, 1e-2, 1.0],
        }
    }
}

impl SweepConfig {
    /// Number of variants the grid produces.
    pub fn variants(&self) -> usize {
        self.lambdas.len()
    }
}

/// Builds the sweep: one shared trunk (random-feature lift + base solve),
/// then one variant per `lambda` in the grid, each ending in its own cheap
/// head solver over the base model's scores. The returned pipelines all
/// view the same underlying graph; pass them together to `fit_forest`
/// (sharing merges the trunk, so the base solve runs once) or fit each
/// alone (every fit pays for it).
pub fn sweep_pipelines(
    cfg: &SweepConfig,
    train: &DistCollection<Vec<f64>>,
    train_labels: &DistCollection<Vec<f64>>,
) -> Vec<Pipeline<Vec<f64>, Vec<f64>>> {
    assert!(!cfg.lambdas.is_empty(), "sweep needs at least one lambda");
    let input = Pipeline::<Vec<f64>, Vec<f64>>::input();
    let branches: Vec<Pipeline<Vec<f64>, Vec<f64>>> = (0..cfg.blocks)
        .map(|b| {
            input.and_then(RandomFeatures {
                out_dim: cfg.block_dim,
                gamma: cfg.gamma,
                seed: cfg.seed.wrapping_add(b as u64),
            })
        })
        .collect();
    let trunk = gather(&branches).and_then_optimizable_label_est::<Vec<f64>, Vec<f64>>(
        cfg.trunk_solver.clone(),
        train,
        train_labels,
    );
    cfg.lambdas
        .iter()
        .map(|&lambda| {
            trunk.and_then_optimizable_label_est::<Vec<f64>, Vec<f64>>(
                LinearSolverOp {
                    lambda,
                    ..cfg.head_solver.clone()
                },
                train,
                train_labels,
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense_gen::TimitLike;
    use keystone_solvers::logistic::one_hot;

    #[test]
    fn sweep_variants_share_one_graph() {
        let ds = TimitLike {
            n: 32,
            dim: 4,
            classes: 3,
            separation: 2.0,
            seed: 9,
            stream: 0,
            partitions: 1,
            quantize: Some(64),
        }
        .generate();
        let labels = one_hot(&ds.labels, 3);
        let cfg = SweepConfig::default();
        let tenants = sweep_pipelines(&cfg, &ds.data, &labels);
        assert_eq!(tenants.len(), cfg.variants());
        // Same graph object under every handle: equal node counts, and the
        // trunk (everything but the per-variant head solve + apply)
        // accounts for all sharing.
        let len = tenants[0].graph_snapshot().len();
        for t in &tenants[1..] {
            assert_eq!(t.graph_snapshot().len(), len);
        }
    }
}
