//! Synthetic image generators for the VOC / ImageNet / CIFAR-10-like
//! pipelines: each class is an oriented sinusoidal texture (distinct
//! frequency and orientation) plus noise. Texture classes exercise exactly
//! the features SIFT/convolution pipelines extract — gradient orientation
//! statistics — so pipeline accuracy is meaningfully above chance if and
//! only if the featurization works.

use keystone_dataflow::collection::DistCollection;
use keystone_linalg::rng::XorShiftRng;
use keystone_ops::image::Image;

/// Synthetic image dataset configuration.
#[derive(Debug, Clone)]
pub struct ImageDatasetSpec {
    /// Number of images.
    pub n: usize,
    /// Image edge (square images).
    pub size: usize,
    /// Channels (3 for VOC/ImageNet/CIFAR).
    pub channels: usize,
    /// Number of texture classes.
    pub classes: usize,
    /// Additive noise level relative to unit texture amplitude.
    pub noise: f64,
    /// RNG seed.
    pub seed: u64,
    /// Partitions.
    pub partitions: usize,
}

impl ImageDatasetSpec {
    /// VOC-like: small dataset of larger images, 20 classes.
    pub fn voc_like(n: usize, size: usize) -> Self {
        ImageDatasetSpec {
            n,
            size,
            channels: 3,
            classes: 20,
            noise: 0.4,
            seed: 0x0C,
            partitions: 8,
        }
    }

    /// CIFAR-like: 32×32×3, 10 classes.
    pub fn cifar_like(n: usize) -> Self {
        ImageDatasetSpec {
            n,
            size: 32,
            channels: 3,
            classes: 10,
            noise: 0.5,
            seed: 0xC1F,
            partitions: 8,
        }
    }

    /// ImageNet-like: many classes.
    pub fn imagenet_like(n: usize, size: usize, classes: usize) -> Self {
        ImageDatasetSpec {
            n,
            size,
            channels: 3,
            classes,
            noise: 0.4,
            seed: 0x1337,
            partitions: 8,
        }
    }

    fn class_params(&self, class: usize) -> (f64, f64, f64) {
        // Orientation in [0, π), frequency, phase-per-channel factor.
        let golden = 0.618_033_988_749_895;
        let orient = (class as f64 * golden) % 1.0 * std::f64::consts::PI;
        let freq = 0.2 + 0.6 * (((class as f64) * 0.37) % 1.0);
        let chan = 0.5 + ((class as f64 * 0.73) % 1.0);
        (orient, freq, chan)
    }

    /// Generates the dataset.
    pub fn generate(&self) -> ImageDataset {
        let mut rng = XorShiftRng::new(self.seed);
        let mut images = Vec::with_capacity(self.n);
        let mut labels = Vec::with_capacity(self.n);
        for _ in 0..self.n {
            let class = rng.next_usize(self.classes.max(1));
            let (orient, freq, chan) = self.class_params(class);
            let phase = rng.next_f64() * std::f64::consts::TAU;
            let (c, s) = (orient.cos(), orient.sin());
            let mut img = Image::zeros(self.size, self.size, self.channels);
            for ch in 0..self.channels {
                let ch_scale = 1.0 + chan * ch as f64 * 0.3;
                for y in 0..self.size {
                    for x in 0..self.size {
                        let t = freq * (c * x as f64 + s * y as f64) + phase;
                        let v = (t * ch_scale).sin() + self.noise * rng.next_gaussian();
                        img.set(x, y, ch, v);
                    }
                }
            }
            images.push(img);
            labels.push(class);
        }
        ImageDataset {
            images: DistCollection::from_vec(images, self.partitions),
            labels: DistCollection::from_vec(labels, self.partitions),
        }
    }

    /// Train/test split with an independent test stream.
    pub fn generate_split(&self, test_fraction: f64) -> (ImageDataset, ImageDataset) {
        let test_n = ((self.n as f64) * test_fraction).round() as usize;
        let train = ImageDatasetSpec {
            n: self.n - test_n,
            ..self.clone()
        }
        .generate();
        let test = ImageDatasetSpec {
            n: test_n,
            seed: self.seed ^ 0x7E57,
            ..self.clone()
        }
        .generate();
        (train, test)
    }
}

/// A generated labeled image dataset.
pub struct ImageDataset {
    /// The images.
    pub images: DistCollection<Image>,
    /// Class per image.
    pub labels: DistCollection<usize>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_and_determinism() {
        let spec = ImageDatasetSpec::cifar_like(20);
        let a = spec.generate();
        assert_eq!(a.images.count(), 20);
        let img = a.images.iter().next().expect("non-empty");
        assert_eq!(img.width(), 32);
        assert_eq!(img.channels(), 3);
        let b = spec.generate();
        assert_eq!(a.images.collect(), b.images.collect());
    }

    #[test]
    fn labels_in_range() {
        let ds = ImageDatasetSpec::voc_like(50, 24).generate();
        assert!(ds.labels.iter().all(|&l| l < 20));
    }

    #[test]
    fn classes_have_distinct_textures() {
        // Mean absolute horizontal gradient differs across orientations.
        let spec = ImageDatasetSpec {
            noise: 0.0,
            ..ImageDatasetSpec::cifar_like(40)
        };
        let ds = spec.generate();
        let images = ds.images.collect();
        let labels = ds.labels.collect();
        let grad_energy = |img: &Image| -> f64 {
            let mut e = 0.0;
            for y in 0..img.height() {
                for x in 1..img.width() {
                    e += (img.get(x, y, 0) - img.get(x - 1, y, 0)).abs();
                }
            }
            e
        };
        // Per-class energies must not all coincide.
        let mut per_class: std::collections::HashMap<usize, Vec<f64>> = Default::default();
        for (img, &l) in images.iter().zip(&labels) {
            per_class.entry(l).or_default().push(grad_energy(img));
        }
        let means: Vec<f64> = per_class
            .values()
            .map(|v| v.iter().sum::<f64>() / v.len() as f64)
            .collect();
        let max = means.iter().cloned().fold(f64::MIN, f64::max);
        let min = means.iter().cloned().fold(f64::MAX, f64::min);
        assert!(max > min * 1.05, "textures indistinct: {} vs {}", max, min);
    }

    #[test]
    fn split_counts() {
        let (train, test) = ImageDatasetSpec::cifar_like(50).generate_split(0.2);
        assert_eq!(train.images.count(), 40);
        assert_eq!(test.images.count(), 10);
    }
}
