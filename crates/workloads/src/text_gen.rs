//! Amazon-Reviews-like text generator: Zipfian vocabulary with
//! class-conditional sentiment words. Matches Table 3's shape knobs —
//! binary classes, sparse features (~0.1% density after featurization) —
//! at configurable scale.

use keystone_dataflow::collection::DistCollection;
use keystone_linalg::rng::{XorShiftRng, Zipf};

/// Generator configuration.
#[derive(Debug, Clone)]
pub struct AmazonLike {
    /// Number of documents.
    pub docs: usize,
    /// Neutral vocabulary size.
    pub vocab: usize,
    /// Sentiment-bearing words per class.
    pub sentiment_words: usize,
    /// Tokens per document (mean).
    pub doc_len: usize,
    /// Probability that a token is sentiment-bearing.
    pub sentiment_rate: f64,
    /// RNG seed.
    pub seed: u64,
    /// Partitions for the emitted collections.
    pub partitions: usize,
}

impl Default for AmazonLike {
    fn default() -> Self {
        AmazonLike {
            docs: 2_000,
            vocab: 5_000,
            sentiment_words: 50,
            doc_len: 40,
            sentiment_rate: 0.15,
            seed: 0xA11CE,
            partitions: 8,
        }
    }
}

/// A generated labeled text corpus.
pub struct TextDataset {
    /// Raw documents.
    pub docs: DistCollection<String>,
    /// Class per document (0 = negative, 1 = positive).
    pub labels: DistCollection<usize>,
}

impl AmazonLike {
    /// Convenience constructor for `docs` documents.
    pub fn with_docs(docs: usize) -> Self {
        AmazonLike {
            docs,
            ..Default::default()
        }
    }

    /// Generates the corpus.
    pub fn generate(&self) -> TextDataset {
        let mut rng = XorShiftRng::new(self.seed);
        let zipf = Zipf::new(self.vocab, 1.05);
        let mut docs = Vec::with_capacity(self.docs);
        let mut labels = Vec::with_capacity(self.docs);
        for _ in 0..self.docs {
            let class = rng.next_usize(2);
            let len = self.doc_len / 2 + rng.next_usize(self.doc_len.max(1));
            let mut words = Vec::with_capacity(len);
            for _ in 0..len {
                if rng.next_f64() < self.sentiment_rate {
                    let w = rng.next_usize(self.sentiment_words);
                    // Sentiment words are class-specific with 90%
                    // reliability (some noise keeps the task non-trivial).
                    let effective_class = if rng.next_f64() < 0.9 {
                        class
                    } else {
                        1 - class
                    };
                    words.push(if effective_class == 1 {
                        format!("good{}", w)
                    } else {
                        format!("bad{}", w)
                    });
                } else {
                    words.push(format!("w{}", zipf.sample(&mut rng)));
                }
            }
            docs.push(words.join(" "));
            labels.push(class);
        }
        TextDataset {
            docs: DistCollection::from_vec(docs, self.partitions),
            labels: DistCollection::from_vec(labels, self.partitions),
        }
    }

    /// Generates a train/test split (`test_fraction` of the documents go to
    /// the test side, using an independent stream).
    pub fn generate_split(&self, test_fraction: f64) -> (TextDataset, TextDataset) {
        let test_docs = ((self.docs as f64) * test_fraction).round() as usize;
        let train = AmazonLike {
            docs: self.docs - test_docs,
            ..self.clone()
        }
        .generate();
        let test = AmazonLike {
            docs: test_docs,
            seed: self.seed ^ 0x7E57,
            ..self.clone()
        }
        .generate();
        (train, test)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_and_determinism() {
        let cfg = AmazonLike::with_docs(100);
        let a = cfg.generate();
        let b = cfg.generate();
        assert_eq!(a.docs.count(), 100);
        assert_eq!(a.labels.count(), 100);
        assert_eq!(a.docs.collect(), b.docs.collect());
    }

    #[test]
    fn both_classes_present() {
        let ds = AmazonLike::with_docs(200).generate();
        let labels = ds.labels.collect();
        let pos = labels.iter().filter(|&&l| l == 1).count();
        assert!(pos > 50 && pos < 150, "class balance off: {}", pos);
    }

    #[test]
    fn sentiment_words_correlate_with_class() {
        let ds = AmazonLike::with_docs(300).generate();
        let docs = ds.docs.collect();
        let labels = ds.labels.collect();
        let mut good_in_pos = 0usize;
        let mut good_in_neg = 0usize;
        for (doc, &label) in docs.iter().zip(&labels) {
            let goods = doc.matches("good").count();
            if label == 1 {
                good_in_pos += goods;
            } else {
                good_in_neg += goods;
            }
        }
        assert!(
            good_in_pos > good_in_neg * 3,
            "signal too weak: {} vs {}",
            good_in_pos,
            good_in_neg
        );
    }

    #[test]
    fn split_sizes() {
        let (train, test) = AmazonLike::with_docs(100).generate_split(0.2);
        assert_eq!(train.docs.count(), 80);
        assert_eq!(test.docs.count(), 20);
    }

    #[test]
    fn vocabulary_is_zipfian() {
        // The most common neutral word should dwarf the tail.
        let ds = AmazonLike::with_docs(500).generate();
        let mut counts = std::collections::HashMap::new();
        for doc in ds.docs.iter() {
            for w in doc.split(' ') {
                if w.starts_with('w') {
                    *counts.entry(w.to_string()).or_insert(0usize) += 1;
                }
            }
        }
        let max = counts.values().max().copied().unwrap_or(0);
        let median = {
            let mut v: Vec<usize> = counts.values().copied().collect();
            v.sort_unstable();
            v[v.len() / 2]
        };
        assert!(
            max > median * 10,
            "not Zipf-like: max {} median {}",
            max,
            median
        );
    }
}
