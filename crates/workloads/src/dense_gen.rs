//! TIMIT-like dense vector generator: 440-dimensional records drawn from
//! per-class Gaussian clusters (147 phoneme classes in the paper), plus a
//! YouTube-8M-like variant (1024-dim, many classes).

use keystone_dataflow::collection::DistCollection;
use keystone_linalg::rng::XorShiftRng;

/// Dense clustered-vector generator.
#[derive(Debug, Clone)]
pub struct TimitLike {
    /// Records.
    pub n: usize,
    /// Feature dimensionality (440 for TIMIT frames).
    pub dim: usize,
    /// Classes (147 phoneme labels in the paper).
    pub classes: usize,
    /// Cluster separation (centroid norm relative to unit noise).
    pub separation: f64,
    /// RNG seed (fixes the class centroids AND the default sample stream).
    pub seed: u64,
    /// Sample-stream selector: records are drawn from stream `stream`;
    /// centroids depend only on `seed`, so different streams (train/test)
    /// share the same class structure.
    pub stream: u64,
    /// Partitions.
    pub partitions: usize,
    /// Value grid: when `Some(q)`, every generated value is rounded to the
    /// nearest multiple of `1/q`. The differential-testing harness uses this
    /// to produce data whose derived statistics print compactly and survive
    /// exact (bitwise) output comparison across configurations.
    pub quantize: Option<u32>,
}

impl Default for TimitLike {
    fn default() -> Self {
        TimitLike {
            n: 2_000,
            dim: 440,
            classes: 147,
            separation: 3.0,
            seed: 0x7131,
            stream: 0,
            partitions: 8,
            quantize: None,
        }
    }
}

/// A generated dense labeled dataset.
pub struct DenseDataset {
    /// Feature vectors.
    pub data: DistCollection<Vec<f64>>,
    /// Class per record.
    pub labels: DistCollection<usize>,
}

impl TimitLike {
    /// `n` records with `classes` classes at dimension `dim`.
    pub fn new(n: usize, dim: usize, classes: usize) -> Self {
        TimitLike {
            n,
            dim,
            classes,
            ..Default::default()
        }
    }

    /// Deterministic class centroid (derived, not stored — O(1) memory for
    /// any class count).
    fn centroid(&self, class: usize, j: usize) -> f64 {
        let mut rng = XorShiftRng::new(
            self.seed ^ (class as u64).wrapping_mul(0x9E3779B97F4A7C15) ^ j as u64,
        );
        rng.next_gaussian() * self.separation / (self.dim as f64).sqrt()
    }

    /// Snaps a value to the configured grid (identity when `quantize` is
    /// unset or zero).
    fn snap(&self, v: f64) -> f64 {
        match self.quantize {
            Some(q) if q > 0 => (v * q as f64).round() / q as f64,
            _ => v,
        }
    }

    /// Generates the dataset.
    pub fn generate(&self) -> DenseDataset {
        let mut rng = XorShiftRng::new(self.seed ^ self.stream.wrapping_mul(0xD1B54A32D192ED03));
        let mut data = Vec::with_capacity(self.n);
        let mut labels = Vec::with_capacity(self.n);
        for _ in 0..self.n {
            let class = rng.next_usize(self.classes.max(1));
            let x: Vec<f64> = (0..self.dim)
                .map(|j| self.snap(self.centroid(class, j) * self.separation + rng.next_gaussian()))
                .collect();
            data.push(x);
            labels.push(class);
        }
        DenseDataset {
            data: DistCollection::from_vec(data, self.partitions),
            labels: DistCollection::from_vec(labels, self.partitions),
        }
    }

    /// Train/test split with an independent test stream.
    pub fn generate_split(&self, test_fraction: f64) -> (DenseDataset, DenseDataset) {
        let test_n = ((self.n as f64) * test_fraction).round() as usize;
        let train = TimitLike {
            n: self.n - test_n,
            ..self.clone()
        }
        .generate();
        let test = TimitLike {
            n: test_n,
            stream: self.stream.wrapping_add(1),
            ..self.clone()
        }
        .generate();
        (train, test)
    }
}

/// YouTube-8M-like configuration (pre-featurized 1024-dim vectors, many
/// classes) — §5.2's final comparison.
pub fn youtube_like(n: usize, classes: usize) -> TimitLike {
    TimitLike {
        n,
        dim: 1024,
        classes,
        separation: 2.0,
        seed: 0x7088,
        stream: 0,
        partitions: 8,
        quantize: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes() {
        let ds = TimitLike::new(200, 32, 10).generate();
        assert_eq!(ds.data.count(), 200);
        assert!(ds.data.iter().all(|x| x.len() == 32));
        assert!(ds.labels.iter().all(|&l| l < 10));
    }

    #[test]
    fn deterministic() {
        let cfg = TimitLike::new(50, 16, 4);
        assert_eq!(cfg.generate().data.collect(), cfg.generate().data.collect());
    }

    #[test]
    fn classes_are_separable() {
        // Same-class records must be closer to their centroid than to other
        // centroids on average: nearest-centroid accuracy well above chance.
        let cfg = TimitLike {
            separation: 4.0,
            ..TimitLike::new(300, 40, 5)
        };
        let ds = cfg.generate();
        let data = ds.data.collect();
        let labels = ds.labels.collect();
        let mut correct = 0;
        for (x, &label) in data.iter().zip(&labels) {
            let best = (0..5)
                .min_by(|&a, &b| {
                    let da: f64 = x
                        .iter()
                        .enumerate()
                        .map(|(j, v)| (v - cfg.centroid(a, j) * cfg.separation).powi(2))
                        .sum();
                    let db: f64 = x
                        .iter()
                        .enumerate()
                        .map(|(j, v)| (v - cfg.centroid(b, j) * cfg.separation).powi(2))
                        .sum();
                    da.partial_cmp(&db).expect("finite")
                })
                .expect("classes");
            if best == label {
                correct += 1;
            }
        }
        let acc = correct as f64 / data.len() as f64;
        assert!(acc > 0.8, "nearest-centroid accuracy {}", acc);
    }

    #[test]
    fn split_is_disjoint_streams() {
        let (train, test) = TimitLike::new(100, 8, 3).generate_split(0.3);
        assert_eq!(train.data.count(), 70);
        assert_eq!(test.data.count(), 30);
        // Streams differ (same centroids, different noise draws).
        assert_ne!(train.data.take(1), test.data.take(1));
    }

    #[test]
    fn quantize_snaps_to_grid_and_is_partition_invariant() {
        let cfg = TimitLike {
            quantize: Some(64),
            ..TimitLike::new(80, 6, 3)
        };
        let ds = cfg.generate();
        for x in ds.data.iter() {
            for &v in x {
                let scaled = v * 64.0;
                assert!(
                    (scaled - scaled.round()).abs() < 1e-9,
                    "value {v} not on the 1/64 grid"
                );
            }
        }
        // Re-partitioning changes chunking, never content or order.
        let repart = TimitLike {
            partitions: 3,
            ..cfg.clone()
        }
        .generate();
        assert_eq!(ds.data.collect(), repart.data.collect());
        assert_eq!(ds.labels.collect(), repart.labels.collect());
    }

    #[test]
    fn youtube_shape() {
        let ds = youtube_like(50, 20).generate();
        assert!(ds.data.iter().all(|x| x.len() == 1024));
    }
}
