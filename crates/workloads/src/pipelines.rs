//! Canonical pipeline builders for the paper's applications (Table 4),
//! shared by the examples, integration tests, and the benchmark harness.
//!
//! | Pipeline | Operators (Table 4) |
//! |---|---|
//! | Amazon text | Trim, LowerCase, Tokenizer, NGrams, CommonSparseFeatures, LogisticRegression/LinearSolver |
//! | TIMIT speech | RandomFeatures ×B, Pipeline.gather, LinearSolver |
//! | VOC / ImageNet image | GrayScale, SIFT, PCA, GMM+FisherVector, Normalize, LinearSolver |
//! | CIFAR-10 image | PatchExtractor/ZCA (filters), Convolver, SymmetricRectifier, Pooler, LinearSolver |

use keystone_core::operator::Transformer;
use keystone_core::pipeline::{gather, Pipeline};
use keystone_dataflow::collection::DistCollection;
use keystone_ops::image::{
    Convolver, FilterBank, GrayScale, Image, ImageVectorizer, Pooler, Sift, SymmetricRectifier,
};
use keystone_ops::stats::{
    DescriptorPca, FisherVectorEstimator, RandomFeatures, SignedPowerNormalizer,
};
use keystone_ops::text::{CommonSparseFeatures, LowerCase, NGrams, Tokenizer, Trim};
use keystone_solvers::logistic::one_hot;
use keystone_solvers::solver_op::LinearSolverOp;

/// Converts class labels to one-hot vectors (re-exported convenience).
pub fn labels_one_hot(labels: &DistCollection<usize>, classes: usize) -> DistCollection<Vec<f64>> {
    one_hot(labels, classes)
}

/// Configuration for the Amazon-style text pipeline (Fig. 2).
#[derive(Debug, Clone)]
pub struct TextPipelineConfig {
    /// Vocabulary cap for `CommonSparseFeatures`.
    pub max_features: usize,
    /// N-gram upper bound.
    pub max_ngram: usize,
    /// Solver configuration.
    pub solver: LinearSolverOp,
}

impl Default for TextPipelineConfig {
    fn default() -> Self {
        TextPipelineConfig {
            max_features: 100_000,
            max_ngram: 2,
            solver: LinearSolverOp::new(),
        }
    }
}

/// Builds the Fig. 2 text-classification pipeline over bound training data.
pub fn text_classification_pipeline(
    cfg: &TextPipelineConfig,
    train_docs: &DistCollection<String>,
    train_labels: &DistCollection<Vec<f64>>,
) -> Pipeline<String, Vec<f64>> {
    Pipeline::<String, String>::input()
        .and_then(Trim)
        .and_then(LowerCase)
        .and_then(Tokenizer)
        .and_then(NGrams::new(1, cfg.max_ngram))
        .and_then_est(CommonSparseFeatures::new(cfg.max_features), train_docs)
        .and_then_optimizable_label_est::<Vec<f64>, Vec<f64>>(
            cfg.solver.clone(),
            train_docs,
            train_labels,
        )
}

/// Configuration for the TIMIT-style kernel-SVM pipeline (§5.1).
#[derive(Debug, Clone)]
pub struct SpeechPipelineConfig {
    /// Random-feature blocks merged with `gather`.
    pub blocks: usize,
    /// Features per block.
    pub block_dim: usize,
    /// RBF bandwidth.
    pub gamma: f64,
    /// Solver configuration.
    pub solver: LinearSolverOp,
    /// Seed for the random feature maps.
    pub seed: u64,
}

impl Default for SpeechPipelineConfig {
    fn default() -> Self {
        SpeechPipelineConfig {
            blocks: 4,
            block_dim: 128,
            gamma: 0.1,
            solver: LinearSolverOp::new(),
            seed: 0x5117,
        }
    }
}

/// Builds the TIMIT-style pipeline: several random-feature blocks gathered
/// into one feature vector, then the optimizable linear solver.
pub fn speech_pipeline(
    cfg: &SpeechPipelineConfig,
    train: &DistCollection<Vec<f64>>,
    train_labels: &DistCollection<Vec<f64>>,
) -> Pipeline<Vec<f64>, Vec<f64>> {
    let input = Pipeline::<Vec<f64>, Vec<f64>>::input();
    let branches: Vec<Pipeline<Vec<f64>, Vec<f64>>> = (0..cfg.blocks)
        .map(|b| {
            input.and_then(RandomFeatures {
                out_dim: cfg.block_dim,
                gamma: cfg.gamma,
                seed: cfg.seed.wrapping_add(b as u64),
            })
        })
        .collect();
    gather(&branches).and_then_optimizable_label_est::<Vec<f64>, Vec<f64>>(
        cfg.solver.clone(),
        train,
        train_labels,
    )
}

/// Configuration for the VOC/ImageNet-style Fisher-vector pipeline
/// (Fig. 5 / Fig. 11).
#[derive(Debug, Clone)]
pub struct ImagePipelineConfig {
    /// SIFT patch edge.
    pub sift_patch: usize,
    /// SIFT stride.
    pub sift_stride: usize,
    /// PCA output dimensionality for descriptors.
    pub pca_dims: usize,
    /// GMM components for the Fisher vector.
    pub gmm_k: usize,
    /// Solver configuration.
    pub solver: LinearSolverOp,
}

impl Default for ImagePipelineConfig {
    fn default() -> Self {
        ImagePipelineConfig {
            sift_patch: 16,
            sift_stride: 8,
            pca_dims: 16,
            gmm_k: 8,
            solver: LinearSolverOp::new(),
        }
    }
}

/// Builds the Fig. 5 image pipeline: GrayScale → SIFT → PCA →
/// GMM/FisherVector → signed-power Normalize → LinearSolver.
pub fn image_classification_pipeline(
    cfg: &ImagePipelineConfig,
    train: &DistCollection<Image>,
    train_labels: &DistCollection<Vec<f64>>,
) -> Pipeline<Image, Vec<f64>> {
    Pipeline::<Image, Image>::input()
        .and_then(GrayScale)
        .and_then(Sift {
            patch: cfg.sift_patch,
            stride: cfg.sift_stride,
        })
        .and_then_est(DescriptorPca::new(cfg.pca_dims), train)
        .and_then_est(FisherVectorEstimator::new(cfg.gmm_k), train)
        .and_then(SignedPowerNormalizer::default())
        .and_then_optimizable_label_est::<Vec<f64>, Vec<f64>>(
            cfg.solver.clone(),
            train,
            train_labels,
        )
}

/// Configuration for the CIFAR-style convolutional pipeline.
#[derive(Debug, Clone)]
pub struct CifarPipelineConfig {
    /// Convolution filter count.
    pub filters: usize,
    /// Filter edge.
    pub filter_size: usize,
    /// Pooling cell edge.
    pub pool: usize,
    /// Solver configuration.
    pub solver: LinearSolverOp,
    /// Filter-bank seed.
    pub seed: u64,
}

impl Default for CifarPipelineConfig {
    fn default() -> Self {
        CifarPipelineConfig {
            filters: 16,
            filter_size: 5,
            pool: 14,
            solver: LinearSolverOp::new(),
            seed: 0xC1F,
        }
    }
}

/// Builds the CIFAR-style pipeline: Convolver (optimizable) →
/// SymmetricRectifier → Pooler → vectorize → LinearSolver.
pub fn cifar_pipeline(
    cfg: &CifarPipelineConfig,
    train: &DistCollection<Image>,
    train_labels: &DistCollection<Vec<f64>>,
) -> Pipeline<Image, Vec<f64>> {
    let bank = FilterBank::random(cfg.filters, cfg.filter_size, cfg.seed);
    Pipeline::<Image, Image>::input()
        .and_then_optimizable(Convolver::new(bank, 3))
        .and_then(SymmetricRectifier { alpha: 0.25 })
        .and_then(Pooler::new(cfg.pool))
        .and_then(ImageVectorizer)
        .and_then_optimizable_label_est::<Vec<f64>, Vec<f64>>(
            cfg.solver.clone(),
            train,
            train_labels,
        )
}

/// Argmax over a score collection: predictions as class indices.
pub fn predictions(scores: &DistCollection<Vec<f64>>) -> Vec<usize> {
    let clf = keystone_solvers::linear_map::MaxClassifier;
    scores.iter().map(|s| clf.apply(s)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::text_gen::AmazonLike;

    #[test]
    fn text_pipeline_builds_expected_dag() {
        let ds = AmazonLike::with_docs(20).generate();
        let labels = labels_one_hot(&ds.labels, 2);
        let pipe = text_classification_pipeline(
            &TextPipelineConfig {
                max_features: 100,
                ..Default::default()
            },
            &ds.docs,
            &labels,
        );
        // Input + 4 transformers + (cloned prefix over source) + est nodes.
        assert!(
            pipe.graph_len() >= 10,
            "graph has {} nodes",
            pipe.graph_len()
        );
        let dot = pipe.to_dot();
        assert!(dot.contains("Tokenizer"));
        assert!(dot.contains("CommonSparseFeatures"));
        assert!(dot.contains("LinearSolver"));
    }

    #[test]
    fn speech_pipeline_gathers_blocks() {
        let data = DistCollection::from_vec(vec![vec![0.1, 0.2]; 10], 2);
        let labels = DistCollection::from_vec(vec![vec![1.0, 0.0]; 10], 2);
        let pipe = speech_pipeline(
            &SpeechPipelineConfig {
                blocks: 3,
                block_dim: 8,
                ..Default::default()
            },
            &data,
            &labels,
        );
        assert!(pipe.to_dot().contains("Gather"));
    }
}
