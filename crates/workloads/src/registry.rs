//! Table 3 as data: the paper's dataset characteristics, used by the
//! benchmark harness both to print the table and to parameterize the cost
//! models at *paper scale* (the optimizer reasons about full-scale numbers
//! even though actual execution uses scaled-down synthetic data).

/// One row of Table 3.
#[derive(Debug, Clone)]
pub struct DatasetCard {
    /// Dataset name.
    pub name: &'static str,
    /// Training records.
    pub num_train: u64,
    /// Raw training size in GB.
    pub train_gb: f64,
    /// Test records.
    pub num_test: u64,
    /// Classes.
    pub classes: usize,
    /// Record type description.
    pub record_type: &'static str,
    /// Features at the solve stage.
    pub solve_features: usize,
    /// Density of the solve-stage features (1.0 = dense).
    pub solve_density: f64,
    /// Solve-stage size in GB.
    pub solve_gb: f64,
}

impl DatasetCard {
    /// Average non-zeros per record at the solve stage.
    pub fn solve_nnz(&self) -> f64 {
        self.solve_features as f64 * self.solve_density
    }
}

/// The six Table 3 rows.
pub fn paper_datasets() -> Vec<DatasetCard> {
    vec![
        DatasetCard {
            name: "Amazon",
            num_train: 65_000_000,
            train_gb: 13.97,
            num_test: 18_091_702,
            classes: 2,
            record_type: "text",
            solve_features: 100_000,
            solve_density: 0.001,
            solve_gb: 89.1,
        },
        DatasetCard {
            name: "TIMIT",
            num_train: 2_251_569,
            train_gb: 7.5,
            num_test: 115_934,
            classes: 147,
            record_type: "440-dim vector",
            solve_features: 528_000,
            solve_density: 1.0,
            solve_gb: 8857.0,
        },
        DatasetCard {
            name: "ImageNet",
            num_train: 1_281_167,
            train_gb: 74.0,
            num_test: 50_000,
            classes: 1000,
            record_type: "10k pixels image",
            solve_features: 262_144,
            solve_density: 1.0,
            solve_gb: 2502.0,
        },
        DatasetCard {
            name: "VOC",
            num_train: 5_000,
            train_gb: 0.428,
            num_test: 5_000,
            classes: 20,
            record_type: "260k pixels image",
            solve_features: 40_960,
            solve_density: 1.0,
            solve_gb: 1.52,
        },
        DatasetCard {
            name: "CIFAR-10",
            num_train: 500_000,
            train_gb: 0.5,
            num_test: 10_000,
            classes: 10,
            record_type: "1024 pixels image",
            solve_features: 135_168,
            solve_density: 1.0,
            solve_gb: 62.9,
        },
        DatasetCard {
            name: "Youtube8m",
            num_train: 5_786_881,
            train_gb: 22.07,
            num_test: 1_652_167,
            classes: 4800,
            record_type: "1024-dim vector",
            solve_features: 1024,
            solve_density: 1.0,
            solve_gb: 44.15,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn six_rows_like_the_paper() {
        let cards = paper_datasets();
        assert_eq!(cards.len(), 6);
        assert_eq!(cards[0].name, "Amazon");
        assert_eq!(cards[1].classes, 147);
    }

    #[test]
    fn amazon_is_sparse_others_dense() {
        let cards = paper_datasets();
        assert!(cards[0].solve_density < 0.01);
        assert!((cards[0].solve_nnz() - 100.0).abs() < 1e-9);
        assert!(cards.iter().skip(1).all(|c| c.solve_density == 1.0));
    }

    #[test]
    fn solve_sizes_exceed_raw_sizes_for_featurized_data() {
        // "intermediate state may grow by orders of magnitude".
        let cards = paper_datasets();
        let timit = &cards[1];
        assert!(timit.solve_gb > timit.train_gb * 100.0);
    }
}
