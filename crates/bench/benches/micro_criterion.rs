//! Criterion micro-benchmarks for the computational kernels everything
//! else is built on: GEMM, QR, SVD/TSVD, FFT convolution, sparse products.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use keystone_linalg::dense::DenseMatrix;
use keystone_linalg::fft::{convolve_fft, correlate2d_fft};
use keystone_linalg::gemm::{gram, matmul, matmul_parallel};
use keystone_linalg::qr::lstsq;
use keystone_linalg::rng::XorShiftRng;
use keystone_linalg::sparse::{CsrMatrix, SparseVector};
use keystone_linalg::svd::svd;
use keystone_linalg::tsvd::{truncated_svd, TsvdOptions};

fn rand_matrix(rows: usize, cols: usize, seed: u64) -> DenseMatrix {
    let mut rng = XorShiftRng::new(seed);
    DenseMatrix::from_fn(rows, cols, |_, _| rng.next_gaussian())
}

fn bench_gemm(c: &mut Criterion) {
    let a = rand_matrix(128, 128, 1);
    let b = rand_matrix(128, 128, 2);
    let mut g = c.benchmark_group("gemm");
    g.sample_size(20);
    g.bench_function("matmul_128", |bch| bch.iter(|| matmul(&a, &b)));
    g.bench_function("matmul_parallel_128", |bch| {
        bch.iter(|| matmul_parallel(&a, &b))
    });
    g.bench_function("gram_512x64", |bch| {
        let m = rand_matrix(512, 64, 3);
        bch.iter(|| gram(&m))
    });
    g.finish();
}

fn bench_decompositions(c: &mut Criterion) {
    let mut g = c.benchmark_group("decompositions");
    g.sample_size(10);
    let a = rand_matrix(256, 48, 4);
    let b = rand_matrix(256, 4, 5);
    g.bench_function("lstsq_256x48", |bch| {
        bch.iter_batched(|| (a.clone(), b.clone()), |(a, b)| lstsq(&a, &b), BatchSize::SmallInput)
    });
    let m = rand_matrix(96, 48, 6);
    g.bench_function("svd_96x48", |bch| bch.iter(|| svd(&m)));
    let big = rand_matrix(512, 128, 7);
    g.bench_function("tsvd_512x128_k8", |bch| {
        bch.iter(|| truncated_svd(&big, 8, TsvdOptions::default()))
    });
    g.finish();
}

fn bench_fft(c: &mut Criterion) {
    let mut g = c.benchmark_group("fft");
    g.sample_size(30);
    let mut rng = XorShiftRng::new(8);
    let signal: Vec<f64> = (0..4096).map(|_| rng.next_gaussian()).collect();
    let kernel: Vec<f64> = (0..64).map(|_| rng.next_gaussian()).collect();
    g.bench_function("convolve_fft_4096x64", |bch| {
        bch.iter(|| convolve_fft(&signal, &kernel))
    });
    let img: Vec<f64> = (0..64 * 64).map(|_| rng.next_gaussian()).collect();
    let filt: Vec<f64> = (0..11 * 11).map(|_| rng.next_gaussian()).collect();
    g.bench_function("correlate2d_fft_64_k11", |bch| {
        bch.iter(|| correlate2d_fft(&img, 64, &filt, 11))
    });
    g.finish();
}

fn bench_sparse(c: &mut Criterion) {
    let mut g = c.benchmark_group("sparse");
    g.sample_size(30);
    let mut rng = XorShiftRng::new(9);
    let rows: Vec<SparseVector> = (0..2_000)
        .map(|_| {
            SparseVector::from_pairs(
                10_000,
                (0..20)
                    .map(|_| (rng.next_usize(10_000) as u32, rng.next_gaussian()))
                    .collect(),
            )
        })
        .collect();
    let csr = CsrMatrix::from_rows(&rows);
    let x: Vec<f64> = (0..10_000).map(|_| rng.next_gaussian()).collect();
    g.bench_function("csr_matvec_2000x10000_nnz20", |bch| {
        bch.iter(|| csr.matvec(&x))
    });
    let y: Vec<f64> = (0..2_000).map(|_| rng.next_gaussian()).collect();
    g.bench_function("csr_tr_matvec", |bch| bch.iter(|| csr.tr_matvec(&y)));
    g.finish();
}

criterion_group!(benches, bench_gemm, bench_decompositions, bench_fft, bench_sparse);
criterion_main!(benches);
