//! Figure 9: end-to-end impact of the optimization levels — None,
//! whole-pipeline only (`Pipe Only`), and full KeystoneML — on the text
//! (Amazon-like), speech (TIMIT-like) and image (VOC-like) pipelines, with
//! the per-stage breakdown (Optimize / Featurize / Solve / Eval).
//!
//! The paper's shape: Amazon gains ~7× from whole-pipeline caching alone
//! (featurized data reused across solver iterations); TIMIT gains mostly
//! from solver selection; VOC from both.

use keystone_bench::{print_table, save_json, secs, time_once};
use keystone_core::context::ExecContext;
use keystone_core::optimizer::{OptLevel, PipelineOptions};
use keystone_core::profiler::ProfileOptions;
use keystone_solvers::logistic::one_hot;
use keystone_solvers::solver_op::LinearSolverOp;
use keystone_workloads::image_gen::ImageDatasetSpec;
use keystone_workloads::pipelines::{
    image_classification_pipeline, speech_pipeline, text_classification_pipeline,
    ImagePipelineConfig, SpeechPipelineConfig, TextPipelineConfig,
};
use keystone_workloads::{AmazonLike, TimitLike};

fn levels() -> Vec<(&'static str, PipelineOptions)> {
    let base = PipelineOptions {
        profile: ProfileOptions {
            sizes: vec![96, 192],
            ..Default::default()
        },
        ..Default::default()
    };
    vec![
        (
            "none",
            PipelineOptions {
                level: OptLevel::None,
                ..base.clone()
            },
        ),
        (
            "pipe-only",
            PipelineOptions {
                level: OptLevel::PipeOnly,
                ..base.clone()
            },
        ),
        ("keystoneml", base),
    ]
}

fn breakdown(ctx: &ExecContext, optimize: f64, total: f64) -> (f64, f64, f64) {
    let solve = ctx.wall.seconds_for_prefix("fit:LinearSolver");
    let featurize = (total - optimize - solve).max(0.0);
    (optimize, featurize, solve)
}

fn main() {
    let mut rows = Vec::new();

    // --- Amazon-like text (iterative solver + expensive featurization). ---
    let (train, test) = AmazonLike::with_docs(1_500).generate_split(0.2);
    let labels = one_hot(&train.labels, 2);
    let cfg = TextPipelineConfig {
        max_features: 2_000,
        // Force the iterative solver so caching matters, mirroring the
        // paper's Amazon configuration (L-BFGS).
        solver: LinearSolverOp {
            lbfgs_iters: 15,
            ..Default::default()
        },
        ..Default::default()
    };
    for (name, opts) in levels() {
        let pipe = text_classification_pipeline(&cfg, &train.docs, &labels);
        let ctx = ExecContext::calibrated(8);
        let ((fitted, report), fit_secs) = time_once(|| pipe.fit(&ctx, &opts));
        let (opt, feat, solve) = breakdown(&ctx, report.optimize_secs, fit_secs);
        let (_, eval_secs) = time_once(|| fitted.apply(&test.docs, &ctx));
        rows.push(vec![
            "amazon".into(),
            name.into(),
            secs(opt),
            secs(feat),
            secs(solve),
            secs(eval_secs),
            secs(fit_secs + eval_secs),
        ]);
    }

    // --- TIMIT-like speech. ---
    let (train, test) = TimitLike {
        separation: 4.0,
        ..TimitLike::new(1_200, 32, 12)
    }
    .generate_split(0.2);
    let labels = one_hot(&train.labels, 12);
    let cfg = SpeechPipelineConfig {
        blocks: 2,
        block_dim: 96,
        gamma: 0.08,
        ..Default::default()
    };
    for (name, opts) in levels() {
        let pipe = speech_pipeline(&cfg, &train.data, &labels);
        let ctx = ExecContext::calibrated(8);
        let ((fitted, report), fit_secs) = time_once(|| pipe.fit(&ctx, &opts));
        let (opt, feat, solve) = breakdown(&ctx, report.optimize_secs, fit_secs);
        let (_, eval_secs) = time_once(|| fitted.apply(&test.data, &ctx));
        rows.push(vec![
            "timit".into(),
            name.into(),
            secs(opt),
            secs(feat),
            secs(solve),
            secs(eval_secs),
            secs(fit_secs + eval_secs),
        ]);
    }

    // --- VOC-like images. ---
    let (train, test) = ImageDatasetSpec {
        classes: 4,
        ..ImageDatasetSpec::voc_like(120, 32)
    }
    .generate_split(0.2);
    let labels = one_hot(&train.labels, 4);
    let cfg = ImagePipelineConfig {
        pca_dims: 10,
        gmm_k: 4,
        ..Default::default()
    };
    for (name, opts) in levels() {
        let pipe = image_classification_pipeline(&cfg, &train.images, &labels);
        let ctx = ExecContext::calibrated(8);
        let ((fitted, report), fit_secs) = time_once(|| pipe.fit(&ctx, &opts));
        let (opt, feat, solve) = breakdown(&ctx, report.optimize_secs, fit_secs);
        let (_, eval_secs) = time_once(|| fitted.apply(&test.images, &ctx));
        rows.push(vec![
            "voc".into(),
            name.into(),
            secs(opt),
            secs(feat),
            secs(solve),
            secs(eval_secs),
            secs(fit_secs + eval_secs),
        ]);
    }

    print_table(
        "Fig 9: optimization levels, stage breakdown",
        &["pipeline", "level", "optimize", "featurize", "solve", "eval", "total"],
        &rows,
    );
    save_json("fig9_opt_levels", &rows);
    println!(
        "\nExpected shape: 'none' pays repeated featurization inside the iterative\n\
         solver; 'pipe-only' removes it via materialization; 'keystoneml' adds\n\
         operator selection (solver/PCA/convolver choices)."
    );
}
