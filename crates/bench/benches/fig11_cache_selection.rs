//! Figure 11: which nodes the greedy materialization strategy selects on
//! the VOC pipeline, at a generous and at a tight memory budget. The paper
//! shows the cache set shrinking from {SIFT, ReduceDimensions, Normalize,
//! TrainingLabels} at 80 GB/node to {Normalize, TrainingLabels} at 5 GB.

use keystone_bench::save_json;
use keystone_core::context::ExecContext;
use keystone_core::optimizer::{OptLevel, PipelineOptions};
use keystone_core::profiler::ProfileOptions;
use keystone_solvers::logistic::one_hot;
use keystone_solvers::solver_op::LinearSolverOp;
use keystone_workloads::image_gen::ImageDatasetSpec;
use keystone_workloads::pipelines::{image_classification_pipeline, ImagePipelineConfig};

fn main() {
    let classes = 4;
    let ds = ImageDatasetSpec {
        classes,
        ..ImageDatasetSpec::voc_like(120, 32)
    }
    .generate();
    let labels = one_hot(&ds.labels, classes);
    let cfg = ImagePipelineConfig {
        pca_dims: 10,
        gmm_k: 4,
        solver: LinearSolverOp {
            lbfgs_iters: 15,
            ..Default::default()
        },
        ..Default::default()
    };

    let mut saved = Vec::new();
    for (label, budget) in [
        ("unconstrained (80GB/node-like)", u64::MAX / 4),
        ("tight (5GB/node-like)", 300u64 << 10),
    ] {
        let pipe = image_classification_pipeline(&cfg, &ds.images, &labels);
        let ctx = ExecContext::calibrated(8);
        // PipeOnly keeps the configured iterative solver (weight 15): the
        // experiment studies the cache-set choice for the pipeline the
        // paper shows, not operator selection.
        let opts = PipelineOptions {
            level: OptLevel::PipeOnly,
            profile: ProfileOptions {
                sizes: vec![64, 128],
                ..Default::default()
            },
            ..Default::default()
        }
        .with_budget(budget);
        let (_, report) = pipe.fit(&ctx, &opts);
        println!("\n=== Fig 11: budget = {} ===", label);
        println!("cached nodes: {:?}", report.cache_set_labels);
        saved.push((label.to_string(), report.cache_set_labels.clone()));
        if budget < u64::MAX / 8 {
            // Also dump the annotated DAG for the tight case.
            let dir = std::path::Path::new("target/keystone-experiments");
            let _ = std::fs::create_dir_all(dir);
            let _ = std::fs::write(dir.join("fig11_voc_dag.dot"), &report.dot);
            println!("[DAG with cache set highlighted written to target/keystone-experiments/fig11_voc_dag.dot]");
        }
    }
    save_json("fig11_cache_selection", &saved);
    println!(
        "\nExpected shape: the unconstrained set includes the large featurized\n\
         outputs feeding the iterative solver; the tight budget keeps only the\n\
         small late-pipeline outputs (the paper's Normalize + TrainingLabels)."
    );
}
