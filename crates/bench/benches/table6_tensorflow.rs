//! Table 6: time to 84% accuracy on CIFAR-10 — synchronous minibatch SGD
//! (TensorFlow-style, strong and weak scaling) vs KeystoneML's
//! communication-avoiding solver, across 1–32 nodes.
//!
//! This is a paper-scale cost-model projection. Constants are calibrated
//! once against the paper's **1-node** measurements (TF 184 min, KeystoneML
//! 235 min); every other cell then follows from the cost model:
//!
//! * sync SGD pays, per step, minibatch-conv-net compute (`/w`) plus a model
//!   synchronization whose straggler-amplified barrier grows with `w` —
//!   which is what makes its curve bottom out and turn around;
//! * weak scaling keeps per-step compute constant and stops converging once
//!   the global batch passes ~2k examples (the paper's xxx entries);
//! * KeystoneML's solve is one communication-avoiding sweep whose compute
//!   scales `/w` against a small non-parallelizable driver fraction.
//!
//! The convergence dynamics themselves (sync SGD does reach the target on a
//! scaled problem; chunked runs resume deterministically) are exercised by
//! the unit tests in `keystone_solvers::sgd`.

use keystone_bench::{print_table, save_json};
use keystone_dataflow::cluster::ClusterProfile;
use keystone_solvers::cost::{block_solve_cost, SolveShape};

/// Conv-net forward+backward FLOPs per example (order of the paper's CIFAR
/// model; calibrated with `STEPS_STRONG` to the 1-node 184 min).
const FLOPS_PER_EXAMPLE: f64 = 5.0e8;
/// SGD steps to 84% with the fixed 128-image batch.
const STEPS_STRONG: usize = 4_000;
/// SGD steps to 84% in the weak regime while it still converges (larger
/// batches need slightly fewer steps).
const STEPS_WEAK: usize = 2_900;
/// Straggler / parameter-server congestion amplification per node.
const STRAGGLER: f64 = 0.3;
/// Model parameters synchronized each step.
const MODEL_PARAMS: f64 = 1.0e6;
/// Non-parallelizable driver fraction of the KeystoneML pipeline (minutes),
/// calibrated to the paper's 1-node run.
const KS_DRIVER_MINUTES: f64 = 22.0;

fn sgd_minutes(steps: usize, workers: usize, minibatch: usize) -> f64 {
    let r = ClusterProfile::R3_4xlarge.descriptor(workers);
    let w = workers as f64;
    let per_step_compute = FLOPS_PER_EXAMPLE * minibatch as f64 / (w * r.gflops_per_worker);
    let per_step_coord = 8.0 * MODEL_PARAMS * w.log2().max(1.0) / r.net_bandwidth
        + r.barrier_latency_secs * (1.0 + STRAGGLER * w);
    steps as f64 * (per_step_compute + per_step_coord) / 60.0
}

fn main() {
    // CIFAR at paper scale (Table 3: 500k augmented examples, 135k conv
    // features, 10 classes) for the KeystoneML solve.
    let cifar = SolveShape::new(500_000, 135_168, 10, None);

    let workers = [1usize, 2, 4, 8, 16, 32];
    let mut table = Vec::new();
    for &w in &workers {
        let strong = Some(sgd_minutes(STEPS_STRONG, w, 128));
        // Weak scaling: global batch 128·w; past ~2k examples per batch the
        // paper's runs stopped converging to a good model.
        let weak = if 128 * w <= 1024 {
            Some(sgd_minutes(if w == 1 { STEPS_STRONG } else { STEPS_WEAK }, w, 128 * w))
        } else {
            None
        };
        let r = ClusterProfile::R3_4xlarge.descriptor(w);
        let ks_minutes = block_solve_cost(&cifar, 1, 2048, &r).estimated_seconds(&r) / 60.0
            + KS_DRIVER_MINUTES;
        let fmt = |t: Option<f64>| t.map_or("xxx".to_string(), |m| format!("{:.0}", m));
        table.push(vec![
            format!("{}", w),
            fmt(strong),
            fmt(weak),
            format!("{:.0}", ks_minutes),
        ]);
    }
    print_table(
        "Table 6: simulated minutes to 84% accuracy (xxx = no convergence)",
        &["nodes", "sgd-strong", "sgd-weak", "keystoneml"],
        &table,
    );
    save_json("table6_tensorflow", &table);
    println!(
        "\nPaper:      TF-strong 184/90/57/67/122/292 | TF-weak 184/135/135/114/xxx/xxx\n\
         \u{20}           KeystoneML 235/125/69/43/32/29  (1/2/4/8/16/32 nodes)\n\
         Expected shape here: sgd-strong bottoms out around 4-8 nodes then\n\
         degrades; sgd-weak flat then xxx; keystoneml keeps improving and wins\n\
         from ~8 nodes on."
    );
}
