//! Ablations of the two optimizer design choices DESIGN.md calls out:
//!
//! 1. **Greedy vs optimal materialization** — the paper rejects the exact
//!    ILP as too slow and asserts greedy "works efficiently and accurately
//!    in practice" without measuring it. We measure both: solution quality
//!    (runtime of the chosen cache set vs the exhaustive optimum) and
//!    planner cost, over random pipeline DAGs.
//! 2. **Always-X solver vs cost-based selection** — §3 claims poor physical
//!    operator selection costs up to 260×. We compute, over the Fig. 6
//!    paper-scale grid, the regret of fixing each solver everywhere versus
//!    letting the cost model choose.

use std::time::Instant;

use keystone_bench::{print_table, save_json};
use keystone_core::optimizer::materialize::{MatNode, MatProblem};
use keystone_dataflow::cluster::ClusterProfile;
use keystone_solvers::cost::{
    block_solve_cost, dist_qr_cost, lbfgs_cost, local_qr_cost, SolveShape, INFEASIBLE,
};

fn random_problem(n: usize, seed: u64) -> MatProblem {
    let mut state = seed.max(1);
    let mut next = move || {
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        state.wrapping_mul(0x2545F4914F6CDD1D)
    };
    let mut nodes = vec![MatNode {
        t_secs: 0.0,
        size_bytes: 0,
        weight: 1,
        always_cached: true,
        inputs: vec![],
        label: "src".into(),
    }];
    for i in 1..n {
        let mut inputs = vec![next() as usize % i];
        if next() % 3 == 0 && i > 1 {
            inputs.push(next() as usize % i);
        }
        inputs.sort_unstable();
        inputs.dedup();
        nodes.push(MatNode {
            t_secs: (next() % 1000) as f64 / 100.0,
            size_bytes: 1 + next() % 1000,
            weight: 1 + (next() % 5) as u32,
            always_cached: false,
            inputs,
            label: format!("n{}", i),
        });
    }
    MatProblem {
        nodes,
        sinks: vec![n - 1],
    }
}

fn main() {
    // ---- Ablation 1: greedy vs exhaustive optimal. ----
    let mut gaps = Vec::new();
    let mut greedy_time = 0.0;
    let mut optimal_time = 0.0;
    let trials = 300;
    for seed in 1..=trials {
        let n = 4 + (seed as usize % 12); // 4..15 nodes
        let p = random_problem(n, seed * 7919);
        let budget = 200 + (seed % 20) * 150;
        let t0 = Instant::now();
        let g = p.est_runtime(&p.greedy_cache_set(budget));
        greedy_time += t0.elapsed().as_secs_f64();
        let t1 = Instant::now();
        let o = p.est_runtime(&p.optimal_cache_set(budget));
        optimal_time += t1.elapsed().as_secs_f64();
        gaps.push(if o > 0.0 { g / o } else { 1.0 });
    }
    gaps.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let optimal_hits = gaps.iter().filter(|&&g| g < 1.0 + 1e-9).count();
    let rows = vec![vec![
        format!("{}", trials),
        format!("{:.1}%", 100.0 * optimal_hits as f64 / trials as f64),
        format!("{:.3}x", gaps[(gaps.len() as f64 * 0.5) as usize]),
        format!("{:.3}x", gaps[(gaps.len() as f64 * 0.95) as usize]),
        format!("{:.3}x", gaps[gaps.len() - 1]),
        format!("{:.2}ms", greedy_time * 1e3 / trials as f64),
        format!("{:.2}ms", optimal_time * 1e3 / trials as f64),
    ]];
    print_table(
        "Ablation 1: greedy vs exhaustive-optimal materialization (random DAGs, 4-15 nodes)",
        &[
            "dags", "optimal%", "p50 gap", "p95 gap", "max gap", "greedy t", "exhaust t",
        ],
        &rows,
    );
    save_json("ablation_greedy_vs_optimal", &rows);

    // ---- Ablation 2: fixed solver vs cost-based selection. ----
    let r16 = ClusterProfile::R3_4xlarge.descriptor(16);
    let shapes: Vec<(String, SolveShape)> = [1024usize, 4096, 16384, 65536]
        .iter()
        .flat_map(|&d| {
            vec![
                (
                    format!("amazon-{}", d),
                    SolveShape::new(65_000_000, d, 2, Some(100.0)),
                ),
                (
                    format!("timit-{}", d),
                    SolveShape::new(2_251_569, d, 147, None),
                ),
            ]
        })
        .collect();
    let cost_of = |name: &str, s: &SolveShape| -> f64 {
        let c = match name {
            "local-qr" => local_qr_cost(s, &r16),
            "dist-qr" => dist_qr_cost(s, &r16),
            "block" => block_solve_cost(s, 5, 2048, &r16),
            _ => lbfgs_cost(s, 20, &r16),
        };
        if c.flops >= INFEASIBLE {
            f64::INFINITY
        } else {
            c.estimated_seconds(&r16)
        }
    };
    let names = ["local-qr", "dist-qr", "block", "lbfgs"];
    let mut rows = Vec::new();
    for fixed in names {
        let mut worst: f64 = 1.0;
        let mut geo = 0.0;
        let mut feasible = 0usize;
        for (_, s) in &shapes {
            let best = names
                .iter()
                .map(|n| cost_of(n, s))
                .fold(f64::INFINITY, f64::min);
            let this = cost_of(fixed, s);
            if this.is_finite() {
                feasible += 1;
                let regret = this / best;
                worst = worst.max(regret);
                geo += regret.ln();
            }
        }
        let geo_mean = if feasible > 0 {
            (geo / feasible as f64).exp()
        } else {
            f64::INFINITY
        };
        rows.push(vec![
            format!("always-{}", fixed),
            format!("{}/{}", feasible, shapes.len()),
            if feasible > 0 {
                format!("{:.1}x", geo_mean)
            } else {
                "-".into()
            },
            if worst.is_finite() {
                format!("{:.0}x", worst)
            } else {
                "inf".into()
            },
        ]);
    }
    rows.push(vec![
        "cost-based".into(),
        format!("{}/{}", shapes.len(), shapes.len()),
        "1.0x".into(),
        "1x".into(),
    ]);
    print_table(
        "Ablation 2: fixed-solver regret vs cost-based selection (paper-scale grid)",
        &["strategy", "feasible", "geo-mean regret", "worst regret"],
        &rows,
    );
    save_json("ablation_fixed_solver", &rows);
    println!(
        "\nThe paper's §3 claim: poor physical operator selection can cost up to\n\
         260x — visible here as the worst-case regret of the always-one-solver\n\
         strategies (and outright infeasibility for the local exact solver)."
    );
}
