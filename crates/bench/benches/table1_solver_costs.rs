//! Table 1 validation: the solver cost formulas' *scaling* must match
//! measured behaviour. For each solver we double one problem axis and
//! compare the measured wall-time ratio against the cost model's predicted
//! ratio (constants cancel, so this checks the asymptotics directly).

use keystone_bench::problems::dense;
use keystone_bench::{print_table, save_json, time_once};
use keystone_core::context::ExecContext;
use keystone_core::operator::LabelEstimator;
use keystone_dataflow::cluster::calibrate_local;
use keystone_solvers::block::BlockSolver;
use keystone_solvers::cost::{block_solve_cost, dist_qr_cost, lbfgs_cost, SolveShape};
use keystone_solvers::dist_qr::DistQrSolver;
use keystone_solvers::lbfgs::LbfgsSolver;

fn main() {
    let r = calibrate_local(1);
    let ctx = ExecContext::new(r.clone());
    let (n0, d0, k) = (1_500usize, 192usize, 8usize);
    let mut rows = Vec::new();

    type Run = Box<dyn Fn(usize, usize) -> f64>;
    type Model = Box<dyn Fn(&SolveShape) -> f64>;
    let ctx2 = ctx.clone();
    let ctx3 = ctx.clone();
    let solvers: Vec<(&str, Run, Model)> = vec![
        (
            "dist-qr",
            Box::new(move |n, d| {
                let (data, labels) = dense(n, d, k, 1);
                time_once(|| DistQrSolver::new().fit(&data, &labels, &ctx)).1
            }),
            {
                let r = r.clone();
                Box::new(move |s| dist_qr_cost(s, &r).exec_seconds(&r))
            },
        ),
        (
            "lbfgs",
            Box::new(move |n, d| {
                let (data, labels) = dense(n, d, k, 1);
                time_once(|| LbfgsSolver::with_iters(8).fit(&data, &labels, &ctx2)).1
            }),
            {
                let r = r.clone();
                Box::new(move |s| lbfgs_cost(s, 8, &r).exec_seconds(&r))
            },
        ),
        (
            "block",
            Box::new(move |n, d| {
                let (data, labels) = dense(n, d, k, 1);
                time_once(|| {
                    BlockSolver::with_config(48, 3).fit(&data, &labels, &ctx3)
                })
                .1
            }),
            {
                let r = r.clone();
                Box::new(move |s| block_solve_cost(s, 3, 48, &r).exec_seconds(&r))
            },
        ),
    ];

    for (name, run, model) in &solvers {
        let base = run(n0, d0);
        let shape0 = SolveShape::new(n0, d0, k, None);
        for (axis, n1, d1) in [("2x n", 2 * n0, d0), ("2x d", n0, 2 * d0)] {
            let t1 = run(n1, d1);
            let shape1 = SolveShape::new(n1, d1, k, None);
            let measured = t1 / base.max(1e-9);
            let predicted = model(&shape1) / model(&shape0).max(1e-30);
            rows.push(vec![
                name.to_string(),
                axis.to_string(),
                format!("{:.2}x", measured),
                format!("{:.2}x", predicted),
                if measured / predicted < 2.0 && predicted / measured < 2.0 {
                    "ok"
                } else {
                    "OFF"
                }
                .to_string(),
            ]);
        }
    }
    print_table(
        "Table 1 validation: measured vs predicted scaling ratios",
        &["solver", "axis", "measured", "predicted", "within 2x"],
        &rows,
    );
    save_json("table1_solver_costs", &rows);
    println!(
        "\nThe cost model only needs to rank alternatives (\"avoid bad decisions\"),\n\
         so agreement within 2x on scaling ratios is the success criterion."
    );
}
