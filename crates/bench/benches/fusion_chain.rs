//! Criterion microbench for whole-stage operator fusion: a depth-16
//! per-record transformer chain applied fused (one `FusedMap` pass per
//! partition) vs unfused (16 executor stages with an intermediate
//! `DistCollection` each). The fused plan should win on both wall-clock and
//! allocation volume; `examples/fusion_ablation.rs` is the dependency-free
//! smoke version of the same comparison.

use criterion::{criterion_group, criterion_main, Criterion};
use keystone_core::context::ExecContext;
use keystone_core::operator::Transformer;
use keystone_core::optimizer::PipelineOptions;
use keystone_core::pipeline::Pipeline;
use keystone_dataflow::collection::DistCollection;

const DEPTH: usize = 16;
const RECORDS: usize = 20_000;
const DIM: usize = 16;
const PARTITIONS: usize = 8;

struct AxPlusB {
    a: f64,
    b: f64,
}

impl Transformer<Vec<f64>, Vec<f64>> for AxPlusB {
    fn apply(&self, x: &Vec<f64>) -> Vec<f64> {
        x.iter().map(|v| self.a * v + self.b).collect()
    }
}

fn chain() -> Pipeline<Vec<f64>, Vec<f64>> {
    let mut pipe = Pipeline::<Vec<f64>, Vec<f64>>::input();
    for i in 0..DEPTH {
        pipe = pipe.and_then(AxPlusB {
            a: 1.0 + i as f64 * 1e-3,
            b: 0.5,
        });
    }
    pipe
}

fn data() -> DistCollection<Vec<f64>> {
    let records: Vec<Vec<f64>> = (0..RECORDS)
        .map(|r| (0..DIM).map(|c| (r * DIM + c) as f64 * 1e-6).collect())
        .collect();
    DistCollection::from_vec(records, PARTITIONS)
}

fn bench_fusion(c: &mut Criterion) {
    let input = data();
    let mut g = c.benchmark_group("fusion_chain_depth16");
    g.sample_size(20);
    for (name, opts) in [
        ("unfused", PipelineOptions::full().with_fusion(false)),
        ("fused", PipelineOptions::full()),
    ] {
        let ctx = ExecContext::default_cluster();
        let (fitted, report) = chain().fit(&ctx, &opts);
        assert_eq!(
            report.fused.is_empty(),
            name == "unfused",
            "fusion toggle did not take effect for {name}"
        );
        g.bench_function(name, |bch| bch.iter(|| fitted.apply(&input, &ctx).collect()));
    }
    g.finish();
}

criterion_group!(benches, bench_fusion);
criterion_main!(benches);
