//! Figure 10: the greedy materialization strategy vs LRU (Spark's default,
//! with admission control) vs the rule-based "cache estimator results only"
//! baseline, across memory budgets, on a pipeline whose iterative solver
//! re-reads expensive featurized data.

use keystone_bench::{print_table, save_json, secs, time_once};
use keystone_core::context::ExecContext;
use keystone_core::optimizer::{CachingStrategy, OptLevel, PipelineOptions};
use keystone_core::profiler::ProfileOptions;
use keystone_solvers::logistic::one_hot;
use keystone_solvers::solver_op::LinearSolverOp;
use keystone_workloads::pipelines::{speech_pipeline, SpeechPipelineConfig};
use keystone_workloads::TimitLike;

fn main() {
    let classes = 8;
    let ds = TimitLike {
        separation: 4.0,
        ..TimitLike::new(2_000, 32, classes)
    }
    .generate();
    let labels = one_hot(&ds.labels, classes);
    let cfg = SpeechPipelineConfig {
        blocks: 2,
        block_dim: 128,
        gamma: 0.08,
        // Force the iterative solver: 15 passes over the featurized data.
        solver: LinearSolverOp {
            lbfgs_iters: 15,
            ..Default::default()
        },
        ..Default::default()
    };

    // Featurized data ≈ 2000 × 256 × 8B ≈ 4 MB; budgets straddle it.
    let budgets: Vec<(&str, u64)> = vec![
        ("256KB", 256 << 10),
        ("2MB", 2 << 20),
        ("8MB", 8 << 20),
        ("1GB", 1 << 30),
    ];
    let mut rows = Vec::new();
    for &(blabel, budget) in &budgets {
        for (name, caching) in [
            ("greedy", CachingStrategy::Greedy),
            (
                "lru",
                CachingStrategy::Lru {
                    admission_fraction: 0.5,
                },
            ),
            ("rule-based", CachingStrategy::RuleBased),
        ] {
            let pipe = speech_pipeline(&cfg, &ds.data, &labels);
            let ctx = ExecContext::calibrated(8);
            // PipeOnly: this experiment isolates the caching strategy, so
            // operator selection stays fixed (default = the iterative
            // L-BFGS, matching the paper's Amazon configuration).
            let opts = PipelineOptions {
                level: OptLevel::PipeOnly,
                profile: ProfileOptions {
                    sizes: vec![96, 192],
                    ..Default::default()
                },
                ..Default::default()
            }
            .with_budget(budget)
            .with_caching(caching);
            let ((_fitted, report), fit_secs) = time_once(|| pipe.fit(&ctx, &opts));
            rows.push(vec![
                blabel.to_string(),
                name.to_string(),
                secs(fit_secs),
                format!("{:?}", report.cache_set_labels),
            ]);
        }
    }
    print_table(
        "Fig 10: caching strategy vs memory budget (fit wall time)",
        &["budget", "strategy", "fit", "pinned set"],
        &rows,
    );
    save_json("fig10_caching", &rows);
    println!(
        "\nExpected shape: with enough memory, greedy ≈ lru << rule-based (the\n\
         featurized data is rebuilt every solver pass without data caching);\n\
         under tight budgets greedy degrades gracefully while lru wastes its\n\
         budget on large objects it then evicts."
    );
}
