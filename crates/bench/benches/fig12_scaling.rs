//! Figure 12: strong scaling from 8 to 128 nodes with a per-stage breakdown
//! (load / featurize / solve), on the Amazon, TIMIT (65k features) and
//! ImageNet (16k features) configurations the paper plots.
//!
//! This is a paper-scale cost-model projection (a laptop cannot exhibit
//! 128-node behaviour): stage costs use Table 3's dataset shapes, Table 1's
//! solver models, and per-record featurization costs calibrated so the
//! 8-node totals land in the paper's range. The *shape* under test:
//! featurization scales ~1/w; solves carry communication + barrier terms
//! that do not scale, so the solve-heavy pipelines (TIMIT) and the
//! aggregation-bound one (Amazon) go sub-linear by 128 nodes while ImageNet
//! stays near-linear — exactly Fig. 12's story.

use keystone_bench::{print_table, save_json};
use keystone_dataflow::cluster::{ClusterProfile, ResourceDesc};
use keystone_solvers::cost::{block_solve_cost, lbfgs_cost, SolveShape};

/// Sustained DGEMM throughput of an r3.4xlarge's 8 cores (the conservative
/// default in `ClusterProfile` models mixed scalar workloads; dense solver
/// kernels run near BLAS peak).
const BLAS_GFLOPS: f64 = 1.6e11;

fn r3(workers: usize) -> ResourceDesc {
    let mut r = ClusterProfile::R3_4xlarge.descriptor(workers);
    r.gflops_per_worker = BLAS_GFLOPS;
    r
}

struct StageModel {
    name: &'static str,
    /// Raw input gigabytes (load stage).
    raw_gb: f64,
    /// Records.
    n: f64,
    /// Featurization FLOPs per record.
    feat_flops: f64,
    /// Featurization coordination bytes on the busiest link (aggregation
    /// trees, e.g. CommonSparseFeatures' vocabulary count).
    feat_coord_bytes: f64,
    /// Solve-stage shape + solver.
    solve: Box<dyn Fn(&ResourceDesc) -> f64>,
}

fn main() {
    let models = vec![
        StageModel {
            name: "amazon",
            raw_gb: 13.97,
            n: 65_000_000.0,
            feat_flops: 2.3e6, // tokenization + n-grams + hashing per doc
            // Aggregation tree over ~10M distinct n-gram counts.
            feat_coord_bytes: 10e6 * 16.0,
            solve: Box::new(|r| {
                let shape = SolveShape::new(65_000_000, 100_000, 2, Some(100.0));
                lbfgs_cost(&shape, 20, r).estimated_seconds(r)
            }),
        },
        StageModel {
            name: "timit-65k",
            raw_gb: 7.5,
            n: 2_251_569.0,
            feat_flops: 440.0 * 65_536.0 * 2.0, // random-feature projection
            feat_coord_bytes: 0.0,
            solve: Box::new(|r| {
                let shape = SolveShape::new(2_251_569, 65_536, 147, None);
                block_solve_cost(&shape, 5, 4096, r).estimated_seconds(r)
            }),
        },
        StageModel {
            name: "imagenet-16k",
            raw_gb: 74.0,
            n: 1_281_167.0,
            feat_flops: 2.5e10, // SIFT + LCS + Fisher vectors per image
            feat_coord_bytes: 0.0,
            solve: Box::new(|r| {
                let shape = SolveShape::new(1_281_167, 16_384, 1000, None);
                block_solve_cost(&shape, 5, 4096, r).estimated_seconds(r)
            }),
        },
    ];

    let workers = [8usize, 16, 32, 64, 128];
    let mut rows = Vec::new();
    for m in &models {
        let mut base_total = 0.0;
        for &w in &workers {
            let r = r3(w);
            let wf = w as f64;
            let load = m.raw_gb * 1e9 / (r.disk_bandwidth * wf);
            let featurize = m.n * m.feat_flops / (r.gflops_per_worker * wf)
                + m.feat_coord_bytes * (wf.log2()) / r.net_bandwidth;
            let solve = (m.solve)(&r);
            let total = load + featurize + solve;
            if w == 8 {
                base_total = total;
            }
            rows.push(vec![
                m.name.to_string(),
                format!("{}", w),
                format!("{:.1}", load / 60.0),
                format!("{:.1}", featurize / 60.0),
                format!("{:.1}", solve / 60.0),
                format!("{:.1}", total / 60.0),
                format!("{:.2}x", base_total / total),
            ]);
        }
    }
    print_table(
        "Fig 12: strong scaling, simulated minutes by stage (speedup vs 8 nodes; ideal 16x at 128)",
        &["pipeline", "nodes", "load", "featurize", "solve", "total", "speedup"],
        &rows,
    );
    save_json("fig12_scaling", &rows);
    println!(
        "\nExpected shape (paper): ImageNet near-ideal to 128 nodes (featurization-\n\
         dominated, embarrassingly parallel); TIMIT sub-linear (solve communication);\n\
         Amazon sub-linear (solver barriers + the CommonSparseFeatures aggregation\n\
         tree)."
    );
}
