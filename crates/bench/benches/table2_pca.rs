//! Table 2: exact vs approximate, local vs distributed PCA runtimes over an
//! `(n, d, k)` grid.
//!
//! The paper's grid is n ∈ {1e4, 1e6} × d ∈ {256, 4096} × k; local exact
//! SVD on the big cells did not complete ("x"). We measure a scaled grid
//! for wall time and additionally print the cost models' estimates at the
//! paper's grid, including infeasibility.

use keystone_bench::{print_table, quick_mode, save_json, secs, time_once};
use keystone_core::operator::OptimizableEstimator;
use keystone_core::record::DataStats;
use keystone_dataflow::cluster::ClusterProfile;
use keystone_dataflow::collection::DistCollection;
use keystone_linalg::dense::DenseMatrix;
use keystone_linalg::rng::XorShiftRng;
use keystone_ops::stats::pca::{
    fit_dist_exact, fit_dist_tsvd, fit_local_exact, fit_local_tsvd, Pca,
};
use keystone_ops::stats::INFEASIBLE_COST;

fn data_matrix(n: usize, d: usize, seed: u64) -> (DenseMatrix, DistCollection<Vec<f64>>) {
    let mut rng = XorShiftRng::new(seed);
    // Decaying spectrum so truncated methods have something to find.
    let rows: Vec<Vec<f64>> = (0..n)
        .map(|_| {
            (0..d)
                .map(|j| rng.next_gaussian() / (1.0 + j as f64 / 8.0).sqrt())
                .collect()
        })
        .collect();
    let mut m = DenseMatrix::zeros(n, d);
    for (i, r) in rows.iter().enumerate() {
        m.row_mut(i).copy_from_slice(r);
    }
    (m, DistCollection::from_vec(rows, 8))
}

fn main() {
    let (ns, ds) = if quick_mode() {
        (vec![2_000usize, 10_000], vec![64usize, 256])
    } else {
        (vec![10_000usize, 100_000], vec![256usize, 1024])
    };
    let mut rows = Vec::new();
    for &n in &ns {
        for &d in &ds {
            let (m, dist) = data_matrix(n, d, (n + d) as u64);
            for &k in &[1usize, 16, 64] {
                let k = k.min(d);
                let (_, t_svd) = time_once(|| fit_local_exact(&m, k));
                let (_, t_tsvd) = time_once(|| fit_local_tsvd(&m, k, 1));
                let (_, t_dsvd) = time_once(|| fit_dist_exact(&dist, k));
                let (_, t_dtsvd) = time_once(|| fit_dist_tsvd(&dist, k, 2, 1));
                rows.push(vec![
                    format!("{}", n),
                    format!("{}", d),
                    format!("{}", k),
                    secs(t_svd),
                    secs(t_tsvd),
                    secs(t_dsvd),
                    secs(t_dtsvd),
                ]);
            }
        }
    }
    print_table(
        "Table 2 (measured, scaled grid): PCA wall time",
        &["n", "d", "k", "SVD", "TSVD", "DistSVD", "DistTSVD"],
        &rows,
    );
    save_json("table2_pca_measured", &rows);

    // Paper-scale estimates from the cost models (Table 2's actual grid).
    let r16 = ClusterProfile::R3_4xlarge.descriptor(16);
    let mut est = Vec::new();
    for (n, d, ks) in [
        (10_000usize, 256usize, vec![1usize, 16, 64]),
        (10_000, 4096, vec![16, 64, 1024]),
        (1_000_000, 256, vec![1, 16, 64]),
        (1_000_000, 4096, vec![16, 64, 1024]),
    ] {
        for k in ks {
            let stats = vec![DataStats {
                count: n,
                bytes_per_record: d as f64 * 8.0,
                dims: d as f64,
                nnz_per_record: d as f64,
                is_sparse: false,
            }];
            let opts = Pca::new(k).options();
            let cell = |name: &str| -> String {
                let o = opts.iter().find(|o| o.name == name).expect("option");
                let c = (o.cost)(&stats, &r16);
                if c.flops >= INFEASIBLE_COST {
                    "x".to_string()
                } else {
                    secs(c.estimated_seconds(&r16))
                }
            };
            est.push(vec![
                format!("{}", n),
                format!("{}", d),
                format!("{}", k),
                cell("local-svd"),
                cell("local-tsvd"),
                cell("dist-svd"),
                cell("dist-tsvd"),
            ]);
        }
    }
    print_table(
        "Table 2 (cost model @ paper grid, 16 nodes; x = infeasible)",
        &["n", "d", "k", "SVD", "TSVD", "DistSVD", "DistTSVD"],
        &est,
    );
    save_json("table2_pca_model", &est);
    println!(
        "\nExpected shape: approximate (TSVD) wins at small k; distributed wins at\n\
         large n·d; local exact on n=1e6 × d=4096 is infeasible (the paper's 'x')."
    );
}
