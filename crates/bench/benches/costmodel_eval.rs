//! §3 "Cost Model Evaluation": how often does the cost-based optimizer pick
//! the empirically fastest physical operator?
//!
//! The paper reports 90% correct for linear solvers and 84% for PCA, with
//! wrong picks only where two operators were nearly tied. We reproduce the
//! protocol: enumerate a problem grid, time every physical operator, and
//! compare the optimizer's pick (using a locally *calibrated* resource
//! descriptor, as §3 prescribes) against the measured winner. A pick is
//! also scored "near-tie" when it is within 2× of the best.

use keystone_bench::problems::{dense, sparse};
use keystone_bench::{print_table, quick_mode, save_json, time_once};
use keystone_core::context::ExecContext;
use keystone_core::operator::{OptimizableEstimator, OptimizableLabelEstimator};
use keystone_core::record::DataStats;
use keystone_dataflow::cluster::calibrate_local;
use keystone_dataflow::collection::DistCollection;
use keystone_linalg::rng::XorShiftRng;
use keystone_ops::stats::pca::{
    fit_dist_exact, fit_dist_tsvd, fit_local_exact, fit_local_tsvd, Pca,
};
use keystone_ops::stats::INFEASIBLE_COST;
use keystone_solvers::solver_op::LinearSolverOp;

fn stats_for(
    n: usize,
    d: usize,
    k: usize,
    nnz: Option<f64>,
) -> Vec<DataStats> {
    vec![
        DataStats {
            count: n,
            bytes_per_record: nnz.map_or(d as f64 * 8.0, |s| s * 12.0),
            dims: d as f64,
            nnz_per_record: nnz.unwrap_or(d as f64),
            is_sparse: nnz.is_some(),
        },
        DataStats {
            count: n,
            bytes_per_record: k as f64 * 8.0,
            dims: k as f64,
            nnz_per_record: 1.0,
            is_sparse: false,
        },
    ]
}

fn main() {
    // Calibrated descriptor: local FLOP rate / bandwidths, as the paper's
    // microbenchmark-driven R. One worker, negligible barrier latency —
    // matching how the measured runs actually execute.
    // 8 logical workers: collections use 8 partitions, so distributed
    // operators genuinely run 8-way parallel on the local cores.
    let r = calibrate_local(8);
    let ctx = ExecContext::new(r.clone());

    let grid: Vec<(usize, usize, usize, Option<usize>)> = if quick_mode() {
        vec![
            (600, 64, 2, None),
            (600, 256, 2, None),
            (600, 512, 16, None),
            (2000, 64, 8, None),
            (2000, 512, 2, Some(8)),
            (2000, 2048, 2, Some(8)),
            (1000, 1024, 2, Some(16)),
            (600, 128, 32, None),
        ]
    } else {
        vec![
            (2000, 256, 2, None),
            (2000, 1024, 16, None),
            (8000, 512, 8, None),
            (8000, 4096, 2, Some(16)),
            (4000, 8192, 2, Some(32)),
            (2000, 512, 64, None),
        ]
    };

    let mut rows = Vec::new();
    let mut correct = 0usize;
    let mut near = 0usize;
    for &(n, d, k, nnz) in &grid {
        let op = LinearSolverOp {
            lbfgs_iters: 10,
            block_sweeps: 3,
            block_size: (d / 4).max(32),
            ..Default::default()
        };
        let stats = stats_for(n, d, k, nnz.map(|v| v as f64));
        // Time every feasible option and record the model's pick.
        let (pick, times) = if let Some(nnz) = nnz {
            let (data, labels) = sparse(n, d, nnz, k, 5);
            run_all(&op, &stats, &r, &ctx, &data, &labels)
        } else {
            let (data, labels) = dense(n, d, k, 5);
            run_all(&op, &stats, &r, &ctx, &data, &labels)
        };
        let best = times
            .iter()
            .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"))
            .expect("non-empty")
            .clone();
        let picked_time = times
            .iter()
            .find(|(name, _)| *name == pick)
            .map(|(_, t)| *t)
            .unwrap_or(f64::INFINITY);
        let ok = pick == best.0;
        let near_tie = picked_time <= best.1 * 2.0;
        correct += usize::from(ok);
        near += usize::from(near_tie);
        rows.push(vec![
            format!("{}x{}", n, d),
            format!("{}", k),
            nnz.map_or("dense".to_string(), |z| format!("nnz={}", z)),
            pick.clone(),
            best.0.clone(),
            if ok { "yes" } else if near_tie { "tie" } else { "NO" }.to_string(),
        ]);
    }
    print_table(
        "Cost model evaluation: linear solvers",
        &["problem", "k", "type", "picked", "fastest", "correct"],
        &rows,
    );
    println!(
        "solver: optimizer correct {}/{} ({:.0}%), within 2x of best {}/{} ({:.0}%)   [paper: 90%]",
        correct,
        grid.len(),
        100.0 * correct as f64 / grid.len() as f64,
        near,
        grid.len(),
        100.0 * near as f64 / grid.len() as f64
    );
    save_json("costmodel_eval_solvers", &rows);

    // ---- PCA ----
    let pca_grid: Vec<(usize, usize, usize)> = if quick_mode() {
        vec![
            (1000, 64, 2),
            (1000, 64, 32),
            (4000, 256, 4),
            (4000, 256, 128),
            (8000, 128, 8),
            (2000, 512, 8),
        ]
    } else {
        vec![
            (10_000, 256, 4),
            (10_000, 256, 128),
            (50_000, 512, 8),
            (5_000, 2048, 16),
        ]
    };
    let mut rows = Vec::new();
    let mut correct = 0usize;
    let mut near = 0usize;
    for &(n, d, k) in &pca_grid {
        let mut rng = XorShiftRng::new((n * d) as u64);
        let vecs: Vec<Vec<f64>> = (0..n)
            .map(|_| {
                (0..d)
                    .map(|j| rng.next_gaussian() / (1.0 + j as f64 / 4.0))
                    .collect()
            })
            .collect();
        let dist = DistCollection::from_vec(vecs.clone(), 8);
        let mut m = keystone_linalg::dense::DenseMatrix::zeros(n, d);
        for (i, v) in vecs.iter().enumerate() {
            m.row_mut(i).copy_from_slice(v);
        }
        let times = [("local-svd".to_string(), time_once(|| fit_local_exact(&m, k)).1),
            ("local-tsvd".to_string(), time_once(|| fit_local_tsvd(&m, k, 1)).1),
            ("dist-svd".to_string(), time_once(|| fit_dist_exact(&dist, k)).1),
            ("dist-tsvd".to_string(), time_once(|| fit_dist_tsvd(&dist, k, 2, 1)).1)];
        let stats = vec![DataStats {
            count: n,
            bytes_per_record: d as f64 * 8.0,
            dims: d as f64,
            nnz_per_record: d as f64,
            is_sparse: false,
        }];
        let opts = Pca::new(k).options();
        let pick = opts
            .iter()
            .filter(|o| (o.cost)(&stats, &r).flops < INFEASIBLE_COST)
            .min_by(|a, b| {
                (a.cost)(&stats, &r)
                    .estimated_seconds(&r)
                    .partial_cmp(&(b.cost)(&stats, &r).estimated_seconds(&r))
                    .expect("finite")
            })
            .map(|o| o.name.clone())
            .expect("feasible option");
        let best = times
            .iter()
            .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"))
            .expect("non-empty")
            .clone();
        let picked_time = times
            .iter()
            .find(|(nm, _)| *nm == pick)
            .map(|(_, t)| *t)
            .unwrap_or(f64::INFINITY);
        let ok = pick == best.0;
        let near_tie = picked_time <= best.1 * 2.0;
        correct += usize::from(ok);
        near += usize::from(near_tie);
        rows.push(vec![
            format!("{}x{}", n, d),
            format!("{}", k),
            pick.clone(),
            best.0.clone(),
            if ok { "yes" } else if near_tie { "tie" } else { "NO" }.to_string(),
        ]);
    }
    print_table(
        "Cost model evaluation: PCA",
        &["problem", "k", "picked", "fastest", "correct"],
        &rows,
    );
    println!(
        "pca: optimizer correct {}/{} ({:.0}%), within 2x of best {}/{} ({:.0}%)   [paper: 84%]",
        correct,
        pca_grid.len(),
        100.0 * correct as f64 / pca_grid.len() as f64,
        near,
        pca_grid.len(),
        100.0 * near as f64 / pca_grid.len() as f64
    );
    save_json("costmodel_eval_pca", &rows);
}

type Timed = Vec<(String, f64)>;

fn run_all<F: keystone_solvers::Features>(
    op: &LinearSolverOp,
    stats: &[DataStats],
    r: &keystone_dataflow::cluster::ResourceDesc,
    ctx: &ExecContext,
    data: &DistCollection<F>,
    labels: &DistCollection<Vec<f64>>,
) -> (String, Timed) {
    let options =
        <LinearSolverOp as OptimizableLabelEstimator<F, Vec<f64>, Vec<f64>>>::options(op);
    let mut times = Vec::new();
    for o in &options {
        if (o.cost)(stats, r).flops >= keystone_solvers::cost::INFEASIBLE {
            continue;
        }
        let (_, t) = time_once(|| o.op.fit(data, labels, ctx));
        times.push((o.name.clone(), t));
    }
    let pick = options
        .iter()
        .min_by(|a, b| {
            (a.cost)(stats, r)
                .estimated_seconds(r)
                .partial_cmp(&(b.cost)(stats, r).estimated_seconds(r))
                .expect("finite")
        })
        .map(|o| o.name.clone())
        .expect("non-empty");
    (pick, times)
}
