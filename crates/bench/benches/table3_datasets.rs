//! Table 3: dataset characteristics. Prints the paper's six rows together
//! with a note on the synthetic stand-ins used at bench scale.

use keystone_bench::{print_table, save_json};
use keystone_workloads::paper_datasets;

fn main() {
    let cards = paper_datasets();
    let rows: Vec<Vec<String>> = cards
        .iter()
        .map(|c| {
            vec![
                c.name.to_string(),
                format!("{}", c.num_train),
                format!("{:.2}", c.train_gb),
                format!("{}", c.classes),
                format!("{}", c.solve_features),
                format!("{:.4}", c.solve_density),
                format!("{:.1}", c.solve_gb),
            ]
        })
        .collect();
    print_table(
        "Table 3: dataset characteristics (paper scale)",
        &["dataset", "n_train", "raw GB", "classes", "solve d", "density", "solve GB"],
        &rows,
    );
    save_json("table3_datasets", &rows);

    println!(
        "\nSynthetic stand-ins keep the n/d/sparsity/class shape at configurable scale:\n\
         AmazonLike (Zipf text, 2 classes, sparse features), TimitLike (dense clustered\n\
         vectors, 147 classes), ImageDatasetSpec (texture classes, VOC/ImageNet/CIFAR)."
    );
}
