//! Figure 8: KeystoneML's optimizing solver vs a Vowpal-Wabbit-style fixed
//! online-SGD solver and a SystemML-style fixed CG solver, on binary
//! Amazon-like (sparse) and binary TIMIT-like (dense) problems across
//! feature sizes.
//!
//! Protocol (matching §5.2, "identical inputs and objective functions ...
//! end-to-end solve time"): every system must reach the same training-loss
//! target — 1.1× the loss of the exact least-squares solution. KeystoneML
//! solves once with its cost-model-selected operator; the fixed-algorithm
//! baselines double their iteration budget until they hit the target (or a
//! cap, reported as `> time`). SystemML additionally pays its
//! data-conversion pass.

use keystone_bench::problems::{dense, mse, sparse};
use keystone_bench::{print_table, quick_mode, save_json, secs, time_once};
use keystone_core::context::ExecContext;
use keystone_core::operator::{LabelEstimator, OptimizableLabelEstimator};
use keystone_core::record::DataStats;
use keystone_dataflow::collection::DistCollection;
use keystone_solvers::cg::CgSolver;
use keystone_solvers::dist_qr::DistQrSolver;
use keystone_solvers::losses::LossKind;
use keystone_solvers::solver_op::LinearSolverOp;
use keystone_solvers::vw::VwSolver;
use keystone_solvers::Features;

/// Doubles the baseline's iteration budget until the loss target is met.
/// Returns (cumulative seconds, hit-target).
fn time_to_target<F: Features>(
    mut fit: impl FnMut(usize) -> Box<dyn keystone_core::operator::Transformer<F, Vec<f64>>>,
    data: &DistCollection<F>,
    labels: &DistCollection<Vec<f64>>,
    target: f64,
    budgets: &[usize],
) -> (f64, bool) {
    let mut total = 0.0;
    for &budget in budgets {
        let (model, t) = time_once(|| fit(budget));
        total += t;
        if mse(&*model, data, labels) <= target {
            return (total, true);
        }
    }
    (total, false)
}

fn main() {
    let ctx = ExecContext::calibrated(8);
    let r = ctx.resources.clone();
    let dims: Vec<usize> = if quick_mode() {
        vec![256, 1024, 4096]
    } else {
        vec![1024, 4096, 16384]
    };
    let budgets = [5usize, 10, 20, 40, 80, 160];
    let mut rows = Vec::new();

    for &(name, is_sparse) in &[("amazon-bin", true), ("timit-bin", false)] {
        for &d in &dims {
            let n = if is_sparse { 6_000 } else { 1_500 };
            let (data_s, labels) = if is_sparse {
                let (a, b) = sparse(n, d, 20, 1, 11);
                (Some(a), b)
            } else {
                (None, dense(n, d, 1, 11).1)
            };
            let data_d = if is_sparse { None } else { Some(dense(n, d, 1, 11).0) };

            // Loss target: 1.1× the exact solution's loss.
            macro_rules! run {
                ($data:expr) => {{
                    let data = $data;
                    let exact = DistQrSolver::new().fit(data, &labels, &ctx);
                    let target = (mse(&*exact, data, &labels) * 1.1).max(1e-4);

                    // KeystoneML: cost-model pick, one solve.
                    let stats = vec![
                        DataStats {
                            count: n,
                            bytes_per_record: 0.0,
                            dims: d as f64,
                            nnz_per_record: if is_sparse { 20.0 } else { d as f64 },
                            is_sparse,
                        },
                        DataStats {
                            count: n,
                            bytes_per_record: 8.0,
                            dims: 1.0,
                            nnz_per_record: 1.0,
                            is_sparse: false,
                        },
                    ];
                    let op = LinearSolverOp::new();
                    let options = OptimizableLabelEstimator::<_, Vec<f64>, Vec<f64>>::options(&op);
                    let chosen = options
                        .iter()
                        .min_by(|a, b| {
                            (a.cost)(&stats, &r)
                                .estimated_seconds(&r)
                                .partial_cmp(&(b.cost)(&stats, &r).estimated_seconds(&r))
                                .expect("finite")
                        })
                        .expect("non-empty");
                    // KeystoneML gets the same iteration-doubling protocol
                    // as the baselines when its chosen operator is
                    // iterative; exact operators solve in one shot.
                    let (t_ks, ks_hit) = match chosen.name.as_str() {
                        "lbfgs" => time_to_target(
                            |iters| {
                                keystone_solvers::lbfgs::LbfgsSolver::with_iters(iters)
                                    .fit(data, &labels, &ctx)
                            },
                            data,
                            &labels,
                            target,
                            &budgets,
                        ),
                        "block" => time_to_target(
                            |sweeps| {
                                keystone_solvers::block::BlockSolver::with_config(
                                    (d / 4).max(32),
                                    sweeps,
                                )
                                .fit(data, &labels, &ctx)
                            },
                            data,
                            &labels,
                            target,
                            &budgets,
                        ),
                        _ => {
                            let (model, t) = time_once(|| chosen.op.fit(data, &labels, &ctx));
                            (t, mse(&*model, data, &labels) <= target * 1.01)
                        }
                    };

                    // VW-style: online SGD, epoch budget doubling.
                    let (t_vw, vw_hit) = time_to_target(
                        |epochs| {
                            VwSolver {
                                epochs,
                                lr: 0.5,
                                loss: LossKind::Squared,
                            }
                            .fit(data, &labels, &ctx)
                        },
                        data,
                        &labels,
                        target,
                        &budgets,
                    );

                    // SystemML-style: CG with conversion, iteration doubling.
                    let (t_sy, sy_hit) = time_to_target(
                        |iters| {
                            CgSolver {
                                iters,
                                lambda: 1e-8,
                                conversion_pass: true,
                            }
                            .fit(data, &labels, &ctx)
                        },
                        data,
                        &labels,
                        target,
                        &budgets,
                    );
                    (chosen.name.clone(), t_ks, ks_hit, t_vw, vw_hit, t_sy, sy_hit)
                }};
            }

            let (choice, t_ks, ks_hit, t_vw, vw_hit, t_sy, sy_hit) = match (&data_s, &data_d) {
                (Some(dset), _) => run!(dset),
                (_, Some(dset)) => run!(dset),
                _ => unreachable!(),
            };
            let fmt = |t: f64, hit: bool| {
                if hit {
                    secs(t)
                } else {
                    format!(">{}", secs(t))
                }
            };
            rows.push(vec![
                name.to_string(),
                format!("{}", d),
                format!("{} ({})", fmt(t_ks, ks_hit), choice),
                fmt(t_vw, vw_hit),
                fmt(t_sy, sy_hit),
            ]);
        }
    }
    print_table(
        "Fig 8a: measured time to reach 1.1x the exact training loss (>t = target missed)",
        &["dataset", "features", "keystoneml", "vw-style", "systemml"],
        &rows,
    );
    save_json("fig8_vs_systems", &rows);

    // ---- Part B: cost models at paper scale (65M sparse / 2.25M dense,
    // 16 nodes). This is where the paper's gaps appear: at bench scale the
    // in-process CG baseline is free of SystemML's real-system overheads
    // (JVM, buffer pool, MR job launch) and thus competitive.
    use keystone_dataflow::cluster::ClusterProfile;
    use keystone_dataflow::cost::CostProfile;
    use keystone_solvers::cost::{dist_qr_cost, lbfgs_cost, SolveShape};
    let r16 = ClusterProfile::R3_4xlarge.descriptor(16);
    let mut model_rows = Vec::new();
    for &(name, d, shape) in &[
        (
            "amazon-bin",
            16384usize,
            SolveShape::new(65_000_000, 16_384, 1, Some(100.0)),
        ),
        (
            "timit-bin",
            1024,
            SolveShape::new(2_251_569, 1_024, 1, None),
        ),
        (
            "timit-bin",
            16384,
            SolveShape::new(2_251_569, 16_384, 1, None),
        ),
    ] {
        let w = 16.0f64;
        let ks_lbfgs = lbfgs_cost(&shape, 20, &r16).estimated_seconds(&r16);
        let ks_exact = dist_qr_cost(&shape, &r16).estimated_seconds(&r16);
        let ks = ks_lbfgs.min(ks_exact);
        // VW: streaming SGD + per-epoch model averaging. Part A measured
        // that averaged online SGD needs >60 epochs to approach the exact
        // training loss even on sparse data (and more on dense).
        let vw_epochs = if shape.s < shape.d { 60.0 } else { 80.0 };
        let vw = CostProfile {
            flops: 4.0 * vw_epochs * shape.n * shape.s / w,
            bytes: 8.0 * shape.n * shape.s / w,
            network: 8.0 * vw_epochs * shape.d * w.log2(),
            barriers: vw_epochs,
        }
        .estimated_seconds(&r16);
        // SystemML: conversion pass + CG (2 passes/iter, per class column).
        let cg_iters = 40.0;
        let sy = CostProfile {
            flops: 4.0 * cg_iters * shape.n * shape.s / w,
            bytes: (2.0 + cg_iters) * 8.0 * shape.n * shape.s / w,
            network: 8.0 * cg_iters * shape.d * w.log2(),
            barriers: 1.0 + 2.0 * cg_iters,
        }
        .estimated_seconds(&r16);
        model_rows.push(vec![
            name.to_string(),
            format!("{}", d),
            secs(ks),
            secs(vw),
            secs(sy),
        ]);
    }
    print_table(
        "Fig 8b: cost models @ paper scale (16 nodes)",
        &["dataset", "features", "keystoneml", "vw-style", "systemml"],
        &model_rows,
    );
    save_json("fig8_vs_systems_model", &model_rows);
    println!(
        "\nExpected shape: KeystoneML beats VW everywhere (measured) and leads both\n\
         at paper scale, where the fixed-algorithm baselines pay convergence\n\
         (VW on dense) and conversion + extra passes (SystemML); its physical\n\
         choice flips with shape (exact on small dense, L-BFGS on sparse/large)."
    );
}
