//! Figure 7: time to convolve an image with a filter bank as the filter
//! size `k` grows, for the three physical strategies. The paper's shape:
//! BLAS (im2col GEMM) wins at small k, its k² growth loses to FFT at large
//! k, and the separable scheme is fastest whenever filters are rank-1.

use std::sync::Arc;

use keystone_bench::{print_table, quick_mode, save_json, time_once};
use keystone_core::context::ExecContext;
use keystone_core::operator::Transformer;
use keystone_linalg::rng::XorShiftRng;
use keystone_ops::image::convolve::{
    ConvolverFft, ConvolverMatMul, ConvolverSeparable, FilterBank,
};
use keystone_ops::image::Image;

fn main() {
    let (n, b, reps) = if quick_mode() { (64usize, 10usize, 5usize) } else { (256, 50, 5) };
    let mut rng = XorShiftRng::new(3);
    let img = Image::new(
        n,
        n,
        3,
        (0..n * n * 3).map(|_| rng.next_gaussian()).collect(),
    );
    let ks: Vec<usize> = if quick_mode() {
        vec![2, 4, 6, 10, 16, 24]
    } else {
        vec![2, 4, 6, 10, 20, 30]
    };

    let ctx = ExecContext::default_cluster();
    let mut rows = Vec::new();
    for &k in &ks {
        // Separable (rank-1) bank so all three strategies are valid; the
        // BLAS/FFT paths don't exploit separability, matching the paper.
        let bank = Arc::new(FilterBank::random_separable(b, k, k as u64));
        let blas = ConvolverMatMul::from_bank(bank.clone());
        let fft = ConvolverFft::from_bank(bank.clone());
        let sep = ConvolverSeparable::from_bank(bank.clone());

        let (_, t_blas) = time_once(|| {
            for _ in 0..reps {
                std::hint::black_box(blas.apply(&img));
            }
        });
        let (_, t_fft) = time_once(|| {
            for _ in 0..reps {
                std::hint::black_box(fft.apply(&img));
            }
        });
        let (_, t_sep) = time_once(|| {
            for _ in 0..reps {
                std::hint::black_box(sep.apply(&img));
            }
        });
        let _ = &ctx;
        rows.push(vec![
            format!("{}", k),
            format!("{:.1}ms", t_sep * 1e3 / reps as f64),
            format!("{:.1}ms", t_blas * 1e3 / reps as f64),
            format!("{:.1}ms", t_fft * 1e3 / reps as f64),
        ]);
    }
    print_table(
        &format!(
            "Fig 7: {}x{}x3 image, {} filters, per-image convolution time",
            n, n, b
        ),
        &["k", "separable", "blas", "fft"],
        &rows,
    );
    save_json("fig7_convolution", &rows);
    println!(
        "\nExpected shape: blas grows ~k² and loses to fft at large k; fft is\n\
         flat in k; separable is cheapest when valid (rank-1 filters)."
    );
}
